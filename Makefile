GO ?= go
STATICCHECK_VERSION ?= 2025.1.1

# Minimum statement coverage for internal/ir (the scoring/compaction
# core), enforced by `make cover`. Measured across the whole module's
# tests (-coverpkg): the ir hot paths are deliberately exercised through
# the engine, server, and snapshot suites too.
COVER_MIN_IR ?= 90.0

# Minimum statement coverage for internal/eval (the relevance-gate
# machinery: golden sets, rank metrics, the offline/online harness) —
# the gate that judges quality must itself stay tested.
COVER_MIN_EVAL ?= 85.0

.PHONY: build test race vet fmt-check staticcheck smoke snapshot-smoke mmap-smoke compact-smoke cluster-smoke loadgen-smoke eval-smoke soak bench bench-json bench-regression bench-load eval cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with concurrent hot paths: parallel engine
# build, sharded scoring, live instance mutation, online compaction,
# snapshot dump, the scatter-gather coordinator and WAL replication,
# and the HTTP serving layer.
race:
	$(GO) test -race ./internal/search/... ./internal/ir/... ./internal/cluster/... ./internal/server/... ./internal/snapshot/...

# soak runs the churn-soak compaction test — concurrent mutators,
# searchers, and a compactor looping epoch swaps under the race
# detector, with sequential-replay parity at the end — at the long
# QUNITS_SOAK scale. The same test runs at its short scale inside
# `make race`; this target is the deeper pass CI runs alongside it.
soak:
	QUNITS_SOAK=1 $(GO) test -race -run 'TestChurnSoakCompaction' -count=1 ./internal/search

# vet covers the whole module; the explicit ./examples/... invocation
# keeps the example programs covered even if they ever move behind a
# build tag or their own module.
vet:
	$(GO) vet ./...
	$(GO) vet ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# staticcheck runs honnef.co/go/tools without adding a module
# dependency; it needs network access to fetch the tool, so it is a CI
# step rather than part of the offline `ci` target.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# smoke boots qunitsd and drives the HTTP surface (/healthz, /v1/search
# single+batch, /v1/feedback, /v1/instances, legacy /search, graceful
# shutdown) with curl.
smoke:
	./scripts/smoke.sh basic

# snapshot-smoke drives the persistence cycle end to end: boot with
# -snapshot, add an instance over /v1, SIGTERM (writes the snapshot),
# restart from it, and assert the added instance is still searchable.
snapshot-smoke:
	./scripts/smoke.sh snapshot

# mmap-smoke drives the memory-mapped serving path end to end: snapshot
# a synth corpus, reboot with -mmap, and require the mapped path to
# engage, serve byte-identical /v1/search responses to a copying load
# of the same snapshot, accept live mutations, and boot well under the
# fresh-build time.
mmap-smoke:
	./scripts/smoke.sh mmap

# compact-smoke drives online compaction under live load: accumulate
# tombstones over /v1/instances, POST /v1/compact while a background
# search loop hammers the server, and assert /stats reclamation plus
# unchanged results.
compact-smoke:
	./scripts/smoke.sh compact

# cluster-smoke boots a coordinator over two partition nodes (a
# WAL-writing primary and a tailing follower) next to an
# identically-seeded single node, then drives searches, a live instance
# add, feedback, and a compaction through both stacks and diffs the
# scrubbed /v1 responses byte for byte.
cluster-smoke:
	./scripts/smoke.sh cluster

# loadgen-smoke boots qunitsd on a small synth corpus, drives it with a
# short closed-loop and open-loop cmd/loadgen burst (plus a closed-loop
# burst through a 2-partition coordinator), and gates the reports with
# benchcheck -load: zero errors, a request floor, and a generous
# absolute p99 ceiling.
loadgen-smoke:
	./scripts/smoke.sh loadgen

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json runs the full benchmark suite once and writes the results
# as JSON to BENCH.json, so benchmark trajectories are reproducible and
# diffable across commits. The top-k scoring and compaction pairs
# additionally get a longer pass so the committed ratios — the
# machine-independent numbers bench-regression gates on — are measured
# with low noise (benchcheck prefers the higher-iteration entries).
bench-json:
	( $(GO) test -bench=. -benchtime=1x -run='^$$' . && \
	  $(GO) test -bench=BenchmarkTopKScoring -benchtime=50x -run='^$$' . && \
	  $(GO) test -bench=BenchmarkCompactedPruning -benchtime=200x -run='^$$' . && \
	  $(GO) test -bench=BenchmarkBatchAmortized -benchtime=30x -count=3 -run='^$$' . ) \
	  | $(GO) run ./cmd/benchjson > BENCH.json
	@echo "wrote BENCH.json"

# bench-regression gates the three scoring-path ratios, all
# machine-independent (ratios between benchmarks of the same run, never
# raw ns/op):
#   - pruned vs exhaustive top-k (>= 2x floor, <= 20% erosion vs the
#     committed BENCH.json baseline);
#   - compacted vs 50%-tombstoned pruning on a single-shard posting-walk
#     workload (>= 1.1x floor, wider erosion slack; the honest ratio is
#     ~1.3x), so the bound decay compaction reverses cannot silently
#     return;
#   - one-pass amortized batch vs serial per-item execution on a
#     64-query mixed batch (>= 1.8x floor; typical is ~2.0-2.3x — the
#     serial side runs the pooled zero-allocation search path now, so
#     the honest amortization ratio tightened from the original
#     ~2.3-2.4x). Run at -count=3 — benchcheck takes each side's
#     fastest repetition, so a noisy-neighbor blip during one
#     repetition cannot flip the ratio.
# Plus one absolute gate: the pruned-search allocation budget
# (benchcheck -allocs). Allocation counts are exact and
# machine-independent, so the committed ceiling needs no baseline; it
# pins the zero-allocation scrub of the query hot path.
bench-regression:
	$(GO) test -bench=BenchmarkTopKScoring -benchtime=50x -count=2 -run='^$$' . \
	  | $(GO) run ./cmd/benchjson > bench_topk.json
	$(GO) run ./cmd/benchcheck -current bench_topk.json -baseline BENCH.json
	$(GO) test -bench=BenchmarkCompactedPruning -benchtime=200x -count=2 -run='^$$' . \
	  | $(GO) run ./cmd/benchjson > bench_compact.json
	$(GO) run ./cmd/benchcheck -current bench_compact.json -baseline BENCH.json \
	  -fast 'BenchmarkCompactedPruning/compacted/k=1' \
	  -slow 'BenchmarkCompactedPruning/tombstoned/k=1' \
	  -min-speedup 1.1 -max-regress 0.35
	$(GO) test -bench=BenchmarkBatchAmortized -benchtime=30x -count=3 -run='^$$' . \
	  | $(GO) run ./cmd/benchjson > bench_batch.json
	$(GO) run ./cmd/benchcheck -current bench_batch.json -baseline BENCH.json \
	  -fast 'BenchmarkBatchAmortized/onepass' \
	  -slow 'BenchmarkBatchAmortized/serial' \
	  -min-speedup 1.8 -max-regress 0.35
	$(GO) test -bench=BenchmarkTopKAllocs -benchmem -benchtime=200x -count=2 -run='^$$' ./internal/ir \
	  | $(GO) run ./cmd/benchjson > bench_allocs.json
	$(GO) run ./cmd/benchcheck -allocs bench_allocs.json -alloc-bench BenchmarkTopKAllocs -max-allocs 12
	@rm -f bench_topk.json bench_compact.json bench_batch.json bench_allocs.json

# bench-load refreshes the committed BENCH_LOAD.json: the loadgen smoke
# flow with its single-node report exported to the repo root. Like
# BENCH.json, the committed numbers document a trajectory; the CI gate
# uses machine-independent absolute ceilings, not these raw latencies.
bench-load:
	LOADGEN_JSON=$(CURDIR)/BENCH_LOAD.json ./scripts/smoke.sh loadgen
	@echo "wrote BENCH_LOAD.json"

# eval is the relevance gate: run both committed golden sets offline
# through cmd/eval, enforce each set's committed Precision@k/NDCG@k
# floors, and write the deterministic BENCH_EVAL.json report.
eval:
	$(GO) run ./cmd/eval -golden imdb -golden university -json BENCH_EVAL.json

# eval-smoke boots qunitsd on the IMDb golden corpus and runs the same
# gate online over POST /v1/search, asserting the report is
# byte-identical to the offline run — the serving stack cannot change
# what the gate measures.
eval-smoke:
	./scripts/smoke.sh eval

# cover writes the merged coverage profile CI uploads as an artifact and
# gates internal/ir — the scoring/compaction core — and internal/eval —
# the relevance-gate machinery — on minimum statement coverage, so new
# retrieval or evaluation code cannot land untested.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) test -coverpkg=./internal/ir -coverprofile=coverage_ir.out ./internal/... .
	@total=$$($(GO) tool cover -func=coverage_ir.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "internal/ir coverage: $$total% (floor $(COVER_MIN_IR)%)"; \
	awk -v got="$$total" -v min="$(COVER_MIN_IR)" 'BEGIN { exit (got+0 >= min+0) ? 0 : 1 }' || \
	  { echo "cover: FAIL: internal/ir coverage $$total% is below the $(COVER_MIN_IR)% floor" >&2; exit 1; }
	@rm -f coverage_ir.out
	$(GO) test -coverpkg=./internal/eval -coverprofile=coverage_eval.out ./internal/... .
	@total=$$($(GO) tool cover -func=coverage_eval.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "internal/eval coverage: $$total% (floor $(COVER_MIN_EVAL)%)"; \
	awk -v got="$$total" -v min="$(COVER_MIN_EVAL)" 'BEGIN { exit (got+0 >= min+0) ? 0 : 1 }' || \
	  { echo "cover: FAIL: internal/eval coverage $$total% is below the $(COVER_MIN_EVAL)% floor" >&2; exit 1; }
	@rm -f coverage_eval.out

ci: build fmt-check vet test race soak smoke snapshot-smoke mmap-smoke compact-smoke cluster-smoke loadgen-smoke eval eval-smoke bench bench-regression cover
