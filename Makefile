GO ?= go
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test race vet fmt-check staticcheck smoke snapshot-smoke bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with concurrent hot paths: parallel engine
# build, sharded scoring, live instance mutation, snapshot dump, and
# the HTTP serving layer.
race:
	$(GO) test -race ./internal/search/... ./internal/ir/... ./internal/server/... ./internal/snapshot/...

# vet covers the whole module; the explicit ./examples/... invocation
# keeps the example programs covered even if they ever move behind a
# build tag or their own module.
vet:
	$(GO) vet ./...
	$(GO) vet ./examples/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# staticcheck runs honnef.co/go/tools without adding a module
# dependency; it needs network access to fetch the tool, so it is a CI
# step rather than part of the offline `ci` target.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# smoke boots qunitsd and drives the HTTP surface (/healthz, /v1/search
# single+batch, /v1/feedback, /v1/instances, legacy /search, graceful
# shutdown) with curl.
smoke:
	./scripts/smoke.sh basic

# snapshot-smoke drives the persistence cycle end to end: boot with
# -snapshot, add an instance over /v1, SIGTERM (writes the snapshot),
# restart from it, and assert the added instance is still searchable.
snapshot-smoke:
	./scripts/smoke.sh snapshot

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json runs the full benchmark suite once and writes the results
# as JSON to BENCH.json, so benchmark trajectories are reproducible and
# diffable across commits. The top-k scoring pair additionally gets a
# longer pass so the committed pruned-vs-exhaustive ratio — the
# machine-independent number bench-regression gates on — is measured
# with low noise (benchcheck prefers the higher-iteration entries).
bench-json:
	( $(GO) test -bench=. -benchtime=1x -run='^$$' . && \
	  $(GO) test -bench=BenchmarkTopKScoring -benchtime=50x -run='^$$' . ) \
	  | $(GO) run ./cmd/benchjson > BENCH.json
	@echo "wrote BENCH.json"

# bench-regression measures the pruned-vs-exhaustive top-k scoring
# ratio and fails on a >20% erosion against the committed BENCH.json
# baseline (or on dropping below the 2x floor outright). Ratios, not
# raw ns/op, so the gate is machine-independent.
bench-regression:
	$(GO) test -bench=BenchmarkTopKScoring -benchtime=50x -run='^$$' . \
	  | $(GO) run ./cmd/benchjson > bench_topk.json
	$(GO) run ./cmd/benchcheck -current bench_topk.json -baseline BENCH.json
	@rm -f bench_topk.json

# cover writes the merged coverage profile CI uploads as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...

ci: build fmt-check vet test race smoke snapshot-smoke bench bench-regression
