// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus microbenchmarks for each subsystem and ablation
// benches for the design choices DESIGN.md calls out.
//
// Quality-bearing benches report custom metrics next to timings:
// "relevance" is the Figure 3 statistic (mean judged relevance across the
// workload), so `go test -bench=.` shows both speed and reproduction
// quality in one table.
package qunits_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qunits/internal/banks"
	"qunits/internal/derive"
	"qunits/internal/eval"
	"qunits/internal/evidence"
	"qunits/internal/experiments"
	"qunits/internal/graph"
	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/objectrank"
	"qunits/internal/querylog"
	"qunits/internal/search"
	"qunits/internal/segment"
	"qunits/internal/server"
	"qunits/internal/xtree"
)

// The shared lab is built once; benches that mutate nothing reuse it.
var (
	labOnce  sync.Once
	benchLab *experiments.Lab
)

func sharedLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		lab, err := experiments.NewLab(experiments.SmallConfig())
		if err != nil {
			panic(err)
		}
		benchLab = lab
	})
	return benchLab
}

// --- Experiment benches: one per table/figure -------------------------------

// BenchmarkTable1UserStudy regenerates Table 1 (the five-user study).
func BenchmarkTable1UserStudy(b *testing.B) {
	var st eval.StudyStats
	for i := 0; i < b.N; i++ {
		st = experiments.Table1(int64(i + 1)).Stats
	}
	b.ReportMetric(float64(st.Queries), "queries")
	b.ReportMetric(float64(st.SingleEntity), "single-entity")
	b.ReportMetric(float64(st.Underspecified), "underspecified")
}

// BenchmarkQuerylogBenchmarkConstruction regenerates the §5.2 statistics
// and the 28-query movie querylog benchmark.
func BenchmarkQuerylogBenchmarkConstruction(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	var r *experiments.QuerylogResult
	for i := 0; i < b.N; i++ {
		r = experiments.QuerylogBenchmark(lab)
	}
	b.ReportMetric(r.Stats.ClassFraction(querylog.ClassSingleEntity)*100, "single-entity-%")
	b.ReportMetric(r.Stats.ClassFraction(querylog.ClassEntityAttribute)*100, "entity-attr-%")
	b.ReportMetric(float64(len(r.Workload)), "workload-queries")
}

// BenchmarkFigure3 regenerates the Figure 3 result-quality comparison and
// reports each system's mean relevance.
func BenchmarkFigure3(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	var r *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3(lab)
	}
	b.ReportMetric(r.Score("BANKS"), "banks")
	b.ReportMetric(r.Score("LCA"), "lca")
	b.ReportMetric(r.Score("MLCA"), "mlca")
	b.ReportMetric(r.Score("Qunits (querylog)"), "qunits-querylog")
	b.ReportMetric(r.Score("Qunits (human)"), "qunits-human")
}

// --- Subsystem microbenches --------------------------------------------------

// BenchmarkIMDbGeneration measures synthetic-database generation.
func BenchmarkIMDbGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		imdb.MustGenerate(imdb.Config{Seed: 1, Persons: 300, Movies: 200, CastPerMovie: 5})
	}
}

// BenchmarkDataGraphBuild measures tuple-graph construction (BANKS's
// substrate).
func BenchmarkDataGraphBuild(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Build(lab.Universe.DB)
	}
}

// BenchmarkXTreeBuild measures the XML-view construction (LCA/MLCA's
// substrate).
func BenchmarkXTreeBuild(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xtree.Build(lab.Universe.DB, xtree.BuildOptions{EntityTables: []string{imdb.TablePerson, imdb.TableMovie}})
	}
}

// BenchmarkBanksSearch measures BANKS query latency.
func BenchmarkBanksSearch(b *testing.B) {
	lab := sharedLab(b)
	e := banks.New(graph.Build(lab.Universe.DB), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search("star wars cast", 5)
	}
}

// BenchmarkObjectRankBuild measures authority precomputation (power
// iteration over the tuple graph).
func BenchmarkObjectRankBuild(b *testing.B) {
	lab := sharedLab(b)
	g := graph.Build(lab.Universe.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objectrank.New(g, objectrank.Options{})
	}
}

// BenchmarkObjectRankSearch measures ObjectRank query latency.
func BenchmarkObjectRankSearch(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.ObjectRank.Search("star wars cast", 5)
	}
}

// BenchmarkLCASearch measures smallest-LCA query latency.
func BenchmarkLCASearch(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.Tree.SearchLCA("star wars cast", 5)
	}
}

// BenchmarkMLCASearch measures meaningful-LCA query latency.
func BenchmarkMLCASearch(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.Tree.SearchMLCA("star wars cast", 5)
	}
}

// BenchmarkQunitSearch measures qunit search latency on a prebuilt
// engine — the paper's headline operation.
func BenchmarkQunitSearch(b *testing.B) {
	lab := sharedLab(b)
	ctx := context.Background()
	req := search.Request{Query: "star wars cast", K: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.HumanEngine.Search(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQunitEngineBuild measures full engine construction:
// materializing every qunit instance and indexing it.
func BenchmarkQunitEngineBuild(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQunitEngineBuildSerial pins the sequential baseline: one
// build worker, one index shard — the seed's original construction path.
// Compare against BenchmarkQunitEngineBuild (parallel default) for the
// multi-core build speedup.
func BenchmarkQunitEngineBuildSerial(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: 1, BuildWorkers: 1}
		if _, err := search.NewEngine(cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQunitSearchShards sweeps the shard count on one catalog:
// shards=1 is the seed's sequential scoring path, higher counts score
// shard-parallel. Results are identical at every count; only latency
// may differ.
func BenchmarkQunitSearchShards(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(benchName("shards", shards, "", -1), func(b *testing.B) {
			engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			req := search.Request{Query: "star wars cast", K: 5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Search(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQunitSearchParallelClients measures sustained throughput with
// GOMAXPROCS concurrent querying goroutines — the serving workload.
func BenchmarkQunitSearchParallelClients(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	ctx := context.Background()
	req := search.Request{Query: "star wars cast", K: 5}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := lab.HumanEngine.Search(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerSearchCold measures the full HTTP serving path with the
// result cache disabled: parse, engine search, JSON encode.
func BenchmarkServerSearchCold(b *testing.B) {
	lab := sharedLab(b)
	srv := server.New(lab.HumanEngine, server.Config{CacheSize: -1})
	req := httptest.NewRequest("GET", "/search?q=star+wars+cast&k=5", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServerSearchCached measures the same path served from the LRU
// result cache — the steady state for a head-skewed query workload.
func BenchmarkServerSearchCached(b *testing.B) {
	lab := sharedLab(b)
	srv := server.New(lab.HumanEngine, server.Config{})
	req := httptest.NewRequest("GET", "/search?q=star+wars+cast&k=5", nil)
	srv.ServeHTTP(httptest.NewRecorder(), req) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServerV1Search measures the structured POST /v1/search path
// cold (cache disabled): JSON decode, engine search, JSON encode.
func BenchmarkServerV1Search(b *testing.B) {
	lab := sharedLab(b)
	srv := server.New(lab.HumanEngine, server.Config{CacheSize: -1})
	body := `{"query":"star wars cast","k":5}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/search", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerV1SearchBatch measures an 8-query /v1/search batch per
// op — the amortized-overhead serving mode.
func BenchmarkServerV1SearchBatch(b *testing.B) {
	lab := sharedLab(b)
	srv := server.New(lab.HumanEngine, server.Config{CacheSize: -1})
	items := make([]string, 8)
	for i := range items {
		items[i] = `{"query":"star wars cast","k":5}`
	}
	body := `{"queries":[` + strings.Join(items, ",") + `]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/search", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// --- top-k pruned scoring: the scoring-path regression gate ------------------

// topkBench holds two engines over one larger IMDb corpus: the default
// pruned top-k path and the exhaustive oracle. CI's bench-regression
// step compares the two sub-benchmarks' ns/op — a machine-independent
// speedup ratio — against the committed baseline.
var (
	topkOnce    sync.Once
	topkPruned  *search.Engine
	topkOracle  *search.Engine
	topkQueries = []string{"star wars cast", "george clooney movies", "the of movie", "soundtrack"}
)

func topkEngines(b *testing.B) (*search.Engine, *search.Engine) {
	b.Helper()
	topkOnce.Do(func() {
		u := imdb.MustGenerate(imdb.Config{Seed: 9, Persons: 2500, Movies: 1500, CastPerMovie: 6})
		build := func(exhaustive bool) *search.Engine {
			cat, err := derive.Expert{}.Derive(u.DB)
			if err != nil {
				panic(err)
			}
			e, err := search.NewEngine(cat, search.Options{
				Synonyms:         imdb.AttributeSynonyms(),
				ExhaustiveScorer: exhaustive,
			})
			if err != nil {
				panic(err)
			}
			return e
		}
		topkPruned, topkOracle = build(false), build(true)
	})
	return topkPruned, topkOracle
}

// BenchmarkTopKScoring measures the request page path (k <= 10, the
// serving sweet spot) through the pruned scorer and the exhaustive
// oracle. Results are parity-enforced identical; only the work differs.
func BenchmarkTopKScoring(b *testing.B) {
	pruned, oracle := topkEngines(b)
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		engine *search.Engine
	}{{"pruned", pruned}, {"exhaustive", oracle}} {
		for _, k := range []int{1, 10} {
			b.Run(mode.name+"/k="+itoa(k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					req := search.Request{Query: topkQueries[i%len(topkQueries)], K: k}
					if _, err := mode.engine.Search(ctx, req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- compaction: the pruning-decay regression gate ---------------------------

// compactionIndexes holds a 50%-tombstoned single-shard index (stale
// block-max metadata, dead postings inside every block) and its
// compacted twin. Both rank every query bitwise identically; the only
// difference is the physical work — the tombstoned run decodes twice
// the postings and prunes against stale (loose) bounds. A single shard
// keeps the measurement free of goroutine fan-out noise, so the ns/op
// ratio CI's second bench-regression gate checks isolates exactly the
// decay compaction reverses.
var (
	compactOnce  sync.Once
	tombstonedIx *ir.ShardedIndex
	compactedIx  *ir.ShardedIndex
)

func compactionIndexes(b *testing.B) (tombstoned, compacted *ir.ShardedIndex) {
	b.Helper()
	compactOnce.Do(func() {
		r := rand.New(rand.NewSource(17))
		words := make([]string, 48)
		for i := range words {
			words[i] = fmt.Sprintf("w%02d", i)
		}
		tombstonedIx = ir.NewShardedIndex(1)
		const docs = 24 * 1024
		for i := 0; i < docs; i++ {
			var sb strings.Builder
			sb.WriteString("common")
			for w, n := 0, 2+r.Intn(8); w < n; w++ {
				sb.WriteByte(' ')
				sb.WriteString(words[r.Intn(len(words))])
			}
			tombstonedIx.MustAdd(fmt.Sprintf("doc%05d", i), ir.Field{Text: sb.String()})
		}
		for i := 0; i < docs; i += 2 {
			if err := tombstonedIx.Remove(fmt.Sprintf("doc%05d", i)); err != nil {
				panic(err)
			}
		}
		var err error
		if compactedIx, _, err = tombstonedIx.Compacted(); err != nil {
			panic(err)
		}
	})
	return tombstonedIx, compactedIx
}

var compactionQueries = []string{"common w03", "w11 w27 common", "w05 w06 w07", "common"}

// BenchmarkCompactedPruning measures pruned top-k retrieval on the
// 50%-tombstoned index versus its compacted twin — identical results,
// different traversal cost.
func BenchmarkCompactedPruning(b *testing.B) {
	tombstoned, compacted := compactionIndexes(b)
	scorer := ir.BM25{B: 0.3}
	for _, mode := range []struct {
		name  string
		index *ir.ShardedIndex
	}{{"tombstoned", tombstoned}, {"compacted", compacted}} {
		for _, k := range []int{1, 10} {
			b.Run(mode.name+"/k="+itoa(k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if hits := mode.index.Search(scorer, compactionQueries[i%len(compactionQueries)], k); len(hits) != k {
						b.Fatalf("got %d hits", len(hits))
					}
				}
			})
		}
	}
}

// --- amortized batch execution: the batch-path regression gate ---------------

// batchFixture holds one pruned engine over the top-k corpus plus a
// 64-query mixed batch drawn from the zipfian head of a generated query
// log (mixed k and offsets, all items distinct). CI's third
// bench-regression gate compares the one-pass batch against serial
// per-item execution — results are parity-enforced identical; only the
// posting-list work differs.
var (
	batchAmortOnce   sync.Once
	batchAmortEngine *search.Engine
	batchAmortReqs   []search.Request
)

func batchFixture(b *testing.B) (*search.Engine, []search.Request) {
	b.Helper()
	batchAmortOnce.Do(func() {
		u := imdb.MustGenerate(imdb.Config{Seed: 9, Persons: 2500, Movies: 1500, CastPerMovie: 6})
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			panic(err)
		}
		batchAmortEngine, err = search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if err != nil {
			panic(err)
		}
		lcfg := querylog.DefaultGenConfig()
		lcfg.Volume = 3000
		qlog := querylog.Generate(u, lcfg)
		ks := []int{10, 5, 1, 10}
		offsets := []int{0, 0, 2, 0}
		for _, entry := range qlog.Entries {
			if strings.TrimSpace(entry.Query) == "" {
				continue
			}
			n := len(batchAmortReqs)
			batchAmortReqs = append(batchAmortReqs, search.Request{Query: entry.Query, K: ks[n%4], Offset: offsets[n%4]})
			if len(batchAmortReqs) == 64 {
				break
			}
		}
		if len(batchAmortReqs) != 64 {
			panic("batch fixture: query log head too small")
		}
	})
	return batchAmortEngine, batchAmortReqs
}

// BenchmarkBatchAmortized measures a 64-query mixed batch through the
// one-pass amortized executor versus 64 serial Search calls on the same
// engine.
func BenchmarkBatchAmortized(b *testing.B) {
	engine, reqs := batchFixture(b)
	ctx := context.Background()
	b.Run("onepass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range engine.BatchSearch(ctx, reqs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := engine.Search(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkLazyResolverBuild measures non-materialized resolver
// construction (§3's "no requirement that qunits be materialized") —
// compare against BenchmarkQunitEngineBuild.
func BenchmarkLazyResolverBuild(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.NewResolver(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	}
}

// BenchmarkLazyResolverSearch measures on-demand qunit evaluation per
// query — the other side of the materialization trade-off.
func BenchmarkLazyResolverSearch(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	r := search.NewResolver(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search("star wars cast", 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentation measures query segmentation latency.
func BenchmarkSegmentation(b *testing.B) {
	lab := sharedLab(b)
	seg := lab.Segmenter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Segment("george clooney movies")
	}
}

// BenchmarkDictionaryBuild measures entity-dictionary construction.
func BenchmarkDictionaryBuild(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segment.BuildDictionary(lab.Universe.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	}
}

// BenchmarkQuerylogGeneration measures synthetic log generation.
func BenchmarkQuerylogGeneration(b *testing.B) {
	lab := sharedLab(b)
	cfg := querylog.DefaultGenConfig()
	cfg.Volume = 4000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		querylog.Generate(lab.Universe, cfg)
	}
}

// BenchmarkDeriveSchema measures §4.1 derivation.
func BenchmarkDeriveSchema(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (derive.FromSchema{}).Derive(lab.Universe.DB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveQueryLog measures §4.2 derivation.
func BenchmarkDeriveQueryLog(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (derive.FromQueryLog{Log: lab.Log, Segmenter: lab.Segmenter}).Derive(lab.Universe.DB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveEvidence measures §4.3 derivation, including signature
// mining over the page corpus.
func BenchmarkDeriveEvidence(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (derive.FromEvidence{Pages: lab.Pages, Dict: lab.Dict}).Derive(lab.Universe.DB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvidenceCorpusBuild measures synthetic page rendering.
func BenchmarkEvidenceCorpusBuild(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evidence.BuildCorpus(lab.Universe, lab.Config.CorpusPages)
	}
}

// BenchmarkIRIndexing measures inverted-index construction throughput.
func BenchmarkIRIndexing(b *testing.B) {
	lab := sharedLab(b)
	var docs []string
	for _, m := range lab.Universe.Movies {
		docs = append(docs, m.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := ir.NewIndex()
		for j, d := range docs {
			ix.MustAdd(string(rune('a'+j%26))+d, ir.Field{Text: d})
		}
	}
}

// --- Ablation benches --------------------------------------------------------

// relevanceOf runs the Figure 3 protocol for a single system and returns
// its mean relevance; the ablation benches use it as their quality
// metric.
func relevanceOf(lab *experiments.Lab, sys experiments.System) float64 {
	panel := eval.NewPanel(lab.Config.Judges, lab.Config.JudgeNoise, lab.Config.Seed+2)
	workload := eval.BuildSurveyWorkload(lab.Log, lab.Segmenter, lab.Config.WorkloadSize)
	var perQuery []float64
	for _, sq := range workload {
		oracle := 0.0
		if res, ok := sys.Answer(sq.Query); ok {
			oracle = lab.Oracle.Score(sq.Need, res)
		}
		perQuery = append(perQuery, eval.Mean(panel.Rate(oracle)))
	}
	return eval.Mean(perQuery)
}

// BenchmarkAblationSchemaK sweeps §4.1's tunable k1/k2 parameters and
// reports the resulting search quality.
func BenchmarkAblationSchemaK(b *testing.B) {
	lab := sharedLab(b)
	for _, k := range []struct{ k1, k2 int }{{1, 2}, {2, 2}, {2, 4}, {2, 6}, {4, 4}} {
		k := k
		b.Run(benchName("k1", k.k1, "k2", k.k2), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cat, err := derive.FromSchema{K1: k.k1, K2: k.k2}.Derive(lab.Universe.DB)
				if err != nil {
					b.Fatal(err)
				}
				engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
				if err != nil {
					b.Fatal(err)
				}
				rel = relevanceOf(lab, &experiments.QunitSystem{Label: "ablation", Engine: engine})
			}
			b.ReportMetric(rel, "relevance")
		})
	}
}

// BenchmarkAblationLogSize sweeps the query-log volume available to §4.2
// derivation: how much log does rollup need before quality saturates?
func BenchmarkAblationLogSize(b *testing.B) {
	lab := sharedLab(b)
	for _, volume := range []int{250, 1000, 4000} {
		volume := volume
		b.Run(benchName("volume", volume, "", -1), func(b *testing.B) {
			cfg := querylog.DefaultGenConfig()
			cfg.Seed = lab.Config.Seed + 1
			cfg.Volume = volume
			log := querylog.Generate(lab.Universe, cfg)
			var rel float64
			for i := 0; i < b.N; i++ {
				cat, err := (derive.FromQueryLog{Log: log, Segmenter: lab.Segmenter}).Derive(lab.Universe.DB)
				if err != nil {
					b.Fatal(err)
				}
				engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
				if err != nil {
					b.Fatal(err)
				}
				rel = relevanceOf(lab, &experiments.QunitSystem{Label: "ablation", Engine: engine})
			}
			b.ReportMetric(rel, "relevance")
		})
	}
}

// BenchmarkAblationEvidenceSize sweeps the evidence corpus size available
// to §4.3 derivation.
func BenchmarkAblationEvidenceSize(b *testing.B) {
	lab := sharedLab(b)
	for _, scale := range []int{10, 30, 60} {
		scale := scale
		b.Run(benchName("pages", scale*4, "", -1), func(b *testing.B) {
			pages := evidence.BuildCorpus(lab.Universe, evidence.CorpusConfig{
				Seed: 1, MoviePages: scale, CastPages: scale, FilmographyPages: scale, SoundtrackPages: scale,
			})
			var rel float64
			for i := 0; i < b.N; i++ {
				cat, err := (derive.FromEvidence{Pages: pages, Dict: lab.Dict, MinPages: 3}).Derive(lab.Universe.DB)
				if err != nil {
					b.Skip("corpus too small to derive any definitions")
				}
				engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
				if err != nil {
					b.Fatal(err)
				}
				rel = relevanceOf(lab, &experiments.QunitSystem{Label: "ablation", Engine: engine})
			}
			b.ReportMetric(rel, "relevance")
		})
	}
}

// BenchmarkAblationRanker compares BM25 against TF-IDF cosine inside the
// qunit engine — the "standard IR techniques" slot is pluggable.
func BenchmarkAblationRanker(b *testing.B) {
	lab := sharedLab(b)
	cat, err := derive.Expert{}.Derive(lab.Universe.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, scorer := range []ir.Scorer{ir.BM25{B: 0.3}, ir.BM25{}, ir.TFIDF{}} {
		scorer := scorer
		name := scorer.Name()
		if bm, ok := scorer.(ir.BM25); ok && bm.B != 0 {
			name = "bm25-b0.3"
		}
		b.Run(name, func(b *testing.B) {
			engine, err := search.NewEngine(cat, search.Options{Scorer: scorer, Synonyms: imdb.AttributeSynonyms()})
			if err != nil {
				b.Fatal(err)
			}
			var rel float64
			for i := 0; i < b.N; i++ {
				rel = relevanceOf(lab, &experiments.QunitSystem{Label: "ablation", Engine: engine})
			}
			b.ReportMetric(rel, "relevance")
		})
	}
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	name := k1 + "=" + itoa(v1)
	if v2 >= 0 {
		name += "/" + k2 + "=" + itoa(v2)
	}
	return name
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
