// Command benchcheck gates the scoring hot path against performance
// regressions using benchjson output (see cmd/benchjson).
//
// Raw ns/op numbers are useless across machines — a laptop baseline
// would "regress" on every slower CI runner. So the gate is the
// RATIO between two benchmarks from the same run: the pruned top-k
// scoring path and its exhaustive oracle. The ratio is a
// machine-independent measure of how much work pruning saves; it is
// compared against an absolute floor (-min-speedup, the repo's
// advertised speedup) and against the committed baseline's ratio
// (-max-regress, the fraction of that ratio allowed to erode).
//
//	go test -bench TopKScoring -benchtime=50x -run '^$' . \
//	  | go run ./cmd/benchjson > /tmp/topk.json
//	go run ./cmd/benchcheck -current /tmp/topk.json -baseline BENCH.json \
//	  -fast 'BenchmarkTopKScoring/pruned/k=10' \
//	  -slow 'BenchmarkTopKScoring/exhaustive/k=10'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// result mirrors benchjson's output shape.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	current := flag.String("current", "", "benchjson file of the run under test (required)")
	baseline := flag.String("baseline", "", "benchjson file of the committed baseline (optional)")
	fast := flag.String("fast", "BenchmarkTopKScoring/pruned/k=10", "benchmark whose ns/op should be small")
	slow := flag.String("slow", "BenchmarkTopKScoring/exhaustive/k=10", "benchmark whose ns/op anchors the ratio")
	minSpeedup := flag.Float64("min-speedup", 2.0, "fail when slow/fast falls below this ratio")
	maxRegress := flag.Float64("max-regress", 0.20, "fail when the ratio erodes by more than this fraction vs the baseline")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}

	curRatio, err := ratioFrom(*current, *fast, *slow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	fmt.Printf("benchcheck: current %s/%s speedup = %.2fx\n", *slow, *fast, curRatio)
	failed := false
	if curRatio < *minSpeedup {
		fmt.Printf("benchcheck: FAIL: speedup %.2fx is below the %.2fx floor\n", curRatio, *minSpeedup)
		failed = true
	}
	if *baseline != "" {
		baseRatio, err := ratioFrom(*baseline, *fast, *slow)
		switch {
		case err != nil:
			// A baseline that predates these benchmarks is not an error:
			// the absolute floor still gates the run.
			fmt.Printf("benchcheck: baseline has no usable ratio (%v); floor check only\n", err)
		default:
			floor := baseRatio * (1 - *maxRegress)
			fmt.Printf("benchcheck: baseline speedup = %.2fx (allowed floor %.2fx)\n", baseRatio, floor)
			if curRatio < floor {
				fmt.Printf("benchcheck: FAIL: scoring-path speedup regressed more than %.0f%%\n", *maxRegress*100)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// ratioFrom loads a benchjson file and returns slow.ns/op ÷ fast.ns/op.
func ratioFrom(path, fast, slow string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var results []result
	if err := json.Unmarshal(raw, &results); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	// A file may carry the same benchmark at several -benchtime settings
	// (the committed baseline appends a longer top-k pass to the 1x
	// sweep); prefer the entry with the most iterations — the least
	// noisy measurement.
	ns := func(name string) (float64, error) {
		var best *result
		for i := range results {
			r := &results[i]
			if r.Name == name && (best == nil || r.Iterations > best.Iterations) {
				best = r
			}
		}
		if best == nil {
			return 0, fmt.Errorf("%s: no benchmark %q", path, name)
		}
		if v, ok := best.Metrics["ns/op"]; ok && v > 0 {
			return v, nil
		}
		return 0, fmt.Errorf("%s: %q has no positive ns/op", path, name)
	}
	f, err := ns(fast)
	if err != nil {
		return 0, err
	}
	s, err := ns(slow)
	if err != nil {
		return 0, err
	}
	return s / f, nil
}
