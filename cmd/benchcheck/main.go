// Command benchcheck gates the scoring hot path against performance
// regressions using benchjson output (see cmd/benchjson).
//
// Raw ns/op numbers are useless across machines — a laptop baseline
// would "regress" on every slower CI runner. So the gate is the
// RATIO between two benchmarks from the same run: the pruned top-k
// scoring path and its exhaustive oracle. The ratio is a
// machine-independent measure of how much work pruning saves; it is
// compared against an absolute floor (-min-speedup, the repo's
// advertised speedup) and against the committed baseline's ratio
// (-max-regress, the fraction of that ratio allowed to erode).
//
//	go test -bench TopKScoring -benchtime=50x -run '^$' . \
//	  | go run ./cmd/benchjson > /tmp/topk.json
//	go run ./cmd/benchcheck -current /tmp/topk.json -baseline BENCH.json \
//	  -fast 'BenchmarkTopKScoring/pruned/k=10' \
//	  -slow 'BenchmarkTopKScoring/exhaustive/k=10'
//
// With -load it instead gates a cmd/loadgen BENCH_LOAD.json document:
// every run must stay under an absolute p99 ceiling (-max-p99, in
// microseconds — set it generously above the worst expected CI-runner
// tail, it exists to catch order-of-magnitude regressions, not jitter),
// under an error-rate ceiling (-max-error-rate), and over a request
// floor (-min-requests, so an accidentally-empty run cannot pass). An
// optional committed baseline (-load-baseline) additionally bounds p99
// growth to a multiple of the baseline's (-max-p99-regress).
//
//	go run ./cmd/benchcheck -load /tmp/BENCH_LOAD.json \
//	  -max-p99 500000 -max-error-rate 0 -min-requests 50
//
// With -allocs it instead gates a benchmark's allocs/op against an
// absolute ceiling (-max-allocs). Allocation counts — unlike ns/op —
// are machine-independent, so an absolute gate is meaningful: the
// benchmark must have been run with -benchmem for benchjson to carry
// the metric.
//
//	go test -bench TopKAllocs -benchmem -run '^$' ./internal/ir \
//	  | go run ./cmd/benchjson > /tmp/allocs.json
//	go run ./cmd/benchcheck -allocs /tmp/allocs.json \
//	  -alloc-bench 'BenchmarkTopKAllocs' -max-allocs 12
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"qunits/internal/loadgen"
)

// result mirrors benchjson's output shape.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	current := flag.String("current", "", "benchjson file of the run under test (required)")
	baseline := flag.String("baseline", "", "benchjson file of the committed baseline (optional)")
	fast := flag.String("fast", "BenchmarkTopKScoring/pruned/k=10", "benchmark whose ns/op should be small")
	slow := flag.String("slow", "BenchmarkTopKScoring/exhaustive/k=10", "benchmark whose ns/op anchors the ratio")
	minSpeedup := flag.Float64("min-speedup", 2.0, "fail when slow/fast falls below this ratio")
	maxRegress := flag.Float64("max-regress", 0.20, "fail when the ratio erodes by more than this fraction vs the baseline")
	load := flag.String("load", "", "gate a cmd/loadgen BENCH_LOAD.json instead of a benchjson ratio")
	loadBaseline := flag.String("load-baseline", "", "committed BENCH_LOAD.json to bound p99 growth against (optional)")
	maxP99 := flag.Int64("max-p99", 0, "fail when any load run's p99 exceeds this many microseconds (0 = no ceiling)")
	maxErrorRate := flag.Float64("max-error-rate", 0, "fail when any load run's error rate exceeds this fraction")
	minRequests := flag.Int64("min-requests", 1, "fail when any load run measured fewer requests than this")
	maxP99Regress := flag.Float64("max-p99-regress", 3.0, "fail when a run's p99 exceeds this multiple of the baseline run's (same mode)")
	allocs := flag.String("allocs", "", "gate a benchjson file's allocs/op instead of a ns/op ratio")
	allocBench := flag.String("alloc-bench", "BenchmarkTopKAllocs", "benchmark whose allocs/op is gated by -max-allocs")
	maxAllocs := flag.Float64("max-allocs", 12, "fail when the -alloc-bench benchmark allocates more than this many objects per op")
	flag.Parse()
	if *load != "" {
		if checkLoad(*load, *loadBaseline, *maxP99, *maxErrorRate, *minRequests, *maxP99Regress) {
			os.Exit(1)
		}
		fmt.Println("benchcheck: ok")
		return
	}
	if *allocs != "" {
		if checkAllocs(*allocs, *allocBench, *maxAllocs) {
			os.Exit(1)
		}
		fmt.Println("benchcheck: ok")
		return
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}

	curRatio, err := ratioFrom(*current, *fast, *slow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	fmt.Printf("benchcheck: current %s/%s speedup = %.2fx\n", *slow, *fast, curRatio)
	failed := false
	if curRatio < *minSpeedup {
		fmt.Printf("benchcheck: FAIL: speedup %.2fx is below the %.2fx floor\n", curRatio, *minSpeedup)
		failed = true
	}
	if *baseline != "" {
		baseRatio, err := ratioFrom(*baseline, *fast, *slow)
		switch {
		case err != nil:
			// A baseline that predates these benchmarks is not an error:
			// the absolute floor still gates the run.
			fmt.Printf("benchcheck: baseline has no usable ratio (%v); floor check only\n", err)
		default:
			floor := baseRatio * (1 - *maxRegress)
			fmt.Printf("benchcheck: baseline speedup = %.2fx (allowed floor %.2fx)\n", baseRatio, floor)
			if curRatio < floor {
				fmt.Printf("benchcheck: FAIL: scoring-path speedup regressed more than %.0f%%\n", *maxRegress*100)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// checkLoad gates a BENCH_LOAD.json document; returns true on failure.
func checkLoad(path, baselinePath string, maxP99 int64, maxErrRate float64, minRequests int64, maxP99Regress float64) bool {
	doc, err := loadgen.ReadDocument(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return true
	}
	if len(doc.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s has no runs\n", path)
		return true
	}
	// Baseline p99 per mode, when a usable baseline exists.
	basis := map[string]int64{}
	if baselinePath != "" {
		base, err := loadgen.ReadDocument(baselinePath)
		if err != nil {
			// A missing or stale baseline is not fatal: absolute gates
			// still apply (mirrors the benchjson baseline behavior).
			fmt.Printf("benchcheck: no usable load baseline (%v); absolute gates only\n", err)
		} else {
			for _, r := range base.Runs {
				if r.Latency.P99 > 0 {
					basis[r.Mode] = r.Latency.P99
				}
			}
		}
	}
	failed := false
	for _, r := range doc.Runs {
		fmt.Printf("benchcheck: load %-6s %6d req %8.1f qps err=%.4f p99=%dµs\n",
			r.Mode, r.Requests, r.QPS, r.ErrorRate, r.Latency.P99)
		if r.Requests < minRequests {
			fmt.Printf("benchcheck: FAIL: %s run measured %d requests, floor is %d\n", r.Mode, r.Requests, minRequests)
			failed = true
		}
		if r.ErrorRate > maxErrRate {
			fmt.Printf("benchcheck: FAIL: %s run error rate %.4f exceeds %.4f\n", r.Mode, r.ErrorRate, maxErrRate)
			failed = true
		}
		if maxP99 > 0 && r.Latency.P99 > maxP99 {
			fmt.Printf("benchcheck: FAIL: %s run p99 %dµs exceeds the %dµs ceiling\n", r.Mode, r.Latency.P99, maxP99)
			failed = true
		}
		if base, ok := basis[r.Mode]; ok && maxP99Regress > 0 {
			if ceil := int64(float64(base) * maxP99Regress); r.Latency.P99 > ceil {
				fmt.Printf("benchcheck: FAIL: %s run p99 %dµs exceeds %.1fx the baseline's %dµs\n",
					r.Mode, r.Latency.P99, maxP99Regress, base)
				failed = true
			}
		}
	}
	return failed
}

// checkAllocs gates a benchmark's allocs/op against an absolute
// ceiling; returns true on failure. Allocation counts are exact on a
// steady-state benchmark, so unlike the ns/op gates no baseline or
// ratio is involved — the committed ceiling IS the budget.
func checkAllocs(path, bench string, maxAllocs float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return true
	}
	var results []result
	if err := json.Unmarshal(raw, &results); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
		return true
	}
	// Among repetitions, take the highest allocs/op: warm-up effects
	// only ever hide allocations (a pool hit where steady state would
	// miss), so the maximum is the honest measurement.
	worst, found := 0.0, false
	for i := range results {
		r := &results[i]
		if r.Name != bench {
			continue
		}
		v, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		found = true
		if v > worst {
			worst = v
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: no benchmark %q with an allocs/op metric (was it run with -benchmem?)\n", path, bench)
		return true
	}
	fmt.Printf("benchcheck: %s allocs/op = %.1f (budget %.1f)\n", bench, worst, maxAllocs)
	if worst > maxAllocs {
		fmt.Printf("benchcheck: FAIL: %s allocates %.1f objects/op, budget is %.1f\n", bench, worst, maxAllocs)
		return true
	}
	return false
}

// ratioFrom loads a benchjson file and returns slow.ns/op ÷ fast.ns/op.
func ratioFrom(path, fast, slow string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var results []result
	if err := json.Unmarshal(raw, &results); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	// A file may carry the same benchmark at several -benchtime settings
	// (the committed baseline appends a longer top-k pass to the 1x
	// sweep); prefer the entries with the most iterations — the least
	// noisy measurement. Among repetitions at that same iteration count
	// (a -count=N run), take the fastest: each repetition's ns/op is
	// the true cost plus nonnegative scheduling noise, so the minimum
	// is the most robust estimator on a shared CI runner.
	ns := func(name string) (float64, error) {
		var maxIter int64 = -1
		best := 0.0
		for i := range results {
			r := &results[i]
			if r.Name != name {
				continue
			}
			v, ok := r.Metrics["ns/op"]
			if !ok || v <= 0 {
				continue
			}
			switch {
			case r.Iterations > maxIter:
				maxIter, best = r.Iterations, v
			case r.Iterations == maxIter && v < best:
				best = v
			}
		}
		if maxIter < 0 {
			return 0, fmt.Errorf("%s: no benchmark %q with positive ns/op", path, name)
		}
		return best, nil
	}
	f, err := ns(fast)
	if err != nil {
		return 0, err
	}
	s, err := ns(slow)
	if err != nil {
		return 0, err
	}
	return s / f, nil
}
