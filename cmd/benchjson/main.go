// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson
//
// Each object carries the benchmark name, the -N procs suffix, the
// iteration count, and every reported metric (ns/op, B/op, plus custom
// b.ReportMetric units like "relevance"). Non-benchmark lines are
// ignored, so the tool can consume raw `go test` output directly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	results := []Result{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: Name[-procs] N value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters, Metrics: make(map[string]float64)}
		r.Name, r.Procs = splitProcs(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// splitProcs splits the "-8" GOMAXPROCS suffix off a benchmark name.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 0
	}
	return name[:i], procs
}
