// Command eval is the relevance-quality gate: it runs golden query sets
// (curated query → expected-qunit judgments) against the search stack,
// computes Precision@k, Recall@k, MRR, and NDCG@k, and fails when the
// committed floors are not met — turning the paper's Figure 3 result-
// quality metric into a continuously enforced regression test.
//
// Evaluate the committed golden sets offline (a fresh engine per set,
// rebuilt from each set's corpus recipe):
//
//	eval -golden imdb -golden university -json BENCH_EVAL.json
//
// Evaluate online, against a running qunitsd serving the same corpus —
// single node, coordinator, or follower; the gate then exercises the
// whole serving stack including the scatter-gather merge:
//
//	qunitsd -addr :8080 -seed 1 -persons 120 -movies 80 &
//	eval -golden imdb -online -addr http://127.0.0.1:8080
//
// Serving is parity-locked end to end, so online and offline runs over
// the same corpus produce byte-identical reports (scripts/smoke.sh
// asserts exactly that).
//
// Generate a candidate golden set for human curation (the survey
// workload judged by the need oracle's Table 2 rubric):
//
//	eval -generate imdb -seed 1 -persons 120 -movies 80 -out imdb_golden.jsonl
//	eval -generate university -out university_golden.jsonl
//
// Flags -min-precision/-min-ndcg override the committed floors; -json
// writes the full report (the BENCH_EVAL.json artifact). The exit code
// is 0 when every set passes, 1 when any floor is missed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/eval"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/synth"
)

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var goldens stringList
	var (
		online       = flag.Bool("online", false, "evaluate over HTTP against -addr instead of an in-process engine")
		addr         = flag.String("addr", "http://127.0.0.1:8080", "base URL of the running qunitsd (online mode)")
		k            = flag.Int("k", 0, "evaluation depth override; 0 uses each set's committed k")
		minPrecision = flag.Float64("min-precision", -1, "Precision@k floor override; negative uses each set's committed floor")
		minNDCG      = flag.Float64("min-ndcg", -1, "NDCG@k floor override; negative uses each set's committed floor")
		jsonOut      = flag.String("json", "", "write the full report as JSON to this file (BENCH_EVAL.json)")
		generate     = flag.String("generate", "", "generate a candidate golden set for this corpus (imdb or university) and exit")
		out          = flag.String("out", "", "generated golden set destination (default stdout)")
		queries      = flag.Int("queries", 25, "generate: survey-workload size")
		candidates   = flag.Int("candidates", 0, "generate: results judged per query (0 = 2k)")
		name         = flag.String("name", "", "generate: set name (default: the corpus name)")
		seed         = flag.Int64("seed", 1, "generate: corpus seed")
		persons      = flag.Int("persons", 120, "generate: imdb persons")
		movies       = flag.Int("movies", 80, "generate: imdb movies")
		castPerMovie = flag.Int("cast-per-movie", 5, "generate: imdb cast entries per movie")
		departments  = flag.Int("departments", 8, "generate: university departments")
		professors   = flag.Int("professors", 40, "generate: university professors")
		courses      = flag.Int("courses", 120, "generate: university courses")
		students     = flag.Int("students", 200, "generate: university students")
		enrolls      = flag.Int("enroll-per-student", 3, "generate: university enrollments per student")
		deriveMode   = flag.String("derive", "", "generate: catalog derivation (expert or schema; default expert for imdb, schema for university)")
		evalK        = flag.Int("eval-k", 10, "generate: committed evaluation depth")
	)
	flag.Var(&goldens, "golden", "golden set to evaluate: a builtin name (imdb, university) or a JSONL path; repeatable")
	flag.Parse()

	if *generate != "" {
		hdr := eval.GoldenHeader{
			Name: *name, Corpus: *generate, Seed: *seed, Derive: *deriveMode, K: *evalK,
		}
		if hdr.Name == "" {
			hdr.Name = *generate
		}
		switch *generate {
		case eval.CorpusIMDb:
			hdr.Persons, hdr.Movies, hdr.CastPerMovie = *persons, *movies, *castPerMovie
		case eval.CorpusUniversity:
			hdr.Departments, hdr.Professors, hdr.Courses = *departments, *professors, *courses
			hdr.Students, hdr.EnrollPerStudent = *students, *enrolls
		default:
			fatalf(2, "eval: -generate %q: want %s or %s", *generate, eval.CorpusIMDb, eval.CorpusUniversity)
		}
		if err := runGenerate(hdr, *queries, *candidates, *out); err != nil {
			fatalf(1, "eval: %v", err)
		}
		return
	}

	if len(goldens) == 0 {
		fatalf(2, "eval: name at least one -golden set (builtin: %s)", strings.Join(eval.BuiltinGoldenNames(), ", "))
	}
	report := &eval.Report{Format: eval.ReportFormat}
	for _, nameOrPath := range goldens {
		set, err := loadSet(nameOrPath)
		if err != nil {
			fatalf(2, "eval: %v", err)
		}
		if *k > 0 {
			set.Header.K = *k
		}
		searcher, err := searcherFor(set, *online, *addr)
		if err != nil {
			fatalf(1, "eval: %s: %v", set.Header.Name, err)
		}
		sr, err := eval.EvaluateGolden(context.Background(), searcher, set)
		if err != nil {
			fatalf(1, "eval: %s: %v", set.Header.Name, err)
		}
		floors := sr.Floors
		if *minPrecision >= 0 {
			floors.Precision = *minPrecision
		}
		if *minNDCG >= 0 {
			floors.NDCG = *minNDCG
		}
		sr.CheckFloors(floors)
		report.Sets = append(report.Sets, *sr)
		verdict := "PASS"
		if !sr.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("eval: %s (corpus %s, k=%d): %d queries, %d answered · precision@k %.4f (floor %.2f) · recall@k %.4f · mrr %.4f · ndcg@k %.4f (floor %.2f) · %s\n",
			sr.Name, sr.Corpus, sr.K, sr.Queries, sr.Answered,
			sr.Precision, sr.Floors.Precision, sr.Recall, sr.MRR, sr.NDCG, sr.Floors.NDCG, verdict)
	}
	if *jsonOut != "" {
		if err := eval.WriteReport(*jsonOut, report); err != nil {
			fatalf(1, "eval: writing %s: %v", *jsonOut, err)
		}
		fmt.Printf("eval: wrote %s\n", *jsonOut)
	}
	if !report.Pass() {
		fatalf(1, "eval: FAIL: a quality floor was missed (see above)")
	}
}

// loadSet resolves a -golden argument: builtin name or file path.
func loadSet(nameOrPath string) (*eval.GoldenSet, error) {
	for _, b := range eval.BuiltinGoldenNames() {
		if nameOrPath == b {
			return eval.BuiltinGolden(nameOrPath)
		}
	}
	return eval.LoadGolden(nameOrPath)
}

// searcherFor builds the evaluation seam for one set: the HTTP adapter
// in online mode, otherwise a fresh engine rebuilt from the set's
// corpus recipe.
func searcherFor(set *eval.GoldenSet, online bool, addr string) (eval.Searcher, error) {
	if online {
		return eval.HTTPSearcher{BaseURL: addr}, nil
	}
	engine, _, _, err := buildCorpus(set.Header)
	if err != nil {
		return nil, err
	}
	return eval.EngineSearcher{Engine: engine}, nil
}

// buildCorpus materializes the engine (and oracle, for generation) a
// golden header describes.
func buildCorpus(hdr eval.GoldenHeader) (*search.Engine, *eval.Oracle, *relational.Database, error) {
	switch hdr.Corpus {
	case eval.CorpusIMDb:
		u, err := imdb.Generate(imdb.Config{
			Seed: hdr.Seed, Persons: hdr.Persons, Movies: hdr.Movies, CastPerMovie: hdr.CastPerMovie,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		cat, err := deriveCatalog(u.DB, hdr.Derive, "expert")
		if err != nil {
			return nil, nil, nil, err
		}
		engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if err != nil {
			return nil, nil, nil, err
		}
		oracle := eval.NewOracle(u.DB, map[string][]string{
			imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
			imdb.TableMovie:  {imdb.TableCast},
		})
		return engine, oracle, u.DB, nil
	case eval.CorpusUniversity:
		db, err := synth.GenerateUniversity(synth.UniversityConfig{
			Seed: hdr.Seed, Departments: hdr.Departments, Professors: hdr.Professors,
			Courses: hdr.Courses, Students: hdr.Students, EnrollPerStudent: hdr.EnrollPerStudent,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		// The default schema derivation keeps only the top-2 anchor tables
		// by queriability, which drops professor and department entirely;
		// widen it so every labeled entity the survey queries name has a
		// profile qunit to find.
		cat, err := deriveCatalogK(db, hdr.Derive, "schema", 4)
		if err != nil {
			return nil, nil, nil, err
		}
		engine, err := search.NewEngine(cat, search.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		oracle := eval.NewOracle(db, map[string][]string{
			"professor":  {"course"},
			"course":     {"enrollment"},
			"department": {"professor", "course"},
			"student":    {"enrollment"},
		})
		return engine, oracle, db, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown corpus %q", hdr.Corpus)
	}
}

func deriveCatalog(db *relational.Database, mode, dflt string) (*core.Catalog, error) {
	return deriveCatalogK(db, mode, dflt, 0)
}

func deriveCatalogK(db *relational.Database, mode, dflt string, k1 int) (*core.Catalog, error) {
	if mode == "" {
		mode = dflt
	}
	switch mode {
	case "expert":
		return derive.Expert{}.Derive(db)
	case "schema":
		return derive.FromSchema{K1: k1}.Derive(db)
	default:
		return nil, fmt.Errorf("unknown derive mode %q", mode)
	}
}

// runGenerate builds the corpus, derives the survey queries, judges
// them with the oracle, and writes the candidate golden set.
func runGenerate(hdr eval.GoldenHeader, workload, candidates int, out string) error {
	engine, oracle, db, err := buildCorpus(hdr)
	if err != nil {
		return err
	}
	var queries []eval.SurveyQuery
	switch hdr.Corpus {
	case eval.CorpusIMDb:
		// The persona-derived survey workload: the benchmark queries of
		// §5.2 with their gold needs attached (the same workload Figure 3
		// judges).
		u, err := imdb.Generate(imdb.Config{
			Seed: hdr.Seed, Persons: hdr.Persons, Movies: hdr.Movies, CastPerMovie: hdr.CastPerMovie,
		})
		if err != nil {
			return err
		}
		logCfg := querylog.DefaultGenConfig()
		logCfg.Seed = hdr.Seed + 1
		log := querylog.Generate(u, logCfg)
		queries = eval.BuildSurveyWorkload(log, engine.Segmenter(), workload)
	case eval.CorpusUniversity:
		queries = universityQueries(db, engine, workload)
	}
	set, err := eval.GenerateGolden(context.Background(), engine, oracle, queries, hdr,
		eval.GenerateOptions{Candidates: candidates})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := set.Encode(w); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("eval: wrote %d cases to %s (proposed floors: precision %.2f, ndcg %.2f) — review before committing\n",
			len(set.Cases), out, set.Header.Floors.Precision, set.Header.Floors.NDCG)
	}
	return nil
}

// universityQueries derives a deterministic survey workload for the
// university corpus from its own labels: professor profiles and course
// aspects, department rosters, and course lookups — the university
// analogue of the movie survey's need mix.
func universityQueries(db *relational.Database, engine *search.Engine, n int) []eval.SurveyQuery {
	var out []eval.SurveyQuery
	add := func(q string) {
		if len(out) < n {
			out = append(out, eval.SurveyQuery{Query: q, Need: eval.NeedFromQuery(engine.Segmenter(), q)})
		}
	}
	labels := func(table string, limit int) []string {
		var ls []string
		t := db.Table(table)
		if t == nil {
			return nil
		}
		t.Scan(func(id int, _ relational.Row) bool {
			ls = append(ls, db.Label(relational.TupleRef{Table: table, Row: id}))
			return len(ls) < limit
		})
		return ls
	}
	// Students and courses carry the set: their schema-derived profile
	// qunits can fully satisfy the oracle. Professor and department
	// queries are asked too — when derivation improves enough to answer
	// them fully they will start contributing cases.
	for _, s := range labels("student", (n+2)/3) {
		add(s)
	}
	for _, c := range labels("course", (n+2)/3) {
		add(c)
	}
	for _, p := range labels("professor", (n+5)/6) {
		add(p)
	}
	for _, d := range labels("department", (n+5)/6) {
		add(d + " professor")
	}
	return out
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
