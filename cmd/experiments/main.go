// Command experiments regenerates every table and figure from the paper's
// evaluation section against the synthetic substrates:
//
//	experiments -experiment table1     # Table 1: the five-user study
//	experiments -experiment querylog   # §5.2: query-log benchmark stats
//	experiments -experiment fig3       # Figure 3: result-quality comparison
//	experiments -experiment all        # everything (default)
//
// -scale small runs an order of magnitude smaller (for quick checks);
// -seed changes every generator's seed at once.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qunits/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: table1 | querylog | fig3 | all")
	scale := flag.String("scale", "default", "experiment scale: default | small")
	seed := flag.Int64("seed", 1, "master seed for all generators")
	extended := flag.Bool("extended", false, "include ObjectRank (outside the paper's Figure 3) in the comparison")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *scale == "small" {
		cfg = experiments.SmallConfig()
	}
	cfg.Seed = *seed

	runTable1 := *experiment == "table1" || *experiment == "all"
	runQuerylog := *experiment == "querylog" || *experiment == "all"
	runFig3 := *experiment == "fig3" || *experiment == "all"
	if !runTable1 && !runQuerylog && !runFig3 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	if runTable1 {
		experiments.Table1(cfg.Seed).Render(os.Stdout)
		fmt.Println()
	}

	if runQuerylog || runFig3 {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "assembling lab (scale=%s, seed=%d)...\n", *scale, cfg.Seed)
		lab, err := experiments.NewLab(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lab ready in %v: %d tuples, %d log queries, %d evidence pages\n\n",
			time.Since(start).Round(time.Millisecond),
			lab.Universe.DB.TotalRows(), lab.Log.Total, len(lab.Pages))

		if runQuerylog {
			experiments.QuerylogBenchmark(lab).Render(os.Stdout)
			fmt.Println()
		}
		if runFig3 {
			if *extended {
				experiments.Figure3Extended(lab).Render(os.Stdout)
			} else {
				experiments.Figure3(lab).Render(os.Stdout)
			}
			fmt.Println()
		}
	}
}
