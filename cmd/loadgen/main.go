// Command loadgen replays a zipfian query-log workload against a running
// qunitsd (or a cluster coordinator) over HTTP and reports achieved QPS,
// error rate, and latency quantiles (p50/p95/p99/p999).
//
// It regenerates the same universe the server booted with (mirror the
// server's corpus flags, or -instances for a synth corpus), derives the
// default query log from it, and offers that traffic either closed-loop
// (fixed concurrency, -mode closed) or open-loop (fixed arrival rate,
// -mode open, coordinated-omission corrected). -mode both runs one of
// each. -json writes the machine-readable BENCH_LOAD.json document that
// cmd/benchcheck -load gates on in CI.
//
// Example against a default dev server:
//
//	qunitsd -addr :8080 &
//	loadgen -target http://127.0.0.1:8080 -mode both -duration 10s -json BENCH_LOAD.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qunits/internal/imdb"
	"qunits/internal/loadgen"
	"qunits/internal/synth"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the qunitsd node (required), e.g. http://127.0.0.1:8080")
		mode        = flag.String("mode", "closed", "load mode: closed, open, or both")
		duration    = flag.Duration("duration", 10*time.Second, "measured window per run")
		warmup      = flag.Duration("warmup", 2*time.Second, "unmeasured lead-in per run")
		concurrency = flag.Int("concurrency", 8, "workers (closed loop) / in-flight cap (open loop)")
		qps         = flag.Float64("qps", 200, "open-loop arrival rate")
		k           = flag.Int("k", 5, "results per search")
		mutateRate  = flag.Float64("mutate-rate", 0, "fraction of ops that are feedback mutations (needs a mutation-accepting node)")
		seed        = flag.Int64("seed", 42, "workload sampling seed; equal seeds replay identical op sequences")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		jsonPath    = flag.String("json", "", "write a BENCH_LOAD.json document to this path")

		// Corpus flags: mirror the server's so the replayed log matches
		// what the server indexed. Defaults match qunitsd's defaults.
		corpusSeed   = flag.Int64("corpus-seed", 1, "universe generation seed (match the server's -seed)")
		persons      = flag.Int("persons", 400, "persons in the universe (match the server)")
		movies       = flag.Int("movies", 250, "movies in the universe (match the server)")
		castPerMovie = flag.Int("cast-per-movie", 5, "cast entries per movie (match the server)")
		instances    = flag.Int("instances", 0, "synth corpus sized for this many instances (match the server's -instances; 0 = plain imdb corpus)")
		queries      = flag.Int("queries", 0, "query-log volume (0 = the default log size)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	if *target == "" {
		log.Println("-target is required")
		flag.Usage()
		os.Exit(2)
	}
	var modes []loadgen.Mode
	switch *mode {
	case "closed":
		modes = []loadgen.Mode{loadgen.ModeClosed}
	case "open":
		modes = []loadgen.Mode{loadgen.ModeOpen}
	case "both":
		modes = []loadgen.Mode{loadgen.ModeClosed, loadgen.ModeOpen}
	default:
		log.Fatalf("unknown -mode %q (want closed, open, or both)", *mode)
	}

	// Rebuild the server's universe so the query log targets real
	// entities (cache hits, non-empty results).
	var u *imdb.Universe
	corpus := &loadgen.CorpusInfo{Seed: *corpusSeed}
	if *instances > 0 {
		scfg := synth.ForInstances(*instances)
		scfg.Seed = *corpusSeed
		log.Printf("generating synth corpus (seed=%d instances>=%d persons=%d movies=%d)",
			scfg.Seed, *instances, scfg.Persons, scfg.Movies)
		u = synth.MustGenerate(scfg)
		corpus.Persons = scfg.Persons
		corpus.Movies = scfg.Movies
		corpus.Instances = synth.EstimatedInstances(scfg)
	} else {
		log.Printf("generating corpus (seed=%d persons=%d movies=%d)", *corpusSeed, *persons, *movies)
		u = imdb.MustGenerate(imdb.Config{
			Seed:         *corpusSeed,
			Persons:      *persons,
			Movies:       *movies,
			CastPerMovie: *castPerMovie,
		})
		corpus.Persons = *persons
		corpus.Movies = *movies
	}
	w := loadgen.ForUniverse(u, *seed, *queries)
	corpus.Queries = w.Queries()
	log.Printf("workload: %d distinct queries", w.Queries())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc := &loadgen.Document{Corpus: corpus}
	for _, m := range modes {
		rep, err := loadgen.Run(ctx, w, loadgen.Options{
			Target:      strings.TrimRight(*target, "/"),
			Mode:        m,
			Concurrency: *concurrency,
			QPS:         *qps,
			Duration:    *duration,
			Warmup:      *warmup,
			K:           *k,
			MutateRate:  *mutateRate,
			Seed:        *seed,
			Timeout:     *timeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Text())
		doc.Runs = append(doc.Runs, rep)
		if ctx.Err() != nil {
			log.Println("interrupted; reporting what was measured")
			break
		}
	}

	if *jsonPath != "" {
		if err := doc.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
}
