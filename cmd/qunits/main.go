// Command qunits is the interactive face of the library: generate the
// synthetic IMDb, derive a qunit catalog with any §4 strategy, and run
// keyword searches against it.
//
//	qunits -dump schema                         # print the Fig. 2 schema
//	qunits -derive human -dump defs             # show a catalog's definitions
//	qunits -derive querylog -query "star wars cast"
//	qunits -derive schema -query "george clooney" -k 5 -xml
//	qunits -query "star wars cast" -explain     # show segmentation + affinities
//	qunits -query "star wars" -k 5 -offset 5    # page two
//	qunits -query "cast" -filter-def movie-cast # restrict to one qunit type
//
// The snapshot subcommand persists a built engine and serves from it
// later, skipping the offline phase entirely:
//
//	qunits snapshot save -out engine.snap -derive human -seed 1
//	qunits snapshot load -in engine.snap -seed 1 -query "star wars cast"
//
// The load must regenerate the same universe the save did (same -seed,
// -persons, -movies, -cast-per-movie); a mismatch is refused via the
// snapshot's database fingerprint. To load a snapshot written by
// qunitsd, pass its universe flags (qunitsd defaults: -persons 400
// -movies 250 -cast-per-movie 5).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/evidence"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
	"qunits/internal/segment"
	"qunits/internal/snapshot"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		runSnapshot(os.Args[2:])
		return
	}
	strategy := flag.String("derive", "human", "derivation strategy: schema | querylog | evidence | human")
	query := flag.String("query", "", "keyword query to run")
	k := flag.Int("k", 3, "number of results")
	offset := flag.Int("offset", 0, "ranked results to skip before collecting k (offset pagination)")
	filterDefs := flag.String("filter-def", "", "comma-separated definition names to restrict the search to")
	filterAnchors := flag.String("filter-anchor", "", "comma-separated anchor types (table.column) to restrict the search to")
	explain := flag.Bool("explain", false, "print the query segmentation and identified-type affinities")
	dump := flag.String("dump", "", "dump: schema | defs | stats")
	persons := flag.Int("persons", 1200, "synthetic persons")
	movies := flag.Int("movies", 600, "synthetic movies")
	seed := flag.Int64("seed", 1, "generator seed")
	showXML := flag.Bool("xml", false, "print result qunits as XML instead of text")
	saveCatalog := flag.String("save", "", "write the derived catalog as JSON to this file")
	loadCatalog := flag.String("load", "", "load the catalog from this JSON file instead of deriving")
	lazy := flag.Bool("lazy", false, "answer with on-demand view evaluation instead of a materialized index")
	flag.Parse()

	u := imdb.MustGenerate(imdb.Config{Seed: *seed, Persons: *persons, Movies: *movies, CastPerMovie: 6})

	if *dump == "schema" {
		for _, name := range u.DB.TableNames() {
			fmt.Println(u.DB.Table(name).Schema())
		}
		return
	}
	if *dump == "stats" {
		s := u.DB.Stats()
		fmt.Printf("database: %d tables, %d tuples, %d foreign keys\n", s.Tables, s.Rows, s.ForeignKys)
		for _, name := range u.DB.TableNames() {
			fmt.Printf("  %-16s %7d rows\n", name, s.PerTable[name])
		}
		return
	}

	var cat *core.Catalog
	var err error
	if *loadCatalog != "" {
		f, ferr := os.Open(*loadCatalog)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", ferr)
			os.Exit(1)
		}
		cat, err = core.DecodeCatalog(u.DB, f)
		f.Close()
	} else {
		cat, err = buildCatalog(u, *strategy, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qunits: %v\n", err)
		os.Exit(1)
	}
	if *saveCatalog != "" {
		f, ferr := os.Create(*saveCatalog)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", ferr)
			os.Exit(1)
		}
		if err := cat.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %d definitions to %s\n", cat.Len(), *saveCatalog)
	}

	if *dump == "defs" {
		fmt.Printf("catalog (%s): %d qunit definitions\n\n", *strategy, cat.Len())
		for _, d := range cat.Definitions() {
			fmt.Printf("%s\n  %s\n  keywords: %s\n\n", d, d.Description, strings.Join(d.Keywords, ", "))
		}
		return
	}

	if *query == "" {
		if *saveCatalog != "" {
			return
		}
		fmt.Fprintln(os.Stderr, "qunits: nothing to do; pass -query or -dump (see -help)")
		os.Exit(2)
	}

	start := time.Now()
	var results []search.Result
	if *lazy {
		if *offset != 0 || *filterDefs != "" || *filterAnchors != "" || *explain {
			fmt.Fprintln(os.Stderr, "qunits: -offset, -filter-def, -filter-anchor, and -explain need the indexed engine; drop -lazy")
			os.Exit(2)
		}
		resolver := search.NewResolver(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		fmt.Fprintf(os.Stderr, "resolver ready in %v (nothing materialized)\n\n", time.Since(start).Round(time.Millisecond))
		var rerr error
		results, rerr = resolver.Search(*query, *k)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", rerr)
			os.Exit(1)
		}
	} else {
		engine, eerr := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if eerr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", eerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "indexed %d qunit instances in %v\n\n", engine.InstanceCount(), time.Since(start).Round(time.Millisecond))
		resp, serr := engine.Search(context.Background(), search.Request{
			Query:  *query,
			K:      *k,
			Offset: *offset,
			Filter: search.Filter{
				Definitions: splitList(*filterDefs),
				AnchorTypes: splitList(*filterAnchors),
			},
			Explain: *explain,
		})
		if serr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", serr)
			os.Exit(1)
		}
		if *explain {
			fmt.Fprintf(os.Stderr, "segmented as %q\n", resp.Explain.Template)
			for _, seg := range resp.Explain.Segments {
				fmt.Fprintf(os.Stderr, "  segment %-20q kind=%s", seg.Text, seg.Kind)
				if seg.Type != "" {
					fmt.Fprintf(os.Stderr, " type=%s", seg.Type)
				}
				if seg.Table != "" {
					fmt.Fprintf(os.Stderr, " table=%s", seg.Table)
				}
				fmt.Fprintln(os.Stderr)
			}
			for _, aff := range resp.Explain.Affinities {
				fmt.Fprintf(os.Stderr, "  affinity %-24s %.1f\n", aff.Definition, aff.Affinity)
			}
			fmt.Fprintln(os.Stderr)
		}
		if resp.Total > len(resp.Results) {
			fmt.Fprintf(os.Stderr, "showing %d of %d matching instances (offset %d)\n\n", len(resp.Results), resp.Total, *offset)
		}
		results = resp.Results
	}
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	for i, r := range results {
		fmt.Printf("%d. %s  (score %.3f, ir %.3f, type-affinity %.1f)\n",
			i+1, r.Instance.ID(), r.Score, r.IRScore, r.TypeAffinity)
		if *showXML {
			fmt.Println(indent(r.Instance.Rendered.XML))
		} else {
			fmt.Println(indent(clip(r.Instance.Rendered.Text, 400)))
		}
		fmt.Println()
	}
}

// runSnapshot implements the `qunits snapshot save|load` subcommands:
// save builds an engine (universe generation + derivation +
// materialization + indexing) and persists it; load restores it from
// the file, skipping all of that, and optionally runs a query.
func runSnapshot(args []string) {
	if len(args) == 0 || (args[0] != "save" && args[0] != "load") {
		fmt.Fprintln(os.Stderr, "qunits snapshot: want a subcommand: save | load (see -help)")
		os.Exit(2)
	}
	sub := args[0]
	fs := flag.NewFlagSet("qunits snapshot "+sub, flag.ExitOnError)
	var (
		out      = fs.String("out", "engine.snap", "snapshot file to write (save)")
		in       = fs.String("in", "engine.snap", "snapshot file to read (load)")
		strategy = fs.String("derive", "human", "derivation strategy (save): schema | querylog | evidence | human")
		seed     = fs.Int64("seed", 1, "generator seed (must match between save and load)")
		persons  = fs.Int("persons", 1200, "synthetic persons (must match between save and load)")
		movies   = fs.Int("movies", 600, "synthetic movies (must match between save and load)")
		cast     = fs.Int("cast-per-movie", 6, "cast entries per movie (must match; qunitsd defaults to 5)")
		query    = fs.String("query", "", "keyword query to run after loading")
		k        = fs.Int("k", 3, "number of results for -query")
	)
	fs.Parse(args[1:])

	u := imdb.MustGenerate(imdb.Config{Seed: *seed, Persons: *persons, Movies: *movies, CastPerMovie: *cast})
	switch sub {
	case "save":
		cat, err := buildCatalog(u, *strategy, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "built engine in %v (%d instances)\n", time.Since(start).Round(time.Millisecond), engine.InstanceCount())
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		cw := &countingWriter{w: f}
		if err := snapshot.SaveEngine(cw, engine); err != nil {
			f.Close()
			fatalf("saving snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, format v%d)\n", *out, cw.n, snapshot.FormatVersion)
	case "load":
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		start := time.Now()
		engine, err := snapshot.LoadEngine(f, u.DB)
		if err != nil {
			fatalf("loading snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded engine from %s in %v (%d instances)\n",
			*in, time.Since(start).Round(time.Millisecond), engine.InstanceCount())
		if *query == "" {
			return
		}
		resp, err := engine.Search(context.Background(), search.Request{Query: *query, K: *k})
		if err != nil {
			fatalf("%v", err)
		}
		for i, r := range resp.Results {
			fmt.Printf("%d. %s  (score %.3f)\n", i+1, r.Instance.ID(), r.Score)
		}
	}
}

// fatalf prints a qunits-prefixed error and exits non-zero.
func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "qunits: "+format+"\n", args...)
	os.Exit(1)
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write implements io.Writer.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func buildCatalog(u *imdb.Universe, strategy string, seed int64) (*core.Catalog, error) {
	switch strategy {
	case "human":
		return derive.Expert{}.Derive(u.DB)
	case "schema":
		return derive.FromSchema{}.Derive(u.DB)
	case "querylog":
		logCfg := querylog.DefaultGenConfig()
		logCfg.Seed = seed + 1
		log := querylog.Generate(u, logCfg)
		dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
		return derive.FromQueryLog{Log: log, Segmenter: segment.NewSegmenter(dict)}.Derive(u.DB)
	case "evidence":
		cfg := evidence.DefaultCorpusConfig()
		cfg.Seed = seed + 2
		pages := evidence.BuildCorpus(u, cfg)
		dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
		return derive.FromEvidence{Pages: pages, Dict: dict}.Derive(u.DB)
	default:
		return nil, fmt.Errorf("unknown strategy %q (want schema | querylog | evidence | human)", strategy)
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func indent(s string) string {
	return "   " + strings.ReplaceAll(s, "\n", "\n   ")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " …"
}
