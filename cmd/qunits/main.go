// Command qunits is the interactive face of the library: generate the
// synthetic IMDb, derive a qunit catalog with any §4 strategy, and run
// keyword searches against it.
//
//	qunits -dump schema                         # print the Fig. 2 schema
//	qunits -derive human -dump defs             # show a catalog's definitions
//	qunits -derive querylog -query "star wars cast"
//	qunits -derive schema -query "george clooney" -k 5 -xml
//	qunits -query "star wars cast" -explain     # show segmentation + affinities
//	qunits -query "star wars" -k 5 -offset 5    # page two
//	qunits -query "cast" -filter-def movie-cast # restrict to one qunit type
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/evidence"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
	"qunits/internal/segment"
)

func main() {
	strategy := flag.String("derive", "human", "derivation strategy: schema | querylog | evidence | human")
	query := flag.String("query", "", "keyword query to run")
	k := flag.Int("k", 3, "number of results")
	offset := flag.Int("offset", 0, "ranked results to skip before collecting k (offset pagination)")
	filterDefs := flag.String("filter-def", "", "comma-separated definition names to restrict the search to")
	filterAnchors := flag.String("filter-anchor", "", "comma-separated anchor types (table.column) to restrict the search to")
	explain := flag.Bool("explain", false, "print the query segmentation and identified-type affinities")
	dump := flag.String("dump", "", "dump: schema | defs | stats")
	persons := flag.Int("persons", 1200, "synthetic persons")
	movies := flag.Int("movies", 600, "synthetic movies")
	seed := flag.Int64("seed", 1, "generator seed")
	showXML := flag.Bool("xml", false, "print result qunits as XML instead of text")
	saveCatalog := flag.String("save", "", "write the derived catalog as JSON to this file")
	loadCatalog := flag.String("load", "", "load the catalog from this JSON file instead of deriving")
	lazy := flag.Bool("lazy", false, "answer with on-demand view evaluation instead of a materialized index")
	flag.Parse()

	u := imdb.MustGenerate(imdb.Config{Seed: *seed, Persons: *persons, Movies: *movies, CastPerMovie: 6})

	if *dump == "schema" {
		for _, name := range u.DB.TableNames() {
			fmt.Println(u.DB.Table(name).Schema())
		}
		return
	}
	if *dump == "stats" {
		s := u.DB.Stats()
		fmt.Printf("database: %d tables, %d tuples, %d foreign keys\n", s.Tables, s.Rows, s.ForeignKys)
		for _, name := range u.DB.TableNames() {
			fmt.Printf("  %-16s %7d rows\n", name, s.PerTable[name])
		}
		return
	}

	var cat *core.Catalog
	var err error
	if *loadCatalog != "" {
		f, ferr := os.Open(*loadCatalog)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", ferr)
			os.Exit(1)
		}
		cat, err = core.DecodeCatalog(u.DB, f)
		f.Close()
	} else {
		cat, err = buildCatalog(u, *strategy, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qunits: %v\n", err)
		os.Exit(1)
	}
	if *saveCatalog != "" {
		f, ferr := os.Create(*saveCatalog)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", ferr)
			os.Exit(1)
		}
		if err := cat.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %d definitions to %s\n", cat.Len(), *saveCatalog)
	}

	if *dump == "defs" {
		fmt.Printf("catalog (%s): %d qunit definitions\n\n", *strategy, cat.Len())
		for _, d := range cat.Definitions() {
			fmt.Printf("%s\n  %s\n  keywords: %s\n\n", d, d.Description, strings.Join(d.Keywords, ", "))
		}
		return
	}

	if *query == "" {
		if *saveCatalog != "" {
			return
		}
		fmt.Fprintln(os.Stderr, "qunits: nothing to do; pass -query or -dump (see -help)")
		os.Exit(2)
	}

	start := time.Now()
	var results []search.Result
	if *lazy {
		if *offset != 0 || *filterDefs != "" || *filterAnchors != "" || *explain {
			fmt.Fprintln(os.Stderr, "qunits: -offset, -filter-def, -filter-anchor, and -explain need the indexed engine; drop -lazy")
			os.Exit(2)
		}
		resolver := search.NewResolver(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		fmt.Fprintf(os.Stderr, "resolver ready in %v (nothing materialized)\n\n", time.Since(start).Round(time.Millisecond))
		var rerr error
		results, rerr = resolver.Search(*query, *k)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", rerr)
			os.Exit(1)
		}
	} else {
		engine, eerr := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if eerr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", eerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "indexed %d qunit instances in %v\n\n", engine.InstanceCount(), time.Since(start).Round(time.Millisecond))
		resp, serr := engine.Search(context.Background(), search.Request{
			Query:  *query,
			K:      *k,
			Offset: *offset,
			Filter: search.Filter{
				Definitions: splitList(*filterDefs),
				AnchorTypes: splitList(*filterAnchors),
			},
			Explain: *explain,
		})
		if serr != nil {
			fmt.Fprintf(os.Stderr, "qunits: %v\n", serr)
			os.Exit(1)
		}
		if *explain {
			fmt.Fprintf(os.Stderr, "segmented as %q\n", resp.Explain.Template)
			for _, seg := range resp.Explain.Segments {
				fmt.Fprintf(os.Stderr, "  segment %-20q kind=%s", seg.Text, seg.Kind)
				if seg.Type != "" {
					fmt.Fprintf(os.Stderr, " type=%s", seg.Type)
				}
				if seg.Table != "" {
					fmt.Fprintf(os.Stderr, " table=%s", seg.Table)
				}
				fmt.Fprintln(os.Stderr)
			}
			for _, aff := range resp.Explain.Affinities {
				fmt.Fprintf(os.Stderr, "  affinity %-24s %.1f\n", aff.Definition, aff.Affinity)
			}
			fmt.Fprintln(os.Stderr)
		}
		if resp.Total > len(resp.Results) {
			fmt.Fprintf(os.Stderr, "showing %d of %d matching instances (offset %d)\n\n", len(resp.Results), resp.Total, *offset)
		}
		results = resp.Results
	}
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	for i, r := range results {
		fmt.Printf("%d. %s  (score %.3f, ir %.3f, type-affinity %.1f)\n",
			i+1, r.Instance.ID(), r.Score, r.IRScore, r.TypeAffinity)
		if *showXML {
			fmt.Println(indent(r.Instance.Rendered.XML))
		} else {
			fmt.Println(indent(clip(r.Instance.Rendered.Text, 400)))
		}
		fmt.Println()
	}
}

func buildCatalog(u *imdb.Universe, strategy string, seed int64) (*core.Catalog, error) {
	switch strategy {
	case "human":
		return derive.Expert{}.Derive(u.DB)
	case "schema":
		return derive.FromSchema{}.Derive(u.DB)
	case "querylog":
		logCfg := querylog.DefaultGenConfig()
		logCfg.Seed = seed + 1
		log := querylog.Generate(u, logCfg)
		dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
		return derive.FromQueryLog{Log: log, Segmenter: segment.NewSegmenter(dict)}.Derive(u.DB)
	case "evidence":
		cfg := evidence.DefaultCorpusConfig()
		cfg.Seed = seed + 2
		pages := evidence.BuildCorpus(u, cfg)
		dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
		return derive.FromEvidence{Pages: pages, Dict: dict}.Derive(u.DB)
	default:
		return nil, fmt.Errorf("unknown strategy %q (want schema | querylog | evidence | human)", strategy)
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func indent(s string) string {
	return "   " + strings.ReplaceAll(s, "\n", "\n   ")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " …"
}
