// Command qunitsd serves qunit search over HTTP.
//
// It generates a synthetic IMDb-like database, derives a qunit catalog,
// builds the search engine (instance materialization and analysis fanned
// out across all cores, the index sharded for parallel scoring), and
// listens for queries:
//
//	qunitsd -addr :8080 -movies 500 -persons 800
//	curl 'localhost:8080/search?q=star+wars+cast&k=5'
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
//
// Flags control the universe size, the derivation strategy, the shard
// and build-worker counts, and the result-cache capacity.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "universe generation seed")
		persons      = flag.Int("persons", 400, "persons in the generated universe")
		movies       = flag.Int("movies", 250, "movies in the generated universe")
		castPerMovie = flag.Int("cast-per-movie", 5, "cast entries per movie")
		deriveMode   = flag.String("derive", "expert", "catalog derivation strategy: expert or schema")
		shards       = flag.Int("shards", 0, "index shards scored in parallel (0 = GOMAXPROCS)")
		buildWorkers = flag.Int("build-workers", 0, "engine build workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "LRU query-result cache capacity (negative disables)")
		defaultK     = flag.Int("k", 10, "default result count when the request omits k")
		maxK         = flag.Int("max-k", 100, "maximum per-request result count")
	)
	flag.Parse()

	log.Printf("qunitsd: generating universe (seed=%d persons=%d movies=%d)", *seed, *persons, *movies)
	u := imdb.MustGenerate(imdb.Config{
		Seed:         *seed,
		Persons:      *persons,
		Movies:       *movies,
		CastPerMovie: *castPerMovie,
	})

	cat, err := deriveCatalog(*deriveMode, u.DB)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	buildStart := time.Now()
	engine, err := search.NewEngine(cat, search.Options{
		Synonyms:     imdb.AttributeSynonyms(),
		Shards:       *shards,
		BuildWorkers: *buildWorkers,
	})
	if err != nil {
		log.Printf("qunitsd: building engine: %v", err)
		os.Exit(2)
	}
	log.Printf("qunitsd: engine ready in %v (%d instances, %d definitions)",
		time.Since(buildStart).Round(time.Millisecond), engine.InstanceCount(), cat.Len())

	srv := server.New(engine, server.Config{
		CacheSize: *cacheSize,
		DefaultK:  *defaultK,
		MaxK:      *maxK,
	})
	log.Printf("qunitsd: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func deriveCatalog(mode string, db *relational.Database) (*core.Catalog, error) {
	switch mode {
	case "expert":
		return derive.Expert{}.Derive(db)
	case "schema":
		return derive.FromSchema{}.Derive(db)
	default:
		return nil, fmt.Errorf("qunitsd: unknown -derive mode %q (want expert or schema)", mode)
	}
}
