// Command qunitsd serves qunit search over HTTP.
//
// It generates a synthetic IMDb-like database, derives a qunit catalog,
// builds the search engine (instance materialization and analysis fanned
// out across all cores, the index sharded for parallel scoring), and
// listens for queries on the versioned /v1 JSON API:
//
//	qunitsd -addr :8080 -movies 500 -persons 800
//	curl -d '{"query":"star wars cast","k":5}' localhost:8080/v1/search
//	curl -d '{"queries":[{"query":"star wars cast"},{"query":"george clooney"}]}' localhost:8080/v1/search
//	curl -d '{"instance_id":"movie-cast:star wars","positive":true}' localhost:8080/v1/feedback
//	curl 'localhost:8080/v1/instances/movie-cast:star%20wars'
//	curl 'localhost:8080/search?q=star+wars+cast&k=5'   # legacy alias
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
//
// Flags control the universe size, the derivation strategy, the shard
// and build-worker counts, and the result-cache capacity. The daemon
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "universe generation seed")
		persons      = flag.Int("persons", 400, "persons in the generated universe")
		movies       = flag.Int("movies", 250, "movies in the generated universe")
		castPerMovie = flag.Int("cast-per-movie", 5, "cast entries per movie")
		deriveMode   = flag.String("derive", "expert", "catalog derivation strategy: expert or schema")
		shards       = flag.Int("shards", 0, "index shards scored in parallel (0 = GOMAXPROCS)")
		buildWorkers = flag.Int("build-workers", 0, "engine build workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "LRU query-result cache capacity (negative disables)")
		defaultK     = flag.Int("k", 10, "default result count when the request omits k")
		maxK         = flag.Int("max-k", 100, "maximum per-request result count")
		maxBatch     = flag.Int("max-batch", 32, "maximum queries per /v1/search batch")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	log.Printf("qunitsd: generating universe (seed=%d persons=%d movies=%d)", *seed, *persons, *movies)
	u := imdb.MustGenerate(imdb.Config{
		Seed:         *seed,
		Persons:      *persons,
		Movies:       *movies,
		CastPerMovie: *castPerMovie,
	})

	cat, err := deriveCatalog(*deriveMode, u.DB)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	buildStart := time.Now()
	engine, err := search.NewEngine(cat, search.Options{
		Synonyms:     imdb.AttributeSynonyms(),
		Shards:       *shards,
		BuildWorkers: *buildWorkers,
	})
	if err != nil {
		log.Printf("qunitsd: building engine: %v", err)
		os.Exit(2)
	}
	log.Printf("qunitsd: engine ready in %v (%d instances, %d definitions)",
		time.Since(buildStart).Round(time.Millisecond), engine.InstanceCount(), cat.Len())

	handler := server.New(engine, server.Config{
		CacheSize: *cacheSize,
		DefaultK:  *defaultK,
		MaxK:      *maxK,
		MaxBatch:  *maxBatch,
	})
	// A production listener, not a bare ListenAndServe: bounded header,
	// read, write, and idle timeouts so one slow client can't pin a
	// connection goroutine forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("qunitsd: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("qunitsd: signal received, draining (up to %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qunitsd: shutdown: %v", err)
			_ = srv.Close()
			os.Exit(1)
		}
		log.Print("qunitsd: drained, bye")
	}
}

func deriveCatalog(mode string, db *relational.Database) (*core.Catalog, error) {
	switch mode {
	case "expert":
		return derive.Expert{}.Derive(db)
	case "schema":
		return derive.FromSchema{}.Derive(db)
	default:
		return nil, fmt.Errorf("qunitsd: unknown -derive mode %q (want expert or schema)", mode)
	}
}
