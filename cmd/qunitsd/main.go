// Command qunitsd serves qunit search over HTTP.
//
// It generates a synthetic IMDb-like database, derives a qunit catalog,
// builds the search engine (instance materialization and analysis fanned
// out across all cores, the index sharded for parallel scoring), and
// listens for queries on the versioned /v1 JSON API:
//
//	qunitsd -addr :8080 -movies 500 -persons 800
//	curl -d '{"query":"star wars cast","k":5}' localhost:8080/v1/search
//	curl -d '{"queries":[{"query":"star wars cast"},{"query":"george clooney"}]}' localhost:8080/v1/search
//	curl -d '{"instance_id":"movie-cast:star wars","positive":true}' localhost:8080/v1/feedback
//	curl -d '{"definition":"movie-cast","anchor":"new release"}' localhost:8080/v1/instances
//	curl 'localhost:8080/v1/instances/movie-cast:star%20wars'
//	curl -X DELETE 'localhost:8080/v1/instances/movie-cast:new%20release'
//	curl -X POST 'localhost:8080/v1/compact'             # reclaim tombstoned slots
//	curl 'localhost:8080/search?q=star+wars+cast&k=5'   # legacy alias
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
//
// Flags control the universe size, the derivation strategy, the shard
// and build-worker counts, and the result-cache capacity. The daemon
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests.
//
// With -snapshot the expensive offline phase happens once: the engine
// is loaded from the snapshot file at boot when it exists (skipping
// derivation, materialization, and indexing) and written back — via a
// temp file and atomic rename — after the graceful drain, and
// periodically when -snapshot-interval is set. Learned utilities and
// live instance adds/removals survive restarts:
//
//	qunitsd -addr :8080 -snapshot /var/lib/qunits/engine.snap -snapshot-interval 5m
//
// Live removals tombstone index slots rather than rewriting posting
// lists; -compact-ratio keeps a long-lived daemon healthy under churn
// by compacting the index online (searches keep flowing) whenever the
// tombstone ratio reaches the threshold. POST /v1/compact triggers a
// pass manually; /stats reports index_tombstones, compactions, and
// slots_reclaimed:
//
//	qunitsd -addr :8080 -compact-ratio 0.3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/server"
	"qunits/internal/snapshot"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "universe generation seed")
		persons      = flag.Int("persons", 400, "persons in the generated universe")
		movies       = flag.Int("movies", 250, "movies in the generated universe")
		castPerMovie = flag.Int("cast-per-movie", 5, "cast entries per movie")
		deriveMode   = flag.String("derive", "expert", "catalog derivation strategy: expert or schema")
		shards       = flag.Int("shards", 0, "index shards scored in parallel (0 = GOMAXPROCS)")
		buildWorkers = flag.Int("build-workers", 0, "engine build workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "LRU query-result cache capacity (negative disables)")
		defaultK     = flag.Int("k", 10, "default result count when the request omits k")
		maxK         = flag.Int("max-k", 100, "maximum per-request result count")
		maxBatch     = flag.Int("max-batch", 32, "maximum queries per /v1/search batch")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window")
		snapshotPath = flag.String("snapshot", "", "engine snapshot file: loaded at boot when present, written after the graceful drain")
		snapInterval = flag.Duration("snapshot-interval", 0, "also write the snapshot this often while serving (0 = only at shutdown)")
		compactRatio = flag.Float64("compact-ratio", 0, "auto-compact the index when its tombstone ratio (dead slots / slots) reaches this; 0 disables (POST /v1/compact still works)")
	)
	flag.Parse()

	log.Printf("qunitsd: generating universe (seed=%d persons=%d movies=%d)", *seed, *persons, *movies)
	u := imdb.MustGenerate(imdb.Config{
		Seed:         *seed,
		Persons:      *persons,
		Movies:       *movies,
		CastPerMovie: *castPerMovie,
	})

	engine, err := loadOrBuildEngine(u, *snapshotPath, *deriveMode, *shards, *buildWorkers)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	// Compaction policy is serving configuration, not engine state: it is
	// applied here at boot on both the fresh-build and snapshot-load
	// paths (snapshots deliberately do not persist it).
	engine.SetAutoCompact(*compactRatio)
	if *compactRatio > 0 {
		log.Printf("qunitsd: auto-compaction at tombstone ratio >= %g", *compactRatio)
	}

	handler := server.New(engine, server.Config{
		CacheSize: *cacheSize,
		DefaultK:  *defaultK,
		MaxK:      *maxK,
		MaxBatch:  *maxBatch,
	})
	// A production listener, not a bare ListenAndServe: bounded header,
	// read, write, and idle timeouts so one slow client can't pin a
	// connection goroutine forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("qunitsd: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	if *snapshotPath != "" && *snapInterval > 0 {
		go snapshotLoop(ctx, *snapshotPath, engine, *snapInterval)
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("qunitsd: signal received, draining (up to %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr := srv.Shutdown(shutdownCtx)
		if drainErr != nil {
			log.Printf("qunitsd: shutdown: %v", drainErr)
			_ = srv.Close()
		}
		// Write the snapshot even when the drain timed out: the engine
		// state (learned utilities, live instance mutations) is intact
		// and losing it would punish the operator for one slow client.
		if *snapshotPath != "" {
			if err := writeSnapshot(*snapshotPath, engine); err != nil {
				log.Printf("qunitsd: snapshot: %v", err)
				os.Exit(1)
			}
			log.Printf("qunitsd: snapshot written to %s", *snapshotPath)
		}
		if drainErr != nil {
			os.Exit(1)
		}
		log.Print("qunitsd: drained, bye")
	}
}

// loadOrBuildEngine restores the engine from the snapshot file when one
// is configured and present — skipping catalog derivation, instance
// materialization, and indexing — and otherwise builds it from scratch.
func loadOrBuildEngine(u *imdb.Universe, snapshotPath, deriveMode string, shards, buildWorkers int) (*search.Engine, error) {
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			defer f.Close()
			loadStart := time.Now()
			engine, err := snapshot.LoadEngine(f, u.DB)
			if err != nil {
				return nil, fmt.Errorf("qunitsd: loading snapshot %s: %w", snapshotPath, err)
			}
			log.Printf("qunitsd: engine loaded from snapshot %s in %v (%d instances)",
				snapshotPath, time.Since(loadStart).Round(time.Millisecond), engine.InstanceCount())
			return engine, nil
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("qunitsd: opening snapshot: %w", err)
		}
		log.Printf("qunitsd: no snapshot at %s, building fresh", snapshotPath)
	}
	cat, err := deriveCatalog(deriveMode, u.DB)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	engine, err := search.NewEngine(cat, search.Options{
		Synonyms:     imdb.AttributeSynonyms(),
		Shards:       shards,
		BuildWorkers: buildWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("qunitsd: building engine: %w", err)
	}
	log.Printf("qunitsd: engine ready in %v (%d instances, %d definitions)",
		time.Since(buildStart).Round(time.Millisecond), engine.InstanceCount(), cat.Len())
	return engine, nil
}

// snapshotLoop writes the snapshot every interval until the context is
// canceled; the shutdown path writes the final one.
func snapshotLoop(ctx context.Context, path string, engine *search.Engine, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := writeSnapshot(path, engine); err != nil {
				log.Printf("qunitsd: periodic snapshot: %v", err)
			} else {
				log.Printf("qunitsd: periodic snapshot written to %s", path)
			}
		}
	}
}

// snapshotWriteMu serializes snapshot writes: the periodic loop and the
// shutdown path share one temp file, and two concurrent writers would
// interleave bytes into it.
var snapshotWriteMu sync.Mutex

// writeSnapshot saves the engine to path atomically: the blob is
// written to a sibling temp file, fsynced, and renamed into place, so
// neither a process crash mid-write nor a power loss right after the
// rename leaves a torn snapshot where the next boot looks.
func writeSnapshot(path string, engine *search.Engine) error {
	snapshotWriteMu.Lock()
	defer snapshotWriteMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := snapshot.SaveEngine(f, engine); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush the data before the rename: on journaled filesystems the
	// rename can become durable before the content does, which would
	// make a post-crash boot find a truncated blob at the final path.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func deriveCatalog(mode string, db *relational.Database) (*core.Catalog, error) {
	switch mode {
	case "expert":
		return derive.Expert{}.Derive(db)
	case "schema":
		return derive.FromSchema{}.Derive(db)
	default:
		return nil, fmt.Errorf("qunitsd: unknown -derive mode %q (want expert or schema)", mode)
	}
}
