// Command qunitsd serves qunit search over HTTP.
//
// It generates a synthetic IMDb-like database, derives a qunit catalog,
// builds the search engine (instance materialization and analysis fanned
// out across all cores, the index sharded for parallel scoring), and
// listens for queries on the versioned /v1 JSON API:
//
//	qunitsd -addr :8080 -movies 500 -persons 800
//	curl -d '{"query":"star wars cast","k":5}' localhost:8080/v1/search
//	curl -d '{"queries":[{"query":"star wars cast"},{"query":"george clooney"}]}' localhost:8080/v1/search
//	curl -d '{"instance_id":"movie-cast:star wars","positive":true}' localhost:8080/v1/feedback
//	curl -d '{"definition":"movie-cast","anchor":"new release"}' localhost:8080/v1/instances
//	curl 'localhost:8080/v1/instances/movie-cast:star%20wars'
//	curl -X DELETE 'localhost:8080/v1/instances/movie-cast:new%20release'
//	curl -X POST 'localhost:8080/v1/compact'             # reclaim tombstoned slots
//	curl 'localhost:8080/search?q=star+wars+cast&k=5'   # legacy alias
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
//
// Flags control the universe size, the derivation strategy, the shard
// and build-worker counts, and the result-cache capacity. The daemon
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests.
//
// With -snapshot the expensive offline phase happens once: the engine
// is loaded from the snapshot file at boot when it exists (skipping
// derivation, materialization, and indexing) and written back — via a
// temp file and atomic rename — after the graceful drain, and
// periodically when -snapshot-interval is set. Learned utilities and
// live instance adds/removals survive restarts:
//
//	qunitsd -addr :8080 -snapshot /var/lib/qunits/engine.snap -snapshot-interval 5m
//
// Live removals tombstone index slots rather than rewriting posting
// lists; -compact-ratio keeps a long-lived daemon healthy under churn
// by compacting the index online (searches keep flowing) whenever the
// tombstone ratio reaches the threshold. POST /v1/compact triggers a
// pass manually; /stats reports index_tombstones, compactions, and
// slots_reclaimed:
//
//	qunitsd -addr :8080 -compact-ratio 0.3
//
// With -prewarm the daemon replays the head of an aggregated query log
// (freq<TAB>query lines, or bare queries) through the batched search
// path at boot, so the most frequent queries are result-cache hits
// before the first client arrives; the head is replayed again after
// every compaction pass:
//
//	qunitsd -addr :8080 -prewarm /var/lib/qunits/queries.log
//
// # Cluster modes
//
// -mode turns the same binary into one node of a distributed
// deployment (see ARCHITECTURE.md, "A distributed qunitsd"):
//
//	-mode partition    one scoring node: the full engine replica plus
//	                   the /v1/partition RPC over the shard subset
//	                   selected by -partition-index/-partition-count.
//	                   With -wal the node is the cluster primary and
//	                   logs every mutation; with -wal and -wal-follow
//	                   it is a follower that tails the log instead and
//	                   refuses direct mutations.
//	-mode coordinator  no engine: fans /v1/search out to the partition
//	                   servers listed in -partitions and merges their
//	                   pages into byte-identical single-node responses.
//
// Every partition node must be started over the same universe flags
// (seed, sizes, derive mode) and the same explicit -shards count —
// partitions score shard subsets, so differing shard layouts would
// change which node scores which document. A 3-partition cluster on
// one machine:
//
//	qunitsd -mode partition -addr :8081 -shards 8 -partition-index 0 -partition-count 3 -wal /tmp/q.wal
//	qunitsd -mode partition -addr :8082 -shards 8 -partition-index 1 -partition-count 3 -wal /tmp/q.wal -wal-follow
//	qunitsd -mode partition -addr :8083 -shards 8 -partition-index 2 -partition-count 3 -wal /tmp/q.wal -wal-follow
//	qunitsd -mode coordinator -addr :8080 -partitions http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// In partition mode -snapshot writes a bootstrap pair (QSNP blob plus a
// .seq sidecar recording the WAL position) so a restarted node resumes
// the log exactly where its state left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"qunits/internal/cluster"
	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/server"
	"qunits/internal/snapshot"
	"qunits/internal/synth"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "universe generation seed")
		persons      = flag.Int("persons", 400, "persons in the generated universe")
		movies       = flag.Int("movies", 250, "movies in the generated universe")
		castPerMovie = flag.Int("cast-per-movie", 5, "cast entries per movie")
		instances    = flag.Int("instances", 0, "size the universe for at least this many qunit instances via internal/synth (overrides -persons/-movies; 0 disables)")
		deriveMode   = flag.String("derive", "expert", "catalog derivation strategy: expert or schema")
		shards       = flag.Int("shards", 0, "index shards scored in parallel (0 = GOMAXPROCS)")
		buildWorkers = flag.Int("build-workers", 0, "engine build workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "LRU query-result cache capacity (negative disables)")
		defaultK     = flag.Int("k", 10, "default result count when the request omits k")
		maxK         = flag.Int("max-k", 100, "maximum per-request result count")
		maxBatch     = flag.Int("max-batch", 32, "maximum queries per /v1/search batch")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window")
		snapshotPath = flag.String("snapshot", "", "engine snapshot file: loaded at boot when present, written after the graceful drain")
		useMmap      = flag.Bool("mmap", false, "serve posting lists directly from a read-only memory mapping of -snapshot (v3 snapshots on mmap platforms; others fall back to a copying load)")
		snapInterval = flag.Duration("snapshot-interval", 0, "also write the snapshot this often while serving (0 = only at shutdown)")
		compactRatio = flag.Float64("compact-ratio", 0, "auto-compact the index when its tombstone ratio (dead slots / slots) reaches this; 0 disables (POST /v1/compact still works)")
		mode         = flag.String("mode", "single", "deployment role: single, partition, or coordinator")
		partitions   = flag.String("partitions", "", "coordinator mode: comma-separated partition base URLs, in partition-index order")
		partIndex    = flag.Int("partition-index", 0, "partition mode: this node's partition index")
		partCount    = flag.Int("partition-count", 1, "partition mode: total partitions in the cluster")
		walPath      = flag.String("wal", "", "partition mode: mutation WAL path (the primary writes it, followers tail it)")
		walFollow    = flag.Bool("wal-follow", false, "partition mode: tail -wal as a follower instead of writing it as the primary")
		walPoll      = flag.Duration("wal-poll", 500*time.Millisecond, "follower WAL poll interval")
		prewarmPath  = flag.String("prewarm", "", "query-log file (freq<TAB>query lines, or bare queries) whose head is replayed through the batch path at boot to warm the result cache")
		prewarmTop   = flag.Int("prewarm-top", 0, "how many head entries -prewarm replays (0 = as many as the cache holds)")
	)
	flag.Parse()

	cfg := server.Config{
		CacheSize: *cacheSize,
		DefaultK:  *defaultK,
		MaxK:      *maxK,
		MaxBatch:  *maxBatch,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler *server.Server
	var saveSnap func() error        // snapshot writer for the shutdown and periodic paths; nil when -snapshot is unset
	var followerDone <-chan struct{} // closed when the follower loop has stopped; nil otherwise

	switch *mode {
	case "coordinator":
		urls := splitList(*partitions)
		if len(urls) == 0 {
			log.Print("qunitsd: -mode coordinator requires -partitions")
			os.Exit(2)
		}
		if *snapshotPath != "" {
			log.Print("qunitsd: -snapshot is ignored in coordinator mode (a coordinator holds no engine)")
		}
		parts := make([]cluster.Partition, len(urls))
		for i, base := range urls {
			parts[i] = cluster.NewClient(base, i)
		}
		handler = server.NewCoordinatorServer(cluster.NewCoordinator(parts), cfg)
		log.Printf("qunitsd: coordinator over %d partitions", len(parts))

	case "single", "partition":
		set := ir.ShardSet{Index: *partIndex, Count: *partCount}
		if *mode == "partition" {
			if err := set.Validate(); err != nil {
				log.Printf("qunitsd: %v", err)
				os.Exit(2)
			}
			if *shards == 0 {
				// The default shard count is GOMAXPROCS, which varies by
				// machine; partitions score shard subsets, so the layout
				// must be pinned explicitly and identically cluster-wide.
				log.Print("qunitsd: -mode partition requires an explicit -shards count (identical on every node)")
				os.Exit(2)
			}
		}

		var u *imdb.Universe
		if *instances > 0 {
			scfg := synth.ForInstances(*instances)
			scfg.Seed = *seed
			log.Printf("qunitsd: generating synth universe (seed=%d instances>=%d persons=%d movies=%d)",
				*seed, *instances, scfg.Persons, scfg.Movies)
			genStart := time.Now()
			u = synth.MustGenerate(scfg)
			log.Printf("qunitsd: universe generated in %v (%d rows)",
				time.Since(genStart).Round(time.Millisecond), u.DB.TotalRows())
		} else {
			log.Printf("qunitsd: generating universe (seed=%d persons=%d movies=%d)", *seed, *persons, *movies)
			u = imdb.MustGenerate(imdb.Config{
				Seed:         *seed,
				Persons:      *persons,
				Movies:       *movies,
				CastPerMovie: *castPerMovie,
			})
		}

		engine, applied, err := loadOrBuildEngine(u, *snapshotPath, *deriveMode, *shards, *buildWorkers, *useMmap)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		// Compaction policy is serving configuration, not engine state: it is
		// applied here at boot on both the fresh-build and snapshot-load
		// paths (snapshots deliberately do not persist it).
		engine.SetAutoCompact(*compactRatio)
		if *compactRatio > 0 {
			log.Printf("qunitsd: auto-compaction at tombstone ratio >= %g", *compactRatio)
		}

		if *mode == "single" {
			handler = server.New(engine, cfg)
			if *snapshotPath != "" {
				saveSnap = func() error { return writeSnapshot(*snapshotPath, engine) }
			}
			break
		}

		pcfg := server.PartitionConfig{Set: set}
		switch {
		case *walPath != "" && !*walFollow:
			// Primary: recover any WAL records past the bootstrap
			// snapshot, then start logging new mutations.
			wal, err := cluster.OpenWAL(*walPath)
			if err != nil {
				log.Print(err)
				os.Exit(2)
			}
			if wal.LastSeq() < applied {
				log.Printf("qunitsd: snapshot is at wal position %d but %s ends at %d; refusing to fork the log",
					applied, *walPath, wal.LastSeq())
				os.Exit(2)
			}
			recovery := cluster.NewFollower(engine, cluster.NewWALReader(*walPath), applied)
			n, err := recovery.CatchUp()
			if err != nil {
				log.Printf("qunitsd: wal recovery: %v", err)
				os.Exit(2)
			}
			if n > 0 {
				log.Printf("qunitsd: recovered %d wal records (now at %d)", n, recovery.AppliedSeq())
			}
			engine.SetMutationLog(wal)
			pcfg.Seq = wal.LastSeq
			pcfg.AcceptMutations = true
			if *snapshotPath != "" {
				saveSnap = func() error { return saveBootstrapLocked(*snapshotPath, engine, wal.LastSeq) }
			}
			log.Printf("qunitsd: partition %d/%d primary, logging mutations to %s", *partIndex, *partCount, *walPath)

		case *walPath != "":
			// Follower: replay the log and keep tailing it. Local
			// auto-compaction must stay off — the primary's compactions
			// arrive through the WAL, and an extra local pass would move
			// documents across shards and desynchronize subset scoring.
			if *compactRatio > 0 {
				log.Print("qunitsd: -compact-ratio is forced to 0 on a follower (compactions replicate through the wal)")
				engine.SetAutoCompact(0)
			}
			fol := cluster.NewFollower(engine, cluster.NewWALReader(*walPath), applied)
			if _, err := fol.CatchUp(); err != nil {
				log.Print(err)
				os.Exit(2)
			}
			log.Printf("qunitsd: partition %d/%d follower at wal position %d, tailing %s",
				*partIndex, *partCount, fol.AppliedSeq(), *walPath)
			pcfg.Seq = fol.AppliedSeq
			if *snapshotPath != "" {
				saveSnap = func() error { return saveBootstrapLocked(*snapshotPath, engine, fol.AppliedSeq) }
			}
			// One goroutine owns both tailing and periodic snapshots, so a
			// snapshot can never capture a half-advanced applied position.
			done := make(chan struct{})
			followerDone = done
			go followLoop(ctx, fol, *walPoll, saveSnap, *snapInterval, done)

		default:
			if *walFollow {
				log.Print("qunitsd: -wal-follow requires -wal")
				os.Exit(2)
			}
			// A static partition (no WAL): serve the subset, accept no
			// mutations — without a log they could not replicate.
			if *snapshotPath != "" {
				saveSnap = func() error { return saveBootstrapLocked(*snapshotPath, engine, nil) }
			}
			log.Printf("qunitsd: partition %d/%d (static: no wal, mutations refused)", *partIndex, *partCount)
		}
		handler = server.NewPartitionServer(engine, cfg, pcfg)

	default:
		log.Printf("qunitsd: unknown -mode %q (want single, partition, or coordinator)", *mode)
		os.Exit(2)
	}
	if *prewarmPath != "" {
		qlog, err := querylog.ReadFile(*prewarmPath)
		if err != nil {
			log.Printf("qunitsd: prewarm: %v", err)
			os.Exit(2)
		}
		warmStart := time.Now()
		warmed, err := handler.Prewarm(ctx, qlog, *prewarmTop)
		if err != nil {
			// Best-effort by design: a partially warmed cache still serves;
			// the boot must not fail because a partition was briefly down.
			log.Printf("qunitsd: prewarm stopped early after %d entries: %v", warmed, err)
		} else {
			log.Printf("qunitsd: prewarmed %d of %d unique queries from %s in %v",
				warmed, qlog.Unique(), *prewarmPath, time.Since(warmStart).Round(time.Millisecond))
		}
	}
	// A production listener, not a bare ListenAndServe: bounded header,
	// read, write, and idle timeouts so one slow client can't pin a
	// connection goroutine forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("qunitsd: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	// Followers snapshot from inside their tail loop; everyone else gets
	// the periodic writer goroutine.
	if saveSnap != nil && *snapInterval > 0 && followerDone == nil {
		go snapshotLoop(ctx, *snapshotPath, saveSnap, *snapInterval)
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("qunitsd: signal received, draining (up to %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr := srv.Shutdown(shutdownCtx)
		if drainErr != nil {
			log.Printf("qunitsd: shutdown: %v", drainErr)
			_ = srv.Close()
		}
		if followerDone != nil {
			// The tail loop stops on the same context; wait for it so the
			// final snapshot captures a settled applied position.
			<-followerDone
		}
		// Write the snapshot even when the drain timed out: the engine
		// state (learned utilities, live instance mutations) is intact
		// and losing it would punish the operator for one slow client.
		if saveSnap != nil {
			if err := saveSnap(); err != nil {
				log.Printf("qunitsd: snapshot: %v", err)
				os.Exit(1)
			}
			log.Printf("qunitsd: snapshot written to %s", *snapshotPath)
		}
		if drainErr != nil {
			os.Exit(1)
		}
		log.Print("qunitsd: drained, bye")
	}
}

// splitList parses a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

// followLoop tails the primary's WAL until the context is canceled,
// writing periodic bootstrap snapshots from the same goroutine (so the
// snapshot's .seq sidecar can never capture a half-advanced position),
// then closes done. The shutdown path waits on done before its final
// snapshot.
func followLoop(ctx context.Context, fol *cluster.Follower, poll time.Duration, saveSnap func() error, snapInterval time.Duration, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(poll)
	defer tick.Stop()
	var snap <-chan time.Time
	if saveSnap != nil && snapInterval > 0 {
		snapTick := time.NewTicker(snapInterval)
		defer snapTick.Stop()
		snap = snapTick.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			n, err := fol.CatchUp()
			if err != nil {
				// A gap or corrupt record will not heal; surface it loudly
				// every poll rather than silently serving stale state.
				log.Printf("qunitsd: wal tail: %v", err)
				continue
			}
			if n > 0 {
				log.Printf("qunitsd: applied %d wal records (now at %d)", n, fol.AppliedSeq())
			}
		case <-snap:
			if err := saveSnap(); err != nil {
				log.Printf("qunitsd: periodic snapshot: %v", err)
			}
		}
	}
}

// saveBootstrapLocked writes a bootstrap snapshot (QSNP plus .seq
// sidecar) under the daemon's snapshot mutex, so the periodic and
// shutdown paths never interleave writes to the shared temp files.
func saveBootstrapLocked(path string, engine *search.Engine, seq func() uint64) error {
	snapshotWriteMu.Lock()
	defer snapshotWriteMu.Unlock()
	return cluster.SaveBootstrap(path, engine, seq)
}

// loadOrBuildEngine restores the engine from the snapshot file when one
// is configured and present — skipping catalog derivation, instance
// materialization, and indexing — and otherwise builds it from scratch.
// With useMmap the snapshot's posting blocks are served straight out of
// a read-only memory mapping (v3 snapshots on mmap platforms), making
// boot O(metadata) instead of O(corpus). The second return is the
// restored state's WAL position: the value of the snapshot's .seq
// sidecar, or 0 for a fresh build or a sidecar-less snapshot.
func loadOrBuildEngine(u *imdb.Universe, snapshotPath, deriveMode string, shards, buildWorkers int, useMmap bool) (*search.Engine, uint64, error) {
	if snapshotPath != "" {
		if _, err := os.Stat(snapshotPath); err == nil {
			loadStart := time.Now()
			var engine *search.Engine
			var applied uint64
			var err error
			how := "snapshot"
			if useMmap {
				var mapped bool
				engine, applied, mapped, err = cluster.LoadBootstrapMapped(snapshotPath, u.DB)
				if mapped {
					how = "mapped snapshot"
				} else if err == nil {
					log.Printf("qunitsd: -mmap requested but %s is not mappable (pre-v3 snapshot or platform without mmap); loaded by copy", snapshotPath)
				}
			} else {
				engine, applied, err = cluster.LoadBootstrap(snapshotPath, u.DB)
			}
			if err != nil {
				return nil, 0, fmt.Errorf("qunitsd: loading snapshot %s: %w", snapshotPath, err)
			}
			log.Printf("qunitsd: engine loaded from %s %s in %v (%d instances, wal position %d)",
				how, snapshotPath, time.Since(loadStart).Round(time.Millisecond), engine.InstanceCount(), applied)
			return engine, applied, nil
		} else if !os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("qunitsd: opening snapshot: %w", err)
		}
		log.Printf("qunitsd: no snapshot at %s, building fresh", snapshotPath)
	}
	cat, err := deriveCatalog(deriveMode, u.DB)
	if err != nil {
		return nil, 0, err
	}
	buildStart := time.Now()
	engine, err := search.NewEngine(cat, search.Options{
		Synonyms:     imdb.AttributeSynonyms(),
		Shards:       shards,
		BuildWorkers: buildWorkers,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("qunitsd: building engine: %w", err)
	}
	log.Printf("qunitsd: engine ready in %v (%d instances, %d definitions)",
		time.Since(buildStart).Round(time.Millisecond), engine.InstanceCount(), cat.Len())
	return engine, 0, nil
}

// snapshotLoop writes the snapshot every interval until the context is
// canceled; the shutdown path writes the final one.
func snapshotLoop(ctx context.Context, path string, saveSnap func() error, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := saveSnap(); err != nil {
				log.Printf("qunitsd: periodic snapshot: %v", err)
			} else {
				log.Printf("qunitsd: periodic snapshot written to %s", path)
			}
		}
	}
}

// snapshotWriteMu serializes snapshot writes: the periodic loop and the
// shutdown path share one temp file, and two concurrent writers would
// interleave bytes into it.
var snapshotWriteMu sync.Mutex

// writeSnapshot saves the engine to path atomically: the blob is
// written to a sibling temp file, fsynced, and renamed into place, so
// neither a process crash mid-write nor a power loss right after the
// rename leaves a torn snapshot where the next boot looks.
func writeSnapshot(path string, engine *search.Engine) error {
	snapshotWriteMu.Lock()
	defer snapshotWriteMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := snapshot.SaveEngine(f, engine); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush the data before the rename: on journaled filesystems the
	// rename can become durable before the content does, which would
	// make a post-crash boot find a truncated blob at the final path.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func deriveCatalog(mode string, db *relational.Database) (*core.Catalog, error) {
	switch mode {
	case "expert":
		return derive.Expert{}.Derive(db)
	case "schema":
		return derive.FromSchema{}.Derive(db)
	default:
		return nil, fmt.Errorf("qunitsd: unknown -derive mode %q (want expert or schema)", mode)
	}
}
