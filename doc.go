// Package qunits is a from-scratch Go reproduction of "Qunits: queried
// units for database search" (Nandi & Jagadish, CIDR 2009).
//
// The paper proposes modeling a database as a flat collection of qunits —
// queried units, each a view plus a presentation — so that keyword search
// becomes standard IR document retrieval over qunit instances. This
// module implements the full system: the relational substrate, the qunit
// definition language, three automatic derivation strategies, the search
// engine, the baselines the paper compares against (BANKS, LCA, MLCA),
// and the synthetic counterparts of the paper's proprietary evaluation
// inputs (IMDb data, the AOL query log, web evidence pages, human
// judges). The paper's result-quality metric runs continuously too:
// cmd/eval evaluates committed golden query sets with Precision@k and
// NDCG@k — offline against an engine or online over /v1/search — and
// fails CI below the committed floors.
//
// Beyond the reproduction, the module is a concurrent search service:
// engine construction fans instance materialization and tokenization out
// across all cores, the inverted index is sharded for parallel BM25
// scoring with results bitwise identical to the sequential path, and
// cmd/qunitsd serves a versioned /v1 JSON API behind an LRU result
// cache keyed by the full canonicalized request, with singleflight
// deduplication of concurrent identical requests and graceful shutdown.
//
// The offline phase persists: SaveEngine writes the full engine state —
// catalog with learned utilities, materialized instances, index layout,
// collection statistics — as a versioned, checksummed binary snapshot,
// and LoadEngine restores a serving-ready engine from it that answers
// searches bitwise-identically to the one saved (qunitsd does this via
// -snapshot/-snapshot-interval, writing atomically on shutdown). The
// live engine also mutates in place: AddInstance/RemoveInstance (and
// POST/DELETE /v1/instances over HTTP) merge new qunit instances into
// or out of the serving index under the engine lock, searchable by the
// next request with no rebuild or restart.
//
// # The /v1 HTTP API
//
// POST /v1/search takes a structured request — query, k, offset,
// definition/anchor-type filter, explain flag — either singly or as a
// batch ("queries": [...]) whose items succeed and fail independently.
// Responses carry the result page, the pre-paging total, and a
// per-result score breakdown (ir_score, type_affinity, type_factor,
// utility, utility_blend, anchor_boost); with "explain": true the reply
// also
// includes the query segmentation, its typed template, and the
// identified-type affinities — the paper's §3 pipeline made
// machine-readable. POST /v1/feedback closes the relevance-feedback
// loop, POST /v1/instances and DELETE /v1/instances/{id} mutate the
// live instance set, GET /v1/instances/{id} dereferences a result,
// POST /v1/compact reclaims the tombstoned index slots removals leave
// behind (online: searches keep flowing through the rebuild, and
// results are bitwise identical across a pass), and
// every error is an envelope {"error":{"code","message"}} with a
// stable code. The pre-/v1 GET /search alias is kept byte-compatible.
//
// # Embedding
//
// This root package is also the public facade for external programs
// (the implementation lives under internal/, which the toolchain walls
// off): NewDatabase/NewCatalog/MustParseBase build the substrate,
// DeriveExpert/DeriveFromSchema derive catalogs, NewEngine +
// Engine.Search(ctx, Request) run structured searches, and NewServer
// mounts the whole HTTP surface as an http.Handler. See facade.go and
// examples/quickstart, which is written entirely against this surface.
//
// Start with README.md for a tour — module setup, the /v1 API
// reference with curl examples, qunitsd operations (snapshots, drain,
// cache tuning), and the CI commands — ARCHITECTURE.md for the
// package-by-package pipeline walkthrough and the snapshot format
// specification, and EXPERIMENTS.md for the paper-versus-measured
// record. The
// bench_test.go file in this directory regenerates every table and
// figure of the paper's evaluation as Go benchmarks; `make bench-json`
// emits the whole suite as a JSON artifact.
package qunits

// Version identifies this reproduction's release.
const Version = "1.4.0"
