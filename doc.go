// Package qunits is a from-scratch Go reproduction of "Qunits: queried
// units for database search" (Nandi & Jagadish, CIDR 2009).
//
// The paper proposes modeling a database as a flat collection of qunits —
// queried units, each a view plus a presentation — so that keyword search
// becomes standard IR document retrieval over qunit instances. This
// module implements the full system: the relational substrate, the qunit
// definition language, three automatic derivation strategies, the search
// engine, the baselines the paper compares against (BANKS, LCA, MLCA),
// and the synthetic counterparts of the paper's proprietary evaluation
// inputs (IMDb data, the AOL query log, web evidence pages, human
// judges).
//
// Beyond the reproduction, the module is a concurrent search service:
// engine construction fans instance materialization and tokenization out
// across all cores, the inverted index is sharded for parallel BM25
// scoring with results bitwise identical to the sequential path, and
// cmd/qunitsd serves /search, /healthz, and /stats over HTTP behind an
// LRU query-result cache with singleflight deduplication of concurrent
// identical queries.
//
// Start with README.md for a tour — module setup, qunitsd usage, and the
// CI commands — and EXPERIMENTS.md for the paper-versus-measured record.
// The bench_test.go file in this directory regenerates every table and
// figure of the paper's evaluation as Go benchmarks; `make bench-json`
// emits the whole suite as a JSON artifact.
package qunits

// Version identifies this reproduction's release.
const Version = "1.1.0"
