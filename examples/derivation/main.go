// Derivation compares the paper's three automatic qunit-derivation
// strategies (§4.1 schema/data, §4.2 query-log rollup, §4.3 external
// evidence) plus the hand-written expert set, on the same database —
// showing what each strategy discovers and what it misses.
//
// Like examples/quickstart, it is written entirely against the public
// qunits facade: universe generation and all four derivation strategies
// are reachable without touching internal packages.
//
//	go run ./examples/derivation
package main

import (
	"fmt"
	"log"
	"strings"

	"qunits"
)

func main() {
	u := qunits.GenerateIMDb(qunits.IMDbConfig{Seed: 1, Persons: 600, Movies: 300, CastPerMovie: 5})
	fmt.Printf("input: %d tuples across %d tables\n\n", u.DB.TotalRows(), len(u.DB.TableNames()))

	show := func(title string, cat *qunits.Catalog, err error) {
		fmt.Printf("════ %s\n", title)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range cat.Definitions() {
			anchor := "-"
			if _, col, ok := d.AnchorParam(); ok {
				anchor = col.String()
			}
			sections := ""
			if n := len(d.Sections); n > 0 {
				sections = fmt.Sprintf(" +%d sections", n)
			}
			fmt.Printf("  %-28s u=%.2f anchor=%-14s tables=%s%s\n",
				d.Name, d.Utility, anchor, strings.Join(d.Tables(), ","), sections)
		}
		fmt.Println()
	}

	schemaCat, err := qunits.DeriveFromSchema(u.DB)
	show("§4.1 schema & data (queriability; note the plot/info table sneaking in)", schemaCat, err)

	logCat, err := qunits.DeriveFromQueryLog(u, 2)
	show("§4.2 query-log rollup (aspects users actually ask for, by frequency)", logCat, err)

	evCat, err := qunits.DeriveFromEvidence(u, 3)
	show("§4.3 external evidence (one definition per page-layout family)", evCat, err)

	humanCat, err := qunits.DeriveExpert(u.DB)
	show("expert (the imdb.com-crawl stand-in; Figure 3's \"Human\")", humanCat, err)

	// The paper's §4.1 criticism, demonstrated: the schema strategy joins
	// every high-cardinality neighbor, including ones nobody queries.
	fmt.Println("════ the §4.1 weakness, concretely")
	d := schemaCat.Definition("movie-profile-schema")
	if d != nil {
		inst, err := schemaCat.Instantiate(d, map[string]string{"x": "star wars"})
		if err == nil {
			fmt.Printf("  schema-derived movie profile for star wars carries %d tuples —\n", len(inst.Tuples))
			fmt.Printf("  including plot text and company/keyword rows a cast-seeking user\n")
			fmt.Printf("  never wanted; the query-log strategy, informed by real demand,\n")
			fmt.Printf("  ranks fragments by query frequency instead.\n")
		}
	}
}
