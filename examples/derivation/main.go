// Derivation compares the paper's three automatic qunit-derivation
// strategies (§4.1 schema/data, §4.2 query-log rollup, §4.3 external
// evidence) plus the hand-written expert set, on the same database —
// showing what each strategy discovers and what it misses.
//
//	go run ./examples/derivation
package main

import (
	"fmt"
	"log"
	"strings"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/evidence"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/segment"
)

func main() {
	u := imdb.MustGenerate(imdb.Config{Seed: 1, Persons: 600, Movies: 300, CastPerMovie: 5})
	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	seg := segment.NewSegmenter(dict)
	logCfg := querylog.DefaultGenConfig()
	logCfg.Volume = 6000
	qlog := querylog.Generate(u, logCfg)
	pages := evidence.BuildCorpus(u, evidence.DefaultCorpusConfig())

	fmt.Printf("inputs: %d tuples, %d log queries (%d unique), %d evidence pages\n\n",
		u.DB.TotalRows(), qlog.Total, qlog.Unique(), len(pages))

	show := func(title string, cat *core.Catalog, err error) {
		fmt.Printf("════ %s\n", title)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range cat.Definitions() {
			anchor := "-"
			if _, col, ok := d.AnchorParam(); ok {
				anchor = col.String()
			}
			sections := ""
			if n := len(d.Sections); n > 0 {
				sections = fmt.Sprintf(" +%d sections", n)
			}
			fmt.Printf("  %-28s u=%.2f anchor=%-14s tables=%s%s\n",
				d.Name, d.Utility, anchor, strings.Join(d.Tables(), ","), sections)
		}
		fmt.Println()
	}

	schemaCat, err := derive.FromSchema{K1: 2, K2: 4}.Derive(u.DB)
	show("§4.1 schema & data (queriability; note the plot/info table sneaking in)", schemaCat, err)

	logCat, err := derive.FromQueryLog{Log: qlog, Segmenter: seg}.Derive(u.DB)
	show("§4.2 query-log rollup (aspects users actually ask for, by frequency)", logCat, err)

	evCat, err := derive.FromEvidence{Pages: pages, Dict: dict}.Derive(u.DB)
	show("§4.3 external evidence (one definition per page-layout family)", evCat, err)

	humanCat, err := derive.Expert{}.Derive(u.DB)
	show("expert (the imdb.com-crawl stand-in; Figure 3's \"Human\")", humanCat, err)

	// The paper's §4.1 criticism, demonstrated: the schema strategy joins
	// every high-cardinality neighbor, including ones nobody queries.
	fmt.Println("════ the §4.1 weakness, concretely")
	d := schemaCat.Definition("movie-profile-schema")
	if d != nil {
		inst, err := schemaCat.Instantiate(d, map[string]string{"x": "star wars"})
		if err == nil {
			fmt.Printf("  schema-derived movie profile for star wars carries %d tuples —\n", len(inst.Tuples))
			fmt.Printf("  including plot text and company/keyword rows a cast-seeking user\n")
			fmt.Printf("  never wanted; the query-log strategy, informed by real demand,\n")
			fmt.Printf("  ranks fragments by query frequency instead.\n")
		}
	}
}
