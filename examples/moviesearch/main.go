// Moviesearch runs the paper's running examples against the synthetic
// IMDb and shows what each competing system returns — the "george clooney
// movies" / "star wars cast" discussion of §1 and §3 made executable.
//
// The qunit side (universe, derivation, engine, search) is written
// against the public qunits facade, like examples/quickstart. The §5
// baselines it compares against — BANKS and the LCA/MLCA tree search —
// are paper-evaluation machinery, deliberately not part of the public
// surface, so they remain internal imports.
//
//	go run ./examples/moviesearch
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"qunits"
	"qunits/internal/banks"
	"qunits/internal/graph"
	"qunits/internal/imdb"
	"qunits/internal/xtree"
)

func main() {
	u := qunits.GenerateIMDb(qunits.IMDbConfig{Seed: 1, Persons: 800, Movies: 400, CastPerMovie: 6})
	fmt.Printf("synthetic IMDb: %d tuples across %d tables\n\n", u.DB.TotalRows(), len(u.DB.TableNames()))

	// The three paradigms under comparison.
	banksEngine := banks.New(graph.Build(u.DB), 0)
	tree := xtree.Build(u.DB, xtree.BuildOptions{EntityTables: []string{imdb.TablePerson, imdb.TableMovie}})
	cat, err := qunits.DeriveExpert(u.DB)
	if err != nil {
		log.Fatal(err)
	}
	qunitEngine, err := qunits.NewEngine(cat, qunits.Options{Synonyms: qunits.IMDbSynonyms()})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"george clooney movies", // §1's opening example
		"star wars cast",        // §3's walkthrough
		"george clooney",        // the underspecified query of §4.2
		"tom hanks cast away",   // multi-entity
	}
	for _, q := range queries {
		fmt.Printf("════ query: %q\n\n", q)

		// BANKS: a minimal spanning tree of tuples.
		if res := banksEngine.Search(q, 1); len(res) > 0 {
			var labels []string
			for _, ref := range res[0].Tuples {
				labels = append(labels, ref.Table+"("+u.DB.Label(ref)+")")
			}
			fmt.Printf("  BANKS   tree of %d tuples: %s\n", len(res[0].Tuples), clip(strings.Join(labels, " — "), 140))
		} else {
			fmt.Println("  BANKS   no result")
		}

		// LCA / MLCA: a subtree of the XML view.
		if res := tree.SearchLCA(q, 1); len(res) > 0 {
			fmt.Printf("  LCA     subtree <%s>: %s\n", tree.Tag(res[0].Root), clip(res[0].Text, 140))
		} else {
			fmt.Println("  LCA     no result")
		}
		if res := tree.SearchMLCA(q, 1); len(res) > 0 {
			fmt.Printf("  MLCA    subtree <%s>: %s\n", tree.Tag(res[0].Root), clip(res[0].Text, 140))
		} else {
			fmt.Println("  MLCA    no result")
		}

		// Qunits: a complete, demarcated unit of information.
		resp, err := qunitEngine.Search(context.Background(), qunits.Request{Query: q, K: 1})
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Results) > 0 {
			inst := resp.Results[0].Instance
			fmt.Printf("  QUNITS  %s (%s): %s\n", inst.ID(), inst.Def.Description, clip(inst.Rendered.Text, 140))
		} else {
			fmt.Println("  QUNITS  no result")
		}
		fmt.Println()
	}

	fmt.Println("note how the traditional systems return either a bare match or a")
	fmt.Println("join chain, while the qunit system returns the unit of information")
	fmt.Println("the query was actually about — the paper's central claim.")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " …"
}
