// Quickstart: the qunits paradigm end-to-end on a five-minute database.
//
// It walks the exact pipeline of the paper's Fig. 1: define a database,
// write a qunit definition (base expression + conversion expression —
// the paper's §2 example verbatim), derive instances, and run a keyword
// query that is segmented, typed, and answered with the right qunit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qunits/internal/core"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/sqlview"
)

func main() {
	// 1. A small relational database: the paper's person/cast/movie core.
	db := relational.NewDatabase("tinyimdb")
	db.MustCreateTable(relational.MustTableSchema("person", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("movie", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "year", Kind: relational.KindInt},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("cast", []relational.Column{
		{Name: "person_id", Kind: relational.KindInt},
		{Name: "movie_id", Kind: relational.KindInt},
		{Name: "role", Kind: relational.KindString, Searchable: true},
	}, "", []relational.ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))

	people := db.Table("person")
	people.MustInsert(relational.Row{relational.Int(1), relational.String("mark hamill")})
	people.MustInsert(relational.Row{relational.Int(2), relational.String("carrie fisher")})
	people.MustInsert(relational.Row{relational.Int(3), relational.String("harrison ford")})
	movies := db.Table("movie")
	movies.MustInsert(relational.Row{relational.Int(1), relational.String("star wars"), relational.Int(1977)})
	movies.MustInsert(relational.Row{relational.Int(2), relational.String("blade runner"), relational.Int(1982)})
	cast := db.Table("cast")
	cast.MustInsert(relational.Row{relational.Int(1), relational.Int(1), relational.String("luke skywalker")})
	cast.MustInsert(relational.Row{relational.Int(2), relational.Int(1), relational.String("princess leia")})
	cast.MustInsert(relational.Row{relational.Int(3), relational.Int(1), relational.String("han solo")})
	cast.MustInsert(relational.Row{relational.Int(3), relational.Int(2), relational.String("rick deckard")})

	// 2. A qunit definition — the paper's §2 example, verbatim syntax.
	def := &core.Definition{
		Name:        "movie-cast",
		Description: "the cast of a movie",
		Base: sqlview.MustParseBase(`SELECT * FROM person, cast, movie
WHERE cast.movie_id = movie.id AND
cast.person_id = person.id AND
movie.title = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<cast movie="$x">
<foreach:tuple>
<person>$person.name</person> as <role>$cast.role</role>
</foreach:tuple>
</cast>`),
		Utility:  1.0,
		Keywords: []string{"cast", "actors", "starring"},
		Source:   "quickstart",
	}

	catalog := core.NewCatalog(db)
	catalog.MustAdd(def)

	// 3. Derive qunit instances: one per movie.
	instances, err := catalog.MaterializeAll(def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d qunit instances from definition %q:\n\n", len(instances), def.Name)
	for _, inst := range instances {
		fmt.Printf("--- %s\n%s\n\n", inst.ID(), inst.Rendered.XML)
	}

	// 4. Qunit-based search: segmentation types the query, IR ranking
	// picks the instance (Fig. 1's "star wars cast" walkthrough).
	engine, err := search.NewEngine(catalog, search.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, query := range []string{"star wars cast", "blade runner cast"} {
		results := engine.Search(query, 1)
		if len(results) == 0 {
			fmt.Printf("%q -> no results\n", query)
			continue
		}
		top := results[0]
		fmt.Printf("%q -> %s (score %.2f)\n   %s\n\n",
			query, top.Instance.ID(), top.Score, top.Instance.Rendered.Text)
	}
}
