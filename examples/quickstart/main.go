// Quickstart: the qunits paradigm end-to-end on a five-minute database.
//
// It walks the exact pipeline of the paper's Fig. 1: define a database,
// write a qunit definition (base expression + conversion expression —
// the paper's §2 example verbatim), derive instances, and run a keyword
// query that is segmented, typed, and answered with the right qunit.
//
// It is written entirely against the public root package — the same
// surface an external program embedding this module would use.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"qunits"
)

func main() {
	// 1. A small relational database: the paper's person/cast/movie core.
	db := qunits.NewDatabase("tinyimdb")
	db.MustCreateTable(qunits.MustTableSchema("person", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "name", Kind: qunits.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(qunits.MustTableSchema("movie", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "title", Kind: qunits.KindString, Searchable: true, Label: true},
		{Name: "year", Kind: qunits.KindInt},
	}, "id", nil))
	db.MustCreateTable(qunits.MustTableSchema("cast", []qunits.Column{
		{Name: "person_id", Kind: qunits.KindInt},
		{Name: "movie_id", Kind: qunits.KindInt},
		{Name: "role", Kind: qunits.KindString, Searchable: true},
	}, "", []qunits.ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))

	people := db.Table("person")
	people.MustInsert(qunits.Row{qunits.Int(1), qunits.String("mark hamill")})
	people.MustInsert(qunits.Row{qunits.Int(2), qunits.String("carrie fisher")})
	people.MustInsert(qunits.Row{qunits.Int(3), qunits.String("harrison ford")})
	movies := db.Table("movie")
	movies.MustInsert(qunits.Row{qunits.Int(1), qunits.String("star wars"), qunits.Int(1977)})
	movies.MustInsert(qunits.Row{qunits.Int(2), qunits.String("blade runner"), qunits.Int(1982)})
	cast := db.Table("cast")
	cast.MustInsert(qunits.Row{qunits.Int(1), qunits.Int(1), qunits.String("luke skywalker")})
	cast.MustInsert(qunits.Row{qunits.Int(2), qunits.Int(1), qunits.String("princess leia")})
	cast.MustInsert(qunits.Row{qunits.Int(3), qunits.Int(1), qunits.String("han solo")})
	cast.MustInsert(qunits.Row{qunits.Int(3), qunits.Int(2), qunits.String("rick deckard")})

	// 2. A qunit definition — the paper's §2 example, verbatim syntax.
	def := &qunits.Definition{
		Name:        "movie-cast",
		Description: "the cast of a movie",
		Base: qunits.MustParseBase(`SELECT * FROM person, cast, movie
WHERE cast.movie_id = movie.id AND
cast.person_id = person.id AND
movie.title = "$x"`),
		Conversion: qunits.MustParseTemplate(`<cast movie="$x">
<foreach:tuple>
<person>$person.name</person> as <role>$cast.role</role>
</foreach:tuple>
</cast>`),
		Utility:  1.0,
		Keywords: []string{"cast", "actors", "starring"},
		Source:   "quickstart",
	}

	catalog := qunits.NewCatalog(db)
	catalog.MustAdd(def)

	// 3. Derive qunit instances: one per movie.
	instances, err := catalog.MaterializeAll(def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d qunit instances from definition %q:\n\n", len(instances), def.Name)
	for _, inst := range instances {
		fmt.Printf("--- %s\n%s\n\n", inst.ID(), inst.Rendered.XML)
	}

	// 4. Qunit-based search: segmentation types the query, IR ranking
	// picks the instance (Fig. 1's "star wars cast" walkthrough), and
	// the explain payload shows every pipeline step.
	engine, err := qunits.NewEngine(catalog, qunits.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, query := range []string{"star wars cast", "blade runner cast"} {
		resp, err := engine.Search(ctx, qunits.Request{Query: query, K: 1, Explain: true})
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Results) == 0 {
			fmt.Printf("%q -> no results\n", query)
			continue
		}
		top := resp.Results[0]
		fmt.Printf("%q -> %s (score %.2f, segmented as %q)\n   %s\n\n",
			query, top.Instance.ID(), top.Score, resp.Explain.Template, top.Instance.Rendered.Text)
	}
}
