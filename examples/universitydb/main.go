// Universitydb demonstrates that the qunit framework is not
// IMDb-specific: a completely different schema (departments, professors,
// courses, students, enrollment) gets qunit definitions — both
// hand-written and schema-derived — and keyword search over them.
//
//	go run ./examples/universitydb
package main

import (
	"fmt"
	"log"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/sqlview"
)

func buildUniversity() *relational.Database {
	db := relational.NewDatabase("university")
	db.MustCreateTable(relational.MustTableSchema("department", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "building", Kind: relational.KindString},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("professor", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: relational.KindInt},
	}, "id", []relational.ForeignKey{{Column: "dept_id", RefTable: "department"}}))
	db.MustCreateTable(relational.MustTableSchema("course", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: relational.KindInt},
		{Name: "prof_id", Kind: relational.KindInt},
	}, "id", []relational.ForeignKey{
		{Column: "dept_id", RefTable: "department"},
		{Column: "prof_id", RefTable: "professor"},
	}))
	db.MustCreateTable(relational.MustTableSchema("student", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "year", Kind: relational.KindInt},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("enrollment", []relational.Column{
		{Name: "student_id", Kind: relational.KindInt},
		{Name: "course_id", Kind: relational.KindInt},
		{Name: "grade", Kind: relational.KindString},
	}, "", []relational.ForeignKey{
		{Column: "student_id", RefTable: "student"},
		{Column: "course_id", RefTable: "course"},
	}))

	dep := db.Table("department")
	dep.MustInsert(relational.Row{relational.Int(1), relational.String("computer science"), relational.String("bob hall")})
	dep.MustInsert(relational.Row{relational.Int(2), relational.String("mathematics"), relational.String("east quad")})
	prof := db.Table("professor")
	prof.MustInsert(relational.Row{relational.Int(1), relational.String("ada lovelace"), relational.Int(1)})
	prof.MustInsert(relational.Row{relational.Int(2), relational.String("emmy noether"), relational.Int(2)})
	prof.MustInsert(relational.Row{relational.Int(3), relational.String("alan turing"), relational.Int(1)})
	course := db.Table("course")
	course.MustInsert(relational.Row{relational.Int(1), relational.String("databases"), relational.Int(1), relational.Int(1)})
	course.MustInsert(relational.Row{relational.Int(2), relational.String("information retrieval"), relational.Int(1), relational.Int(3)})
	course.MustInsert(relational.Row{relational.Int(3), relational.String("abstract algebra"), relational.Int(2), relational.Int(2)})
	student := db.Table("student")
	student.MustInsert(relational.Row{relational.Int(1), relational.String("alice chen"), relational.Int(2)})
	student.MustInsert(relational.Row{relational.Int(2), relational.String("bob kumar"), relational.Int(3)})
	student.MustInsert(relational.Row{relational.Int(3), relational.String("carol diaz"), relational.Int(1)})
	enr := db.Table("enrollment")
	enr.MustInsert(relational.Row{relational.Int(1), relational.Int(1), relational.String("a")})
	enr.MustInsert(relational.Row{relational.Int(1), relational.Int(2), relational.String("b")})
	enr.MustInsert(relational.Row{relational.Int(2), relational.Int(1), relational.String("a")})
	enr.MustInsert(relational.Row{relational.Int(3), relational.Int(3), relational.String("a")})
	return db
}

func main() {
	db := buildUniversity()
	if err := db.ValidateForeignKeys(); err != nil {
		log.Fatal(err)
	}

	// Hand-written qunits for the new domain: a course roster (who is
	// enrolled) and a professor's teaching profile.
	cat := core.NewCatalog(db)
	cat.MustAdd(&core.Definition{
		Name:        "course-roster",
		Description: "the students enrolled in a course",
		Base: sqlview.MustParseBase(`SELECT * FROM student, enrollment, course
WHERE enrollment.student_id = student.id AND enrollment.course_id = course.id AND course.title = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<roster course="$x">
<foreach:tuple><student>$student.name</student> grade <grade>$enrollment.grade</grade></foreach:tuple>
</roster>`),
		Utility:  1.0,
		Keywords: []string{"roster", "students", "enrolled", "enrollment"},
		Source:   "expert",
	})
	cat.MustAdd(&core.Definition{
		Name:        "professor-courses",
		Description: "the courses a professor teaches",
		Base: sqlview.MustParseBase(`SELECT * FROM course, professor
WHERE course.prof_id = professor.id AND professor.name = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<teaching professor="$x">
<foreach:tuple><course>$course.title</course></foreach:tuple>
</teaching>`),
		Utility:  0.9,
		Keywords: []string{"courses", "teaches", "teaching", "classes"},
		Source:   "expert",
	})

	engine, err := search.NewEngine(cat, search.Options{Synonyms: map[string]string{
		"teaches": "course", "classes": "course", "enrolled": "enrollment",
	}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("university database, expert qunits:")
	for _, q := range []string{"databases roster", "ada lovelace courses", "alan turing"} {
		res := engine.Search(q, 1)
		if len(res) == 0 {
			fmt.Printf("  %-24q -> no results\n", q)
			continue
		}
		fmt.Printf("  %-24q -> %s: %s\n", q, res[0].Instance.ID(), res[0].Instance.Rendered.Text)
	}

	// The generic §4.1 derivation works on this schema too — no IMDb
	// anywhere in the derivation code.
	auto, err := derive.FromSchema{K1: 3, K2: 2}.Derive(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschema-derived qunit definitions (no domain knowledge):")
	for _, d := range auto.Definitions() {
		fmt.Printf("  %-28s utility %.2f\n", d.Name, d.Utility)
	}
}
