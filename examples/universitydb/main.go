// Universitydb demonstrates that the qunit framework is not
// IMDb-specific: a completely different schema (departments, professors,
// courses, students, enrollment) gets qunit definitions — both
// hand-written and schema-derived — and keyword search over them.
//
//	go run ./examples/universitydb
package main

import (
	"context"
	"fmt"
	"log"

	"qunits"
	"qunits/internal/derive"
)

func buildUniversity() *qunits.Database {
	db := qunits.NewDatabase("university")
	db.MustCreateTable(qunits.MustTableSchema("department", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "name", Kind: qunits.KindString, Searchable: true, Label: true},
		{Name: "building", Kind: qunits.KindString},
	}, "id", nil))
	db.MustCreateTable(qunits.MustTableSchema("professor", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "name", Kind: qunits.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: qunits.KindInt},
	}, "id", []qunits.ForeignKey{{Column: "dept_id", RefTable: "department"}}))
	db.MustCreateTable(qunits.MustTableSchema("course", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "title", Kind: qunits.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: qunits.KindInt},
		{Name: "prof_id", Kind: qunits.KindInt},
	}, "id", []qunits.ForeignKey{
		{Column: "dept_id", RefTable: "department"},
		{Column: "prof_id", RefTable: "professor"},
	}))
	db.MustCreateTable(qunits.MustTableSchema("student", []qunits.Column{
		{Name: "id", Kind: qunits.KindInt},
		{Name: "name", Kind: qunits.KindString, Searchable: true, Label: true},
		{Name: "year", Kind: qunits.KindInt},
	}, "id", nil))
	db.MustCreateTable(qunits.MustTableSchema("enrollment", []qunits.Column{
		{Name: "student_id", Kind: qunits.KindInt},
		{Name: "course_id", Kind: qunits.KindInt},
		{Name: "grade", Kind: qunits.KindString},
	}, "", []qunits.ForeignKey{
		{Column: "student_id", RefTable: "student"},
		{Column: "course_id", RefTable: "course"},
	}))

	dep := db.Table("department")
	dep.MustInsert(qunits.Row{qunits.Int(1), qunits.String("computer science"), qunits.String("bob hall")})
	dep.MustInsert(qunits.Row{qunits.Int(2), qunits.String("mathematics"), qunits.String("east quad")})
	prof := db.Table("professor")
	prof.MustInsert(qunits.Row{qunits.Int(1), qunits.String("ada lovelace"), qunits.Int(1)})
	prof.MustInsert(qunits.Row{qunits.Int(2), qunits.String("emmy noether"), qunits.Int(2)})
	prof.MustInsert(qunits.Row{qunits.Int(3), qunits.String("alan turing"), qunits.Int(1)})
	course := db.Table("course")
	course.MustInsert(qunits.Row{qunits.Int(1), qunits.String("databases"), qunits.Int(1), qunits.Int(1)})
	course.MustInsert(qunits.Row{qunits.Int(2), qunits.String("information retrieval"), qunits.Int(1), qunits.Int(3)})
	course.MustInsert(qunits.Row{qunits.Int(3), qunits.String("abstract algebra"), qunits.Int(2), qunits.Int(2)})
	student := db.Table("student")
	student.MustInsert(qunits.Row{qunits.Int(1), qunits.String("alice chen"), qunits.Int(2)})
	student.MustInsert(qunits.Row{qunits.Int(2), qunits.String("bob kumar"), qunits.Int(3)})
	student.MustInsert(qunits.Row{qunits.Int(3), qunits.String("carol diaz"), qunits.Int(1)})
	enr := db.Table("enrollment")
	enr.MustInsert(qunits.Row{qunits.Int(1), qunits.Int(1), qunits.String("a")})
	enr.MustInsert(qunits.Row{qunits.Int(1), qunits.Int(2), qunits.String("b")})
	enr.MustInsert(qunits.Row{qunits.Int(2), qunits.Int(1), qunits.String("a")})
	enr.MustInsert(qunits.Row{qunits.Int(3), qunits.Int(3), qunits.String("a")})
	return db
}

func main() {
	db := buildUniversity()
	if err := db.ValidateForeignKeys(); err != nil {
		log.Fatal(err)
	}

	// Hand-written qunits for the new domain: a course roster (who is
	// enrolled) and a professor's teaching profile.
	cat := qunits.NewCatalog(db)
	cat.MustAdd(&qunits.Definition{
		Name:        "course-roster",
		Description: "the students enrolled in a course",
		Base: qunits.MustParseBase(`SELECT * FROM student, enrollment, course
WHERE enrollment.student_id = student.id AND enrollment.course_id = course.id AND course.title = "$x"`),
		Conversion: qunits.MustParseTemplate(`<roster course="$x">
<foreach:tuple><student>$student.name</student> grade <grade>$enrollment.grade</grade></foreach:tuple>
</roster>`),
		Utility:  1.0,
		Keywords: []string{"roster", "students", "enrolled", "enrollment"},
		Source:   "expert",
	})
	cat.MustAdd(&qunits.Definition{
		Name:        "professor-courses",
		Description: "the courses a professor teaches",
		Base: qunits.MustParseBase(`SELECT * FROM course, professor
WHERE course.prof_id = professor.id AND professor.name = "$x"`),
		Conversion: qunits.MustParseTemplate(`<teaching professor="$x">
<foreach:tuple><course>$course.title</course></foreach:tuple>
</teaching>`),
		Utility:  0.9,
		Keywords: []string{"courses", "teaches", "teaching", "classes"},
		Source:   "expert",
	})

	engine, err := qunits.NewEngine(cat, qunits.Options{Synonyms: map[string]string{
		"teaches": "course", "classes": "course", "enrolled": "enrollment",
	}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("university database, expert qunits:")
	for _, q := range []string{"databases roster", "ada lovelace courses", "alan turing"} {
		resp, err := engine.Search(context.Background(), qunits.Request{Query: q, K: 1})
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Results) == 0 {
			fmt.Printf("  %-24q -> no results\n", q)
			continue
		}
		top := resp.Results[0]
		fmt.Printf("  %-24q -> %s: %s\n", q, top.Instance.ID(), top.Instance.Rendered.Text)
	}

	// The generic §4.1 derivation works on this schema too — no IMDb
	// anywhere in the derivation code.
	auto, err := derive.FromSchema{K1: 3, K2: 2}.Derive(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschema-derived qunit definitions (no domain knowledge):")
	for _, d := range auto.Definitions() {
		fmt.Printf("  %-28s utility %.2f\n", d.Name, d.Utility)
	}
}
