// facade.go is the embeddable public surface of the module. The
// implementation lives under internal/; this file re-exports the types
// and entry points an external Go program needs to build a database,
// define or derive a qunit catalog, run structured searches, apply
// relevance feedback, and serve the whole thing over HTTP — without
// reaching into internal packages (which the Go toolchain forbids from
// outside this module).
//
// A minimal embedding:
//
//	db := qunits.NewDatabase("app")
//	// … create tables, insert rows …
//	cat, err := qunits.DeriveFromSchema(db)
//	engine, err := qunits.NewEngine(cat, qunits.Options{})
//	resp, err := engine.Search(ctx, qunits.Request{Query: "ada lovelace", K: 5})
//	http.ListenAndServe(":8080", qunits.NewServer(engine, qunits.ServerConfig{}))
//
// See examples/quickstart for the full walkthrough.
package qunits

import (
	"context"
	"io"

	"qunits/internal/cluster"
	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/eval"
	"qunits/internal/evidence"
	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/segment"
	"qunits/internal/server"
	"qunits/internal/snapshot"
	"qunits/internal/sqlview"
	"qunits/internal/synth"
)

// --- Relational substrate ---------------------------------------------------

// Database is an in-memory relational database — the substrate qunits
// are defined over.
type Database = relational.Database

// TableSchema describes one table's columns, primary key, and foreign
// keys.
type TableSchema = relational.TableSchema

// Column is one column of a table schema.
type Column = relational.Column

// ForeignKey declares that a column references another table's primary
// key.
type ForeignKey = relational.ForeignKey

// Row is one tuple of column values.
type Row = relational.Row

// Value is one typed cell value.
type Value = relational.Value

// Kind is a value/column type tag.
type Kind = relational.Kind

// The column kinds a schema can declare.
const (
	KindInt    = relational.KindInt
	KindString = relational.KindString
)

// NewDatabase returns an empty database with the given name.
func NewDatabase(name string) *Database { return relational.NewDatabase(name) }

// MustTableSchema builds a table schema or panics on an invalid one.
func MustTableSchema(name string, cols []Column, primaryKey string, fks []ForeignKey) *TableSchema {
	return relational.MustTableSchema(name, cols, primaryKey, fks)
}

// Int wraps an integer as a cell value.
func Int(v int64) Value { return relational.Int(v) }

// String wraps a string as a cell value.
func String(v string) Value { return relational.String(v) }

// --- Qunit definitions and catalogs -----------------------------------------

// Definition is one qunit definition: a base view expression plus a
// conversion (presentation) template, with keywords and a utility.
type Definition = core.Definition

// Instance is one materialized qunit instance — the unit of search.
type Instance = core.Instance

// Catalog is a set of qunit definitions over one database.
type Catalog = core.Catalog

// Section is one rollup section of a composite qunit definition.
type Section = core.Section

// NewCatalog returns an empty catalog over the database.
func NewCatalog(db *Database) *Catalog { return core.NewCatalog(db) }

// MustParseBase parses a qunit base expression (the paper's SQL-like
// view syntax) or panics.
func MustParseBase(src string) *sqlview.BaseExpr { return sqlview.MustParseBase(src) }

// MustParseTemplate parses a qunit conversion template (the paper's
// XML-with-substitutions syntax) or panics.
func MustParseTemplate(src string) *sqlview.Template { return sqlview.MustParseTemplate(src) }

// --- Catalog derivation (§4) ------------------------------------------------

// DeriveExpert derives a hand-written expert catalog for databases with
// recognized schemas (the paper's "qunits identified by experts").
func DeriveExpert(db *Database) (*Catalog, error) { return derive.Expert{}.Derive(db) }

// DeriveFromSchema derives a catalog automatically from schema and data
// characteristics alone — the paper's §4.1 strategy, and the one that
// works on any database.
func DeriveFromSchema(db *Database) (*Catalog, error) { return derive.FromSchema{}.Derive(db) }

// DeriveFromQueryLog derives a catalog from a synthetic query log over
// the demo universe — the paper's §4.2 strategy (rollup by query
// demand). The seed drives the log generation.
func DeriveFromQueryLog(u *IMDbUniverse, seed int64) (*Catalog, error) {
	cfg := querylog.DefaultGenConfig()
	cfg.Seed = seed
	log := querylog.Generate(u, cfg)
	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	return derive.FromQueryLog{Log: log, Segmenter: segment.NewSegmenter(dict)}.Derive(u.DB)
}

// DeriveFromEvidence derives a catalog from a synthetic web-evidence
// corpus over the demo universe — the paper's §4.3 strategy (one
// definition per page-layout family). The seed drives corpus
// generation.
func DeriveFromEvidence(u *IMDbUniverse, seed int64) (*Catalog, error) {
	cfg := evidence.DefaultCorpusConfig()
	cfg.Seed = seed
	pages := evidence.BuildCorpus(u, cfg)
	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	return derive.FromEvidence{Pages: pages, Dict: dict}.Derive(u.DB)
}

// --- Demo universe -----------------------------------------------------------

// IMDbConfig sizes the synthetic IMDb-like demo universe.
type IMDbConfig = imdb.Config

// IMDbUniverse is a generated demo universe: the database plus the
// entity populations the generators draw from.
type IMDbUniverse = imdb.Universe

// GenerateIMDb builds the synthetic IMDb-like demo universe the
// examples, experiments, and qunitsd serve; equal seeds produce
// identical databases.
func GenerateIMDb(cfg IMDbConfig) *IMDbUniverse { return imdb.MustGenerate(cfg) }

// IMDbSynonyms returns the attribute-synonym table for the demo
// universe's schema, for Options.Synonyms.
func IMDbSynonyms() map[string]string { return imdb.AttributeSynonyms() }

// SynthConfig sizes the scaled synthetic corpus generator — the
// streaming, instance-budgeted variant of the demo universe that stays
// practical past a million qunit instances.
type SynthConfig = synth.Config

// SynthForInstances sizes a SynthConfig so the expert catalog
// materializes at least n qunit instances over the generated universe.
func SynthForInstances(n int) SynthConfig { return synth.ForInstances(n) }

// GenerateSynth builds a scaled demo universe; equal seeds produce
// identical databases at any size.
func GenerateSynth(cfg SynthConfig) *IMDbUniverse { return synth.MustGenerate(cfg) }

// --- Search -----------------------------------------------------------------

// Engine answers keyword queries over a qunit catalog; construct with
// NewEngine. Safe for concurrent use.
type Engine = search.Engine

// Options configures an engine.
type Options = search.Options

// Request is a structured search request: query, page (K/Offset),
// filter, and explain flag.
type Request = search.Request

// Response is a structured search response: the result page, the total
// match count, and (on request) the explain payload.
type Response = search.Response

// Result is one ranked qunit instance with its score components.
type Result = search.Result

// Filter restricts a search by definition name and/or anchor type.
type Filter = search.Filter

// Explain is the diagnostic payload: segmentation, typed template, and
// identified-type affinities.
type Explain = search.Explain

// Feedback tunes the relevance-feedback update step.
type Feedback = search.Feedback

// UnknownDefinitionError reports a filter naming a definition absent
// from the catalog.
type UnknownDefinitionError = search.UnknownDefinitionError

// ErrEmptyQuery is returned by Engine.Search for a query with no
// content.
var ErrEmptyQuery = search.ErrEmptyQuery

// InstanceExistsError reports an instance add whose ID is already
// indexed.
type InstanceExistsError = search.InstanceExistsError

// InstanceNotFoundError reports an operation addressing an instance ID
// the engine does not hold.
type InstanceNotFoundError = search.InstanceNotFoundError

// NewEngine materializes and indexes every instance of the catalog and
// returns a ready engine.
func NewEngine(cat *Catalog, opts Options) (*Engine, error) { return search.NewEngine(cat, opts) }

// --- Snapshots ---------------------------------------------------------------

// SnapshotFormatVersion is the on-disk snapshot format version this
// build writes.
const SnapshotFormatVersion = snapshot.FormatVersion

// Snapshot error values, for errors.Is.
var (
	// ErrSnapshotBadMagic reports a stream that is not an engine
	// snapshot.
	ErrSnapshotBadMagic = snapshot.ErrBadMagic
	// ErrSnapshotTruncated reports a snapshot that ends mid-structure.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotChecksum reports a snapshot failing its CRC.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotCorrupt reports a structurally impossible snapshot.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
)

// SnapshotFutureVersionError reports a snapshot written by a newer
// format version than this build understands.
type SnapshotFutureVersionError = snapshot.FutureVersionError

// SnapshotDatabaseMismatchError reports a snapshot loaded against a
// database other than the one it was saved over.
type SnapshotDatabaseMismatchError = snapshot.DatabaseMismatchError

// SnapshotUnsupportedScorerError reports a save of an engine using a
// custom scorer the format cannot serialize.
type SnapshotUnsupportedScorerError = snapshot.UnsupportedScorerError

// SaveEngine writes the engine's full state — catalog with learned
// utilities, instances, index layout, collection statistics — as one
// versioned, checksummed snapshot blob. The engine keeps serving while
// the state is captured.
func SaveEngine(w io.Writer, e *Engine) error { return snapshot.SaveEngine(w, e) }

// LoadEngine rebuilds a serving-ready engine from a snapshot and the
// database it was saved over, skipping derivation, materialization, and
// indexing. The restored engine answers searches bitwise-identically to
// the engine that was saved.
func LoadEngine(r io.Reader, db *Database) (*Engine, error) { return snapshot.LoadEngine(r, db) }

// --- Relevance evaluation ----------------------------------------------------
//
// The relevance gate: curated golden sets (query → expected qunit ids,
// optionally graded) evaluated with Precision@k, Recall@k, MRR, and
// NDCG@k against an engine in process or a running server over HTTP.
// cmd/eval is the CLI; these exports let an embedding run the same gate
// over its own corpus.

// GoldenSet is a parsed golden relevance dataset: a self-describing
// header plus one judged case per query.
type GoldenSet = eval.GoldenSet

// GoldenHeader is a golden set's first JSONL line: format tag, corpus
// recipe, evaluation depth, and committed metric floors.
type GoldenHeader = eval.GoldenHeader

// GoldenCase is one judged query of a golden set.
type GoldenCase = eval.GoldenCase

// EvalFloors are the committed quality floors an evaluation must meet.
type EvalFloors = eval.Floors

// QueryMetrics are one query's rank metrics at k.
type QueryMetrics = eval.QueryMetrics

// EvalReport is the full evaluation artifact (the BENCH_EVAL.json
// shape).
type EvalReport = eval.Report

// EvalSetReport is one golden set's evaluation outcome.
type EvalSetReport = eval.SetReport

// EvalSearcher answers one query with its ranked qunit instance ids —
// the seam the evaluation harness runs through.
type EvalSearcher = eval.Searcher

// LoadGolden reads and strictly validates a golden set file.
func LoadGolden(path string) (*GoldenSet, error) { return eval.LoadGolden(path) }

// ParseGolden parses and strictly validates golden JSONL from a reader.
func ParseGolden(r io.Reader) (*GoldenSet, error) { return eval.ParseGolden(r) }

// BuiltinGolden loads one of the committed golden sets ("imdb" or
// "university").
func BuiltinGolden(name string) (*GoldenSet, error) { return eval.BuiltinGolden(name) }

// MetricsAtK computes Precision/Recall/MRR/NDCG at k for one ranked id
// list against binary relevance and graded gains.
func MetricsAtK(ranked []string, relevant map[string]bool, gains map[string]float64, k int) QueryMetrics {
	return eval.MetricsAtK(ranked, relevant, gains, k)
}

// EvaluateGoldenSet runs every case of a golden set through the engine
// and aggregates the rank metrics into a gated report.
func EvaluateGoldenSet(ctx context.Context, engine *Engine, set *GoldenSet) (*EvalSetReport, error) {
	return eval.EvaluateGolden(ctx, eval.EngineSearcher{Engine: engine}, set)
}

// EvaluateGoldenSetHTTP runs a golden set against a running server's
// POST /v1/search (single node, coordinator, or follower).
func EvaluateGoldenSetHTTP(ctx context.Context, baseURL string, set *GoldenSet) (*EvalSetReport, error) {
	return eval.EvaluateGolden(ctx, eval.HTTPSearcher{BaseURL: baseURL}, set)
}

// --- Serving ----------------------------------------------------------------

// Server is the HTTP serving layer: the versioned /v1 JSON API, the
// legacy /search alias, /healthz, and /stats. It implements
// http.Handler.
type Server = server.Server

// ServerConfig tunes a Server.
type ServerConfig = server.Config

// NewServer returns an HTTP handler serving the engine.
func NewServer(engine *Engine, cfg ServerConfig) *Server { return server.New(engine, cfg) }

// --- Distributed serving ----------------------------------------------------
//
// A cluster splits SCORING, not data: every partition node holds the
// full engine (BM25 scores depend on collection-wide statistics) and
// scores only the index shards its ShardSet selects; a coordinator
// merges the per-partition pages into responses byte-identical to a
// single node's. Replication between the primary and its followers
// rides a mutation WAL paired with bootstrap snapshots. See
// ARCHITECTURE.md, "A distributed qunitsd".

// ShardSet selects the subset of index shards a partition scores:
// shard s belongs to the set when s % Count == Index. The zero value
// selects every shard.
type ShardSet = ir.ShardSet

// ClusterProtoVersion is the partition RPC protocol version this build
// speaks.
const ClusterProtoVersion = cluster.ProtoVersion

// Partition is one scoring node as the coordinator sees it: in-process
// (LocalPartition) or remote (PartitionClient).
type Partition = cluster.Partition

// LocalPartition scores a shard subset of an in-process engine.
type LocalPartition = cluster.LocalPartition

// PartitionClient speaks the /v1/partition RPC to one remote partition
// server.
type PartitionClient = cluster.Client

// Coordinator scatter-gathers searches across partitions and merges
// the pages under the engine's exact ranking order.
type Coordinator = cluster.Coordinator

// RemoteError is an error a partition returned over the RPC, carrying
// its stable /v1 code.
type RemoteError = cluster.RemoteError

// UnavailableError reports a partition that could not be reached.
type UnavailableError = cluster.UnavailableError

// WAL is the append side of a mutation log; install it on the primary
// engine with Engine.SetMutationLog.
type WAL = cluster.WAL

// WALReader tails a mutation log.
type WALReader = cluster.WALReader

// WALRecord is one logged mutation.
type WALRecord = cluster.Record

// Follower replays a primary's mutation WAL into a replica engine.
type Follower = cluster.Follower

// PartitionServerConfig shapes a partition node's HTTP server.
type PartitionServerConfig = server.PartitionConfig

// NewPartitionClient returns a client for the partition server at
// baseURL serving the given partition index.
func NewPartitionClient(baseURL string, index int) *PartitionClient {
	return cluster.NewClient(baseURL, index)
}

// NewCoordinator returns a coordinator over the given partitions;
// partition i must score ShardSet{Index: i, Count: len(parts)}.
func NewCoordinator(parts []Partition) *Coordinator { return cluster.NewCoordinator(parts) }

// NewPartitionServer returns the HTTP server for one scoring node: the
// full /v1 surface over its engine replica plus the /v1/partition RPC.
func NewPartitionServer(engine *Engine, cfg ServerConfig, pcfg PartitionServerConfig) *Server {
	return server.NewPartitionServer(engine, cfg, pcfg)
}

// NewCoordinatorServer returns the HTTP server for a coordinator node:
// /v1/search fanned out to the cluster, mutations refused.
func NewCoordinatorServer(coord *Coordinator, cfg ServerConfig) *Server {
	return server.NewCoordinatorServer(coord, cfg)
}

// OpenWAL opens or creates a mutation log for appending, recovering
// the last sequence number and truncating a torn tail.
func OpenWAL(path string) (*WAL, error) { return cluster.OpenWAL(path) }

// NewWALReader returns a reader positioned at the start of the log.
func NewWALReader(path string) *WALReader { return cluster.NewWALReader(path) }

// NewFollower returns a follower replaying reader into engine from the
// given applied position.
func NewFollower(engine *Engine, reader *WALReader, applied uint64) *Follower {
	return cluster.NewFollower(engine, reader, applied)
}

// SaveBootstrap writes the engine as a snapshot plus a .seq sidecar
// recording the WAL position, captured atomically with the state.
func SaveBootstrap(path string, engine *Engine, seq func() uint64) error {
	return cluster.SaveBootstrap(path, engine, seq)
}

// LoadBootstrap restores an engine from a bootstrap snapshot and
// returns the WAL position its state corresponds to.
func LoadBootstrap(path string, db *Database) (*Engine, uint64, error) {
	return cluster.LoadBootstrap(path, db)
}
