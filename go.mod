module qunits

go 1.24
