// Package banks reimplements the BANKS keyword-search baseline (Bhalotia
// et al., "Keyword Searching and Browsing in Databases using BANKS", ICDE
// 2002). BANKS models the database as a tuple graph and answers a keyword
// query with minimal connection trees: a root tuple with shortest paths
// to one matching tuple per keyword. Results are ranked by a combination
// of tree compactness and node prestige (in-degree).
//
// The qunits paper uses BANKS as its primary "current paradigm" baseline
// and argues its results both over- and under-shoot the user's desired
// result demarcation; this implementation reproduces that behaviour
// faithfully rather than improving on it.
package banks

import (
	"container/heap"
	"math"
	"sort"

	"qunits/internal/graph"
	"qunits/internal/ir"
	"qunits/internal/relational"
)

// Result is one connection tree.
type Result struct {
	// Root is the connecting tuple.
	Root relational.TupleRef
	// Tuples are all tuples in the tree (root, inner nodes, leaves).
	Tuples []relational.TupleRef
	// Score ranks results; higher is better.
	Score float64
	// EdgeWeight is the total tree edge cost (lower is more compact).
	EdgeWeight float64
}

// Engine holds the graph and scoring parameters.
type Engine struct {
	g *graph.Graph
	// lambda balances prestige vs. compactness, as in the BANKS paper's
	// combined score; 0 means the 0.2 default.
	lambda float64
}

// New creates a BANKS engine over a data graph.
func New(g *graph.Graph, lambda float64) *Engine {
	if lambda == 0 {
		lambda = 0.2
	}
	return &Engine{g: g, lambda: lambda}
}

// Search answers a keyword query with the top-k connection trees. Query
// tokens that match no tuple are dropped (BANKS's behaviour); a query
// with no matching tokens returns nil.
func (e *Engine) Search(query string, k int) []Result {
	tokens := ir.ContentTokens(query)
	var sets [][]graph.NodeID
	for _, tok := range tokens {
		if nodes := e.g.MatchKeyword(tok); len(nodes) > 0 {
			sets = append(sets, nodes)
		}
	}
	if len(sets) == 0 {
		return nil
	}

	// Backward expanding search, batch formulation: one multi-source
	// Dijkstra per keyword set. dist[i][v] is the cheapest path cost from
	// any node matching keyword i to v; parent pointers reconstruct the
	// path.
	n := e.g.Len()
	dist := make([][]float64, len(sets))
	parent := make([][]graph.NodeID, len(sets))
	for i, set := range sets {
		dist[i], parent[i] = e.dijkstra(set, n)
	}

	// Candidate roots: nodes reached by every keyword iterator.
	type cand struct {
		node graph.NodeID
		cost float64
	}
	var cands []cand
	for v := 0; v < n; v++ {
		total := 0.0
		ok := true
		for i := range sets {
			if math.IsInf(dist[i][v], 1) {
				ok = false
				break
			}
			total += dist[i][v]
		}
		if ok {
			cands = append(cands, cand{node: v, cost: total})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].node < cands[j].node
	})

	// Materialize trees for the best roots; overfetch to let prestige
	// re-rank compact-but-boring trees downward.
	limit := 4 * k
	if limit < 16 {
		limit = 16
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}
	results := make([]Result, 0, len(cands))
	seen := map[string]bool{}
	for _, c := range cands {
		tree := e.buildTree(c.node, parent)
		key := treeKey(tree)
		if seen[key] {
			continue
		}
		seen[key] = true
		results = append(results, Result{
			Root:       e.g.Ref(c.node),
			Tuples:     tree,
			Score:      e.score(c.node, tree, c.cost),
			EdgeWeight: c.cost,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Root.String() < results[j].Root.String()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// dijkstra runs a multi-source shortest-path from the given set. Edge
// cost into a node v is 1 + ln(1+indeg(v)): traversing into heavily
// referenced hub tuples is discouraged, as in BANKS's backward edge
// weighting.
func (e *Engine) dijkstra(sources []graph.NodeID, n int) ([]float64, []graph.NodeID) {
	dist := make([]float64, n)
	parent := make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	pq := &nodeHeap{}
	for _, s := range sources {
		dist[s] = 0
		heap.Push(pq, nodeDist{node: s, dist: 0})
	}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.dist > dist[cur.node] {
			continue
		}
		for _, nb := range e.g.Neighbors(cur.node) {
			w := 1 + math.Log(1+float64(e.g.InDegree(nb)))
			nd := cur.dist + w
			if nd < dist[nb] {
				dist[nb] = nd
				parent[nb] = cur.node
				heap.Push(pq, nodeDist{node: nb, dist: nd})
			}
		}
	}
	return dist, parent
}

// buildTree collects the union of the paths from the root back to each
// keyword set, deduplicated, in deterministic order.
func (e *Engine) buildTree(root graph.NodeID, parents [][]graph.NodeID) []relational.TupleRef {
	nodes := map[graph.NodeID]bool{root: true}
	for i := range parents {
		at := root
		for at != -1 {
			nodes[at] = true
			at = parents[i][at]
		}
	}
	ids := make([]graph.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]relational.TupleRef, len(ids))
	for i, id := range ids {
		out[i] = e.g.Ref(id)
	}
	return out
}

// score combines compactness (1/(1+edge cost)) with normalized root and
// node prestige, weighted by lambda as in BANKS.
func (e *Engine) score(root graph.NodeID, tree []relational.TupleRef, cost float64) float64 {
	prestige := math.Log(1 + float64(e.g.InDegree(root)))
	for _, ref := range tree {
		if n, ok := e.g.Node(ref); ok {
			prestige += 0.1 * math.Log(1+float64(e.g.InDegree(n)))
		}
	}
	return (1-e.lambda)/(1+cost) + e.lambda*prestige/10
}

func treeKey(tree []relational.TupleRef) string {
	key := ""
	for _, t := range tree {
		key += t.String() + "|"
	}
	return key
}

type nodeDist struct {
	node graph.NodeID
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
