package banks

import (
	"testing"

	"qunits/internal/graph"
	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func engine(t *testing.T) (*imdb.Universe, *Engine) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 120, Movies: 80, CastPerMovie: 4})
	return u, New(graph.Build(u.DB), 0)
}

func TestSearchSingleKeyword(t *testing.T) {
	_, e := engine(t)
	res := e.Search("clooney", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// A single-keyword tree is just the matching tuple.
	top := res[0]
	if len(top.Tuples) != 1 {
		t.Errorf("single keyword tree = %v", top.Tuples)
	}
	if top.Tuples[0].Table != imdb.TablePerson {
		t.Errorf("top result table = %s, want person", top.Tuples[0].Table)
	}
}

func TestSearchConnectsKeywords(t *testing.T) {
	u, e := engine(t)
	res := e.Search("george clooney star wars", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// The top tree must contain both a person tuple matching clooney and
	// a movie tuple matching star wars, connected through join tuples.
	top := res[0]
	var hasPerson, hasMovie bool
	for _, ref := range top.Tuples {
		switch ref.Table {
		case imdb.TablePerson:
			if u.DB.Label(ref) == "george clooney" {
				hasPerson = true
			}
		case imdb.TableMovie:
			if u.DB.Label(ref) == "star wars" {
				hasMovie = true
			}
		}
	}
	if !hasPerson || !hasMovie {
		t.Errorf("top tree lacks endpoints: person=%v movie=%v tuples=%v", hasPerson, hasMovie, top.Tuples)
	}
	if len(top.Tuples) < 3 {
		t.Errorf("connection tree suspiciously small: %v", top.Tuples)
	}
}

func TestSearchRanksCompactTreesHigher(t *testing.T) {
	_, e := engine(t)
	res := e.Search("george clooney", 10)
	if len(res) < 2 {
		t.Skip("not enough results to compare")
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatal("results not sorted by score")
		}
	}
	// Top result should be more compact (fewer tuples) than the worst.
	if len(res[0].Tuples) > len(res[len(res)-1].Tuples)+3 {
		t.Errorf("top tree has %d tuples, last has %d", len(res[0].Tuples), len(res[len(res)-1].Tuples))
	}
}

func TestSearchNoMatch(t *testing.T) {
	_, e := engine(t)
	if res := e.Search("xyzzyplugh", 5); res != nil {
		t.Errorf("results for nonsense query: %v", res)
	}
	if res := e.Search("", 5); res != nil {
		t.Errorf("results for empty query: %v", res)
	}
}

func TestSearchDropsUnmatchedTokens(t *testing.T) {
	_, e := engine(t)
	with := e.Search("clooney", 3)
	withJunk := e.Search("clooney xyzzyblorp", 3)
	if len(with) != len(withJunk) {
		t.Fatalf("unmatched token changed result count: %d vs %d", len(with), len(withJunk))
	}
	for i := range with {
		if with[i].Root != withJunk[i].Root {
			t.Fatalf("unmatched token changed ranking at %d", i)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	_, e := engine(t)
	a := e.Search("star wars cast", 5)
	b := e.Search("star wars cast", 5)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i].Root != b[i].Root || a[i].Score != b[i].Score {
			t.Fatalf("nondeterministic result %d", i)
		}
	}
}

func TestSearchTopKRespected(t *testing.T) {
	_, e := engine(t)
	if res := e.Search("the", 3); len(res) > 3 {
		t.Errorf("k=3 returned %d", len(res))
	}
}

func TestTreesAreUnique(t *testing.T) {
	_, e := engine(t)
	res := e.Search("star wars", 10)
	seen := map[string]bool{}
	for _, r := range res {
		key := ""
		for _, tup := range r.Tuples {
			key += tup.String() + "|"
		}
		if seen[key] {
			t.Fatal("duplicate tree in results")
		}
		seen[key] = true
	}
}

// The paper's critique: BANKS demarcates results by spanning tree, which
// chains through join tuples. Verify the tree actually is connected in
// the graph (every tuple reachable from the root within the tree).
func TestTreeConnectivity(t *testing.T) {
	u, e := engine(t)
	res := e.Search("george clooney star wars", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	g := graph.Build(u.DB)
	for _, r := range res {
		inTree := map[relational.TupleRef]bool{}
		for _, ref := range r.Tuples {
			inTree[ref] = true
		}
		visited := map[relational.TupleRef]bool{r.Root: true}
		queue := []relational.TupleRef{r.Root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			n, _ := g.Node(cur)
			for _, nb := range g.Neighbors(n) {
				ref := g.Ref(nb)
				if inTree[ref] && !visited[ref] {
					visited[ref] = true
					queue = append(queue, ref)
				}
			}
		}
		if len(visited) != len(r.Tuples) {
			t.Errorf("tree rooted at %v is disconnected: visited %d of %d", r.Root, len(visited), len(r.Tuples))
		}
	}
}
