package banks

import (
	"container/heap"
	"math"
	"testing"

	"qunits/internal/graph"
	"qunits/internal/imdb"
)

// Property: the multi-source Dijkstra matches a brute-force relaxation
// (Bellman-Ford style) on the same weighted graph.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 12, Persons: 40, Movies: 30, CastPerMovie: 3})
	g := graph.Build(u.DB)
	e := New(g, 0)

	sources := g.MatchKeyword("clooney")
	if len(sources) == 0 {
		t.Fatal("no sources")
	}
	dist, _ := e.dijkstra(sources, g.Len())

	// Bellman-Ford over the same edge weights.
	bf := make([]float64, g.Len())
	for i := range bf {
		bf[i] = math.Inf(1)
	}
	for _, s := range sources {
		bf[s] = 0
	}
	for iter := 0; iter < g.Len(); iter++ {
		changed := false
		for v := 0; v < g.Len(); v++ {
			if math.IsInf(bf[v], 1) {
				continue
			}
			for _, nb := range g.Neighbors(v) {
				w := 1 + math.Log(1+float64(g.InDegree(nb)))
				if bf[v]+w < bf[nb]-1e-12 {
					bf[nb] = bf[v] + w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for v := 0; v < g.Len(); v++ {
		if math.IsInf(dist[v], 1) != math.IsInf(bf[v], 1) {
			t.Fatalf("node %d reachability differs", v)
		}
		if !math.IsInf(dist[v], 1) && math.Abs(dist[v]-bf[v]) > 1e-9 {
			t.Fatalf("node %d: dijkstra %v, bellman-ford %v", v, dist[v], bf[v])
		}
	}
}

// Lambda shifts the balance between compactness and prestige: with lambda
// near 1 the ranking orders by prestige, with lambda near 0 by tree cost.
func TestLambdaShiftsRanking(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 12, Persons: 150, Movies: 100, CastPerMovie: 5})
	g := graph.Build(u.DB)

	compact := New(g, 0.01)
	prestige := New(g, 0.99)
	q := "the" // a common token with many matches of varying prestige
	a := compact.Search(q, 5)
	b := prestige.Search(q, 5)
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no results for common token")
	}
	// The prestige-heavy engine's top root should have in-degree at least
	// that of the compactness-heavy engine's top root.
	na, _ := g.Node(a[0].Root)
	nb, _ := g.Node(b[0].Root)
	if g.InDegree(nb) < g.InDegree(na) {
		t.Errorf("prestige-heavy top root has lower in-degree (%d) than compact-heavy (%d)",
			g.InDegree(nb), g.InDegree(na))
	}
}

func TestNodeHeapOrdering(t *testing.T) {
	h := &nodeHeap{}
	heap.Push(h, nodeDist{node: 1, dist: 3})
	heap.Push(h, nodeDist{node: 2, dist: 1})
	heap.Push(h, nodeDist{node: 3, dist: 2})
	want := []float64{1, 2, 3}
	for _, w := range want {
		got := heap.Pop(h).(nodeDist)
		if got.dist != w {
			t.Fatalf("heap popped %v, want %v", got.dist, w)
		}
	}
}
