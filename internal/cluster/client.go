package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the /v1/partition RPC to one remote partition server.
// It implements Partition; the coordinator uses it interchangeably
// with LocalPartition.
type Client struct {
	// BaseURL is the partition server's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// PartitionIndex labels transport failures (UnavailableError).
	PartitionIndex int
}

// NewClient returns a client for one partition server.
func NewClient(baseURL string, index int) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), PartitionIndex: index}
}

// maxReplyBytes bounds every RPC reply body (a defensive mirror of the
// server's request bound; partition pages are small).
const maxReplyBytes = 8 << 20

// Search implements Partition.
func (c *Client) Search(ctx context.Context, req PageRequest) (*PageReply, error) {
	req.Proto = ProtoVersion
	var reply PageReply
	if err := c.post(ctx, "/v1/partition/search", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Batch implements Partition.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchReply, error) {
	req.Proto = ProtoVersion
	var reply BatchReply
	if err := c.post(ctx, "/v1/partition/batch", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Stats implements Partition.
func (c *Client) Stats(ctx context.Context) (*PartitionStats, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/partition/stats", nil)
	if err != nil {
		return nil, &UnavailableError{Partition: c.PartitionIndex, Err: err}
	}
	var stats PartitionStats
	if err := c.do(httpReq, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// post sends one JSON request and decodes the success body into out.
func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return &UnavailableError{Partition: c.PartitionIndex, Err: err}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return &UnavailableError{Partition: c.PartitionIndex, Err: err}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	return c.do(httpReq, out)
}

// do executes one RPC: a 2xx body decodes into out; an error status
// must carry the /v1 envelope, which surfaces as *RemoteError (message
// verbatim — see RemoteError); anything else is *UnavailableError.
func (c *Client) do(req *http.Request, out interface{}) error {
	client := c.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return &UnavailableError{Partition: c.PartitionIndex, Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes))
	if err != nil {
		return &UnavailableError{Partition: c.PartitionIndex, Err: err}
	}
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error WireError `json:"error"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Error.Code == "" {
			return &UnavailableError{Partition: c.PartitionIndex,
				Err: fmt.Errorf("status %d with unrecognized body %.200q", resp.StatusCode, raw)}
		}
		return &RemoteError{Code: envelope.Error.Code, Status: resp.StatusCode, Message: envelope.Error.Message}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return &UnavailableError{Partition: c.PartitionIndex, Err: fmt.Errorf("decoding reply: %w", err)}
	}
	return nil
}
