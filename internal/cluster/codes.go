package cluster

import (
	"context"
	"errors"

	"qunits/internal/search"
)

// The stable error codes of the public /v1 envelope and the partition
// RPC. They live here — the lowest layer of the versioned API — so the
// public server and the partition protocol share one vocabulary;
// internal/server aliases them. Clients branch on these, never on
// message text.
const (
	// CodeInvalidArgument: the request is syntactically valid JSON but
	// semantically wrong (empty query, negative offset, k out of range,
	// batch too large, …).
	CodeInvalidArgument = "invalid_argument"
	// CodeInvalidJSON: the request body is not the expected JSON shape.
	CodeInvalidJSON = "invalid_json"
	// CodeUnknownDefinition: a filter names a definition the catalog
	// does not contain.
	CodeUnknownDefinition = "unknown_definition"
	// CodeNotFound: the addressed resource (instance) does not exist.
	CodeNotFound = "not_found"
	// CodeAlreadyExists: the instance being created is already indexed.
	CodeAlreadyExists = "already_exists"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotSupported: the endpoint exists but this node's role does
	// not serve it (mutations on a coordinator or follower).
	CodeNotSupported = "not_supported"
	// CodeUnavailable: a partition required to answer could not be
	// reached.
	CodeUnavailable = "unavailable"
	// CodeUnsupportedProto: the partition RPC version is not spoken by
	// the receiving node.
	CodeUnsupportedProto = "unsupported_proto"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorCode maps an error to its stable code — the single mapping every
// surface (public /v1, partition RPC, coordinator) routes through.
// Errors that already carry a code (RemoteError) keep it, so codes
// survive a coordinator hop unchanged.
func ErrorCode(err error) string {
	var (
		remote      *RemoteError
		unavailable *UnavailableError
		unknownDef  *search.UnknownDefinitionError
		notFound    *search.InstanceNotFoundError
		exists      *search.InstanceExistsError
		badAnchor   *search.InvalidAnchorError
	)
	switch {
	case errors.As(err, &remote):
		return remote.Code
	case errors.As(err, &unavailable):
		return CodeUnavailable
	case errors.Is(err, search.ErrEmptyQuery):
		return CodeInvalidArgument
	case errors.As(err, &unknownDef):
		return CodeUnknownDefinition
	case errors.As(err, &notFound):
		return CodeNotFound
	case errors.As(err, &exists):
		return CodeAlreadyExists
	case errors.As(err, &badAnchor):
		return CodeInvalidArgument
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeInternal
	default:
		return CodeInternal
	}
}
