package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"qunits/internal/search"
)

// Coordinator fans a search out to every partition of a deployment and
// merges the pages back into exactly the response a single-node engine
// would produce. It owns no index: correctness rests on the partition
// contract (full replicas scoring disjoint shard subsets — see the
// package comment), which makes per-partition totals sum to the global
// Total and the global top-(offset+k) a subset of the union of
// per-partition top-(offset+k) prefixes.
type Coordinator struct {
	parts []Partition
}

// NewCoordinator returns a coordinator over the given partitions.
// Partition i must score ShardSet{Index: i, Count: len(parts)}; the
// coordinator stamps that selector on every request so a misconfigured
// node rejects it instead of silently scoring the wrong subset.
func NewCoordinator(parts []Partition) *Coordinator {
	return &Coordinator{parts: parts}
}

// Partitions reports the deployment's partition count.
func (c *Coordinator) Partitions() int { return len(c.parts) }

// Page is a merged search response in wire form, ready for the public
// /v1 surface.
type Page struct {
	// Total is the exact global match count (sum of disjoint subsets).
	Total int
	// Results is the requested page, (score desc, ID asc) — never nil.
	Results []Result
	// Explain is present when the request asked for it.
	Explain *Explain
}

// BatchOutcome is one item of a merged batch: exactly one of Page or
// Err is set.
type BatchOutcome struct {
	Page *Page
	Err  error
}

// Search scatter-gathers one request. The request must already carry
// the public surface's defaulting and limits (the /v1 layer applies
// them before calling here, exactly as it does before a single-node
// engine call); Validate is still enforced so direct callers get the
// same errors a single node returns.
func (c *Coordinator) Search(ctx context.Context, req search.Request) (*Page, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	replies := make([]*PageReply, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, part := range c.parts {
		wg.Add(1)
		go func(i int, part Partition) {
			defer wg.Done()
			replies[i], errs[i] = part.Search(ctx, c.pageRequest(req, i))
		}(i, part)
	}
	wg.Wait()
	// Errors are surfaced deterministically: the lowest-indexed
	// partition's error wins, so a multi-failure fan-out never flaps
	// between messages across runs.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergePage(replies, req), nil
}

// Batch scatter-gathers a whole batch: every partition scores all items
// in one engine pass, then each item is merged independently. Outcomes
// align positionally with reqs. A partition-level failure (transport,
// protocol) fails the whole call — a correct page cannot be served with
// a shard subset missing — while per-item errors stay per-item, exactly
// as on a single node.
func (c *Coordinator) Batch(ctx context.Context, reqs []search.Request) ([]BatchOutcome, error) {
	replies := make([]*BatchReply, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, part := range c.parts {
		wg.Add(1)
		go func(i int, part Partition) {
			defer wg.Done()
			breq := BatchRequest{
				Proto:     ProtoVersion,
				Partition: Selector{Index: i, Count: len(c.parts)},
				Items:     make([]PageItem, len(reqs)),
			}
			for j, req := range reqs {
				breq.Items[j] = RequestToItem(c.partitionRequest(req, i))
			}
			replies[i], errs[i] = part.Batch(ctx, breq)
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outcomes := make([]BatchOutcome, len(reqs))
	itemReplies := make([]*PageReply, len(c.parts))
	for j := range reqs {
		outcomes[j] = c.mergeItem(replies, itemReplies, j, reqs[j])
	}
	return outcomes, nil
}

// StatsAll fans Stats out to every partition concurrently. Both slices
// align with partition indexes; a nil stats entry pairs with its error.
// Unlike Search, one unreachable node does not fail the call — topology
// reporting must describe degraded clusters.
func (c *Coordinator) StatsAll(ctx context.Context) ([]*PartitionStats, []error) {
	stats := make([]*PartitionStats, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, part := range c.parts {
		wg.Add(1)
		go func(i int, part Partition) {
			defer wg.Done()
			stats[i], errs[i] = part.Stats(ctx)
		}(i, part)
	}
	wg.Wait()
	return stats, errs
}

// mergeItem merges item j across all partition batch replies, reusing
// scratch as the per-partition reply buffer.
func (c *Coordinator) mergeItem(replies []*BatchReply, scratch []*PageReply, j int, req search.Request) BatchOutcome {
	for i, reply := range replies {
		if j >= len(reply.Items) {
			return BatchOutcome{Err: &UnavailableError{Partition: i,
				Err: fmt.Errorf("batch reply carries %d items, need at least %d", len(reply.Items), j+1)}}
		}
		item := reply.Items[j]
		if item.Error != nil {
			// A partition rejected this item. All replicas run the same
			// validation over the same state, so every partition rejects
			// it with the same error; surface the lowest index's,
			// re-typed so the code survives to the public envelope and
			// the message stays verbatim.
			return BatchOutcome{Err: &RemoteError{Code: item.Error.Code, Message: item.Error.Message}}
		}
		if item.Reply == nil {
			return BatchOutcome{Err: &UnavailableError{Partition: i,
				Err: fmt.Errorf("batch item %d carries neither reply nor error", j)}}
		}
		scratch[i] = item.Reply
	}
	return BatchOutcome{Page: mergePage(scratch, req)}
}

// pageRequest builds partition i's request for req.
func (c *Coordinator) pageRequest(req search.Request, i int) PageRequest {
	preq := c.partitionRequest(req, i)
	out := PageRequest{
		Proto:     ProtoVersion,
		Partition: Selector{Index: i, Count: len(c.parts)},
		Query:     preq.Query,
		K:         preq.K,
		Offset:    preq.Offset,
		Explain:   preq.Explain,
	}
	if !preq.Filter.IsZero() {
		out.Filter = &Filter{Definitions: preq.Filter.Definitions, AnchorTypes: preq.Filter.AnchorTypes}
	}
	return out
}

// partitionRequest rewrites the client paging for one partition: the
// global page [offset, offset+k) is contained in the union of the
// per-partition top-(offset+k) prefixes, so each partition is asked for
// that prefix from rank 0 and the coordinator re-applies the offset
// after the merge. K <= 0 keeps its engine meaning ("all results").
// Explain is query-level and identical on every replica, so only
// partition 0 computes it.
func (c *Coordinator) partitionRequest(req search.Request, i int) search.Request {
	out := req
	out.Offset = 0
	if req.K > 0 {
		out.K = req.Offset + req.K
	}
	out.Explain = req.Explain && i == 0
	return out
}

// mergePage merges per-partition replies into the client's page under
// the engine's exact order (score desc, ID asc). Shard subsets are
// disjoint, so no ID appears twice and the concatenation-sort
// reproduces the single-node ranking of the union.
func mergePage(replies []*PageReply, req search.Request) *Page {
	total := 0
	size := 0
	for _, reply := range replies {
		total += reply.Total
		size += len(reply.Results)
	}
	merged := make([]Result, 0, size)
	for _, reply := range replies {
		merged = append(merged, reply.Results...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Score != merged[b].Score {
			return merged[a].Score > merged[b].Score
		}
		return merged[a].ID < merged[b].ID
	})
	if req.Offset >= len(merged) {
		merged = merged[:0]
	} else {
		merged = merged[req.Offset:]
	}
	if req.K > 0 && len(merged) > req.K {
		merged = merged[:req.K]
	}
	page := &Page{Total: total, Results: merged}
	if len(replies) > 0 && replies[0] != nil {
		page.Explain = replies[0].Explain
	}
	return page
}
