package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"qunits/internal/ir"
	"qunits/internal/search"
)

// localCluster returns a coordinator over n LocalPartitions of one
// engine — the degenerate deployment the merge invariants are proved
// against.
func localCluster(e *search.Engine, n int) *Coordinator {
	parts := make([]Partition, n)
	for i := range parts {
		parts[i] = &LocalPartition{Engine: e, Set: ir.ShardSet{Index: i, Count: n}}
	}
	return NewCoordinator(parts)
}

// TestCoordinatorMergeParity drives a workload through a 3-partition
// coordinator and a direct engine call and requires identical pages:
// same Total, same results in the same order with the same scores, same
// explain payload. This is the scatter-gather contract — disjoint shard
// subsets merge back into exactly the single-node ranking.
func TestCoordinatorMergeParity(t *testing.T) {
	u := testUniverse(t)
	e := newReplicaEngine(t, u)
	coord := localCluster(e, 3)
	ctx := context.Background()
	for _, q := range workloadQueries(t, u, 40) {
		for _, req := range []search.Request{
			{Query: q, K: 5},
			{Query: q, K: 3, Offset: 2},
			{Query: q, K: 4, Explain: true},
			{Query: q, K: 5, Filter: search.Filter{AnchorTypes: []string{"movie.title"}}},
			{Query: q},                   // K <= 0: all results
			{Query: q, K: 2, Offset: 50}, // offset past the end
		} {
			want, errW := e.Search(ctx, req)
			got, errG := coord.Search(ctx, req)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%q: errors diverge: engine %v, coordinator %v", q, errW, errG)
			}
			if errW != nil {
				continue
			}
			if got.Total != want.Total {
				t.Fatalf("%q k=%d off=%d: total %d, want %d", q, req.K, req.Offset, got.Total, want.Total)
			}
			if !reflect.DeepEqual(got.Results, ResultsToWire(want.Results)) {
				t.Fatalf("%q k=%d off=%d: results diverge\ngot:  %+v\nwant: %+v",
					q, req.K, req.Offset, got.Results, ResultsToWire(want.Results))
			}
			if !reflect.DeepEqual(got.Explain, ExplainToWire(want.Explain)) {
				t.Fatalf("%q: explain diverges\ngot:  %+v\nwant: %+v", q, got.Explain, ExplainToWire(want.Explain))
			}
		}
	}
}

// TestCoordinatorPartitionCounts checks the partition-count edge cases:
// a 1-partition cluster is literally a single node, and more partitions
// than index shards leaves some partitions with nothing to score but
// must not change the merged page.
func TestCoordinatorPartitionCounts(t *testing.T) {
	u := testUniverse(t)
	e := newReplicaEngine(t, u)
	ctx := context.Background()
	queries := workloadQueries(t, u, 10)
	for _, n := range []int{1, 2, 7} { // engine has 5 shards
		coord := localCluster(e, n)
		for _, q := range queries {
			req := search.Request{Query: q, K: 5}
			want, err := e.Search(ctx, req)
			if err != nil {
				continue
			}
			got, err := coord.Search(ctx, req)
			if err != nil {
				t.Fatalf("n=%d %q: %v", n, q, err)
			}
			if got.Total != want.Total || !reflect.DeepEqual(got.Results, ResultsToWire(want.Results)) {
				t.Fatalf("n=%d %q: merged page diverges from single node", n, q)
			}
		}
	}
}

// TestCoordinatorBatchParity merges batches item by item and compares
// each outcome against the single-engine response, including a per-item
// error (empty query) that must stay per-item with the engine's exact
// message.
func TestCoordinatorBatchParity(t *testing.T) {
	u := testUniverse(t)
	e := newReplicaEngine(t, u)
	coord := localCluster(e, 3)
	ctx := context.Background()
	queries := workloadQueries(t, u, 6)
	reqs := []search.Request{
		{Query: queries[0], K: 4},
		{Query: "   ", K: 3}, // invalid: per-item error
		{Query: queries[1], K: 2, Explain: true},
		{Query: queries[2], K: 6, Offset: 1},
		{Query: queries[0], K: 4}, // duplicate of item 0
	}
	outcomes, err := coord.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(outcomes), len(reqs))
	}
	for i, req := range reqs {
		want, errW := e.Search(ctx, req)
		if errW != nil {
			if outcomes[i].Err == nil {
				t.Fatalf("item %d: engine rejected (%v), coordinator did not", i, errW)
			}
			var remote *RemoteError
			if !errors.As(outcomes[i].Err, &remote) {
				t.Fatalf("item %d: error %T, want *RemoteError", i, outcomes[i].Err)
			}
			if remote.Error() != errW.Error() {
				t.Fatalf("item %d: message %q, want engine's %q", i, remote.Error(), errW.Error())
			}
			if remote.Code != ErrorCode(errW) {
				t.Fatalf("item %d: code %q, want %q", i, remote.Code, ErrorCode(errW))
			}
			continue
		}
		if outcomes[i].Err != nil {
			t.Fatalf("item %d: %v", i, outcomes[i].Err)
		}
		page := outcomes[i].Page
		if page.Total != want.Total || !reflect.DeepEqual(page.Results, ResultsToWire(want.Results)) {
			t.Fatalf("item %d: merged page diverges from single node", i)
		}
		if !reflect.DeepEqual(page.Explain, ExplainToWire(want.Explain)) {
			t.Fatalf("item %d: explain diverges", i)
		}
	}
	if !reflect.DeepEqual(outcomes[0].Page, outcomes[4].Page) {
		t.Fatal("identical batch items produced different pages")
	}
}

// failingPartition fails every call, standing in for an unreachable
// node.
type failingPartition struct{ err error }

func (p *failingPartition) Search(context.Context, PageRequest) (*PageReply, error) {
	return nil, p.err
}
func (p *failingPartition) Batch(context.Context, BatchRequest) (*BatchReply, error) {
	return nil, p.err
}
func (p *failingPartition) Stats(context.Context) (*PartitionStats, error) { return nil, p.err }

// TestCoordinatorPartitionFailure: a page cannot be served with a shard
// subset missing, so one failing partition fails the search and the
// whole batch — but StatsAll still reports the healthy nodes.
func TestCoordinatorPartitionFailure(t *testing.T) {
	u := testUniverse(t)
	e := newReplicaEngine(t, u)
	down := &UnavailableError{Partition: 1, Err: errors.New("connection refused")}
	coord := NewCoordinator([]Partition{
		&LocalPartition{Engine: e, Set: ir.ShardSet{Index: 0, Count: 3}},
		&failingPartition{err: down},
		&LocalPartition{Engine: e, Set: ir.ShardSet{Index: 2, Count: 3}},
	})
	ctx := context.Background()
	q := workloadQueries(t, u, 5)[0]
	if _, err := coord.Search(ctx, search.Request{Query: q, K: 5}); !errors.Is(err, down) {
		t.Fatalf("search error %v, want the partition failure", err)
	}
	if _, err := coord.Batch(ctx, []search.Request{{Query: q, K: 5}}); !errors.Is(err, down) {
		t.Fatalf("batch error %v, want the partition failure", err)
	}
	stats, errs := coord.StatsAll(ctx)
	if stats[0] == nil || stats[2] == nil {
		t.Fatal("healthy partitions missing from StatsAll")
	}
	if stats[1] != nil || errs[1] == nil {
		t.Fatalf("failed partition reported as healthy: %+v, err %v", stats[1], errs[1])
	}
}

// TestCoordinatorValidates: the coordinator returns the engine's own
// validation errors without touching any partition.
func TestCoordinatorValidates(t *testing.T) {
	boom := &failingPartition{err: errors.New("partition must not be called")}
	coord := NewCoordinator([]Partition{boom})
	if _, err := coord.Search(context.Background(), search.Request{Query: "  "}); err == nil {
		t.Fatal("empty query accepted")
	} else if ErrorCode(err) != CodeInvalidArgument {
		t.Fatalf("code %q, want %q", ErrorCode(err), CodeInvalidArgument)
	}
}
