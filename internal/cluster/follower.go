package cluster

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/snapshot"
)

// Follower converges an engine on a primary's state by replaying the
// primary's mutation WAL through the same Engine methods the primary
// ran. Because every operation — including compaction — is logged in
// its apply order and each is deterministic, a follower at applied
// sequence S holds exactly the engine state the primary held at S.
//
// The follower's engine must NOT have a mutation log installed:
// replayed operations are already logged, and re-logging them would
// fork the stream.
//
// Replay is idempotent by sequence number, not by operation — feedback
// is a multiplicative update, so applying a record twice would corrupt
// utilities. A record with Seq <= AppliedSeq is skipped; a record with
// Seq > AppliedSeq+1 is a hole (snapshot newer than the log, wrong log
// file) and is an error.
type Follower struct {
	engine *search.Engine
	reader *WALReader
	// applied is atomic so stats handlers can report the position while
	// a catch-up loop advances it; CatchUp itself must not be called
	// concurrently with itself.
	applied atomic.Uint64
}

// NewFollower returns a follower replaying reader into engine. applied
// is the engine state's log position: 0 for an engine built from
// scratch, or the sequence from a bootstrap snapshot's sidecar.
func NewFollower(engine *search.Engine, reader *WALReader, applied uint64) *Follower {
	f := &Follower{engine: engine, reader: reader}
	f.applied.Store(applied)
	return f
}

// AppliedSeq reports the last applied sequence number.
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// CatchUp replays every complete record currently in the log and
// returns how many it applied. A torn tail simply ends the pass — the
// next CatchUp picks it up once the primary's append completes.
func (f *Follower) CatchUp() (int, error) {
	recs, err := f.reader.ReadAvailable()
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, rec := range recs {
		pos := f.applied.Load()
		if rec.Seq <= pos {
			continue // duplicate delivery (e.g. reader restarted at 0)
		}
		if rec.Seq != pos+1 {
			return applied, fmt.Errorf("cluster: wal gap: record %d follows applied %d", rec.Seq, pos)
		}
		if err := f.apply(rec); err != nil {
			return applied, fmt.Errorf("cluster: applying wal record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		f.applied.Store(rec.Seq)
		applied++
	}
	return applied, nil
}

// apply replays one record through the engine's public mutation
// methods. Already-exists on add and not-found on remove are tolerated
// as a safety net (the state the record wanted is the state we have);
// every other failure is real.
func (f *Follower) apply(rec Record) error {
	switch rec.Op {
	case OpAdd:
		def := f.engine.Catalog().Definition(rec.Def)
		if def == nil {
			return fmt.Errorf("unknown definition %q", rec.Def)
		}
		inst, err := f.engine.Catalog().Instantiate(def, rec.Params)
		if err != nil {
			return err
		}
		err = f.engine.AddInstance(inst)
		var exists *search.InstanceExistsError
		if err != nil && !errors.As(err, &exists) {
			return err
		}
		return nil
	case OpRemove:
		err := f.engine.RemoveInstance(rec.ID)
		var missing *search.InstanceNotFoundError
		if err != nil && !errors.As(err, &missing) {
			return err
		}
		return nil
	case OpFeedback:
		_, err := f.engine.ApplyFeedback(rec.ID, rec.Positive, search.Feedback{Rate: rec.Rate})
		return err
	case OpCompact:
		_, err := f.engine.Compact()
		return err
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// SaveBootstrap writes the engine's state as a QSNP snapshot at path
// with the WAL position in a "<path>.seq" sidecar. The position is
// captured while the snapshot's own locks are held (DumpStateWith), so
// the pair is atomic: a follower restoring from it resumes the log at
// exactly the first record the snapshot does not contain. seq is
// typically (*WAL).LastSeq on a primary or (*Follower).AppliedSeq on a
// follower checkpointing itself; nil records position 0.
//
// Both files are written via rename, so a crash mid-save leaves any
// previous bootstrap intact.
func SaveBootstrap(path string, engine *search.Engine, seq func() uint64) error {
	var pos uint64
	capture := func() {}
	if seq != nil {
		capture = func() { pos = seq() }
	}
	st, err := engine.DumpStateWith(capture)
	if err != nil {
		return fmt.Errorf("cluster: dumping engine state: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: creating bootstrap %s: %w", tmp, err)
	}
	if err := snapshot.SaveState(f, engine.Catalog().DB(), st); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: writing bootstrap %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: closing bootstrap %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: publishing bootstrap %s: %w", path, err)
	}
	seqTmp := path + ".seq.tmp"
	if err := os.WriteFile(seqTmp, []byte(strconv.FormatUint(pos, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("cluster: writing bootstrap sidecar %s: %w", seqTmp, err)
	}
	if err := os.Rename(seqTmp, path+".seq"); err != nil {
		os.Remove(seqTmp)
		return fmt.Errorf("cluster: publishing bootstrap sidecar %s.seq: %w", path, err)
	}
	return nil
}

// LoadBootstrap restores an engine from a bootstrap snapshot and
// returns it with the log position from the sidecar. A missing sidecar
// means the snapshot predates WAL shipping (or was written by plain
// snapshot tooling): position 0, which is only correct for an empty
// log, so a follower pairing it with a non-empty WAL fails loudly on
// the gap check rather than replaying from the wrong point.
func LoadBootstrap(path string, db *relational.Database) (*search.Engine, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: opening bootstrap %s: %w", path, err)
	}
	defer f.Close()
	engine, err := snapshot.LoadEngine(f, db)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: loading bootstrap %s: %w", path, err)
	}
	pos, err := bootstrapSeq(path)
	if err != nil {
		return nil, 0, err
	}
	return engine, pos, nil
}

// LoadBootstrapMapped is LoadBootstrap serving posting blocks straight
// out of a memory mapping of the snapshot file when the platform and
// snapshot version allow it (see snapshot.LoadEngineFile) — follower
// bootstrap then costs O(metadata), not O(corpus), and co-located
// followers of the same bootstrap share one page-cached copy. mapped
// reports whether the mapped path was taken (false = the streaming
// fallback loaded it).
func LoadBootstrapMapped(path string, db *relational.Database) (*search.Engine, uint64, bool, error) {
	engine, mapped, err := snapshot.LoadEngineFile(path, db)
	if err != nil {
		return nil, 0, false, fmt.Errorf("cluster: loading bootstrap %s: %w", path, err)
	}
	pos, err := bootstrapSeq(path)
	if err != nil {
		return nil, 0, false, err
	}
	return engine, pos, mapped, nil
}

// bootstrapSeq reads the WAL position from the "<path>.seq" sidecar.
func bootstrapSeq(path string) (uint64, error) {
	raw, err := os.ReadFile(path + ".seq")
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("cluster: reading bootstrap sidecar %s.seq: %w", path, err)
	}
	pos, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: parsing bootstrap sidecar %s.seq: %w", path, err)
	}
	return pos, nil
}
