package cluster

import (
	"context"
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
)

// Test fixtures shared by the coordinator, WAL, and follower tests: a
// deterministic IMDb universe, identically-derived replica engines over
// it, and a slice of workload queries.

func testUniverse(t *testing.T) *imdb.Universe {
	t.Helper()
	return imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 60, Movies: 40, CastPerMovie: 4})
}

// newReplicaEngine derives a fresh catalog over u and builds an engine
// on it. Derivation is deterministic, so every replica built from the
// same universe starts bitwise identical — the cluster's core premise.
func newReplicaEngine(t *testing.T, u *imdb.Universe) *search.Engine {
	t.Helper()
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// workloadQueries returns up to n non-empty queries from the generated
// query log.
func workloadQueries(t *testing.T, u *imdb.Universe, n int) []string {
	t.Helper()
	cfg := querylog.DefaultGenConfig()
	cfg.Volume = 200
	log := querylog.Generate(u, cfg)
	var out []string
	for _, e := range log.Entries {
		if strings.TrimSpace(e.Query) == "" {
			continue
		}
		out = append(out, e.Query)
		if len(out) == n {
			break
		}
	}
	if len(out) < 5 {
		t.Fatalf("workload too small: %d queries", len(out))
	}
	return out
}

// assertEngineParity fails unless a and b return identical results
// (IDs, scores, totals) for every query at a few page shapes. It is the
// replication tests' state-equality check: two engines that rank a
// workload identically — scores included — hold the same index and the
// same utilities.
func assertEngineParity(t *testing.T, a, b *search.Engine, queries []string) {
	t.Helper()
	ctx := context.Background()
	for _, q := range queries {
		for _, req := range []search.Request{
			{Query: q, K: 5},
			{Query: q, K: 3, Offset: 2},
			{Query: q}, // K <= 0: all results
		} {
			ra, errA := a.Search(ctx, req)
			rb, errB := b.Search(ctx, req)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%q: errors diverge: %v vs %v", q, errA, errB)
			}
			if errA != nil {
				continue
			}
			if ra.Total != rb.Total || len(ra.Results) != len(rb.Results) {
				t.Fatalf("%q k=%d: total/len %d/%d vs %d/%d",
					q, req.K, ra.Total, len(ra.Results), rb.Total, len(rb.Results))
			}
			for i := range ra.Results {
				if ra.Results[i].Instance.ID() != rb.Results[i].Instance.ID() ||
					ra.Results[i].Score != rb.Results[i].Score {
					t.Fatalf("%q k=%d result %d: %q %v vs %q %v", q, req.K, i,
						ra.Results[i].Instance.ID(), ra.Results[i].Score,
						rb.Results[i].Instance.ID(), rb.Results[i].Score)
				}
			}
		}
	}
}
