package cluster

import (
	"context"

	"qunits/internal/ir"
	"qunits/internal/search"
)

// Partition is one scoring node of a partitioned deployment: it scores
// pages and counts candidates over its shard subset and reports its
// health. The two implementations are LocalPartition (in-process, the
// same shards a single node scores) and Client (a remote node over the
// /v1/partition RPC); the coordinator is written against this interface
// and cannot tell them apart.
type Partition interface {
	// Search scores one page against the partition's shard subset.
	Search(ctx context.Context, req PageRequest) (*PageReply, error)
	// Batch scores every item in one engine pass; items align
	// positionally and carry per-item errors.
	Batch(ctx context.Context, req BatchRequest) (*BatchReply, error)
	// Stats reports the node's selector, occupancy, and log position.
	Stats(ctx context.Context) (*PartitionStats, error)
}

// LocalPartition scores a shard subset of an in-process engine. It is
// the degenerate (no-network) partition: a coordinator over N
// LocalPartitions of the same engine exercises the full scatter-gather
// merge against in-process state, which is how the coordinator's merge
// invariants are unit-tested.
type LocalPartition struct {
	// Engine is the full engine this node holds.
	Engine *search.Engine
	// Set is the shard subset this node scores.
	Set ir.ShardSet
	// Seq reports the node's WAL position for Stats; nil means 0.
	Seq func() uint64
	// AcceptsMutations marks the primary in Stats.
	AcceptsMutations bool
}

// Search implements Partition.
func (p *LocalPartition) Search(ctx context.Context, req PageRequest) (*PageReply, error) {
	resp, err := p.Engine.PartitionSearch(ctx, toEngineRequest(req), p.Set)
	if err != nil {
		return nil, err
	}
	return &PageReply{
		Total:   resp.Total,
		Results: ResultsToWire(resp.Results),
		Explain: ExplainToWire(resp.Explain),
	}, nil
}

// Batch implements Partition.
func (p *LocalPartition) Batch(ctx context.Context, req BatchRequest) (*BatchReply, error) {
	reqs := make([]search.Request, len(req.Items))
	for i, item := range req.Items {
		reqs[i] = ItemToRequest(item)
	}
	results, err := p.Engine.PartitionBatchSearch(ctx, reqs, p.Set)
	if err != nil {
		return nil, err
	}
	reply := &BatchReply{Items: make([]BatchItem, len(results))}
	for i, r := range results {
		if r.Err != nil {
			reply.Items[i] = BatchItem{Error: &WireError{Code: ErrorCode(r.Err), Message: r.Err.Error()}}
			continue
		}
		reply.Items[i] = BatchItem{Reply: &PageReply{
			Total:   r.Response.Total,
			Results: ResultsToWire(r.Response.Results),
			Explain: ExplainToWire(r.Response.Explain),
		}}
	}
	return reply, nil
}

// Stats implements Partition.
func (p *LocalPartition) Stats(ctx context.Context) (*PartitionStats, error) {
	ix := p.Engine.IndexStats()
	var seq uint64
	if p.Seq != nil {
		seq = p.Seq()
	}
	return &PartitionStats{
		Proto:            ProtoVersion,
		Index:            p.Set.Index,
		Count:            p.Set.Count,
		Instances:        p.Engine.InstanceCount(),
		Slots:            ix.Slots,
		Tombstones:       ix.Tombstones,
		WALSeq:           seq,
		AcceptsMutations: p.AcceptsMutations,
	}, nil
}

// toEngineRequest converts a wire page request to the engine form.
func toEngineRequest(req PageRequest) search.Request {
	out := search.Request{Query: req.Query, K: req.K, Offset: req.Offset, Explain: req.Explain}
	if req.Filter != nil {
		out.Filter = search.Filter{Definitions: req.Filter.Definitions, AnchorTypes: req.Filter.AnchorTypes}
	}
	return out
}
