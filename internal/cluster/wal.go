package cluster

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The mutation WAL is the replication stream between a primary and its
// followers: every state-changing engine operation — including
// compaction, which reassigns documents across shards and therefore
// changes what a shard subset scores — is appended as one record, and a
// follower that replays the records in sequence through the same Engine
// methods converges on the primary's exact state.
//
// Format: newline-delimited text, one record per line,
//
//	<crc32c-hex> <json>\n
//
// where the CRC (Castagnoli, 8 lower-case hex digits) covers the JSON
// bytes. A final line without its newline is a torn tail — an append
// cut short — and is not a record yet: readers stop before it and keep
// their offset so a later read picks it up once complete, and a writer
// reopening the log truncates it. A complete line that fails its CRC or
// does not parse is corruption and is an error, never silently skipped.

// Op values of Record.Op.
const (
	OpAdd      = "add"
	OpRemove   = "remove"
	OpFeedback = "feedback"
	OpCompact  = "compact"
)

// Record is one logged mutation. Seq starts at 1 and increments by one
// per record with no gaps, which is what lets a follower detect both
// duplicates (seq <= applied: skip) and holes (seq > applied+1: error)
// after a restart.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// Def and Params identify the instance for OpAdd; replay
	// re-instantiates it through the catalog, which is deterministic
	// given (definition, params, database).
	Def    string            `json:"def,omitempty"`
	Params map[string]string `json:"params,omitempty"`
	// ID addresses the instance for OpRemove and OpFeedback.
	ID string `json:"id,omitempty"`
	// Positive and Rate carry the OpFeedback signal. Rate is always the
	// resolved rate (the engine's 0-means-0.2 defaulting happens before
	// logging), so replay is exact.
	Positive bool    `json:"positive,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
}

// CorruptRecordError reports a complete WAL line that fails validation.
// A torn tail is NOT corruption; this error means bytes in the middle
// of the log are wrong, which no amount of waiting will fix.
type CorruptRecordError struct {
	// Path is the log file.
	Path string
	// Offset is the byte offset of the bad line.
	Offset int64
	// Reason describes the failure.
	Reason string
}

// Error implements error.
func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("cluster: corrupt wal record in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is the append side of a mutation log. It implements
// search.MutationLog, so installing it on a primary engine with
// SetMutationLog is all it takes to start replicating: the engine calls
// the Append hooks inside its own serializing locks, in apply order.
// Appends from different engine locks (feedback under the instance
// lock, compaction under the index lock) can still arrive concurrently,
// so the WAL serializes internally.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
}

// OpenWAL opens or creates the log at path for appending. An existing
// log is scanned first: its records are validated, the last sequence
// number is recovered, and a torn tail from an interrupted append is
// truncated. Corruption anywhere else is an error — appending after a
// hole would strand every follower.
func OpenWAL(path string) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: reading wal %s: %w", path, err)
	}
	recs, consumed, err := scanRecords(path, data, 0)
	if err != nil {
		return nil, err
	}
	var seq uint64
	if len(recs) > 0 {
		seq = recs[len(recs)-1].Seq
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening wal %s: %w", path, err)
	}
	if err := f.Truncate(consumed); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: truncating torn wal tail in %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: seeking wal %s: %w", path, err)
	}
	return &WAL{f: f, path: path, seq: seq}, nil
}

// LastSeq returns the sequence number of the last appended record (0
// for an empty log). On a primary this is the position followers chase.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// AppendAdd implements search.MutationLog.
func (w *WAL) AppendAdd(defName string, params map[string]string) error {
	return w.append(Record{Op: OpAdd, Def: defName, Params: params})
}

// AppendRemove implements search.MutationLog.
func (w *WAL) AppendRemove(id string) error {
	return w.append(Record{Op: OpRemove, ID: id})
}

// AppendFeedback implements search.MutationLog.
func (w *WAL) AppendFeedback(instanceID string, positive bool, rate float64) error {
	return w.append(Record{Op: OpFeedback, ID: instanceID, Positive: positive, Rate: rate})
}

// AppendCompact implements search.MutationLog.
func (w *WAL) AppendCompact() error {
	return w.append(Record{Op: OpCompact})
}

// append stamps the next sequence number and writes one record as a
// single Write call, so concurrent appends never interleave bytes.
func (w *WAL) append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.Seq = w.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encoding wal record: %w", err)
	}
	line := make([]byte, 0, 8+1+len(payload)+1)
	line = appendCRC(line, payload)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("cluster: appending wal record %d: %w", rec.Seq, err)
	}
	w.seq = rec.Seq
	return nil
}

// appendCRC appends the 8-hex-digit Castagnoli CRC of payload.
func appendCRC(dst, payload []byte) []byte {
	var sum [4]byte
	crc := crc32.Checksum(payload, crcTable)
	sum[0] = byte(crc >> 24)
	sum[1] = byte(crc >> 16)
	sum[2] = byte(crc >> 8)
	sum[3] = byte(crc)
	return hex.AppendEncode(dst, sum[:])
}

// scanRecords parses every complete line of data (whose first byte sits
// at baseOffset in the file) and returns the records plus the file
// offset just past the last complete line. Trailing bytes without a
// newline are a torn tail and are simply not consumed. Sequence numbers
// must increase by exactly one between adjacent records — the writer
// produces nothing else, so anything else is corruption.
func scanRecords(path string, data []byte, baseOffset int64) ([]Record, int64, error) {
	return scanRecordsFrom(path, data, baseOffset, 0, false)
}

// scanRecordsFrom is scanRecords continuing an earlier scan: when
// havePrev is set, the first record must carry prevSeq+1, extending the
// exactly-once sequence check across suffix reads of the same log.
func scanRecordsFrom(path string, data []byte, baseOffset int64, prevSeq uint64, havePrev bool) ([]Record, int64, error) {
	var recs []Record
	offset := baseOffset
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: not a record yet
		}
		line := data[:nl]
		rec, err := parseLine(line)
		if err != nil {
			return nil, 0, &CorruptRecordError{Path: path, Offset: offset, Reason: err.Error()}
		}
		if havePrev && rec.Seq != prevSeq+1 {
			return nil, 0, &CorruptRecordError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("sequence %d follows %d", rec.Seq, prevSeq)}
		}
		prevSeq, havePrev = rec.Seq, true
		recs = append(recs, rec)
		data = data[nl+1:]
		offset += int64(nl) + 1
	}
	return recs, offset, nil
}

// parseLine validates and decodes one complete record line.
func parseLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("malformed line %.40q", line)
	}
	want, err := hex.DecodeString(string(line[:8]))
	if err != nil {
		return rec, fmt.Errorf("malformed checksum %.8q", line)
	}
	payload := line[9:]
	crc := crc32.Checksum(payload, crcTable)
	got := []byte{byte(crc >> 24), byte(crc >> 16), byte(crc >> 8), byte(crc)}
	if !bytes.Equal(want, got) {
		return rec, fmt.Errorf("checksum mismatch (stored %s, computed %x)", line[:8], got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("decoding record: %v", err)
	}
	if rec.Seq == 0 {
		return rec, fmt.Errorf("record missing sequence number")
	}
	switch rec.Op {
	case OpAdd, OpRemove, OpFeedback, OpCompact:
	default:
		return rec, fmt.Errorf("unknown op %q", rec.Op)
	}
	return rec, nil
}

// WALReader tails a mutation log. It remembers the byte offset past the
// last complete record it returned, so repeated ReadAvailable calls
// stream new records as the primary appends them; a torn tail is left
// unconsumed for the next call. Each poll reads only the suffix past
// that offset — O(new bytes), not O(log) — so a follower tailing a
// large WAL does delta-sized I/O per poll. The reader opens the file
// per call, which also means the log may not exist yet (an idle
// primary): that reads as zero records.
type WALReader struct {
	path   string
	offset int64

	// prevSeq/havePrev carry the last returned record's sequence number
	// across polls, so the exactly-one-increment corruption check spans
	// suffix reads just as it spanned the whole-file reads this reader
	// used to do.
	prevSeq  uint64
	havePrev bool

	// bytesRead accumulates the suffix bytes fetched across all polls —
	// instrumentation for the O(delta) regression test.
	bytesRead int64
}

// NewWALReader returns a reader positioned at the start of the log.
func NewWALReader(path string) *WALReader {
	return &WALReader{path: path}
}

// Offset reports the reader's position: the byte offset just past the
// last complete record returned so far.
func (r *WALReader) Offset() int64 { return r.offset }

// BytesRead reports the total file bytes fetched over the reader's
// lifetime. A caught-up reader polling an idle log fetches nothing;
// a poll that finds new records fetches only those records' bytes
// (plus any torn tail, re-fetched once complete).
func (r *WALReader) BytesRead() int64 { return r.bytesRead }

// ReadAvailable returns every complete record appended since the last
// call. It never blocks waiting for more; an empty slice means the
// reader is caught up.
func (r *WALReader) ReadAvailable() ([]Record, error) {
	f, err := os.Open(r.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cluster: reading wal %s: %w", r.path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("cluster: reading wal %s: %w", r.path, err)
	}
	size := fi.Size()
	if r.offset > size {
		return nil, &CorruptRecordError{Path: r.path, Offset: r.offset,
			Reason: fmt.Sprintf("log shrank below reader offset (length %d)", size)}
	}
	if size == r.offset {
		return nil, nil // caught up: no bytes to fetch
	}
	data := make([]byte, size-r.offset)
	if n, err := f.ReadAt(data, r.offset); err != nil {
		if err != io.EOF {
			return nil, fmt.Errorf("cluster: reading wal %s: %w", r.path, err)
		}
		// The file shrank between Stat and ReadAt (not a writer we
		// recognize, but not worth failing over): scan what arrived.
		data = data[:n]
	}
	r.bytesRead += int64(len(data))
	recs, consumed, err := scanRecordsFrom(r.path, data, r.offset, r.prevSeq, r.havePrev)
	if err != nil {
		return nil, err
	}
	r.offset = consumed
	if len(recs) > 0 {
		r.prevSeq, r.havePrev = recs[len(recs)-1].Seq, true
	}
	return recs, nil
}
