package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qunits/internal/search"
)

// encodeLine builds one valid wire line for rec, without the newline.
func encodeLine(t *testing.T, rec Record) []byte {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	line := appendCRC(nil, payload)
	line = append(line, ' ')
	return append(line, payload...)
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTail: a final line without its newline is not a record
// yet. The reader must return everything before it, hold its offset,
// and pick the record up once the newline lands; a writer reopening the
// log must truncate it and append cleanly after.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAdd("movie-cast", map[string]string{"x": "star wars"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRemove("some-id"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewWALReader(path)
	recs, err := r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	cleanOffset := r.Offset()

	// A torn append: a valid record missing only its newline.
	torn := encodeLine(t, Record{Seq: 3, Op: OpFeedback, ID: "some-id", Positive: true, Rate: 0.2})
	appendBytes(t, path, torn)
	recs, err = r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("torn tail yielded %d records", len(recs))
	}
	if r.Offset() != cleanOffset {
		t.Fatalf("reader consumed the torn tail: offset %d, want %d", r.Offset(), cleanOffset)
	}

	// The append completes: now it is a record.
	appendBytes(t, path, []byte("\n"))
	recs, err = r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 || recs[0].Op != OpFeedback {
		t.Fatalf("completed tail read as %+v", recs)
	}

	// A torn append of garbage, then a writer restart: OpenWAL truncates
	// the tail, recovers the sequence, and appends record 4 cleanly.
	appendBytes(t, path, []byte("deadbeef {\"seq\":4,\"op\":"))
	w, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != 3 {
		t.Fatalf("recovered seq %d, want 3", got)
	}
	if err := w.AppendCompact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := NewWALReader(path).ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 || all[3].Seq != 4 || all[3].Op != OpCompact {
		t.Fatalf("log after truncate+append: %+v", all)
	}
}

// TestWALCorruption: a complete line with bad bytes is an error — for
// the reader and for a writer reopening the log — never a silent skip.
func TestWALCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRemove("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRemove("b"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01 // flip one bit mid-log
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var corrupt *CorruptRecordError
	if _, err := NewWALReader(path).ReadAvailable(); !errors.As(err, &corrupt) {
		t.Fatalf("reader error %v, want *CorruptRecordError", err)
	}
	if _, err := OpenWAL(path); !errors.As(err, &corrupt) {
		t.Fatalf("writer error %v, want *CorruptRecordError", err)
	}
}

// TestFollowerGapDetection: a log that starts past the follower's
// applied position (snapshot paired with the wrong/rotated log) must
// fail loudly, not replay from the wrong point.
func TestFollowerGapDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.AppendRemove(fmt.Sprintf("id-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the first record: the log now starts at seq 2.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.log")
	rest := data[strings.IndexByte(string(data), '\n')+1:]
	if err := os.WriteFile(cut, rest, 0o644); err != nil {
		t.Fatal(err)
	}
	u := testUniverse(t)
	fol := NewFollower(newReplicaEngine(t, u), NewWALReader(cut), 0)
	if _, err := fol.CatchUp(); err == nil || !strings.Contains(err.Error(), "wal gap") {
		t.Fatalf("catch-up error %v, want a wal gap", err)
	}
}

// TestFollowerIdempotentRestart is the duplicate-delivery test: a
// follower that restarts with a reader rewound to the start of the log
// (but its applied position intact) must skip every already-applied
// record. Feedback is a multiplicative update, so any double-apply
// would shift scores and break the parity check.
func TestFollowerIdempotentRestart(t *testing.T) {
	u := testUniverse(t)
	primary := newReplicaEngine(t, u)
	replica := newReplicaEngine(t, u)
	queries := workloadQueries(t, u, 15)

	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	primary.SetMutationLog(w)

	// A workload with every op: add, feedback (twice on the same
	// instance), remove, compact.
	added, err := primary.AddAnchorInstance("movie-cast", "zz wal movie")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := primary.Search(context.Background(), search.Request{Query: queries[0], K: 1})
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("no feedback target: %v", err)
	}
	target := resp.Results[0].Instance.ID()
	if _, err := primary.ApplyFeedback(target, true, search.Feedback{}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.ApplyFeedback(target, true, search.Feedback{}); err != nil {
		t.Fatal(err)
	}
	if err := primary.RemoveInstance(added.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Compact(); err != nil {
		t.Fatal(err)
	}

	fol := NewFollower(replica, NewWALReader(path), 0)
	n, err := fol.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("applied %d records, want 5", n)
	}
	assertEngineParity(t, primary, replica, queries)

	// Restart: same engine, fresh reader at offset 0, applied position
	// carried over. Every record is redelivered; none may re-apply.
	restarted := NewFollower(replica, NewWALReader(path), fol.AppliedSeq())
	if n, err := restarted.CatchUp(); err != nil || n != 0 {
		t.Fatalf("restart applied %d records (err %v), want 0", n, err)
	}
	assertEngineParity(t, primary, replica, queries)

	// The restarted follower still tracks new mutations.
	if _, err := primary.ApplyFeedback(target, false, search.Feedback{}); err != nil {
		t.Fatal(err)
	}
	if n, err := restarted.CatchUp(); err != nil || n != 1 {
		t.Fatalf("post-restart applied %d records (err %v), want 1", n, err)
	}
	assertEngineParity(t, primary, replica, queries)
}

// TestFollowerBootstrapRoundTrip: SaveBootstrap captures engine state
// and log position atomically; a follower restored from it resumes the
// log at exactly the first record the snapshot lacks.
func TestFollowerBootstrapRoundTrip(t *testing.T) {
	u := testUniverse(t)
	primary := newReplicaEngine(t, u)
	queries := workloadQueries(t, u, 10)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	primary.SetMutationLog(w)
	resp, err := primary.Search(context.Background(), search.Request{Query: queries[0], K: 1})
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("no feedback target: %v", err)
	}
	target := resp.Results[0].Instance.ID()
	if _, err := primary.ApplyFeedback(target, true, search.Feedback{}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint the primary itself: snapshot at seq 1.
	snap := filepath.Join(dir, "boot.qsnp")
	if err := SaveBootstrap(snap, primary, w.LastSeq); err != nil {
		t.Fatal(err)
	}

	// More mutations after the checkpoint.
	if _, err := primary.ApplyFeedback(target, true, search.Feedback{}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Compact(); err != nil {
		t.Fatal(err)
	}

	replica, applied, err := LoadBootstrap(snap, u.DB)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("bootstrap position %d, want 1", applied)
	}
	fol := NewFollower(replica, NewWALReader(walPath), applied)
	// The reader starts at byte 0 and redelivers record 1; only records
	// 2 and 3 may apply on top of the snapshot.
	if n, err := fol.CatchUp(); err != nil || n != 2 {
		t.Fatalf("applied %d records (err %v), want 2", n, err)
	}
	assertEngineParity(t, primary, replica, queries)
}

// TestFollowerReplayOrderingWithConcurrentCompaction races instance
// churn, feedback, and explicit compaction passes on a logged primary,
// then replays the log serially into a replica. The WAL appends inside
// the engine's own serializing locks, so whatever interleaving the race
// produced, the log order IS the apply order — the replica must land on
// the primary's exact state, physical index layout included.
func TestFollowerReplayOrderingWithConcurrentCompaction(t *testing.T) {
	u := testUniverse(t)
	primary := newReplicaEngine(t, u)
	replica := newReplicaEngine(t, u)
	queries := workloadQueries(t, u, 15)

	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	primary.SetMutationLog(w)
	resp, err := primary.Search(context.Background(), search.Request{Query: queries[0], K: 1})
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("no feedback target: %v", err)
	}
	target := resp.Results[0].Instance.ID()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // churn: adds, half removed again → tombstones
		defer wg.Done()
		for i := 0; i < 20; i++ {
			inst, err := primary.AddAnchorInstance("movie-cast", fmt.Sprintf("zz churn movie %d", i))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := primary.RemoveInstance(inst.ID()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // feedback stream
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if _, err := primary.ApplyFeedback(target, i%3 != 0, search.Feedback{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // compaction passes racing both
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := primary.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	fol := NewFollower(replica, NewWALReader(path), 0)
	n, err := fol.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if want := 20 + 10 + 15 + 5; n != want {
		t.Fatalf("applied %d records, want %d", n, want)
	}
	if fol.AppliedSeq() != w.LastSeq() {
		t.Fatalf("follower at %d, primary log at %d", fol.AppliedSeq(), w.LastSeq())
	}
	// Same physical occupancy, not just the same search results: replay
	// order must reproduce the primary's slot/tombstone layout.
	if p, r := primary.IndexStats(), replica.IndexStats(); p != r {
		t.Fatalf("index stats diverge: primary %+v, replica %+v", p, r)
	}
	assertEngineParity(t, primary, replica, queries)
}

// TestWALReaderSuffixRead: polling an already-consumed log must cost
// O(delta) — only the bytes appended since the last poll are fetched,
// and a caught-up poll fetches nothing. This is the regression test for
// the reader re-reading the whole file on every poll, which turned
// follower lag linear in log size.
func TestWALReaderSuffixRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 500; i++ {
		if err := w.AppendFeedback(fmt.Sprintf("movie-cast:bulk %03d", i), true, 0); err != nil {
			t.Fatal(err)
		}
	}

	r := NewWALReader(path)
	recs, err := r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("initial read returned %d records, want 500", len(recs))
	}
	bulk := r.BytesRead()
	if bulk == 0 {
		t.Fatal("BytesRead is zero after consuming the log")
	}

	// One small appended record: the next poll must fetch just it.
	if err := w.AppendRemove("movie-cast:bulk 007"); err != nil {
		t.Fatal(err)
	}
	recs, err = r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != OpRemove {
		t.Fatalf("delta read returned %+v, want the single remove", recs)
	}
	delta := r.BytesRead() - bulk
	if delta <= 0 || delta > 256 {
		t.Fatalf("delta poll read %d bytes; want just the appended record (<= 256), not a rescan of the %d-byte prefix", delta, bulk)
	}

	// Caught up: a poll with nothing new must not touch the file body.
	recs, err = r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("caught-up poll returned %d records, want 0", len(recs))
	}
	if got := r.BytesRead(); got != bulk+delta {
		t.Fatalf("caught-up poll read %d bytes, want 0", got-bulk-delta)
	}

	// The suffix reads must not have broken sequence continuity: the
	// next record after a delta poll still chains off the last seq.
	if err := w.AppendCompact(); err != nil {
		t.Fatal(err)
	}
	recs, err = r.ReadAvailable()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 502 {
		t.Fatalf("post-delta record = %+v, want seq 502", recs)
	}
}
