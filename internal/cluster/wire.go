// Package cluster turns the single-process qunit engine into a small
// distributed system: N partition servers each score a disjoint subset
// of the index shards, a coordinator scatter-gathers their pages, and
// followers converge on the primary's exact engine state by replaying
// its mutation WAL from a snapshot.
//
// # Why partitions are replicas
//
// BM25-family scores depend on collection-wide statistics (document
// count, document frequencies, average length). Splitting the corpus
// across servers would give each node local statistics and change every
// score. Instead, every partition node holds the FULL engine — built
// from the same snapshot and kept identical via the WAL — and scores
// only the shards s with s % Count == Index (ir.ShardSet). Per-document
// scores are then bitwise identical to a single node's; the subsets are
// disjoint and cover the index, so per-partition candidate counts sum
// to the exact Total and the global top k is contained in the union of
// per-partition top k's. The coordinator's k-way merge under the
// engine's (score desc, ID asc) order therefore reproduces single-node
// responses byte for byte — the property the parity harness in
// internal/server enforces on the wire.
//
// # The partition RPC
//
// Partitions speak a small versioned HTTP/JSON protocol under
// /v1/partition/* (served by internal/server in partition mode):
//
//	POST /v1/partition/search  PageRequest  -> PageReply
//	POST /v1/partition/batch   BatchRequest -> BatchReply
//	GET  /v1/partition/stats                -> PartitionStats
//
// Errors reuse the public /v1 envelope {"error":{code,message}} with
// the same stable codes. Every request carries ProtoVersion; a
// partition rejects versions it does not speak, so mixed deployments
// fail loudly instead of merging subtly different pages.
package cluster

import (
	"fmt"

	"qunits/internal/search"
)

// ProtoVersion is the partition RPC protocol version this package
// speaks. Any incompatible change to the request/reply shapes or to the
// merge contract bumps it.
const ProtoVersion = 1

// snippetLen mirrors the /v1 snippet truncation; ResultToWire is the
// single conversion point (internal/server delegates to it), so the
// two surfaces cannot drift.
const snippetLen = 200

// Result is one ranked instance on the partition wire — field-for-field
// the /v1 result shape, so converting between the two is lossless and
// the coordinator can merge partition pages straight into /v1 replies.
type Result struct {
	ID           string  `json:"id"`
	Label        string  `json:"label"`
	Definition   string  `json:"definition"`
	Score        float64 `json:"score"`
	IRScore      float64 `json:"ir_score"`
	TypeAffinity float64 `json:"type_affinity"`
	Snippet      string  `json:"snippet,omitempty"`
	Utility      float64 `json:"utility"`
	TypeFactor   float64 `json:"type_factor"`
	UtilityBlend float64 `json:"utility_blend"`
	AnchorBoost  float64 `json:"anchor_boost"`
}

// Segment, Affinity, and Explain mirror the /v1 explain payload.
type Segment struct {
	Text  string `json:"text"`
	Kind  string `json:"kind"`
	Type  string `json:"type,omitempty"`
	Table string `json:"table,omitempty"`
}

// Affinity is one definition's type-identification score.
type Affinity struct {
	Definition string  `json:"definition"`
	Affinity   float64 `json:"affinity"`
}

// Explain is the query-level diagnostic payload on the partition wire.
type Explain struct {
	Template   string     `json:"template"`
	Segments   []Segment  `json:"segments"`
	Affinities []Affinity `json:"affinities"`
}

// Filter mirrors search.Filter on the wire.
type Filter struct {
	Definitions []string `json:"definitions,omitempty"`
	AnchorTypes []string `json:"anchor_types,omitempty"`
}

// Selector names the shard subset a partition scores.
type Selector struct {
	// Index in [0, Count).
	Index int `json:"index"`
	// Count is the partition count of the deployment.
	Count int `json:"count"`
}

// PageRequest is the POST /v1/partition/search body: one search scored
// against the partition's shard subset. The coordinator sends Offset 0
// and K = client offset + client k (the per-partition prefix that
// provably contains the global page); Offset and K are still honored
// generally. K and Offset are NOT re-clamped partition-side — this is
// an internal API and the coordinator has already applied the public
// defaulting and limits.
type PageRequest struct {
	// Proto is the sender's ProtoVersion; mismatches are rejected.
	Proto int `json:"proto"`
	// Partition is the shard subset to score.
	Partition Selector `json:"partition"`
	Query     string   `json:"query"`
	K         int      `json:"k,omitempty"`
	Offset    int      `json:"offset,omitempty"`
	Filter    *Filter  `json:"filter,omitempty"`
	Explain   bool     `json:"explain,omitempty"`
}

// PageReply is the /v1/partition/search success body.
type PageReply struct {
	// Total is the exact candidate count within the shard subset.
	Total int `json:"total"`
	// Results is the subset's ranked page, (score desc, ID asc).
	Results []Result `json:"results"`
	// Explain is present when the request asked for it.
	Explain *Explain `json:"explain,omitempty"`
}

// BatchRequest is the POST /v1/partition/batch body: every item of one
// public batch, scored against one shard subset in a single engine
// pass (mirroring the public batch's one-lock guarantee per partition).
type BatchRequest struct {
	Proto     int        `json:"proto"`
	Partition Selector   `json:"partition"`
	Items     []PageItem `json:"items"`
}

// PageItem is one batched search (PageRequest minus proto/partition).
type PageItem struct {
	Query   string  `json:"query"`
	K       int     `json:"k,omitempty"`
	Offset  int     `json:"offset,omitempty"`
	Filter  *Filter `json:"filter,omitempty"`
	Explain bool    `json:"explain,omitempty"`
}

// BatchReply is the /v1/partition/batch success body; items align
// positionally with the request.
type BatchReply struct {
	Items []BatchItem `json:"items"`
}

// BatchItem carries exactly one of a reply or an error.
type BatchItem struct {
	Reply *PageReply `json:"reply,omitempty"`
	Error *WireError `json:"error,omitempty"`
}

// WireError is the {code,message} pair of the /v1 error envelope.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// PartitionStats is the GET /v1/partition/stats reply — the per-node
// health and progress the coordinator aggregates into GET /v1/cluster.
type PartitionStats struct {
	Proto int `json:"proto"`
	// Index and Count are the node's shard-subset selector.
	Index int `json:"index"`
	Count int `json:"count"`
	// Instances, Slots, and Tombstones are the node's engine occupancy.
	Instances  int `json:"instances"`
	Slots      int `json:"slots"`
	Tombstones int `json:"tombstones"`
	// WALSeq is the node's mutation-log position: last appended record
	// on a primary, last applied record on a follower. The coordinator
	// derives per-partition lag as max(WALSeq) - WALSeq.
	WALSeq uint64 `json:"wal_seq"`
	// AcceptsMutations is true on the primary (mutations flow through
	// its WAL) and false on followers.
	AcceptsMutations bool `json:"accepts_mutations"`
}

// RemoteError is an error a partition returned over the RPC. Error()
// is the partition's message VERBATIM — no "partition 2:" prefix —
// because the coordinator surfaces it on the public /v1 wire, where it
// must match the message a single-node engine would have produced byte
// for byte. Code and Status carry the envelope's stable code and the
// HTTP status for the server layer to map back.
type RemoteError struct {
	// Code is the stable /v1 error code from the envelope.
	Code string
	// Status is the HTTP status of the RPC response (0 when the error
	// came from a batch item, which carries no status).
	Status int
	// Message is the partition's error message.
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Message }

// UnavailableError reports a partition that could not be reached or
// answered outside the protocol (transport failure, bad proto, non-JSON
// body). A scatter-gather cannot serve a correct page with a subset
// missing, so the whole request fails with it.
type UnavailableError struct {
	// Partition is the unreachable partition's index.
	Partition int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("cluster: partition %d unavailable: %v", e.Partition, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *UnavailableError) Unwrap() error { return e.Err }

// ResultToWire converts one engine result to its wire form. This is THE
// conversion point for every surface (partition RPC, coordinator
// replies, and the public /v1 results built by internal/server), so a
// partitioned deployment cannot drift from single-node responses in
// snippet truncation or field choice.
func ResultToWire(r search.Result) Result {
	return Result{
		ID:           r.Instance.ID(),
		Label:        r.Instance.Label(),
		Definition:   r.Instance.Def.Name,
		Score:        r.Score,
		IRScore:      r.IRScore,
		TypeAffinity: r.TypeAffinity,
		Snippet:      truncateRunes(r.Instance.Rendered.Text, snippetLen),
		Utility:      r.Utility,
		TypeFactor:   r.TypeFactor,
		UtilityBlend: r.UtilityBlend,
		AnchorBoost:  r.AnchorBoost,
	}
}

// ResultsToWire converts a result slice (never nil: the wire shape is
// an empty array).
func ResultsToWire(rs []search.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = ResultToWire(r)
	}
	return out
}

// ExplainToWire converts the engine explain payload (nil passes
// through).
func ExplainToWire(ex *search.Explain) *Explain {
	if ex == nil {
		return nil
	}
	out := &Explain{Template: ex.Template}
	for _, seg := range ex.Segments {
		out.Segments = append(out.Segments, Segment(seg))
	}
	for _, a := range ex.Affinities {
		out.Affinities = append(out.Affinities, Affinity(a))
	}
	return out
}

// RequestToItem converts an engine request to its batch-item wire form.
func RequestToItem(req search.Request) PageItem {
	item := PageItem{Query: req.Query, K: req.K, Offset: req.Offset, Explain: req.Explain}
	if !req.Filter.IsZero() {
		item.Filter = &Filter{Definitions: req.Filter.Definitions, AnchorTypes: req.Filter.AnchorTypes}
	}
	return item
}

// ItemToRequest converts a wire item back to the engine form.
func ItemToRequest(item PageItem) search.Request {
	req := search.Request{Query: item.Query, K: item.K, Offset: item.Offset, Explain: item.Explain}
	if item.Filter != nil {
		req.Filter = search.Filter{Definitions: item.Filter.Definitions, AnchorTypes: item.Filter.AnchorTypes}
	}
	return req
}

// truncateRunes cuts s to at most max bytes without splitting a rune —
// the exact snippet rule of the public wire.
func truncateRunes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	for max > 0 && s[max]&0xC0 == 0x80 {
		max--
	}
	return s[:max]
}
