package core

import (
	"fmt"
	"sort"

	"qunits/internal/ir"
	"qunits/internal/relational"
	"qunits/internal/sqlview"
)

// Catalog is a flat collection of qunit definitions over one database —
// the paper's model of "the database … as a collection of independent
// qunits".
type Catalog struct {
	db     *relational.Database
	defs   []*Definition
	byName map[string]*Definition
}

// NewCatalog creates an empty catalog over the database.
func NewCatalog(db *relational.Database) *Catalog {
	return &Catalog{db: db, byName: make(map[string]*Definition)}
}

// DB returns the underlying database.
func (c *Catalog) DB() *relational.Database { return c.db }

// Add validates and adds a definition. Duplicate names are rejected.
func (c *Catalog) Add(d *Definition) error {
	if err := d.Validate(c.db); err != nil {
		return err
	}
	if _, dup := c.byName[d.Name]; dup {
		return fmt.Errorf("core: catalog already has definition %q", d.Name)
	}
	c.defs = append(c.defs, d)
	c.byName[d.Name] = d
	return nil
}

// MustAdd is Add that panics on error.
func (c *Catalog) MustAdd(d *Definition) {
	if err := c.Add(d); err != nil {
		panic(err)
	}
}

// Definitions returns the definitions in utility order (best first), ties
// broken by name.
func (c *Catalog) Definitions() []*Definition {
	out := append([]*Definition(nil), c.defs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Definition returns the named definition, or nil.
func (c *Catalog) Definition(name string) *Definition { return c.byName[name] }

// Len returns the number of definitions.
func (c *Catalog) Len() int { return len(c.defs) }

// NormalizeUtilities rescales all definition utilities to (0, 1] by
// dividing by the maximum. No-op on an empty catalog or all-zero
// utilities.
func (c *Catalog) NormalizeUtilities() {
	max := 0.0
	for _, d := range c.defs {
		if d.Utility > max {
			max = d.Utility
		}
	}
	if max == 0 {
		return
	}
	for _, d := range c.defs {
		d.Utility /= max
	}
}

// Instantiate applies a definition to the database with the given
// parameter bindings, deriving one instance. The main expression and
// every section are evaluated under the same bindings; their renderings
// concatenate and their provenance unions. Instances with empty results
// are still returned (the caller decides whether an empty qunit is
// meaningful); evaluation errors are not.
func (c *Catalog) Instantiate(d *Definition, params map[string]string) (*Instance, error) {
	seen := map[relational.TupleRef]bool{}
	var tuples []relational.TupleRef
	collect := func(rows []relational.JoinedRow) {
		for _, row := range rows {
			for _, ref := range row.Provenance {
				if !seen[ref] {
					seen[ref] = true
					tuples = append(tuples, ref)
				}
			}
		}
	}

	res, err := d.Base.Eval(c.db, params)
	if err != nil {
		return nil, fmt.Errorf("core: instantiating %q: %w", d.Name, err)
	}
	rendered := d.Conversion.Render(res.Schema, res.Rows, params)
	mainEmpty := len(res.Rows) == 0
	collect(res.Rows)

	for i, s := range d.Sections {
		sres, err := s.Base.Eval(c.db, params)
		if err != nil {
			return nil, fmt.Errorf("core: instantiating %q section %d: %w", d.Name, i, err)
		}
		if len(sres.Rows) == 0 {
			continue // empty aspects are simply absent from the instance
		}
		sr := s.Conversion.Render(sres.Schema, sres.Rows, params)
		rendered.XML += "\n" + sr.XML
		if rendered.Text != "" && sr.Text != "" {
			rendered.Text += " "
		}
		rendered.Text += sr.Text
		collect(sres.Rows)
	}
	// Context sections: ranking text only — no XML, no provenance.
	contextText := ""
	for i, s := range d.Context {
		cres, err := s.Base.Eval(c.db, params)
		if err != nil {
			return nil, fmt.Errorf("core: instantiating %q context %d: %w", d.Name, i, err)
		}
		if len(cres.Rows) == 0 {
			continue
		}
		cr := s.Conversion.Render(cres.Schema, cres.Rows, params)
		if contextText != "" && cr.Text != "" {
			contextText += " "
		}
		contextText += cr.Text
	}

	// A composite whose main expression found nothing is an instance of a
	// nonexistent anchor; report it as empty regardless of sections.
	if mainEmpty {
		tuples = nil
	}
	return &Instance{
		Def:         d,
		Params:      params,
		Rendered:    rendered,
		Tuples:      tuples,
		Utility:     d.Utility,
		ContextText: contextText,
	}, nil
}

// MaterializeAll derives every non-empty instance of a definition: one
// per distinct value of the anchor column. A parameterless definition
// yields a single instance. Values are deduplicated case-insensitively
// through the IR normalizer — "Batman" and "batman" parameterize the same
// qunit instance.
//
// Unlike Instantiate, which re-evaluates the view per anchor, bulk
// materialization evaluates each (base or section) expression once with
// the anchor bind removed and groups the joined rows by normalized anchor
// value — the classic view-maintenance trick that turns O(anchors × join)
// into O(join).
func (c *Catalog) MaterializeAll(d *Definition) ([]*Instance, error) {
	param, col, ok := d.AnchorParam()
	if !ok {
		inst, err := c.Instantiate(d, map[string]string{})
		if err != nil {
			return nil, err
		}
		return []*Instance{inst}, nil
	}

	main, err := c.groupedEval(d.Base, param, col)
	if err != nil {
		return nil, fmt.Errorf("core: materializing %q: %w", d.Name, err)
	}
	secs := make([]*groupedResult, len(d.Sections))
	for i, s := range d.Sections {
		// Sections without the parameter (static context) still group by
		// the anchor column when present; otherwise they render whole.
		sg, err := c.groupedEval(s.Base, param, col)
		if err != nil {
			return nil, fmt.Errorf("core: materializing %q section %d: %w", d.Name, i, err)
		}
		secs[i] = sg
	}
	ctxs := make([]*groupedResult, len(d.Context))
	for i, s := range d.Context {
		sg, err := c.groupedEval(s.Base, param, col)
		if err != nil {
			return nil, fmt.Errorf("core: materializing %q context %d: %w", d.Name, i, err)
		}
		ctxs[i] = sg
	}

	values := make([]string, 0, len(main.groups))
	for v := range main.groups {
		values = append(values, v)
	}
	sort.Strings(values)

	out := make([]*Instance, 0, len(values))
	for _, v := range values {
		params := map[string]string{param: v}
		rendered := d.Conversion.Render(main.schema, main.groups[v], params)
		seen := map[relational.TupleRef]bool{}
		var tuples []relational.TupleRef
		collect := func(rows []relational.JoinedRow) {
			for _, row := range rows {
				for _, ref := range row.Provenance {
					if !seen[ref] {
						seen[ref] = true
						tuples = append(tuples, ref)
					}
				}
			}
		}
		collect(main.groups[v])
		for i, sg := range secs {
			rows := sg.rowsFor(v)
			if len(rows) == 0 {
				continue
			}
			sr := d.Sections[i].Conversion.Render(sg.schema, rows, params)
			rendered.XML += "\n" + sr.XML
			if rendered.Text != "" && sr.Text != "" {
				rendered.Text += " "
			}
			rendered.Text += sr.Text
			collect(rows)
		}
		if len(tuples) == 0 {
			continue
		}
		contextText := ""
		for i, cg := range ctxs {
			rows := cg.rowsFor(v)
			if len(rows) == 0 {
				continue
			}
			cr := d.Context[i].Conversion.Render(cg.schema, rows, params)
			if contextText != "" && cr.Text != "" {
				contextText += " "
			}
			contextText += cr.Text
		}
		out = append(out, &Instance{
			Def:         d,
			Params:      params,
			Rendered:    rendered,
			Tuples:      tuples,
			Utility:     d.Utility,
			ContextText: contextText,
		})
	}
	return out, nil
}

// groupedResult is one view evaluated in bulk, with rows grouped by
// normalized anchor value. Views that do not expose the anchor column
// (static context sections) keep their rows ungrouped in all.
type groupedResult struct {
	schema  *relational.JoinedSchema
	groups  map[string][]relational.JoinedRow
	all     []relational.JoinedRow
	grouped bool
}

// rowsFor returns the rows belonging to one anchor value.
func (gr *groupedResult) rowsFor(v string) []relational.JoinedRow {
	if gr.grouped {
		return gr.groups[v]
	}
	return gr.all
}

// groupedEval evaluates the expression with the named parameter's bind
// removed and groups the result rows by the anchor column's normalized
// value.
func (c *Catalog) groupedEval(b *sqlview.BaseExpr, param string, col relational.QualifiedColumn) (*groupedResult, error) {
	unbound := *b
	unbound.Binds = nil
	for _, bd := range b.Binds {
		if bd.Param == param {
			continue
		}
		unbound.Binds = append(unbound.Binds, bd)
	}
	res, err := unbound.Eval(c.db, nil)
	if err != nil {
		return nil, err
	}
	ci, ok := res.Schema.ColumnIndex(col)
	if !ok {
		// No anchor column in the output: a static section shared by
		// every instance.
		return &groupedResult{schema: res.Schema, all: res.Rows}, nil
	}
	gr := &groupedResult{schema: res.Schema, groups: make(map[string][]relational.JoinedRow), grouped: true}
	for _, row := range res.Rows {
		key := ir.Normalize(row.Values[ci].Render())
		if key == "" {
			continue
		}
		gr.groups[key] = append(gr.groups[key], row)
	}
	return gr, nil
}

// MaterializeCatalog derives every instance of every definition, in
// definition-utility order. It is the bulk path engines use to build an
// IR index over the whole qunit collection.
func (c *Catalog) MaterializeCatalog() ([]*Instance, error) {
	var out []*Instance
	for _, d := range c.Definitions() {
		insts, err := c.MaterializeAll(d)
		if err != nil {
			return nil, err
		}
		out = append(out, insts...)
	}
	return out, nil
}
