package core

import (
	"encoding/json"
	"fmt"
	"io"

	"qunits/internal/relational"
	"qunits/internal/sqlview"
)

// The wire format round-trips definitions through their canonical source
// text: base expressions via BaseExpr.String, conversion expressions via
// Template.Source. A catalog written by one process is readable by any
// other holding a database with a compatible schema — the deployment
// story for expert-authored qunit sets ("the manual effort involved is
// likely to be only a small part of the total cost of database design").

type definitionJSON struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Base        string        `json:"base"`
	Conversion  string        `json:"conversion"`
	Utility     float64       `json:"utility"`
	Keywords    []string      `json:"keywords,omitempty"`
	Source      string        `json:"source,omitempty"`
	Sections    []sectionJSON `json:"sections,omitempty"`
	Context     []sectionJSON `json:"context,omitempty"`
}

type sectionJSON struct {
	Base       string `json:"base"`
	Conversion string `json:"conversion"`
}

type catalogJSON struct {
	Database    string           `json:"database"`
	Definitions []definitionJSON `json:"definitions"`
}

// Encode writes the catalog as JSON.
func (c *Catalog) Encode(w io.Writer) error {
	out := catalogJSON{Database: c.db.Name()}
	for _, d := range c.Definitions() {
		dj := definitionJSON{
			Name:        d.Name,
			Description: d.Description,
			Base:        d.Base.String(),
			Conversion:  d.Conversion.Source(),
			Utility:     d.Utility,
			Keywords:    d.Keywords,
			Source:      d.Source,
		}
		for _, s := range d.Sections {
			dj.Sections = append(dj.Sections, sectionJSON{
				Base:       s.Base.String(),
				Conversion: s.Conversion.Source(),
			})
		}
		for _, s := range d.Context {
			dj.Context = append(dj.Context, sectionJSON{
				Base:       s.Base.String(),
				Conversion: s.Conversion.Source(),
			})
		}
		out.Definitions = append(out.Definitions, dj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeCatalog reads a catalog written by Encode and validates every
// definition against the database.
func DecodeCatalog(db *relational.Database, r io.Reader) (*Catalog, error) {
	var in catalogJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding catalog: %w", err)
	}
	cat := NewCatalog(db)
	for _, dj := range in.Definitions {
		base, err := sqlview.ParseBase(dj.Base)
		if err != nil {
			return nil, fmt.Errorf("core: definition %q: %w", dj.Name, err)
		}
		conv, err := sqlview.ParseTemplate(dj.Conversion)
		if err != nil {
			return nil, fmt.Errorf("core: definition %q: %w", dj.Name, err)
		}
		d := &Definition{
			Name:        dj.Name,
			Description: dj.Description,
			Base:        base,
			Conversion:  conv,
			Utility:     dj.Utility,
			Keywords:    dj.Keywords,
			Source:      dj.Source,
		}
		parseSections := func(sjs []sectionJSON, what string) ([]Section, error) {
			var out []Section
			for i, sj := range sjs {
				sb, err := sqlview.ParseBase(sj.Base)
				if err != nil {
					return nil, fmt.Errorf("core: definition %q %s %d: %w", dj.Name, what, i, err)
				}
				sc, err := sqlview.ParseTemplate(sj.Conversion)
				if err != nil {
					return nil, fmt.Errorf("core: definition %q %s %d: %w", dj.Name, what, i, err)
				}
				out = append(out, Section{Base: sb, Conversion: sc})
			}
			return out, nil
		}
		if d.Sections, err = parseSections(dj.Sections, "section"); err != nil {
			return nil, err
		}
		if d.Context, err = parseSections(dj.Context, "context"); err != nil {
			return nil, err
		}
		if err := cat.Add(d); err != nil {
			return nil, err
		}
	}
	return cat, nil
}
