package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogEncodeDecodeRoundTrip(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	cat.MustAdd(castDef())
	cat.MustAdd(profileWithSections())

	var buf bytes.Buffer
	if err := cat.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "movie-cast") {
		t.Fatalf("encoded form missing definition: %s", buf.String()[:120])
	}

	decoded, err := DecodeCatalog(db, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != cat.Len() {
		t.Fatalf("decoded %d definitions, want %d", decoded.Len(), cat.Len())
	}
	for _, orig := range cat.Definitions() {
		got := decoded.Definition(orig.Name)
		if got == nil {
			t.Fatalf("lost definition %q", orig.Name)
		}
		if got.Base.String() != orig.Base.String() {
			t.Errorf("%s: base differs:\n%s\n%s", orig.Name, got.Base, orig.Base)
		}
		if got.Utility != orig.Utility {
			t.Errorf("%s: utility %v vs %v", orig.Name, got.Utility, orig.Utility)
		}
		if len(got.Sections) != len(orig.Sections) {
			t.Errorf("%s: sections %d vs %d", orig.Name, len(got.Sections), len(orig.Sections))
		}
	}

	// The decoded catalog must be functionally identical: same instances.
	origInsts, err := cat.MaterializeCatalog()
	if err != nil {
		t.Fatal(err)
	}
	decInsts, err := decoded.MaterializeCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(origInsts) != len(decInsts) {
		t.Fatalf("instances %d vs %d", len(origInsts), len(decInsts))
	}
	for i := range origInsts {
		if origInsts[i].ID() != decInsts[i].ID() {
			t.Fatalf("instance %d: %s vs %s", i, origInsts[i].ID(), decInsts[i].ID())
		}
		if origInsts[i].Rendered.Text != decInsts[i].Rendered.Text {
			t.Fatalf("instance %s text differs after round trip", origInsts[i].ID())
		}
	}
}

func TestDecodeCatalogRejectsGarbage(t *testing.T) {
	db := coreDB(t)
	if _, err := DecodeCatalog(db, strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON, invalid base expression.
	bad := `{"database":"t","definitions":[{"name":"x","base":"NOT SQL","conversion":"<a></a>","utility":1}]}`
	if _, err := DecodeCatalog(db, strings.NewReader(bad)); err == nil {
		t.Error("bad base expression accepted")
	}
	// Valid base, invalid template.
	bad = `{"database":"t","definitions":[{"name":"x","base":"SELECT * FROM movie","conversion":"<unclosed","utility":1}]}`
	if _, err := DecodeCatalog(db, strings.NewReader(bad)); err == nil {
		t.Error("bad template accepted")
	}
	// References a table the database lacks: validation must fire.
	bad = `{"database":"t","definitions":[{"name":"x","base":"SELECT * FROM nosuch","conversion":"<a>b</a>","utility":1}]}`
	if _, err := DecodeCatalog(db, strings.NewReader(bad)); err == nil {
		t.Error("schema-incompatible catalog accepted")
	}
}
