package core

import (
	"strings"
	"testing"

	"qunits/internal/sqlview"
)

func castDefWithContext() *Definition {
	d := castDef()
	d.Context = []Section{{
		Base:       sqlview.MustParseBase(`SELECT * FROM movie WHERE movie.title = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<ctx>about the film $movie.title</ctx>`),
	}}
	return d
}

func TestContextSectionsRankOnly(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := castDefWithContext()
	cat.MustAdd(d)
	inst, err := cat.Instantiate(d, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.ContextText, "about the film") {
		t.Errorf("ContextText = %q", inst.ContextText)
	}
	// Context is NOT part of the presentation.
	if strings.Contains(inst.Rendered.XML, "about the film") || strings.Contains(inst.Rendered.Text, "about the film") {
		t.Error("context leaked into the presented qunit")
	}
	// Context tuples are NOT provenance (cast instance has movie via the
	// base expression already; verify count unchanged vs. plain def).
	plain := castDef()
	plain.Name = "plain"
	cat.MustAdd(plain)
	pinst, err := cat.Instantiate(plain, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tuples) != len(pinst.Tuples) {
		t.Errorf("context changed provenance: %d vs %d", len(inst.Tuples), len(pinst.Tuples))
	}
}

func TestContextInBulkMaterialization(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := castDefWithContext()
	cat.MustAdd(d)
	insts, err := cat.MaterializeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("no instances")
	}
	for _, inst := range insts {
		if inst.ContextText == "" {
			t.Errorf("%s: empty context", inst.ID())
		}
		if strings.Contains(inst.Rendered.Text, "about the film") {
			t.Errorf("%s: context leaked into presentation", inst.ID())
		}
	}
}

func TestContextValidated(t *testing.T) {
	db := coreDB(t)
	d := castDefWithContext()
	d.Context[0].Base = sqlview.MustParseBase(`SELECT * FROM nosuch WHERE nosuch.x = "$x"`)
	if d.Validate(db) == nil {
		t.Error("bad context section accepted")
	}
	d = castDefWithContext()
	d.Context[0].Base = sqlview.MustParseBase(`SELECT * FROM movie WHERE movie.title = "$other"`)
	if d.Validate(db) == nil {
		t.Error("context with foreign parameter accepted")
	}
}

func TestContextRoundTripsThroughCodec(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	cat.MustAdd(castDefWithContext())
	var buf strings.Builder
	if err := cat.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCatalog(db, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.Definition("movie-cast")
	if got == nil || len(got.Context) != 1 {
		t.Fatalf("context lost in round trip")
	}
	inst, err := decoded.Instantiate(got, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.ContextText, "about the film") {
		t.Errorf("decoded context broken: %q", inst.ContextText)
	}
}
