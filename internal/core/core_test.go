package core

import (
	"strings"
	"testing"

	"qunits/internal/relational"
	"qunits/internal/sqlview"
)

func coreDB(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase("t")
	db.MustCreateTable(relational.MustTableSchema("person", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("movie", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("cast", []relational.Column{
		{Name: "person_id", Kind: relational.KindInt},
		{Name: "movie_id", Kind: relational.KindInt},
		{Name: "role", Kind: relational.KindString, Searchable: true},
	}, "", []relational.ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))
	p := db.Table("person")
	p.MustInsert(relational.Row{relational.Int(1), relational.String("Mark Hamill")})
	p.MustInsert(relational.Row{relational.Int(2), relational.String("Carrie Fisher")})
	m := db.Table("movie")
	m.MustInsert(relational.Row{relational.Int(1), relational.String("Star Wars")})
	m.MustInsert(relational.Row{relational.Int(2), relational.String("Ocean's Eleven")})
	m.MustInsert(relational.Row{relational.Int(3), relational.String("Nobody Watched This")})
	c := db.Table("cast")
	c.MustInsert(relational.Row{relational.Int(1), relational.Int(1), relational.String("luke")})
	c.MustInsert(relational.Row{relational.Int(2), relational.Int(1), relational.String("leia")})
	c.MustInsert(relational.Row{relational.Int(1), relational.Int(2), relational.String("cameo")})
	return db
}

func castDef() *Definition {
	return &Definition{
		Name:        "movie-cast",
		Description: "the cast of a movie",
		Base: sqlview.MustParseBase(`SELECT * FROM person, cast, movie
WHERE cast.movie_id = movie.id AND cast.person_id = person.id AND movie.title = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<cast movie="$x">
<foreach:tuple><person>$person.name</person> as <role>$cast.role</role></foreach:tuple>
</cast>`),
		Utility:  0.8,
		Keywords: []string{"cast", "actors"},
		Source:   "expert",
	}
}

func TestDefinitionAnchorParam(t *testing.T) {
	d := castDef()
	param, col, ok := d.AnchorParam()
	if !ok || param != "x" || col.String() != "movie.title" {
		t.Fatalf("AnchorParam = %q, %v, %v", param, col, ok)
	}
	noParam := &Definition{
		Name:       "all-movies",
		Base:       sqlview.MustParseBase(`SELECT * FROM movie`),
		Conversion: sqlview.MustParseTemplate(`<movies><foreach:tuple><m>$movie.title</m></foreach:tuple></movies>`),
	}
	if _, _, ok := noParam.AnchorParam(); ok {
		t.Error("parameterless definition reported an anchor")
	}
}

func TestDefinitionValidate(t *testing.T) {
	db := coreDB(t)
	if err := castDef().Validate(db); err != nil {
		t.Fatalf("valid def rejected: %v", err)
	}
	bad := castDef()
	bad.Name = ""
	if bad.Validate(db) == nil {
		t.Error("empty name accepted")
	}
	bad = castDef()
	bad.Base = sqlview.MustParseBase(`SELECT * FROM nosuch`)
	if bad.Validate(db) == nil {
		t.Error("missing table accepted")
	}
	bad = castDef()
	bad.Base = sqlview.MustParseBase(`SELECT * FROM movie WHERE movie.nosuch = "$x"`)
	if bad.Validate(db) == nil {
		t.Error("missing column accepted")
	}
	bad = castDef()
	bad.Conversion = nil
	if bad.Validate(db) == nil {
		t.Error("nil conversion accepted")
	}
	bad = castDef()
	bad.Base = sqlview.MustParseBase(`SELECT * FROM movie WHERE movie.title = "$x" AND movie.id = "$y"`)
	if bad.Validate(db) == nil {
		t.Error("two parameters accepted")
	}
}

func TestCatalogAdd(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	if err := cat.Add(castDef()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(castDef()); err == nil {
		t.Error("duplicate name accepted")
	}
	if cat.Len() != 1 {
		t.Errorf("Len = %d", cat.Len())
	}
	if cat.Definition("movie-cast") == nil {
		t.Error("Definition lookup failed")
	}
	if cat.Definition("nope") != nil {
		t.Error("found nonexistent definition")
	}
	if cat.DB() != db {
		t.Error("DB accessor broken")
	}
}

func TestCatalogDefinitionsSortedByUtility(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	low := castDef()
	low.Name = "low"
	low.Utility = 0.1
	high := castDef()
	high.Name = "high"
	high.Utility = 0.9
	cat.MustAdd(low)
	cat.MustAdd(high)
	defs := cat.Definitions()
	if defs[0].Name != "high" || defs[1].Name != "low" {
		t.Errorf("order = %s, %s", defs[0].Name, defs[1].Name)
	}
}

func TestNormalizeUtilities(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	a := castDef()
	a.Name = "a"
	a.Utility = 4
	b := castDef()
	b.Name = "b"
	b.Utility = 2
	cat.MustAdd(a)
	cat.MustAdd(b)
	cat.NormalizeUtilities()
	if a.Utility != 1.0 || b.Utility != 0.5 {
		t.Errorf("utilities = %v, %v", a.Utility, b.Utility)
	}
	// All-zero catalog: no-op, no panic.
	empty := NewCatalog(db)
	empty.NormalizeUtilities()
}

func TestInstantiate(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := castDef()
	cat.MustAdd(d)
	inst, err := cat.Instantiate(d, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.Rendered.Text, "Mark Hamill") || !strings.Contains(inst.Rendered.Text, "Carrie Fisher") {
		t.Errorf("rendered text = %q", inst.Rendered.Text)
	}
	if !strings.Contains(inst.Rendered.XML, "<cast movie=\"star wars\">") {
		t.Errorf("rendered xml = %q", inst.Rendered.XML)
	}
	// Provenance: movie row, 2 cast rows, 2 person rows.
	if len(inst.Tuples) != 5 {
		t.Errorf("tuples = %v", inst.Tuples)
	}
	if inst.ID() != "movie-cast:star wars" {
		t.Errorf("ID = %q", inst.ID())
	}
	if inst.Label() != "star wars" {
		t.Errorf("Label = %q", inst.Label())
	}
	if inst.Utility != d.Utility {
		t.Error("instance utility not inherited")
	}
}

func TestInstantiateNormalizedParam(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := castDef()
	cat.MustAdd(d)
	// "oceans eleven" (apostrophe stripped) must match "Ocean's Eleven".
	inst, err := cat.Instantiate(d, map[string]string{"x": "oceans eleven"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tuples) == 0 {
		t.Error("normalized parameter failed to match punctuated title")
	}
}

func TestMaterializeAll(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := castDef()
	cat.MustAdd(d)
	insts, err := cat.MaterializeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	// Three movies, but "Nobody Watched This" has no cast → skipped.
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want 2", len(insts))
	}
	ids := map[string]bool{}
	for _, inst := range insts {
		ids[inst.ID()] = true
	}
	if !ids["movie-cast:star wars"] || !ids["movie-cast:oceans eleven"] {
		t.Errorf("ids = %v", ids)
	}
}

func TestMaterializeAllParameterless(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := &Definition{
		Name:       "all-movies",
		Base:       sqlview.MustParseBase(`SELECT * FROM movie`),
		Conversion: sqlview.MustParseTemplate(`<movies><foreach:tuple><m>$movie.title</m></foreach:tuple></movies>`),
		Utility:    0.2,
	}
	cat.MustAdd(d)
	insts, err := cat.MaterializeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("instances = %d", len(insts))
	}
	if !strings.Contains(insts[0].Rendered.Text, "Star Wars") {
		t.Errorf("text = %q", insts[0].Rendered.Text)
	}
	if insts[0].ID() != "all-movies" {
		t.Errorf("ID = %q", insts[0].ID())
	}
	if insts[0].Label() != "all-movies" {
		t.Errorf("Label = %q", insts[0].Label())
	}
}

func TestMaterializeCatalog(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	cat.MustAdd(castDef())
	profile := &Definition{
		Name:       "person-profile",
		Base:       sqlview.MustParseBase(`SELECT * FROM person WHERE person.name = "$x"`),
		Conversion: sqlview.MustParseTemplate(`<profile><name>$person.name</name></profile>`),
		Utility:    0.5,
	}
	cat.MustAdd(profile)
	insts, err := cat.MaterializeCatalog()
	if err != nil {
		t.Fatal(err)
	}
	// 2 cast instances + 2 person profiles.
	if len(insts) != 4 {
		t.Fatalf("instances = %d", len(insts))
	}
	// Utility order: movie-cast (0.8) instances come first.
	if insts[0].Def.Name != "movie-cast" {
		t.Errorf("first instance from %q", insts[0].Def.Name)
	}
}

func TestDefinitionStringAndTables(t *testing.T) {
	d := castDef()
	s := d.String()
	if !strings.Contains(s, "movie-cast") || !strings.Contains(s, "SELECT") {
		t.Errorf("String = %q", s)
	}
	tabs := d.Tables()
	if len(tabs) != 3 || tabs[0] != "cast" {
		t.Errorf("Tables = %v", tabs)
	}
}
