package core

import (
	"testing"

	"qunits/internal/sqlview"
)

func TestMustAddPanicsOnInvalid(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	bad := &Definition{
		Name:       "broken",
		Base:       sqlview.MustParseBase(`SELECT * FROM nosuch`),
		Conversion: sqlview.MustParseTemplate(`<a>b</a>`),
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on invalid definition")
		}
	}()
	cat.MustAdd(bad)
}

// A parameterless static section in a composite definition exercises the
// ungrouped rowsFor path during bulk materialization.
func TestStaticSectionSharedAcrossInstances(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := profileWithSections()
	d.Name = "with-static"
	d.Sections = append(d.Sections, Section{
		Base:       sqlview.MustParseBase(`SELECT * FROM person`),
		Conversion: sqlview.MustParseTemplate(`<all-people><foreach:tuple><p>$person.name</p></foreach:tuple></all-people>`),
	})
	cat.MustAdd(d)
	insts, err := cat.MaterializeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 {
		t.Fatalf("instances = %d", len(insts))
	}
	// Every instance carries the shared static block.
	for _, inst := range insts {
		if !contains(inst.Rendered.Text, "Mark Hamill") || !contains(inst.Rendered.Text, "Carrie Fisher") {
			t.Errorf("%s: static section missing: %q", inst.ID(), inst.Rendered.Text)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}
