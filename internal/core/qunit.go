// Package core implements the paper's central abstraction: the qunit.
//
// "A qunit is the basic, independent semantic unit of information in a
// database" (§2). A qunit *definition* pairs a base expression (a view
// over the database) with a conversion expression (its presentation);
// applying a definition to the database derives qunit *instances*, one
// per binding of the definition's parameter. A *catalog* is the flat
// collection of definitions that models the whole database for search:
// overlaps between qunits are permitted and deliberately ignored, and
// references are resolved at definition time — exactly the independence
// assumptions §2 lays out.
//
// Instances need not be materialized (§3: "there is no requirement that
// qunits be materialized"); Instantiate evaluates lazily, and
// MaterializeAll exists for engines that want an IR index over every
// instance.
package core

import (
	"fmt"
	"sort"
	"strings"

	"qunits/internal/relational"
	"qunits/internal/sqlview"
)

// Definition is one qunit definition.
type Definition struct {
	// Name identifies the definition within a catalog, e.g. "movie-cast".
	Name string
	// Description is a one-line human summary, e.g. "the cast of a movie".
	Description string
	// Base is the base expression (the view).
	Base *sqlview.BaseExpr
	// Conversion is the conversion expression (the presentation).
	Conversion *sqlview.Template
	// Utility is the definition-level utility score (§2): the importance
	// of this qunit in the intuitive organization of the database.
	// Derivation strategies assign it; higher is better. Catalogs
	// normalize utilities to (0, 1].
	Utility float64
	// Keywords is search vocabulary associated with the definition
	// ("cast", "actors", "starring" for movie-cast); the search engine
	// uses it for qunit-type identification.
	Keywords []string
	// Source names the derivation strategy that produced the definition.
	Source string
	// Sections are additional (base, conversion) pairs evaluated with the
	// same parameter binding and concatenated into the instance. They
	// realize the paper's §4.2 rollup: "the qunit definition for an
	// under-specified query is an aggregation of the qunit definitions of
	// its specializations" — a profile qunit is the main expression plus
	// one section per specialized aspect. Sections keep each aspect an
	// independent join, avoiding the cross-product a single flat view
	// over several fact tables would produce.
	Sections []Section
	// Context sections are evaluated like Sections but their rendering is
	// *not* part of the presented qunit — it feeds search and ranking
	// only. This is the paper's §2 note: "context information, not part
	// of the qunit presented to the user, may often be useful for
	// purposes of search and ranking … Our model explicitly allows for
	// this." A cast qunit, for instance, can carry the movie's genre and
	// plot as context so genre words retrieve it without cluttering the
	// answer.
	Context []Section
}

// Section is one aggregated aspect of a composite qunit definition.
type Section struct {
	Base       *sqlview.BaseExpr
	Conversion *sqlview.Template
}

// AnchorParam returns the definition's parameter name and the column it
// binds. Qunit definitions in this system are single-parameter views
// (one instance per anchor entity); ok is false for parameterless
// definitions.
func (d *Definition) AnchorParam() (param string, col relational.QualifiedColumn, ok bool) {
	for _, b := range d.Base.Binds {
		if b.Param != "" {
			return b.Param, b.Col, true
		}
	}
	return "", relational.QualifiedColumn{}, false
}

// Tables returns the distinct tables the base expression touches.
func (d *Definition) Tables() []string {
	out := append([]string(nil), d.Base.From...)
	sort.Strings(out)
	return out
}

// Validate checks the definition against a database schema: every table
// exists, every referenced column exists, and the definition has at most
// one parameter.
func (d *Definition) Validate(db *relational.Database) error {
	if d.Name == "" {
		return fmt.Errorf("core: definition with empty name")
	}
	if d.Base == nil || d.Conversion == nil {
		return fmt.Errorf("core: definition %q missing base or conversion expression", d.Name)
	}
	for _, tn := range d.Base.From {
		t := db.Table(tn)
		if t == nil {
			return fmt.Errorf("core: definition %q references missing table %q", d.Name, tn)
		}
	}
	checkCol := func(q relational.QualifiedColumn) error {
		t := db.Table(q.Table)
		if t == nil {
			return fmt.Errorf("core: definition %q references missing table %q", d.Name, q.Table)
		}
		if _, ok := t.Schema().ColumnIndex(q.Column); !ok {
			return fmt.Errorf("core: definition %q references missing column %s", d.Name, q)
		}
		return nil
	}
	for _, j := range d.Base.Joins {
		if err := checkCol(j.Left); err != nil {
			return err
		}
		if err := checkCol(j.Right); err != nil {
			return err
		}
	}
	params := 0
	for _, b := range d.Base.Binds {
		if err := checkCol(b.Col); err != nil {
			return err
		}
		if b.Param != "" {
			params++
		}
	}
	if params > 1 {
		return fmt.Errorf("core: definition %q has %d parameters; at most one is supported", d.Name, params)
	}
	mainParam, _, hasParam := d.AnchorParam()
	checkSection := func(s Section, what string, i int) error {
		if s.Base == nil || s.Conversion == nil {
			return fmt.Errorf("core: definition %q %s %d missing base or conversion", d.Name, what, i)
		}
		for _, tn := range s.Base.From {
			if db.Table(tn) == nil {
				return fmt.Errorf("core: definition %q %s %d references missing table %q", d.Name, what, i, tn)
			}
		}
		for _, p := range s.Base.Params() {
			if !hasParam || p != mainParam {
				return fmt.Errorf("core: definition %q %s %d uses parameter $%s; sections must reuse the main parameter", d.Name, what, i, p)
			}
		}
		return nil
	}
	for i, s := range d.Sections {
		if err := checkSection(s, "section", i); err != nil {
			return err
		}
	}
	for i, s := range d.Context {
		if err := checkSection(s, "context section", i); err != nil {
			return err
		}
	}
	return nil
}

// String renders the definition in the paper's SELECT…RETURN form.
func (d *Definition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s (utility %.3f, source %s)\n", d.Name, d.Utility, d.Source)
	b.WriteString(d.Base.String())
	b.WriteString("\nRETURN …")
	return b.String()
}

// Instance is one qunit instance: a definition applied to the database
// with concrete parameter bindings.
type Instance struct {
	// Def is the producing definition.
	Def *Definition
	// Params are the parameter bindings that derived this instance.
	Params map[string]string
	// Rendered is the conversion-expression output (XML + flat text).
	Rendered sqlview.Rendered
	// Tuples is the provenance: every base tuple that contributed.
	Tuples []relational.TupleRef
	// Utility is the instance-level utility; by default the definition's.
	Utility float64
	// ContextText is searchable text from the definition's Context
	// sections — indexed for ranking, never presented, and never part of
	// the provenance (context tuples are not *in* the result).
	ContextText string
}

// ID returns the instance's unique name: definition name plus parameter
// values.
func (inst *Instance) ID() string {
	if len(inst.Params) == 0 {
		return inst.Def.Name
	}
	keys := make([]string, 0, len(inst.Params))
	for k := range inst.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(inst.Def.Name)
	for _, k := range keys {
		b.WriteString(":")
		b.WriteString(inst.Params[k])
	}
	return b.String()
}

// Label returns the instance's display label: its first parameter value,
// or the definition name.
func (inst *Instance) Label() string {
	if p, _, ok := inst.Def.AnchorParam(); ok {
		if v, exists := inst.Params[p]; exists {
			return v
		}
	}
	return inst.Def.Name
}
