package core

import (
	"strings"
	"testing"

	"qunits/internal/sqlview"
)

func profileWithSections() *Definition {
	return &Definition{
		Name:        "movie-profile",
		Description: "rollup: summary plus cast",
		Base:        sqlview.MustParseBase(`SELECT * FROM movie WHERE movie.title = "$x"`),
		Conversion:  sqlview.MustParseTemplate(`<movie name="$x"><title>$movie.title</title></movie>`),
		Utility:     1,
		Sections: []Section{{
			Base: sqlview.MustParseBase(`SELECT * FROM movie, cast, person
WHERE cast.movie_id = movie.id AND cast.person_id = person.id AND movie.title = "$x"`),
			Conversion: sqlview.MustParseTemplate(`<cast><foreach:tuple><p>$person.name</p></foreach:tuple></cast>`),
		}},
	}
}

func TestCompositeDefinitionInstantiate(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := profileWithSections()
	cat.MustAdd(d)
	inst, err := cat.Instantiate(d, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.Rendered.Text, "Star Wars") {
		t.Errorf("main section missing: %q", inst.Rendered.Text)
	}
	if !strings.Contains(inst.Rendered.Text, "Mark Hamill") {
		t.Errorf("cast section missing: %q", inst.Rendered.Text)
	}
	// Provenance: movie + 2 cast + 2 persons.
	if len(inst.Tuples) != 5 {
		t.Errorf("tuples = %v", inst.Tuples)
	}
}

func TestCompositeEmptySectionOmitted(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := profileWithSections()
	cat.MustAdd(d)
	// "Nobody Watched This" exists but has no cast: the section
	// disappears, the main part remains.
	inst, err := cat.Instantiate(d, map[string]string{"x": "nobody watched this"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inst.Rendered.Text, "Nobody Watched This") {
		t.Errorf("main text = %q", inst.Rendered.Text)
	}
	if strings.Contains(inst.Rendered.XML, "<p>") {
		t.Error("empty section rendered tuples")
	}
	if len(inst.Tuples) != 1 {
		t.Errorf("tuples = %v", inst.Tuples)
	}
}

func TestCompositeEmptyMainMeansEmptyInstance(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := profileWithSections()
	cat.MustAdd(d)
	inst, err := cat.Instantiate(d, map[string]string{"x": "no such movie"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tuples) != 0 {
		t.Errorf("tuples for nonexistent anchor: %v", inst.Tuples)
	}
}

func TestSectionValidation(t *testing.T) {
	db := coreDB(t)
	bad := profileWithSections()
	bad.Sections[0].Base = sqlview.MustParseBase(`SELECT * FROM nosuch WHERE nosuch.title = "$x"`)
	if bad.Validate(db) == nil {
		t.Error("section with missing table accepted")
	}
	bad = profileWithSections()
	bad.Sections[0].Base = sqlview.MustParseBase(`SELECT * FROM cast WHERE cast.role = "$other"`)
	if bad.Validate(db) == nil {
		t.Error("section with mismatched parameter accepted")
	}
	bad = profileWithSections()
	bad.Sections[0].Conversion = nil
	if bad.Validate(db) == nil {
		t.Error("section without conversion accepted")
	}
	// Sections without parameters are fine (static context blocks).
	ok := profileWithSections()
	ok.Sections = append(ok.Sections, Section{
		Base:       sqlview.MustParseBase(`SELECT * FROM movie`),
		Conversion: sqlview.MustParseTemplate(`<all><foreach:tuple><t>$movie.title</t></foreach:tuple></all>`),
	})
	if err := ok.Validate(db); err != nil {
		t.Errorf("parameterless section rejected: %v", err)
	}
}

func TestCompositeMaterializeAll(t *testing.T) {
	db := coreDB(t)
	cat := NewCatalog(db)
	d := profileWithSections()
	cat.MustAdd(d)
	insts, err := cat.MaterializeAll(d)
	if err != nil {
		t.Fatal(err)
	}
	// All three movies exist as anchors (main expression matches even the
	// castless one).
	if len(insts) != 3 {
		t.Fatalf("instances = %d", len(insts))
	}
}
