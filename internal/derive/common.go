// Package derive implements §4 of the paper: automatic derivation of
// qunit definitions from a database. Three strategies are provided, one
// per subsection, plus the expert baseline used in the evaluation:
//
//   - FromSchema (§4.1): queriability over schema and data cardinality.
//   - FromQueryLog (§4.2): query rollup over a keyword query log.
//   - FromEvidence (§4.3): type-signature mining over external web pages.
//   - Expert: a hand-written qunit set standing in for the paper's
//     imdb.com URL-cluster catalog ("Human" in Figure 3).
//
// All strategies produce a core.Catalog with normalized utilities.
package derive

import (
	"fmt"
	"strings"

	"qunits/internal/core"
	"qunits/internal/relational"
	"qunits/internal/sqlview"
)

// anchorColumn returns the label column of a table — the column qunit
// parameters bind against ("movie.title", "person.name").
func anchorColumn(db *relational.Database, table string) (relational.QualifiedColumn, error) {
	t := db.Table(table)
	if t == nil {
		return relational.QualifiedColumn{}, fmt.Errorf("derive: no table %q", table)
	}
	lc := t.Schema().LabelColumn()
	if lc == t.Schema().PrimaryKey {
		return relational.QualifiedColumn{}, fmt.Errorf("derive: table %q has no label column to anchor on", table)
	}
	return relational.QualifiedColumn{Table: table, Column: lc}, nil
}

// aspectSection builds the (base, conversion) pair presenting one aspect
// of an anchor entity: the tuples of the target table reachable from the
// anchor along the schema's foreign keys. The anchor's label column binds
// the shared $x parameter.
func aspectSection(db *relational.Database, anchor, target string) (core.Section, error) {
	anchorCol, err := anchorColumn(db, anchor)
	if err != nil {
		return core.Section{}, err
	}
	path := db.FKPath(anchor, target)
	if path == nil {
		return core.Section{}, fmt.Errorf("derive: no foreign-key path %s → %s", anchor, target)
	}
	tables := relational.TablesOnPath(anchor, path)

	// A pure fact-table target (cast, movie_award) is meaningless without
	// its far-side entities — the paper's point about id normalization:
	// "it could be addressed by performing a value join every time an
	// internal id element is encountered". Extend the join to resolve the
	// target's remaining foreign keys (cast → person; movie_award →
	// award).
	if targetT := db.Table(target); targetT != nil && targetT.Schema().PrimaryKey == "" {
		onPath := map[string]bool{}
		for _, tn := range tables {
			onPath[tn] = true
		}
		for _, fk := range targetT.Schema().ForeignKeys {
			if onPath[fk.RefTable] {
				continue
			}
			ref := db.Table(fk.RefTable)
			if ref == nil || ref.Schema().PrimaryKey == "" {
				continue
			}
			path = append(path, relational.EquiJoinSpec{
				Left:  relational.QualifiedColumn{Table: target, Column: fk.Column},
				Right: relational.QualifiedColumn{Table: fk.RefTable, Column: ref.Schema().PrimaryKey},
			})
			tables = append(tables, fk.RefTable)
			onPath[fk.RefTable] = true
		}
	}

	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(strings.Join(tables, ", "))
	b.WriteString(" WHERE ")
	for i, j := range path {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s = %s", j.Left, j.Right)
	}
	if len(path) > 0 {
		b.WriteString(" AND ")
	}
	fmt.Fprintf(&b, "%s = \"$x\"", anchorCol)
	base, err := sqlview.ParseBase(b.String())
	if err != nil {
		return core.Section{}, fmt.Errorf("derive: building aspect %s→%s: %w", anchor, target, err)
	}

	tmpl, err := sqlview.ParseTemplate(aspectTemplateSource(db, anchor, target, tables))
	if err != nil {
		return core.Section{}, fmt.Errorf("derive: aspect template %s→%s: %w", anchor, target, err)
	}
	return core.Section{Base: base, Conversion: tmpl}, nil
}

// aspectTemplateSource renders each joined tuple's interesting columns:
// for every table on the path except the anchor, the label column plus
// any other searchable scalar columns. The section tag is the target
// table's name.
func aspectTemplateSource(db *relational.Database, anchor, target string, tables []string) string {
	var fields []string
	for _, tn := range tables {
		if tn == anchor {
			continue
		}
		schema := db.Table(tn).Schema()
		label := schema.LabelColumn()
		seen := map[string]bool{}
		add := func(col string) {
			if seen[col] {
				return
			}
			seen[col] = true
			fields = append(fields, fmt.Sprintf("<%s>$%s.%s</%s>", col, tn, col, col))
		}
		if label != schema.PrimaryKey {
			add(label)
		}
		for _, c := range schema.Columns {
			if c.Searchable && c.Name != label && c.Kind == relational.KindString {
				add(c.Name)
			}
		}
	}
	return fmt.Sprintf("<%s anchor=\"$x\"><foreach:tuple>%s </foreach:tuple></%s>",
		target, strings.Join(fields, " "), target)
}

// overviewDefinition builds a profile qunit for an anchor table: the main
// expression selects the anchor tuple and renders its scalar columns; one
// section per target table presents that aspect.
func overviewDefinition(db *relational.Database, anchor string, targets []string,
	name, source string, utility float64, keywords []string) (*core.Definition, error) {

	anchorCol, err := anchorColumn(db, anchor)
	if err != nil {
		return nil, err
	}
	base, err := sqlview.ParseBase(fmt.Sprintf(`SELECT * FROM %s WHERE %s = "$x"`, anchor, anchorCol))
	if err != nil {
		return nil, err
	}
	schema := db.Table(anchor).Schema()
	var fields []string
	for _, c := range schema.Columns {
		if c.Name == schema.PrimaryKey || strings.HasSuffix(c.Name, "_id") {
			continue
		}
		fields = append(fields, fmt.Sprintf("<%s>$%s.%s</%s>", c.Name, anchor, c.Name, c.Name))
	}
	tmpl, err := sqlview.ParseTemplate(fmt.Sprintf(`<%s name="$x">%s</%s>`, anchor, strings.Join(fields, " "), anchor))
	if err != nil {
		return nil, err
	}
	d := &core.Definition{
		Name:        name,
		Description: fmt.Sprintf("profile of a %s with %s", anchor, strings.Join(targets, ", ")),
		Base:        base,
		Conversion:  tmpl,
		Utility:     utility,
		Keywords:    keywords,
		Source:      source,
	}
	for _, target := range targets {
		sec, err := aspectSection(db, anchor, target)
		if err != nil {
			return nil, err
		}
		d.Sections = append(d.Sections, sec)
	}
	return d, nil
}

// aspectDefinition builds a single-aspect qunit ("the cast of a movie"):
// an aspect section promoted to a standalone definition.
func aspectDefinition(db *relational.Database, anchor, target string,
	name, source string, utility float64, keywords []string) (*core.Definition, error) {

	sec, err := aspectSection(db, anchor, target)
	if err != nil {
		return nil, err
	}
	return &core.Definition{
		Name:        name,
		Description: fmt.Sprintf("the %s of a %s", target, anchor),
		Base:        sec.Base,
		Conversion:  sec.Conversion,
		Utility:     utility,
		Keywords:    keywords,
		Source:      source,
	}, nil
}
