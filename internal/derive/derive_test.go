package derive

import (
	"strings"
	"testing"

	"qunits/internal/core"
	"qunits/internal/evidence"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/segment"
)

func universe(t *testing.T) *imdb.Universe {
	t.Helper()
	return imdb.MustGenerate(imdb.Config{Seed: 9, Persons: 250, Movies: 160, CastPerMovie: 5})
}

func segmenter(t *testing.T, u *imdb.Universe) *segment.Segmenter {
	t.Helper()
	d := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	return segment.NewSegmenter(d)
}

func TestFromSchemaDerive(t *testing.T) {
	u := universe(t)
	cat, err := FromSchema{K1: 2, K2: 4}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 {
		t.Fatalf("definitions = %d, want k1=2", cat.Len())
	}
	movie := cat.Definition("movie-profile-schema")
	person := cat.Definition("person-profile-schema")
	if movie == nil || person == nil {
		t.Fatalf("missing expected profiles; have %v", names(cat))
	}
	if len(movie.Sections) != 4 {
		t.Errorf("movie profile sections = %d, want k2=4", len(movie.Sections))
	}
	// The paper's noted weakness must be present: cardinality-only
	// scoring pulls in the plot text (info) — a big table — for movies.
	foundInfo := false
	for _, sec := range movie.Sections {
		for _, tn := range sec.Base.From {
			if tn == imdb.TableInfo {
				foundInfo = true
			}
		}
	}
	if !foundInfo {
		t.Error("schema strategy should (suboptimally) include the plot info table")
	}
	// Utilities normalized.
	defs := cat.Definitions()
	if defs[0].Utility != 1.0 {
		t.Errorf("top utility = %v", defs[0].Utility)
	}
}

func TestFromSchemaInstancesWork(t *testing.T) {
	u := universe(t)
	cat, err := FromSchema{K1: 2, K2: 3}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	d := cat.Definition("movie-profile-schema")
	inst, err := cat.Instantiate(d, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tuples) < 2 {
		t.Errorf("instance tuples = %v", inst.Tuples)
	}
	if !strings.Contains(inst.Rendered.Text, "star wars") &&
		!strings.Contains(inst.Rendered.Text, "Star Wars") {
		t.Errorf("instance text = %q", inst.Rendered.Text)
	}
}

func TestFromSchemaK1Sweep(t *testing.T) {
	u := universe(t)
	for _, k1 := range []int{1, 2, 3, 5} {
		cat, err := FromSchema{K1: k1, K2: 2}.Derive(u.DB)
		if err != nil {
			t.Fatal(err)
		}
		if cat.Len() > k1 {
			t.Errorf("k1=%d produced %d definitions", k1, cat.Len())
		}
	}
}

func TestFromQueryLogDerive(t *testing.T) {
	u := universe(t)
	log := querylog.Generate(u, querylog.GenConfig{Seed: 21, Volume: 6000})
	seg := segmenter(t, u)
	cat, err := FromQueryLog{Log: log, Segmenter: seg}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Must produce aspect qunits for the dominant query templates and the
	// rollup profiles.
	if cat.Definition("movie-cast-querylog") == nil {
		t.Errorf("missing movie-cast aspect; have %v", names(cat))
	}
	if cat.Definition("person-movie-querylog") == nil {
		t.Errorf("missing person-movie (filmography) aspect; have %v", names(cat))
	}
	movieProfile := cat.Definition("movie-profile-querylog")
	personProfile := cat.Definition("person-profile-querylog")
	if movieProfile == nil || personProfile == nil {
		t.Fatalf("missing rollup profiles; have %v", names(cat))
	}
	if len(personProfile.Sections) == 0 {
		t.Error("person rollup has no fragments")
	}
	// The rollup's first fragment should be the most-queried aspect:
	// people are queried with "movies"/"filmography", so movie must be a
	// target.
	foundMovie := false
	for _, sec := range personProfile.Sections {
		for _, tn := range sec.Base.From {
			if tn == imdb.TableMovie {
				foundMovie = true
			}
		}
	}
	if !foundMovie {
		t.Error("person rollup lacks the movie fragment")
	}
	// Keywords: the movie-cast aspect must carry the observed word
	// "cast".
	mc := cat.Definition("movie-cast-querylog")
	if !contains(mc.Keywords, "cast") {
		t.Errorf("movie-cast keywords = %v", mc.Keywords)
	}
}

func TestFromQueryLogUtilityTracksFrequency(t *testing.T) {
	u := universe(t)
	log := querylog.Generate(u, querylog.GenConfig{Seed: 21, Volume: 6000})
	seg := segmenter(t, u)
	cat, err := FromQueryLog{Log: log, Segmenter: seg}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	// "cast" is the most common movie attribute in the generator's mix;
	// its utility should beat a rare aspect like awards, if both exist.
	mc := cat.Definition("movie-cast-querylog")
	if ma := cat.Definition("movie-movie_award-querylog"); ma != nil && mc != nil {
		if mc.Utility <= ma.Utility {
			t.Errorf("cast utility %v <= awards utility %v", mc.Utility, ma.Utility)
		}
	}
}

func TestFromQueryLogErrors(t *testing.T) {
	u := universe(t)
	if _, err := (FromQueryLog{}).Derive(u.DB); err == nil {
		t.Error("missing inputs accepted")
	}
	empty := &querylog.Log{}
	if _, err := (FromQueryLog{Log: empty, Segmenter: segmenter(t, u)}).Derive(u.DB); err == nil {
		t.Error("empty log accepted")
	}
}

func TestFromEvidenceDerive(t *testing.T) {
	u := universe(t)
	pages := evidence.BuildCorpus(u, evidence.CorpusConfig{
		Seed: 3, MoviePages: 60, CastPages: 50, FilmographyPages: 50, SoundtrackPages: 20,
	})
	d := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	cat, err := FromEvidence{Pages: pages, Dict: d}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	// The cast page family must become a movie-anchored cast qunit.
	mc := cat.Definition("movie-cast-evidence")
	if mc == nil {
		t.Fatalf("missing movie-cast-evidence; have %v", names(cat))
	}
	if _, col, ok := mc.AnchorParam(); !ok || col.Table != imdb.TableMovie {
		t.Errorf("cast qunit anchored on %v", col)
	}
	usesCast := false
	for _, tn := range mc.Base.From {
		if tn == imdb.TableCast {
			usesCast = true
		}
	}
	if !usesCast {
		t.Error("cast qunit does not join through cast")
	}
	if !contains(mc.Keywords, "cast") {
		t.Errorf("keywords = %v", mc.Keywords)
	}
	// The filmography family must become a person-anchored qunit.
	if cat.Definition("person-evidence") == nil {
		t.Errorf("missing person-evidence profile; have %v", names(cat))
	}
	// Instances must evaluate.
	inst, err := cat.Instantiate(mc, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tuples) == 0 {
		t.Error("evidence cast instance is empty")
	}
}

func TestFromEvidenceMinPages(t *testing.T) {
	u := universe(t)
	pages := evidence.BuildCorpus(u, evidence.CorpusConfig{
		Seed: 3, MoviePages: 10, CastPages: 3, FilmographyPages: 10, SoundtrackPages: 2,
	})
	d := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	cat, err := FromEvidence{Pages: pages, Dict: d, MinPages: 5}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Cast family (3 pages) is below the threshold.
	if cat.Definition("movie-cast-evidence") != nil {
		t.Error("under-evidenced cluster produced a definition")
	}
}

func TestExpertDerive(t *testing.T) {
	u := universe(t)
	cat, err := Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 10 {
		t.Fatalf("expert definitions = %d", cat.Len())
	}
	for _, name := range []string{"movie-summary", "movie-cast", "person-profile", "movie-boxoffice", "movie-soundtrack"} {
		if cat.Definition(name) == nil {
			t.Errorf("missing %s", name)
		}
	}
	// movie-summary has the top utility.
	if cat.Definitions()[0].Name != "movie-summary" {
		t.Errorf("top definition = %s", cat.Definitions()[0].Name)
	}
	// Every expert definition must instantiate without error on a real
	// anchor.
	for _, def := range cat.Definitions() {
		param, col, ok := def.AnchorParam()
		if !ok {
			t.Errorf("%s has no anchor", def.Name)
			continue
		}
		anchor := "star wars"
		if col.Table == imdb.TablePerson {
			anchor = "george clooney"
		}
		inst, err := cat.Instantiate(def, map[string]string{param: anchor})
		if err != nil {
			t.Errorf("%s: %v", def.Name, err)
			continue
		}
		if len(inst.Tuples) == 0 && def.Name != "movie-awards" && def.Name != "movie-soundtrack" &&
			def.Name != "movie-trivia" && def.Name != "movie-boxoffice" {
			// Fact-dependent qunits may legitimately be empty for a given
			// movie; structural ones must not be.
			t.Errorf("%s produced an empty instance for %q", def.Name, anchor)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if (FromSchema{}).Name() != "schema" ||
		(FromQueryLog{}).Name() != "querylog" ||
		(FromEvidence{}).Name() != "evidence" ||
		(Expert{}).Name() != "human" {
		t.Error("strategy names wrong")
	}
}

func names(cat *core.Catalog) []string {
	var out []string
	for _, d := range cat.Definitions() {
		out = append(out, d.Name)
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
