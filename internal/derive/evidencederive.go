package derive

import (
	"fmt"
	"sort"
	"strings"

	"qunits/internal/core"
	"qunits/internal/evidence"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

// FromEvidence is the §4.3 strategy: learn qunit definitions from
// external evidence. Pages are clustered by URL pattern; each cluster's
// aggregated type signature reveals the page family's organization — one
// header entity (the label field, e.g. the movie title of a cast page)
// and the repeated body types (the foreach, e.g. the cast's person
// names). Each cluster becomes one qunit definition anchored on the
// header type with one aspect section per body type.
type FromEvidence struct {
	// Pages is the external corpus.
	Pages []evidence.Page
	// Dict recognizes database entities inside page text.
	Dict *segment.Dictionary
	// MinPages is the minimum cluster size to trust a layout family; 0
	// means 5.
	MinPages int
	// MaxTargets caps the aspect sections per definition; 0 means 4.
	MaxTargets int
}

// Name implements a conventional strategy label.
func (FromEvidence) Name() string { return "evidence" }

// Derive builds the catalog.
func (s FromEvidence) Derive(db *relational.Database) (*core.Catalog, error) {
	if len(s.Pages) == 0 || s.Dict == nil {
		return nil, fmt.Errorf("derive: FromEvidence needs pages and a dictionary")
	}
	minPages := s.MinPages
	if minPages <= 0 {
		minPages = 5
	}
	maxTargets := s.MaxTargets
	if maxTargets <= 0 {
		maxTargets = 4
	}

	clusters := evidence.Cluster(s.Pages, s.Dict)
	cat := core.NewCatalog(db)
	for _, cl := range clusters {
		if cl.Pages < minPages {
			continue
		}
		anchor, ok := headerType(cl)
		if !ok {
			continue
		}
		targets := bodyTargets(cl, anchor, maxTargets)
		if len(targets) == 0 {
			continue
		}
		name := patternName(cl.Pattern) + "-evidence"
		if cat.Definition(name) != nil {
			continue
		}
		keywords := patternKeywords(cl.Pattern)
		var def *core.Definition
		var err error
		if len(targets) == 1 && literalTail(cl.Pattern) != "" {
			// A narrow page family like /movie/*/cast: a single-aspect
			// qunit.
			def, err = aspectDefinition(db, anchor.Table, targets[0], name, "evidence",
				float64(cl.Pages), keywords)
		} else {
			// A broad family like /movie/*: an overview profile.
			def, err = overviewDefinition(db, anchor.Table, targets, name, "evidence",
				float64(cl.Pages), keywords)
		}
		if err != nil {
			continue // cluster's types not connected in this schema
		}
		cat.MustAdd(def)
	}
	if cat.Len() == 0 {
		return nil, fmt.Errorf("derive: evidence corpus produced no qunit definitions")
	}
	cat.NormalizeUtilities()
	return cat, nil
}

// headerType finds the cluster's label field: a type that occurs about
// once per page, predominantly in header position — "using person.name as
// a label field … based on the relative cardinality in the signature".
func headerType(cl evidence.ClusterSignature) (relational.QualifiedColumn, bool) {
	best := relational.QualifiedColumn{}
	bestShare := 0.0
	for typ, avg := range cl.AvgCounts {
		if avg < 0.5 || avg > 2.5 {
			continue
		}
		share := cl.HeaderShare[typ]
		if share >= 0.5 && share > bestShare {
			best, bestShare = typ, share
		}
	}
	return best, bestShare > 0
}

// bodyTargets returns the tables of the non-header types, by descending
// average count: high-multiplicity types first (the foreach content),
// then the once-per-page context fields.
func bodyTargets(cl evidence.ClusterSignature, anchor relational.QualifiedColumn, max int) []string {
	type scored struct {
		table string
		avg   float64
	}
	var out []scored
	seen := map[string]bool{anchor.Table: true}
	// Deterministic iteration over the map.
	keys := make([]relational.QualifiedColumn, 0, len(cl.AvgCounts))
	for k := range cl.AvgCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, typ := range keys {
		if typ == anchor || seen[typ.Table] {
			continue
		}
		if cl.AvgCounts[typ] < 0.3 {
			continue // incidental recognition noise
		}
		seen[typ.Table] = true
		out = append(out, scored{table: typ.Table, avg: cl.AvgCounts[typ]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].avg != out[j].avg {
			return out[i].avg > out[j].avg
		}
		return out[i].table < out[j].table
	})
	if len(out) > max {
		out = out[:max]
	}
	tables := make([]string, len(out))
	for i, s := range out {
		tables[i] = s.table
	}
	return tables
}

// patternName turns "/movie/*/cast" into "movie-cast".
func patternName(pattern string) string {
	var parts []string
	for _, seg := range strings.Split(pattern, "/") {
		if seg == "" || seg == "*" {
			continue
		}
		parts = append(parts, seg)
	}
	if len(parts) == 0 {
		return "page"
	}
	return strings.Join(parts, "-")
}

// patternKeywords are the literal URL segments: page families advertise
// their aspect in the path ("cast", "soundtrack").
func patternKeywords(pattern string) []string {
	var out []string
	for _, seg := range strings.Split(pattern, "/") {
		if seg != "" && seg != "*" {
			out = append(out, evidence.Unslug(seg))
		}
	}
	return out
}

// literalTail returns the last literal segment after a wildcard, or "".
func literalTail(pattern string) string {
	segs := strings.Split(pattern, "/")
	sawStar := false
	tail := ""
	for _, s := range segs {
		if s == "*" {
			sawStar = true
			tail = ""
			continue
		}
		if sawStar && s != "" {
			tail = s
		}
	}
	return tail
}
