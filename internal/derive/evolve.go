package derive

import (
	"fmt"
	"math"
	"sort"

	"qunits/internal/core"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

// Evolution implements the paper's §7 future work: "we expect to deal
// with qunit evolution over time as user interests mutate during the life
// of a database system." Given the previous epoch's catalog and a fresh
// query log, it re-derives and blends: definitions present in both epochs
// get an exponentially-smoothed utility, newly demanded definitions enter
// at discounted weight, and definitions no longer backed by query demand
// decay instead of vanishing (yesterday's interests fade; they do not
// disappear overnight).
type Evolution struct {
	// Log is the new epoch's query log.
	Log *querylog.Log
	// Segmenter types the new log's queries.
	Segmenter *segment.Segmenter
	// Alpha is the weight of the new epoch in the blend; 0 means 0.5.
	Alpha float64
}

// Drift records one definition's utility movement across an evolution
// step.
type Drift struct {
	// Name is the definition.
	Name string
	// Before and After are the utilities on each side of the step;
	// Before is 0 for newborn definitions, After reflects decay for ones
	// the new epoch no longer demands.
	Before, After float64
}

// Delta is the signed utility change.
func (d Drift) Delta() float64 { return d.After - d.Before }

// Evolve produces the next epoch's catalog and the drift report, sorted
// by absolute utility change (the headline movers first).
func (e Evolution) Evolve(db *relational.Database, prev *core.Catalog) (*core.Catalog, []Drift, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("derive: Evolve needs the previous catalog")
	}
	alpha := e.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	fresh, err := FromQueryLog{Log: e.Log, Segmenter: e.Segmenter}.Derive(db)
	if err != nil {
		return nil, nil, fmt.Errorf("derive: evolving: %w", err)
	}

	next := core.NewCatalog(db)
	var drifts []Drift

	// Definitions the new epoch demands: blended when they existed
	// before, discounted when newborn.
	for _, nd := range fresh.Definitions() {
		before := 0.0
		utility := alpha * nd.Utility
		if od := prev.Definition(nd.Name); od != nil {
			before = od.Utility
			utility = alpha*nd.Utility + (1-alpha)*od.Utility
		}
		nd.Utility = utility
		if err := next.Add(nd); err != nil {
			return nil, nil, err
		}
		drifts = append(drifts, Drift{Name: nd.Name, Before: before, After: utility})
	}
	// Definitions only the old catalog has: decay.
	for _, od := range prev.Definitions() {
		if next.Definition(od.Name) != nil {
			continue
		}
		decayed := *od
		decayed.Utility = od.Utility * (1 - alpha)
		if err := next.Add(&decayed); err != nil {
			return nil, nil, err
		}
		drifts = append(drifts, Drift{Name: od.Name, Before: od.Utility, After: decayed.Utility})
	}
	next.NormalizeUtilities()
	sort.Slice(drifts, func(i, j int) bool {
		di, dj := math.Abs(drifts[i].Delta()), math.Abs(drifts[j].Delta())
		if di != dj {
			return di > dj
		}
		return drifts[i].Name < drifts[j].Name
	})
	return next, drifts, nil
}
