package derive

import (
	"testing"

	"qunits/internal/querylog"
)

// TestEvolveTracksInterestShift simulates the paper's §7 scenario: user
// interests mutate between epochs (soundtrack queries surge, cast queries
// recede) and the catalog follows.
func TestEvolveTracksInterestShift(t *testing.T) {
	u := universe(t)
	seg := segmenter(t, u)

	epoch1 := querylog.Generate(u, querylog.GenConfig{Seed: 31, Volume: 6000})
	prev, err := FromQueryLog{Log: epoch1, Segmenter: seg}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	castBefore := prev.Definition("movie-cast-querylog")
	if castBefore == nil {
		t.Fatal("epoch 1 lacks movie-cast")
	}

	// Epoch 2: a log where entity-attribute demand collapses (users now
	// mostly navigate), so the cast aspect's relative utility must fall.
	epoch2 := querylog.Generate(u, querylog.GenConfig{
		Seed: 32, Volume: 6000,
		SingleEntity: 0.70, EntityAttribute: 0.02, MultiEntity: 0.02, Complex: 0.01,
	})
	next, drifts, err := Evolution{Log: epoch2, Segmenter: seg}.Evolve(u.DB, prev)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() == 0 {
		t.Fatal("evolution produced an empty catalog")
	}
	if len(drifts) == 0 {
		t.Fatal("no drift recorded")
	}
	// Drift report sorted by magnitude.
	for i := 1; i < len(drifts); i++ {
		a := drifts[i-1].Delta()
		b := drifts[i].Delta()
		if abs(a) < abs(b) {
			t.Fatalf("drifts not sorted by |delta|: %v then %v", a, b)
		}
	}
	// Every previous definition survives (decayed, not dropped).
	for _, od := range prev.Definitions() {
		if next.Definition(od.Name) == nil {
			t.Errorf("definition %q vanished during evolution", od.Name)
		}
	}
}

func TestEvolveBlendsUtilities(t *testing.T) {
	u := universe(t)
	seg := segmenter(t, u)
	log := querylog.Generate(u, querylog.GenConfig{Seed: 31, Volume: 6000})
	prev, err := FromQueryLog{Log: log, Segmenter: seg}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Evolving against the SAME log: utilities should stay roughly put
	// (blend of x with x is x, then renormalized).
	next, _, err := Evolution{Log: log, Segmenter: seg, Alpha: 0.5}.Evolve(u.DB, prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range prev.Definitions() {
		nd := next.Definition(od.Name)
		if nd == nil {
			t.Fatalf("%q missing", od.Name)
		}
		if diff := abs(nd.Utility - od.Utility); diff > 0.15 {
			t.Errorf("%q drifted %v on an identical epoch", od.Name, diff)
		}
	}
}

func TestEvolveRequiresPrev(t *testing.T) {
	u := universe(t)
	seg := segmenter(t, u)
	log := querylog.Generate(u, querylog.GenConfig{Seed: 31, Volume: 2000})
	if _, _, err := (Evolution{Log: log, Segmenter: seg}).Evolve(u.DB, nil); err == nil {
		t.Error("nil previous catalog accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
