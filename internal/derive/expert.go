package derive

import (
	"qunits/internal/core"
	"qunits/internal/imdb"
	"qunits/internal/relational"
)

// Expert builds the hand-written qunit catalog for the IMDb schema. In
// the paper's evaluation this role was played by the structure of the
// imdb.com website itself: "each page on the website is considered a
// unique qunit instance … qunit definitions were then created by hand
// based on each type of URL". These definitions are the "Human" series in
// Figure 3 — the quality ceiling the derivation strategies chase.
type Expert struct{}

// Name implements a conventional strategy label.
func (Expert) Name() string { return "human" }

// expertSpec describes one hand-written qunit.
type expertSpec struct {
	name     string
	anchor   string
	targets  []string
	profile  bool // profile (overview+sections) vs. single aspect
	utility  float64
	keywords []string
	desc     string
}

// Derive builds the expert catalog. It is written against the imdb
// schema; deriving over a database missing those tables returns an error
// from validation, which is the desired behaviour (expert qunits are
// schema-specific by definition).
func (Expert) Derive(db *relational.Database) (*core.Catalog, error) {
	specs := []expertSpec{
		{
			name: "movie-summary", anchor: imdb.TableMovie, profile: true,
			targets:  []string{imdb.TableGenre, imdb.TableCast, imdb.TableInfo},
			utility:  1.0,
			keywords: []string{"movie", "summary", "about", "film"},
			desc:     "the summary page of a movie: facts, genre, principal cast, plot",
		},
		{
			name: "movie-cast", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableCast},
			utility:  0.95,
			keywords: []string{"cast", "actors", "starring", "who played"},
			desc:     "the full cast of a movie",
		},
		{
			name: "person-profile", anchor: imdb.TablePerson, profile: true,
			targets:  []string{imdb.TableCast, imdb.TableCrew},
			utility:  0.95,
			keywords: []string{"movies", "filmography", "films", "biography", "actor"},
			desc:     "a person's profile: vitals and filmography",
		},
		{
			name: "movie-soundtrack", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableSoundtrack},
			utility:  0.7,
			keywords: []string{"soundtrack", "ost", "music", "songs"},
			desc:     "the soundtrack listing of a movie",
		},
		{
			name: "movie-boxoffice", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableBoxOffice},
			utility:  0.7,
			keywords: []string{"box office", "gross", "revenue"},
			desc:     "the box-office figures of a movie",
		},
		{
			name: "movie-awards", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableAward},
			utility:  0.65,
			keywords: []string{"awards", "oscars", "won"},
			desc:     "the awards of a movie",
		},
		{
			name: "movie-trivia", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableTrivia},
			utility:  0.6,
			keywords: []string{"trivia", "quotes", "facts"},
			desc:     "trivia about a movie",
		},
		{
			name: "movie-locations", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableLocations},
			utility:  0.5,
			keywords: []string{"locations", "filmed", "where"},
			desc:     "the shooting locations of a movie",
		},
		{
			name: "movie-crew", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableCrew},
			utility:  0.6,
			keywords: []string{"director", "crew", "directed"},
			desc:     "the crew of a movie",
		},
		{
			name: "movie-keywords", anchor: imdb.TableMovie, profile: false,
			targets:  []string{imdb.TableKeyword},
			utility:  0.4,
			keywords: []string{"keywords", "themes"},
			desc:     "plot keywords of a movie",
		},
	}

	cat := core.NewCatalog(db)
	for _, sp := range specs {
		var def *core.Definition
		var err error
		if sp.profile {
			def, err = overviewDefinition(db, sp.anchor, sp.targets, sp.name, "human", sp.utility, sp.keywords)
		} else {
			def, err = aspectDefinition(db, sp.anchor, sp.targets[0], sp.name, "human", sp.utility, sp.keywords)
		}
		if err != nil {
			return nil, err
		}
		def.Description = sp.desc
		// Movie-anchored aspect qunits carry the movie's genre and plot
		// as ranking-only context (§2): "star wars cast" and "space opera
		// cast" should both land on the cast qunit, but only the cast is
		// presented.
		if sp.anchor == imdb.TableMovie && !sp.profile {
			if ctx, err := aspectSection(db, imdb.TableMovie, imdb.TableGenre); err == nil {
				def.Context = append(def.Context, ctx)
			}
			if ctx, err := aspectSection(db, imdb.TableMovie, imdb.TableInfo); err == nil {
				def.Context = append(def.Context, ctx)
			}
		}
		if err := cat.Add(def); err != nil {
			return nil, err
		}
	}
	cat.NormalizeUtilities()
	return cat, nil
}
