package derive

import (
	"fmt"
	"sort"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

// FromQueryLog is the §4.2 strategy: query rollup. "Keyword queries are
// inherently underspecified, and hence the qunit definition for an
// under-specified query is an aggregation of the qunit definitions of its
// specializations." The log's queries are segmented against the database;
// every recognized entity is mapped onto the schema, and the co-occurring
// schema elements build an annotated set of schema links, weighted by
// query frequency. Each anchor type then gets (a) one aspect qunit per
// strongly-linked table, and (b) a rollup profile qunit aggregating its
// top fragments — the answer for the bare "george clooney" query.
//
// The paper describes sampling entities and looking them up in the log;
// segmenting every unique log query and aggregating is the batch
// equivalent (identical link counts, one pass instead of many lookups).
type FromQueryLog struct {
	// Log is the aggregated keyword query log.
	Log *querylog.Log
	// Segmenter types log queries against the database.
	Segmenter *segment.Segmenter
	// TopFragments caps the aspects aggregated into each rollup profile;
	// 0 means 4.
	TopFragments int
	// MinShare is the minimum share of an anchor's total link mass a
	// fragment needs to become a standalone aspect qunit; 0 means 0.02.
	MinShare float64
}

// Name implements a conventional strategy label.
func (FromQueryLog) Name() string { return "querylog" }

// link is one annotated schema link: anchor type → target table.
type link struct {
	anchor relational.QualifiedColumn
	target string
}

// Derive builds the catalog.
func (s FromQueryLog) Derive(db *relational.Database) (*core.Catalog, error) {
	if s.Log == nil || s.Segmenter == nil {
		return nil, fmt.Errorf("derive: FromQueryLog needs a log and a segmenter")
	}
	topFragments := s.TopFragments
	if topFragments <= 0 {
		topFragments = 4
	}
	minShare := s.MinShare
	if minShare == 0 {
		minShare = 0.02
	}

	linkFreq := map[link]int{}                         // annotated schema links
	anchorFreq := map[relational.QualifiedColumn]int{} // anchor popularity
	surface := map[link]map[string]int{}               // observed attribute words per link

	for _, e := range s.Log.Entries {
		sg := s.Segmenter.Segment(e.Query)
		entities := sg.Entities()
		if len(entities) == 0 {
			continue
		}
		for _, ent := range entities {
			anchorFreq[ent.Type] += e.Freq
		}
		for i, ent := range entities {
			// Attribute segments link the entity to the attribute's table.
			for _, attr := range sg.Attributes() {
				if attr.Table == ent.Type.Table {
					continue // "[movie.title] movies" is not a link
				}
				l := link{anchor: ent.Type, target: attr.Table}
				linkFreq[l] += e.Freq
				addSurface(surface, l, attr.Text, e.Freq)
			}
			// Other entities link through their tables ("george clooney
			// batman" links person.name → movie).
			for j, other := range entities {
				if i == j || other.Type.Table == ent.Type.Table {
					continue
				}
				l := link{anchor: ent.Type, target: other.Type.Table}
				linkFreq[l] += e.Freq
			}
		}
	}
	if len(anchorFreq) == 0 {
		return nil, fmt.Errorf("derive: query log contains no recognizable entities")
	}

	cat := core.NewCatalog(db)
	anchors := make([]relational.QualifiedColumn, 0, len(anchorFreq))
	for a := range anchorFreq {
		anchors = append(anchors, a)
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].String() < anchors[j].String() })

	for _, anchor := range anchors {
		// Collect this anchor's fragments, sorted by link frequency: "the
		// rollup of the qunit representing person.name should contain
		// movie.name and cast.role, in that order".
		type frag struct {
			target string
			freq   int
		}
		var frags []frag
		total := 0
		for l, f := range linkFreq {
			if l.anchor == anchor {
				frags = append(frags, frag{target: l.target, freq: f})
				total += f
			}
		}
		if total == 0 {
			continue
		}
		sort.Slice(frags, func(i, j int) bool {
			if frags[i].freq != frags[j].freq {
				return frags[i].freq > frags[j].freq
			}
			return frags[i].target < frags[j].target
		})

		// Standalone aspect qunits for strong fragments.
		var rollupTargets []string
		for _, f := range frags {
			if db.FKPath(anchor.Table, f.target) == nil {
				continue // not reachable; a stray vocabulary collision
			}
			share := float64(f.freq) / float64(total)
			if len(rollupTargets) < topFragments {
				rollupTargets = append(rollupTargets, f.target)
			}
			if share < minShare {
				continue
			}
			l := link{anchor: anchor, target: f.target}
			name := fmt.Sprintf("%s-%s-querylog", anchor.Table, f.target)
			if cat.Definition(name) != nil {
				continue
			}
			def, err := aspectDefinition(db, anchor.Table, f.target, name, "querylog",
				float64(f.freq), surfaceWords(surface, l, f.target))
			if err != nil {
				continue // unreachable targets already filtered; be safe
			}
			cat.MustAdd(def)
		}

		// The rollup profile answering the underspecified single-entity
		// query.
		if len(rollupTargets) > 0 {
			name := anchor.Table + "-profile-querylog"
			if cat.Definition(name) == nil {
				def, err := overviewDefinition(db, anchor.Table, rollupTargets, name,
					"querylog", float64(anchorFreq[anchor]), []string{anchor.Table})
				if err == nil {
					cat.MustAdd(def)
				}
			}
		}
	}
	if cat.Len() == 0 {
		return nil, fmt.Errorf("derive: query log produced no qunit definitions")
	}
	cat.NormalizeUtilities()
	return cat, nil
}

func addSurface(surface map[link]map[string]int, l link, text string, freq int) {
	m := surface[l]
	if m == nil {
		m = map[string]int{}
		surface[l] = m
	}
	m[ir.Normalize(text)] += freq
}

// surfaceWords returns the observed query vocabulary for a link, most
// frequent first, always including the target table's name.
func surfaceWords(surface map[link]map[string]int, l link, target string) []string {
	m := surface[l]
	words := make([]string, 0, len(m)+1)
	for w := range m {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if m[words[i]] != m[words[j]] {
			return m[words[i]] > m[words[j]]
		}
		return words[i] < words[j]
	})
	has := false
	for _, w := range words {
		if w == target {
			has = true
		}
	}
	if !has {
		words = append(words, target)
	}
	return words
}
