package eval

import (
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func TestNeedKindStrings(t *testing.T) {
	names := map[NeedKind]string{
		NeedUnknown:    "unknown",
		NeedProfile:    "profile",
		NeedAspect:     "aspect",
		NeedConnection: "connection",
		NeedComplex:    "complex",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAllFormsOrder(t *testing.T) {
	forms := AllForms()
	if len(forms) != 14 {
		t.Fatalf("forms = %d", len(forms))
	}
	if forms[0] != FormTitle || forms[len(forms)-1] != FormDontKnow {
		t.Errorf("form order changed: %v … %v", forms[0], forms[len(forms)-1])
	}
}

// Person-person connection: the required tuples must include the shared
// movie and both persons' fact rows (the sharedFarSide path).
func TestConnectionPersonPerson(t *testing.T) {
	u, seg, oracle := fixture(t)
	// Find two persons sharing a movie.
	cast := u.DB.Table(imdb.TableCast)
	byMovie := map[int64][]string{}
	cast.Scan(func(id int, row relational.Row) bool {
		movieID := row[1].AsInt()
		pTable, pRow, ok := u.DB.Resolve(imdb.TableCast, id, "person_id")
		if !ok {
			return true
		}
		name := u.DB.Label(relational.TupleRef{Table: pTable, Row: pRow})
		byMovie[movieID] = append(byMovie[movieID], name)
		return true
	})
	var a, b string
	for _, names := range byMovie {
		seen := map[string]bool{}
		var distinct []string
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				distinct = append(distinct, n)
			}
		}
		if len(distinct) >= 2 {
			a, b = distinct[0], distinct[1]
			break
		}
	}
	if a == "" {
		t.Skip("no co-acting pair at this seed")
	}
	need := NeedFromQuery(seg, a+" "+b)
	if need.Kind != NeedConnection {
		t.Fatalf("kind = %s for %q", need.Kind, a+" "+b)
	}
	req := oracle.Required(need)
	if len(req) == 0 {
		t.Fatal("no required tuples for co-actorship")
	}
	var hasMovie, hasFact bool
	for _, r := range req {
		if r.Table == imdb.TableMovie {
			hasMovie = true
		}
		if r.Table == imdb.TableCast || r.Table == imdb.TableCrew {
			hasFact = true
		}
	}
	if !hasMovie || !hasFact {
		t.Errorf("co-actorship required = %v", req)
	}
}

// "Most awarded movies" exercises the mostReferenced aggregate.
func TestComplexMostAwarded(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "most awarded movies")
	if need.Kind != NeedComplex {
		t.Fatalf("kind = %s", need.Kind)
	}
	req := oracle.Required(need)
	if len(req) == 0 {
		t.Skip("no awards at this seed")
	}
	var hasMovie, hasAwardRow bool
	for _, r := range req {
		if r.Table == imdb.TableMovie {
			hasMovie = true
		}
		if r.Table == imdb.TableMovieAward {
			hasAwardRow = true
		}
	}
	if !hasMovie || !hasAwardRow {
		t.Errorf("most-awarded required = %v", req)
	}
}

// "Top rated ..." exercises topRatedMovies.
func TestComplexTopRated(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "top rated comedy movies")
	if need.Kind != NeedComplex {
		t.Fatalf("kind = %s", need.Kind)
	}
	req := oracle.Required(need)
	if len(req) != 3 {
		t.Fatalf("top-rated required = %d tuples, want 3", len(req))
	}
	for _, r := range req {
		if r.Table != imdb.TableMovie {
			t.Errorf("non-movie tuple %v in top-rated requirement", r)
		}
	}
}

// Unresolvable complex queries yield nothing to require.
func TestComplexUnresolvable(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "biggest disappointment ever")
	if need.Kind != NeedComplex {
		t.Fatalf("kind = %s", need.Kind)
	}
	if req := oracle.Required(need); len(req) != 0 {
		t.Errorf("unresolvable aggregate produced requirements: %v", req)
	}
}

// Judge drift must be exercised in both directions and clamp at the
// rubric boundaries.
func TestJudgeDriftClamps(t *testing.T) {
	p := NewPanel(200, 1.0, 9) // always drift
	for _, oracle := range []float64{0, 0.5, 1} {
		for _, r := range p.Rate(oracle) {
			if r < 0 || r > 1 {
				t.Fatalf("rating %v out of range", r)
			}
			if r != 0 && r != 0.5 && r != 1 {
				t.Fatalf("rating %v off rubric", r)
			}
		}
	}
	// From 0, drift can only go up or stay (clamped); ensure at least one
	// upward drift occurred.
	up := false
	for _, r := range p.Rate(0) {
		if r > 0 {
			up = true
		}
	}
	if !up {
		t.Error("no upward drift from 0 with noise 1.0")
	}
}
