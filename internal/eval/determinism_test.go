package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
)

// The determinism pins. Golden generation and evaluation are pure
// functions of the corpus seed, so their serialized bytes admit a
// checked-in CRC — the same idiom internal/synth uses for corpus
// generation. If one of these fails after an INTENTIONAL change to
// ranking, derivation, the oracle, or the serialization, regenerate the
// value printed in the failure message and update the constant; if
// nothing was meant to change, a nondeterminism crept in.
const (
	pinGoldenGenCRC     = "fa87123ef953f921"
	pinEvalFingerprint  = "4674a44d83d33145"
	pinEvalReportCRC    = "6b505816d791e2eb"
	determinismPinSeed  = 5
	determinismPinRuns  = 3
	determinismPinBytes = 1 << 20
)

// determinismFixture builds the fixed small corpus the pins are minted
// on, returning a fresh engine and oracle each call — no state may leak
// between runs.
func determinismFixture(t *testing.T) (*search.Engine, *Oracle, []SurveyQuery) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: determinismPinSeed, Persons: 60, Movies: 40, CastPerMovie: 4})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(u.DB, map[string][]string{
		imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
		imdb.TableMovie:  {imdb.TableCast},
	})
	logCfg := querylog.DefaultGenConfig()
	logCfg.Seed = determinismPinSeed
	logCfg.Volume = 2000
	queries := BuildSurveyWorkload(querylog.Generate(u, logCfg), engine.Segmenter(), 15)
	return engine, oracle, queries
}

func crcOf(data []byte) string {
	return fmt.Sprintf("%016x", crc64.Checksum(data, crc64.MakeTable(crc64.ECMA)))
}

// TestGoldenGenerationDeterministic: generating the same golden set from
// scratch — fresh corpus, fresh engine, fresh oracle — yields the same
// bytes every run, pinned by CRC so drift against history is caught too.
func TestGoldenGenerationDeterministic(t *testing.T) {
	ctx := context.Background()
	hdr := GoldenHeader{
		Format: GoldenFormat, Name: "pin", Corpus: CorpusIMDb,
		Seed: determinismPinSeed, Persons: 60, Movies: 40, CastPerMovie: 4,
		Derive: "expert", K: 5,
	}
	var first []byte
	for run := 0; run < determinismPinRuns; run++ {
		engine, oracle, queries := determinismFixture(t)
		set, err := GenerateGolden(ctx, engine, oracle, queries, hdr, GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := set.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() > determinismPinBytes {
			t.Fatalf("generated set unexpectedly large: %d bytes", buf.Len())
		}
		if run == 0 {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("run %d generated different bytes than run 0", run)
		}
	}
	if got := crcOf(first); got != pinGoldenGenCRC {
		t.Errorf("golden generation CRC = %s, pinned %s — update the pin only for an intentional change", got, pinGoldenGenCRC)
	}
}

// TestEvalReportDeterministic: evaluating a fixed golden set produces
// byte-identical report JSON across runs, and the per-set fingerprint
// matches its pin.
func TestEvalReportDeterministic(t *testing.T) {
	ctx := context.Background()
	hdr := GoldenHeader{
		Format: GoldenFormat, Name: "pin", Corpus: CorpusIMDb,
		Seed: determinismPinSeed, Persons: 60, Movies: 40, CastPerMovie: 4,
		Derive: "expert", K: 5,
	}
	var first []byte
	for run := 0; run < determinismPinRuns; run++ {
		engine, oracle, queries := determinismFixture(t)
		set, err := GenerateGolden(ctx, engine, oracle, queries, hdr, GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := EvaluateGolden(ctx, EngineSearcher{Engine: engine}, set)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Fingerprint != pinEvalFingerprint {
			t.Errorf("run %d: fingerprint = %s, pinned %s", run, sr.Fingerprint, pinEvalFingerprint)
		}
		report := &Report{Format: ReportFormat, Sets: []SetReport{*sr}}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = append([]byte(nil), data...)
			continue
		}
		if !bytes.Equal(first, data) {
			t.Fatalf("run %d report bytes differ from run 0", run)
		}
	}
	if got := crcOf(first); got != pinEvalReportCRC {
		t.Errorf("report CRC = %s, pinned %s — update the pin only for an intentional change", got, pinEvalReportCRC)
	}
}
