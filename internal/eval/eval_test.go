package eval

import (
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

func fixture(t *testing.T) (*imdb.Universe, *segment.Segmenter, *Oracle) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 8, Persons: 200, Movies: 120, CastPerMovie: 5})
	d := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	oracle := NewOracle(u.DB, map[string][]string{
		imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
		imdb.TableMovie:  {imdb.TableCast},
	})
	return u, segment.NewSegmenter(d), oracle
}

func TestNeedFromQueryKinds(t *testing.T) {
	_, seg, _ := fixture(t)
	cases := []struct {
		query string
		kind  NeedKind
	}{
		{"george clooney", NeedProfile},
		{"star wars", NeedProfile},
		{"star wars cast", NeedAspect},
		{"george clooney movies", NeedAspect},
		{"angelina jolie tomb raider", NeedConnection},
		{"highest box office revenue", NeedComplex},
		{"best comedy movies", NeedComplex},
		{"movie trailers online", NeedUnknown},
	}
	for _, c := range cases {
		need := NeedFromQuery(seg, c.query)
		if need.Kind != c.kind {
			t.Errorf("NeedFromQuery(%q).Kind = %s, want %s", c.query, need.Kind, c.kind)
		}
	}
}

func TestNeedAnchorsResolved(t *testing.T) {
	u, seg, _ := fixture(t)
	need := NeedFromQuery(seg, "star wars cast")
	if len(need.Anchor) == 0 {
		t.Fatal("no anchor")
	}
	if need.Anchor[0].Table != imdb.TableMovie {
		t.Errorf("anchor table = %s", need.Anchor[0].Table)
	}
	if need.AspectTable != imdb.TableCast {
		t.Errorf("aspect = %s", need.AspectTable)
	}
	_ = u
}

func TestRequiredAspectCast(t *testing.T) {
	u, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "star wars cast")
	req := oracle.Required(need)
	if len(req) == 0 {
		t.Fatal("no required tuples")
	}
	var hasCast, hasPerson bool
	for _, r := range req {
		switch r.Table {
		case imdb.TableCast:
			hasCast = true
		case imdb.TablePerson:
			hasPerson = true
		case imdb.TableMovie:
			t.Error("required includes the anchor movie (queried entity is not payload)")
		}
	}
	if !hasCast || !hasPerson {
		t.Errorf("required misses cast or person rows: %v", req)
	}
	_ = u
}

func TestRequiredAspectFilmography(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "george clooney movies")
	req := oracle.Required(need)
	var hasMovie, hasFact bool
	for _, r := range req {
		if r.Table == imdb.TableMovie {
			hasMovie = true
		}
		if r.Table == imdb.TableCast || r.Table == imdb.TableCrew {
			hasFact = true
		}
	}
	if !hasMovie || !hasFact {
		t.Errorf("filmography required = %v", req)
	}
}

func TestRequiredProfile(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "star wars")
	req := oracle.Required(need)
	tables := map[string]bool{}
	for _, r := range req {
		tables[r.Table] = true
	}
	for _, want := range []string{imdb.TableGenre, imdb.TableInfo, imdb.TableCast, imdb.TablePerson} {
		if !tables[want] {
			t.Errorf("profile required misses %s (have %v)", want, tables)
		}
	}
}

func TestRequiredConnection(t *testing.T) {
	u, seg, oracle := fixture(t)
	// Find a person+movie pair that is actually connected.
	castT := u.DB.Table(imdb.TableCast)
	var person, movie string
	castT.Scan(func(id int, row relational.Row) bool {
		pT, pR, _ := u.DB.Resolve(imdb.TableCast, id, "person_id")
		mT, mR, _ := u.DB.Resolve(imdb.TableCast, id, "movie_id")
		person = u.DB.Label(relational.TupleRef{Table: pT, Row: pR})
		movie = u.DB.Label(relational.TupleRef{Table: mT, Row: mR})
		return false
	})
	need := NeedFromQuery(seg, person+" "+movie)
	if need.Kind != NeedConnection {
		t.Fatalf("kind = %s for %q", need.Kind, person+" "+movie)
	}
	req := oracle.Required(need)
	hasLink := false
	for _, r := range req {
		if r.Table == imdb.TableCast || r.Table == imdb.TableCrew {
			hasLink = true
		}
	}
	if !hasLink {
		t.Errorf("connection required lacks linking fact rows: %v", req)
	}
}

func TestRequiredComplex(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "highest box office revenue")
	req := oracle.Required(need)
	hasBox := false
	for _, r := range req {
		if r.Table == imdb.TableBoxOffice {
			hasBox = true
		}
	}
	if !hasBox {
		t.Errorf("complex required = %v", req)
	}
	need = NeedFromQuery(seg, "best comedy movies")
	if len(oracle.Required(need)) == 0 {
		t.Error("top-rated complex need unresolved")
	}
}

func TestOracleScoreRubric(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "star wars cast")
	required := oracle.Required(need)

	// Perfect result: exactly the required tuples (+ anchor).
	perfect := SystemResult{Tuples: append(append([]relational.TupleRef(nil), required...), need.Anchor...)}
	if got := oracle.Score(need, perfect); got != 1.0 {
		t.Errorf("perfect result scored %v", got)
	}
	// Empty result.
	if got := oracle.Score(need, SystemResult{}); got != 0 {
		t.Errorf("empty result scored %v", got)
	}
	// Anchor-only result: no information above the query.
	anchorOnly := SystemResult{Tuples: need.Anchor}
	if got := oracle.Score(need, anchorOnly); got != 0 {
		t.Errorf("anchor-only result scored %v", got)
	}
	// Incomplete: half the required tuples.
	half := SystemResult{Tuples: required[:len(required)/2]}
	if got := oracle.Score(need, half); got != 0.5 {
		t.Errorf("incomplete result scored %v", got)
	}
	// Excessive: required plus a pile of unrelated tuples.
	var noise []relational.TupleRef
	for i := 0; i < len(required)*2; i++ {
		noise = append(noise, relational.TupleRef{Table: imdb.TableTrivia, Row: i})
	}
	excessive := SystemResult{Tuples: append(append([]relational.TupleRef(nil), required...), noise...)}
	if got := oracle.Score(need, excessive); got != 0.5 {
		t.Errorf("excessive result scored %v", got)
	}
	// Irrelevant: only unrelated tuples.
	irrelevant := SystemResult{Tuples: noise}
	if got := oracle.Score(need, irrelevant); got != 0 {
		t.Errorf("irrelevant result scored %v", got)
	}
}

func TestOracleScoreUnknownNeed(t *testing.T) {
	_, seg, oracle := fixture(t)
	need := NeedFromQuery(seg, "movie trailers online")
	res := SystemResult{Tuples: []relational.TupleRef{{Table: imdb.TableMovie, Row: 0}}}
	if got := oracle.Score(need, res); got != 0 {
		t.Errorf("unverifiable need scored %v", got)
	}
}

func TestJudgePanel(t *testing.T) {
	p := NewPanel(20, 0.1, 42)
	if p.Size() != 20 {
		t.Fatalf("panel size = %d", p.Size())
	}
	ratings := p.Rate(1.0)
	if len(ratings) != 20 {
		t.Fatal("ratings count")
	}
	m := Mean(ratings)
	if m < 0.8 || m > 1.0 {
		t.Errorf("panel mean for oracle=1.0 is %v", m)
	}
	for _, r := range ratings {
		if r != 0 && r != 0.5 && r != 1.0 {
			t.Errorf("non-rubric rating %v", r)
		}
	}
	// Determinism.
	p2 := NewPanel(20, 0.1, 42)
	r2 := p2.Rate(1.0)
	for i := range ratings {
		if ratings[i] != r2[i] {
			t.Fatal("panel not deterministic")
		}
	}
	// Zero noise: unanimous.
	clean := NewPanel(20, 0, 1)
	for _, r := range clean.Rate(0.5) {
		if r != 0.5 {
			t.Fatal("zero-noise judge drifted")
		}
	}
}

func TestMajorityShare(t *testing.T) {
	if got := MajorityShare([]float64{1, 1, 1, 0.5}); got != 0.75 {
		t.Errorf("MajorityShare = %v", got)
	}
	if got := MajorityShare(nil); got != 0 {
		t.Errorf("MajorityShare(nil) = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestRunStudyShape(t *testing.T) {
	study := RunStudy(DefaultPersonas(), 3)
	st := study.Stats()
	// 5 users × 5 needs, plus occasional alternates.
	if st.Queries < 25 || st.Queries > 35 {
		t.Errorf("queries = %d", st.Queries)
	}
	// The paper's headline structure: a large share single-entity, most
	// of those underspecified, and a many-to-many mapping.
	if st.SingleEntity < 5 {
		t.Errorf("single-entity = %d, want a sizeable share", st.SingleEntity)
	}
	if st.Underspecified == 0 {
		t.Error("no underspecified queries")
	}
	if st.Underspecified > st.SingleEntity {
		t.Error("underspecified exceeds single-entity")
	}
	if st.NeedsWithMultipleForms == 0 {
		t.Error("no need expressed multiple ways (many-to-many violated)")
	}
	if st.FormsWithMultipleNeeds == 0 {
		t.Error("no form serving multiple needs (many-to-many violated)")
	}
	// Deterministic.
	again := RunStudy(DefaultPersonas(), 3)
	if len(again.Entries) != len(study.Entries) {
		t.Error("study not deterministic")
	}
	// Matrix pivots consistently.
	m := study.Matrix()
	cells := 0
	for _, row := range m {
		cells += len(row)
	}
	if cells == 0 {
		t.Error("empty matrix")
	}
}

func TestBuildSurveyWorkload(t *testing.T) {
	u, seg, _ := fixture(t)
	log := querylog.Generate(u, querylog.GenConfig{Seed: 13, Volume: 6000})
	w := BuildSurveyWorkload(log, seg, 25)
	if len(w) != 25 {
		t.Fatalf("workload = %d queries", len(w))
	}
	kinds := map[NeedKind]int{}
	for _, sq := range w {
		kinds[sq.Need.Kind]++
		if sq.Query == "" {
			t.Error("empty query")
		}
	}
	if kinds[NeedProfile] == 0 || kinds[NeedAspect] == 0 {
		t.Errorf("workload lacks basic kinds: %v", kinds)
	}
}
