package eval

import (
	"context"
	"fmt"
	"math"

	"qunits/internal/search"
)

// The golden generator bootstraps curation: it runs the survey workload
// (the persona-derived queries of the §5.3 study) through an engine,
// scores every returned instance with the need oracle's Table 2 rubric,
// and emits the judgments as a golden set. The output is a CANDIDATE —
// the point is that a human reviews and edits the JSONL before
// committing it — but because both the workload and the oracle are
// deterministic, regeneration is byte-identical per seed and the diff
// against the curated file shows exactly what the curator changed.

// GenerateOptions configures golden-set generation.
type GenerateOptions struct {
	// Candidates is how many results per query the oracle judges;
	// 0 means 2×EvalK.
	Candidates int
	// FloorSlack is subtracted from the measured Precision@k and NDCG@k
	// (then rounded down to the 0.05 grid) to propose the committed
	// floors; 0 means 0.05. Curators tighten or loosen by editing the
	// header.
	FloorSlack float64
}

// GenerateGolden builds a candidate golden set: each query's top
// candidates are scored with the oracle (rubric 1.0 results become
// expected, every positively-rubric'd result becomes a graded gain),
// queries the oracle cannot judge are dropped, and the header's floors
// are proposed from the generating engine's own measured metrics minus
// the slack. The header's corpus recipe fields are taken from hdr
// verbatim — the caller describes the corpus it built the engine from.
func GenerateGolden(ctx context.Context, engine *search.Engine, oracle *Oracle, queries []SurveyQuery, hdr GoldenHeader, opts GenerateOptions) (*GoldenSet, error) {
	hdr.Format = GoldenFormat
	if hdr.K <= 0 {
		hdr.K = 10
	}
	candidates := opts.Candidates
	if candidates <= 0 {
		candidates = 2 * hdr.K
	}
	slack := opts.FloorSlack
	if slack == 0 {
		slack = 0.05
	}
	set := &GoldenSet{Header: hdr}
	seen := map[string]bool{}
	for _, sq := range queries {
		if seen[sq.Query] {
			continue
		}
		seen[sq.Query] = true
		resp, err := engine.Search(ctx, search.Request{Query: sq.Query, K: candidates})
		if err != nil {
			return nil, fmt.Errorf("golden: generating %q: %w", sq.Query, err)
		}
		c := GoldenCase{Query: sq.Query, Graded: map[string]float64{}}
		for _, r := range resp.Results {
			gain := oracle.Score(sq.Need, SystemResult{Text: r.Instance.Rendered.Text, Tuples: r.Instance.Tuples})
			if gain <= 0 {
				continue
			}
			id := r.Instance.ID()
			c.Graded[id] = gain
			if gain >= 1 {
				c.Expected = append(c.Expected, id)
			}
		}
		// A query with no fully-relevant result cannot anchor the binary
		// metrics; a query with no graded result cannot anchor NDCG
		// either. Only judgeable queries make the set.
		if len(c.Expected) == 0 {
			continue
		}
		set.Cases = append(set.Cases, c)
	}
	if len(set.Cases) == 0 {
		return nil, fmt.Errorf("golden: no judgeable queries (oracle found nothing fully relevant)")
	}
	// Propose floors from the generating engine's own numbers: the gate
	// should pass today with margin, and trip when quality erodes.
	report, err := EvaluateGolden(ctx, EngineSearcher{Engine: engine}, set)
	if err != nil {
		return nil, fmt.Errorf("golden: measuring proposed floors: %w", err)
	}
	set.Header.Floors = Floors{
		Precision: proposeFloor(report.Precision, slack),
		NDCG:      proposeFloor(report.NDCG, slack),
	}
	return set, nil
}

// proposeFloor rounds metric−slack down to the 0.05 grid, clamped to
// [0, 1] — a committed floor humans can read at a glance.
func proposeFloor(metric, slack float64) float64 {
	f := math.Floor((metric-slack)*20) / 20
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
