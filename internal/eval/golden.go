package eval

import (
	"bufio"
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// A golden set is a versioned JSONL file of curated relevance
// judgments: line one is the header (format version, the corpus recipe
// the judgments were made against, the evaluation depth, and the
// committed metric floors), every following line is one query with its
// expected qunit instance ids and optional graded gains:
//
//	{"format":"qunits-golden/1","name":"imdb","corpus":"imdb","seed":1,...,"floors":{"precision":0.5,"ndcg":0.7}}
//	{"query":"star wars cast","expected":["movie-cast:star wars"],"graded":{"movie-cast:star wars":1,"movie-summary:star wars":0.5}}
//
// The corpus recipe makes a set self-describing: cmd/eval rebuilds the
// exact engine offline, and operators boot the exact qunitsd for the
// online mode, from the header alone. Loading is strict — unknown
// fields, duplicate queries, out-of-range gains, and expected ids
// missing from graded all fail loudly, so a mis-curated set can never
// silently weaken the gate.

// GoldenFormat is the format tag every golden set's header must carry.
const GoldenFormat = "qunits-golden/1"

// Golden corpus names. A set's judgments are only meaningful against
// the exact corpus they were curated on, so the loader restricts the
// corpus to the recipes cmd/eval can rebuild.
const (
	// CorpusIMDb is the synthetic IMDb universe (internal/imdb).
	CorpusIMDb = "imdb"
	// CorpusUniversity is the scaled university schema (internal/synth).
	CorpusUniversity = "university"
)

// Floors are the committed quality floors a golden-set run must meet.
type Floors struct {
	// Precision is the minimum mean Precision@k.
	Precision float64 `json:"precision"`
	// NDCG is the minimum mean NDCG@k.
	NDCG float64 `json:"ndcg"`
}

// GoldenHeader is the first line of a golden set.
type GoldenHeader struct {
	// Format must be GoldenFormat.
	Format string `json:"format"`
	// Name labels the set in reports ("imdb", "university").
	Name string `json:"name"`
	// Corpus names the corpus recipe: CorpusIMDb or CorpusUniversity.
	Corpus string `json:"corpus"`
	// Seed is the corpus generation seed.
	Seed int64 `json:"seed,omitempty"`
	// Persons, Movies, CastPerMovie size the IMDb corpus.
	Persons      int `json:"persons,omitempty"`
	Movies       int `json:"movies,omitempty"`
	CastPerMovie int `json:"cast_per_movie,omitempty"`
	// Departments, Professors, Courses, Students, EnrollPerStudent size
	// the university corpus.
	Departments      int `json:"departments,omitempty"`
	Professors       int `json:"professors,omitempty"`
	Courses          int `json:"courses,omitempty"`
	Students         int `json:"students,omitempty"`
	EnrollPerStudent int `json:"enroll_per_student,omitempty"`
	// Derive is the catalog derivation strategy: "expert" (default) or
	// "schema".
	Derive string `json:"derive,omitempty"`
	// K is the evaluation depth (Precision@K, NDCG@K); 0 means 10.
	K int `json:"k,omitempty"`
	// Floors are the committed minimums the gate enforces.
	Floors Floors `json:"floors"`
}

// EvalK returns the evaluation depth with the default applied.
func (h GoldenHeader) EvalK() int {
	if h.K <= 0 {
		return 10
	}
	return h.K
}

// GoldenCase is one judged query.
type GoldenCase struct {
	// Query is the keyword query.
	Query string `json:"query"`
	// Expected lists the instance ids judged fully relevant (rubric 1.0)
	// — the binary-relevance set Precision/Recall/MRR use.
	Expected []string `json:"expected"`
	// Graded maps instance id to gain in (0, 1] for NDCG. Empty means
	// binary judgments: every expected id gains 1.
	Graded map[string]float64 `json:"graded,omitempty"`
}

// Gains returns the case's graded gains, deriving the binary gains from
// Expected when no explicit grades were curated.
func (c GoldenCase) Gains() map[string]float64 {
	if len(c.Graded) > 0 {
		return c.Graded
	}
	gains := make(map[string]float64, len(c.Expected))
	for _, id := range c.Expected {
		gains[id] = 1
	}
	return gains
}

// RelevantSet returns the binary-relevant ids as a set.
func (c GoldenCase) RelevantSet() map[string]bool {
	rel := make(map[string]bool, len(c.Expected))
	for _, id := range c.Expected {
		rel[id] = true
	}
	return rel
}

// GoldenSet is a parsed golden dataset.
type GoldenSet struct {
	Header GoldenHeader
	Cases  []GoldenCase
}

// builtinGoldens holds the committed, curated golden sets; cmd/eval
// resolves the bare names "imdb" and "university" to them so the gate
// needs no filesystem paths.
//
//go:embed testdata/imdb_golden.jsonl testdata/university_golden.jsonl
var builtinGoldens embed.FS

// BuiltinGoldenNames lists the committed golden sets.
func BuiltinGoldenNames() []string { return []string{CorpusIMDb, CorpusUniversity} }

// BuiltinGolden loads one of the committed golden sets by name.
func BuiltinGolden(name string) (*GoldenSet, error) {
	data, err := builtinGoldens.ReadFile("testdata/" + name + "_golden.jsonl")
	if err != nil {
		return nil, fmt.Errorf("golden: no builtin set %q (have %s)", name, strings.Join(BuiltinGoldenNames(), ", "))
	}
	set, err := ParseGolden(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("golden: builtin %q: %w", name, err)
	}
	return set, nil
}

// LoadGolden reads and validates a golden set file.
func LoadGolden(path string) (*GoldenSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := ParseGolden(f)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return set, nil
}

// ParseGolden parses and strictly validates a golden set: the header
// must come first and carry the supported format tag, every line must
// decode without unknown fields or trailing garbage, queries must be
// unique and non-empty, expected ids must be unique and (when grades
// are present) graded, and every gain must lie in (0, 1] — the Table 2
// rubric's range.
func ParseGolden(r io.Reader) (*GoldenSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	set := &GoldenSet{}
	seen := map[string]bool{}
	line := 0
	headerSeen := false
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if !headerSeen {
			if err := decodeStrictLine(raw, &set.Header); err != nil {
				return nil, fmt.Errorf("line %d (header): %w", line, err)
			}
			if err := validateHeader(set.Header); err != nil {
				return nil, fmt.Errorf("line %d (header): %w", line, err)
			}
			headerSeen = true
			continue
		}
		var c GoldenCase
		if err := decodeStrictLine(raw, &c); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if err := validateCase(c); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if seen[c.Query] {
			return nil, fmt.Errorf("line %d: duplicate query %q", line, c.Query)
		}
		seen[c.Query] = true
		set.Cases = append(set.Cases, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !headerSeen {
		return nil, fmt.Errorf("empty file: want a %s header line", GoldenFormat)
	}
	if len(set.Cases) == 0 {
		return nil, fmt.Errorf("no cases after the header")
	}
	return set, nil
}

// decodeStrictLine decodes one JSONL line rejecting unknown fields and
// trailing data.
func decodeStrictLine(raw string, v interface{}) error {
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

func validateHeader(h GoldenHeader) error {
	if h.Format != GoldenFormat {
		return fmt.Errorf("format %q: want %q", h.Format, GoldenFormat)
	}
	if strings.TrimSpace(h.Name) == "" {
		return fmt.Errorf("name must not be empty")
	}
	if h.Corpus != CorpusIMDb && h.Corpus != CorpusUniversity {
		return fmt.Errorf("corpus %q: want %q or %q", h.Corpus, CorpusIMDb, CorpusUniversity)
	}
	switch h.Derive {
	case "", "expert", "schema":
	default:
		return fmt.Errorf("derive %q: want expert or schema", h.Derive)
	}
	if h.K < 0 {
		return fmt.Errorf("negative k %d", h.K)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"precision", h.Floors.Precision}, {"ndcg", h.Floors.NDCG}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("floor %s %v out of [0, 1]", f.name, f.v)
		}
	}
	return nil
}

func validateCase(c GoldenCase) error {
	if strings.TrimSpace(c.Query) == "" {
		return fmt.Errorf("empty query")
	}
	if len(c.Expected) == 0 && len(c.Graded) == 0 {
		return fmt.Errorf("query %q: no expected ids and no graded gains", c.Query)
	}
	ids := map[string]bool{}
	for _, id := range c.Expected {
		if id == "" {
			return fmt.Errorf("query %q: empty expected id", c.Query)
		}
		if ids[id] {
			return fmt.Errorf("query %q: duplicate expected id %q", c.Query, id)
		}
		ids[id] = true
		if len(c.Graded) > 0 {
			if _, ok := c.Graded[id]; !ok {
				return fmt.Errorf("query %q: expected id %q missing from graded", c.Query, id)
			}
		}
	}
	for id, gain := range c.Graded {
		if id == "" {
			return fmt.Errorf("query %q: empty graded id", c.Query)
		}
		if gain <= 0 || gain > 1 {
			return fmt.Errorf("query %q: gain %v for %q out of (0, 1]", c.Query, gain, id)
		}
	}
	return nil
}

// Encode writes the set as canonical JSONL: the header line, then one
// case per line in slice order, with graded keys in encoding/json's
// sorted-key order. Encoding is byte-deterministic, so generated sets
// can be fingerprinted and diffed.
func (s *GoldenSet) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s.Header); err != nil {
		return err
	}
	for _, c := range s.Cases {
		// Keep expected in a canonical order too: curators reorder lists
		// freely, but machine-generated sets should never differ by
		// incidental ordering.
		c.Expected = append([]string(nil), c.Expected...)
		sort.Strings(c.Expected)
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return nil
}
