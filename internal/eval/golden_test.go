package eval

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const validHeader = `{"format":"qunits-golden/1","name":"t","corpus":"imdb","seed":1,"persons":10,"movies":5,"k":5,"floors":{"precision":0.2,"ndcg":0.7}}`

func parse(t *testing.T, lines ...string) (*GoldenSet, error) {
	t.Helper()
	return ParseGolden(strings.NewReader(strings.Join(lines, "\n") + "\n"))
}

func TestParseGoldenValid(t *testing.T) {
	set, err := parse(t, validHeader,
		`{"query":"star wars","expected":["a","b"],"graded":{"a":1,"b":1,"c":0.5}}`,
		``,
		`{"query":"clooney","expected":["d"]}`,
	)
	if err != nil {
		t.Fatal(err)
	}
	if set.Header.Name != "t" || set.Header.EvalK() != 5 || set.Header.Floors.NDCG != 0.7 {
		t.Errorf("header = %+v", set.Header)
	}
	if len(set.Cases) != 2 {
		t.Fatalf("cases = %d, want 2 (blank lines skipped)", len(set.Cases))
	}
	// Graded case uses its grades; binary case derives gain 1 per id.
	if g := set.Cases[0].Gains(); g["c"] != 0.5 || len(g) != 3 {
		t.Errorf("graded gains = %v", g)
	}
	if g := set.Cases[1].Gains(); g["d"] != 1 || len(g) != 1 {
		t.Errorf("binary gains = %v", g)
	}
	if rel := set.Cases[0].RelevantSet(); !rel["a"] || !rel["b"] || rel["c"] {
		t.Errorf("relevant set = %v", rel)
	}
}

func TestParseGoldenRejects(t *testing.T) {
	okCase := `{"query":"q","expected":["a"]}`
	cases := []struct {
		name    string
		lines   []string
		wantErr string
	}{
		{"empty file", nil, "empty file"},
		{"header only", []string{validHeader}, "no cases"},
		{"bad format tag", []string{`{"format":"qunits-golden/9","name":"t","corpus":"imdb","floors":{}}`, okCase}, "format"},
		{"case before header", []string{okCase, okCase}, "header"},
		{"unknown header field", []string{`{"format":"qunits-golden/1","name":"t","corpus":"imdb","floors":{},"bogus":1}`, okCase}, "bogus"},
		{"missing name", []string{`{"format":"qunits-golden/1","corpus":"imdb","floors":{}}`, okCase}, "name"},
		{"unknown corpus", []string{`{"format":"qunits-golden/1","name":"t","corpus":"wiki","floors":{}}`, okCase}, "corpus"},
		{"bad derive", []string{`{"format":"qunits-golden/1","name":"t","corpus":"imdb","derive":"magic","floors":{}}`, okCase}, "derive"},
		{"negative k", []string{`{"format":"qunits-golden/1","name":"t","corpus":"imdb","k":-1,"floors":{}}`, okCase}, "k"},
		{"floor out of range", []string{`{"format":"qunits-golden/1","name":"t","corpus":"imdb","floors":{"precision":1.5}}`, okCase}, "floor"},
		{"unknown case field", []string{validHeader, `{"query":"q","expected":["a"],"note":"hi"}`}, "note"},
		{"trailing garbage", []string{validHeader, okCase + ` {"x":1}`}, "trailing"},
		{"empty query", []string{validHeader, `{"query":"  ","expected":["a"]}`}, "empty query"},
		{"no judgments", []string{validHeader, `{"query":"q"}`}, "no expected"},
		{"empty expected id", []string{validHeader, `{"query":"q","expected":[""]}`}, "empty expected id"},
		{"duplicate expected id", []string{validHeader, `{"query":"q","expected":["a","a"]}`}, "duplicate expected id"},
		{"expected not graded", []string{validHeader, `{"query":"q","expected":["a"],"graded":{"b":1}}`}, "missing from graded"},
		{"gain zero", []string{validHeader, `{"query":"q","expected":["a"],"graded":{"a":0}}`}, "out of (0, 1]"},
		{"gain above one", []string{validHeader, `{"query":"q","expected":["a"],"graded":{"a":1.1}}`}, "out of (0, 1]"},
		{"duplicate query", []string{validHeader, okCase, okCase}, "duplicate query"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.lines...)
			if err == nil {
				t.Fatal("parse accepted a malformed set")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestGoldenEncodeRoundTrip(t *testing.T) {
	set, err := parse(t, validHeader,
		`{"query":"star wars","expected":["b","a"],"graded":{"b":1,"a":1}}`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseGolden(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("encoded set does not re-parse: %v", err)
	}
	// Canonical: expected sorted on output.
	if got := back.Cases[0].Expected; got[0] != "a" || got[1] != "b" {
		t.Errorf("expected not canonicalized: %v", got)
	}
	// Re-encoding is a fixed point.
	var buf2 bytes.Buffer
	if err := back.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Encode is not a fixed point over its own output")
	}
}

// TestBuiltinGoldenSetsParse: the committed sets must always load
// strictly — a broken checked-in golden file should fail tier-1, not
// just `make eval`.
func TestBuiltinGoldenSetsParse(t *testing.T) {
	names := BuiltinGoldenNames()
	if len(names) != 2 {
		t.Fatalf("builtin names = %v", names)
	}
	for _, name := range names {
		set, err := BuiltinGolden(name)
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if set.Header.Name != name || set.Header.Corpus != name {
			t.Errorf("builtin %q header mislabeled: %+v", name, set.Header)
		}
		if len(set.Cases) < 5 {
			t.Errorf("builtin %q has only %d cases — too thin to gate on", name, len(set.Cases))
		}
		if set.Header.Floors.Precision <= 0 || set.Header.Floors.NDCG <= 0 {
			t.Errorf("builtin %q floors %+v must be positive — a zero floor gates nothing", name, set.Header.Floors)
		}
	}
	if _, err := BuiltinGolden("nope"); err == nil {
		t.Error("BuiltinGolden accepted an unknown name")
	}
}

func TestLoadGoldenFromDisk(t *testing.T) {
	if _, err := LoadGolden(t.TempDir() + "/missing.jsonl"); err == nil {
		t.Error("LoadGolden accepted a missing file")
	}
	path := t.TempDir() + "/set.jsonl"
	set, err := parse(t, validHeader, `{"query":"q","expected":["a"]}`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cases) != 1 || loaded.Cases[0].Query != "q" {
		t.Errorf("loaded = %+v", loaded)
	}
}
