package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"strconv"

	"qunits/internal/search"
)

// The evaluation harness runs a golden set through a Searcher and
// reduces the per-query metrics to one SetReport — the BENCH_EVAL.json
// shape cmd/eval writes and the floors gate on. The Searcher seam is
// deliberately minimal: the offline adapter calls the engine directly,
// the online adapter speaks POST /v1/search to a running qunitsd
// (single node, coordinator, or follower), and because serving is
// parity-locked end to end the two must produce identical reports over
// the same corpus — an equality scripts/smoke.sh asserts.

// Searcher answers one query with its ranked qunit instance ids.
type Searcher interface {
	// RankedIDs returns the ids of the top k results, best first.
	RankedIDs(ctx context.Context, query string, k int) ([]string, error)
}

// EngineSearcher is the offline adapter: it queries a search.Engine in
// process.
type EngineSearcher struct {
	Engine *search.Engine
}

// RankedIDs implements Searcher.
func (s EngineSearcher) RankedIDs(ctx context.Context, query string, k int) ([]string, error) {
	resp, err := s.Engine.Search(ctx, search.Request{Query: query, K: k})
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(resp.Results))
	for i, r := range resp.Results {
		ids[i] = r.Instance.ID()
	}
	return ids, nil
}

// ReportFormat tags the report shape cmd/eval writes.
const ReportFormat = "qunits-eval/1"

// Report is the full evaluation artifact (BENCH_EVAL.json): one
// SetReport per golden set. It contains no timestamps or durations —
// the bytes are deterministic for a fixed corpus seed, so reports diff
// cleanly across commits and the determinism tests can pin them.
type Report struct {
	Format string      `json:"format"`
	Sets   []SetReport `json:"sets"`
}

// Pass reports whether every set met its floors.
func (r *Report) Pass() bool {
	for _, s := range r.Sets {
		if !s.Pass {
			return false
		}
	}
	return len(r.Sets) > 0
}

// SetReport is one golden set's evaluation outcome.
type SetReport struct {
	// Name and Corpus identify the set.
	Name   string `json:"name"`
	Corpus string `json:"corpus"`
	// K is the evaluation depth.
	K int `json:"k"`
	// Queries is the number of golden cases evaluated; Answered counts
	// those the system returned at least one result for.
	Queries  int `json:"queries"`
	Answered int `json:"answered"`
	// Precision, Recall, MRR, and NDCG are the means over all cases.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	MRR       float64 `json:"mrr"`
	NDCG      float64 `json:"ndcg"`
	// Floors are the minimums enforced on this run; Pass is the verdict.
	Floors Floors `json:"floors"`
	Pass   bool   `json:"pass"`
	// Fingerprint is a crc64 over the per-query metrics — one value to
	// compare across runs, modes, and machines.
	Fingerprint string `json:"fingerprint"`
	// PerQuery breaks the means down, in golden-set order.
	PerQuery []QueryReport `json:"per_query"`
}

// QueryReport is one golden case's outcome.
type QueryReport struct {
	Query string `json:"query"`
	// Returned is how many results the system produced (≤ k); Relevant
	// is the size of the golden binary-relevance set.
	Returned int `json:"returned"`
	Relevant int `json:"relevant"`
	// Metrics are this query's rank metrics at k.
	Metrics QueryMetrics `json:"metrics"`
}

// EvaluateGolden runs every golden case through the searcher at the
// set's evaluation depth and aggregates the metrics. Floors are copied
// from the set header; pass callers that need different floors
// (cmd/eval's -min-precision/-min-ndcg) CheckFloors afterwards.
func EvaluateGolden(ctx context.Context, s Searcher, set *GoldenSet) (*SetReport, error) {
	k := set.Header.EvalK()
	out := &SetReport{
		Name:    set.Header.Name,
		Corpus:  set.Header.Corpus,
		K:       k,
		Queries: len(set.Cases),
		Floors:  set.Header.Floors,
	}
	for _, c := range set.Cases {
		ranked, err := s.RankedIDs(ctx, c.Query, k)
		if err != nil {
			return nil, fmt.Errorf("eval: query %q: %w", c.Query, err)
		}
		if len(ranked) > 0 {
			out.Answered++
		}
		m := MetricsAtK(ranked, c.RelevantSet(), c.Gains(), k)
		out.PerQuery = append(out.PerQuery, QueryReport{
			Query:    c.Query,
			Returned: len(ranked),
			Relevant: len(c.Expected),
			Metrics:  m,
		})
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.MRR += m.MRR
		out.NDCG += m.NDCG
	}
	n := float64(len(set.Cases))
	out.Precision /= n
	out.Recall /= n
	out.MRR /= n
	out.NDCG /= n
	out.Pass = out.Precision >= out.Floors.Precision && out.NDCG >= out.Floors.NDCG
	out.Fingerprint = fingerprintReport(out)
	return out, nil
}

// WriteReport marshals the report as indented JSON to path — the
// BENCH_EVAL.json artifact. The bytes are deterministic for fixed
// inputs (no timestamps, stable field order).
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckFloors re-gates a report against explicit floors (overriding the
// committed ones), updating Floors and Pass in place.
func (r *SetReport) CheckFloors(f Floors) {
	r.Floors = f
	r.Pass = r.Precision >= f.Precision && r.NDCG >= f.NDCG
}

// fingerprintReport digests the per-query metrics (not the verdict or
// floors — those are policy, not measurement) so two runs measuring the
// same ranking agree on one short value.
func fingerprintReport(r *SetReport) string {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	writeF := func(v float64) {
		io.WriteString(h, strconv.FormatFloat(v, 'g', -1, 64))
		h.Write([]byte{0x1f})
	}
	io.WriteString(h, r.Name)
	h.Write([]byte{0})
	io.WriteString(h, strconv.Itoa(r.K))
	h.Write([]byte{0})
	for _, q := range r.PerQuery {
		io.WriteString(h, q.Query)
		h.Write([]byte{0x1f})
		io.WriteString(h, strconv.Itoa(q.Returned))
		h.Write([]byte{0x1f})
		writeF(q.Metrics.Precision)
		writeF(q.Metrics.Recall)
		writeF(q.Metrics.MRR)
		writeF(q.Metrics.NDCG)
		h.Write([]byte{0x1e})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
