package eval

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// stubSearcher answers from a fixed query → ranking table.
type stubSearcher map[string][]string

func (s stubSearcher) RankedIDs(_ context.Context, query string, k int) ([]string, error) {
	ids := s[query]
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids, nil
}

// errSearcher fails every query.
type errSearcher struct{}

func (errSearcher) RankedIDs(context.Context, string, int) ([]string, error) {
	return nil, fmt.Errorf("backend down")
}

func stubSet() *GoldenSet {
	return &GoldenSet{
		Header: GoldenHeader{
			Format: GoldenFormat, Name: "stub", Corpus: CorpusIMDb, K: 2,
			Floors: Floors{Precision: 0.5, NDCG: 0.5},
		},
		Cases: []GoldenCase{
			{Query: "hit", Expected: []string{"a"}, Graded: map[string]float64{"a": 1, "b": 0.5}},
			{Query: "miss", Expected: []string{"z"}},
		},
	}
}

func TestEvaluateGoldenAggregation(t *testing.T) {
	s := stubSearcher{
		"hit":  {"a", "b", "c"}, // truncated to k=2
		"miss": {"q", "r"},
	}
	sr, err := EvaluateGolden(context.Background(), s, stubSet())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Queries != 2 || sr.Answered != 2 || sr.K != 2 {
		t.Errorf("counts: %+v", sr)
	}
	// hit: precision 1/2, recall 1, mrr 1, ndcg 1 (ideal at k=2 is the
	// returned order). miss: all zero. Means halve them.
	approx(t, "precision", sr.Precision, 0.25)
	approx(t, "recall", sr.Recall, 0.5)
	approx(t, "mrr", sr.MRR, 0.5)
	approx(t, "ndcg", sr.NDCG, 0.5)
	if sr.Pass {
		t.Error("pass = true, want false (precision 0.25 under floor 0.5)")
	}
	if len(sr.PerQuery) != 2 || sr.PerQuery[0].Returned != 2 || sr.PerQuery[1].Relevant != 1 {
		t.Errorf("per-query: %+v", sr.PerQuery)
	}
	if sr.Fingerprint == "" {
		t.Error("fingerprint empty")
	}

	// Overriding the floors re-gates without touching the measurement.
	fp := sr.Fingerprint
	sr.CheckFloors(Floors{Precision: 0.2, NDCG: 0.4})
	if !sr.Pass || sr.Floors.Precision != 0.2 {
		t.Errorf("after CheckFloors: %+v", sr)
	}
	if sr.Fingerprint != fp {
		t.Error("CheckFloors changed the fingerprint — floors are policy, not measurement")
	}

	// A report passes only when every set does, and an empty report never
	// passes.
	if (&Report{}).Pass() {
		t.Error("empty report passes")
	}
	r := &Report{Sets: []SetReport{*sr, {Pass: false}}}
	if r.Pass() {
		t.Error("report with a failing set passes")
	}

	if _, err := EvaluateGolden(context.Background(), errSearcher{}, stubSet()); err == nil || !strings.Contains(err.Error(), "backend down") {
		t.Errorf("searcher error not surfaced: %v", err)
	}
}

func TestWriteReport(t *testing.T) {
	path := t.TempDir() + "/r.json"
	r := &Report{Format: ReportFormat, Sets: []SetReport{{Name: "x", Pass: true}}}
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(a) != string(b) {
		t.Error("WriteReport bytes differ across identical writes")
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Error("report file missing trailing newline")
	}
}

func TestHTTPSearcher(t *testing.T) {
	var gotBody string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/search" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		buf := make([]byte, 1024)
		n, _ := r.Body.Read(buf)
		gotBody = string(buf[:n])
		switch {
		case strings.Contains(gotBody, "boom"):
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":{"code":"invalid_argument","message":"bad query"}}`)
		case strings.Contains(gotBody, "garbled"):
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, "not json at all")
		case strings.Contains(gotBody, "badjson"):
			fmt.Fprint(w, "{")
		default:
			fmt.Fprint(w, `{"results":[{"id":"a"},{"id":"b"}],"total":2}`)
		}
	}))
	defer srv.Close()

	// Trailing slash on the base URL must not double up.
	s := HTTPSearcher{BaseURL: srv.URL + "/"}
	ids, err := s.RankedIDs(context.Background(), "star wars", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ids = %v", ids)
	}
	if !strings.Contains(gotBody, `"k":5`) || !strings.Contains(gotBody, `"query":"star wars"`) {
		t.Errorf("request body = %s", gotBody)
	}

	if _, err := s.RankedIDs(context.Background(), "boom", 5); err == nil || !strings.Contains(err.Error(), "invalid_argument") {
		t.Errorf("error envelope not decoded: %v", err)
	}
	if _, err := s.RankedIDs(context.Background(), "garbled", 5); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("non-JSON error not surfaced: %v", err)
	}
	if _, err := s.RankedIDs(context.Background(), "badjson", 5); err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Errorf("malformed reply not surfaced: %v", err)
	}

	down := HTTPSearcher{BaseURL: "http://127.0.0.1:1"}
	if _, err := down.RankedIDs(context.Background(), "q", 1); err == nil {
		t.Error("connection failure not surfaced")
	}
}
