package eval

import (
	"math/rand"
	"sort"

	"qunits/internal/relational"
)

// scoredRow orders tuples by a numeric aggregate, descending, with RowID
// tiebreak.
type scoredRow struct {
	id  int
	val float64
}

func sortRows(rows []scoredRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].val != rows[j].val {
			return rows[i].val > rows[j].val
		}
		return rows[i].id < rows[j].id
	})
}

// SystemResult is what a search system returns for one query, reduced to
// the terms the evaluation understands: the rendered text and the tuples
// the result presents.
type SystemResult struct {
	Text   string
	Tuples []relational.TupleRef
}

// Rubric is the paper's Table 2, encoded:
//
//	0.0  provides incorrect information / no information above the query
//	0.5  correct but incomplete, or correct but excessive
//	1.0  provides correct information
//
// Score maps a result to the rubric value an ideal careful judge would
// assign, given the need oracle.
func (o *Oracle) Score(need Need, res SystemResult) float64 {
	if len(res.Tuples) == 0 {
		return 0
	}
	required := o.Required(need)
	if len(required) == 0 {
		return 0 // unverifiable intent: nothing can be judged correct
	}
	anchorSet := map[relational.TupleRef]bool{}
	for _, a := range need.Anchor {
		anchorSet[a] = true
	}
	for _, b := range need.Other {
		anchorSet[b] = true
	}
	// "Provides no information above the query": the result restates the
	// queried entities and nothing else.
	info := false
	for _, t := range res.Tuples {
		if !anchorSet[t] {
			info = true
			break
		}
	}
	if !info {
		return 0
	}
	reqSet := map[relational.TupleRef]bool{}
	for _, r := range required {
		reqSet[r] = true
	}
	covered := 0
	for _, t := range res.Tuples {
		if reqSet[t] {
			covered++
		}
	}
	coverage := float64(covered) / float64(len(required))
	extra := 0
	for _, t := range res.Tuples {
		if !reqSet[t] && !anchorSet[t] {
			extra++
		}
	}
	excess := float64(extra) / float64(len(res.Tuples))

	switch {
	case coverage >= 0.75 && excess <= 0.25:
		return 1.0
	case coverage >= 0.75:
		return 0.5 // correct but excessive
	case coverage >= 0.25:
		return 0.5 // correct but incomplete
	default:
		return 0
	}
}

// Judge is one simulated survey participant. With probability Noise the
// judge drifts one rubric step from the oracle's assessment —
// disagreement of the kind real Turk panels show. Borderline results
// (oracle 0.5, "correct but incomplete/excessive") provoke three times
// the disagreement of clear-cut ones, matching the intuition that humans
// argue about partial credit, not about perfect or useless answers.
type Judge struct {
	Noise float64
	r     *rand.Rand
}

// Rate returns the judge's rubric rating for a result the oracle scored.
func (j *Judge) Rate(oracle float64) float64 {
	noise := j.Noise
	if oracle == 0.5 {
		noise *= 3
		if noise > 0.45 {
			noise = 0.45
		}
	}
	if j.r.Float64() >= noise {
		return oracle
	}
	if j.r.Intn(2) == 0 {
		oracle += 0.5
	} else {
		oracle -= 0.5
	}
	if oracle < 0 {
		return 0
	}
	if oracle > 1 {
		return 1
	}
	return oracle
}

// Panel is a set of judges, the stand-in for the paper's 20 Mechanical
// Turk workers.
type Panel struct {
	judges []*Judge
}

// NewPanel creates n judges with the given noise, deterministically
// seeded.
func NewPanel(n int, noise float64, seed int64) *Panel {
	r := rand.New(rand.NewSource(seed))
	p := &Panel{}
	for i := 0; i < n; i++ {
		p.judges = append(p.judges, &Judge{Noise: noise, r: rand.New(rand.NewSource(r.Int63()))})
	}
	return p
}

// Size returns the number of judges.
func (p *Panel) Size() int { return len(p.judges) }

// Rate collects every judge's rating for a result.
func (p *Panel) Rate(oracle float64) []float64 {
	out := make([]float64, len(p.judges))
	for i, j := range p.judges {
		out[i] = j.Rate(oracle)
	}
	return out
}

// Mean averages a rating slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// MajorityShare returns the fraction of ratings agreeing with the modal
// rating — the paper reports "a third of the questions having an 80% or
// higher majority for the winning answer".
func MajorityShare(ratings []float64) float64 {
	if len(ratings) == 0 {
		return 0
	}
	counts := map[float64]int{}
	for _, r := range ratings {
		counts[r]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(len(ratings))
}
