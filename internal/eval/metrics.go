package eval

import (
	"math"
	"sort"
)

// This file is the one place rank-quality arithmetic lives. The Figure 3
// experiment (internal/experiments) and the relevance gate (cmd/eval)
// both compute their numbers through it, so the one-shot reproduction
// and the continuously-enforced CI gate can never drift apart.

// QueryMetrics are the rank metrics for one query's result list against
// its golden relevance judgments.
type QueryMetrics struct {
	// Precision is Precision@k: relevant results in the top k over k.
	Precision float64 `json:"precision"`
	// Recall is Recall@k: relevant results in the top k over all
	// relevant ids.
	Recall float64 `json:"recall"`
	// MRR is the reciprocal rank of the first relevant result (0 when
	// none of the top k is relevant).
	MRR float64 `json:"mrr"`
	// NDCG is NDCG@k over the graded gains: DCG of the returned order
	// divided by the DCG of the ideal order.
	NDCG float64 `json:"ndcg"`
}

// MetricsAtK computes the rank metrics for one ranked id list.
//
//	ranked   the system's results, best first; ids must be unique.
//	relevant the binary-relevant id set (the golden "expected" ids).
//	gains    graded gain per id for NDCG; ids absent from the map gain 0.
//	k        the evaluation depth; only ranked[:k] is scored.
//
// Tie handling is deterministic by construction: the ranked order is the
// engine's (score desc, instance ID asc) total order, and the ideal DCG
// depends only on the multiset of gains, so equal gains cannot perturb
// it. k must be positive.
func MetricsAtK(ranked []string, relevant map[string]bool, gains map[string]float64, k int) QueryMetrics {
	if k <= 0 {
		return QueryMetrics{}
	}
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	var m QueryMetrics
	hits := 0
	dcg := 0.0
	for i, id := range ranked {
		if relevant[id] {
			hits++
			if m.MRR == 0 {
				m.MRR = 1 / float64(i+1)
			}
		}
		dcg += gains[id] / math.Log2(float64(i)+2)
	}
	m.Precision = float64(hits) / float64(k)
	if len(relevant) > 0 {
		m.Recall = float64(hits) / float64(len(relevant))
	}
	if ideal := idealDCG(gains, k); ideal > 0 {
		m.NDCG = dcg / ideal
	}
	return m
}

// idealDCG is the DCG of the best possible ordering: all graded gains
// sorted descending, truncated at k.
func idealDCG(gains map[string]float64, k int) float64 {
	sorted := make([]float64, 0, len(gains))
	for _, g := range gains {
		sorted = append(sorted, g)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	ideal := 0.0
	for i, g := range sorted {
		ideal += g / math.Log2(float64(i)+2)
	}
	return ideal
}

// HighAgreementThreshold is the judge-majority share the paper calls
// high agreement ("a third of the questions having an 80% or higher
// majority for the winning answer").
const HighAgreementThreshold = 0.8

// Scorecard accumulates per-query judge-panel ratings into the summary
// statistics the Figure 3 experiment reports: the mean relevance, the
// per-query means, the per-need-kind breakdown, and the judge-agreement
// tally. It is the shared aggregation the experiment must route through
// (its private loop used to duplicate this arithmetic).
type Scorecard struct {
	perQuery   []float64
	kindSums   map[NeedKind]float64
	kindCounts map[NeedKind]int
	cells      int
	high       int
}

// NewScorecard returns an empty scorecard.
func NewScorecard() *Scorecard {
	return &Scorecard{kindSums: map[NeedKind]float64{}, kindCounts: map[NeedKind]int{}}
}

// Add folds one query's panel ratings in and returns the query's panel
// mean.
func (s *Scorecard) Add(kind NeedKind, ratings []float64) float64 {
	mean := Mean(ratings)
	s.perQuery = append(s.perQuery, mean)
	s.kindSums[kind] += mean
	s.kindCounts[kind]++
	s.cells++
	if MajorityShare(ratings) >= HighAgreementThreshold {
		s.high++
	}
	return mean
}

// Mean is the mean of the per-query panel means — one system's bar in
// Figure 3.
func (s *Scorecard) Mean() float64 { return Mean(s.perQuery) }

// PerQuery returns the per-query panel means in Add order.
func (s *Scorecard) PerQuery() []float64 { return s.perQuery }

// ByKind returns the mean relevance per need kind.
func (s *Scorecard) ByKind() map[NeedKind]float64 {
	out := make(map[NeedKind]float64, len(s.kindSums))
	for k, sum := range s.kindSums {
		out[k] = sum / float64(s.kindCounts[k])
	}
	return out
}

// Cells returns the number of (query, ratings) cells added.
func (s *Scorecard) Cells() int { return s.cells }

// HighAgreement returns how many added cells reached the
// high-agreement majority threshold.
func (s *Scorecard) HighAgreement() int { return s.high }
