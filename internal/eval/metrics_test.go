package eval

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestMetricsAtKHandComputed(t *testing.T) {
	// Ranked: [a b c d e], relevant {a, c, f}, graded a=1, c=0.5, f=1, k=5.
	ranked := []string{"a", "b", "c", "d", "e"}
	relevant := map[string]bool{"a": true, "c": true, "f": true}
	gains := map[string]float64{"a": 1, "c": 0.5, "f": 1}
	m := MetricsAtK(ranked, relevant, gains, 5)
	approx(t, "precision", m.Precision, 2.0/5)
	approx(t, "recall", m.Recall, 2.0/3)
	approx(t, "mrr", m.MRR, 1.0)
	// DCG  = 1/log2(2) + 0.5/log2(4) = 1 + 0.25
	// IDCG = 1/log2(2) + 1/log2(3) + 0.5/log2(4)
	wantDCG := 1.0 + 0.5/2
	wantIdeal := 1.0 + 1.0/math.Log2(3) + 0.5/2
	approx(t, "ndcg", m.NDCG, wantDCG/wantIdeal)
}

func TestMetricsAtKTruncatesToK(t *testing.T) {
	ranked := []string{"x", "y", "a"} // relevant a is at rank 3
	relevant := map[string]bool{"a": true}
	gains := map[string]float64{"a": 1}
	m := MetricsAtK(ranked, relevant, gains, 2)
	approx(t, "precision", m.Precision, 0)
	approx(t, "recall", m.Recall, 0)
	approx(t, "mrr", m.MRR, 0)
	approx(t, "ndcg", m.NDCG, 0)
	m = MetricsAtK(ranked, relevant, gains, 3)
	approx(t, "precision@3", m.Precision, 1.0/3)
	approx(t, "mrr@3", m.MRR, 1.0/3)
}

func TestMetricsAtKEdgeCases(t *testing.T) {
	// No results at all.
	m := MetricsAtK(nil, map[string]bool{"a": true}, map[string]float64{"a": 1}, 10)
	if m != (QueryMetrics{}) {
		t.Errorf("empty ranking scored %+v, want zeros", m)
	}
	// Nothing relevant and no gains: all metrics zero, no division blowups.
	m = MetricsAtK([]string{"a", "b"}, nil, nil, 10)
	if m != (QueryMetrics{}) {
		t.Errorf("no-judgment case scored %+v, want zeros", m)
	}
	// Non-positive k.
	if m := MetricsAtK([]string{"a"}, map[string]bool{"a": true}, nil, 0); m != (QueryMetrics{}) {
		t.Errorf("k=0 scored %+v, want zeros", m)
	}
	// Perfect single-result answer.
	m = MetricsAtK([]string{"a"}, map[string]bool{"a": true}, map[string]float64{"a": 1}, 1)
	approx(t, "precision", m.Precision, 1)
	approx(t, "recall", m.Recall, 1)
	approx(t, "mrr", m.MRR, 1)
	approx(t, "ndcg", m.NDCG, 1)
}

// TestMetricsIdealDCGOrderIndependent: NDCG's ideal normalizer depends
// only on the multiset of gains, so equal-gain ties cannot perturb it —
// the determinism the gate relies on.
func TestMetricsIdealDCGOrderIndependent(t *testing.T) {
	gains := map[string]float64{"a": 0.5, "b": 1, "c": 0.5, "d": 1}
	first := idealDCG(gains, 3)
	for i := 0; i < 50; i++ {
		if got := idealDCG(gains, 3); got != first {
			t.Fatalf("idealDCG varied across calls: %v then %v", first, got)
		}
	}
	want := 1.0 + 1.0/math.Log2(3) + 0.5/2
	approx(t, "idealDCG", first, want)
}

func TestScorecardMatchesDirectArithmetic(t *testing.T) {
	card := NewScorecard()
	// Two profile queries and one aspect query; the aspect panel splits,
	// so only the unanimous cells count as high agreement.
	if got := card.Add(NeedProfile, []float64{1, 1, 1, 1, 1}); got != 1 {
		t.Errorf("Add returned %v, want 1", got)
	}
	card.Add(NeedProfile, []float64{0, 0, 0, 0, 0})
	card.Add(NeedAspect, []float64{1, 0.5, 0, 1, 0.5})
	approx(t, "mean", card.Mean(), (1+0+0.6)/3)
	if got := card.PerQuery(); len(got) != 3 || got[2] != 0.6 {
		t.Errorf("PerQuery = %v", got)
	}
	byKind := card.ByKind()
	approx(t, "profile mean", byKind[NeedProfile], 0.5)
	approx(t, "aspect mean", byKind[NeedAspect], 0.6)
	if card.Cells() != 3 {
		t.Errorf("Cells = %d, want 3", card.Cells())
	}
	if card.HighAgreement() != 2 {
		t.Errorf("HighAgreement = %d, want 2 (the unanimous panels)", card.HighAgreement())
	}
}
