// Package eval is the evaluation harness for the reproduction: it models
// information needs, scores system results against a need oracle using
// the paper's Table 2 rubric, simulates the 20-judge Mechanical Turk
// panel, and simulates the five-user study behind Table 1.
//
// The paper's evaluation relied on human judgment, which a reproduction
// cannot re-run; the substitution is an explicit oracle (what tuples does
// this information need require?) plus noisy simulated judges, giving the
// same statistic Figure 3 plots — mean relevance per system — with
// controllable noise.
package eval

import (
	"strings"

	"qunits/internal/ir"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

// NeedKind classifies an information need.
type NeedKind uint8

// The need kinds.
const (
	// NeedUnknown: no recognizable intent (free text); the oracle cannot
	// verify any result.
	NeedUnknown NeedKind = iota
	// NeedProfile: everything salient about one entity ("george
	// clooney").
	NeedProfile
	// NeedAspect: a specific aspect of one entity ("star wars cast").
	NeedAspect
	// NeedConnection: how two entities relate ("angelina jolie tomb
	// raider").
	NeedConnection
	// NeedComplex: an aggregate question ("highest box office revenue").
	NeedComplex
)

// String names the kind.
func (k NeedKind) String() string {
	switch k {
	case NeedProfile:
		return "profile"
	case NeedAspect:
		return "aspect"
	case NeedConnection:
		return "connection"
	case NeedComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// Need is one information need, derived from a benchmark query by gold
// segmentation (the queries were generated from entities, so segmentation
// recovers the generating intent).
type Need struct {
	// Kind classifies the need.
	Kind NeedKind
	// Query is the original keyword query.
	Query string
	// Anchor is the primary entity's tuples (several for remakes).
	Anchor []relational.TupleRef
	// Other is the secondary entity's tuples for connection needs.
	Other []relational.TupleRef
	// AspectTable is the target table for aspect needs.
	AspectTable string
}

// NeedFromQuery derives the gold information need for a query.
func NeedFromQuery(seg *segment.Segmenter, query string) Need {
	sg := seg.Segment(query)
	need := Need{Query: query}
	if isComplex(sg) {
		need.Kind = NeedComplex
		return need
	}
	entities := sg.Entities()
	// Only label-column entities of entity tables count as anchors;
	// incidental matches (a keyword, a role word) are not what the user
	// names.
	var anchors []segment.Segment
	for _, e := range entities {
		if labelRefs(e) != nil {
			anchors = append(anchors, e)
		}
	}
	switch {
	case len(anchors) == 0:
		need.Kind = NeedUnknown
	case len(anchors) >= 2:
		need.Kind = NeedConnection
		need.Anchor = labelRefs(anchors[0])
		need.Other = labelRefs(anchors[1])
	default:
		need.Anchor = labelRefs(anchors[0])
		attrs := sg.Attributes()
		aspect := ""
		for _, a := range attrs {
			if a.Table != anchors[0].Type.Table {
				aspect = a.Table
				break
			}
		}
		if aspect != "" {
			need.Kind = NeedAspect
			need.AspectTable = aspect
		} else {
			need.Kind = NeedProfile
		}
	}
	return need
}

// labelRefs returns the tuples a segment's phrase names through a label
// column, or nil when the segment is not an entity name.
func labelRefs(s segment.Segment) []relational.TupleRef {
	var out []relational.TupleRef
	for _, e := range s.Entries {
		if e.IsLabel && e.Type == s.Type {
			out = append(out, e.Ref)
		}
	}
	return out
}

var aggregateWords = map[string]bool{
	"highest": true, "best": true, "top": true, "most": true,
	"worst": true, "lowest": true, "greatest": true, "biggest": true,
}

func isComplex(sg segment.Segmentation) bool {
	for _, s := range sg.Segments {
		if s.Kind != segment.KindEntity {
			for _, tok := range strings.Fields(s.Text) {
				if aggregateWords[tok] {
					return true
				}
			}
		}
	}
	return false
}

// Oracle computes required tuples for needs and scores results with the
// Table 2 rubric.
type Oracle struct {
	db *relational.Database
	// ProfileTables lists, per entity table, the referencing/related
	// tables whose tuples a profile must include (the salient aspects).
	ProfileTables map[string][]string
}

// NewOracle creates an oracle. profileTables may be nil, in which case
// profiles require only the entity's directly referenced dimension rows.
func NewOracle(db *relational.Database, profileTables map[string][]string) *Oracle {
	return &Oracle{db: db, ProfileTables: profileTables}
}

// Required returns the payload tuples the need demands — deliberately
// excluding the anchor tuples themselves, since restating the query's
// entity provides "no information above the query".
func (o *Oracle) Required(need Need) []relational.TupleRef {
	switch need.Kind {
	case NeedProfile:
		return o.profileTuples(need.Anchor)
	case NeedAspect:
		return o.aspectTuples(need.Anchor, need.AspectTable)
	case NeedConnection:
		return o.connectionTuples(need.Anchor, need.Other)
	case NeedComplex:
		return o.complexTuples(need.Query)
	default:
		return nil
	}
}

// profileTuples: the salient aspects of each anchor.
func (o *Oracle) profileTuples(anchors []relational.TupleRef) []relational.TupleRef {
	set := newRefSet()
	for _, a := range anchors {
		salient := map[string]bool{}
		for _, tn := range o.ProfileTables[a.Table] {
			salient[tn] = true
		}
		// Directly referenced dimension rows are always salient: they are
		// the entity's own attributes, merely normalized away.
		t := o.db.Table(a.Table)
		for _, fk := range t.Schema().ForeignKeys {
			if refTable, refRow, ok := o.db.Resolve(a.Table, a.Row, fk.Column); ok {
				set.add(relational.TupleRef{Table: refTable, Row: refRow})
			}
		}
		// Referencing fact rows in salient tables, with their far-side
		// resolutions.
		for _, ref := range o.db.ReferencingRows(a.Table, a.Row) {
			if !salient[ref.Table] {
				continue
			}
			set.add(ref)
			o.addFarSides(set, ref, a.Table)
		}
	}
	return set.slice()
}

// aspectTuples: the tuples presenting one aspect of the anchors.
func (o *Oracle) aspectTuples(anchors []relational.TupleRef, aspect string) []relational.TupleRef {
	set := newRefSet()
	for _, a := range anchors {
		// Direct dimension: the anchor's FK resolves into the aspect
		// table.
		t := o.db.Table(a.Table)
		for _, fk := range t.Schema().ForeignKeys {
			if fk.RefTable != aspect {
				continue
			}
			if refTable, refRow, ok := o.db.Resolve(a.Table, a.Row, fk.Column); ok {
				set.add(relational.TupleRef{Table: refTable, Row: refRow})
			}
		}
		// Referencing fact rows in the aspect table.
		for _, ref := range o.db.ReferencingRows(a.Table, a.Row) {
			if ref.Table == aspect {
				set.add(ref)
				o.addFarSides(set, ref, a.Table)
				continue
			}
			// Fact row leading to the aspect table (person → cast →
			// movie when the aspect is movie).
			fact := o.db.Table(ref.Table)
			for _, fk := range fact.Schema().ForeignKeys {
				if fk.RefTable != aspect {
					continue
				}
				if refTable, refRow, ok := o.db.Resolve(ref.Table, ref.Row, fk.Column); ok {
					set.add(ref)
					set.add(relational.TupleRef{Table: refTable, Row: refRow})
				}
			}
		}
	}
	return set.slice()
}

// addFarSides resolves a fact row's other foreign keys (the person of a
// cast row when anchored on the movie).
func (o *Oracle) addFarSides(set *refSet, fact relational.TupleRef, anchorTable string) {
	t := o.db.Table(fact.Table)
	for _, fk := range t.Schema().ForeignKeys {
		if fk.RefTable == anchorTable {
			continue
		}
		if refTable, refRow, ok := o.db.Resolve(fact.Table, fact.Row, fk.Column); ok {
			set.add(relational.TupleRef{Table: refTable, Row: refRow})
		}
	}
}

// connectionTuples: the fact rows linking the two entity sets. When the
// entities share no link, the best answer simply presents both, so the
// requirement falls back to the union of both anchor sets.
func (o *Oracle) connectionTuples(a, b []relational.TupleRef) []relational.TupleRef {
	set := newRefSet()
	bByTable := map[string]map[int]bool{}
	for _, ref := range b {
		m := bByTable[ref.Table]
		if m == nil {
			m = map[int]bool{}
			bByTable[ref.Table] = m
		}
		m[ref.Row] = true
	}
	for _, ar := range a {
		for _, fact := range o.db.ReferencingRows(ar.Table, ar.Row) {
			factT := o.db.Table(fact.Table)
			for _, fk := range factT.Schema().ForeignKeys {
				refTable, refRow, ok := o.db.Resolve(fact.Table, fact.Row, fk.Column)
				if !ok {
					continue
				}
				if bByTable[refTable][refRow] {
					set.add(fact)
					set.add(relational.TupleRef{Table: refTable, Row: refRow})
				}
			}
		}
	}
	if set.len() == 0 {
		// Same-table entities (two people): connected through a shared
		// far-side entity (a movie both appear in).
		shared := o.sharedFarSide(a, b)
		for _, ref := range shared {
			set.add(ref)
		}
	}
	if set.len() == 0 {
		for _, ref := range append(append([]relational.TupleRef(nil), a...), b...) {
			set.add(ref)
		}
	}
	return set.slice()
}

// sharedFarSide finds fact rows of a and b that resolve to the same
// far-side tuple, returning the fact rows plus the shared tuples.
func (o *Oracle) sharedFarSide(a, b []relational.TupleRef) []relational.TupleRef {
	type farKey struct {
		table string
		row   int
	}
	aFar := map[farKey][]relational.TupleRef{}
	collect := func(anchors []relational.TupleRef, into map[farKey][]relational.TupleRef) {
		for _, ar := range anchors {
			for _, fact := range o.db.ReferencingRows(ar.Table, ar.Row) {
				factT := o.db.Table(fact.Table)
				for _, fk := range factT.Schema().ForeignKeys {
					if fk.RefTable == ar.Table {
						continue
					}
					if refTable, refRow, ok := o.db.Resolve(fact.Table, fact.Row, fk.Column); ok {
						k := farKey{refTable, refRow}
						into[k] = append(into[k], fact)
					}
				}
			}
		}
	}
	collect(a, aFar)
	bFar := map[farKey][]relational.TupleRef{}
	collect(b, bFar)
	set := newRefSet()
	for k, aFacts := range aFar {
		bFacts, ok := bFar[k]
		if !ok {
			continue
		}
		set.add(relational.TupleRef{Table: k.table, Row: k.row})
		for _, f := range aFacts {
			set.add(f)
		}
		for _, f := range bFacts {
			set.add(f)
		}
	}
	return set.slice()
}

// complexTuples handles the aggregate templates the synthetic log
// contains: box-office leaders, top-rated-by-genre, most-awarded.
func (o *Oracle) complexTuples(query string) []relational.TupleRef {
	q := " " + ir.Normalize(query) + " "
	switch {
	case strings.Contains(q, "box office") || strings.Contains(q, "grossing") || strings.Contains(q, "revenue"):
		return o.topByColumn("boxoffice", "gross", "movie_id", 1)
	case strings.Contains(q, "awarded") || strings.Contains(q, "awards"):
		return o.mostReferenced("movie_award", "movie_id", 1)
	case strings.Contains(q, "rated") || strings.Contains(q, " best ") || strings.Contains(q, " top "):
		return o.topRatedMovies(3)
	default:
		return nil
	}
}

func (o *Oracle) topByColumn(table, valueCol, fkCol string, n int) []relational.TupleRef {
	t := o.db.Table(table)
	if t == nil {
		return nil
	}
	var best []scoredRow
	vi, _ := t.Schema().ColumnIndex(valueCol)
	t.Scan(func(id int, r relational.Row) bool {
		best = append(best, scoredRow{id: id, val: r[vi].AsFloat()})
		return true
	})
	if len(best) == 0 {
		return nil
	}
	sortRows(best)
	set := newRefSet()
	for i := 0; i < n && i < len(best); i++ {
		ref := relational.TupleRef{Table: table, Row: best[i].id}
		set.add(ref)
		if refTable, refRow, ok := o.db.Resolve(table, best[i].id, fkCol); ok {
			set.add(relational.TupleRef{Table: refTable, Row: refRow})
		}
	}
	return set.slice()
}

func (o *Oracle) mostReferenced(table, fkCol string, n int) []relational.TupleRef {
	t := o.db.Table(table)
	if t == nil {
		return nil
	}
	counts := map[relational.Value][]int{}
	ci, _ := t.Schema().ColumnIndex(fkCol)
	t.Scan(func(id int, r relational.Row) bool {
		counts[r[ci]] = append(counts[r[ci]], id)
		return true
	})
	bestVal := relational.Null()
	bestN := 0
	for v, ids := range counts {
		if len(ids) > bestN || (len(ids) == bestN && v.Compare(bestVal) < 0) {
			bestVal, bestN = v, len(ids)
		}
	}
	if bestN == 0 {
		return nil
	}
	set := newRefSet()
	fk, _ := t.Schema().ForeignKeyOn(fkCol)
	if ref := o.db.Table(fk.RefTable); ref != nil {
		if id, ok := ref.LookupPK(bestVal); ok {
			set.add(relational.TupleRef{Table: fk.RefTable, Row: id})
		}
	}
	for _, id := range counts[bestVal] {
		set.add(relational.TupleRef{Table: table, Row: id})
	}
	_ = n
	return set.slice()
}

func (o *Oracle) topRatedMovies(n int) []relational.TupleRef {
	t := o.db.Table("movie")
	if t == nil {
		return nil
	}
	ri, ok := t.Schema().ColumnIndex("rating")
	if !ok {
		return nil
	}
	var best []scoredRow
	t.Scan(func(id int, r relational.Row) bool {
		best = append(best, scoredRow{id: id, val: r[ri].AsFloat()})
		return true
	})
	sortRows(best)
	set := newRefSet()
	for i := 0; i < n && i < len(best); i++ {
		set.add(relational.TupleRef{Table: "movie", Row: best[i].id})
	}
	return set.slice()
}

// refSet is an insertion-ordered set of tuple refs.
type refSet struct {
	seen map[relational.TupleRef]bool
	out  []relational.TupleRef
}

func newRefSet() *refSet { return &refSet{seen: map[relational.TupleRef]bool{}} }

func (s *refSet) add(r relational.TupleRef) {
	if !s.seen[r] {
		s.seen[r] = true
		s.out = append(s.out, r)
	}
}

func (s *refSet) len() int                     { return len(s.out) }
func (s *refSet) slice() []relational.TupleRef { return s.out }
