package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"qunits/internal/server"
)

// HTTPSearcher is the online adapter: it evaluates through a running
// qunitsd's POST /v1/search, so the gate exercises the whole serving
// stack — request decoding, the result cache, and (against a
// coordinator) the scatter-gather merge — not just the engine. It
// reuses the server package's wire types, so the eval client and the
// serving surface cannot drift apart.
type HTTPSearcher struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Any /v1
	// role that serves searches works: single, coordinator, partition
	// primary, or follower.
	BaseURL string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

// RankedIDs implements Searcher.
func (s HTTPSearcher) RankedIDs(ctx context.Context, query string, k int) ([]string, error) {
	body, err := json.Marshal(server.V1SearchRequest{Query: query, K: &k})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(s.BaseURL, "/")+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error server.V1Error `json:"error"`
		}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			return nil, fmt.Errorf("eval: /v1/search %d: %s: %s", resp.StatusCode, envelope.Error.Code, envelope.Error.Message)
		}
		return nil, fmt.Errorf("eval: /v1/search %d: %s", resp.StatusCode, data)
	}
	var sr server.V1SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("eval: decoding /v1/search reply: %w", err)
	}
	ids := make([]string, len(sr.Results))
	for i, r := range sr.Results {
		ids[i] = r.ID
	}
	return ids, nil
}
