package eval

import (
	"math/rand"
	"testing"

	"qunits/internal/relational"
)

// Oracle monotonicity properties: the rubric must behave sanely under
// perturbation of the result set.

func TestOracleMonotonicity(t *testing.T) {
	_, seg, oracle := fixture(t)
	r := rand.New(rand.NewSource(71))
	queries := []string{
		"star wars cast", "george clooney", "tom hanks movies",
		"star wars", "batman trivia",
	}
	for _, q := range queries {
		need := NeedFromQuery(seg, q)
		required := oracle.Required(need)
		if len(required) == 0 {
			continue
		}
		full := append(append([]relational.TupleRef(nil), required...), need.Anchor...)
		fullScore := oracle.Score(need, SystemResult{Tuples: full})
		if fullScore != 1.0 {
			t.Fatalf("%q: exact result scored %v", q, fullScore)
		}

		// Removing required tuples never increases the score.
		prev := fullScore
		tuples := append([]relational.TupleRef(nil), full...)
		for len(tuples) > 0 {
			tuples = tuples[:len(tuples)*2/3]
			s := oracle.Score(need, SystemResult{Tuples: tuples})
			if s > prev {
				t.Fatalf("%q: removing tuples raised score %v -> %v", q, prev, s)
			}
			prev = s
		}

		// Adding unrelated noise never increases the score.
		noisy := append([]relational.TupleRef(nil), full...)
		prev = fullScore
		for i := 0; i < 5; i++ {
			for j := 0; j < len(required); j++ {
				noisy = append(noisy, relational.TupleRef{Table: "keyword", Row: r.Intn(20)})
			}
			s := oracle.Score(need, SystemResult{Tuples: noisy})
			if s > prev {
				t.Fatalf("%q: adding noise raised score %v -> %v", q, prev, s)
			}
			prev = s
		}
	}
}

// Scores always land on the rubric.
func TestOracleScoresOnRubric(t *testing.T) {
	u, seg, oracle := fixture(t)
	r := rand.New(rand.NewSource(73))
	tables := u.DB.TableNames()
	for i := 0; i < 300; i++ {
		q := []string{"star wars cast", "george clooney", "batman", "tom hanks movies"}[r.Intn(4)]
		need := NeedFromQuery(seg, q)
		var tuples []relational.TupleRef
		for j := 0; j < r.Intn(30); j++ {
			tn := tables[r.Intn(len(tables))]
			if u.DB.Table(tn).Len() == 0 {
				continue
			}
			tuples = append(tuples, relational.TupleRef{Table: tn, Row: r.Intn(u.DB.Table(tn).Len())})
		}
		s := oracle.Score(need, SystemResult{Tuples: tuples})
		if s != 0 && s != 0.5 && s != 1.0 {
			t.Fatalf("non-rubric score %v", s)
		}
	}
}

// The required set never contains the anchor itself: the queried entity
// is given, not payload.
func TestRequiredExcludesAnchor(t *testing.T) {
	_, seg, oracle := fixture(t)
	for _, q := range []string{"star wars", "george clooney", "star wars cast", "tom hanks movies"} {
		need := NeedFromQuery(seg, q)
		anchors := map[relational.TupleRef]bool{}
		for _, a := range need.Anchor {
			anchors[a] = true
		}
		for _, r := range oracle.Required(need) {
			if anchors[r] {
				t.Errorf("%q: required contains anchor %v", q, r)
			}
		}
	}
}
