package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
)

// parityEngine builds one engine over the given corpus with the chosen
// scoring path and shard count.
func parityEngine(t *testing.T, u *imdb.Universe, exhaustive bool, shards int) *search.Engine {
	t.Helper()
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{
		Synonyms:         imdb.AttributeSynonyms(),
		Shards:           shards,
		ExhaustiveScorer: exhaustive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mutateForParity replays one deterministic add/remove/feedback
// interleaving onto an engine. Both engines of a parity pair receive the
// same sequence, so their instance populations stay identical while the
// index internals (tombstones, posting order, shard layout) diverge as
// much as the implementation allows.
func mutateForParity(t *testing.T, e *search.Engine, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ids := e.InstanceIDs()
	for i := 0; i < 12; i++ {
		switch r.Intn(3) {
		case 0:
			if _, err := e.AddAnchorInstance("movie-cast", fmt.Sprintf("parity qunit %d %d", seed, i)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := e.RemoveInstance(ids[r.Intn(len(ids))]); err != nil {
				// Removing an already-removed id is a legal interleaving;
				// both engines fail it identically.
				continue
			}
		default:
			if _, err := e.ApplyFeedback(ids[r.Intn(len(ids))], r.Intn(2) == 0, search.Feedback{}); err != nil {
				continue
			}
		}
	}
}

// TestEvalMetricsScorerInvariant is the property the relevance gate
// stands on: the metrics measure ranking quality, and the pruned
// MaxScore path is contractually the same ranking as the exhaustive
// oracle — so Precision/NDCG computed over either must be bitwise
// identical, on random corpora, across evaluation depths, shard
// counts, and mutation interleavings. If this fails, either the pruned
// scorer broke ranking parity or the metrics grew a nondeterminism.
func TestEvalMetricsScorerInvariant(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 11, 27} {
		u := imdb.MustGenerate(imdb.Config{Seed: seed, Persons: 70, Movies: 50, CastPerMovie: 4})
		logCfg := querylog.DefaultGenConfig()
		logCfg.Seed = seed
		logCfg.Volume = 2000

		for _, shards := range []int{1, 2, 5} {
			pruned := parityEngine(t, u, false, shards)
			exhaustive := parityEngine(t, u, true, 1)
			mutateForParity(t, pruned, seed)
			mutateForParity(t, exhaustive, seed)

			oracle := NewOracle(u.DB, map[string][]string{
				imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
				imdb.TableMovie:  {imdb.TableCast},
			})
			queries := BuildSurveyWorkload(querylog.Generate(u, logCfg), pruned.Segmenter(), 12)

			for _, k := range []int{1, 3, 10} {
				hdr := GoldenHeader{
					Format: GoldenFormat,
					Name:   fmt.Sprintf("parity-s%d", seed),
					Corpus: CorpusIMDb, Seed: seed, K: k,
				}
				set, err := GenerateGolden(ctx, pruned, oracle, queries, hdr, GenerateOptions{})
				if err != nil {
					t.Fatalf("seed %d shards %d k %d: %v", seed, shards, k, err)
				}
				got, err := EvaluateGolden(ctx, EngineSearcher{Engine: pruned}, set)
				if err != nil {
					t.Fatal(err)
				}
				want, err := EvaluateGolden(ctx, EngineSearcher{Engine: exhaustive}, set)
				if err != nil {
					t.Fatal(err)
				}
				if got.Fingerprint != want.Fingerprint {
					t.Errorf("seed %d shards %d k %d: pruned fingerprint %s != exhaustive %s",
						seed, shards, k, got.Fingerprint, want.Fingerprint)
				}
				// Bitwise, not approximate: the full reports must serialize
				// identically, per-query metrics included.
				gj, _ := json.Marshal(got)
				wj, _ := json.Marshal(want)
				if string(gj) != string(wj) {
					t.Errorf("seed %d shards %d k %d: reports diverge\npruned:     %s\nexhaustive: %s",
						seed, shards, k, gj, wj)
				}
			}
		}
	}
}
