package eval

import (
	"math/rand"
	"sort"
)

// This file simulates the Table 1 user study: five users, each asked for
// five movie-related information needs and the keyword queries they would
// use. The paper's finding is structural — the need↔query mapping is
// many-to-many, a large share of queries are single-entity, and most of
// those are underspecified — and the simulation reproduces that structure
// from a behavioural model rather than copying the table.

// InformationNeed names one row of Table 1.
type InformationNeed string

// The paper's thirteen information needs.
const (
	NeedMovieSummary   InformationNeed = "movie summary"
	NeedCast           InformationNeed = "cast"
	NeedFilmography    InformationNeed = "filmography"
	NeedCoactorship    InformationNeed = "coactorship"
	NeedPosters        InformationNeed = "posters"
	NeedRelatedMovies  InformationNeed = "related movies"
	NeedAwards         InformationNeed = "awards"
	NeedMoviesOfPeriod InformationNeed = "movies of period"
	NeedChartsLists    InformationNeed = "charts / lists"
	NeedRecommend      InformationNeed = "recommendations"
	NeedSoundtracks    InformationNeed = "soundtracks"
	NeedTrivia         InformationNeed = "trivia"
	NeedBoxOffice      InformationNeed = "box office"
)

// AllNeeds lists the needs in the paper's row order.
func AllNeeds() []InformationNeed {
	return []InformationNeed{
		NeedMovieSummary, NeedCast, NeedFilmography, NeedCoactorship,
		NeedPosters, NeedRelatedMovies, NeedAwards, NeedMoviesOfPeriod,
		NeedChartsLists, NeedRecommend, NeedSoundtracks, NeedTrivia,
		NeedBoxOffice,
	}
}

// QueryForm names one column of Table 1: the abstract shape of the query
// a user typed.
type QueryForm string

// The paper's thirteen query forms.
const (
	FormTitle          QueryForm = "[title]"
	FormTitleBoxOffice QueryForm = "[title] box office"
	FormActorAward     QueryForm = "[actor] [award]"
	FormYearActor      QueryForm = "[year] [actor]"
	FormActor          QueryForm = "[actor]"
	FormActorGenre     QueryForm = "[actor] [genre]"
	FormTitleOST       QueryForm = "[title] ost"
	FormTitleCast      QueryForm = "[title] cast"
	FormTitleFreetext  QueryForm = "[title] [freetext]"
	FormMovieFreetext  QueryForm = "movie [freetext]"
	FormTitleYear      QueryForm = "[title] year"
	FormTitlePosters   QueryForm = "[title] posters"
	FormTitlePlot      QueryForm = "[title] plot"
	FormDontKnow       QueryForm = "don't know"
)

// AllForms lists the forms in the paper's column order.
func AllForms() []QueryForm {
	return []QueryForm{
		FormTitle, FormTitleBoxOffice, FormActorAward, FormYearActor,
		FormActor, FormActorGenre, FormTitleOST, FormTitleCast,
		FormTitleFreetext, FormMovieFreetext, FormTitleYear,
		FormTitlePosters, FormTitlePlot, FormDontKnow,
	}
}

// formChoices maps each need to the query forms users plausibly reach
// for, most specific first. The sets mirror the populated cells of
// Table 1.
var formChoices = map[InformationNeed][]QueryForm{
	NeedMovieSummary:   {FormTitlePlot, FormTitleFreetext, FormTitle},
	NeedCast:           {FormTitleCast, FormTitle},
	NeedFilmography:    {FormActorGenre, FormActor},
	NeedCoactorship:    {FormTitleCast, FormActor, FormTitle},
	NeedPosters:        {FormTitlePosters, FormTitle},
	NeedRelatedMovies:  {FormTitleFreetext, FormTitle, FormDontKnow},
	NeedAwards:         {FormActorAward, FormTitle},
	NeedMoviesOfPeriod: {FormYearActor, FormTitleYear, FormDontKnow},
	NeedChartsLists:    {FormMovieFreetext, FormActor, FormDontKnow},
	NeedRecommend:      {FormMovieFreetext, FormTitle, FormDontKnow},
	NeedSoundtracks:    {FormTitleOST, FormTitle},
	NeedTrivia:         {FormTitleFreetext, FormTitlePlot, FormTitle},
	NeedBoxOffice:      {FormTitleBoxOffice, FormTitle},
}

// underspecifiedForms are the bare single-entity forms: issuing one for a
// richer need means the query could have been written better "by adding
// on additional predicates".
var underspecifiedForms = map[QueryForm]bool{
	FormTitle: true,
	FormActor: true,
}

// singleEntityForms contain exactly one entity and nothing else.
var singleEntityForms = map[QueryForm]bool{
	FormTitle: true,
	FormActor: true,
}

// Persona is one simulated study subject.
type Persona struct {
	// ID is the paper's subject letter (a–e).
	ID string
	// DBSavvy marks the two database-graduate subjects.
	DBSavvy bool
	// Underspecification is the probability of reaching for a bare
	// entity query even when a more specific form exists.
	Underspecification float64
}

// DefaultPersonas returns the five subjects: two database-savvy, three
// lay users with a stronger tendency to underspecify.
func DefaultPersonas() []Persona {
	return []Persona{
		{ID: "a", DBSavvy: true, Underspecification: 0.2},
		{ID: "b", DBSavvy: true, Underspecification: 0.25},
		{ID: "c", DBSavvy: false, Underspecification: 0.45},
		{ID: "d", DBSavvy: false, Underspecification: 0.5},
		{ID: "e", DBSavvy: false, Underspecification: 0.4},
	}
}

// StudyEntry is one cell contribution: a persona expressed a need through
// a form.
type StudyEntry struct {
	Need    InformationNeed
	Form    QueryForm
	Persona string
}

// Study is the simulated user study.
type Study struct {
	Entries []StudyEntry
}

// RunStudy simulates the study: each persona draws five distinct needs
// and verbalizes each through one or occasionally two query forms.
func RunStudy(personas []Persona, seed int64) *Study {
	r := rand.New(rand.NewSource(seed))
	needs := AllNeeds()
	study := &Study{}
	for _, p := range personas {
		picked := r.Perm(len(needs))[:5]
		sort.Ints(picked)
		for _, ni := range picked {
			need := needs[ni]
			forms := formChoices[need]
			study.Entries = append(study.Entries, StudyEntry{
				Need: need, Form: chooseForm(r, p, forms), Persona: p.ID,
			})
			// Some subjects offer an alternative formulation (the paper
			// notes users "came up with multiple queries to satisfy the
			// same information need").
			if r.Float64() < 0.15 && len(forms) > 1 {
				alt := chooseForm(r, p, forms)
				study.Entries = append(study.Entries, StudyEntry{
					Need: need, Form: alt, Persona: p.ID,
				})
			}
		}
	}
	return study
}

func chooseForm(r *rand.Rand, p Persona, forms []QueryForm) QueryForm {
	// Underspecify: reach for a bare entity form when the need allows it.
	if r.Float64() < p.Underspecification {
		for _, f := range forms {
			if underspecifiedForms[f] {
				return f
			}
		}
	}
	// Otherwise prefer the most specific (first) forms; savvy users more
	// reliably so.
	if p.DBSavvy || r.Float64() < 0.6 {
		return forms[0]
	}
	return forms[r.Intn(len(forms))]
}

// Matrix pivots the study into Table 1's shape: need × form → persona
// IDs.
func (s *Study) Matrix() map[InformationNeed]map[QueryForm][]string {
	m := map[InformationNeed]map[QueryForm][]string{}
	for _, e := range s.Entries {
		row := m[e.Need]
		if row == nil {
			row = map[QueryForm][]string{}
			m[e.Need] = row
		}
		row[e.Form] = append(row[e.Form], e.Persona)
	}
	return m
}

// StudyStats are the quantities the paper derives from Table 1.
type StudyStats struct {
	// Queries is the total number of query formulations.
	Queries int
	// SingleEntity counts bare [title]/[actor] queries.
	SingleEntity int
	// Underspecified counts single-entity queries issued for needs richer
	// than a summary lookup.
	Underspecified int
	// NeedsWithMultipleForms counts needs expressed through ≥2 forms.
	NeedsWithMultipleForms int
	// FormsWithMultipleNeeds counts forms used for ≥2 needs.
	FormsWithMultipleNeeds int
}

// Stats computes the study statistics.
func (s *Study) Stats() StudyStats {
	st := StudyStats{Queries: len(s.Entries)}
	needForms := map[InformationNeed]map[QueryForm]bool{}
	formNeeds := map[QueryForm]map[InformationNeed]bool{}
	for _, e := range s.Entries {
		if singleEntityForms[e.Form] {
			st.SingleEntity++
			if e.Need != NeedMovieSummary && e.Need != NeedFilmography {
				st.Underspecified++
			}
		}
		if needForms[e.Need] == nil {
			needForms[e.Need] = map[QueryForm]bool{}
		}
		needForms[e.Need][e.Form] = true
		if formNeeds[e.Form] == nil {
			formNeeds[e.Form] = map[InformationNeed]bool{}
		}
		formNeeds[e.Form][e.Need] = true
	}
	for _, forms := range needForms {
		if len(forms) >= 2 {
			st.NeedsWithMultipleForms++
		}
	}
	for _, needs := range formNeeds {
		if len(needs) >= 2 {
			st.FormsWithMultipleNeeds++
		}
	}
	return st
}
