package eval

import (
	"qunits/internal/querylog"
	"qunits/internal/segment"
)

// SurveyQuery pairs a benchmark query with its gold information need.
type SurveyQuery struct {
	Query string
	Need  Need
}

// BuildSurveyWorkload reproduces §5.3's survey construction: from the
// movie querylog benchmark's 14×2 = 28 queries, take 25 (the paper used
// "25 of the 28"; we drop the three whose templates rank lowest, the
// deterministic counterpart of their unstated choice) and attach the gold
// need each query expresses.
func BuildSurveyWorkload(log *querylog.Log, seg *segment.Segmenter, size int) []SurveyQuery {
	if size <= 0 {
		size = 25
	}
	raw := querylog.BenchmarkWorkload(log, seg, 14, 2)
	if len(raw) > size {
		raw = raw[:size]
	}
	out := make([]SurveyQuery, 0, len(raw))
	for _, q := range raw {
		out = append(out, SurveyQuery{Query: q, Need: NeedFromQuery(seg, q)})
	}
	return out
}
