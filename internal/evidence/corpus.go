package evidence

import (
	"fmt"
	"math/rand"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

// CorpusConfig sizes the synthetic web corpus. Pages are created for the
// most popular entities first — popular things are what the web writes
// about, and the head-biased coverage matters: derivation must work from
// evidence about popular entities and generalize to the tail.
type CorpusConfig struct {
	// Seed drives layout jitter.
	Seed int64
	// MoviePages: number of movie overview pages.
	MoviePages int
	// CastPages: number of per-movie cast pages.
	CastPages int
	// FilmographyPages: number of per-person filmography pages.
	FilmographyPages int
	// SoundtrackPages: number of per-movie soundtrack pages.
	SoundtrackPages int
}

// DefaultCorpusConfig covers the popular head of a default-scale
// universe.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:             1,
		MoviePages:       220,
		CastPages:        180,
		FilmographyPages: 180,
		SoundtrackPages:  80,
	}
}

// BuildCorpus renders the synthetic site from the universe.
func BuildCorpus(u *imdb.Universe, cfg CorpusConfig) []Page {
	r := rand.New(rand.NewSource(cfg.Seed))
	var pages []Page
	movies := u.Movies
	persons := u.Persons

	for i := 0; i < cfg.MoviePages && i < len(movies); i++ {
		pages = append(pages, moviePage(u, movies[i]))
	}
	for i := 0; i < cfg.CastPages && i < len(movies); i++ {
		pages = append(pages, castPage(u, movies[i], r))
	}
	for i := 0; i < cfg.FilmographyPages && i < len(persons); i++ {
		pages = append(pages, filmographyPage(u, persons[i]))
	}
	count := 0
	for i := 0; count < cfg.SoundtrackPages && i < len(movies); i++ {
		if p, ok := soundtrackPage(u, movies[i]); ok {
			pages = append(pages, p)
			count++
		}
	}
	return pages
}

// moviePage renders an overview page: the movie title in the header, an
// infobox of resolved facts (genre, location), a starring list — real
// overview pages always name the principal cast — and the plot
// paragraph.
func moviePage(u *imdb.Universe, m imdb.Entity) Page {
	db := u.DB
	movieT := db.Table(imdb.TableMovie)
	get := func(col string) string {
		v, _ := movieT.Get(m.Row, col)
		return v.Render()
	}
	resolve := func(col string) string {
		t, row, ok := db.Resolve(imdb.TableMovie, m.Row, col)
		if !ok {
			return ""
		}
		return db.Label(relational.TupleRef{Table: t, Row: row})
	}
	info := El("div",
		TextEl("span", resolve("genre_id")),
		TextEl("span", resolve("location_id")),
		TextEl("span", get("releasedate")),
	)
	var starring []*DOMNode
	for _, ref := range db.ReferencingRows(imdb.TableMovie, m.Row) {
		if ref.Table != imdb.TableCast {
			continue
		}
		if pTable, pRow, ok := db.Resolve(imdb.TableCast, ref.Row, "person_id"); ok {
			starring = append(starring, TextEl("li", db.Label(relational.TupleRef{Table: pTable, Row: pRow})))
		}
	}
	root := El("html",
		TextEl("h1", m.Name),
		info,
		El("ul", starring...),
		TextEl("p", resolve("info_id")),
	)
	return Page{URL: "/movie/" + Slug(m.Name), Root: root}
}

// castPage renders the paper's canonical example: movie title on top, one
// list item per cast member.
func castPage(u *imdb.Universe, m imdb.Entity, r *rand.Rand) Page {
	db := u.DB
	var items []*DOMNode
	for _, ref := range db.ReferencingRows(imdb.TableMovie, m.Row) {
		if ref.Table != imdb.TableCast {
			continue
		}
		pTable, pRow, ok := db.Resolve(imdb.TableCast, ref.Row, "person_id")
		if !ok {
			continue
		}
		name := db.Label(relational.TupleRef{Table: pTable, Row: pRow})
		items = append(items, TextEl("li", name))
	}
	// Real pages have layout jitter: sometimes a byline or a footer.
	children := []*DOMNode{TextEl("h1", m.Name), El("ul", items...)}
	if r.Intn(3) == 0 {
		children = append(children, TextEl("p", "full credits and production details"))
	}
	return Page{URL: "/movie/" + Slug(m.Name) + "/cast", Root: El("html", children...)}
}

// filmographyPage renders a person page: name in the header, one list
// item per movie they appear in.
func filmographyPage(u *imdb.Universe, p imdb.Entity) Page {
	db := u.DB
	seen := map[string]bool{}
	var items []*DOMNode
	for _, ref := range db.ReferencingRows(imdb.TablePerson, p.Row) {
		if ref.Table != imdb.TableCast && ref.Table != imdb.TableCrew {
			continue
		}
		mTable, mRow, ok := db.Resolve(ref.Table, ref.Row, "movie_id")
		if !ok {
			continue
		}
		title := db.Label(relational.TupleRef{Table: mTable, Row: mRow})
		if seen[title] {
			continue
		}
		seen[title] = true
		items = append(items, TextEl("li", title))
	}
	root := El("html", TextEl("h1", p.Name), El("ul", items...))
	return Page{URL: "/person/" + Slug(p.Name), Root: root}
}

// soundtrackPage lists a movie's tracks; ok is false when the movie has
// none.
func soundtrackPage(u *imdb.Universe, m imdb.Entity) (Page, bool) {
	db := u.DB
	var items []*DOMNode
	for _, ref := range db.ReferencingRows(imdb.TableMovie, m.Row) {
		if ref.Table != imdb.TableSoundtrack {
			continue
		}
		track, _ := db.Table(imdb.TableSoundtrack).Get(ref.Row, "track")
		items = append(items, TextEl("li", track.Render()))
	}
	if len(items) == 0 {
		return Page{}, false
	}
	root := El("html", TextEl("h1", m.Name), El("ul", items...))
	return Page{URL: fmt.Sprintf("/movie/%s/soundtrack", Slug(m.Name)), Root: root}, true
}
