// Package evidence models the paper's third derivation input (§4.3):
// external evidence. "External evidence can be in the form of existing
// reports — published results of queries to the database, or relevant web
// pages that present parts of the data." The paper used Wikipedia and an
// imdb.com crawl; this package synthesizes an equivalent corpus — web
// pages with DOM trees rendered from the database — and computes the
// per-page *type signatures* ("((movie.title:1) (person.name:40))")
// that the evidence-based derivation strategy aggregates into qunit
// definitions.
package evidence

import "strings"

// DOMNode is one node of a page's DOM tree.
type DOMNode struct {
	// Tag is the HTML-ish element name (html, h1, ul, li, p, span …).
	Tag string
	// Text is the node's own text content.
	Text string
	// Children in document order.
	Children []*DOMNode
}

// El constructs an element node.
func El(tag string, children ...*DOMNode) *DOMNode {
	return &DOMNode{Tag: tag, Children: children}
}

// TextEl constructs a leaf element with text content.
func TextEl(tag, text string) *DOMNode {
	return &DOMNode{Tag: tag, Text: text}
}

// Walk visits every node in document order; fn receives the node and the
// path of ancestor tags (outermost first).
func (n *DOMNode) Walk(fn func(node *DOMNode, ancestors []string)) {
	var rec func(node *DOMNode, anc []string)
	rec = func(node *DOMNode, anc []string) {
		fn(node, anc)
		childAnc := append(anc, node.Tag)
		for _, c := range node.Children {
			rec(c, childAnc)
		}
	}
	rec(n, nil)
}

// FlatText renders the subtree's text in document order.
func (n *DOMNode) FlatText() string {
	var parts []string
	n.Walk(func(node *DOMNode, _ []string) {
		if node.Text != "" {
			parts = append(parts, node.Text)
		}
	})
	return strings.Join(parts, " ")
}

// CountNodes returns the number of nodes in the subtree.
func (n *DOMNode) CountNodes() int {
	count := 0
	n.Walk(func(*DOMNode, []string) { count++ })
	return count
}

// Page is one synthetic web page.
type Page struct {
	// URL is the page address, e.g. "/movie/star-wars/cast".
	URL string
	// Root is the DOM tree.
	Root *DOMNode
}

// Slug converts an entity name to its URL form.
func Slug(name string) string {
	return strings.ReplaceAll(strings.Join(strings.Fields(name), "-"), "'", "")
}

// Unslug converts a URL segment back to a phrase.
func Unslug(seg string) string {
	return strings.ReplaceAll(seg, "-", " ")
}
