package evidence

import (
	"strings"
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/relational"
	"qunits/internal/segment"
)

func corpusFixture(t *testing.T) (*imdb.Universe, []Page, *segment.Dictionary) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 4, Persons: 150, Movies: 100, CastPerMovie: 5})
	pages := BuildCorpus(u, CorpusConfig{
		Seed: 2, MoviePages: 40, CastPages: 30, FilmographyPages: 30, SoundtrackPages: 10,
	})
	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	return u, pages, dict
}

func TestDOMHelpers(t *testing.T) {
	tree := El("html", TextEl("h1", "star wars"), El("ul", TextEl("li", "a"), TextEl("li", "b")))
	if tree.CountNodes() != 5 {
		t.Errorf("CountNodes = %d", tree.CountNodes())
	}
	if got := tree.FlatText(); got != "star wars a b" {
		t.Errorf("FlatText = %q", got)
	}
	var headerAnc []string
	tree.Walk(func(n *DOMNode, anc []string) {
		if n.Tag == "li" && n.Text == "a" {
			headerAnc = append([]string(nil), anc...)
		}
	})
	if len(headerAnc) != 2 || headerAnc[0] != "html" || headerAnc[1] != "ul" {
		t.Errorf("ancestors = %v", headerAnc)
	}
}

func TestSlugRoundTrip(t *testing.T) {
	cases := map[string]string{
		"star wars":      "star-wars",
		"ocean's eleven": "oceans-eleven",
		"cast away":      "cast-away",
	}
	for name, want := range cases {
		if got := Slug(name); got != want {
			t.Errorf("Slug(%q) = %q, want %q", name, got, want)
		}
	}
	if Unslug("star-wars") != "star wars" {
		t.Error("Unslug broken")
	}
}

func TestBuildCorpusShape(t *testing.T) {
	_, pages, _ := corpusFixture(t)
	if len(pages) != 110 {
		t.Fatalf("pages = %d, want 40+30+30+10", len(pages))
	}
	kinds := map[string]int{}
	for _, p := range pages {
		switch {
		case strings.HasSuffix(p.URL, "/cast"):
			kinds["cast"]++
		case strings.HasSuffix(p.URL, "/soundtrack"):
			kinds["soundtrack"]++
		case strings.HasPrefix(p.URL, "/person/"):
			kinds["person"]++
		case strings.HasPrefix(p.URL, "/movie/"):
			kinds["movie"]++
		}
		if p.Root == nil || p.Root.CountNodes() < 2 {
			t.Errorf("page %s is empty", p.URL)
		}
	}
	if kinds["cast"] != 30 || kinds["movie"] != 40 || kinds["person"] != 30 || kinds["soundtrack"] != 10 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCastPageSignatureMatchesPaperExample(t *testing.T) {
	u, pages, dict := corpusFixture(t)
	var cast *Page
	for i := range pages {
		if strings.HasSuffix(pages[i].URL, "/cast") {
			cast = &pages[i]
			break
		}
	}
	if cast == nil {
		t.Fatal("no cast page")
	}
	sig := ComputeSignature(*cast, dict)
	movieTitle := relational.QualifiedColumn{Table: "movie", Column: "title"}
	personName := relational.QualifiedColumn{Table: "person", Column: "name"}
	// The paper's cast-page shape: one movie title (the header), many
	// person names (the list).
	if sig.Counts[movieTitle] < 1 {
		t.Errorf("movie.title count = %d", sig.Counts[movieTitle])
	}
	if sig.Counts[personName] < 1 {
		t.Errorf("person.name count = %d", sig.Counts[personName])
	}
	if sig.Header[movieTitle] == 0 {
		t.Error("movie title not recognized in header position")
	}
	if sig.Header[personName] != 0 {
		t.Error("person names should not be in header position on a cast page")
	}
	if !strings.Contains(sig.String(), "person.name") {
		t.Errorf("String() = %q", sig.String())
	}
	_ = u
}

func TestURLPattern(t *testing.T) {
	_, _, dict := corpusFixture(t)
	cases := map[string]string{
		"/movie/star-wars":         "/movie/*",
		"/movie/star-wars/cast":    "/movie/*/cast",
		"/person/george-clooney":   "/person/*",
		"/movie/batman/soundtrack": "/movie/*/soundtrack",
		"/about":                   "/about",
	}
	for url, want := range cases {
		if got := URLPattern(url, dict); got != want {
			t.Errorf("URLPattern(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestClusterGroupsLayoutFamilies(t *testing.T) {
	_, pages, dict := corpusFixture(t)
	clusters := Cluster(pages, dict)
	byPattern := map[string]ClusterSignature{}
	for _, c := range clusters {
		byPattern[c.Pattern] = c
	}
	for _, want := range []string{"/movie/*", "/movie/*/cast", "/person/*", "/movie/*/soundtrack"} {
		if _, ok := byPattern[want]; !ok {
			t.Fatalf("missing cluster %q (have %v)", want, patterns(clusters))
		}
	}
	castCluster := byPattern["/movie/*/cast"]
	if castCluster.Pages != 30 {
		t.Errorf("cast cluster pages = %d", castCluster.Pages)
	}
	movieTitle := relational.QualifiedColumn{Table: "movie", Column: "title"}
	personName := relational.QualifiedColumn{Table: "person", Column: "name"}
	// Aggregate shape: ~1 movie title per page, several person names.
	if avg := castCluster.AvgCounts[movieTitle]; avg < 0.8 || avg > 2.5 {
		t.Errorf("avg movie.title per cast page = %f", avg)
	}
	if avg := castCluster.AvgCounts[personName]; avg < 1.5 {
		t.Errorf("avg person.name per cast page = %f", avg)
	}
	if castCluster.AvgCounts[personName] <= castCluster.AvgCounts[movieTitle] {
		t.Error("cast cluster should have more person names than movie titles")
	}
	// Header share: movie titles live in headers, person names don't.
	if castCluster.HeaderShare[movieTitle] < 0.5 {
		t.Errorf("movie.title header share = %f", castCluster.HeaderShare[movieTitle])
	}
	if castCluster.HeaderShare[personName] > 0.2 {
		t.Errorf("person.name header share = %f", castCluster.HeaderShare[personName])
	}
}

func patterns(cs []ClusterSignature) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Pattern
	}
	return out
}

func TestClustersSortedBySize(t *testing.T) {
	_, pages, dict := corpusFixture(t)
	clusters := Cluster(pages, dict)
	for i := 1; i < len(clusters); i++ {
		if clusters[i-1].Pages < clusters[i].Pages {
			t.Fatal("clusters not sorted by size")
		}
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 4, Persons: 50, Movies: 40})
	cfg := CorpusConfig{Seed: 2, MoviePages: 10, CastPages: 10, FilmographyPages: 10, SoundtrackPages: 5}
	a := BuildCorpus(u, cfg)
	b := BuildCorpus(u, cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic corpus size")
	}
	for i := range a {
		if a[i].URL != b[i].URL || a[i].Root.FlatText() != b[i].Root.FlatText() {
			t.Fatalf("page %d differs", i)
		}
	}
}

func TestFilmographyPageContainsMovies(t *testing.T) {
	u, pages, _ := corpusFixture(t)
	// The most popular person's filmography page must list real titles.
	top := u.Persons[0]
	url := "/person/" + Slug(top.Name)
	for _, p := range pages {
		if p.URL != url {
			continue
		}
		text := strings.ToLower(p.Root.FlatText())
		if !strings.Contains(text, top.Name) {
			t.Errorf("filmography page lacks person name")
		}
		found := false
		for _, m := range u.Movies {
			if strings.Contains(text, m.Name) {
				found = true
				break
			}
		}
		if !found {
			t.Error("filmography page lists no known movie")
		}
		return
	}
	t.Fatalf("no filmography page for %s", top.Name)
}
