package evidence

import (
	"fmt"
	"sort"
	"strings"

	"qunits/internal/relational"
	"qunits/internal/segment"
)

// PageSignature is the type signature of one page: how many times each
// recognized schema type occurs, overall and in header position. The
// paper's example: "((person.name:1) (movie.name:40))" for a filmography
// page.
type PageSignature struct {
	// Counts per schema type across the whole page.
	Counts map[relational.QualifiedColumn]int
	// Header counts: occurrences inside h1/h2 elements, which identify
	// the page's label field.
	Header map[relational.QualifiedColumn]int
}

// ComputeSignature entity-recognizes every text node of the page against
// the dictionary ("we use records in the database to identify entities in
// documents") and tallies occurrences by schema type and DOM position.
func ComputeSignature(p Page, dict *segment.Dictionary) PageSignature {
	sig := PageSignature{
		Counts: make(map[relational.QualifiedColumn]int),
		Header: make(map[relational.QualifiedColumn]int),
	}
	p.Root.Walk(func(node *DOMNode, ancestors []string) {
		if node.Text == "" {
			return
		}
		entries := dict.LookupEntity(node.Text)
		if len(entries) == 0 {
			return
		}
		// When a phrase is ambiguous between a label column (person.name)
		// and an incidental text column (soundtrack.artist), recognize
		// only the label readings: entities are identified by the columns
		// that name them.
		hasLabel := false
		for _, e := range entries {
			if e.IsLabel {
				hasLabel = true
				break
			}
		}
		seen := map[relational.QualifiedColumn]bool{}
		for _, e := range entries {
			if hasLabel && !e.IsLabel {
				continue
			}
			if seen[e.Type] {
				continue
			}
			seen[e.Type] = true
			sig.Counts[e.Type]++
			if isHeaderTag(node.Tag) {
				sig.Header[e.Type]++
			}
		}
	})
	return sig
}

func isHeaderTag(tag string) bool {
	return tag == "h1" || tag == "h2" || tag == "title"
}

// String renders the signature in the paper's notation.
func (s PageSignature) String() string {
	keys := make([]relational.QualifiedColumn, 0, len(s.Counts))
	for k := range s.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("(%s:%d)", k, s.Counts[k])
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// ClusterSignature aggregates the signatures of a URL cluster.
type ClusterSignature struct {
	// Pattern is the URL pattern, e.g. "/movie/*/cast".
	Pattern string
	// Pages is the number of pages aggregated.
	Pages int
	// AvgCounts is the mean per-page count per type.
	AvgCounts map[relational.QualifiedColumn]float64
	// HeaderShare is, per type, the fraction of its occurrences that were
	// in header position.
	HeaderShare map[relational.QualifiedColumn]float64
}

// URLPattern generalizes a URL by replacing entity-naming segments with
// "*". A segment names an entity when its unslugged form is in the
// dictionary. This is the reproduction of the paper's "clustering the
// different types of URLs" over the imdb.com crawl.
func URLPattern(url string, dict *segment.Dictionary) string {
	segs := strings.Split(url, "/")
	for i, s := range segs {
		if s == "" {
			continue
		}
		if len(dict.LookupEntity(Unslug(s))) > 0 {
			segs[i] = "*"
		}
	}
	return strings.Join(segs, "/")
}

// Cluster groups pages by URL pattern and aggregates their signatures.
// Clusters are returned sorted by page count descending (biggest layout
// families first), then by pattern.
func Cluster(pages []Page, dict *segment.Dictionary) []ClusterSignature {
	type agg struct {
		pages  int
		counts map[relational.QualifiedColumn]int
		header map[relational.QualifiedColumn]int
	}
	byPattern := map[string]*agg{}
	for _, p := range pages {
		pat := URLPattern(p.URL, dict)
		a := byPattern[pat]
		if a == nil {
			a = &agg{
				counts: make(map[relational.QualifiedColumn]int),
				header: make(map[relational.QualifiedColumn]int),
			}
			byPattern[pat] = a
		}
		sig := ComputeSignature(p, dict)
		a.pages++
		for k, v := range sig.Counts {
			a.counts[k] += v
		}
		for k, v := range sig.Header {
			a.header[k] += v
		}
	}
	out := make([]ClusterSignature, 0, len(byPattern))
	for pat, a := range byPattern {
		cs := ClusterSignature{
			Pattern:     pat,
			Pages:       a.pages,
			AvgCounts:   make(map[relational.QualifiedColumn]float64),
			HeaderShare: make(map[relational.QualifiedColumn]float64),
		}
		for k, v := range a.counts {
			cs.AvgCounts[k] = float64(v) / float64(a.pages)
			if v > 0 {
				cs.HeaderShare[k] = float64(a.header[k]) / float64(v)
			}
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pages != out[j].Pages {
			return out[i].Pages > out[j].Pages
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}
