package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"qunits/internal/querylog"
)

// The lab is expensive to assemble; share one across the package's tests.
var (
	labOnce sync.Once
	testLab *Lab
	labErr  error
)

func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		testLab, labErr = NewLab(SmallConfig())
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return testLab
}

func TestLabAssembly(t *testing.T) {
	lab := sharedLab(t)
	if lab.Universe == nil || lab.Log == nil || len(lab.Pages) == 0 {
		t.Fatal("lab incomplete")
	}
	if lab.Banks == nil || lab.Tree == nil {
		t.Fatal("baselines missing")
	}
	for name, e := range map[string]interface{ InstanceCount() int }{
		"schema":   lab.SchemaEngine,
		"querylog": lab.QuerylogEngine,
		"evidence": lab.EvidenceEngine,
		"human":    lab.HumanEngine,
	} {
		if e.InstanceCount() == 0 {
			t.Errorf("%s engine has no instances", name)
		}
	}
	if len(lab.Systems()) != 7 {
		t.Errorf("systems = %d", len(lab.Systems()))
	}
}

func TestFigure3ShapeMatchesPaper(t *testing.T) {
	lab := sharedLab(t)
	r := Figure3(lab)
	if len(r.Scores) != 8 {
		t.Fatalf("scores = %d (7 systems + theoretical max)", len(r.Scores))
	}
	get := func(name string) float64 {
		s := r.Score(name)
		if s < 0 {
			t.Fatalf("missing system %q", name)
		}
		return s
	}
	banks := get("BANKS")
	lca := get("LCA")
	mlca := get("MLCA")
	schema := get("Qunits (schema)")
	evid := get("Qunits (evidence)")
	qlog := get("Qunits (querylog)")
	human := get("Qunits (human)")
	max := get("Theoretical max")

	// The paper's headline shape: every qunit variant beats every
	// traditional baseline; hand-built qunits are the best qunit set; all
	// systems sit well below the theoretical maximum.
	worstQunit := min4(schema, evid, qlog, human)
	for name, base := range map[string]float64{"BANKS": banks, "LCA": lca, "MLCA": mlca} {
		if base >= worstQunit {
			t.Errorf("%s (%.3f) >= worst qunit variant (%.3f); paper's ordering violated", name, base, worstQunit)
		}
	}
	if mlca < lca-0.02 {
		t.Errorf("MLCA (%.3f) clearly below LCA (%.3f)", mlca, lca)
	}
	if human < qlog-0.02 || human < schema-0.02 || human < evid-0.02 {
		t.Errorf("human qunits (%.3f) below a derived variant (schema %.3f, evidence %.3f, querylog %.3f)",
			human, schema, evid, qlog)
	}
	if max != 1.0 {
		t.Errorf("theoretical max = %.3f", max)
	}
	if human >= max {
		t.Error("human qunits reached the theoretical maximum; the paper's gap is gone")
	}
	if banks > 0.4 {
		t.Errorf("BANKS = %.3f; expected a low baseline", banks)
	}
	if human < 0.45 {
		t.Errorf("human qunits = %.3f; expected a strong system", human)
	}
}

func TestFigure3ExtendedIncludesObjectRank(t *testing.T) {
	lab := sharedLab(t)
	r := Figure3Extended(lab)
	if len(r.Scores) != 9 {
		t.Fatalf("extended scores = %d (8 systems + max)", len(r.Scores))
	}
	or := r.Score("ObjectRank")
	if or < 0 {
		t.Fatal("ObjectRank missing")
	}
	// ObjectRank, like the other tuple-granularity baselines, must lose
	// to every qunit variant.
	worstQunit := min4(r.Score("Qunits (schema)"), r.Score("Qunits (evidence)"),
		r.Score("Qunits (querylog)"), r.Score("Qunits (human)"))
	if or >= worstQunit {
		t.Errorf("ObjectRank (%.3f) >= worst qunit variant (%.3f)", or, worstQunit)
	}
}

func TestFigure3Deterministic(t *testing.T) {
	lab := sharedLab(t)
	a := Figure3(lab)
	b := Figure3(lab)
	for i := range a.Scores {
		if a.Scores[i].Mean != b.Scores[i].Mean {
			t.Fatalf("system %s: %.4f vs %.4f", a.Scores[i].System, a.Scores[i].Mean, b.Scores[i].Mean)
		}
	}
}

func TestFigure3Render(t *testing.T) {
	lab := sharedLab(t)
	var buf bytes.Buffer
	Figure3(lab).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 3", "BANKS", "MLCA", "Qunits (human)", "Theoretical max", "agreement"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1(7)
	if r.Stats.Queries < 25 {
		t.Errorf("queries = %d", r.Stats.Queries)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "info. need", "cast", "single-entity", "many-to-many"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestQuerylogBenchmark(t *testing.T) {
	lab := sharedLab(t)
	r := QuerylogBenchmark(lab)
	if len(r.Templates) != 14 {
		t.Fatalf("templates = %d", len(r.Templates))
	}
	if len(r.Workload) != 28 {
		t.Fatalf("workload = %d", len(r.Workload))
	}
	if f := r.Stats.ClassFraction(querylog.ClassSingleEntity); f < 0.30 || f > 0.42 {
		t.Errorf("single-entity fraction = %.3f", f)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"§5.2", "single-entity", "top typed templates", "benchmark workload"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func min4(a, b, c, d float64) float64 {
	m := a
	for _, x := range []float64{b, c, d} {
		if x < m {
			m = x
		}
	}
	return m
}
