package experiments

import (
	"fmt"
	"io"
	"strings"

	"qunits/internal/eval"
)

// SystemScore is one bar of Figure 3.
type SystemScore struct {
	// System is the display name.
	System string
	// Mean is the average relevance across the workload (each query's
	// score is the panel mean).
	Mean float64
	// PerQuery holds each query's panel-mean rating.
	PerQuery []float64
	// Answered counts queries the system returned anything for.
	Answered int
	// ByKind breaks the mean down per information-need kind — where each
	// system earns and loses its relevance.
	ByKind map[eval.NeedKind]float64
}

// Figure3Result is the full experiment output.
type Figure3Result struct {
	// Scores per system, in evaluation order; the theoretical maximum
	// (1.0 by definition — "the user rates every search result … as a
	// perfect match") is appended last.
	Scores []SystemScore
	// Workload is the evaluated query set.
	Workload []eval.SurveyQuery
	// HighAgreementShare is the fraction of (system, query) cells where
	// ≥80% of judges agreed — the paper reports a third of questions at
	// that level.
	HighAgreementShare float64
}

// Figure3 runs the §5.3 result-quality comparison on an assembled lab.
// Each invocation seeds a fresh judge panel, so repeated runs are
// bit-identical.
func Figure3(lab *Lab) *Figure3Result { return figure3(lab, lab.Systems()) }

// Figure3Extended runs the same comparison with ObjectRank added to the
// baseline set.
func Figure3Extended(lab *Lab) *Figure3Result { return figure3(lab, lab.ExtendedSystems()) }

func figure3(lab *Lab, systems []System) *Figure3Result {
	panel := eval.NewPanel(lab.Config.Judges, lab.Config.JudgeNoise, lab.Config.Seed+2)
	workload := eval.BuildSurveyWorkload(lab.Log, lab.Segmenter, lab.Config.WorkloadSize)
	out := &Figure3Result{Workload: workload}
	cells := 0
	highAgreement := 0
	for _, sys := range systems {
		// All relevance aggregation goes through the shared scorecard —
		// the same arithmetic the cmd/eval relevance gate uses.
		card := eval.NewScorecard()
		score := SystemScore{System: sys.Name()}
		for _, sq := range workload {
			oracleScore := 0.0
			if res, ok := sys.Answer(sq.Query); ok {
				oracleScore = lab.Oracle.Score(sq.Need, res)
				score.Answered++
			}
			card.Add(sq.Need.Kind, panel.Rate(oracleScore))
		}
		score.PerQuery = card.PerQuery()
		score.ByKind = card.ByKind()
		score.Mean = card.Mean()
		cells += card.Cells()
		highAgreement += card.HighAgreement()
		out.Scores = append(out.Scores, score)
	}
	// Theoretical maximum: defined, not measured.
	maxScore := SystemScore{System: "Theoretical max", Mean: 1.0, Answered: len(workload), ByKind: map[eval.NeedKind]float64{}}
	for _, sq := range workload {
		maxScore.PerQuery = append(maxScore.PerQuery, 1.0)
		maxScore.ByKind[sq.Need.Kind] = 1.0
	}
	out.Scores = append(out.Scores, maxScore)
	if cells > 0 {
		out.HighAgreementShare = float64(highAgreement) / float64(cells)
	}
	return out
}

// Render prints the figure as a labelled bar chart with a per-need-kind
// breakdown.
func (r *Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 — Comparing result quality against traditional methods\n")
	fmt.Fprintf(w, "(mean relevance over %d queries, %s)\n\n", len(r.Workload), "20 simulated judges, Table 2 rubric")
	for _, s := range r.Scores {
		bar := strings.Repeat("█", int(s.Mean*40+0.5))
		fmt.Fprintf(w, "  %-18s %5.3f  %s\n", s.System, s.Mean, bar)
	}
	// Which need kinds appear in the workload, in declaration order.
	kinds := []eval.NeedKind{eval.NeedProfile, eval.NeedAspect, eval.NeedConnection, eval.NeedComplex, eval.NeedUnknown}
	present := kinds[:0]
	counts := map[eval.NeedKind]int{}
	for _, sq := range r.Workload {
		counts[sq.Need.Kind]++
	}
	for _, k := range kinds {
		if counts[k] > 0 {
			present = append(present, k)
		}
	}
	fmt.Fprintf(w, "\n  per need-kind breakdown:\n  %-18s", "")
	for _, k := range present {
		fmt.Fprintf(w, " %10s(%d)", k, counts[k])
	}
	fmt.Fprintln(w)
	for _, s := range r.Scores {
		fmt.Fprintf(w, "  %-18s", s.System)
		for _, k := range present {
			fmt.Fprintf(w, " %13.3f", s.ByKind[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n  judge agreement: %.0f%% of ratings had ≥80%% majority (paper: \"a third of the questions\")\n",
		r.HighAgreementShare*100)
}

// Score returns the named system's mean, or -1.
func (r *Figure3Result) Score(system string) float64 {
	for _, s := range r.Scores {
		if s.System == system {
			return s.Mean
		}
	}
	return -1
}
