package experiments

import (
	"context"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/eval"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
	"qunits/internal/segment"
)

// TestEndToEndPipeline walks the complete system independently of the
// Lab plumbing: generate → derive → index → search → judge. This is the
// test a newcomer reads to understand how the pieces compose.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Synthetic database (Fig. 2 schema).
	u := imdb.MustGenerate(imdb.Config{Seed: 42, Persons: 150, Movies: 100, CastPerMovie: 5})

	// 2. Segmentation dictionary over the database.
	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	seg := segment.NewSegmenter(dict)

	// 3. A query log and a catalog derived from it (§4.2).
	log := querylog.Generate(u, querylog.GenConfig{Seed: 43, Volume: 3000})
	cat, err := derive.FromQueryLog{Log: log, Segmenter: seg}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}

	// 4. The search engine (§3).
	engine, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}

	// 5. A query through the full pipeline.
	results := searchTopK(engine, "star wars cast", 1)
	if len(results) == 0 {
		t.Fatal("no results end to end")
	}
	top := results[0].Instance
	if top.Label() != "star wars" {
		t.Errorf("anchored on %q", top.Label())
	}

	// 6. Judged by the evaluation harness.
	oracle := eval.NewOracle(u.DB, map[string][]string{
		imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
		imdb.TableMovie:  {imdb.TableCast},
	})
	need := eval.NeedFromQuery(seg, "star wars cast")
	score := oracle.Score(need, eval.SystemResult{Text: top.Rendered.Text, Tuples: top.Tuples})
	if score < 0.5 {
		t.Errorf("end-to-end answer scored %v", score)
	}
	panel := eval.NewPanel(20, 0.08, 44)
	if m := eval.Mean(panel.Rate(score)); m < 0.4 {
		t.Errorf("panel mean %v", m)
	}
}

// TestLabSmallVsDefaultShapeStable: the Figure 3 ordering must not be an
// artifact of one scale. (The default scale is exercised by
// cmd/experiments; here we check a second small seed.)
func TestFigure3ShapeStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-lab test")
	}
	cfg := SmallConfig()
	cfg.Seed = 7
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := Figure3(lab)
	banks := r.Score("BANKS")
	human := r.Score("Qunits (human)")
	if banks >= human {
		t.Errorf("seed 7: BANKS (%.3f) >= human qunits (%.3f)", banks, human)
	}
	worstQunit := min4(r.Score("Qunits (schema)"), r.Score("Qunits (evidence)"), r.Score("Qunits (querylog)"), human)
	for _, base := range []string{"BANKS", "LCA", "MLCA"} {
		if r.Score(base) >= worstQunit {
			t.Errorf("seed 7: %s (%.3f) >= worst qunit (%.3f)", base, r.Score(base), worstQunit)
		}
	}
}

// searchTopK is the test-local replacement for the deleted SearchTopK
// shim: a positional top-k call that flattens errors to no results.
func searchTopK(e *search.Engine, query string, k int) []search.Result {
	resp, err := e.Search(context.Background(), search.Request{Query: query, K: k})
	if err != nil {
		return nil
	}
	return resp.Results
}
