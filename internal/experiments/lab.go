package experiments

import (
	"fmt"

	"qunits/internal/banks"
	"qunits/internal/derive"
	"qunits/internal/eval"
	"qunits/internal/evidence"
	"qunits/internal/graph"
	"qunits/internal/imdb"
	"qunits/internal/objectrank"
	"qunits/internal/querylog"
	"qunits/internal/search"
	"qunits/internal/segment"
	"qunits/internal/xtree"
)

// Config sizes a Lab. The zero value is invalid; use DefaultConfig or
// SmallConfig.
type Config struct {
	Seed         int64
	Persons      int
	Movies       int
	CastPerMovie int
	LogVolume    int
	CorpusPages  evidence.CorpusConfig
	Judges       int
	JudgeNoise   float64
	WorkloadSize int
}

// DefaultConfig is the full experiment scale: a tenth of the paper's
// query volume over a synthetic IMDb big enough for ranking differences
// to matter, fast enough to run in seconds.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Persons:      2400,
		Movies:       1200,
		CastPerMovie: 6,
		LogVolume:    9855,
		CorpusPages:  evidence.DefaultCorpusConfig(),
		Judges:       20,
		JudgeNoise:   0.08,
		WorkloadSize: 25,
	}
}

// SmallConfig is for tests: an order of magnitude smaller.
func SmallConfig() Config {
	return Config{
		Seed:         1,
		Persons:      300,
		Movies:       200,
		CastPerMovie: 5,
		LogVolume:    4000,
		CorpusPages: evidence.CorpusConfig{
			Seed: 1, MoviePages: 80, CastPages: 60, FilmographyPages: 60, SoundtrackPages: 25,
		},
		Judges:       20,
		JudgeNoise:   0.08,
		WorkloadSize: 25,
	}
}

// Lab is the assembled experimental apparatus: the database, the query
// log, the evidence corpus, the oracle and panel, all baselines and all
// qunit engines.
type Lab struct {
	Config    Config
	Universe  *imdb.Universe
	Log       *querylog.Log
	Pages     []evidence.Page
	Dict      *segment.Dictionary
	Segmenter *segment.Segmenter
	Oracle    *eval.Oracle
	Panel     *eval.Panel

	Banks      *banks.Engine
	Tree       *xtree.Tree
	ObjectRank *objectrank.Engine

	SchemaEngine   *search.Engine
	QuerylogEngine *search.Engine
	EvidenceEngine *search.Engine
	HumanEngine    *search.Engine
}

// NewLab builds everything. Construction is deterministic in the config.
func NewLab(cfg Config) (*Lab, error) {
	u, err := imdb.Generate(imdb.Config{
		Seed: cfg.Seed, Persons: cfg.Persons, Movies: cfg.Movies,
		CastPerMovie: cfg.CastPerMovie, PopularityExponent: 0.9,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating universe: %w", err)
	}
	logCfg := querylog.DefaultGenConfig()
	logCfg.Seed = cfg.Seed + 1
	logCfg.Volume = cfg.LogVolume
	log := querylog.Generate(u, logCfg)

	pages := evidence.BuildCorpus(u, cfg.CorpusPages)

	dict := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	seg := segment.NewSegmenter(dict)

	oracle := eval.NewOracle(u.DB, map[string][]string{
		imdb.TablePerson: {imdb.TableCast, imdb.TableCrew},
		imdb.TableMovie:  {imdb.TableCast},
	})
	panel := eval.NewPanel(cfg.Judges, cfg.JudgeNoise, cfg.Seed+2)

	lab := &Lab{
		Config: cfg, Universe: u, Log: log, Pages: pages,
		Dict: dict, Segmenter: seg, Oracle: oracle, Panel: panel,
	}

	dataGraph := graph.Build(u.DB)
	lab.Banks = banks.New(dataGraph, 0)
	lab.Tree = xtree.Build(u.DB, xtree.BuildOptions{EntityTables: []string{imdb.TablePerson, imdb.TableMovie}})
	lab.ObjectRank = objectrank.New(dataGraph, objectrank.Options{})

	engineOpts := search.Options{Synonyms: imdb.AttributeSynonyms()}
	build := func(strategy string) (*search.Engine, error) {
		switch strategy {
		case "schema":
			c, err := derive.FromSchema{}.Derive(u.DB)
			if err != nil {
				return nil, err
			}
			return search.NewEngine(c, engineOpts)
		case "querylog":
			c, err := derive.FromQueryLog{Log: log, Segmenter: seg}.Derive(u.DB)
			if err != nil {
				return nil, err
			}
			return search.NewEngine(c, engineOpts)
		case "evidence":
			c, err := derive.FromEvidence{Pages: pages, Dict: dict}.Derive(u.DB)
			if err != nil {
				return nil, err
			}
			return search.NewEngine(c, engineOpts)
		default:
			c, err := derive.Expert{}.Derive(u.DB)
			if err != nil {
				return nil, err
			}
			return search.NewEngine(c, engineOpts)
		}
	}
	if lab.SchemaEngine, err = build("schema"); err != nil {
		return nil, fmt.Errorf("experiments: schema engine: %w", err)
	}
	if lab.QuerylogEngine, err = build("querylog"); err != nil {
		return nil, fmt.Errorf("experiments: querylog engine: %w", err)
	}
	if lab.EvidenceEngine, err = build("evidence"); err != nil {
		return nil, fmt.Errorf("experiments: evidence engine: %w", err)
	}
	if lab.HumanEngine, err = build("human"); err != nil {
		return nil, fmt.Errorf("experiments: human engine: %w", err)
	}
	return lab, nil
}

// Systems returns the evaluated systems in the paper's Figure 3 order:
// the three prior-art baselines, the three derived-qunit variants, and
// the hand-built qunit set.
func (lab *Lab) Systems() []System {
	return []System{
		&BanksSystem{DB: lab.Universe.DB, Engine: lab.Banks},
		&LCASystem{Tree: lab.Tree},
		&MLCASystem{Tree: lab.Tree},
		&QunitSystem{Label: "Qunits (schema)", Engine: lab.SchemaEngine},
		&QunitSystem{Label: "Qunits (evidence)", Engine: lab.EvidenceEngine},
		&QunitSystem{Label: "Qunits (querylog)", Engine: lab.QuerylogEngine},
		&QunitSystem{Label: "Qunits (human)", Engine: lab.HumanEngine},
	}
}

// ExtendedSystems additionally includes ObjectRank — the fourth prior-art
// system the paper's introduction names, outside its Figure 3.
func (lab *Lab) ExtendedSystems() []System {
	base := lab.Systems()
	out := make([]System, 0, len(base)+1)
	out = append(out, base[:3]...)
	out = append(out, &ObjectRankSystem{DB: lab.Universe.DB, Engine: lab.ObjectRank})
	out = append(out, base[3:]...)
	return out
}
