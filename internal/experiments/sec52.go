package experiments

import (
	"fmt"
	"io"

	"qunits/internal/querylog"
)

// QuerylogResult is the §5.2 movie querylog benchmark reproduction.
type QuerylogResult struct {
	Stats     querylog.Stats
	Templates []querylog.TemplateStat
	Workload  []string
}

// QuerylogBenchmark analyzes the lab's synthetic log and constructs the
// benchmark workload exactly as §5.2 describes: classify, extract typed
// templates, take the top 14 by frequency, two queries each.
func QuerylogBenchmark(lab *Lab) *QuerylogResult {
	return &QuerylogResult{
		Stats:     querylog.Analyze(lab.Log, lab.Segmenter),
		Templates: querylog.TopTemplates(lab.Log, lab.Segmenter, 14),
		Workload:  querylog.BenchmarkWorkload(lab.Log, lab.Segmenter, 14, 2),
	}
}

// Render prints the statistics next to the paper's reported numbers.
func (r *QuerylogResult) Render(w io.Writer) {
	st := r.Stats
	fmt.Fprintln(w, "§5.2 — Movie Querylog Benchmark")
	fmt.Fprintf(w, "\n  base log: %d queries, %d unique (paper: 98,549 / 46,901 at 10× this scale)\n",
		st.Total, st.Unique)
	fmt.Fprintf(w, "  movie-related: %.0f%% of unique queries (paper: ~93%%)\n", st.MovieRelated*100)
	fmt.Fprintln(w, "\n  query class mix (volume-weighted)      measured   paper")
	rows := []struct {
		class querylog.Class
		paper string
	}{
		{querylog.ClassSingleEntity, "≥36%"},
		{querylog.ClassEntityAttribute, "~20%"},
		{querylog.ClassMultiEntity, "~2%"},
		{querylog.ClassComplex, "<2%"},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "    %-34s %6.1f%%   %s\n", row.class, st.ClassFraction(row.class)*100, row.paper)
	}
	fmt.Fprintln(w, "\n  top typed templates (by frequency):")
	for i, t := range r.Templates {
		example := ""
		if len(t.Queries) > 0 {
			example = t.Queries[0]
		}
		fmt.Fprintf(w, "    %2d. %-38s freq %-6d e.g. %q\n", i+1, t.Template, t.Freq, example)
	}
	fmt.Fprintf(w, "\n  benchmark workload (%d queries = top 14 templates × 2):\n", len(r.Workload))
	for i, q := range r.Workload {
		fmt.Fprintf(w, "    %2d. %s\n", i+1, q)
	}
}
