// Package experiments wires every subsystem together and regenerates the
// paper's tables and figures: the Table 1 user study, the §5.2 query-log
// benchmark statistics, and the Figure 3 result-quality comparison.
package experiments

import (
	"context"
	"strings"

	"qunits/internal/banks"
	"qunits/internal/eval"
	"qunits/internal/objectrank"
	"qunits/internal/relational"
	"qunits/internal/search"
	"qunits/internal/xtree"
)

// System is a keyword-search system under evaluation: it answers a query
// with its single best result (the paper's judges rated one answer per
// system per query).
type System interface {
	// Name labels the system in reports.
	Name() string
	// Answer returns the top result; ok is false when the system returns
	// nothing.
	Answer(query string) (eval.SystemResult, bool)
}

// BanksSystem adapts the BANKS baseline.
type BanksSystem struct {
	DB     *relational.Database
	Engine *banks.Engine
}

// Name implements System.
func (s *BanksSystem) Name() string { return "BANKS" }

// Answer implements System.
func (s *BanksSystem) Answer(query string) (eval.SystemResult, bool) {
	res := s.Engine.Search(query, 1)
	if len(res) == 0 {
		return eval.SystemResult{}, false
	}
	var parts []string
	for _, ref := range res[0].Tuples {
		parts = append(parts, s.DB.Label(ref))
	}
	return eval.SystemResult{
		Text:   strings.Join(parts, " "),
		Tuples: res[0].Tuples,
	}, true
}

// LCASystem adapts the smallest-LCA baseline.
type LCASystem struct {
	Tree *xtree.Tree
}

// Name implements System.
func (s *LCASystem) Name() string { return "LCA" }

// Answer implements System.
func (s *LCASystem) Answer(query string) (eval.SystemResult, bool) {
	res := s.Tree.SearchLCA(query, 1)
	if len(res) == 0 {
		return eval.SystemResult{}, false
	}
	return eval.SystemResult{Text: res[0].Text, Tuples: res[0].Tuples}, true
}

// MLCASystem adapts the meaningful-LCA baseline.
type MLCASystem struct {
	Tree *xtree.Tree
}

// Name implements System.
func (s *MLCASystem) Name() string { return "MLCA" }

// Answer implements System.
func (s *MLCASystem) Answer(query string) (eval.SystemResult, bool) {
	res := s.Tree.SearchMLCA(query, 1)
	if len(res) == 0 {
		return eval.SystemResult{}, false
	}
	return eval.SystemResult{Text: res[0].Text, Tuples: res[0].Tuples}, true
}

// ObjectRankSystem adapts the ObjectRank baseline — not part of the
// paper's Figure 3, but named in its introduction as the
// authority-transfer ranking approach; included as an extended
// comparison. ObjectRank returns individual tuples, so the answer is the
// top tuple plus its resolved foreign keys (the friendliest defensible
// demarcation for it).
type ObjectRankSystem struct {
	DB     *relational.Database
	Engine *objectrank.Engine
}

// Name implements System.
func (s *ObjectRankSystem) Name() string { return "ObjectRank" }

// Answer implements System.
func (s *ObjectRankSystem) Answer(query string) (eval.SystemResult, bool) {
	res := s.Engine.Search(query, 1)
	if len(res) == 0 {
		return eval.SystemResult{}, false
	}
	ref := res[0].Ref
	tuples := []relational.TupleRef{ref}
	parts := []string{s.DB.Label(ref)}
	t := s.DB.Table(ref.Table)
	for _, fk := range t.Schema().ForeignKeys {
		if refTable, refRow, ok := s.DB.Resolve(ref.Table, ref.Row, fk.Column); ok {
			r := relational.TupleRef{Table: refTable, Row: refRow}
			tuples = append(tuples, r)
			parts = append(parts, s.DB.Label(r))
		}
	}
	return eval.SystemResult{Text: strings.Join(parts, " "), Tuples: tuples}, true
}

// QunitSystem adapts a qunit search engine built from one derivation
// strategy's catalog.
type QunitSystem struct {
	Label  string
	Engine *search.Engine
}

// Name implements System.
func (s *QunitSystem) Name() string { return s.Label }

// Answer implements System.
func (s *QunitSystem) Answer(query string) (eval.SystemResult, bool) {
	resp, err := s.Engine.Search(context.Background(), search.Request{Query: query, K: 1})
	if err != nil || len(resp.Results) == 0 {
		return eval.SystemResult{}, false
	}
	inst := resp.Results[0].Instance
	return eval.SystemResult{Text: inst.Rendered.Text, Tuples: inst.Tuples}, true
}
