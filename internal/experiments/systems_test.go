package experiments

import (
	"strings"
	"testing"
)

func TestSystemNames(t *testing.T) {
	lab := sharedLab(t)
	want := []string{"BANKS", "LCA", "MLCA", "Qunits (schema)", "Qunits (evidence)", "Qunits (querylog)", "Qunits (human)"}
	systems := lab.Systems()
	if len(systems) != len(want) {
		t.Fatalf("systems = %d", len(systems))
	}
	for i, s := range systems {
		if s.Name() != want[i] {
			t.Errorf("system %d = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestEverySystemAnswersTheRunningExample(t *testing.T) {
	lab := sharedLab(t)
	for _, sys := range lab.Systems() {
		res, ok := sys.Answer("star wars cast")
		if !ok {
			t.Errorf("%s: no answer for the paper's running example", sys.Name())
			continue
		}
		if len(res.Tuples) == 0 {
			t.Errorf("%s: answer carries no provenance", sys.Name())
		}
		if res.Text == "" {
			t.Errorf("%s: answer carries no text", sys.Name())
		}
	}
}

func TestSystemsHandleNoMatch(t *testing.T) {
	lab := sharedLab(t)
	for _, sys := range lab.Systems() {
		if res, ok := sys.Answer("qqqq zzzz xxxx"); ok && len(res.Tuples) > 0 {
			// Some systems legitimately answer nothing; none may panic or
			// return tuple-less "answers" — and a nonsense answer should
			// at least be flagged by its emptiness.
			if strings.TrimSpace(res.Text) == "" {
				t.Errorf("%s: empty answer claimed ok", sys.Name())
			}
		}
	}
}

func TestQunitSystemAnswerQuality(t *testing.T) {
	lab := sharedLab(t)
	sys := &QunitSystem{Label: "human", Engine: lab.HumanEngine}
	res, ok := sys.Answer("george clooney")
	if !ok {
		t.Fatal("no answer")
	}
	if !strings.Contains(strings.ToLower(res.Text), "clooney") {
		t.Errorf("answer text lacks the entity: %q", res.Text[:min(80, len(res.Text))])
	}
	hasPerson := false
	for _, ref := range res.Tuples {
		if ref.Table == "person" {
			hasPerson = true
		}
	}
	if !hasPerson {
		t.Error("person profile lacks the person tuple")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
