package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qunits/internal/eval"
)

// Table1Result is the simulated user study.
type Table1Result struct {
	Study *eval.Study
	Stats eval.StudyStats
}

// Table1 runs the user-study simulation with the given seed.
func Table1(seed int64) *Table1Result {
	study := eval.RunStudy(eval.DefaultPersonas(), seed)
	return &Table1Result{Study: study, Stats: study.Stats()}
}

// Render prints the needs × query-forms matrix in the paper's layout:
// each cell lists the subjects who expressed that need through that
// form.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Information Needs vs Keyword Queries")
	fmt.Fprintln(w, "(five simulated users a–e, five information needs each)")
	fmt.Fprintln(w)

	matrix := r.Study.Matrix()
	forms := eval.AllForms()

	// Only render columns that were actually used, preserving paper
	// order.
	var used []eval.QueryForm
	for _, f := range forms {
		for _, row := range matrix {
			if len(row[f]) > 0 {
				used = append(used, f)
				break
			}
		}
	}

	fmt.Fprintf(w, "  %-18s", "info. need")
	for i := range used {
		fmt.Fprintf(w, " q%-3d", i+1)
	}
	fmt.Fprintln(w)
	for _, need := range eval.AllNeeds() {
		row := matrix[need]
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-18s", need)
		for _, f := range used {
			cell := append([]string(nil), row[f]...)
			sort.Strings(cell)
			fmt.Fprintf(w, " %-4s", strings.Join(uniq(cell), ","))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n  query form legend:")
	for i, f := range used {
		fmt.Fprintf(w, "    q%-3d %s\n", i+1, f)
	}
	fmt.Fprintf(w, "\n  %d queries total; %d single-entity (paper: 10 of 25), %d underspecified (paper: 8)\n",
		r.Stats.Queries, r.Stats.SingleEntity, r.Stats.Underspecified)
	fmt.Fprintf(w, "  many-to-many: %d needs expressed via ≥2 forms, %d forms serving ≥2 needs\n",
		r.Stats.NeedsWithMultipleForms, r.Stats.FormsWithMultipleNeeds)
}

func uniq(sorted []string) []string {
	var out []string
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
