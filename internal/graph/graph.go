// Package graph builds the tuple-level data graph used by graph-based
// keyword search systems: nodes are tuples, edges are foreign-key links.
// BANKS (Bhalotia et al., ICDE 2002) — one of the paper's baselines —
// searches this graph for spanning trees connecting keyword matches.
package graph

import (
	"sort"

	"qunits/internal/ir"
	"qunits/internal/relational"
)

// NodeID indexes a node within a Graph.
type NodeID = int

// Graph is an undirected view of the tuple/foreign-key graph with
// in-degree tracked for node-prestige scoring.
type Graph struct {
	refs   []relational.TupleRef
	index  map[relational.TupleRef]NodeID
	adj    [][]NodeID
	indeg  []int
	text   []string            // searchable text per node
	lookup map[string][]NodeID // token -> nodes containing it
}

// Build constructs the data graph: one node per tuple in every table, one
// edge per resolvable foreign-key reference. Node text is the
// concatenation of the tuple's searchable columns, which drives keyword
// matching.
func Build(db *relational.Database) *Graph {
	g := &Graph{index: make(map[relational.TupleRef]NodeID), lookup: make(map[string][]NodeID)}

	// First pass: create nodes.
	db.Tables(func(t *relational.Table) {
		schema := t.Schema()
		searchable := make([]int, 0, len(schema.Columns))
		for i, c := range schema.Columns {
			if c.Searchable {
				searchable = append(searchable, i)
			}
		}
		t.Scan(func(id int, row relational.Row) bool {
			ref := relational.TupleRef{Table: schema.Name, Row: id}
			nid := len(g.refs)
			g.refs = append(g.refs, ref)
			g.index[ref] = nid
			var text string
			for _, ci := range searchable {
				if !row[ci].IsNull() {
					if text != "" {
						text += " "
					}
					text += row[ci].Render()
				}
			}
			g.text = append(g.text, text)
			return true
		})
	})
	g.adj = make([][]NodeID, len(g.refs))
	g.indeg = make([]int, len(g.refs))

	// Second pass: edges along foreign keys.
	db.Tables(func(t *relational.Table) {
		schema := t.Schema()
		t.Scan(func(id int, row relational.Row) bool {
			from := g.index[relational.TupleRef{Table: schema.Name, Row: id}]
			for _, fk := range schema.ForeignKeys {
				refTable, refRow, ok := db.Resolve(schema.Name, id, fk.Column)
				if !ok {
					continue
				}
				to := g.index[relational.TupleRef{Table: refTable, Row: refRow}]
				g.adj[from] = append(g.adj[from], to)
				g.adj[to] = append(g.adj[to], from)
				g.indeg[to]++
			}
			return true
		})
	})

	// Token lookup for keyword matching.
	for nid, text := range g.text {
		seen := map[string]bool{}
		for _, tok := range ir.Tokenize(text) {
			if !seen[tok] {
				seen[tok] = true
				g.lookup[tok] = append(g.lookup[tok], nid)
			}
		}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.refs) }

// Ref returns the tuple a node represents.
func (g *Graph) Ref(n NodeID) relational.TupleRef { return g.refs[n] }

// Node returns the node for a tuple.
func (g *Graph) Node(ref relational.TupleRef) (NodeID, bool) {
	n, ok := g.index[ref]
	return n, ok
}

// Neighbors returns a node's adjacency list (shared; do not mutate).
func (g *Graph) Neighbors(n NodeID) []NodeID { return g.adj[n] }

// InDegree returns the number of foreign-key references pointing at the
// node; BANKS uses this as node prestige.
func (g *Graph) InDegree(n NodeID) int { return g.indeg[n] }

// Text returns the node's searchable text.
func (g *Graph) Text(n NodeID) string { return g.text[n] }

// MatchKeyword returns the nodes whose text contains the token, sorted.
func (g *Graph) MatchKeyword(token string) []NodeID {
	nodes := g.lookup[token]
	out := append([]NodeID(nil), nodes...)
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}
