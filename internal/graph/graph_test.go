package graph

import (
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func testGraph(t *testing.T) (*imdb.Universe, *Graph) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 120, Movies: 80, CastPerMovie: 4})
	return u, Build(u.DB)
}

func TestBuildCounts(t *testing.T) {
	u, g := testGraph(t)
	if g.Len() != u.DB.TotalRows() {
		t.Fatalf("nodes = %d, tuples = %d", g.Len(), u.DB.TotalRows())
	}
	if g.EdgeCount() == 0 {
		t.Fatal("no edges")
	}
}

func TestNodeRoundTrip(t *testing.T) {
	_, g := testGraph(t)
	for i := 0; i < g.Len(); i += 97 {
		ref := g.Ref(i)
		n, ok := g.Node(ref)
		if !ok || n != i {
			t.Fatalf("round trip failed for node %d", i)
		}
	}
	if _, ok := g.Node(relational.TupleRef{Table: "nope", Row: 0}); ok {
		t.Error("found nonexistent node")
	}
}

func TestEdgesFollowForeignKeys(t *testing.T) {
	u, g := testGraph(t)
	// Every cast tuple must be adjacent to its person and movie tuples.
	castT := u.DB.Table(imdb.TableCast)
	checked := 0
	castT.Scan(func(id int, row relational.Row) bool {
		if checked >= 25 {
			return false
		}
		checked++
		castNode, _ := g.Node(relational.TupleRef{Table: imdb.TableCast, Row: id})
		neighbors := map[relational.TupleRef]bool{}
		for _, nb := range g.Neighbors(castNode) {
			neighbors[g.Ref(nb)] = true
		}
		pTable, pRow, ok := u.DB.Resolve(imdb.TableCast, id, "person_id")
		if !ok || !neighbors[relational.TupleRef{Table: pTable, Row: pRow}] {
			t.Fatalf("cast#%d not adjacent to its person", id)
		}
		mTable, mRow, ok := u.DB.Resolve(imdb.TableCast, id, "movie_id")
		if !ok || !neighbors[relational.TupleRef{Table: mTable, Row: mRow}] {
			t.Fatalf("cast#%d not adjacent to its movie", id)
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no cast rows checked")
	}
}

func TestInDegreeReflectsPopularity(t *testing.T) {
	u, g := testGraph(t)
	// The most popular person should have higher in-degree than the least
	// popular (they appear in more cast/crew rows).
	top, _ := g.Node(relational.TupleRef{Table: imdb.TablePerson, Row: u.Persons[0].Row})
	bottom, _ := g.Node(relational.TupleRef{Table: imdb.TablePerson, Row: u.Persons[len(u.Persons)-1].Row})
	if g.InDegree(top) <= g.InDegree(bottom) {
		t.Errorf("indegree(top)=%d <= indegree(bottom)=%d", g.InDegree(top), g.InDegree(bottom))
	}
}

func TestMatchKeyword(t *testing.T) {
	u, g := testGraph(t)
	nodes := g.MatchKeyword("clooney")
	if len(nodes) == 0 {
		t.Fatal("no match for clooney")
	}
	found := false
	for _, n := range nodes {
		if g.Ref(n).Table == imdb.TablePerson {
			found = true
			if got := g.Text(n); got == "" {
				t.Error("matched node has empty text")
			}
		}
	}
	if !found {
		t.Error("clooney did not match a person tuple")
	}
	if len(g.MatchKeyword("zzzzneverthere")) != 0 {
		t.Error("nonsense keyword matched")
	}
	_ = u
}

func TestMatchKeywordSorted(t *testing.T) {
	_, g := testGraph(t)
	nodes := g.MatchKeyword("the")
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatal("MatchKeyword result not sorted")
		}
	}
}
