package imdb

// Word lists for the synthetic generator. Names and titles are built
// compositionally from these fragments so that arbitrarily large databases
// still have distinct, plausible, tokenizable entity names.

// famousPeople are real-sounding anchors placed at the head of the
// popularity distribution; they include every person the paper's examples
// mention so the running examples (george clooney movies, julio iglesias)
// work verbatim against the synthetic data.
var famousPeople = []string{
	"george clooney",
	"tom hanks",
	"angelina jolie",
	"julio iglesias",
	"brad pitt",
	"meryl streep",
	"julia roberts",
	"denzel washington",
	"harrison ford",
	"natalie portman",
	"kate winslet",
	"morgan freeman",
	"cate blanchett",
	"samuel jackson",
	"sigourney weaver",
	"al pacino",
	"jodie foster",
	"robert de niro",
	"emma thompson",
	"anthony hopkins",
}

// famousMovies anchor the head of the movie popularity distribution and
// include every title the paper's examples mention.
var famousMovies = []string{
	"star wars",
	"batman",
	"cast away",
	"terminator",
	"tomb raider",
	"ocean's eleven",
	"the godfather",
	"casablanca",
	"titanic",
	"jurassic park",
	"the matrix",
	"forrest gump",
	"gladiator",
	"alien",
	"jaws",
	"rocky",
	"goodfellas",
	"vertigo",
	"psycho",
	"chinatown",
}

var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "anthony",
	"nancy", "mark", "lisa", "donald", "betty", "steven", "margaret", "paul",
	"sandra", "andrew", "ashley", "joshua", "kimberly", "kenneth", "emily",
	"kevin", "donna", "brian", "michelle", "edward", "dorothy", "ronald",
	"carol", "timothy", "amanda", "jason", "melissa", "jeffrey", "deborah",
	"gary", "stephanie", "ryan", "rebecca", "nicholas", "sharon", "eric",
	"laura", "jacob", "cynthia", "jonathan", "kathleen", "larry", "amy",
	"frank", "shirley", "scott", "angela", "justin", "helen", "brandon",
	"anna", "raymond", "brenda", "gregory", "pamela", "samuel", "nicole",
	"benjamin", "ruth", "patrick", "katherine", "jack", "samantha", "dennis",
	"christine", "jerry", "emma", "alexander", "catherine", "tyler",
	"debra", "aaron", "virginia", "jose", "rachel", "adam", "janet",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee",
	"perez", "thompson", "white", "harris", "sanchez", "clark", "ramirez",
	"lewis", "robinson", "walker", "young", "allen", "king", "wright",
	"scott", "torres", "nguyen", "hill", "flores", "green", "adams",
	"nelson", "baker", "hall", "rivera", "campbell", "mitchell", "carter",
	"roberts", "gomez", "phillips", "evans", "turner", "diaz", "parker",
	"cruz", "edwards", "collins", "reyes", "stewart", "morris", "morales",
	"murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper",
	"peterson", "bailey", "reed", "kelly", "howard", "ramos", "kim", "cox",
	"ward", "richardson", "watson", "brooks", "chavez", "wood", "james",
	"bennett", "gray", "mendoza", "ruiz", "hughes", "price", "alvarez",
	"castillo", "sanders", "patel", "myers", "long", "ross", "foster",
}

var titleAdjectives = []string{
	"last", "dark", "silent", "hidden", "broken", "lost", "final",
	"eternal", "crimson", "golden", "savage", "gentle", "burning",
	"frozen", "distant", "forgotten", "midnight", "perfect", "wild",
	"quiet", "restless", "shattered", "secret", "stolen", "fearless",
	"endless", "bitter", "brave", "cruel", "daring",
}

var titleNouns = []string{
	"horizon", "empire", "shadow", "river", "garden", "storm", "crown",
	"voyage", "whisper", "fortune", "canyon", "harbor", "island", "legend",
	"mirror", "mountain", "ocean", "promise", "reckoning", "refuge",
	"requiem", "sanctuary", "serpent", "signal", "silence", "sunrise",
	"symphony", "tempest", "threshold", "tide", "tower", "valley", "winter",
	"witness", "zero", "paradox", "labyrinth", "covenant", "exodus",
	"inferno",
}

var titlePatterns = []string{
	"the %a %n",
	"%a %n",
	"the %n",
	"%n of the %a %n",
	"a %a %n",
	"the %n and the %n",
	"%a %n rising",
	"return of the %n",
	"beyond the %n",
	"the last %n",
}

var genres = []string{
	"drama", "comedy", "thriller", "action", "romance", "horror",
	"documentary", "animation", "science fiction", "western", "musical",
	"crime", "fantasy", "war", "mystery", "adventure", "biography",
	"family", "film noir", "sport",
}

var places = []string{
	"los angeles", "new york", "london", "paris", "rome", "tokyo",
	"vancouver", "toronto", "sydney", "berlin", "prague", "budapest",
	"chicago", "san francisco", "seattle", "atlanta", "dublin",
	"barcelona", "mexico city", "mumbai", "hong kong", "auckland",
	"cape town", "buenos aires", "montreal",
}

var placeLevels = []string{"city", "studio", "backlot", "on location"}

var castRoles = []string{
	"actor", "actress", "lead", "supporting", "cameo", "narrator",
	"villain", "hero", "detective", "doctor", "captain", "stranger",
}

var crewJobs = []string{
	"director", "producer", "writer", "composer", "cinematographer",
	"editor", "production designer", "costume designer",
}

var companyNames = []string{
	"paragon pictures", "silverlight studios", "northstar films",
	"atlas entertainment group", "blue harbor productions",
	"meridian media", "cascade cinema", "ironwood pictures",
	"luminary films", "vanguard studios", "redwood entertainment",
	"summit crest pictures", "orion gate films", "stellar arc media",
	"granite peak productions",
}

var companyCountries = []string{"usa", "uk", "france", "germany", "canada", "japan", "india", "australia"}

var companyKinds = []string{"production", "distribution", "effects", "sound"}

var keywordWords = []string{
	"heist", "betrayal", "revenge", "redemption", "road trip", "space",
	"robot", "alien invasion", "time travel", "courtroom", "undercover",
	"assassin", "conspiracy", "survival", "wedding", "prison escape",
	"treasure", "haunted house", "small town", "coming of age",
	"based on novel", "sequel", "remake", "dystopia", "superhero",
	"martial arts", "submarine", "desert", "jungle", "heirloom",
}

var awardNames = []string{
	"academy award for best picture", "academy award for best actor",
	"academy award for best actress", "academy award for best director",
	"golden globe for best drama", "golden globe for best comedy",
	"bafta for best film", "palme d'or", "golden lion",
	"screen actors guild award",
}

var trackWords = []string{
	"theme", "overture", "ballad", "march", "lament", "reprise",
	"serenade", "nocturne", "anthem", "interlude", "prelude", "finale",
}

var plotFragments = []string{
	"a reluctant hero must confront a buried past",
	"two strangers cross paths in a city that never sleeps",
	"an investigation unravels a conspiracy reaching the highest offices",
	"a family secret surfaces after decades of silence",
	"an unlikely friendship forms against the backdrop of war",
	"a scientist races against time to avert catastrophe",
	"a small town hides a darkness beneath its charm",
	"a journey across the frontier tests loyalty and love",
	"a con artist plans one final score",
	"a musician searches for the song that got away",
	"an exile returns home to settle an old debt",
	"a detective follows a trail of impossible clues",
}

var triviaFragments = []string{
	"the production ran forty days over schedule",
	"most exterior shots used practical effects",
	"the lead role was recast two weeks before filming",
	"the score was recorded in a single live session",
	"the screenplay went through eleven drafts",
	"several scenes were improvised on set",
	"the film was shot entirely in sequence",
	"the director has a brief uncredited cameo",
}
