package imdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"qunits/internal/relational"
)

// Config controls the size and randomness of the generated database.
type Config struct {
	// Seed drives all randomness; equal seeds produce identical databases.
	Seed int64
	// Persons is the number of people to generate (minimum: the famous
	// anchor set).
	Persons int
	// Movies is the number of movies to generate.
	Movies int
	// CastPerMovie is the mean cast size.
	CastPerMovie int
	// PopularityExponent shapes the Zipfian head; ~0.8-1.2 is realistic.
	PopularityExponent float64
}

// DefaultConfig returns a laptop-scale configuration: large enough that
// ranking quality differences are visible, small enough that the full
// experiment suite runs in seconds.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Persons:            2400,
		Movies:             1200,
		CastPerMovie:       6,
		PopularityExponent: 0.9,
	}
}

// Entity is one searchable database entity (a person or a movie) together
// with its popularity weight. The query log generator, evidence renderer,
// and evaluation oracle all sample entities through this view.
type Entity struct {
	// Name is the searchable surface form (person name or movie title),
	// lowercase.
	Name string
	// Table is the entity's table (person or movie).
	Table string
	// Row is the RowID in that table.
	Row int
	// PK is the primary-key value.
	PK int64
	// Weight is the Zipfian popularity mass; higher means more queried.
	Weight float64
}

// Universe bundles the generated database with the entity views and
// samplers the rest of the system needs.
type Universe struct {
	// DB is the generated relational database.
	DB *relational.Database
	// Persons, sorted by descending weight.
	Persons []Entity
	// Movies, sorted by descending weight.
	Movies []Entity

	personCum []float64
	movieCum  []float64
}

// Generate builds the synthetic IMDb.
func Generate(cfg Config) (*Universe, error) {
	if cfg.Persons < len(famousPeople) {
		cfg.Persons = len(famousPeople)
	}
	if cfg.Movies < len(famousMovies) {
		cfg.Movies = len(famousMovies)
	}
	if cfg.CastPerMovie <= 0 {
		cfg.CastPerMovie = 6
	}
	if cfg.PopularityExponent <= 0 {
		cfg.PopularityExponent = 0.9
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDatabase("imdb")
	for _, s := range Schemas() {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}

	u := &Universe{DB: db}

	// --- genre, locations ---
	genreT := db.Table(TableGenre)
	for i, g := range genres {
		genreT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(g)})
	}
	locT := db.Table(TableLocations)
	locID := int64(1)
	for _, p := range places {
		lvl := placeLevels[r.Intn(len(placeLevels))]
		locT.MustInsert(relational.Row{relational.Int(locID), relational.String(p), relational.String(lvl)})
		locID++
	}

	// --- person ---
	personT := db.Table(TablePerson)
	personNames := makeUniqueNames(r, cfg.Persons, famousPeople, func() string {
		return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
	})
	for i, name := range personNames {
		g := "m"
		if r.Intn(2) == 0 {
			g = "f"
		}
		bd := fmt.Sprintf("%04d-%02d-%02d", 1925+r.Intn(75), 1+r.Intn(12), 1+r.Intn(28))
		id := int64(i + 1)
		row := personT.MustInsert(relational.Row{
			relational.Int(id), relational.String(name),
			relational.String(bd), relational.String(g),
		})
		u.Persons = append(u.Persons, Entity{
			Name: name, Table: TablePerson, Row: row, PK: id,
			Weight: zipfWeight(i, cfg.PopularityExponent),
		})
	}

	// --- info (one plot per movie), movie ---
	infoT := db.Table(TableInfo)
	movieT := db.Table(TableMovie)
	movieTitles := makeMovieTitles(r, cfg.Movies)
	for i, title := range movieTitles {
		id := int64(i + 1)
		plot := plotFragments[r.Intn(len(plotFragments))] + "; " +
			plotFragments[r.Intn(len(plotFragments))]
		infoT.MustInsert(relational.Row{relational.Int(id), relational.String(plot)})
		year := 1950 + r.Intn(59) // up to 2008, the paper's horizon
		rating := 10 * (0.35 + 0.65*r.Float64()*r.Float64())
		rating = math.Round(rating*10) / 10
		row := movieT.MustInsert(relational.Row{
			relational.Int(id), relational.String(title),
			relational.Int(int64(year)), relational.Float(rating),
			relational.Int(int64(1 + r.Intn(len(genres)))),
			relational.Int(int64(1 + r.Intn(len(places)))),
			relational.Int(id),
		})
		u.Movies = append(u.Movies, Entity{
			Name: title, Table: TableMovie, Row: row, PK: id,
			Weight: zipfWeight(i, cfg.PopularityExponent),
		})
	}

	u.buildSamplers()

	// --- cast: popular people cluster in popular movies ---
	castT := db.Table(TableCast)
	for _, m := range u.Movies {
		n := 1 + r.Intn(2*cfg.CastPerMovie)
		seen := map[int64]bool{}
		for j := 0; j < n; j++ {
			p := u.SamplePerson(r)
			if seen[p.PK] {
				continue
			}
			seen[p.PK] = true
			role := castRoles[r.Intn(len(castRoles))]
			castT.MustInsert(relational.Row{
				relational.Int(p.PK), relational.Int(m.PK), relational.String(role),
			})
		}
	}

	// --- crew: every movie has a director plus a couple of others ---
	crewT := db.Table(TableCrew)
	for _, m := range u.Movies {
		jobs := []string{"director"}
		for j := 0; j < 1+r.Intn(3); j++ {
			jobs = append(jobs, crewJobs[1+r.Intn(len(crewJobs)-1)])
		}
		for _, job := range jobs {
			p := u.SamplePerson(r)
			crewT.MustInsert(relational.Row{
				relational.Int(p.PK), relational.Int(m.PK), relational.String(job),
			})
		}
	}

	// --- aka titles for ~20% of movies ---
	akaT := db.Table(TableAkaTitle)
	for _, m := range u.Movies {
		if r.Float64() < 0.2 {
			aka := "aka " + titleNouns[r.Intn(len(titleNouns))] + " " + titleNouns[r.Intn(len(titleNouns))]
			akaT.MustInsert(relational.Row{relational.Int(m.PK), relational.String(aka)})
		}
	}

	// --- companies ---
	compT := db.Table(TableCompany)
	for i, c := range companyNames {
		compT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)), relational.String(c),
			relational.String(companyCountries[r.Intn(len(companyCountries))]),
		})
	}
	mcT := db.Table(TableMovieCompany)
	for _, m := range u.Movies {
		for j := 0; j < 1+r.Intn(2); j++ {
			mcT.MustInsert(relational.Row{
				relational.Int(m.PK),
				relational.Int(int64(1 + r.Intn(len(companyNames)))),
				relational.String(companyKinds[r.Intn(len(companyKinds))]),
			})
		}
	}

	// --- keywords ---
	kwT := db.Table(TableKeyword)
	for i, k := range keywordWords {
		kwT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(k)})
	}
	mkT := db.Table(TableMovieKeyword)
	for _, m := range u.Movies {
		n := 2 + r.Intn(4)
		seen := map[int64]bool{}
		for j := 0; j < n; j++ {
			k := int64(1 + r.Intn(len(keywordWords)))
			if seen[k] {
				continue
			}
			seen[k] = true
			mkT.MustInsert(relational.Row{relational.Int(m.PK), relational.Int(k)})
		}
	}

	// --- awards: high-rated movies get nominations ---
	awT := db.Table(TableAward)
	for i, a := range awardNames {
		awT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(a)})
	}
	maT := db.Table(TableMovieAward)
	for _, m := range u.Movies {
		rt, _ := movieT.Get(m.Row, "rating")
		if rt.AsFloat() >= 7.5 && r.Float64() < 0.6 {
			yr, _ := movieT.Get(m.Row, "releasedate")
			maT.MustInsert(relational.Row{
				relational.Int(m.PK),
				relational.Int(int64(1 + r.Intn(len(awardNames)))),
				relational.Int(yr.AsInt() + 1),
				relational.Bool(r.Float64() < 0.35),
			})
		}
	}

	// --- soundtrack for ~30% of movies ---
	stT := db.Table(TableSoundtrack)
	for _, m := range u.Movies {
		if r.Float64() < 0.3 {
			for j := 0; j < 1+r.Intn(3); j++ {
				track := trackWords[r.Intn(len(trackWords))] + " in " +
					titleNouns[r.Intn(len(titleNouns))]
				artist := u.SamplePerson(r).Name
				stT.MustInsert(relational.Row{
					relational.Int(m.PK), relational.String(track), relational.String(artist),
				})
			}
		}
	}

	// --- box office for ~85% of movies ---
	boT := db.Table(TableBoxOffice)
	for _, m := range u.Movies {
		if r.Float64() < 0.85 {
			gross := int64(1+r.Intn(900)) * 1_000_000
			boT.MustInsert(relational.Row{
				relational.Int(m.PK), relational.Int(gross),
				relational.Int(gross / int64(3+r.Intn(10))),
			})
		}
	}

	// --- trivia for ~40% of movies ---
	trT := db.Table(TableTrivia)
	for _, m := range u.Movies {
		if r.Float64() < 0.4 {
			for j := 0; j < 1+r.Intn(2); j++ {
				trT.MustInsert(relational.Row{
					relational.Int(m.PK),
					relational.String(triviaFragments[r.Intn(len(triviaFragments))]),
				})
			}
		}
	}

	// Index every foreign-key column: ReferencingRows and the data-graph
	// builder lean on these heavily.
	db.Tables(func(t *relational.Table) {
		for _, fk := range t.Schema().ForeignKeys {
			if err := t.CreateIndex(fk.Column); err != nil {
				panic(err) // unreachable: columns come from validated schemas
			}
		}
	})

	if err := db.ValidateForeignKeys(); err != nil {
		return nil, fmt.Errorf("imdb: generated database fails FK validation: %w", err)
	}
	return u, nil
}

// MustGenerate is Generate that panics on error; for tests and examples.
func MustGenerate(cfg Config) *Universe {
	u, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

func zipfWeight(rank int, s float64) float64 {
	return 1 / math.Pow(float64(rank+1), s)
}

// ZipfWeight is the popularity mass assigned to the entity at the given
// zero-based popularity rank. Exported so internal/synth assigns weights
// on the same curve when it builds universes at scale.
func ZipfWeight(rank int, s float64) float64 {
	return zipfWeight(rank, s)
}

// NewUniverse wraps an already-populated database with the entity views
// and popularity samplers the query-log generator and evaluation oracle
// need. The entity slices must be sorted by descending weight, matching
// what Generate produces; internal/synth uses this to return universes
// built by its streaming generator.
func NewUniverse(db *relational.Database, persons, movies []Entity) *Universe {
	u := &Universe{DB: db, Persons: persons, Movies: movies}
	u.buildSamplers()
	return u
}

func (u *Universe) buildSamplers() {
	u.personCum = cumulative(u.Persons)
	u.movieCum = cumulative(u.Movies)
}

func cumulative(es []Entity) []float64 {
	cum := make([]float64, len(es))
	total := 0.0
	for i, e := range es {
		total += e.Weight
		cum[i] = total
	}
	return cum
}

func sampleByWeight(r *rand.Rand, es []Entity, cum []float64) Entity {
	if len(es) == 0 {
		return Entity{}
	}
	x := r.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum, x)
	if i >= len(es) {
		i = len(es) - 1
	}
	return es[i]
}

// SamplePerson draws a person with probability proportional to
// popularity.
func (u *Universe) SamplePerson(r *rand.Rand) Entity {
	return sampleByWeight(r, u.Persons, u.personCum)
}

// SampleMovie draws a movie with probability proportional to popularity.
func (u *Universe) SampleMovie(r *rand.Rand) Entity {
	return sampleByWeight(r, u.Movies, u.movieCum)
}

// FindPerson returns the person entity with the given name, if any.
func (u *Universe) FindPerson(name string) (Entity, bool) {
	return findEntity(u.Persons, name)
}

// FindMovie returns the movie entity with the given title, if any. When
// remakes share a title the most popular one is returned.
func (u *Universe) FindMovie(title string) (Entity, bool) {
	return findEntity(u.Movies, title)
}

func findEntity(es []Entity, name string) (Entity, bool) {
	name = strings.ToLower(name)
	for _, e := range es {
		if e.Name == name {
			return e, true
		}
	}
	return Entity{}, false
}

func makeUniqueNames(r *rand.Rand, n int, anchors []string, gen func() string) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	// dupes tracks how many collisions each base name has produced, so
	// disambiguation walks a deterministic sequence — middle surnames,
	// then a generation suffix — instead of rejection-sampling, which
	// degrades to O(n^2) once the first+last composition space (~9.2k
	// combinations) saturates.
	dupes := make(map[string]int)
	for _, a := range anchors {
		out = append(out, a)
		seen[a] = true
		if len(out) == n {
			return out
		}
	}
	for len(out) < n {
		name := gen()
		for seen[name] {
			base := name
			k := dupes[base]
			dupes[base] = k + 1
			if k < len(lastNames) {
				name = strings.Replace(base, " ", " "+lastNames[k]+" ", 1)
			} else {
				name = base + " " + ordinalSuffix(k-len(lastNames)+2)
			}
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

// makeMovieTitles generates n titles. Roughly 2% are deliberate
// duplicates — the paper points out that movie titles are not unique
// ("remakes and sequels"), and the qunit machinery must cope.
func makeMovieTitles(r *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	for _, a := range famousMovies {
		out = append(out, a)
		if len(out) == n {
			return out
		}
	}
	seen := make(map[string]bool, n)
	for _, a := range out {
		seen[a] = true
	}
	// sequels numbers collisions per base title ("dark tide ii", "dark
	// tide iii", ...) so a saturated pattern space never rejects.
	sequels := make(map[string]int)
	for len(out) < n {
		if len(out) > len(famousMovies) && r.Float64() < 0.02 {
			// Remake: duplicate an existing title.
			out = append(out, out[r.Intn(len(out))])
			continue
		}
		p := titlePatterns[r.Intn(len(titlePatterns))]
		t := strings.ReplaceAll(p, "%a", titleAdjectives[r.Intn(len(titleAdjectives))])
		for strings.Contains(t, "%n") {
			t = strings.Replace(t, "%n", titleNouns[r.Intn(len(titleNouns))], 1)
		}
		if seen[t] {
			base := t
			k := sequels[base]
			if k < 2 {
				k = 2
			}
			for seen[base+" "+ordinalSuffix(k)] {
				k++
			}
			sequels[base] = k + 1
			t = base + " " + ordinalSuffix(k)
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// ordinalSuffix renders the 1-based ordinal n as a lowercase roman
// numeral ("ii", "iii", ...), the way sequels are titled.
func ordinalSuffix(n int) string {
	if n > 3999 {
		return fmt.Sprintf("part %d", n)
	}
	vals := []int{1000, 900, 500, 400, 100, 90, 50, 40, 10, 9, 5, 4, 1}
	syms := []string{"m", "cm", "d", "cd", "c", "xc", "l", "xl", "x", "ix", "v", "iv", "i"}
	var b strings.Builder
	for i, v := range vals {
		for n >= v {
			b.WriteString(syms[i])
			n -= v
		}
	}
	return b.String()
}
