package imdb

import (
	"math/rand"
	"testing"

	"qunits/internal/relational"
)

func smallConfig() Config {
	return Config{Seed: 7, Persons: 200, Movies: 120, CastPerMovie: 4, PopularityExponent: 0.9}
}

func TestGenerateProducesAllTables(t *testing.T) {
	u := MustGenerate(smallConfig())
	names := u.DB.TableNames()
	if len(names) != 17 {
		t.Fatalf("tables = %d (%v), want 17", len(names), names)
	}
	for _, n := range names {
		if n == TableCast || n == TableAkaTitle || n == TableMovieAward ||
			n == TableSoundtrack || n == TableTrivia || n == TableBoxOffice ||
			n == TableMovieCompany || n == TableMovieKeyword || n == TableCrew {
			continue // fact tables may be any size ≥ 0
		}
		if u.DB.Table(n).Len() == 0 {
			t.Errorf("table %s is empty", n)
		}
	}
	if u.DB.Table(TablePerson).Len() != 200 {
		t.Errorf("persons = %d", u.DB.Table(TablePerson).Len())
	}
	if u.DB.Table(TableMovie).Len() != 120 {
		t.Errorf("movies = %d", u.DB.Table(TableMovie).Len())
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	u := MustGenerate(smallConfig())
	if err := u.DB.ValidateForeignKeys(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallConfig())
	b := MustGenerate(smallConfig())
	if a.DB.TotalRows() != b.DB.TotalRows() {
		t.Fatalf("row counts differ: %d vs %d", a.DB.TotalRows(), b.DB.TotalRows())
	}
	for i := range a.Movies {
		if a.Movies[i].Name != b.Movies[i].Name {
			t.Fatalf("movie %d differs: %q vs %q", i, a.Movies[i].Name, b.Movies[i].Name)
		}
	}
	for i := range a.Persons {
		if a.Persons[i].Name != b.Persons[i].Name {
			t.Fatalf("person %d differs", i)
		}
	}
	// Different seed must differ somewhere.
	cfg := smallConfig()
	cfg.Seed = 8
	c := MustGenerate(cfg)
	same := true
	for i := range c.Movies {
		if c.Movies[i].Name != a.Movies[i].Name {
			same = false
			break
		}
	}
	if same && c.DB.TotalRows() == a.DB.TotalRows() {
		t.Error("different seeds produced identical databases")
	}
}

func TestFamousAnchorsPresent(t *testing.T) {
	u := MustGenerate(smallConfig())
	for _, name := range []string{"george clooney", "tom hanks", "angelina jolie", "julio iglesias"} {
		if _, ok := u.FindPerson(name); !ok {
			t.Errorf("missing famous person %q", name)
		}
	}
	for _, title := range []string{"star wars", "batman", "cast away", "terminator", "tomb raider"} {
		if _, ok := u.FindMovie(title); !ok {
			t.Errorf("missing famous movie %q", title)
		}
	}
	if _, ok := u.FindPerson("nobody at all"); ok {
		t.Error("found nonexistent person")
	}
}

func TestPopularityIsZipfian(t *testing.T) {
	u := MustGenerate(smallConfig())
	// Head should carry much more weight than the tail.
	if u.Persons[0].Weight <= u.Persons[len(u.Persons)-1].Weight {
		t.Error("popularity not decreasing")
	}
	r := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[u.SamplePerson(r).Name]++
	}
	head := counts[u.Persons[0].Name]
	tail := counts[u.Persons[len(u.Persons)-1].Name]
	if head <= tail {
		t.Errorf("head sampled %d times, tail %d — not skewed", head, tail)
	}
	if head < 20 {
		t.Errorf("head sampled only %d times out of 5000", head)
	}
}

func TestEveryMovieHasDirector(t *testing.T) {
	u := MustGenerate(smallConfig())
	crew := u.DB.Table(TableCrew)
	directors := map[int64]bool{}
	crew.Scan(func(id int, row relational.Row) bool {
		if row[2].AsString() == "director" {
			directors[row[1].AsInt()] = true
		}
		return true
	})
	for _, m := range u.Movies {
		if !directors[m.PK] {
			t.Errorf("movie %q (id %d) has no director", m.Name, m.PK)
		}
	}
}

func TestRemakesExist(t *testing.T) {
	cfg := smallConfig()
	cfg.Movies = 800
	u := MustGenerate(cfg)
	titles := map[string]int{}
	for _, m := range u.Movies {
		titles[m.Name]++
	}
	dup := 0
	for _, c := range titles {
		if c > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Error("no remakes generated; title non-uniqueness (a paper premise) untested")
	}
}

func TestFKColumnsIndexed(t *testing.T) {
	u := MustGenerate(smallConfig())
	u.DB.Tables(func(tb *relational.Table) {
		for _, fk := range tb.Schema().ForeignKeys {
			if !tb.HasIndex(fk.Column) {
				t.Errorf("%s.%s not indexed", tb.Schema().Name, fk.Column)
			}
		}
	})
}

func TestConfigDefaultsApplied(t *testing.T) {
	u := MustGenerate(Config{Seed: 1}) // all other fields zero
	if u.DB.Table(TablePerson).Len() < len(famousPeople) {
		t.Error("persons below anchor set")
	}
	if u.DB.Table(TableMovie).Len() < len(famousMovies) {
		t.Error("movies below anchor set")
	}
}

func TestMovieRatingsInRange(t *testing.T) {
	u := MustGenerate(smallConfig())
	u.DB.Table(TableMovie).Scan(func(id int, row relational.Row) bool {
		rt := row[3].AsFloat()
		if rt < 0 || rt > 10 {
			t.Errorf("rating %v out of range", rt)
		}
		yr := row[2].AsInt()
		if yr < 1950 || yr > 2008 {
			t.Errorf("year %d out of range", yr)
		}
		return true
	})
}

func TestDefaultConfigScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Persons < 1000 || cfg.Movies < 500 {
		t.Error("default config too small to exercise ranking")
	}
}

func TestUniqueNamesBeyondCompositionSpace(t *testing.T) {
	// 96 first x 96 last ≈ 9.2k combinations; asking for 40k names
	// saturates the space several times over. The counter-walk
	// disambiguation must stay unique (and fast — the old rejection
	// sampler went quadratic here).
	r := rand.New(rand.NewSource(11))
	n := 40000
	names := makeUniqueNames(r, n, famousPeople, func() string {
		return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
	})
	if len(names) != n {
		t.Fatalf("got %d names, want %d", len(names), n)
	}
	seen := make(map[string]bool, n)
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestMovieTitlesUniqueExceptRemakes(t *testing.T) {
	// The pattern space is far larger than the name space but still
	// finite; at 30k titles collisions are routine and must come out as
	// sequel-numbered variants, not rejection-loop stalls. Duplicates
	// must stay near the deliberate 2% remake rate.
	r := rand.New(rand.NewSource(13))
	n := 30000
	titles := makeMovieTitles(r, n)
	if len(titles) != n {
		t.Fatalf("got %d titles, want %d", len(titles), n)
	}
	counts := make(map[string]int, n)
	dups := 0
	for _, title := range titles {
		if counts[title] > 0 {
			dups++
		}
		counts[title]++
	}
	if dups == 0 {
		t.Fatal("no remakes at 30k titles")
	}
	if frac := float64(dups) / float64(n); frac > 0.05 {
		t.Fatalf("duplicate fraction %.3f exceeds the deliberate remake rate", frac)
	}
}

func TestOrdinalSuffix(t *testing.T) {
	cases := map[int]string{2: "ii", 3: "iii", 4: "iv", 9: "ix", 14: "xiv", 40: "xl", 3999: "mmmcmxcix", 4000: "part 4000"}
	for n, want := range cases {
		if got := ordinalSuffix(n); got != want {
			t.Errorf("ordinalSuffix(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestNewUniverseSamplers(t *testing.T) {
	u := MustGenerate(smallConfig())
	w := NewUniverse(u.DB, u.Persons, u.Movies)
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if a, b := u.SamplePerson(r1), w.SamplePerson(r2); a != b {
			t.Fatalf("rewrapped universe samples diverge at %d: %v vs %v", i, a, b)
		}
	}
}
