// Package imdb generates a synthetic Internet Movie Database. The paper's
// evaluation ran against a real IMDb dump (15 tables, 34M tuples via
// IMDbPy); that data is proprietary, so this package produces a
// structurally faithful synthetic substitute: the Fig. 2 schema (person,
// cast, movie, genre, locations, info) extended with the satellite tables
// a real IMDb carries (alternative titles, companies, keywords, crew,
// awards, soundtracks, box office, trivia), populated with Zipfian
// popularity so query logs and search behave like they would against the
// skewed real thing.
//
// Everything is deterministic given the Config seed.
package imdb

import "qunits/internal/relational"

// Table names, exported so higher layers (derivation, evaluation) can
// refer to them without string literals scattered everywhere.
const (
	TablePerson       = "person"
	TableMovie        = "movie"
	TableCast         = "cast"
	TableGenre        = "genre"
	TableLocations    = "locations"
	TableInfo         = "info"
	TableAkaTitle     = "aka_title"
	TableCompany      = "company"
	TableMovieCompany = "movie_company"
	TableKeyword      = "keyword"
	TableMovieKeyword = "movie_keyword"
	TableCrew         = "crew"
	TableAward        = "award"
	TableMovieAward   = "movie_award"
	TableSoundtrack   = "soundtrack"
	TableBoxOffice    = "boxoffice"
	TableTrivia       = "trivia"
)

// Schemas returns the full table set in creation order. The first six
// tables are exactly the paper's Fig. 2; the rest are the satellite tables
// that make the schema realistically wide (and give the derivation
// strategies meaningful choices about which neighbors matter).
func Schemas() []*relational.TableSchema {
	return []*relational.TableSchema{
		relational.MustTableSchema(TablePerson, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
			{Name: "birthdate", Kind: relational.KindString},
			{Name: "gender", Kind: relational.KindString},
		}, "id", nil),

		relational.MustTableSchema(TableGenre, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "type", Kind: relational.KindString, Searchable: true, Label: true},
		}, "id", nil),

		relational.MustTableSchema(TableLocations, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "place", Kind: relational.KindString, Searchable: true, Label: true},
			{Name: "level", Kind: relational.KindString},
		}, "id", nil),

		relational.MustTableSchema(TableInfo, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "text", Kind: relational.KindString, Searchable: true, Label: true},
		}, "id", nil),

		relational.MustTableSchema(TableMovie, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
			{Name: "releasedate", Kind: relational.KindInt},
			{Name: "rating", Kind: relational.KindFloat},
			{Name: "genre_id", Kind: relational.KindInt},
			{Name: "location_id", Kind: relational.KindInt},
			{Name: "info_id", Kind: relational.KindInt},
		}, "id", []relational.ForeignKey{
			{Column: "genre_id", RefTable: TableGenre},
			{Column: "location_id", RefTable: TableLocations},
			{Column: "info_id", RefTable: TableInfo},
		}),

		relational.MustTableSchema(TableCast, []relational.Column{
			{Name: "person_id", Kind: relational.KindInt},
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "role", Kind: relational.KindString, Searchable: true, Label: true},
		}, "", []relational.ForeignKey{
			{Column: "person_id", RefTable: TablePerson},
			{Column: "movie_id", RefTable: TableMovie},
		}),

		relational.MustTableSchema(TableAkaTitle, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
		}),

		relational.MustTableSchema(TableCompany, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
			{Name: "country", Kind: relational.KindString},
		}, "id", nil),

		relational.MustTableSchema(TableMovieCompany, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "company_id", Kind: relational.KindInt},
			{Name: "kind", Kind: relational.KindString},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
			{Column: "company_id", RefTable: TableCompany},
		}),

		relational.MustTableSchema(TableKeyword, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "word", Kind: relational.KindString, Searchable: true, Label: true},
		}, "id", nil),

		relational.MustTableSchema(TableMovieKeyword, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "keyword_id", Kind: relational.KindInt},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
			{Column: "keyword_id", RefTable: TableKeyword},
		}),

		relational.MustTableSchema(TableCrew, []relational.Column{
			{Name: "person_id", Kind: relational.KindInt},
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "job", Kind: relational.KindString, Searchable: true, Label: true},
		}, "", []relational.ForeignKey{
			{Column: "person_id", RefTable: TablePerson},
			{Column: "movie_id", RefTable: TableMovie},
		}),

		relational.MustTableSchema(TableAward, []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		}, "id", nil),

		relational.MustTableSchema(TableMovieAward, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "award_id", Kind: relational.KindInt},
			{Name: "year", Kind: relational.KindInt},
			{Name: "won", Kind: relational.KindBool},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
			{Column: "award_id", RefTable: TableAward},
		}),

		relational.MustTableSchema(TableSoundtrack, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "track", Kind: relational.KindString, Searchable: true, Label: true},
			{Name: "artist", Kind: relational.KindString, Searchable: true},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
		}),

		relational.MustTableSchema(TableBoxOffice, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "gross", Kind: relational.KindInt},
			{Name: "opening", Kind: relational.KindInt},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
		}),

		relational.MustTableSchema(TableTrivia, []relational.Column{
			{Name: "movie_id", Kind: relational.KindInt},
			{Name: "text", Kind: relational.KindString, Searchable: true, Label: true},
		}, "", []relational.ForeignKey{
			{Column: "movie_id", RefTable: TableMovie},
		}),
	}
}

// EntityTables lists the tables a user thinks of as entities; matches the
// paper's framing of IMDb as "a collection of actor profiles and movie
// listings".
func EntityTables() []string { return []string{TablePerson, TableMovie} }
