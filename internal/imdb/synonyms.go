package imdb

// AttributeSynonyms maps movie-domain query vocabulary onto the schema's
// tables, supplementing the table/column names the segmentation
// dictionary derives automatically. These are the words real users type
// ("filmography", "ost", "box office") that no schema identifier
// mentions.
func AttributeSynonyms() map[string]string {
	return map[string]string{
		"movies":      TableMovie,
		"films":       TableMovie,
		"film":        TableMovie,
		"filmography": TableMovie,
		"posters":     TableMovie,
		"poster":      TableMovie,
		"year":        TableMovie,
		"release":     TableMovie,
		"actors":      TableCast,
		"actor":       TableCast,
		"starring":    TableCast,
		"ost":         TableSoundtrack,
		"music":       TableSoundtrack,
		"songs":       TableSoundtrack,
		"box office":  TableBoxOffice,
		"gross":       TableBoxOffice,
		"revenue":     TableBoxOffice,
		"plot":        TableInfo,
		"summary":     TableInfo,
		"synopsis":    TableInfo,
		"quotes":      TableTrivia,
		"director":    TableCrew,
		"directed by": TableCrew,
		"awards":      TableMovieAward,
		"oscars":      TableMovieAward,
		"biography":   TablePerson,
		"age":         TablePerson,
		"photos":      TablePerson,
		"review":      TableInfo,
		"reviews":     TableInfo,
	}
}
