package imdb

// Vocab exposes the generator's word lists to other packages — notably
// internal/synth, which scales the same schema to millions of instances
// and must compose names from the same fragments so the famous anchors,
// attribute synonyms, and query-log templates keep working verbatim.
// The slices are shared with the generator, not copied; callers must
// treat them as read-only.
type Vocab struct {
	FamousPeople     []string
	FamousMovies     []string
	FirstNames       []string
	LastNames        []string
	TitleAdjectives  []string
	TitleNouns       []string
	TitlePatterns    []string
	Genres           []string
	Places           []string
	PlaceLevels      []string
	CastRoles        []string
	CrewJobs         []string
	CompanyNames     []string
	CompanyCountries []string
	CompanyKinds     []string
	KeywordWords     []string
	AwardNames       []string
	TrackWords       []string
	PlotFragments    []string
	TriviaFragments  []string
}

// Vocabulary returns the word lists the synthetic IMDb is composed from.
func Vocabulary() Vocab {
	return Vocab{
		FamousPeople:     famousPeople,
		FamousMovies:     famousMovies,
		FirstNames:       firstNames,
		LastNames:        lastNames,
		TitleAdjectives:  titleAdjectives,
		TitleNouns:       titleNouns,
		TitlePatterns:    titlePatterns,
		Genres:           genres,
		Places:           places,
		PlaceLevels:      placeLevels,
		CastRoles:        castRoles,
		CrewJobs:         crewJobs,
		CompanyNames:     companyNames,
		CompanyCountries: companyCountries,
		CompanyKinds:     companyKinds,
		KeywordWords:     keywordWords,
		AwardNames:       awardNames,
		TrackWords:       trackWords,
		PlotFragments:    plotFragments,
		TriviaFragments:  triviaFragments,
	}
}

// OrdinalSuffix renders the 1-based ordinal n as a lowercase roman
// numeral ("ii", "iii", ...); shared with internal/synth so sequel and
// generation suffixes look the same at every corpus scale.
func OrdinalSuffix(n int) string {
	return ordinalSuffix(n)
}
