package ir

import (
	"testing"
)

// The zero-allocation scrub: the pruned top-k hot path reuses pooled
// per-query scratch (qtf map, plan terms, cursors, bound buffers, heap
// backing), so a steady-state search allocates only what it must hand
// back to the caller — the tokenized query and the result slice. These
// tests pin that property; the benchmark below is the input to the
// benchcheck -allocs CI gate.

// allocBudgetSearch is the steady-state allocation ceiling for one
// three-term pruned Search(k=10) on a warm scratch pool. The remaining
// allocations are the caller-owned results (Tokenize's per-token
// strings and term slice, the returned []Hit) and one contribution
// closure per query term in plan construction — those capture the
// term's idf, so they cannot be pooled. Measured floor is 11; anything
// above the budget means per-query buffers stopped being reused.
const allocBudgetSearch = 12

func TestPrunedSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	ix := benchTopKIndex(8000, 1)
	scorer := BM25{B: 0.3}
	const query = "t001 t005 t150"
	// Warm the scratch pool and page in the postings.
	for i := 0; i < 4; i++ {
		ix.Search(scorer, query, 10)
	}
	shard := ix.shards[0]
	got := testing.AllocsPerRun(50, func() {
		Search(shard, scorer, query, 10)
	})
	if got > allocBudgetSearch {
		t.Errorf("pruned Search allocates %.1f objects/op, budget %d", got, allocBudgetSearch)
	}
}

func TestShardedSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	ix := benchTopKIndex(8000, 1)
	scorer := BM25{B: 0.3}
	const query = "t001 t005 t150"
	for i := 0; i < 4; i++ {
		ix.Search(scorer, query, 10)
	}
	// The single-shard path reuses the same scratch, so it stays inside
	// the same budget as the unsharded search.
	budget := float64(allocBudgetSearch)
	got := testing.AllocsPerRun(50, func() {
		ix.Search(scorer, query, 10)
	})
	if got > budget {
		t.Errorf("sharded pruned Search allocates %.1f objects/op, budget %.0f", got, budget)
	}
}

// BenchmarkTopKAllocs is the benchcheck allocation gate's input: run
// with -benchmem, its allocs/op metric is floored by
// cmd/benchcheck -allocs in make bench-regression.
func BenchmarkTopKAllocs(b *testing.B) {
	ix := benchTopKIndex(8000, 1)
	scorer := BM25{B: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(scorer, "t001 t005 t150", 10)
	}
}
