package ir

import "fmt"

// Online index compaction.
//
// Removal tombstones a document in place (postings.go): dead slots stay
// in the global id space forever, dead postings stay inside the
// compressed blocks, and per-block MaxTF/MinLen metadata is left stale —
// each individually safe, but under sustained churn the index's physical
// footprint grows without bound and the MaxScore pruning bounds loosen
// monotonically toward the exhaustive scorer's cost. Compaction is the
// counter-move: rebuild every shard's posting blocks from the live
// documents only, recomputing exact block-max metadata and remapping the
// surviving documents onto fresh dense slot ids.
//
// Compacted builds the rebuilt index as a NEW value and never mutates
// the receiver, so a live engine can keep answering searches on the old
// index while the new one is constructed, then swap the two with one
// pointer write — the copy-on-write epoch swap internal/search performs.
//
// # Score parity
//
// The compacted index must rank bitwise identically to the tombstoned
// one (same documents, same float64 score bits, same tie order). Three
// facts make that hold:
//
//   - Per-document inputs are preserved exactly: each live document is
//     re-added with the DocTerms it was originally analyzed into, so
//     every TF and weighted length is the same float.
//   - Collection statistics are preserved exactly: the document count
//     and per-term document frequencies are integers that the rebuild
//     reproduces, and the running total length — an incremental float
//     sum a re-add sequence would NOT reproduce after removals — is
//     carried over verbatim rather than re-summed.
//   - Scores never depend on the physical layout: slot ids, shard
//     assignment, and block boundaries all change, but scorers
//     accumulate per-document contributions in sorted-term order from
//     (tf, dl, idf, avgdl) alone, and pruning bounds only ever decide
//     whether a document is visited, never what it scores.
//
// Bounds do tighten: recomputed MaxTF/MinLen are exact again and each
// shard's minLiveLen floor is recomputed over live documents only, so
// pruned retrieval visits fewer blocks — the whole point — while the
// strictly-less skipping rule keeps the results identical.

// CompactStats describes one compaction pass.
type CompactStats struct {
	// SlotsBefore and SlotsAfter are the global id-space sizes before
	// and after the pass; their difference is the reclaimed dead slots.
	SlotsBefore, SlotsAfter int
	// Live is the number of live documents carried over.
	Live int
	// ReclaimedSlots is SlotsBefore - SlotsAfter: the tombstoned slots
	// the pass eliminated.
	ReclaimedSlots int
}

// Tombstones returns the number of dead slots — removed documents whose
// global ids (and postings) are still physically present. The tombstone
// ratio Tombstones()/Slots() is the standard compaction trigger.
func (s *ShardedIndex) Tombstones() int { return len(s.names) - s.shared.n }

// Compacted builds a tombstone-free copy of the index: live documents
// are re-added in slot order onto fresh dense ids (preserving their
// relative order, and with it the deterministic round-robin shard
// layout), posting blocks are re-encoded without dead postings, and all
// block-max metadata is recomputed exact. The receiver is not modified
// and may serve concurrent searches throughout; the result ranks every
// query bitwise identically to the receiver (see the parity notes
// above).
func (s *ShardedIndex) Compacted() (*ShardedIndex, CompactStats, error) {
	c := NewShardedIndex(len(s.shards))
	for id := 0; id < len(s.names); id++ {
		name := s.names[id]
		if name == "" {
			continue // dead slot: this is what compaction discards
		}
		if _, err := c.AddAnalyzed(name, s.terms[id]); err != nil {
			// Unreachable while the index upholds its name-uniqueness
			// invariant; surfaced rather than swallowed so corruption
			// fails loudly instead of swapping in a partial index.
			return nil, CompactStats{}, fmt.Errorf("ir: compacting slot %d: %w", id, err)
		}
	}
	// Carry the running total length over verbatim: after removals it is
	// an incremental float sum whose rounding the fresh re-add sequence
	// does not reproduce, and every BM25 score depends on its exact bits
	// through the average document length.
	c.shared.totalLen = s.shared.totalLen
	st := CompactStats{
		SlotsBefore:    len(s.names),
		SlotsAfter:     len(c.names),
		Live:           c.shared.n,
		ReclaimedSlots: len(s.names) - len(c.names),
	}
	return c, st, nil
}

// QueryFootprint is the physical posting-list volume a query's cursors
// traverse, summed over the query's distinct terms across all shards.
// Tombstoned postings still occupy blocks (Postings > Live), so the
// footprint quantifies exactly the decay compaction reverses: after a
// compaction pass Postings == Live and Blocks is minimal for the live
// set.
type QueryFootprint struct {
	// Blocks is the number of posting blocks the terms' lists hold.
	Blocks int
	// Postings counts every stored posting, tombstones included.
	Postings int
	// Live counts only the non-tombstoned postings.
	Live int
}

// QueryFootprint reports the footprint of the given query terms — the
// blocks and postings any retrieval (pruned or exhaustive) over those
// terms has to contend with. Regression tests use it to pin down that
// compaction shrinks the scored volume; operators can use it to size
// compaction policy.
func (s *ShardedIndex) QueryFootprint(terms []string) QueryFootprint {
	distinct := make(map[string]bool, len(terms))
	for _, t := range terms {
		distinct[t] = true
	}
	var fp QueryFootprint
	for _, shard := range s.shards {
		for t := range distinct {
			pl := shard.postings[t]
			if pl == nil {
				continue
			}
			fp.Blocks += len(pl.blocks)
			fp.Postings += pl.total
			fp.Live += pl.live
		}
	}
	return fp
}
