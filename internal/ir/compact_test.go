package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// assertRankingIdentical requires two rankings to agree on everything a
// caller can observe across a compaction: same documents by name, same
// float64 score bits, same order. Doc ids are deliberately NOT compared
// — compaction remaps slots, and ids are an internal coordinate.
func assertRankingIdentical(t *testing.T, label string, before, after []Hit) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("%s: %d hits before vs %d after\nbefore: %v\nafter: %v", label, len(before), len(after), before, after)
	}
	for i := range before {
		if before[i].Name != after[i].Name || before[i].Score != after[i].Score {
			t.Fatalf("%s: hit %d differs\nbefore: %+v\nafter:  %+v", label, i, before[i], after[i])
		}
	}
}

// churnedIndex builds a sharded index through an interleaved
// Add/Remove/re-Add history, returning the index and the names still
// live. Roughly a third of all adds are later removed, and some removed
// names are re-added (landing in fresh slots, as the slot-remap
// invariant requires).
func churnedIndex(t *testing.T, r *rand.Rand, shards int, words []string) (*ShardedIndex, []string) {
	t.Helper()
	ix := NewShardedIndex(shards)
	live := make([]string, 0, 256)
	removed := make([]string, 0, 64)
	next := 0
	add := func(name string) {
		ix.MustAdd(name, randomDoc(r, words)...)
		live = append(live, name)
	}
	for i := 0; i < 40; i++ {
		add(fmt.Sprintf("doc%04d", next))
		next++
	}
	for step := 0; step < 120; step++ {
		switch r.Intn(4) {
		case 0: // remove a live doc
			if len(live) > 1 {
				i := r.Intn(len(live))
				if err := ix.Remove(live[i]); err != nil {
					t.Fatal(err)
				}
				removed = append(removed, live[i])
				live = append(live[:i], live[i+1:]...)
			}
		case 1: // re-add a removed name (new slot, new content)
			if len(removed) > 0 {
				i := r.Intn(len(removed))
				add(removed[i])
				removed = append(removed[:i], removed[i+1:]...)
			}
		default:
			add(fmt.Sprintf("doc%04d", next))
			next++
		}
	}
	return ix, live
}

// TestCompactedParityRandom is the compaction property test: over
// random corpora with interleaved Add/Remove/re-Add histories, shard
// counts, scorers, queries, and k values, the compacted index must rank
// bitwise identically to the tombstoned original on BOTH retrieval
// paths — pruned and the exhaustive oracle — and the compacted pruned
// path must stay bitwise identical to its own oracle.
func TestCompactedParityRandom(t *testing.T) {
	words := randomCorpusWords()
	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(4000 + trial)))
		shards := 1 + r.Intn(4)
		ix, _ := churnedIndex(t, r, shards, words)
		compacted, st, err := ix.Compacted()
		if err != nil {
			t.Fatal(err)
		}
		if st.SlotsAfter != compacted.Slots() || st.Live != compacted.Len() {
			t.Fatalf("trial %d: stats %+v disagree with compacted index (slots %d, live %d)", trial, st, compacted.Slots(), compacted.Len())
		}
		if compacted.Tombstones() != 0 || compacted.Slots() != compacted.Len() {
			t.Fatalf("trial %d: compacted index is not slot-dense: %d slots, %d live", trial, compacted.Slots(), compacted.Len())
		}
		for q := 0; q < 12; q++ {
			query := randomQuery(r, words)
			for _, scorer := range parityScorers {
				for _, k := range []int{1, 3, 10, ix.Len() + 5} {
					label := fmt.Sprintf("trial %d shards=%d scorer=%s q=%q k=%d", trial, shards, scorer.Name(), query, k)
					before := ix.Search(scorer, query, k)
					after := compacted.Search(scorer, query, k)
					assertRankingIdentical(t, label+" (pruned before/after)", before, after)
					oracleBefore := ix.Search(Exhaustive{S: scorer}, query, k)
					assertRankingIdentical(t, label+" (oracle before/after compaction)", oracleBefore, compacted.Search(Exhaustive{S: scorer}, query, k))
					assertHitsIdentical(t, label+" (compacted pruned vs oracle)", after, compacted.Search(Exhaustive{S: scorer}, query, k))
				}
			}
		}
	}
}

// TestCompactedPreservesIdentityAndStats pins the slot-remap contract:
// external name→id lookups keep working (with new dense ids), analyzed
// terms and lengths survive, collection statistics are preserved — the
// running total length bit-for-bit — and removed names stay absent but
// re-addable.
func TestCompactedPreservesIdentityAndStats(t *testing.T) {
	words := randomCorpusWords()
	r := rand.New(rand.NewSource(77))
	ix, live := churnedIndex(t, r, 3, words)
	compacted, st, err := ix.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsBefore != ix.Slots() || st.ReclaimedSlots != ix.Slots()-len(live) {
		t.Fatalf("stats %+v vs index slots %d live %d", st, ix.Slots(), len(live))
	}
	if compacted.Len() != len(live) {
		t.Fatalf("compacted live count %d, want %d", compacted.Len(), len(live))
	}
	if compacted.TotalLen() != ix.TotalLen() {
		t.Fatalf("total length changed: %v -> %v", ix.TotalLen(), compacted.TotalLen())
	}
	if compacted.AvgDocLen() != ix.AvgDocLen() {
		t.Fatalf("average length changed: %v -> %v", ix.AvgDocLen(), compacted.AvgDocLen())
	}
	if compacted.VocabularySize() != ix.VocabularySize() {
		t.Fatalf("vocabulary changed: %d -> %d", ix.VocabularySize(), compacted.VocabularySize())
	}
	// Live documents: same identity, same analyzed form, same stats.
	prevID := -1
	for _, name := range live {
		oldID, ok := ix.ID(name)
		if !ok {
			t.Fatalf("live name %q missing from original", name)
		}
		newID, ok := compacted.ID(name)
		if !ok {
			t.Fatalf("live name %q missing after compaction", name)
		}
		if newID <= prevID {
			// live is in add order only per construction; just range-check.
			_ = newID
		}
		if compacted.Name(newID) != name {
			t.Fatalf("name(%d) = %q, want %q", newID, compacted.Name(newID), name)
		}
		if compacted.DocLen(newID) != ix.DocLen(oldID) {
			t.Fatalf("%q: doc length %v -> %v", name, ix.DocLen(oldID), compacted.DocLen(newID))
		}
		if !reflect.DeepEqual(compacted.Terms(newID), ix.Terms(oldID)) {
			t.Fatalf("%q: analyzed terms changed across compaction", name)
		}
		for _, tc := range ix.Terms(oldID).Terms {
			if compacted.DocFreq(tc.Term) != ix.DocFreq(tc.Term) {
				t.Fatalf("df(%q) changed: %d -> %d", tc.Term, ix.DocFreq(tc.Term), compacted.DocFreq(tc.Term))
			}
		}
	}
	// Slot order is preserved: live documents keep their relative order.
	order := make([]string, 0, compacted.Slots())
	for id := 0; id < compacted.Slots(); id++ {
		order = append(order, compacted.Name(id))
	}
	wantOrder := make([]string, 0, len(live))
	for id := 0; id < ix.Slots(); id++ {
		if n := ix.Name(id); n != "" {
			wantOrder = append(wantOrder, n)
		}
	}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("slot order changed:\ngot  %v\nwant %v", order, wantOrder)
	}
	// A removed name is still absent and still re-addable.
	if err := compacted.Remove(live[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := compacted.ID(live[0]); ok {
		t.Fatal("removed name still resolvable")
	}
	if _, err := compacted.Add(live[0], Field{Text: "resurrected"}); err != nil {
		t.Fatalf("re-add after compaction: %v", err)
	}
}

// TestCompactedExactBlockMetadata is the bound-decay half of the
// regression pair: removing the document that backs a block's MaxTF
// leaves the metadata stale (a loose but safe bound); compaction must
// recompute it exactly.
func TestCompactedExactBlockMetadata(t *testing.T) {
	ix := NewShardedIndex(1)
	// One shared term; one "heavy" document carries a far larger TF than
	// the rest, then is removed.
	for i := 0; i < 20; i++ {
		ix.MustAdd(fmt.Sprintf("doc%02d", i), Field{Text: "shared shared"})
	}
	heavy := "heavy"
	fields := []Field{{Text: "shared", Weight: 50}}
	ix.MustAdd(heavy, fields...)
	for i := 20; i < 40; i++ {
		ix.MustAdd(fmt.Sprintf("doc%02d", i), Field{Text: "shared shared"})
	}
	if err := ix.Remove(heavy); err != nil {
		t.Fatal(err)
	}
	staleMax := 0.0
	for _, tp := range ix.ExportPostings(0) {
		if tp.Term != "shared" {
			continue
		}
		for _, b := range tp.Blocks {
			if b.MaxTF > staleMax {
				staleMax = b.MaxTF
			}
		}
	}
	if staleMax != 50 {
		t.Fatalf("expected the stale block MaxTF to still carry the removed doc's 50, got %v", staleMax)
	}
	compacted, _, err := ix.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range compacted.ExportPostings(0) {
		if tp.Term != "shared" {
			continue
		}
		if tp.MaxTF != 2 {
			t.Fatalf("compacted list MaxTF = %v, want the live maximum 2", tp.MaxTF)
		}
		for bi, b := range tp.Blocks {
			if b.MaxTF != 2 {
				t.Fatalf("compacted block %d MaxTF = %v, want 2", bi, b.MaxTF)
			}
			if b.N != len(b.TFs) {
				t.Fatalf("compacted block %d header N=%d vs %d TFs", bi, b.N, len(b.TFs))
			}
		}
	}
}

// TestQueryFootprintCompaction is the pruning-decay regression test: on
// a 50%-tombstoned index the query terms' cursors still traverse every
// dead posting and the blocks holding them; compaction must shrink the
// traversed blocks and make Postings == Live again, so the decay cannot
// silently return.
func TestQueryFootprintCompaction(t *testing.T) {
	// Three shards, so removing every even global id leaves tombstones in
	// EVERY shard (an even stride over two shards would empty one shard
	// outright instead of fragmenting both).
	ix := NewShardedIndex(3)
	n := 6 * blockSize // enough postings per term to span many blocks
	for i := 0; i < n; i++ {
		ix.MustAdd(fmt.Sprintf("doc%04d", i), Field{Text: "common filler"}, Field{Text: fmt.Sprintf("unique%04d", i)})
	}
	for i := 0; i < n; i += 2 {
		if err := ix.Remove(fmt.Sprintf("doc%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	terms := Tokenize("common filler")
	before := ix.QueryFootprint(terms)
	if before.Live*2 != before.Postings {
		t.Fatalf("expected 50%% tombstoned postings, got %+v", before)
	}
	compacted, _, err := ix.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	after := compacted.QueryFootprint(terms)
	if after.Live != before.Live {
		t.Fatalf("live postings changed: %d -> %d", before.Live, after.Live)
	}
	if after.Postings != after.Live {
		t.Fatalf("compacted index still stores dead postings: %+v", after)
	}
	if after.Blocks >= before.Blocks {
		t.Fatalf("compaction did not shrink the traversed blocks: %d -> %d", before.Blocks, after.Blocks)
	}
	// The compacted footprint is minimal: ceil(live/blockSize) per term
	// per shard.
	minBlocks := 0
	for shard := 0; shard < compacted.NumShards(); shard++ {
		for _, tp := range compacted.ExportPostings(shard) {
			if tp.Term == "common" || tp.Term == "filler" {
				minBlocks += (tp.Live + blockSize - 1) / blockSize
			}
		}
	}
	if after.Blocks != minBlocks {
		t.Fatalf("compacted footprint %d blocks, want the minimal %d", after.Blocks, minBlocks)
	}
}

// TestCompactedIdempotent: compacting an already-dense index reproduces
// it exactly — same slots, same exported posting bytes.
func TestCompactedIdempotent(t *testing.T) {
	words := randomCorpusWords()
	r := rand.New(rand.NewSource(31))
	ix, _ := churnedIndex(t, r, 3, words)
	once, _, err := ix.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	twice, st, err := once.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReclaimedSlots != 0 {
		t.Fatalf("second compaction reclaimed %d slots from a dense index", st.ReclaimedSlots)
	}
	if once.Slots() != twice.Slots() || once.TotalLen() != twice.TotalLen() {
		t.Fatalf("second compaction changed shape: slots %d->%d", once.Slots(), twice.Slots())
	}
	for shard := 0; shard < once.NumShards(); shard++ {
		if !reflect.DeepEqual(once.ExportPostings(shard), twice.ExportPostings(shard)) {
			t.Fatalf("shard %d postings differ between first and second compaction", shard)
		}
	}
}

// TestCompactedEmpty: an index emptied by removals compacts to the
// zero-slot index and still answers (with nothing).
func TestCompactedEmpty(t *testing.T) {
	ix := NewShardedIndex(2)
	ix.MustAdd("a", Field{Text: "alpha"})
	ix.MustAdd("b", Field{Text: "beta"})
	if err := ix.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove("b"); err != nil {
		t.Fatal(err)
	}
	compacted, st, err := ix.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 0 || compacted.Slots() != 0 || compacted.Len() != 0 {
		t.Fatalf("empty compaction: %+v, slots %d", st, compacted.Slots())
	}
	if hits := compacted.Search(BM25{}, "alpha", 5); len(hits) != 0 {
		t.Fatalf("empty compacted index returned hits: %v", hits)
	}
}
