package ir

import (
	"fmt"
	"math"
	"sort"
)

// Field is one weighted zone of a document. A qunit instance typically
// indexes its label (e.g. the movie title) with a higher weight than its
// body tuples.
type Field struct {
	Text   string
	Weight float64 // defaults to 1 when zero
}

// Posting records one document's weighted term frequency for a term.
type Posting struct {
	Doc int     // dense internal document id
	TF  float64 // weighted term frequency
}

// Index is an in-memory inverted index over named documents. Posting
// lists are sorted, delta/varint-compressed doc-id blocks with per-block
// max-score metadata (see postings.go); scorers traverse them through
// cursors, either exhaustively or with MaxScore-style top-k pruning.
type Index struct {
	names    []string
	byName   map[string]int
	postings map[string]*postingList
	docLen   []float64 // weighted token count per doc; 0 tombstones a removed slot
	totalLen float64

	// minLiveLen is the smallest positive weighted document length ever
	// indexed — a stale-safe lower bound on any live document's length
	// (removals can only raise the true minimum), used by pruned scorers
	// whose bounds improve with a length floor.
	minLiveLen float64

	// shared, when non-nil, makes the collection statistics (document
	// count, average length, document frequency) come from the owning
	// ShardedIndex instead of this shard alone, so scorers see the same
	// IDF and length normalization they would on one monolithic index.
	shared *sharedStats

	// retain anchors the owner of any memory-mapped bytes the posting
	// blocks alias (see ShardedIndex.Retain): while the index is
	// reachable the mapping's finalizer cannot run, so cursors reading
	// mapped TFs never dangle. nil for ordinary heap-backed indexes.
	retain any
}

// sharedStats are collection-wide statistics shared by the shards of a
// ShardedIndex. They are accumulated in global insertion order, which
// keeps every float sum bitwise identical to the unsharded path.
type sharedStats struct {
	n        int
	totalLen float64
	df       map[string]int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byName:   make(map[string]int),
		postings: make(map[string]*postingList),
	}
}

// TermCount is one analyzed term of a document with its weighted
// frequency.
type TermCount struct {
	Term string
	TF   float64
}

// DocTerms is the analyzed form of a document: its weighted term
// frequencies (sorted by term, for deterministic posting construction)
// and its total weighted length. Analysis is the CPU-heavy half of
// indexing, so it is split out: AnalyzeFields can run on many documents
// concurrently while AddAnalyzed merges them into the index one at a
// time in a deterministic order.
type DocTerms struct {
	Terms  []TermCount
	Length float64
}

// AnalyzeFields tokenizes and weighs the fields of one document. It is
// pure and safe to call from many goroutines.
func AnalyzeFields(fields ...Field) DocTerms {
	tf := make(map[string]float64)
	var length float64
	for _, f := range fields {
		w := f.Weight
		if w == 0 {
			w = 1
		}
		for _, tok := range Tokenize(f.Text) {
			tf[tok] += w
			length += w
		}
	}
	terms := make([]TermCount, 0, len(tf))
	for t, f := range tf {
		terms = append(terms, TermCount{Term: t, TF: f})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return DocTerms{Terms: terms, Length: length}
}

// Add indexes a document under a unique name. It returns the dense
// internal id, or an error if the name was already indexed.
func (ix *Index) Add(name string, fields ...Field) (int, error) {
	return ix.AddAnalyzed(name, AnalyzeFields(fields...))
}

// AddAnalyzed indexes a pre-analyzed document under a unique name. It is
// the merge half of Add; callers that analyzed documents concurrently
// feed the results in here sequentially, in whatever order determinism
// requires.
func (ix *Index) AddAnalyzed(name string, doc DocTerms) (int, error) {
	id, err := ix.addDocOnly(name, doc)
	if err != nil {
		return 0, err
	}
	for _, tc := range doc.Terms {
		pl := ix.postings[tc.Term]
		if pl == nil {
			pl = &postingList{}
			ix.postings[tc.Term] = pl
		}
		pl.add(id, tc.TF, doc.Length)
	}
	return id, nil
}

// addDocOnly registers the document's name and length statistics without
// building postings — the shared front half of AddAnalyzed and the
// snapshot fast path that installs pre-encoded posting lists afterwards.
func (ix *Index) addDocOnly(name string, doc DocTerms) (int, error) {
	if _, dup := ix.byName[name]; dup {
		return 0, fmt.Errorf("ir: document %q already indexed", name)
	}
	id := len(ix.names)
	ix.names = append(ix.names, name)
	ix.byName[name] = id
	ix.docLen = append(ix.docLen, doc.Length)
	ix.totalLen += doc.Length
	if doc.Length > 0 && (ix.minLiveLen == 0 || doc.Length < ix.minLiveLen) {
		ix.minLiveLen = doc.Length
	}
	return id, nil
}

// addTombstone occupies the next dense slot as a removed-document
// placeholder: no name mapping, zero length, no postings. Snapshot
// restore uses it to reproduce a dumped index's slot layout exactly.
func (ix *Index) addTombstone() int {
	id := len(ix.names)
	ix.names = append(ix.names, "")
	ix.docLen = append(ix.docLen, 0)
	return id
}

// removeLocal deletes the document in dense slot local, given the
// analyzed terms it was added with. The document is tombstoned in place:
// its length is zeroed (which every posting cursor treats as "skip") and
// its name mapping dropped; posting blocks and their max-score metadata
// are left untouched. A stale block MaxTF can only overstate and a stale
// MinLen only understate, so pruning bounds derived from them remain
// valid — removal costs O(|doc terms|), not an O(postings) re-encode.
// Slot ids of other documents never shift.
//
// Only valid on a shard of a ShardedIndex (shared != nil), whose owner
// maintains the collection statistics; a standalone Index has no
// removal support (its Len and AvgDocLen would keep counting the
// tombstoned slot).
func (ix *Index) removeLocal(local int, doc DocTerms) {
	for _, tc := range doc.Terms {
		pl := ix.postings[tc.Term]
		if pl == nil {
			continue
		}
		if pl.live--; pl.live == 0 {
			delete(ix.postings, tc.Term)
		}
	}
	ix.docLen[local] = 0
	delete(ix.byName, ix.names[local])
	ix.names[local] = ""
}

// MustAdd is Add that panics on error.
func (ix *Index) MustAdd(name string, fields ...Field) int {
	id, err := ix.Add(name, fields...)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the number of documents in the collection. For a shard of
// a ShardedIndex this is the collection-wide count, so scorers compute
// the same IDF they would on a monolithic index; use LocalLen for the
// number of documents physically in this index.
func (ix *Index) Len() int {
	if ix.shared != nil {
		return ix.shared.n
	}
	return len(ix.names)
}

// LocalLen returns the number of document slots physically here,
// tombstones included.
func (ix *Index) LocalLen() int { return len(ix.names) }

// Name returns the external name of a document id.
func (ix *Index) Name(id int) string {
	if id < 0 || id >= len(ix.names) {
		return ""
	}
	return ix.names[id]
}

// ID returns the dense id for a document name.
func (ix *Index) ID(name string) (int, bool) {
	id, ok := ix.byName[name]
	return id, ok
}

// DocFreq returns the number of documents in the collection containing
// the term (collection-wide when this index is a shard).
func (ix *Index) DocFreq(term string) int {
	if ix.shared != nil {
		return ix.shared.df[term]
	}
	if pl := ix.postings[term]; pl != nil {
		return pl.live
	}
	return 0
}

// Postings materializes the live postings of a term in doc-id order.
// It decodes the compressed blocks on every call; scorers use cursors
// instead, and callers (tests, tools) must not rely on this being cheap.
func (ix *Index) Postings(term string) []Posting {
	pl := ix.postings[term]
	if pl == nil {
		return nil
	}
	out := make([]Posting, 0, pl.live)
	for c := newCursor(ix, pl); !c.done; c.next() {
		out = append(out, Posting{Doc: c.doc, TF: c.tf})
	}
	return out
}

// AvgDocLen returns the mean weighted document length of the collection
// (collection-wide when this index is a shard).
func (ix *Index) AvgDocLen() float64 {
	if ix.shared != nil {
		if ix.shared.n == 0 {
			return 0
		}
		return ix.shared.totalLen / float64(ix.shared.n)
	}
	if len(ix.docLen) == 0 {
		return 0
	}
	return ix.totalLen / float64(len(ix.docLen))
}

// DocLen returns the weighted length of a document.
func (ix *Index) DocLen(id int) float64 {
	if id < 0 || id >= len(ix.docLen) {
		return 0
	}
	return ix.docLen[id]
}

// IDF returns the smoothed inverse document frequency of a term:
// ln(1 + (N - df + 0.5)/(df + 0.5)), the BM25+ form, which is positive
// even for terms in most documents.
func (ix *Index) IDF(term string) float64 {
	n := float64(ix.Len())
	df := float64(ix.DocFreq(term))
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// VocabularySize returns the number of distinct terms.
func (ix *Index) VocabularySize() int { return len(ix.postings) }
