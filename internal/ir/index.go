package ir

import (
	"fmt"
	"math"
	"sort"
)

// Field is one weighted zone of a document. A qunit instance typically
// indexes its label (e.g. the movie title) with a higher weight than its
// body tuples.
type Field struct {
	Text   string
	Weight float64 // defaults to 1 when zero
}

// Posting records one document's weighted term frequency for a term.
type Posting struct {
	Doc int     // dense internal document id
	TF  float64 // weighted term frequency
}

// Index is an in-memory inverted index over named documents.
type Index struct {
	names    []string
	byName   map[string]int
	postings map[string][]Posting
	docLen   []float64 // weighted token count per doc
	totalLen float64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byName:   make(map[string]int),
		postings: make(map[string][]Posting),
	}
}

// Add indexes a document under a unique name. It returns the dense
// internal id, or an error if the name was already indexed.
func (ix *Index) Add(name string, fields ...Field) (int, error) {
	if _, dup := ix.byName[name]; dup {
		return 0, fmt.Errorf("ir: document %q already indexed", name)
	}
	id := len(ix.names)
	ix.names = append(ix.names, name)
	ix.byName[name] = id

	tf := make(map[string]float64)
	var length float64
	for _, f := range fields {
		w := f.Weight
		if w == 0 {
			w = 1
		}
		for _, tok := range Tokenize(f.Text) {
			tf[tok] += w
			length += w
		}
	}
	terms := make([]string, 0, len(tf))
	for t := range tf {
		terms = append(terms, t)
	}
	sort.Strings(terms) // deterministic posting construction
	for _, t := range terms {
		ix.postings[t] = append(ix.postings[t], Posting{Doc: id, TF: tf[t]})
	}
	ix.docLen = append(ix.docLen, length)
	ix.totalLen += length
	return id, nil
}

// MustAdd is Add that panics on error.
func (ix *Index) MustAdd(name string, fields ...Field) int {
	id, err := ix.Add(name, fields...)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.names) }

// Name returns the external name of a document id.
func (ix *Index) Name(id int) string {
	if id < 0 || id >= len(ix.names) {
		return ""
	}
	return ix.names[id]
}

// ID returns the dense id for a document name.
func (ix *Index) ID(name string) (int, bool) {
	id, ok := ix.byName[name]
	return id, ok
}

// DocFreq returns the number of documents containing the term.
func (ix *Index) DocFreq(term string) int { return len(ix.postings[term]) }

// Postings returns the posting list for a term. The returned slice is
// shared; callers must not mutate it.
func (ix *Index) Postings(term string) []Posting { return ix.postings[term] }

// AvgDocLen returns the mean weighted document length.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docLen) == 0 {
		return 0
	}
	return ix.totalLen / float64(len(ix.docLen))
}

// DocLen returns the weighted length of a document.
func (ix *Index) DocLen(id int) float64 {
	if id < 0 || id >= len(ix.docLen) {
		return 0
	}
	return ix.docLen[id]
}

// IDF returns the smoothed inverse document frequency of a term:
// ln(1 + (N - df + 0.5)/(df + 0.5)), the BM25+ form, which is positive
// even for terms in most documents.
func (ix *Index) IDF(term string) float64 {
	n := float64(ix.Len())
	df := float64(ix.DocFreq(term))
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// VocabularySize returns the number of distinct terms.
func (ix *Index) VocabularySize() int { return len(ix.postings) }
