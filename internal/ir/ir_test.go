package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"George Clooney movies", []string{"george", "clooney", "movies"}},
		{"ocean's eleven", []string{"oceans", "eleven"}},
		{"ocean’s eleven", []string{"oceans", "eleven"}},
		{"  spaced   out ", []string{"spaced", "out"}},
		{"hy-phen_ated", []string{"hy", "phen", "ated"}},
		{"movie2008!", []string{"movie2008"}},
		{"", nil},
		{"!!!", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  The  GodFather "); got != "the godfather" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("the cast of star wars")
	want := []string{"cast", "star", "wars"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func buildFixtureIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	ix.MustAdd("cast:star wars", Field{Text: "star wars", Weight: 3}, Field{Text: "cast of star wars with many actors luke leia han"})
	ix.MustAdd("cast:batman", Field{Text: "batman", Weight: 3}, Field{Text: "cast of batman bruce wayne joker"})
	ix.MustAdd("movie:star wars", Field{Text: "star wars", Weight: 3}, Field{Text: "a space opera movie epic galaxy"})
	ix.MustAdd("person:george clooney", Field{Text: "george clooney", Weight: 3}, Field{Text: "actor profile filmography"})
	return ix
}

func TestIndexBasics(t *testing.T) {
	ix := buildFixtureIndex(t)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	id, ok := ix.ID("cast:batman")
	if !ok {
		t.Fatal("missing doc")
	}
	if ix.Name(id) != "cast:batman" {
		t.Fatalf("Name(%d) = %q", id, ix.Name(id))
	}
	if ix.Name(-1) != "" || ix.Name(99) != "" {
		t.Error("out-of-range Name should be empty")
	}
	if _, err := ix.Add("cast:batman"); err == nil {
		t.Error("duplicate name accepted")
	}
	if ix.DocFreq("star") != 2 {
		t.Errorf("DocFreq(star) = %d", ix.DocFreq("star"))
	}
	if ix.DocFreq("zzz") != 0 {
		t.Error("DocFreq of absent term should be 0")
	}
	if ix.VocabularySize() == 0 {
		t.Error("empty vocabulary")
	}
	if ix.AvgDocLen() <= 0 {
		t.Error("AvgDocLen should be positive")
	}
	if ix.DocLen(0) <= ix.DocLen(99) {
		t.Error("DocLen of real doc should exceed out-of-range 0")
	}
}

func TestFieldWeighting(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd("weighted", Field{Text: "batman", Weight: 5})
	ix.MustAdd("plain", Field{Text: "batman"})
	ps := ix.Postings("batman")
	if len(ps) != 2 {
		t.Fatalf("postings = %v", ps)
	}
	if ps[0].TF != 5 || ps[1].TF != 1 {
		t.Fatalf("weighted TFs = %v", ps)
	}
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := buildFixtureIndex(t)
	for _, scorer := range []Scorer{TFIDF{}, BM25{}} {
		hits := Search(ix, scorer, "star wars cast", 0)
		if len(hits) == 0 {
			t.Fatalf("%s: no hits", scorer.Name())
		}
		if hits[0].Name != "cast:star wars" {
			t.Errorf("%s: top hit = %q, want cast:star wars (hits %v)", scorer.Name(), hits[0].Name, hits)
		}
	}
}

func TestSearchTopKCut(t *testing.T) {
	ix := buildFixtureIndex(t)
	hits := Search(ix, BM25{}, "cast", 1)
	if len(hits) != 1 {
		t.Fatalf("k=1 returned %d hits", len(hits))
	}
	all := Search(ix, BM25{}, "cast", 0)
	if len(all) != 2 {
		t.Fatalf("cast appears in 2 docs, got %d", len(all))
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildFixtureIndex(t)
	if hits := Search(ix, TFIDF{}, "zzzz qqqq", 10); len(hits) != 0 {
		t.Errorf("hits for nonsense query: %v", hits)
	}
}

func TestSearchDeterministicTiebreak(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd("b", Field{Text: "same text"})
	ix.MustAdd("a", Field{Text: "same text"})
	hits := Search(ix, BM25{}, "same text", 0)
	if len(hits) != 2 || hits[0].Name != "a" {
		t.Fatalf("tie not broken by name: %v", hits)
	}
}

func TestIDFOrdering(t *testing.T) {
	ix := buildFixtureIndex(t)
	// "cast" (df=2) must have lower idf than "joker" (df=1).
	if ix.IDF("cast") >= ix.IDF("joker") {
		t.Errorf("IDF(cast)=%v should be < IDF(joker)=%v", ix.IDF("cast"), ix.IDF("joker"))
	}
	if ix.IDF("absent") <= ix.IDF("cast") {
		t.Error("absent terms should have maximal idf")
	}
}

func TestBM25CustomParams(t *testing.T) {
	ix := buildFixtureIndex(t)
	a := Search(ix, BM25{K1: 0.5, B: 0.1}, "star wars", 0)
	b := Search(ix, BM25{}, "star wars", 0)
	if len(a) != len(b) {
		t.Fatal("param change altered candidate set")
	}
}

func TestBM25EmptyIndex(t *testing.T) {
	ix := NewIndex()
	if hits := Search(ix, BM25{}, "anything", 5); len(hits) != 0 {
		t.Error("hits from empty index")
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var hits []Hit
	for i := 0; i < 300; i++ {
		hits = append(hits, Hit{Doc: i, Name: fmt.Sprintf("d%03d", i), Score: float64(r.Intn(50))})
	}
	for _, k := range []int{1, 5, 17, 300, 500} {
		tk := NewTopK(k)
		for _, h := range hits {
			tk.Offer(h)
		}
		got := tk.Hits()

		full := append([]Hit(nil), hits...)
		sortHits(full)
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: TopK disagrees with full sort\n got %v\nwant %v", k, got[:min(3, len(got))], want[:min(3, len(want))])
		}
	}
	zero := NewTopK(0)
	zero.Offer(Hit{Score: 1})
	if len(zero.Hits()) != 0 {
		t.Error("TopK(0) retained hits")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: adding an unrelated document never changes the relative order
// of two existing documents' BM25 scores for a fixed query (IDF shifts are
// monotone across all docs for the same terms).
func TestScoreStabilityUnderUnrelatedGrowth(t *testing.T) {
	base := func(extra int) (float64, float64) {
		ix := NewIndex()
		ix.MustAdd("rel", Field{Text: "star wars cast list"})
		ix.MustAdd("semi", Field{Text: "star chart astronomy"})
		for i := 0; i < extra; i++ {
			ix.MustAdd(fmt.Sprintf("junk%d", i), Field{Text: "unrelated filler document about cooking"})
		}
		s := BM25{}.Score(ix, Tokenize("star wars"))
		relID, _ := ix.ID("rel")
		semiID, _ := ix.ID("semi")
		return s[relID], s[semiID]
	}
	for _, extra := range []int{0, 5, 50} {
		rel, semi := base(extra)
		if rel <= semi {
			t.Errorf("extra=%d: rel=%v <= semi=%v", extra, rel, semi)
		}
	}
}

// Property: every query term present in exactly one document makes that
// document the unique top hit for that term as a query.
func TestUniqueTermRetrieval(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ix := NewIndex()
	uniq := make(map[string]string) // term -> doc name
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("doc%d", i)
		term := fmt.Sprintf("uniqterm%d", i)
		common := []string{"alpha", "beta", "gamma"}[r.Intn(3)]
		ix.MustAdd(name, Field{Text: term + " " + common + " filler words here"})
		uniq[term] = name
	}
	for term, want := range uniq {
		hits := Search(ix, BM25{}, term, 1)
		if len(hits) != 1 || hits[0].Name != want {
			t.Fatalf("query %q: hits = %v, want %q", term, hits, want)
		}
	}
}

// Property: tokenization is idempotent — tokenizing the normalized form
// yields the same tokens.
func TestTokenizeIdempotent(t *testing.T) {
	inputs := []string{
		"George Clooney", "ocean's 11!!", "the,matrix", "A-B-C 123",
		strings.Repeat("word ", 20),
	}
	for _, in := range inputs {
		first := Tokenize(in)
		second := Tokenize(strings.Join(first, " "))
		if !reflect.DeepEqual(first, second) {
			t.Errorf("not idempotent for %q: %v vs %v", in, first, second)
		}
	}
}

func TestPostingsSortedByDoc(t *testing.T) {
	ix := buildFixtureIndex(t)
	for _, term := range []string{"star", "cast", "wars"} {
		ps := ix.Postings(term)
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc }) {
			t.Errorf("postings for %q not sorted: %v", term, ps)
		}
	}
}
