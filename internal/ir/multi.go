package ir

import (
	"math/bits"
	"sort"
	"sync"
)

// Multi-query batch retrieval: one pass over the shared posting lists
// answers many queries at once.
//
// A batch's queries overlap heavily in terms (the zipfian head of any
// real query log), yet serial execution decodes each shared posting
// list once per query. MultiSearchSet instead merges the term sets of
// the whole batch, walks each posting list exactly once per shard, and
// feeds per-query MaxScore accumulators from the single pass: per
// posting, the query-independent part of the scoring expression is
// computed once and fanned out to every subscribed query with one
// multiply-add.
//
// # Parity with serial execution
//
// The driver reproduces the EXHAUSTIVE scoring path bit for bit, which
// the pruned serial path is itself parity-proven against (see topk.go),
// so batch results are bitwise identical to serial no matter which path
// serial execution took:
//
//  1. Per (query, document), contributions accumulate in the query's
//     sorted-term order: the scan processes the document-id space in
//     windows, iterating the globally-sorted union term table within
//     each window — and a document's addends all land in the one window
//     containing it, in union order, whose restriction to one query's
//     subscribed terms is that query's own sorted order.
//  2. Each addend is scale*shared(tf, dl), which equals the exhaustive
//     contrib(tf, dl) bitwise by the planTerm factoring contract
//     (scale == 1.0, or the scale multiply is contrib's own final
//     operation).
//  3. Every candidate is counted, and a candidate's exact final score
//     is skipped only when a pruning bound — the query's ceiling, the
//     same expression shape the serial pruned path uses, inflated by
//     pruneSlack — proves it strictly below the query's current top-K
//     threshold (an equal score could still enter on the name
//     tie-break, so ties are always scored). Retained hits rank under
//     the same (score desc, name asc) total order serial retrieval
//     uses; names are unique, so truncation is unambiguous.
//
// Queries with no ceiling (Ceil <= 0) skip nothing and need no
// monotonicity assumptions: every match is scored exactly, valid for
// any boost signs, filters, and K (including K <= 0 = "all hits").

// multiGroupSize is the number of queries one scan accumulates
// simultaneously: each window document tracks its matched queries in
// one uint64 mask. Larger batches run as successive groups (each group
// re-walks the postings, so the amortization factor caps at 64 — far
// above any serving batch size).
const multiGroupSize = 64

// multiWindow is the width of the document-id window the scan
// accumulates into: Q×multiWindow float64 accumulators (1 MiB at the
// full group size) — resident regardless of corpus size, unlike a
// per-document dense table.
const multiWindow = 2048

// BatchQuery is one query of a multi-query pass. Terms are the raw
// tokenized query terms — duplicates are meaningful (TFIDF query
// weights depend on the in-query term frequency).
type BatchQuery struct {
	Terms []string
	// K bounds the retained hits: the top K by final score (ties by
	// name asc). K <= 0 retains every hit.
	K int
	// Ceil, when positive, lets the pass skip exact final-score
	// computation for documents provably below the query's current
	// K-th threshold: it must dominate Final/irScore for every counted
	// document except those listed in Exempt (up to the usual few-ulps
	// float slack, which pruneSlack absorbs). Ceil <= 0 disables the
	// skip — every match is scored exactly.
	Ceil float64
	// Exempt lists global doc ids whose final score may exceed
	// irScore*Ceil (the engine's anchor-boosted instances); they are
	// always scored exactly.
	Exempt []int
}

// MultiBooster folds caller context into the multi-query pass. The
// driver calls Prepare once per candidate document — which also settles
// the per-query counting (filter) decision for the whole batch in one
// bitmask — and Final only for candidates that could make the query's
// top K. Implementations must be safe for concurrent use: shards run in
// parallel.
type MultiBooster interface {
	// Prepare resolves a candidate document by global id and name,
	// returning an opaque handle passed back to Final, plus the
	// counting decision for the whole batch at once: counts bit j
	// reports whether the document counts for query base+j (the
	// caller's per-query filter) — one call replaces a per-(query,
	// document) filter callback. base is always a multiple of 64 (the
	// driver's group size). ok=false drops the document for every
	// query in the batch.
	Prepare(doc int, name string, base int) (handle any, counts uint64, ok bool)
	// Final maps one query's exact IR score for the document (global id
	// doc) to its final (ranking) score. It must be monotone
	// non-decreasing in irScore for a fixed document and satisfy the
	// Ceil contract above.
	Final(handle any, q, doc int, irScore float64) float64
}

// BatchHits is one query's result from a multi-query pass: the retained
// hits sorted best-first under (score desc, name asc), and the total
// number of counted candidates (the exact Total a serial search
// reports).
type BatchHits struct {
	Hits  []FinalHit
	Total int
}

// MultiSearchSet answers every query of the batch in one pass over the
// posting lists of the shards the set selects. ok is false when the
// scorer cannot build a pruning plan for some (query, shard) pair —
// the caller falls back to serial execution, which is always valid.
// Hit docs carry global ids.
func (s *ShardedIndex) MultiSearchSet(scorer Scorer, queries []BatchQuery, booster MultiBooster, set ShardSet) ([]BatchHits, bool) {
	ps, prunable := scorer.(prunedScorer)
	if !prunable {
		return nil, false
	}
	if len(queries) > multiGroupSize {
		out := make([]BatchHits, 0, len(queries))
		for start := 0; start < len(queries); start += multiGroupSize {
			end := start + multiGroupSize
			if end > len(queries) {
				end = len(queries)
			}
			group, ok := s.MultiSearchSet(scorer, queries[start:end], &offsetBooster{b: booster, off: start}, set)
			if !ok {
				return nil, false
			}
			out = append(out, group...)
		}
		return out, true
	}
	var selected []int
	for i := range s.shards {
		if set.Contains(i) {
			selected = append(selected, i)
		}
	}
	perShard := make([][]BatchHits, len(s.shards))
	planFailed := make([]bool, len(s.shards))
	run := func(i int) {
		res, ok := s.multiShardPass(ps, queries, booster, i)
		if !ok {
			planFailed[i] = true
			return
		}
		perShard[i] = res
	}
	if len(selected) == 1 {
		run(selected[0])
	} else {
		var wg sync.WaitGroup
		for _, i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	for _, failed := range planFailed {
		if failed {
			return nil, false
		}
	}

	// Merge the per-shard rankings per query, exactly as the sharded
	// single-query paths do, and sum the per-shard totals.
	out := make([]BatchHits, len(queries))
	for q := range queries {
		lists := make([][]FinalHit, 0, len(selected))
		total := 0
		for _, i := range selected {
			if perShard[i] == nil {
				continue
			}
			lists = append(lists, perShard[i][q].Hits)
			total += perShard[i][q].Total
		}
		k := queries[q].K
		if k <= 0 {
			for _, l := range lists {
				k += len(l)
			}
		}
		out[q] = BatchHits{Hits: mergeFinalHits(lists, k), Total: total}
	}
	return out, true
}

// offsetBooster shifts query indices for grouped oversize batches, so
// the caller's booster always sees its own numbering.
type offsetBooster struct {
	b   MultiBooster
	off int
}

func (o *offsetBooster) Prepare(doc int, name string, base int) (any, uint64, bool) {
	return o.b.Prepare(doc, name, base+o.off)
}
func (o *offsetBooster) Final(handle any, q, doc int, irScore float64) float64 {
	return o.b.Final(handle, q+o.off, doc, irScore)
}

// multiSub is one query's subscription to a union term: the plan term
// supplies the scale, and the query index (with its precomputed match
// bit) routes the contribution.
type multiSub struct {
	q     int
	bit   uint64
	scale float64
}

// multiTerm is one entry of the merged term table: the posting cursor
// shared by every subscriber, the shared-part evaluator (identical
// across subscribers — it closes over only query-independent state),
// and the subscriber list.
type multiTerm struct {
	term   string
	cur    cursor
	shared func(tf, dl float64) float64
	subs   []multiSub
}

// multiShardPass runs the one-pass scan over a single shard. Results
// carry local doc ids remapped to global before return.
func (s *ShardedIndex) multiShardPass(ps prunedScorer, queries []BatchQuery, booster MultiBooster, si int) ([]BatchHits, bool) {
	shard := s.shards[si]
	plans := make([]scorePlan, len(queries))
	for q := range queries {
		// No scratch here: every query's plan must stay alive for the
		// whole pass, so the buffers cannot be shared.
		plan, ok := ps.plan(shard, queries[q].Terms, nil)
		if !ok {
			return nil, false
		}
		plans[q] = plan
	}

	// Merge the per-query plan terms into one union table, re-sorted
	// globally so the scan visits terms — and therefore accumulates
	// per-query contributions — in sorted term order.
	byTerm := make(map[string]int)
	var union []*multiTerm
	for q := range plans {
		for i := range plans[q].terms {
			pt := &plans[q].terms[i]
			j, ok := byTerm[pt.term]
			if !ok {
				j = len(union)
				byTerm[pt.term] = j
				union = append(union, &multiTerm{term: pt.term, shared: pt.shared})
			}
			union[j].subs = append(union[j].subs, multiSub{q: q, bit: 1 << uint(q), scale: pt.scale})
		}
	}
	sort.Slice(union, func(a, b int) bool { return union[a].term < union[b].term })
	live := union[:0]
	for _, ut := range union {
		ut.cur = newCursor(shard, shard.postings[ut.term])
		if !ut.cur.done {
			live = append(live, ut)
		}
	}
	union = live

	// Per-query accumulators: a bounded heap when the query asked for
	// the top K, an unbounded list (sorted at the end) when it asked
	// for everything. finalTopK drops all offers at k <= 0, so the
	// unbounded case needs its own branch.
	topks := make([]*finalTopK, len(queries))
	all := make([][]FinalHit, len(queries))
	for q := range queries {
		if queries[q].K > 0 {
			topks[q] = &finalTopK{k: queries[q].K}
		}
	}
	totals := make([]int, len(queries))

	// Exempt doc sets, translated to sorted local ids per query.
	exempt := make([][]int, len(queries))
	for q := range queries {
		for _, g := range queries[q].Exempt {
			if g >= 0 && g < len(s.shardOf) && int(s.shardOf[g]) == si {
				exempt[q] = append(exempt[q], int(s.localOf[g]))
			}
		}
		sort.Ints(exempt[q])
	}

	// Per-query skip state, hoisted out of the per-pair loop: the
	// ceiling from the query, and the current threshold (valid while
	// full[q]) refreshed after every offer.
	ceils := make([]float64, len(queries))
	thetas := make([]float64, len(queries))
	fulls := make([]bool, len(queries))
	for q := range queries {
		ceils[q] = queries[q].Ceil
	}

	// Windowed document-at-a-time scan: the document-id space advances
	// in fixed windows; within a window every union cursor drains its
	// postings below the window's end into dense per-(query, doc)
	// accumulators, with a per-doc query bitmask recording who matched.
	// Terms iterate in sorted union order, and a document's addends all
	// land in its own window, so per-(query, doc) accumulation order is
	// exactly the sorted-term order parity requires. The accumulators
	// are doc-major with a fixed stride of one group (raw[off*64+q]) so
	// one document's slots — written together while a posting fans out
	// to subscribers, read together on drain — share cache lines, and
	// so q&63 indexing into a full-stride row needs no bounds checks.
	raw := make([]float64, multiWindow*multiGroupSize)
	mask := make([]uint64, multiWindow)
	n := shard.LocalLen()
	for base := 0; base < n; {
		// Skip straight to the lowest pending doc's window.
		next := n
		for _, ut := range union {
			if !ut.cur.done && ut.cur.doc < next {
				next = ut.cur.doc
			}
		}
		if next >= n {
			break
		}
		base = next - next%multiWindow
		hi := base + multiWindow
		for _, ut := range union {
			cur := &ut.cur
			subs := ut.subs
			if len(subs) == 1 {
				// Single-subscriber fast path: most tail terms belong
				// to one query; hoist the fan-out loop.
				q, bit, scale := subs[0].q&63, subs[0].bit, subs[0].scale
				for !cur.done && cur.doc < hi {
					off := cur.doc - base
					sh := ut.shared(cur.tf, shard.docLen[cur.doc])
					raw[off*multiGroupSize+q] += scale * sh
					mask[off] |= bit
					cur.next()
				}
			} else {
				for !cur.done && cur.doc < hi {
					off := cur.doc - base
					sh := ut.shared(cur.tf, shard.docLen[cur.doc])
					row := raw[off*multiGroupSize : off*multiGroupSize+multiGroupSize : off*multiGroupSize+multiGroupSize]
					var hit uint64
					for _, sub := range subs {
						row[sub.q&63] += sub.scale * sh
						hit |= sub.bit
					}
					mask[off] |= hit
					cur.next()
				}
			}
		}
		for off := 0; off < multiWindow; off++ {
			m := mask[off]
			if m == 0 {
				continue
			}
			mask[off] = 0
			d := base + off
			g := s.globalOf[si][d]
			dl := shard.docLen[d]
			row := raw[off*multiGroupSize : off*multiGroupSize+multiGroupSize : off*multiGroupSize+multiGroupSize]
			handle, counts, ok := booster.Prepare(g, shard.names[d], 0)
			if !ok {
				counts = 0
			}
			for m != 0 {
				q := bits.TrailingZeros64(m)
				m &= m - 1
				r := row[q&63]
				row[q&63] = 0
				if counts&(1<<uint(q)) == 0 {
					continue
				}
				totals[q]++
				irScore := r
				if !plans[q].rawFinal {
					irScore = plans[q].finalize(r, dl)
				}
				topk := topks[q]
				if topk != nil {
					// MaxScore-style skip: once the heap is full, a
					// document whose inflated ceiling-bound falls
					// strictly below the K-th final score cannot enter
					// the top K — unless it is ceiling-exempt.
					if fulls[q] && ceils[q] > 0 &&
						inflate(irScore*ceils[q]) < thetas[q] && !containsSorted(exempt[q], d) {
						continue
					}
					topk.offer(FinalHit{Doc: d, Name: shard.names[d], Score: booster.Final(handle, q, g, irScore), IRScore: irScore})
					thetas[q], fulls[q] = topk.threshold()
				} else {
					all[q] = append(all[q], FinalHit{Doc: d, Name: shard.names[d], Score: booster.Final(handle, q, g, irScore), IRScore: irScore})
				}
			}
		}
		base = hi
	}

	out := make([]BatchHits, len(queries))
	for q := range queries {
		var hits []FinalHit
		if topks[q] != nil {
			hits = topks[q].hits()
		} else {
			hits = all[q]
			sort.Slice(hits, func(i, j int) bool { return finalLess(hits[j], hits[i]) })
		}
		for j := range hits {
			hits[j].Doc = s.globalOf[si][hits[j].Doc]
		}
		out[q] = BatchHits{Hits: hits, Total: totals[q]}
	}
	return out, true
}

// containsSorted reports whether a sorted int slice contains v; the
// exempt sets are tiny (a query's anchor-labeled instances), so a
// linear scan beats binary-search setup.
func containsSorted(a []int, v int) bool {
	for _, x := range a {
		if x == v {
			return true
		}
		if x > v {
			return false
		}
	}
	return false
}
