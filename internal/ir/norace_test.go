//go:build !race

package ir

const raceEnabled = false
