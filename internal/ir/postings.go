package ir

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compressed posting lists.
//
// A term's postings are stored as a chain of fixed-capacity blocks. Doc
// ids are sorted ascending (documents are always appended in id order)
// and delta/varint-compressed: the block header carries the first and
// last doc id, and each subsequent posting stores only the uvarint gap
// to its predecessor. Weighted term frequencies ride alongside as raw
// float64s (they are arbitrary weighted sums, not small integers).
//
// Each block additionally carries max-score metadata — the maximum TF
// and the minimum weighted document length over the postings it holds —
// from which a scorer can derive an upper bound on any contribution the
// block can produce. Removal tombstones a document (its docLen drops to
// 0 and iteration skips it) WITHOUT touching block metadata: a stale
// MaxTF can only overstate and a stale MinLen can only understate, so
// every derived bound stays a true upper bound. That staleness trade is
// what makes Remove O(query terms) instead of an O(postings) re-encode.

// blockSize is the posting capacity of one block. 128 keeps a block's
// deltas within one or two cache lines for dense lists while giving
// block-level skipping enough granularity to pay off.
const blockSize = 128

// PostingBlock is one fixed-capacity chunk of a compressed posting
// list. It is exported (together with TermPostings) so the snapshot
// layer can persist posting lists verbatim; other packages must treat
// it as opaque.
type PostingBlock struct {
	// Docs holds the uvarint-encoded doc-id gaps of postings 1..N-1;
	// posting 0's doc id is FirstDoc and has no bytes here.
	Docs []byte
	// TFs holds the weighted term frequency of every posting, 0..N-1.
	TFs []float64
	// N is the number of postings in the block.
	N int
	// FirstDoc and LastDoc are the block's doc-id range, inclusive.
	FirstDoc, LastDoc int
	// MaxTF is the maximum TF over the block's postings (possibly stale
	// high after removals — still a valid upper bound).
	MaxTF float64
	// MinLen is the minimum weighted document length over the block's
	// postings at append time (possibly stale low after removals — still
	// a valid lower bound).
	MinLen float64
}

// TermPostings is the externalized compressed posting list of one term,
// the unit the snapshot layer persists and restores.
type TermPostings struct {
	// Term is the indexed term.
	Term string
	// Live is the number of non-tombstoned postings.
	Live int
	// MaxTF, MinLen, MinTF are the list-level metadata aggregates
	// (stale-safe, like the per-block ones).
	MaxTF, MinLen, MinTF float64
	// LastDoc is the highest doc id ever appended.
	LastDoc int
	// Blocks is the block chain in doc-id order.
	Blocks []PostingBlock
}

// postingList is the in-index form of a term's compressed postings.
type postingList struct {
	blocks []PostingBlock
	live   int     // non-tombstoned postings
	total  int     // all postings, tombstones included
	maxTF  float64 // stale-safe aggregates over every posting ever added
	minTF  float64
	minLen float64
	last   int // highest doc id appended
}

// add appends one posting. Doc ids must be strictly increasing across
// calls; dl is the document's weighted length at append time.
func (pl *postingList) add(doc int, tf, dl float64) {
	if n := len(pl.blocks); n == 0 || pl.blocks[n-1].N >= blockSize {
		pl.blocks = append(pl.blocks, PostingBlock{
			TFs:      append(make([]float64, 0, 4), tf),
			N:        1,
			FirstDoc: doc,
			LastDoc:  doc,
			MaxTF:    tf,
			MinLen:   dl,
		})
	} else {
		b := &pl.blocks[n-1]
		b.Docs = binary.AppendUvarint(b.Docs, uint64(doc-b.LastDoc))
		b.TFs = append(b.TFs, tf)
		b.N++
		b.LastDoc = doc
		if tf > b.MaxTF {
			b.MaxTF = tf
		}
		if dl < b.MinLen {
			b.MinLen = dl
		}
	}
	if pl.total == 0 {
		pl.maxTF, pl.minTF, pl.minLen = tf, tf, dl
	} else {
		if tf > pl.maxTF {
			pl.maxTF = tf
		}
		if tf < pl.minTF {
			pl.minTF = tf
		}
		if dl < pl.minLen {
			pl.minLen = dl
		}
	}
	pl.live++
	pl.total++
	pl.last = doc
}

// export deep-copies the list into its externalized form.
func (pl *postingList) export(term string) TermPostings {
	out := TermPostings{
		Term:    term,
		Live:    pl.live,
		MaxTF:   pl.maxTF,
		MinLen:  pl.minLen,
		MinTF:   pl.minTF,
		LastDoc: pl.last,
		Blocks:  make([]PostingBlock, len(pl.blocks)),
	}
	for i, b := range pl.blocks {
		c := b
		c.Docs = append([]byte(nil), b.Docs...)
		c.TFs = append([]float64(nil), b.TFs...)
		out.Blocks[i] = c
	}
	return out
}

// cursor walks one posting list in doc-id order, skipping tombstoned
// documents. After newCursor or any advance, either done is true or
// (doc, tf) is a live posting.
type cursor struct {
	ix   *Index
	pl   *postingList
	bi   int // current block index
	i    int // posting index within the block
	off  int // byte offset into the block's gap stream
	doc  int
	tf   float64
	done bool
}

// newCursor positions a cursor on the list's first live posting.
func newCursor(ix *Index, pl *postingList) cursor {
	c := cursor{ix: ix, pl: pl, bi: -1, done: pl == nil || len(pl.blocks) == 0}
	if !c.done {
		c.nextBlock()
		c.skipDead()
	}
	return c
}

// nextBlock enters the next block (or exhausts the cursor).
func (c *cursor) nextBlock() {
	c.bi++
	if c.bi >= len(c.pl.blocks) {
		c.done = true
		return
	}
	b := &c.pl.blocks[c.bi]
	c.i, c.off = 0, 0
	c.doc, c.tf = b.FirstDoc, b.TFs[0]
}

// step advances one raw posting, tombstones included.
func (c *cursor) step() {
	b := &c.pl.blocks[c.bi]
	if c.i+1 >= b.N {
		c.nextBlock()
		return
	}
	gap, n := binary.Uvarint(b.Docs[c.off:])
	c.off += n
	c.i++
	c.doc += int(gap)
	c.tf = b.TFs[c.i]
}

// skipDead moves forward past tombstoned documents (docLen == 0 marks a
// removed slot; live documents that appear in any posting list always
// have positive weighted length).
func (c *cursor) skipDead() {
	for !c.done && c.ix.docLen[c.doc] == 0 {
		c.step()
	}
}

// next advances to the next live posting.
func (c *cursor) next() {
	if c.done {
		return
	}
	c.step()
	c.skipDead()
}

// seek advances to the first live posting with doc id >= d. Blocks
// wholly below d are skipped without decoding their gap streams. Seeking
// backwards is a no-op (the cursor never rewinds).
func (c *cursor) seek(d int) {
	if c.done || c.doc >= d {
		return
	}
	// Skip whole blocks by header range first.
	for c.pl.blocks[c.bi].LastDoc < d {
		c.nextBlock()
		if c.done {
			return
		}
	}
	for !c.done && c.doc < d {
		c.step()
	}
	c.skipDead()
}

// blockMaxTF and blockMinLen expose the current block's bound metadata.
func (c *cursor) blockMaxTF() float64  { return c.pl.blocks[c.bi].MaxTF }
func (c *cursor) blockMinLen() float64 { return c.pl.blocks[c.bi].MinLen }

// importPostings installs externally-restored posting lists, replacing
// whatever the index holds. Every list is structurally validated
// (strictly increasing doc ids within the index's slot space, block
// headers consistent with their payload, live count consistent with the
// index's tombstones) so a corrupt snapshot fails loudly instead of
// scoring garbage.
func (ix *Index) importPostings(lists []TermPostings) error {
	postings := make(map[string]*postingList, len(lists))
	for li := range lists {
		tp := &lists[li]
		if tp.Term == "" {
			return fmt.Errorf("ir: postings list %d has an empty term", li)
		}
		if _, dup := postings[tp.Term]; dup {
			return fmt.Errorf("ir: duplicate postings list for term %q", tp.Term)
		}
		pl := &postingList{
			blocks: tp.Blocks,
			live:   tp.Live,
			maxTF:  tp.MaxTF,
			minTF:  tp.MinTF,
			minLen: tp.MinLen,
			last:   tp.LastDoc,
		}
		prev := -1
		live, total := 0, 0
		for bi := range pl.blocks {
			b := &pl.blocks[bi]
			if b.N < 1 || b.N > blockSize || len(b.TFs) != b.N {
				return fmt.Errorf("ir: term %q block %d: bad posting count", tp.Term, bi)
			}
			doc, off := b.FirstDoc, 0
			for i := 0; i < b.N; i++ {
				if i > 0 {
					gap, n := binary.Uvarint(b.Docs[off:])
					if n <= 0 || gap == 0 || gap > uint64(len(ix.names)) {
						return fmt.Errorf("ir: term %q block %d: bad doc gap", tp.Term, bi)
					}
					off += n
					doc += int(gap)
				}
				if doc <= prev || doc >= len(ix.names) {
					return fmt.Errorf("ir: term %q block %d: doc id %d out of order or range", tp.Term, bi, doc)
				}
				tf := b.TFs[i]
				if !(tf > 0) || math.IsInf(tf, 0) {
					return fmt.Errorf("ir: term %q block %d: tf %v outside (0, +Inf)", tp.Term, bi, tf)
				}
				if dl := ix.docLen[doc]; dl > 0 {
					live++
					// Bound-safety: the block and list metadata must
					// dominate every LIVE posting (stale values backing
					// only tombstones are allowed — that is the safe
					// direction), or the pruned scorer would derive
					// understated upper bounds and silently drop results.
					if tf > b.MaxTF || tf > tp.MaxTF || tf < tp.MinTF {
						return fmt.Errorf("ir: term %q block %d: live tf %v outside metadata bounds [%v, min(%v,%v)]", tp.Term, bi, tf, tp.MinTF, b.MaxTF, tp.MaxTF)
					}
					if dl < b.MinLen || dl < tp.MinLen {
						return fmt.Errorf("ir: term %q block %d: live doc length %v below metadata minimum", tp.Term, bi, dl)
					}
				}
				prev = doc
				total++
			}
			if off != len(b.Docs) {
				return fmt.Errorf("ir: term %q block %d: trailing gap bytes", tp.Term, bi)
			}
			if doc != b.LastDoc {
				return fmt.Errorf("ir: term %q block %d: LastDoc %d does not match decoded %d", tp.Term, bi, b.LastDoc, doc)
			}
		}
		if live != tp.Live {
			return fmt.Errorf("ir: term %q: live count %d does not match tombstones (%d live)", tp.Term, tp.Live, live)
		}
		if live == 0 {
			return fmt.Errorf("ir: term %q: no live postings (dead lists are dropped, not persisted)", tp.Term)
		}
		if prev != tp.LastDoc {
			return fmt.Errorf("ir: term %q: LastDoc %d does not match decoded %d", tp.Term, tp.LastDoc, prev)
		}
		pl.total = total
		postings[tp.Term] = pl
	}
	ix.postings = postings
	return nil
}

// importPostingsTrusted installs posting lists with shape-only
// validation: block headers must be internally consistent (posting
// counts, TF slice lengths, live-vs-total sanity), but gap streams are
// NOT decoded and per-posting doc ids and TFs are NOT checked against
// the index. That makes restore O(terms + blocks) instead of
// O(postings) — the point of serving a memory-mapped snapshot whose
// content is already covered by the snapshot layer's checksums. The
// installed block slices may alias mapped bytes; mutation via add
// appends, which reallocates (the slices arrive with len == cap), so
// the mapping itself is never written through.
func (ix *Index) importPostingsTrusted(lists []TermPostings) error {
	postings := make(map[string]*postingList, len(lists))
	for li := range lists {
		tp := &lists[li]
		if tp.Term == "" {
			return fmt.Errorf("ir: postings list %d has an empty term", li)
		}
		if _, dup := postings[tp.Term]; dup {
			return fmt.Errorf("ir: duplicate postings list for term %q", tp.Term)
		}
		if tp.Live < 1 {
			return fmt.Errorf("ir: term %q: no live postings (dead lists are dropped, not persisted)", tp.Term)
		}
		total := 0
		for bi := range tp.Blocks {
			b := &tp.Blocks[bi]
			if b.N < 1 || b.N > blockSize || len(b.TFs) != b.N {
				return fmt.Errorf("ir: term %q block %d: bad posting count", tp.Term, bi)
			}
			if b.FirstDoc < 0 || b.LastDoc < b.FirstDoc || b.LastDoc >= len(ix.names) {
				return fmt.Errorf("ir: term %q block %d: doc range [%d, %d] invalid for %d slots", tp.Term, bi, b.FirstDoc, b.LastDoc, len(ix.names))
			}
			total += b.N
		}
		if total < tp.Live {
			return fmt.Errorf("ir: term %q: live count %d exceeds %d postings", tp.Term, tp.Live, total)
		}
		postings[tp.Term] = &postingList{
			blocks: tp.Blocks,
			live:   tp.Live,
			total:  total,
			maxTF:  tp.MaxTF,
			minTF:  tp.MinTF,
			minLen: tp.MinLen,
			last:   tp.LastDoc,
		}
	}
	ix.postings = postings
	return nil
}
