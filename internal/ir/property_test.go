package ir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// BM25 axioms, checked empirically: more occurrences of a query term
// never lower a document's score (TF monotonicity), and rarer terms
// contribute more than common ones of equal frequency (IDF effect).

func TestBM25TFMonotonicity(t *testing.T) {
	for reps := 1; reps < 8; reps++ {
		ix := NewIndex()
		// Pad documents to identical length so only TF varies.
		pad := func(n int) string { return strings.Repeat("filler ", n) }
		ix.MustAdd("less", Field{Text: strings.Repeat("target ", reps) + pad(10-reps)})
		ix.MustAdd("more", Field{Text: strings.Repeat("target ", reps+1) + pad(9-reps)})
		s := BM25{}.Score(ix, []string{"target"})
		lessID, _ := ix.ID("less")
		moreID, _ := ix.ID("more")
		if s[moreID] < s[lessID] {
			t.Fatalf("reps=%d: more occurrences scored lower (%v < %v)", reps, s[moreID], s[lessID])
		}
	}
}

func TestBM25IDFEffect(t *testing.T) {
	ix := NewIndex()
	// "rare" appears in 1 doc, "common" in all 20; both once in doc0.
	ix.MustAdd("doc0", Field{Text: "rare common"})
	for i := 1; i < 20; i++ {
		ix.MustAdd(fmt.Sprintf("doc%d", i), Field{Text: "common filler"})
	}
	id0, _ := ix.ID("doc0")
	rareScore := BM25{}.Score(ix, []string{"rare"})[id0]
	commonScore := BM25{}.Score(ix, []string{"common"})[id0]
	if rareScore <= commonScore {
		t.Fatalf("rare term (%v) did not outscore common term (%v)", rareScore, commonScore)
	}
}

// Property: scores are invariant under document insertion order.
func TestScoringOrderInvariance(t *testing.T) {
	docs := map[string]string{
		"a": "star wars epic space opera",
		"b": "cast of star wars",
		"c": "wars of the roses documentary",
		"d": "unrelated cooking show",
	}
	build := func(order []string) map[string]float64 {
		ix := NewIndex()
		for _, name := range order {
			ix.MustAdd(name, Field{Text: docs[name]})
		}
		out := map[string]float64{}
		for doc, s := range (BM25{}).Score(ix, Tokenize("star wars")) {
			out[ix.Name(doc)] = s
		}
		return out
	}
	base := build([]string{"a", "b", "c", "d"})
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		order := []string{"a", "b", "c", "d"}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := build(order)
		if len(got) != len(base) {
			t.Fatal("candidate set changed with insertion order")
		}
		for name, s := range base {
			if got[name] != s {
				t.Fatalf("score of %q changed with insertion order: %v vs %v", name, got[name], s)
			}
		}
	}
}

// Property: pruned top-k is insertion-order invariant, exactly like the
// exhaustive scorer it must mirror (see also topk_test.go for the full
// pruned≡exhaustive parity suite).
func TestPrunedTopKOrderInvariance(t *testing.T) {
	docs := map[string]string{
		"a": "star wars epic space opera",
		"b": "cast of star wars",
		"c": "wars of the roses documentary",
		"d": "unrelated cooking show",
	}
	build := func(order []string) []Hit {
		ix := NewIndex()
		for _, name := range order {
			ix.MustAdd(name, Field{Text: docs[name]})
		}
		hits := Search(ix, BM25{}, "star wars", 2)
		for i := range hits {
			hits[i].Doc = 0 // dense ids shift with order; names must not
		}
		return hits
	}
	base := build([]string{"a", "b", "c", "d"})
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		order := []string{"a", "b", "c", "d"}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := build(order)
		if len(got) != len(base) {
			t.Fatal("top-k size changed with insertion order")
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("top-k changed with insertion order: %v vs %v", got[i], base[i])
			}
		}
	}
}

// --- package microbenches ---

func benchIndex(n int) *Index {
	ix := NewIndex()
	words := []string{"star", "wars", "cast", "movie", "epic", "space", "drama", "actor", "scene", "story"}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for j := 0; j < 20; j++ {
			sb.WriteString(words[r.Intn(len(words))])
			sb.WriteByte(' ')
		}
		ix.MustAdd(fmt.Sprintf("doc%d", i), Field{Text: sb.String()})
	}
	return ix
}

func BenchmarkBM25Score(b *testing.B) {
	ix := benchIndex(2000)
	terms := Tokenize("star wars cast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BM25{}.Score(ix, terms)
	}
}

func BenchmarkTFIDFScore(b *testing.B) {
	ix := benchIndex(2000)
	terms := Tokenize("star wars cast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TFIDF{}.Score(ix, terms)
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := "The Quick Brown Fox's 2008 adventure, with punctuation—and UNICODE"
	for i := 0; i < b.N; i++ {
		Tokenize(s)
	}
}
