//go:build race

package ir

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation adds allocations of its own.
const raceEnabled = true
