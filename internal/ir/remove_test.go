package ir

import (
	"math"
	"testing"
)

// removalCorpus indexes a small document set into a sharded index.
func removalCorpus(t *testing.T, shards int, skip map[string]bool) *ShardedIndex {
	t.Helper()
	docs := []struct{ name, text string }{
		{"a", "the quick brown fox jumps over the lazy dog"},
		{"b", "the lazy dog sleeps all day"},
		{"c", "a quick brown rabbit outruns the fox"},
		{"d", "dogs and foxes are canids"},
		{"e", "the rabbit naps beside the dog"},
	}
	ix := NewShardedIndex(shards)
	for _, d := range docs {
		if skip[d.name] {
			continue
		}
		ix.MustAdd(d.name, Field{Text: d.text})
	}
	return ix
}

func TestShardedRemove(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	before := ix.Len()
	if err := ix.Remove("b"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := ix.Remove("d"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := ix.Len(); got != before-2 {
		t.Fatalf("Len after removal = %d, want %d", got, before-2)
	}
	if _, ok := ix.ID("b"); ok {
		t.Fatal("removed document still resolvable by name")
	}
	for _, q := range []string{"lazy dog", "quick brown fox", "canids", "rabbit"} {
		for _, h := range ix.Search(BM25{}, q, 0) {
			if h.Name == "b" || h.Name == "d" {
				t.Fatalf("query %q surfaced removed document %q", q, h.Name)
			}
		}
	}
	// Collection statistics must match a fresh index built without the
	// removed documents: integer stats exactly, the running total length
	// within float tolerance (it is maintained incrementally).
	fresh := removalCorpus(t, 2, map[string]bool{"b": true, "d": true})
	if ix.Len() != fresh.Len() {
		t.Fatalf("Len %d vs fresh %d", ix.Len(), fresh.Len())
	}
	if ix.VocabularySize() != fresh.VocabularySize() {
		t.Fatalf("VocabularySize %d vs fresh %d", ix.VocabularySize(), fresh.VocabularySize())
	}
	for _, term := range []string{"dog", "fox", "lazy", "canids", "rabbit", "the"} {
		if ix.DocFreq(term) != fresh.DocFreq(term) {
			t.Fatalf("DocFreq(%q) %d vs fresh %d", term, ix.DocFreq(term), fresh.DocFreq(term))
		}
	}
	if math.Abs(ix.AvgDocLen()-fresh.AvgDocLen()) > 1e-9 {
		t.Fatalf("AvgDocLen %v vs fresh %v", ix.AvgDocLen(), fresh.AvgDocLen())
	}
	// Rankings agree with the fresh build within float tolerance.
	for _, q := range []string{"lazy dog", "quick brown", "the rabbit"} {
		got, want := ix.Search(BM25{}, q, 0), fresh.Search(BM25{}, q, 0)
		if len(got) != len(want) {
			t.Fatalf("query %q: %d hits vs fresh %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Name != want[i].Name {
				t.Fatalf("query %q hit %d: %q vs fresh %q", q, i, got[i].Name, want[i].Name)
			}
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("query %q hit %d: score %v vs fresh %v", q, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestShardedRemoveUnknown(t *testing.T) {
	ix := removalCorpus(t, 3, nil)
	if err := ix.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown document did not error")
	}
}

func TestShardedRemoveThenReAdd(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	if err := ix.Remove("c"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := ix.Add("c", Field{Text: "a brand new c document about rabbits"}); err != nil {
		t.Fatalf("re-Add after Remove: %v", err)
	}
	hits := ix.Search(BM25{}, "brand new rabbits", 1)
	if len(hits) == 0 || hits[0].Name != "c" {
		t.Fatalf("re-added document not retrievable: %v", hits)
	}
	// The tombstoned slot stays dead; the re-add occupies a fresh id.
	if ix.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ix.Len())
	}
	if ix.Slots() != 6 {
		t.Fatalf("Slots = %d, want 6", ix.Slots())
	}
}

func TestForceTotalLen(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	ix.ForceTotalLen(123.5)
	if got := ix.TotalLen(); got != 123.5 {
		t.Fatalf("TotalLen after ForceTotalLen = %v", got)
	}
	if got := ix.AvgDocLen(); got != 123.5/5 {
		t.Fatalf("AvgDocLen = %v", got)
	}
}
