package ir

import (
	"math"
	"testing"
)

// removalCorpus indexes a small document set into a sharded index.
func removalCorpus(t *testing.T, shards int, skip map[string]bool) *ShardedIndex {
	t.Helper()
	docs := []struct{ name, text string }{
		{"a", "the quick brown fox jumps over the lazy dog"},
		{"b", "the lazy dog sleeps all day"},
		{"c", "a quick brown rabbit outruns the fox"},
		{"d", "dogs and foxes are canids"},
		{"e", "the rabbit naps beside the dog"},
	}
	ix := NewShardedIndex(shards)
	for _, d := range docs {
		if skip[d.name] {
			continue
		}
		ix.MustAdd(d.name, Field{Text: d.text})
	}
	return ix
}

func TestShardedRemove(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	before := ix.Len()
	if err := ix.Remove("b"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := ix.Remove("d"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := ix.Len(); got != before-2 {
		t.Fatalf("Len after removal = %d, want %d", got, before-2)
	}
	if _, ok := ix.ID("b"); ok {
		t.Fatal("removed document still resolvable by name")
	}
	for _, q := range []string{"lazy dog", "quick brown fox", "canids", "rabbit"} {
		for _, h := range ix.Search(BM25{}, q, 0) {
			if h.Name == "b" || h.Name == "d" {
				t.Fatalf("query %q surfaced removed document %q", q, h.Name)
			}
		}
	}
	// Collection statistics must match a fresh index built without the
	// removed documents: integer stats exactly, the running total length
	// within float tolerance (it is maintained incrementally).
	fresh := removalCorpus(t, 2, map[string]bool{"b": true, "d": true})
	if ix.Len() != fresh.Len() {
		t.Fatalf("Len %d vs fresh %d", ix.Len(), fresh.Len())
	}
	if ix.VocabularySize() != fresh.VocabularySize() {
		t.Fatalf("VocabularySize %d vs fresh %d", ix.VocabularySize(), fresh.VocabularySize())
	}
	for _, term := range []string{"dog", "fox", "lazy", "canids", "rabbit", "the"} {
		if ix.DocFreq(term) != fresh.DocFreq(term) {
			t.Fatalf("DocFreq(%q) %d vs fresh %d", term, ix.DocFreq(term), fresh.DocFreq(term))
		}
	}
	if math.Abs(ix.AvgDocLen()-fresh.AvgDocLen()) > 1e-9 {
		t.Fatalf("AvgDocLen %v vs fresh %v", ix.AvgDocLen(), fresh.AvgDocLen())
	}
	// Rankings agree with the fresh build within float tolerance.
	for _, q := range []string{"lazy dog", "quick brown", "the rabbit"} {
		got, want := ix.Search(BM25{}, q, 0), fresh.Search(BM25{}, q, 0)
		if len(got) != len(want) {
			t.Fatalf("query %q: %d hits vs fresh %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Name != want[i].Name {
				t.Fatalf("query %q hit %d: %q vs fresh %q", q, i, got[i].Name, want[i].Name)
			}
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("query %q hit %d: score %v vs fresh %v", q, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestShardedRemoveUnknown(t *testing.T) {
	ix := removalCorpus(t, 3, nil)
	if err := ix.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown document did not error")
	}
}

func TestShardedRemoveThenReAdd(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	if err := ix.Remove("c"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := ix.Add("c", Field{Text: "a brand new c document about rabbits"}); err != nil {
		t.Fatalf("re-Add after Remove: %v", err)
	}
	hits := ix.Search(BM25{}, "brand new rabbits", 1)
	if len(hits) == 0 || hits[0].Name != "c" {
		t.Fatalf("re-added document not retrievable: %v", hits)
	}
	// The tombstoned slot stays dead; the re-add occupies a fresh id.
	if ix.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ix.Len())
	}
	if ix.Slots() != 6 {
		t.Fatalf("Slots = %d, want 6", ix.Slots())
	}
}

// TestRemoveReAddSameName is the regression for the Remove → re-Add
// cycle of one document name: the shared collection statistics must
// unwind and rebuild exactly, the tombstoned slot must stay dead while
// the re-add takes a fresh slot, and the stale block-max metadata left
// behind by the removal must never break pruned-scoring parity.
func TestRemoveReAddSameName(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		ix := removalCorpus(t, shards, nil)
		if err := ix.Remove("c"); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Add("c", Field{Text: "a quick brown rabbit outruns the fox"}); err != nil {
			t.Fatalf("re-Add: %v", err)
		}
		// "heavy" carries a far higher TF than any corpus document on a
		// term ("the") present in every shard, so its removal leaves
		// that term's block maximum stale in whichever shard held it
		// (slot 6 lands on a shard where document "a" keeps the list
		// alive for every shard count tested).
		ix.MustAdd("heavy", Field{Text: "the rabbit rabbit rabbit", Weight: 6})
		if err := ix.Remove("heavy"); err != nil {
			t.Fatal(err)
		}
		// Shared stats must match an index that never saw the cycle
		// ("c" re-added with identical text: only float rounding of the
		// running total length may differ).
		fresh := removalCorpus(t, shards, nil)
		if ix.Len() != fresh.Len() || ix.VocabularySize() != fresh.VocabularySize() {
			t.Fatalf("shards=%d: stats %d/%d vs fresh %d/%d",
				shards, ix.Len(), ix.VocabularySize(), fresh.Len(), fresh.VocabularySize())
		}
		for _, term := range []string{"rabbit", "fox", "quick", "dog"} {
			if ix.DocFreq(term) != fresh.DocFreq(term) {
				t.Fatalf("shards=%d DocFreq(%q): %d vs fresh %d", shards, term, ix.DocFreq(term), fresh.DocFreq(term))
			}
		}
		if math.Abs(ix.AvgDocLen()-fresh.AvgDocLen()) > 1e-9 {
			t.Fatalf("shards=%d AvgDocLen %v vs fresh %v", shards, ix.AvgDocLen(), fresh.AvgDocLen())
		}
		if ix.Slots() != 7 { // 5 originals + heavy + re-added c
			t.Fatalf("shards=%d Slots = %d, want 7", shards, ix.Slots())
		}
		// The stale "heavy" TF must still back some block max (the
		// removal deliberately leaves metadata untouched)…
		stale := false
		for _, shard := range ix.shards {
			if pl := shard.postings["the"]; pl != nil {
				for _, b := range pl.blocks {
					if b.MaxTF == 6 { // heavy's weighted tf, no live doc reaches it
						stale = true
					}
				}
			}
		}
		if !stale {
			t.Fatalf("shards=%d: expected stale block-max metadata after removal", shards)
		}
		// …and pruned top-k must still agree with the exhaustive oracle
		// bit for bit despite it.
		for _, q := range []string{"rabbit fox", "quick brown rabbit", "lazy dog", "rabbit"} {
			for _, scorer := range parityScorers {
				for _, k := range []int{1, 2, 3, 10} {
					pruned := ix.Search(scorer, q, k)
					oracle := ix.Search(Exhaustive{S: scorer}, q, k)
					label := "re-add " + q + " " + scorer.Name()
					assertHitsIdentical(t, label, pruned, oracle)
				}
			}
		}
	}
}

func TestForceTotalLen(t *testing.T) {
	ix := removalCorpus(t, 2, nil)
	ix.ForceTotalLen(123.5)
	if got := ix.TotalLen(); got != 123.5 {
		t.Fatalf("TotalLen after ForceTotalLen = %v", got)
	}
	if got := ix.AvgDocLen(); got != 123.5/5 {
		t.Fatalf("AvgDocLen = %v", got)
	}
}
