package ir

import (
	"container/heap"
	"math"
	"sort"
)

// Hit is one ranked retrieval result.
type Hit struct {
	Doc   int
	Name  string
	Score float64
}

// Scorer ranks documents for a tokenized query. Implementations must be
// deterministic.
type Scorer interface {
	// Score returns per-candidate scores for the query terms. Documents
	// not containing any query term are absent.
	Score(ix *Index, terms []string) map[int]float64
	// Name identifies the scorer in reports.
	Name() string
}

// TFIDF is lnc-style cosine scoring: document weight (1+ln tf)·idf,
// normalized by document vector length.
type TFIDF struct{}

// Name implements Scorer.
func (TFIDF) Name() string { return "tfidf" }

// Score implements Scorer.
func (TFIDF) Score(ix *Index, terms []string) map[int]float64 {
	qtf := make(map[string]float64)
	for _, t := range terms {
		qtf[t]++
	}
	acc := make(map[int]float64)
	for _, t := range sortedTerms(qtf) {
		qf := qtf[t]
		idf := ix.IDF(t)
		if idf == 0 {
			continue
		}
		qw := (1 + math.Log(qf)) * idf
		for _, p := range ix.Postings(t) {
			dw := (1 + math.Log(p.TF)) * idf
			acc[p.Doc] += qw * dw
		}
	}
	for doc := range acc {
		if l := ix.DocLen(doc); l > 0 {
			acc[doc] /= math.Sqrt(l)
		}
	}
	return acc
}

// BM25 is Okapi BM25 with the usual shape parameters.
type BM25 struct {
	// K1 controls term-frequency saturation; 0 means the default 1.2.
	K1 float64
	// B controls length normalization; 0 means the default 0.75.
	B float64
}

// Name implements Scorer.
func (BM25) Name() string { return "bm25" }

// Score implements Scorer.
func (s BM25) Score(ix *Index, terms []string) map[int]float64 {
	k1, b := s.K1, s.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	avg := ix.AvgDocLen()
	if avg == 0 {
		return nil
	}
	qtf := make(map[string]float64)
	for _, t := range terms {
		qtf[t]++
	}
	acc := make(map[int]float64)
	for _, t := range sortedTerms(qtf) {
		idf := ix.IDF(t)
		for _, p := range ix.Postings(t) {
			norm := p.TF * (k1 + 1) / (p.TF + k1*(1-b+b*ix.DocLen(p.Doc)/avg))
			acc[p.Doc] += idf * norm
		}
	}
	return acc
}

// sortedTerms returns the query's distinct terms in sorted order.
// Scoring must accumulate per-document sums in a fixed term order:
// float addition is not associative, so a map-order walk would make
// scores differ between runs — and between the sharded and unsharded
// search paths, which must agree bitwise.
func sortedTerms(qtf map[string]float64) []string {
	terms := make([]string, 0, len(qtf))
	for t := range qtf {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Search scores the query with the scorer and returns the top k hits,
// highest score first, ties broken by document name for determinism.
// k <= 0 returns all hits.
func Search(ix *Index, scorer Scorer, query string, k int) []Hit {
	terms := Tokenize(query)
	scores := scorer.Score(ix, terms)
	hits := make([]Hit, 0, len(scores))
	for doc, sc := range scores {
		hits = append(hits, Hit{Doc: doc, Name: ix.Name(doc), Score: sc})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Name < hits[j].Name
	})
}

// TopK keeps the k best (score, name) pairs seen so far using a bounded
// min-heap; useful when scoring streams of candidates without
// materializing all scores.
type TopK struct {
	k    int
	heap hitHeap
}

// NewTopK returns an accumulator for the k best hits.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Offer considers one hit.
func (t *TopK) Offer(h Hit) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, h)
		return
	}
	if less(t.heap[0], h) {
		t.heap[0] = h
		heap.Fix(&t.heap, 0)
	}
}

// Hits returns the accumulated hits, best first.
func (t *TopK) Hits() []Hit {
	out := append([]Hit(nil), t.heap...)
	sortHits(out)
	return out
}

// less orders hits worst-first for the min-heap: lower score is "less",
// with reverse-name tiebreak mirroring sortHits.
func less(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Name > b.Name
}

type hitHeap []Hit

func (h hitHeap) Len() int            { return len(h) }
func (h hitHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h hitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x interface{}) { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
