package ir

import (
	"math"
	"sort"
)

// Hit is one ranked retrieval result.
type Hit struct {
	Doc   int
	Name  string
	Score float64
}

// Scorer ranks documents for a tokenized query. Implementations must be
// deterministic.
type Scorer interface {
	// Score returns per-candidate scores for the query terms. Documents
	// not containing any query term are absent.
	Score(ix *Index, terms []string) map[int]float64
	// Name identifies the scorer in reports.
	Name() string
}

// Exhaustive wraps a scorer and disables top-k pruning: Search and
// ShardedIndex.Search always take the exhaustive score-everything path.
// It is the debugging/parity oracle — pruned retrieval is required to be
// result-identical (same docs, same float bits, same tie-break order) to
// the same scorer wrapped in Exhaustive, and the parity test suites
// assert exactly that.
type Exhaustive struct{ S Scorer }

// Name implements Scorer, reporting the wrapped scorer's name (the
// wrapper changes the retrieval algorithm, never the ranking function).
func (e Exhaustive) Name() string { return e.S.Name() }

// Score implements Scorer.
func (e Exhaustive) Score(ix *Index, terms []string) map[int]float64 { return e.S.Score(ix, terms) }

// Prunable reports whether the scorer supports pruned top-k retrieval
// (wrapping in Exhaustive makes any scorer non-prunable).
func Prunable(s Scorer) bool {
	_, ok := s.(prunedScorer)
	return ok
}

// TFIDF is lnc-style cosine scoring: document weight (1+ln tf)·idf,
// normalized by document vector length.
type TFIDF struct{}

// Name implements Scorer.
func (TFIDF) Name() string { return "tfidf" }

// Score implements Scorer.
func (TFIDF) Score(ix *Index, terms []string) map[int]float64 {
	qtf := make(map[string]float64)
	for _, t := range terms {
		qtf[t]++
	}
	acc := make(map[int]float64)
	for _, t := range sortedTerms(qtf) {
		qf := qtf[t]
		idf := ix.IDF(t)
		if idf == 0 {
			continue
		}
		qw := (1 + math.Log(qf)) * idf
		for c := newCursor(ix, ix.postings[t]); !c.done; c.next() {
			dw := (1 + math.Log(c.tf)) * idf
			acc[c.doc] += qw * dw
		}
	}
	for doc := range acc {
		if l := ix.DocLen(doc); l > 0 {
			acc[doc] /= math.Sqrt(l)
		}
	}
	return acc
}

// BM25 is Okapi BM25 with the usual shape parameters.
type BM25 struct {
	// K1 controls term-frequency saturation; 0 means the default 1.2.
	K1 float64
	// B controls length normalization; 0 means the default 0.75.
	B float64
}

// Name implements Scorer.
func (BM25) Name() string { return "bm25" }

// Score implements Scorer.
func (s BM25) Score(ix *Index, terms []string) map[int]float64 {
	k1, b := s.params()
	avg := ix.AvgDocLen()
	if avg == 0 {
		return nil
	}
	qtf := make(map[string]float64)
	for _, t := range terms {
		qtf[t]++
	}
	acc := make(map[int]float64)
	for _, t := range sortedTerms(qtf) {
		idf := ix.IDF(t)
		for c := newCursor(ix, ix.postings[t]); !c.done; c.next() {
			norm := c.tf * (k1 + 1) / (c.tf + k1*(1-b+b*ix.DocLen(c.doc)/avg))
			acc[c.doc] += idf * norm
		}
	}
	return acc
}

// params applies the zero-value defaults.
func (s BM25) params() (k1, b float64) {
	k1, b = s.K1, s.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	return k1, b
}

// sortedTerms returns the query's distinct terms in sorted order.
// Scoring must accumulate per-document sums in a fixed term order:
// float addition is not associative, so a map-order walk would make
// scores differ between runs — and between the sharded and unsharded
// search paths, which must agree bitwise. The pruned top-k scorer
// accumulates each document's contributions in this same sorted order,
// which is what makes it bitwise identical to the exhaustive path.
func sortedTerms(qtf map[string]float64) []string {
	terms := make([]string, 0, len(qtf))
	for t := range qtf {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Search scores the query with the scorer and returns the top k hits,
// highest score first, ties broken by document name for determinism.
// k <= 0 returns all hits.
//
// For k > 0 with a prunable scorer (the stock BM25 and TFIDF, not
// wrapped in Exhaustive), retrieval takes the MaxScore pruned path over
// the compressed posting lists; the result is guaranteed — and
// parity-tested — to be identical to the exhaustive path, float bits
// included.
func Search(ix *Index, scorer Scorer, query string, k int) []Hit {
	terms := Tokenize(query)
	if k > 0 {
		if ps, ok := scorer.(prunedScorer); ok {
			sc := getScratch()
			if plan, ok := ps.plan(ix, terms, sc); ok {
				hits := scoreTopKPruned(ix, plan, k, sc)
				putScratch(sc)
				return hits
			}
			putScratch(sc)
		}
	}
	scores := scorer.Score(ix, terms)
	hits := make([]Hit, 0, len(scores))
	for doc, sc := range scores {
		hits = append(hits, Hit{Doc: doc, Name: ix.Name(doc), Score: sc})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Name < hits[j].Name
	})
}

// TopK keeps the k best (score, name) pairs seen so far using a bounded
// min-heap; useful when scoring streams of candidates without
// materializing all scores. It is a thin Hit-shaped view over the
// pruned driver's finalTopK accumulator, so the two can never drift in
// ordering semantics.
type TopK struct {
	inner finalTopK
}

// NewTopK returns an accumulator for the k best hits.
func NewTopK(k int) *TopK { return &TopK{inner: finalTopK{k: k}} }

// Offer considers one hit.
func (t *TopK) Offer(h Hit) {
	t.inner.offer(FinalHit{Doc: h.Doc, Name: h.Name, Score: h.Score, IRScore: h.Score})
}

// Threshold returns the k-th best score seen so far, and whether the
// accumulator is full. Until it is full every candidate must be scored;
// once full, a candidate whose score upper bound is strictly below the
// threshold can be skipped (a tie could still win on the name
// tie-break, so equality never prunes).
func (t *TopK) Threshold() (float64, bool) { return t.inner.threshold() }

// Hits returns the accumulated hits, best first. It consumes the
// accumulator: the inner heap is sorted in place, so Offer must not be
// called afterwards.
func (t *TopK) Hits() []Hit {
	fh := t.inner.hits()
	out := make([]Hit, len(fh))
	for i, h := range fh {
		out[i] = Hit{Doc: h.Doc, Name: h.Name, Score: h.Score}
	}
	return out
}
