package ir

import "sync"

// searchScratch pools the per-query transient state of the pruned
// retrieval path: the query term-frequency map and sorted-term buffer
// the plan builders fold the query into, the plan-term slice itself,
// the cursor/order/bound buffers of the MaxScore driver, the top-k
// heap backing array, and the named-document score accumulator.
// Without it every search allocated each of these afresh — the
// dominant allocation cost of a k<=10 page — and the duplicate qtf
// construction in the two plan builders doubled the map churn.
//
// A scratch is single-goroutine property: every slice or map handed
// out by a plan or driver aliases it, so callers must copy anything
// that outlives the query (scoreTopKPruned copies into []Hit; the
// boosted shard path holds its scratch until the merge has copied)
// and must not release the scratch before then. A nil *searchScratch
// is accepted everywhere and means "allocate fresh" — the multi-query
// driver uses that, because it keeps every query's plan alive at once.
type searchScratch struct {
	qtf     map[string]float64
	terms   []string
	plans   []planTerm
	cursors []termCursor
	order   []int
	cum     []float64
	suffix  []float64
	heap    []FinalHit
	raw     map[int]float64
}

var scratchPool = sync.Pool{New: func() any {
	return &searchScratch{
		qtf: make(map[string]float64, 8),
		raw: make(map[int]float64, 16),
	}
}}

// getScratch takes a scratch from the pool.
func getScratch() *searchScratch { return scratchPool.Get().(*searchScratch) }

// putScratch returns a scratch to the pool. The caller must have
// copied out everything it still needs — every buffer the scratch
// owns may be overwritten by the next query.
func putScratch(sc *searchScratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// grownInts returns buf resized to length n, reallocating only when
// its capacity is short; a nil buf always allocates.
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// grownF64s is grownInts for float64 buffers.
func grownF64s(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
