package ir

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// ShardedIndex partitions a document collection across N sub-indexes so
// that scoring can run shard-parallel. Documents are assigned round-robin
// in insertion order; collection statistics (document count, document
// frequency, total length) live in one shared accumulator that every
// shard consults, so per-document scores are bitwise identical to what a
// single monolithic Index would produce. Search scores all shards
// concurrently and k-way-merges the per-shard rankings with the same
// (score desc, name asc) order the unsharded path uses.
//
// A ShardedIndex is not safe for concurrent mutation: callers that mix
// Add/Remove with Search (e.g. a live search engine) must serialize
// mutations against searches themselves — any number of goroutines may
// Search concurrently between mutations.
type ShardedIndex struct {
	shards   []*Index
	shared   *sharedStats
	names    []string       // global id -> name ("" = removed slot)
	byName   map[string]int // name -> global id
	shardOf  []int32        // global id -> shard
	localOf  []int32        // global id -> local id within shard
	globalOf [][]int        // shard -> local id -> global id
	terms    []DocTerms     // global id -> analyzed terms, retained so Remove can unwind postings and stats
}

// NewShardedIndex returns an empty index over n shards; n <= 0 means
// runtime.GOMAXPROCS(0). One shard is a valid (degenerate) configuration
// equivalent to a plain Index.
func NewShardedIndex(n int) *ShardedIndex {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &ShardedIndex{
		shards:   make([]*Index, n),
		shared:   &sharedStats{df: make(map[string]int)},
		byName:   make(map[string]int),
		globalOf: make([][]int, n),
	}
	for i := range s.shards {
		s.shards[i] = NewIndex()
		s.shards[i].shared = s.shared
	}
	return s
}

// Add analyzes and indexes a document under a unique name, returning its
// global id. Not safe for concurrent use.
func (s *ShardedIndex) Add(name string, fields ...Field) (int, error) {
	return s.AddAnalyzed(name, AnalyzeFields(fields...))
}

// MustAdd is Add that panics on error.
func (s *ShardedIndex) MustAdd(name string, fields ...Field) int {
	id, err := s.Add(name, fields...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddAnalyzed indexes a pre-analyzed document under a unique name,
// returning its global id. Documents are assigned to shards round-robin
// by global id, so a fixed insertion order yields a fixed layout.
func (s *ShardedIndex) AddAnalyzed(name string, doc DocTerms) (int, error) {
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("ir: document %q already indexed", name)
	}
	id := len(s.names)
	shard := id % len(s.shards)
	local, err := s.shards[shard].AddAnalyzed(name, doc)
	if err != nil {
		return 0, err
	}
	s.recordDoc(id, name, shard, local, doc)
	return id, nil
}

// Remove deletes a document from the index: its postings are unwound
// from its shard and the shared collection statistics (document count,
// document frequency, total length) are decremented, so subsequent
// searches score the collection as if the document were never added —
// up to float rounding in the running total length, which is maintained
// incrementally rather than re-summed. The document's global id slot is
// tombstoned, never reused; its name becomes free for a later Add.
func (s *ShardedIndex) Remove(name string) error {
	id, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("ir: document %q not indexed", name)
	}
	doc := s.terms[id]
	s.shards[s.shardOf[id]].removeLocal(int(s.localOf[id]), doc)
	delete(s.byName, name)
	s.names[id] = ""
	s.terms[id] = DocTerms{}
	s.shared.n--
	s.shared.totalLen -= doc.Length
	for _, tc := range doc.Terms {
		if s.shared.df[tc.Term]--; s.shared.df[tc.Term] == 0 {
			delete(s.shared.df, tc.Term)
		}
	}
	return nil
}

// AddAnalyzedDocOnly indexes a pre-analyzed document like AddAnalyzed
// but skips building its postings — the snapshot fast path: restore
// replays documents through here for names, lengths, and shared
// statistics, then installs the persisted compressed posting lists
// wholesale with ImportPostings.
func (s *ShardedIndex) AddAnalyzedDocOnly(name string, doc DocTerms) (int, error) {
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("ir: document %q already indexed", name)
	}
	id := len(s.names)
	shard := id % len(s.shards)
	local, err := s.shards[shard].addDocOnly(name, doc)
	if err != nil {
		return 0, err
	}
	s.recordDoc(id, name, shard, local, doc)
	return id, nil
}

// recordDoc appends the global bookkeeping for a newly-added document.
func (s *ShardedIndex) recordDoc(id int, name string, shard, local int, doc DocTerms) {
	s.names = append(s.names, name)
	s.byName[name] = id
	s.shardOf = append(s.shardOf, int32(shard))
	s.localOf = append(s.localOf, int32(local))
	s.globalOf[shard] = append(s.globalOf[shard], id)
	s.terms = append(s.terms, doc)
	s.shared.n++
	s.shared.totalLen += doc.Length
	for _, tc := range doc.Terms {
		s.shared.df[tc.Term]++
	}
}

// AddTombstone occupies the next global slot as a removed-document
// placeholder: it counts toward Slots but not Len, owns no name, and
// appears in no posting list. Snapshot restore uses it to reproduce a
// dumped index's exact slot layout (and therefore its exact shard
// assignment and compressed posting blocks).
func (s *ShardedIndex) AddTombstone() {
	id := len(s.names)
	shard := id % len(s.shards)
	local := s.shards[shard].addTombstone()
	s.names = append(s.names, "")
	s.shardOf = append(s.shardOf, int32(shard))
	s.localOf = append(s.localOf, int32(local))
	s.globalOf[shard] = append(s.globalOf[shard], id)
	s.terms = append(s.terms, DocTerms{})
}

// ExportPostings deep-copies one shard's compressed posting lists in
// sorted term order — the persistence form the snapshot layer writes.
func (s *ShardedIndex) ExportPostings(shard int) []TermPostings {
	ix := s.shards[shard]
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	out := make([]TermPostings, len(terms))
	for i, t := range terms {
		out[i] = ix.postings[t].export(t)
	}
	return out
}

// ImportPostings installs restored posting lists into one shard,
// replacing whatever it holds, after structural validation against the
// shard's document slots and tombstones. The caller (snapshot restore)
// must have replayed the documents — via AddAnalyzedDocOnly and
// AddTombstone, in their original slot order — first.
func (s *ShardedIndex) ImportPostings(shard int, lists []TermPostings) error {
	return s.shards[shard].importPostings(lists)
}

// ImportPostingsTrusted installs posting lists whose block slices may
// alias a memory-mapped snapshot region. Only shape validation is
// performed — no per-document decoding — so restore cost is O(terms),
// not O(corpus). The caller vouches for the content (the snapshot
// layer's checksums do), and must anchor the mapping's lifetime with
// Retain before the index serves searches.
func (s *ShardedIndex) ImportPostingsTrusted(shard int, lists []TermPostings) error {
	return s.shards[shard].importPostingsTrusted(lists)
}

// Retain anchors owner (typically a snapshot mapping) to every shard:
// as long as any shard — or any plan, cursor, or compaction input that
// references one — is reachable, owner is too, so the mapped bytes the
// posting blocks alias cannot be unmapped under a search. Compaction
// builds fresh heap-backed shards, so the anchor naturally drops with
// the pre-compaction epoch.
func (s *ShardedIndex) Retain(owner any) {
	for _, shard := range s.shards {
		shard.retain = owner
	}
}

// NumShards returns the number of shards.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// Len returns the number of live (non-removed) documents.
func (s *ShardedIndex) Len() int { return s.shared.n }

// Slots returns the size of the global id space, including tombstoned
// slots of removed documents. Iterating ids in [0, Slots) and skipping
// empty Name(id) walks the live documents in insertion order — the
// order a snapshot must preserve to rebuild an identical index.
func (s *ShardedIndex) Slots() int { return len(s.names) }

// Terms returns the analyzed form of a global document id as it was
// indexed (zero value for removed slots). The returned DocTerms shares
// its slice with the index; callers must not mutate it.
func (s *ShardedIndex) Terms(id int) DocTerms {
	if id < 0 || id >= len(s.terms) {
		return DocTerms{}
	}
	return s.terms[id]
}

// TotalLen returns the running total weighted document length of the
// collection — the numerator of AvgDocLen.
func (s *ShardedIndex) TotalLen() float64 { return s.shared.totalLen }

// ForceTotalLen overwrites the running total document length. Snapshot
// restore uses it to reproduce an engine's collection statistics
// bit-for-bit: after removals the running total is an incremental sum
// whose float rounding a fresh re-add sequence would not reproduce.
func (s *ShardedIndex) ForceTotalLen(total float64) { s.shared.totalLen = total }

// Name returns the external name of a global document id.
func (s *ShardedIndex) Name(id int) string {
	if id < 0 || id >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// ID returns the global id for a document name.
func (s *ShardedIndex) ID(name string) (int, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// DocLen returns the weighted length of a global document id.
func (s *ShardedIndex) DocLen(id int) float64 {
	if id < 0 || id >= len(s.names) {
		return 0
	}
	return s.shards[s.shardOf[id]].DocLen(int(s.localOf[id]))
}

// AvgDocLen returns the mean weighted document length.
func (s *ShardedIndex) AvgDocLen() float64 {
	if s.shared.n == 0 {
		return 0
	}
	return s.shared.totalLen / float64(s.shared.n)
}

// DocFreq returns the number of documents containing the term.
func (s *ShardedIndex) DocFreq(term string) int { return s.shared.df[term] }

// VocabularySize returns the number of distinct terms.
func (s *ShardedIndex) VocabularySize() int { return len(s.shared.df) }

// Search scores the query against every shard concurrently and merges
// the shard rankings into the global top k (k <= 0 means all hits). Hit
// ordering is score desc, name asc — exactly the unsharded Search order —
// and Hit.Doc carries the global document id.
//
// For k > 0 with a prunable scorer (stock BM25/TFIDF, not wrapped in
// ir.Exhaustive), each shard retrieves its top k with MaxScore pruning
// over the compressed posting lists; the per-shard result is identical
// to exhaustive scoring, so the merged ranking is too.
func (s *ShardedIndex) Search(scorer Scorer, query string, k int) []Hit {
	return s.SearchSet(scorer, query, k, ShardSet{})
}

// SearchSet is Search restricted to the shards the set selects: only
// those shards are scored and merged, so the result is the ranking over
// their documents alone — with scores identical to the full search,
// because collection statistics are shared across all shards. The zero
// set scores everything (== Search).
func (s *ShardedIndex) SearchSet(scorer Scorer, query string, k int, set ShardSet) []Hit {
	terms := Tokenize(query)
	if len(s.shards) == 1 {
		if !set.Contains(0) {
			return nil
		}
		// One shard means no parallelism to exploit: score inline and
		// skip the goroutine and merge machinery — this is exactly the
		// sequential path.
		return s.shardHits(0, scorer, terms, k)
	}
	perShard := make([][]Hit, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if !set.Contains(i) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			perShard[i] = s.shardHits(i, scorer, terms, k)
		}(i)
	}
	wg.Wait()
	return mergeHits(perShard, k)
}

// shardHits retrieves one shard's ranked hits (pruned when possible,
// exhaustive otherwise), with global document ids, sorted, truncated to
// k when k > 0. The global top k is contained in the union of per-shard
// top k's, so per-shard truncation is lossless for the merge.
func (s *ShardedIndex) shardHits(i int, scorer Scorer, terms []string, k int) []Hit {
	shard := s.shards[i]
	if k > 0 {
		if ps, ok := scorer.(prunedScorer); ok {
			sc := getScratch()
			if plan, ok := ps.plan(shard, terms, sc); ok {
				hits := scoreTopKPruned(shard, plan, k, sc)
				putScratch(sc)
				for j := range hits {
					hits[j].Doc = s.globalOf[i][hits[j].Doc]
				}
				return hits
			}
			putScratch(sc)
		}
	}
	scores := scorer.Score(shard, terms)
	hits := make([]Hit, 0, len(scores))
	for local, sc := range scores {
		hits = append(hits, Hit{
			Doc:   s.globalOf[i][local],
			Name:  shard.Name(local),
			Score: sc,
		})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchBoosted retrieves the top k documents ranked by FINAL score:
// each candidate's exact IR score is mapped through booster.Final, with
// booster.Include filtering documents out of retrieval entirely and
// ceil bounding every document's final/IR score ratio (see Booster).
// Shards run concurrently and merge on (final score desc, name asc).
// ok is false when the scorer cannot build a pruning plan (caller falls
// back to exhaustive scoring); k must be positive.
func (s *ShardedIndex) SearchBoosted(scorer Scorer, query string, k int, booster Booster, ceil float64) ([]FinalHit, bool) {
	return s.SearchBoostedSet(scorer, query, k, booster, ceil, ShardSet{})
}

// SearchBoostedSet is SearchBoosted restricted to the shards the set
// selects. Per-document final scores are identical to the full call
// (shared statistics again), so a coordinator merging per-subset pages
// under the same order reconstructs the full page exactly.
func (s *ShardedIndex) SearchBoostedSet(scorer Scorer, query string, k int, booster Booster, ceil float64, set ShardSet) ([]FinalHit, bool) {
	ps, prunable := scorer.(prunedScorer)
	if !prunable || k <= 0 {
		return nil, false
	}
	terms := Tokenize(query)
	perShard := make([][]FinalHit, len(s.shards))
	planFailed := make([]bool, len(s.shards))
	// Each shard's hits alias its goroutine's scratch (the driver's heap
	// buffer), so the scratches are held until the merge below has
	// copied the hits out, then released together.
	scratches := make([]*searchScratch, len(s.shards))
	run := func(i int) {
		sc := getScratch()
		scratches[i] = sc
		shard := s.shards[i]
		plan, ok := ps.plan(shard, terms, sc)
		if !ok {
			planFailed[i] = true
			return
		}
		hits := scoreTopKBoosted(shard, plan, k, booster, ceil, sc)
		for j := range hits {
			hits[j].Doc = s.globalOf[i][hits[j].Doc]
		}
		perShard[i] = hits
	}
	release := func() {
		for _, sc := range scratches {
			putScratch(sc)
		}
	}
	var selected []int
	for i := range s.shards {
		if set.Contains(i) {
			selected = append(selected, i)
		}
	}
	if len(selected) == 1 {
		run(selected[0])
	} else {
		var wg sync.WaitGroup
		for _, i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	for _, failed := range planFailed {
		if failed {
			release()
			return nil, false
		}
	}
	merged := mergeFinalHits(perShard, k)
	release()
	return merged, true
}

// mergeFinalHits merges sorted per-shard FinalHit lists on the (score
// desc, name asc) order, truncated to k. Lists are tiny (each at most
// k), so repeated selection beats heap bookkeeping. k may far exceed
// the hit count (a deep-offset request), so the preallocation is
// capped at the total.
func mergeFinalHits(lists [][]FinalHit, k int) []FinalHit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k > total {
		k = total
	}
	pos := make([]int, len(lists))
	out := make([]FinalHit, 0, k)
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if pos[i] < len(l) && (best == -1 || finalLess(lists[best][pos[best]], l[pos[i]])) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}

// ScoreNamed computes the exact IR scores of the named documents for
// the query terms — bitwise identical to the corresponding entries of
// an exhaustive Scorer.Score pass, at the cost of a few cursor seeks
// instead of a full index scan. Names that are not indexed, or contain
// no query term, map to absent entries (exactly the documents the
// exhaustive scorer would omit). ok is false when the scorer cannot
// build a pruning plan on some shard; callers then fall back to
// exhaustive scoring.
func (s *ShardedIndex) ScoreNamed(scorer Scorer, terms []string, names []string) (map[string]float64, bool) {
	return s.ScoreNamedSet(scorer, terms, names, ShardSet{})
}

// ScoreNamedSet is ScoreNamed restricted to the shards the set selects:
// named documents living on excluded shards are simply absent from the
// result map, exactly as if they contained no query term. Scores for
// the documents that are scored are identical to the full call.
func (s *ShardedIndex) ScoreNamedSet(scorer Scorer, terms []string, names []string, set ShardSet) (map[string]float64, bool) {
	ps, prunable := scorer.(prunedScorer)
	if !prunable {
		return nil, false
	}
	perShard := make([][]int, len(s.shards))
	for _, name := range names {
		id, exists := s.byName[name]
		if !exists {
			continue
		}
		sh := s.shardOf[id]
		if !set.Contains(int(sh)) {
			continue
		}
		perShard[sh] = append(perShard[sh], int(s.localOf[id]))
	}
	out := make(map[string]float64, len(names))
	// The shard loop is sequential, so one scratch serves every shard in
	// turn; scoreDocsPlanned's result aliases it, but the copy into out
	// below finishes before the next iteration reuses the buffers.
	sc := getScratch()
	for i, locals := range perShard {
		if len(locals) == 0 {
			continue
		}
		shard := s.shards[i]
		plan, ok := ps.plan(shard, terms, sc)
		if !ok {
			putScratch(sc)
			return nil, false
		}
		sort.Ints(locals)
		uniq := locals[:1]
		for _, l := range locals[1:] {
			if l != uniq[len(uniq)-1] {
				uniq = append(uniq, l)
			}
		}
		for local, score := range scoreDocsPlanned(shard, plan, uniq, sc) {
			out[shard.names[local]] = score
		}
	}
	putScratch(sc)
	return out, true
}

// CountCandidates returns the number of live documents containing at
// least one of the query terms and passing the allow filter (nil allows
// everything) — exactly the candidate set the exhaustive scorer would
// score and a pruned search may legitimately never visit. It walks doc
// ids only (no score math, no ranking), so callers can report exact
// totals next to pruned top-k pages.
func (s *ShardedIndex) CountCandidates(terms []string, allow func(name string) bool) int {
	return s.CountCandidatesSet(terms, allow, ShardSet{})
}

// CountCandidatesSet is CountCandidates restricted to the shards the
// set selects. Subsets of one Count-way division are disjoint and cover
// the index, so the per-subset counts sum to the global count.
func (s *ShardedIndex) CountCandidatesSet(terms []string, allow func(name string) bool, set ShardSet) int {
	distinct := make(map[string]bool, len(terms))
	for _, t := range terms {
		distinct[t] = true
	}
	n := 0
	for si, shard := range s.shards {
		if !set.Contains(si) {
			continue
		}
		var seen []bool
		for t := range distinct {
			pl := shard.postings[t]
			if pl == nil {
				continue
			}
			if seen == nil {
				seen = make([]bool, shard.LocalLen())
			}
			for c := newCursor(shard, pl); !c.done; c.next() {
				seen[c.doc] = true
			}
		}
		for local, hit := range seen {
			if hit && (allow == nil || allow(shard.names[local])) {
				n++
			}
		}
	}
	return n
}

// mergeHits k-way-merges sorted per-shard hit lists, preserving the
// (score desc, name asc) order, and truncates to k when k > 0.
func mergeHits(lists [][]Hit, k int) []Hit {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	if k <= 0 || k > total {
		k = total
	}
	h := make(mergeHeap, 0, len(lists))
	for i, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeCursor{list: i, hit: l[0]})
		}
	}
	heap.Init(&h)
	out := make([]Hit, 0, k)
	pos := make([]int, len(lists))
	for len(out) < k && h.Len() > 0 {
		top := h[0]
		out = append(out, top.hit)
		pos[top.list]++
		if next := pos[top.list]; next < len(lists[top.list]) {
			h[0] = mergeCursor{list: top.list, hit: lists[top.list][next]}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

type mergeCursor struct {
	list int
	hit  Hit
}

// mergeHeap orders cursors best-first: higher score wins, ties broken by
// name asc — the inverse of the TopK min-heap's less.
type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].hit, h[j].hit
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Name < b.Name
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
