package ir

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomCorpus builds the same fixed-seed corpus into both a plain Index
// and a ShardedIndex, returning the pair.
func randomCorpus(t *testing.T, docs, shards int) (*Index, *ShardedIndex) {
	t.Helper()
	vocab := []string{
		"star", "wars", "cast", "movie", "actor", "galaxy", "space",
		"drama", "heist", "ocean", "eleven", "clooney", "george",
		"batman", "joker", "profile", "filmography", "soundtrack",
	}
	rng := rand.New(rand.NewSource(42))
	plain := NewIndex()
	sharded := NewShardedIndex(shards)
	for i := 0; i < docs; i++ {
		var label, body string
		for w := 0; w < 2; w++ {
			label += vocab[rng.Intn(len(vocab))] + " "
		}
		n := 3 + rng.Intn(12)
		for w := 0; w < n; w++ {
			body += vocab[rng.Intn(len(vocab))] + " "
		}
		name := fmt.Sprintf("doc-%03d %s", i, label)
		fields := []Field{{Text: label, Weight: 3}, {Text: body}}
		plain.MustAdd(name, fields...)
		sharded.MustAdd(name, fields...)
	}
	return plain, sharded
}

var parityQueries = []string{
	"star wars cast",
	"george clooney",
	"ocean eleven heist",
	"batman",
	"soundtrack",
	"galaxy space drama movie",
	"no such words anywhere",
	"",
}

// TestShardedParity is the core guarantee: the sharded, parallel search
// path returns byte-identical hits (names, scores, order, doc ids) to
// the sequential unsharded path, for every scorer, every k, and several
// shard counts.
func TestShardedParity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for _, scorer := range []Scorer{BM25{}, BM25{B: 0.3}, TFIDF{}} {
			plain, sharded := randomCorpus(t, 100, shards)
			for _, q := range parityQueries {
				for _, k := range []int{0, 1, 3, 10, 1000} {
					want := Search(plain, scorer, q, k)
					got := sharded.Search(scorer, q, k)
					if len(got) != len(want) {
						t.Fatalf("shards=%d scorer=%s q=%q k=%d: %d hits, want %d",
							shards, scorer.Name(), q, k, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("shards=%d scorer=%s q=%q k=%d hit %d:\n got %+v\nwant %+v",
								shards, scorer.Name(), q, k, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestShardedStatsParity checks the shared collection statistics agree
// exactly with the monolithic index's.
func TestShardedStatsParity(t *testing.T) {
	plain, sharded := randomCorpus(t, 80, 4)
	if plain.Len() != sharded.Len() {
		t.Fatalf("Len: %d vs %d", plain.Len(), sharded.Len())
	}
	if plain.AvgDocLen() != sharded.AvgDocLen() {
		t.Fatalf("AvgDocLen: %v vs %v", plain.AvgDocLen(), sharded.AvgDocLen())
	}
	if plain.VocabularySize() != sharded.VocabularySize() {
		t.Fatalf("VocabularySize: %d vs %d", plain.VocabularySize(), sharded.VocabularySize())
	}
	for _, term := range []string{"star", "cast", "joker", "absent"} {
		if plain.DocFreq(term) != sharded.DocFreq(term) {
			t.Fatalf("DocFreq(%q): %d vs %d", term, plain.DocFreq(term), sharded.DocFreq(term))
		}
		if plain.IDF(term) != sharded.shards[0].IDF(term) {
			t.Fatalf("IDF(%q): %v vs %v", term, plain.IDF(term), sharded.shards[0].IDF(term))
		}
	}
	for id := 0; id < plain.Len(); id++ {
		if plain.Name(id) != sharded.Name(id) {
			t.Fatalf("Name(%d): %q vs %q", id, plain.Name(id), sharded.Name(id))
		}
		if plain.DocLen(id) != sharded.DocLen(id) {
			t.Fatalf("DocLen(%d): %v vs %v", id, plain.DocLen(id), sharded.DocLen(id))
		}
	}
	name := plain.Name(17)
	pid, _ := plain.ID(name)
	sid, ok := sharded.ID(name)
	if !ok || pid != sid {
		t.Fatalf("ID(%q): %d vs %d ok=%v", name, pid, sid, ok)
	}
}

// TestShardedTieBreak pins the merged ordering of equal-score hits:
// score desc, then name asc — across shard boundaries.
func TestShardedTieBreak(t *testing.T) {
	sharded := NewShardedIndex(3)
	// Identical content means identical BM25 scores; round-robin
	// placement spreads the ties across all three shards.
	for _, name := range []string{"delta", "alpha", "echo", "charlie", "bravo", "foxtrot"} {
		sharded.MustAdd(name, Field{Text: "same exact words"})
	}
	hits := sharded.Search(BM25{}, "same words", 0)
	if len(hits) != 6 {
		t.Fatalf("got %d hits, want 6", len(hits))
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for i, h := range hits {
		if h.Name != want[i] {
			t.Fatalf("hit %d = %q, want %q (order %v)", i, h.Name, want[i], hits)
		}
		if h.Score != hits[0].Score {
			t.Fatalf("hit %d score %v differs from %v — fixture no longer ties", i, h.Score, hits[0].Score)
		}
	}
	// Truncation respects the same order.
	top2 := sharded.Search(BM25{}, "same words", 2)
	if len(top2) != 2 || top2[0].Name != "alpha" || top2[1].Name != "bravo" {
		t.Fatalf("top2 = %v", top2)
	}
}

// TestShardedDuplicateName mirrors the plain index's duplicate rejection.
func TestShardedDuplicateName(t *testing.T) {
	sharded := NewShardedIndex(2)
	if _, err := sharded.Add("a", Field{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Add("a", Field{Text: "y"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if sharded.Len() != 1 {
		t.Fatalf("Len after rejected duplicate = %d", sharded.Len())
	}
}

// TestShardedConcurrentSearch hammers one immutable ShardedIndex from
// many goroutines; run under -race this proves read-path safety.
func TestShardedConcurrentSearch(t *testing.T) {
	_, sharded := randomCorpus(t, 60, 4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := parityQueries[(g+i)%len(parityQueries)]
				sharded.Search(BM25{B: 0.3}, q, 5)
			}
		}(g)
	}
	wg.Wait()
}

// TestAnalyzeFieldsMatchesAdd ensures the split analyze/merge path is
// the same computation as the original one-shot Add.
func TestAnalyzeFieldsMatchesAdd(t *testing.T) {
	fields := []Field{{Text: "Star Wars", Weight: 3}, {Text: "cast of star wars luke leia"}, {Text: "context", Weight: 0.5}}
	a := NewIndex()
	a.MustAdd("doc", fields...)
	b := NewIndex()
	if _, err := b.AddAnalyzed("doc", AnalyzeFields(fields...)); err != nil {
		t.Fatal(err)
	}
	if a.DocLen(0) != b.DocLen(0) || a.AvgDocLen() != b.AvgDocLen() {
		t.Fatalf("lengths differ: %v/%v vs %v/%v", a.DocLen(0), a.AvgDocLen(), b.DocLen(0), b.AvgDocLen())
	}
	for _, term := range []string{"star", "wars", "cast", "luke", "context"} {
		pa, pb := a.Postings(term), b.Postings(term)
		if len(pa) != len(pb) {
			t.Fatalf("postings(%q) length differ", term)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("postings(%q)[%d]: %+v vs %+v", term, i, pa[i], pb[i])
			}
		}
	}
}
