package ir

import "fmt"

// ShardSet selects the subset of index shards a scoring call visits: of
// a Count-way division, the shards s with s % Count == Index. The zero
// value selects every shard — all full-index entry points delegate to
// their *Set variant with it.
//
// The selector is how a distributed deployment splits scoring work
// without splitting the corpus: every partition node holds the full
// index (so shared collection statistics — and therefore per-document
// scores — are bitwise identical everywhere), but each scores only its
// shard subset. Subsets are disjoint and cover the index, so per-subset
// candidate counts sum to the global count and the global top k is
// contained in the union of per-subset top k's — a coordinator's k-way
// merge reproduces single-node rankings exactly.
type ShardSet struct {
	// Index in [0, Count) identifies this subset.
	Index int
	// Count is the number of subsets; <= 0 means "all shards".
	Count int
}

// All reports whether the set selects every shard.
func (s ShardSet) All() bool { return s.Count <= 0 }

// Contains reports whether the set selects shard i.
func (s ShardSet) Contains(i int) bool {
	return s.Count <= 0 || i%s.Count == s.Index
}

// Validate rejects selectors whose Index falls outside [0, Count); the
// zero (all-shards) value is valid.
func (s ShardSet) Validate() error {
	if s.Count <= 0 {
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("ir: shard set index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}
