// Package ir is a small information-retrieval engine: tokenization, an
// inverted index, TF-IDF and BM25 ranking, and top-k retrieval.
//
// The qunits paradigm's whole point is that once a database is modeled as
// a flat collection of qunit instances, "standard IR techniques" finish
// the job. This package is those standard techniques, built from scratch:
// the qunit search engine, the evidence-page signature miner, and parts of
// the baselines all rank with it.
package ir

import (
	"strings"
	"unicode"
)

// Tokenize lowercases the input, strips apostrophes (so "ocean's" and
// "oceans" unify), and splits on any other non-letter, non-digit run. It
// never removes stopwords — IDF weighting already discounts them, and the
// segmentation layer needs to see every token.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '\'' || r == '’': // apostrophes vanish in place
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

// Normalize returns the canonical single-string form of the input: its
// tokens joined by single spaces. Entity dictionaries and query templates
// compare normalized forms.
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// Stopwords is the closed-class word list used by the query classifier to
// recognize non-content tokens. The inverted index itself keeps
// stopwords; only classification logic consults this set.
var Stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"and": true, "or": true, "for": true, "to": true, "with": true,
	"is": true, "was": true, "by": true, "at": true, "from": true,
}

// ContentTokens tokenizes and removes stopwords; what remains are the
// information-bearing tokens of a query.
func ContentTokens(s string) []string {
	var out []string
	for _, t := range Tokenize(s) {
		if !Stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}
