package ir

import (
	"math"
	"slices"
	"sort"
	"strings"
)

// MaxScore/WAND-style pruned top-k retrieval.
//
// The driver walks posting cursors document-at-a-time. Query terms are
// split by their list-level score upper bound into a "non-essential"
// prefix (cheapest lists first) whose combined bound cannot reach the
// current k-th threshold, and the "essential" rest: only essential
// lists generate candidate documents, so documents appearing solely in
// non-essential lists are skipped without ever being decoded or scored.
// Each surviving candidate is first checked against a refined bound
// built from the per-block max-score metadata of the blocks it falls
// in, then — if still viable — fully scored.
//
// # Parity with the exhaustive scorer
//
// Pruned retrieval must return bit-identical results to the exhaustive
// oracle (same documents, same float64 scores, same tie order). Three
// rules make that hold:
//
//  1. A scored document accumulates its per-term contributions in
//     sorted-term order — exactly the order the exhaustive scorer adds
//     them — with each contribution computed by the same expression, so
//     the float sums agree bit for bit.
//  2. Bounds only ever decide whether to score a document at all, never
//     how; a document is skipped only when its bound is *strictly*
//     below the threshold (an equal score could still enter the top k
//     on the name tie-break).
//  3. Every bound is inflated by pruneSlack before the comparison.
//     Real-arithmetic bounds dominate real contributions by the
//     monotonicity of each scoring expression; the inflation absorbs
//     the few ulps by which floating-point evaluation of bound and
//     contribution expressions can disagree (a handful of rounding
//     steps each, relative error ~2^-50, dwarfed by the 2^-30-scale
//     slack), so the inflated float bound always dominates the float
//     score.
//
// Block metadata may be stale after removals (a tombstoned document's
// TF may still back a block's MaxTF): stale maxima overstate and stale
// minima understate, so bounds stay valid — pruning merely gets a
// little less effective until the list is rebuilt by a snapshot cycle.

// pruneSlack is the multiplicative inflation applied to every pruning
// bound; see the parity notes above.
const pruneSlack = 1 + 1e-9

// inflate pads a (non-negative) bound by pruneSlack.
func inflate(x float64) float64 { return x * pruneSlack }

// minPositiveTFIDFTF is the smallest TF for which the lnc document
// weight (1+ln tf) stays non-negative (just above 1/e). Lists holding a
// smaller TF could contribute negatively, which would invalidate the
// subset-sum bound monotonicity, so such indexes fall back to the
// exhaustive path.
const minPositiveTFIDFTF = 0.36788

// planTerm is one query term's scoring plan: its list-level upper
// bound, its exact contribution function (bitwise identical to the
// exhaustive scorer's expression), and its bound function over block
// metadata.
//
// shared and scale are the contribution factored into a
// query-independent part and a per-(query,term) scalar, so the
// multi-query driver can compute shared(tf, dl) once per posting and
// reuse it across every batch query subscribed to the term. The
// factoring must satisfy scale*shared(tf, dl) == contrib(tf, dl)
// bitwise: either scale == 1.0 (IEEE 1.0*x == x exactly) or
// contrib's own final operation is literally the scale multiply.
type planTerm struct {
	term    string
	ub      float64
	contrib func(tf, dl float64) float64
	bound   func(maxTF, minLen float64) float64
	shared  func(tf, dl float64) float64
	scale   float64
}

// scorePlan is a query's full pruned-scoring plan. terms are in sorted
// term order — the accumulation order parity requires.
type scorePlan struct {
	terms []planTerm
	// finalize maps a document's raw contribution sum and length to its
	// final score (identity for BM25, cosine normalization for TFIDF).
	finalize func(raw, dl float64) float64
	// boundFin is finalize's upper-bound counterpart: applied to an
	// inflated raw bound with the best-case (smallest) document length.
	boundFin func(raw, dl float64) float64
	// rawFinal marks finalize as the identity (rawFinalize), letting
	// hot paths use the raw sum directly — bitwise the same value —
	// without an indirect call per candidate.
	rawFinal bool
	// minDl is a lower bound on any live document's weighted length.
	minDl float64
}

// prunedScorer is implemented by scorers that can build a pruning plan.
// plan returns ok=false when the index or parameters violate the
// assumptions pruning needs (non-negative, monotone contributions);
// callers then fall back to the exhaustive path, which is always valid.
// A non-nil scratch makes the returned plan's buffers alias it (see
// searchScratch for the lifetime rules); nil allocates fresh, which is
// required whenever several plans must be alive at once.
type prunedScorer interface {
	Scorer
	plan(ix *Index, terms []string, sc *searchScratch) (scorePlan, bool)
}

// queryTF folds the raw query terms into a term-frequency map plus the
// sorted distinct-term list plan construction iterates — the one fold
// both plan builders previously duplicated inline. With a scratch, the
// map and term buffer are reused across queries instead of allocated
// per plan.
func queryTF(terms []string, sc *searchScratch) (map[string]float64, []string) {
	var qtf map[string]float64
	var sorted []string
	if sc != nil {
		clear(sc.qtf)
		qtf, sorted = sc.qtf, sc.terms[:0]
	} else {
		qtf = make(map[string]float64, len(terms))
	}
	for _, t := range terms {
		qtf[t]++
	}
	for t := range qtf {
		sorted = append(sorted, t)
	}
	sort.Strings(sorted)
	if sc != nil {
		sc.terms = sorted
	}
	return qtf, sorted
}

// planBuf hands out the scratch's plan-term buffer (or nothing, for the
// allocate-fresh path).
func planBuf(sc *searchScratch) []planTerm {
	if sc == nil {
		return nil
	}
	return sc.plans[:0]
}

// plan implements prunedScorer for BM25.
func (s BM25) plan(ix *Index, terms []string, sc *searchScratch) (scorePlan, bool) {
	k1, b := s.params()
	if !(k1 > 0) || b < 0 || b > 1 {
		// Exotic shape parameters break the monotonicity (in tf up, in
		// dl down) the bounds rely on.
		return scorePlan{}, false
	}
	avg := ix.AvgDocLen()
	if avg == 0 {
		return scorePlan{terms: nil, finalize: rawFinalize, boundFin: rawFinalize, rawFinal: true}, true
	}
	_, sorted := queryTF(terms, sc)
	plan := scorePlan{finalize: rawFinalize, boundFin: rawFinalize, rawFinal: true, minDl: ix.minLiveLen}
	plan.terms = planBuf(sc)
	for _, t := range sorted {
		pl := ix.postings[t]
		if pl == nil {
			continue
		}
		if !(pl.minTF > 0) {
			return scorePlan{}, false
		}
		idf := ix.IDF(t)
		contrib := func(tf, dl float64) float64 {
			norm := tf * (k1 + 1) / (tf + k1*(1-b+b*dl/avg))
			return idf * norm
		}
		// The bound is the contribution expression evaluated at the
		// block's most favorable posting: maximum TF, minimum length.
		// BM25 contributions are query-independent, so the shared part
		// is the whole contribution and the scale is exactly 1.
		pt := planTerm{term: t, contrib: contrib, bound: contrib, shared: contrib, scale: 1}
		pt.ub = pt.bound(pl.maxTF, pl.minLen)
		plan.terms = append(plan.terms, pt)
	}
	if sc != nil {
		sc.plans = plan.terms
	}
	return plan, true
}

// plan implements prunedScorer for TFIDF.
func (TFIDF) plan(ix *Index, terms []string, sc *searchScratch) (scorePlan, bool) {
	qtf, sorted := queryTF(terms, sc)
	plan := scorePlan{
		finalize: cosineFinalize,
		boundFin: cosineFinalize,
		minDl:    ix.minLiveLen,
	}
	plan.terms = planBuf(sc)
	for _, t := range sorted {
		pl := ix.postings[t]
		if pl == nil {
			continue
		}
		if pl.minTF < minPositiveTFIDFTF {
			return scorePlan{}, false
		}
		qf := qtf[t]
		idf := ix.IDF(t)
		if idf == 0 {
			continue
		}
		qw := (1 + math.Log(qf)) * idf
		pt := planTerm{
			term: t,
			contrib: func(tf, dl float64) float64 {
				dw := (1 + math.Log(tf)) * idf
				return qw * dw
			},
			bound: func(maxTF, minLen float64) float64 {
				dw := (1 + math.Log(maxTF)) * idf
				return qw * dw
			},
			// The document weight is query-independent; qw*dw is
			// contrib's own final multiply, so scale*shared is the
			// identical float expression.
			shared: func(tf, dl float64) float64 {
				return (1 + math.Log(tf)) * idf
			},
			scale: qw,
		}
		pt.ub = pt.bound(pl.maxTF, pl.minLen)
		plan.terms = append(plan.terms, pt)
	}
	if sc != nil {
		sc.plans = plan.terms
	}
	return plan, true
}

// rawFinalize is the identity finalizer (BM25 scores need no per-doc
// transform).
func rawFinalize(raw, dl float64) float64 { return raw }

// cosineFinalize is TFIDF's length normalization — the same expression,
// same guard, the exhaustive scorer applies. As a bound transform it is
// valid because sqrt is monotone and dl is a lower bound.
func cosineFinalize(raw, dl float64) float64 {
	if dl > 0 {
		return raw / math.Sqrt(dl)
	}
	return raw
}

// scoreDocsPlanned computes the exact scores of specific documents
// under a plan: terms outer in sorted order, target docs inner
// ascending — the same accumulation order as the exhaustive
// term-at-a-time scorer, so the results are bitwise identical to the
// corresponding entries of Scorer.Score. locals must be sorted
// ascending and deduplicated. Docs containing no plan term are absent
// from the result, exactly as they are absent from Score's map. With a
// scratch, the returned map aliases it and is valid only until release.
func scoreDocsPlanned(ix *Index, plan scorePlan, locals []int, sc *searchScratch) map[int]float64 {
	var raw map[int]float64
	if sc != nil {
		clear(sc.raw)
		raw = sc.raw
	} else {
		raw = make(map[int]float64, len(locals))
	}
	for i := range plan.terms {
		pt := &plan.terms[i]
		c := newCursor(ix, ix.postings[pt.term])
		for _, d := range locals {
			c.seek(d)
			if c.done {
				break
			}
			if c.doc == d {
				raw[d] += pt.contrib(c.tf, ix.docLen[d])
			}
		}
	}
	for d, r := range raw {
		raw[d] = plan.finalize(r, ix.docLen[d])
	}
	return raw
}

// Booster lets a caller fold per-document score multipliers into pruned
// retrieval, so the top k comes out ranked by FINAL score — essential
// when multipliers differ enough that the IR top k and the final top k
// diverge (the qunit engine's type-affinity and utility factors).
type Booster interface {
	// Include reports whether the document participates in retrieval at
	// all (false: filtered out, or handled exactly elsewhere).
	Include(name string) bool
	// Final maps a document's IR score to its final score. It must be
	// monotone non-decreasing in irScore for fixed name, and satisfy
	// Final(name, s) <= s*ceil (the ceiling passed alongside) up to the
	// usual few-ulps float slack, which pruning's inflation absorbs.
	Final(name string, irScore float64) float64
}

// FinalHit is one boosted-retrieval result: the final (boosted) score
// used for ranking plus the raw IR component.
type FinalHit struct {
	Doc     int
	Name    string
	Score   float64 // final score (ranking key, ties broken by Name asc)
	IRScore float64
}

// scoreTopKPruned runs MaxScore retrieval for the plan and returns the
// top k hits sorted best-first — identical to sorting the exhaustive
// scorer's full output and truncating to k. The result is a fresh
// copy, so the caller may release the scratch immediately after.
func scoreTopKPruned(ix *Index, plan scorePlan, k int, sc *searchScratch) []Hit {
	fhits := scoreTopKBoosted(ix, plan, k, nil, 1, sc)
	hits := make([]Hit, len(fhits))
	for i, fh := range fhits {
		hits[i] = Hit{Doc: fh.Doc, Name: fh.Name, Score: fh.Score}
	}
	return hits
}

// termCursor pairs a plan term with its posting cursor — the MaxScore
// driver's per-list state.
type termCursor struct {
	pt  *planTerm
	cur cursor
}

// scoreTopKBoosted is the MaxScore driver. With a nil booster it ranks
// by raw IR score (ceil is ignored as 1); with a booster, candidates
// are filtered by Include, scored exactly, mapped through Final, and
// every pruning bound is stretched by ceil so it dominates any included
// document's final score.
func scoreTopKBoosted(ix *Index, plan scorePlan, k int, booster Booster, ceil float64, sc *searchScratch) []FinalHit {
	// stretch maps an IR-score bound to a final-score bound: identity
	// for plain retrieval, ×ceil (with inflation absorbing the changed
	// association) for boosted retrieval.
	stretch := func(v float64) float64 {
		if booster == nil {
			return v
		}
		return inflate(v * ceil)
	}
	var cursors []termCursor
	if sc != nil {
		cursors = sc.cursors[:0]
	} else {
		cursors = make([]termCursor, 0, len(plan.terms))
	}
	for i := range plan.terms {
		pt := &plan.terms[i]
		c := newCursor(ix, ix.postings[pt.term])
		if !c.done {
			cursors = append(cursors, termCursor{pt: pt, cur: c})
		}
	}
	if sc != nil {
		sc.cursors = cursors
	}
	if len(cursors) == 0 {
		return []FinalHit{}
	}

	// order holds cursor indices sorted by list upper bound ascending
	// (term asc on ties, for determinism); cum[i] is the float prefix
	// sum of bounds over order[0..i].
	var order []int
	var cum, suffix []float64
	if sc != nil {
		order = grownInts(sc.order, len(cursors))
		cum = grownF64s(sc.cum, len(cursors))
		suffix = grownF64s(sc.suffix, len(cursors)+1)
		sc.order, sc.cum, sc.suffix = order, cum, suffix
	} else {
		order = make([]int, len(cursors))
		cum = make([]float64, len(cursors))
		suffix = make([]float64, len(cursors)+1)
	}
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ca, cb := cursors[a], cursors[b]
		if ca.pt.ub != cb.pt.ub {
			if ca.pt.ub < cb.pt.ub {
				return -1
			}
			return 1
		}
		return strings.Compare(ca.pt.term, cb.pt.term)
	})
	for i, oi := range order {
		cum[i] = cursors[oi].pt.ub
		if i > 0 {
			cum[i] += cum[i-1]
		}
	}
	// suffix[i] bounds the total contribution of plan-order terms i..n.
	suffix[len(cursors)] = 0
	for i := len(cursors) - 1; i >= 0; i-- {
		suffix[i] = cursors[i].pt.ub + suffix[i+1]
	}

	topk := finalTopK{k: k}
	if sc != nil {
		topk.h = sc.heap[:0]
	}
	theta := math.Inf(-1)
	full := false
	ness := 0 // cursors order[:ness] are non-essential under theta
	repartition := func() {
		for ness < len(order) && stretch(plan.boundFin(inflate(cum[ness]), plan.minDl)) < theta {
			ness++
		}
	}

	frontier := 0 // candidates are strictly increasing; all docs < frontier are settled
	for {
		// Next candidate: the minimum current doc over essential lists
		// (each first caught up to the frontier — a list promoted from
		// non-essential may lag behind; its skipped docs were provably
		// below the then-smaller threshold).
		cand := -1
		for _, oi := range order[ness:] {
			c := &cursors[oi]
			c.cur.seek(frontier)
			if !c.cur.done && (cand == -1 || c.cur.doc < cand) {
				cand = c.cur.doc
			}
		}
		if cand == -1 {
			break
		}
		frontier = cand + 1
		name := ix.names[cand]
		if booster != nil && !booster.Include(name) {
			continue
		}
		dl := ix.docLen[cand]

		if full {
			// Refined bound from per-block metadata: essential lists
			// positioned exactly on the candidate contribute at most
			// their current block's bound; essential lists already past
			// it contribute nothing; non-essential lists keep their
			// cheap list-level bound.
			refined := 0.0
			if ness > 0 {
				refined = cum[ness-1]
			}
			for _, oi := range order[ness:] {
				c := &cursors[oi]
				if !c.cur.done && c.cur.doc == cand {
					refined += c.pt.bound(c.cur.blockMaxTF(), c.cur.blockMinLen())
				}
			}
			if stretch(plan.boundFin(inflate(refined), dl)) < theta {
				continue
			}
		}

		// Full scoring, in plan (sorted-term) order — the exhaustive
		// accumulation order. Mid-scan, the already-accumulated prefix
		// plus the bound on the remaining suffix can prove the document
		// non-viable and abandon it early.
		raw := 0.0
		viable := true
		for i := range cursors {
			c := &cursors[i]
			c.cur.seek(cand)
			if !c.cur.done && c.cur.doc == cand {
				raw += c.pt.contrib(c.cur.tf, dl)
			}
			if full && stretch(plan.boundFin(inflate(raw+suffix[i+1]), dl)) < theta {
				viable = false
				break
			}
		}
		if !viable {
			continue
		}
		irScore := plan.finalize(raw, dl)
		final := irScore
		if booster != nil {
			final = booster.Final(name, irScore)
		}
		topk.offer(FinalHit{Doc: cand, Name: name, Score: final, IRScore: irScore})
		if th, ok := topk.threshold(); ok && (!full || th != theta) {
			theta, full = th, true
			repartition()
			if ness == len(order) {
				break
			}
		}
	}
	res := topk.hits()
	if sc != nil {
		sc.heap = res
	}
	return res
}

// finalTopK is a bounded min-heap of FinalHit with the (score desc,
// name asc) ranking order — TopK's logic over the boosted hit shape.
type finalTopK struct {
	k int
	h []FinalHit
}

// finalLess orders worst-first: lower score, reverse-name tiebreak.
func finalLess(a, b FinalHit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Name > b.Name
}

func (t *finalTopK) offer(h FinalHit) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, h)
		for i := len(t.h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !finalLess(t.h[i], t.h[parent]) {
				break
			}
			t.h[i], t.h[parent] = t.h[parent], t.h[i]
			i = parent
		}
		return
	}
	if finalLess(t.h[0], h) {
		t.h[0] = h
		t.siftDown(0)
	}
}

func (t *finalTopK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && finalLess(t.h[l], t.h[small]) {
			small = l
		}
		if r < n && finalLess(t.h[r], t.h[small]) {
			small = r
		}
		if small == i {
			return
		}
		t.h[i], t.h[small] = t.h[small], t.h[i]
		i = small
	}
}

func (t *finalTopK) threshold() (float64, bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// hits sorts the heap in place into best-first order and returns the
// backing slice without copying — the allocation the per-query hot
// path used to pay per call. The accumulator is spent afterwards (the
// sort destroys the heap invariant): callers must not offer again, and
// callers that hand the slice across a scratch release must copy first.
func (t *finalTopK) hits() []FinalHit {
	slices.SortFunc(t.h, func(a, b FinalHit) int {
		if finalLess(b, a) {
			return -1
		}
		if finalLess(a, b) {
			return 1
		}
		return 0
	})
	return t.h
}
