package ir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// --- compressed posting-list mechanics --------------------------------------

// TestBlockEncodingRoundTrip appends enough postings to span several
// blocks and checks the cursor walks back exactly what went in, and
// that seek lands on the right postings when skipping whole blocks.
func TestBlockEncodingRoundTrip(t *testing.T) {
	ix := NewIndex()
	pl := &postingList{}
	var docs []int
	var tfs []float64
	d := 0
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3*blockSize+17; i++ {
		d += 1 + r.Intn(9)
		tf := 0.5 + float64(r.Intn(6))
		docs = append(docs, d)
		tfs = append(tfs, tf)
		pl.add(d, tf, 10)
	}
	// The cursor consults docLen for tombstones; mark every id live.
	ix.docLen = make([]float64, d+1)
	for _, doc := range docs {
		ix.docLen[doc] = 10
	}
	i := 0
	for c := newCursor(ix, pl); !c.done; c.next() {
		if c.doc != docs[i] || c.tf != tfs[i] {
			t.Fatalf("posting %d: got (%d,%v), want (%d,%v)", i, c.doc, c.tf, docs[i], tfs[i])
		}
		i++
	}
	if i != len(docs) {
		t.Fatalf("cursor yielded %d postings, want %d", i, len(docs))
	}
	if got := len(pl.blocks); got != (len(docs)+blockSize-1)/blockSize {
		t.Fatalf("block count = %d for %d postings", got, len(docs))
	}
	// Seek to each doc id and to the gaps between them.
	for trial := 0; trial < 200; trial++ {
		target := r.Intn(d + 3)
		want := -1
		for j, doc := range docs {
			if doc >= target {
				want = j
				break
			}
		}
		c := newCursor(ix, pl)
		c.seek(target)
		if want == -1 {
			if !c.done {
				t.Fatalf("seek(%d): got doc %d, want exhausted", target, c.doc)
			}
		} else if c.done || c.doc != docs[want] || c.tf != tfs[want] {
			t.Fatalf("seek(%d): got (%v,%d), want doc %d", target, c.done, c.doc, docs[want])
		}
	}
}

// TestCursorSkipsTombstones tombstones alternating documents and checks
// cursors and Postings never surface them, while block metadata keeps
// its stale (but safe) maxima.
func TestCursorSkipsTombstones(t *testing.T) {
	ix := NewShardedIndex(1)
	for i := 0; i < 2*blockSize; i++ {
		// Even docs carry the highest TF so tombstoning them leaves the
		// block MaxTF stale.
		w := 1.0
		if i%2 == 0 {
			w = 7
		}
		ix.MustAdd(fmt.Sprintf("doc%03d", i), Field{Text: "shared", Weight: w})
	}
	for i := 0; i < 2*blockSize; i += 2 {
		if err := ix.Remove(fmt.Sprintf("doc%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	shard := ix.shards[0]
	pl := shard.postings["shared"]
	if pl.live != blockSize {
		t.Fatalf("live = %d, want %d", pl.live, blockSize)
	}
	for c := newCursor(shard, pl); !c.done; c.next() {
		if c.doc%2 == 0 {
			t.Fatalf("cursor surfaced tombstoned doc %d", c.doc)
		}
		if c.tf != 1 {
			t.Fatalf("doc %d tf = %v", c.doc, c.tf)
		}
	}
	// Stale block metadata: the removed docs' TF 7 still backs MaxTF —
	// an overestimate, which is the safe direction for an upper bound.
	for _, b := range pl.blocks {
		if b.MaxTF != 7 {
			t.Fatalf("block MaxTF = %v, want stale 7", b.MaxTF)
		}
	}
	if got := len(shard.Postings("shared")); got != blockSize {
		t.Fatalf("Postings returned %d entries, want %d", got, blockSize)
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	if _, ok := tk.Threshold(); ok {
		t.Fatal("empty accumulator reported a threshold")
	}
	tk.Offer(Hit{Name: "a", Score: 3})
	if _, ok := tk.Threshold(); ok {
		t.Fatal("non-full accumulator reported a threshold")
	}
	tk.Offer(Hit{Name: "b", Score: 1})
	if th, ok := tk.Threshold(); !ok || th != 1 {
		t.Fatalf("threshold = %v,%v, want 1,true", th, ok)
	}
	tk.Offer(Hit{Name: "c", Score: 2})
	if th, _ := tk.Threshold(); th != 2 {
		t.Fatalf("threshold after eviction = %v, want 2", th)
	}
}

// --- pruned ≡ exhaustive parity ---------------------------------------------

// parityScorers are every stock scorer configuration the engine can run.
var parityScorers = []Scorer{BM25{}, BM25{B: 0.3}, BM25{K1: 0.9, B: 1}, TFIDF{}}

// assertHitsIdentical requires bitwise-equal rankings: same documents,
// same names, same float64 score bits, same order.
func assertHitsIdentical(t *testing.T, label string, pruned, oracle []Hit) {
	t.Helper()
	if len(pruned) != len(oracle) {
		t.Fatalf("%s: %d hits pruned vs %d exhaustive\npruned: %v\noracle: %v", label, len(pruned), len(oracle), pruned, oracle)
	}
	for i := range pruned {
		if pruned[i] != oracle[i] {
			t.Fatalf("%s: hit %d differs\npruned: %+v\noracle: %+v", label, i, pruned[i], oracle[i])
		}
	}
}

// randomCorpusWords builds a small vocabulary with a skewed frequency
// profile so queries mix stop-word-like and rare terms.
func randomCorpusWords() []string {
	words := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		words = append(words, fmt.Sprintf("w%02d", i))
	}
	return words
}

func randomDoc(r *rand.Rand, words []string) []Field {
	n := 1 + r.Intn(25)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		// Skew toward low word ids: w00..w07 behave like stop words.
		w := words[r.Intn(len(words))]
		if r.Intn(2) == 0 {
			w = words[r.Intn(8)]
		}
		sb.WriteString(w)
		sb.WriteByte(' ')
	}
	fields := []Field{{Text: sb.String(), Weight: []float64{1, 2, 3}[r.Intn(3)]}}
	if r.Intn(3) == 0 {
		fields = append(fields, Field{Text: words[r.Intn(len(words))], Weight: 0.5})
	}
	return fields
}

func randomQuery(r *rand.Rand, words []string) string {
	n := 1 + r.Intn(5)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[r.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}

// TestPrunedParityRandom is the core property test: over randomized
// corpora, shard counts, scorers, queries and k values, pruned top-k
// retrieval must be bitwise identical to the exhaustive oracle.
func TestPrunedParityRandom(t *testing.T) {
	words := randomCorpusWords()
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		shards := 1 + r.Intn(3)
		ix := NewShardedIndex(shards)
		nDocs := 5 + r.Intn(300)
		for i := 0; i < nDocs; i++ {
			ix.MustAdd(fmt.Sprintf("doc%04d", i), randomDoc(r, words)...)
		}
		for q := 0; q < 15; q++ {
			query := randomQuery(r, words)
			for _, scorer := range parityScorers {
				for _, k := range []int{1, 2, 3, 10, nDocs / 2, nDocs + 5} {
					if k <= 0 {
						continue
					}
					pruned := ix.Search(scorer, query, k)
					oracle := ix.Search(Exhaustive{S: scorer}, query, k)
					label := fmt.Sprintf("trial %d shards=%d scorer=%s q=%q k=%d", trial, shards, scorer.Name(), query, k)
					assertHitsIdentical(t, label, pruned, oracle)
				}
			}
		}
	}
}

// TestPrunedParityWithMutations interleaves Remove and re-Add with
// queries: tombstoned postings and stale block metadata must never
// change pruned results relative to the oracle.
func TestPrunedParityWithMutations(t *testing.T) {
	words := randomCorpusWords()
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(9000 + trial)))
		ix := NewShardedIndex(1 + r.Intn(3))
		names := make([]string, 0, 200)
		next := 0
		add := func() {
			name := fmt.Sprintf("doc%04d", next)
			next++
			ix.MustAdd(name, randomDoc(r, words)...)
			names = append(names, name)
		}
		for i := 0; i < 60; i++ {
			add()
		}
		for step := 0; step < 40; step++ {
			switch r.Intn(3) {
			case 0: // remove a random live doc
				if len(names) > 1 {
					i := r.Intn(len(names))
					if err := ix.Remove(names[i]); err != nil {
						t.Fatal(err)
					}
					names = append(names[:i], names[i+1:]...)
				}
			default:
				add()
			}
			query := randomQuery(r, words)
			scorer := parityScorers[r.Intn(len(parityScorers))]
			k := 1 + r.Intn(12)
			pruned := ix.Search(scorer, query, k)
			oracle := ix.Search(Exhaustive{S: scorer}, query, k)
			label := fmt.Sprintf("trial %d step %d scorer=%s q=%q k=%d", trial, step, scorer.Name(), query, k)
			assertHitsIdentical(t, label, pruned, oracle)
		}
	}
}

// TestPrunedParityStandaloneIndex covers the unsharded ir.Search entry
// point, including multi-block lists (every doc shares one term).
func TestPrunedParityStandaloneIndex(t *testing.T) {
	words := randomCorpusWords()
	r := rand.New(rand.NewSource(5))
	ix := NewIndex()
	for i := 0; i < 3*blockSize+40; i++ {
		fields := append(randomDoc(r, words), Field{Text: "shared"})
		ix.MustAdd(fmt.Sprintf("doc%04d", i), fields...)
	}
	for q := 0; q < 40; q++ {
		query := randomQuery(r, words)
		if r.Intn(2) == 0 {
			query += " shared"
		}
		for _, scorer := range parityScorers {
			k := 1 + r.Intn(15)
			pruned := Search(ix, scorer, query, k)
			oracle := Search(ix, Exhaustive{S: scorer}, query, k)
			assertHitsIdentical(t, fmt.Sprintf("scorer=%s q=%q k=%d", scorer.Name(), query, k), pruned, oracle)
		}
	}
}

// TestPrunedFallbackTinyTFs: weights below 1/e make lnc document
// weights negative, which the TFIDF pruning bounds cannot cover — the
// plan must refuse and the search must fall back, still returning
// oracle-identical results.
func TestPrunedFallbackTinyTFs(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 30; i++ {
		ix.MustAdd(fmt.Sprintf("doc%02d", i),
			Field{Text: "alpha beta", Weight: 0.25},
			Field{Text: "gamma"},
		)
	}
	if _, ok := (TFIDF{}).plan(ix, []string{"alpha"}, nil); ok {
		t.Fatal("TFIDF plan accepted a list with tf < 1/e")
	}
	for _, scorer := range parityScorers {
		pruned := Search(ix, scorer, "alpha gamma", 5)
		oracle := Search(ix, Exhaustive{S: scorer}, "alpha gamma", 5)
		assertHitsIdentical(t, scorer.Name(), pruned, oracle)
	}
}

// TestCountCandidates checks the candidate count equals the exhaustive
// scorer's candidate set size, with and without a filter.
func TestCountCandidates(t *testing.T) {
	words := randomCorpusWords()
	r := rand.New(rand.NewSource(11))
	ix := NewShardedIndex(3)
	for i := 0; i < 120; i++ {
		ix.MustAdd(fmt.Sprintf("doc%04d", i), randomDoc(r, words)...)
	}
	for i := 0; i < 120; i += 3 {
		if err := ix.Remove(fmt.Sprintf("doc%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 20; q++ {
		query := randomQuery(r, words)
		terms := Tokenize(query)
		oracle := ix.Search(Exhaustive{S: BM25{}}, query, 0)
		if got := ix.CountCandidates(terms, nil); got != len(oracle) {
			t.Fatalf("q=%q: CountCandidates=%d, oracle candidates=%d", query, got, len(oracle))
		}
		allow := func(name string) bool { return strings.HasSuffix(name, "1") }
		want := 0
		for _, h := range oracle {
			if allow(h.Name) {
				want++
			}
		}
		if got := ix.CountCandidates(terms, allow); got != want {
			t.Fatalf("q=%q filtered: CountCandidates=%d, want %d", query, got, want)
		}
	}
}

// --- package microbench: the tentpole speedup -------------------------------

// benchTopKIndex builds a sharded index with Zipf-ish term frequencies
// large enough for pruning to matter.
func benchTopKIndex(nDocs, shards int) *ShardedIndex {
	words := make([]string, 200)
	for i := range words {
		words[i] = fmt.Sprintf("t%03d", i)
	}
	r := rand.New(rand.NewSource(7))
	ix := NewShardedIndex(shards)
	for i := 0; i < nDocs; i++ {
		var sb strings.Builder
		for j := 0; j < 24; j++ {
			// Zipf-ish: low ids are near-stop-words.
			w := words[r.Intn(len(words))]
			if r.Intn(3) > 0 {
				w = words[r.Intn(12)]
			}
			sb.WriteString(w)
			sb.WriteByte(' ')
		}
		ix.MustAdd(fmt.Sprintf("doc%06d", i), Field{Text: sb.String()})
	}
	return ix
}

func BenchmarkShardedTopK(b *testing.B) {
	ix := benchTopKIndex(20000, 1)
	for _, mode := range []struct {
		name   string
		scorer Scorer
	}{{"pruned", BM25{B: 0.3}}, {"exhaustive", Exhaustive{S: BM25{B: 0.3}}}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Search(mode.scorer, "t001 t005 t150", 10)
			}
		})
	}
}
