package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how load is offered.
type Mode string

const (
	// ModeClosed runs a fixed number of workers, each issuing its next
	// request as soon as the previous one returns — throughput follows
	// from latency. Good for capacity probing.
	ModeClosed Mode = "closed"
	// ModeOpen schedules requests at a fixed arrival rate regardless of
	// completions — the production-faithful mode. Latency is measured
	// from each request's *scheduled* send time, so queueing delay when
	// the server falls behind is charged to the server (no coordinated
	// omission).
	ModeOpen Mode = "open"
)

// Options configures one load run.
type Options struct {
	// Target is the base URL of the qunitsd node, e.g. "http://127.0.0.1:8080".
	Target string
	// Mode is open or closed loop; default closed.
	Mode Mode
	// Concurrency is the worker count (closed loop) or the in-flight cap
	// (open loop). Default 8.
	Concurrency int
	// QPS is the open-loop arrival rate. Default 100.
	QPS float64
	// Duration is the measured window, after warmup. Default 10s.
	Duration time.Duration
	// Warmup is discarded lead-in time: requests *started* before the
	// warmup boundary are issued but not recorded. Default 0.
	Warmup time.Duration
	// K is the page size sent with every search. Default 5.
	K int
	// MutateRate is the probability an operation is a feedback mutation
	// instead of a search. Mutations require a node that accepts them
	// (single mode or the cluster primary). Default 0.
	MutateRate float64
	// Seed drives workload sampling; equal seeds replay identical
	// operation sequences. Default 1.
	Seed int64
	// Timeout bounds each request. Default 10s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = ModeClosed
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.QPS <= 0 {
		o.QPS = 100
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

type driver struct {
	opts   Options
	client *http.Client
	hist   Histogram
	errors atomic.Int64
}

// Run offers the workload to the target per opts and reports what the
// client observed. A context cancellation ends the run early; what was
// measured up to that point is still reported.
func Run(ctx context.Context, w *Workload, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}
	if w == nil || w.Queries() == 0 {
		return nil, fmt.Errorf("loadgen: empty workload")
	}
	d := &driver{opts: opts, client: opts.Client}
	if d.client == nil {
		d.client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Concurrency * 2,
				MaxIdleConnsPerHost: opts.Concurrency * 2,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}

	start := time.Now()
	warmEnd := start.Add(opts.Warmup)
	deadline := warmEnd.Add(opts.Duration)
	switch opts.Mode {
	case ModeOpen:
		d.runOpen(ctx, w, start, warmEnd, deadline)
	default:
		d.runClosed(ctx, w, warmEnd, deadline)
	}
	window := time.Since(warmEnd).Seconds()
	if end := deadline.Sub(warmEnd).Seconds(); window > end {
		window = end
	}

	requests := d.hist.Count() + d.errors.Load()
	rep := &Report{
		Mode:            string(opts.Mode),
		Target:          opts.Target,
		Concurrency:     opts.Concurrency,
		K:               opts.K,
		MutateRate:      opts.MutateRate,
		WarmupSeconds:   opts.Warmup.Seconds(),
		DurationSeconds: window,
		Requests:        requests,
		Errors:          d.errors.Load(),
		Latency:         d.hist.Summarize(),
	}
	if opts.Mode == ModeOpen {
		rep.TargetQPS = opts.QPS
	}
	if requests > 0 {
		rep.ErrorRate = float64(d.errors.Load()) / float64(requests)
	}
	if window > 0 {
		rep.QPS = float64(requests) / window
	}
	return rep, nil
}

// runClosed: Concurrency workers in lockstep with the server.
func (d *driver) runClosed(ctx context.Context, w *Workload, warmEnd, deadline time.Time) {
	var wg sync.WaitGroup
	for i := 0; i < d.opts.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(d.opts.Seed + int64(id)*7919))
			for ctx.Err() == nil {
				t0 := time.Now()
				if !t0.Before(deadline) {
					return
				}
				err := d.do(ctx, w.Next(r, d.opts.MutateRate))
				if t0.Before(warmEnd) {
					continue
				}
				if err != nil {
					d.errors.Add(1)
					continue
				}
				d.hist.Record(time.Since(t0).Microseconds())
			}
		}(i)
	}
	wg.Wait()
}

// runOpen: a scheduler goroutine launches one request per arrival slot.
// The in-flight cap (Concurrency) back-pressures the scheduler when the
// server is saturated; because latency is measured from the scheduled
// time, that backlog shows up in the tail instead of being omitted.
func (d *driver) runOpen(ctx context.Context, w *Workload, start, warmEnd, deadline time.Time) {
	interval := time.Duration(float64(time.Second) / d.opts.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, d.opts.Concurrency)
	r := rand.New(rand.NewSource(d.opts.Seed))
	var wg sync.WaitGroup
	for n := 0; ctx.Err() == nil; n++ {
		scheduled := start.Add(time.Duration(n) * interval)
		if !scheduled.Before(deadline) {
			break
		}
		if wait := time.Until(scheduled); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		op := w.Next(r, d.opts.MutateRate)
		sem <- struct{}{}
		wg.Add(1)
		go func(op Op, scheduled time.Time) {
			defer wg.Done()
			err := d.do(ctx, op)
			lat := time.Since(scheduled)
			<-sem
			if scheduled.Before(warmEnd) {
				return
			}
			if err != nil {
				d.errors.Add(1)
				return
			}
			d.hist.Record(lat.Microseconds())
		}(op, scheduled)
	}
	wg.Wait()
}

// do issues one operation and classifies the outcome; response bodies
// are drained so connections are reused.
func (d *driver) do(ctx context.Context, op Op) error {
	var path string
	var body map[string]any
	switch op.Kind {
	case "feedback":
		path = "/v1/feedback"
		body = map[string]any{"instance_id": op.InstanceID, "positive": op.Positive}
	default:
		path = "/v1/search"
		body = map[string]any{"query": op.Query, "k": d.opts.K}
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.opts.Target+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive; status is the signal
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}
