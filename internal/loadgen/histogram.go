// Package loadgen is the traffic half of the scale story: it replays
// zipfian query-log workloads against a running qunitsd over HTTP in
// open-loop (target QPS) and closed-loop (fixed concurrency) modes and
// digests the observed latencies into an HDR-style histogram. The
// histogram is shared with internal/server, which records per-endpoint
// service times into the same structure for GET /stats.
package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram covers [0, 2^63) with power-of-two major buckets split
// into 16 linear sub-buckets — the classic HDR layout. Relative quantile
// error is bounded by 1/16 ≈ 6%, constant memory, and recording is two
// atomic adds, so concurrent workers and request handlers share one
// histogram without locks.
const (
	subBits    = 4
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits) * subBuckets
)

// Histogram is a fixed-size, lock-free latency histogram. The zero value
// is ready to use. Units are the caller's choice; everything in this
// repo records microseconds.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the exact mean of the recorded observations.
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Max returns the exact maximum recorded observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) with
// at most one sub-bucket (~6%) of relative error. Concurrent Records
// move the answer, as with any live histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			v := bucketMax(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// Summary is a point-in-time digest of a histogram, in the unit the
// caller recorded (microseconds throughout this repo). It is the shape
// BENCH_LOAD.json and GET /stats carry.
type Summary struct {
	Count int64 `json:"count"`
	Mean  int64 `json:"mean_us"`
	P50   int64 `json:"p50_us"`
	P95   int64 `json:"p95_us"`
	P99   int64 `json:"p99_us"`
	P999  int64 `json:"p999_us"`
	Max   int64 `json:"max_us"`
}

// Summarize digests the histogram's current state.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// bucketIndex maps a value to its bucket: values below subBuckets map
// exactly, larger values go to (major = bit length, sub = next subBits
// bits), which lines up continuously with the exact region.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	m := bits.Len64(uint64(v))
	shift := uint(m - subBits - 1)
	sub := int((uint64(v) >> shift) & (subBuckets - 1))
	return (m-subBits)*subBuckets + sub
}

// bucketMax returns the largest value a bucket can hold — the
// conservative end, so reported quantiles never understate.
func bucketMax(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	g := idx / subBuckets
	sub := idx % subBuckets
	return int64(subBuckets+sub+1)<<uint(g-1) - 1
}
