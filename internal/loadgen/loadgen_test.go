package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"qunits/internal/imdb"
	"qunits/internal/querylog"
)

func TestHistogramExactBelowSubBuckets(t *testing.T) {
	var h Histogram
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	if got := h.Quantile(1); got != subBuckets-1 {
		t.Fatalf("max quantile = %d, want %d", got, subBuckets-1)
	}
	if h.Count() != subBuckets {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(1))
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like latencies.
		v := int64(1 << uint(r.Intn(20)))
		v += r.Int63n(v)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		rank := int(q*float64(len(vals))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := vals[rank]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q%.3f = %d below exact %d: quantiles must not understate", q, got, exact)
		}
		if float64(got) > float64(exact)*1.072+1 {
			t.Errorf("q%.3f = %d exceeds exact %d by more than a sub-bucket", q, got, exact)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Errorf("max %d != exact %d", h.Max(), vals[len(vals)-1])
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				h.Record(r.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d, want 80000", h.Count())
	}
	if h.Quantile(0.5) <= 0 || h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatal("quantiles not monotone")
	}
}

func testWorkload(t *testing.T) (*Workload, *imdb.Universe) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 300, Movies: 150})
	return ForUniverse(u, 7, 3000), u
}

func TestWorkloadReplayIsZipfianAndDeterministic(t *testing.T) {
	w, _ := testWorkload(t)
	if w.Queries() == 0 {
		t.Fatal("empty workload")
	}
	counts := map[string]int{}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		op := w.Next(r, 0)
		if op.Kind != "search" {
			t.Fatalf("mutate op at rate 0: %+v", op)
		}
		counts[op.Query]++
	}
	// The head of the log must dominate any tail query.
	head := counts[w.queries[0]]
	tail := counts[w.queries[len(w.queries)-1]]
	if head <= tail {
		t.Errorf("replay not skewed: head %d, tail %d", head, tail)
	}
	// Identical seeds replay identical op sequences.
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		if a, b := w.Next(r1, 0.1), w.Next(r2, 0.1); a != b {
			t.Fatalf("replay diverges at op %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestWorkloadMutateMix(t *testing.T) {
	w, _ := testWorkload(t)
	r := rand.New(rand.NewSource(6))
	muts := 0
	for i := 0; i < 10000; i++ {
		op := w.Next(r, 0.2)
		if op.Kind == "feedback" {
			muts++
			if op.InstanceID == "" {
				t.Fatal("feedback op without instance id")
			}
		}
	}
	if muts < 1500 || muts > 2500 {
		t.Fatalf("mutate fraction %d/10000 far from 0.2", muts)
	}
}

// fakeQunitsd answers /v1/search and /v1/feedback like a healthy node.
func fakeQunitsd(t *testing.T, delay time.Duration, failEvery int) *httptest.Server {
	t.Helper()
	var n int64
	var mu sync.Mutex
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		mu.Lock()
		n++
		fail := failEvery > 0 && n%int64(failEvery) == 0
		mu.Unlock()
		if fail {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var body map[string]any
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("bad body: %v", err)
		}
		switch r.URL.Path {
		case "/v1/search", "/v1/feedback":
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"results":[]}`)) //nolint:errcheck
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
}

func TestRunClosedLoop(t *testing.T) {
	srv := fakeQunitsd(t, 0, 0)
	defer srv.Close()
	w, _ := testWorkload(t)
	rep, err := Run(context.Background(), w, Options{
		Target: srv.URL, Mode: ModeClosed, Concurrency: 4,
		Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond,
		MutateRate: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.QPS <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode = %q", rep.Mode)
	}
}

func TestRunOpenLoopHoldsRate(t *testing.T) {
	srv := fakeQunitsd(t, 0, 0)
	defer srv.Close()
	w, _ := testWorkload(t)
	rep, err := Run(context.Background(), w, Options{
		Target: srv.URL, Mode: ModeOpen, QPS: 300, Concurrency: 64,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TargetQPS != 300 {
		t.Fatalf("target qps %v", rep.TargetQPS)
	}
	// Against an instant server the achieved rate should be close to the
	// offered rate (generous bounds: CI machines stall).
	if rep.QPS < 150 || rep.QPS > 450 {
		t.Errorf("achieved %.0f qps against an offered 300", rep.QPS)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
}

func TestRunCountsErrors(t *testing.T) {
	srv := fakeQunitsd(t, 0, 3) // every 3rd request fails
	defer srv.Close()
	w, _ := testWorkload(t)
	rep, err := Run(context.Background(), w, Options{
		Target: srv.URL, Mode: ModeClosed, Concurrency: 2,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("no errors recorded against a failing server")
	}
	if rep.ErrorRate < 0.15 || rep.ErrorRate > 0.5 {
		t.Errorf("error rate %.2f far from 1/3", rep.ErrorRate)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	doc := &Document{
		Corpus: &CorpusInfo{Seed: 1, Persons: 10, Movies: 5, Queries: 100},
		Runs: []*Report{{
			Mode: "closed", Target: "http://x", Concurrency: 4, K: 5,
			DurationSeconds: 1, Requests: 100, QPS: 100,
			Latency: Summary{Count: 100, P50: 10, P99: 20, Max: 30},
		}},
	}
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Latency.P99 != 20 || got.Corpus.Queries != 100 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	if got.Runs[0].Text() == "" {
		t.Fatal("empty text rendering")
	}
}

func TestWorkloadFromLogDirect(t *testing.T) {
	l := &querylog.Log{Entries: []querylog.Entry{
		{Query: "star wars", Freq: 90},
		{Query: "george clooney movies", Freq: 10},
	}, Total: 100}
	w := FromLog(l)
	r := rand.New(rand.NewSource(2))
	head := 0
	for i := 0; i < 1000; i++ {
		if w.Next(r, 0).Query == "star wars" {
			head++
		}
	}
	if head < 800 || head > 980 {
		t.Fatalf("head frequency %d/1000, want ~900", head)
	}
}
