package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Report is what one load run observed, client-side. It is the unit
// BENCH_LOAD.json records and cmd/benchcheck -load gates on.
type Report struct {
	// Mode is "open" or "closed".
	Mode string `json:"mode"`
	// Target is the base URL the run drove.
	Target string `json:"target"`
	// Concurrency is the worker count (closed) or in-flight cap (open).
	Concurrency int `json:"concurrency"`
	// TargetQPS is the open-loop arrival rate; zero for closed loop.
	TargetQPS float64 `json:"target_qps,omitempty"`
	// K is the page size each search requested.
	K int `json:"k"`
	// MutateRate is the fraction of operations that were mutations.
	MutateRate float64 `json:"mutate_rate,omitempty"`
	// WarmupSeconds were issued but not measured.
	WarmupSeconds float64 `json:"warmup_seconds"`
	// DurationSeconds is the measured window.
	DurationSeconds float64 `json:"duration_seconds"`
	// Requests is the measured operation count (successes + errors).
	Requests int64 `json:"requests"`
	// Errors counts transport failures and non-200 responses.
	Errors int64 `json:"errors"`
	// ErrorRate is Errors / Requests.
	ErrorRate float64 `json:"error_rate"`
	// QPS is the achieved request rate over the measured window.
	QPS float64 `json:"qps"`
	// Latency digests successful-request latencies in microseconds. In
	// open-loop mode latency runs from the scheduled send time, so
	// server backlog is charged to the server.
	Latency Summary `json:"latency"`
}

// Text renders the report as aligned human-readable lines.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s target=%s", r.Mode, r.Target)
	if r.Mode == string(ModeOpen) {
		fmt.Fprintf(&b, " target_qps=%.0f inflight<=%d", r.TargetQPS, r.Concurrency)
	} else {
		fmt.Fprintf(&b, " concurrency=%d", r.Concurrency)
	}
	if r.MutateRate > 0 {
		fmt.Fprintf(&b, " mutate_rate=%.2f", r.MutateRate)
	}
	fmt.Fprintf(&b, "\n  %d requests in %.1fs (%.1f qps), %d errors (%.2f%%)\n",
		r.Requests, r.DurationSeconds, r.QPS, r.Errors, 100*r.ErrorRate)
	l := r.Latency
	fmt.Fprintf(&b, "  latency µs: mean=%d p50=%d p95=%d p99=%d p999=%d max=%d\n",
		l.Mean, l.P50, l.P95, l.P99, l.P999, l.Max)
	return b.String()
}

// CorpusInfo records which corpus the workload was generated against, so
// a BENCH_LOAD.json is reproducible.
type CorpusInfo struct {
	Seed      int64 `json:"seed"`
	Persons   int   `json:"persons"`
	Movies    int   `json:"movies"`
	Instances int   `json:"instances,omitempty"`
	// Queries is the distinct-query count of the replayed workload.
	Queries int `json:"queries"`
}

// Document is the BENCH_LOAD.json file shape: the corpus the workload
// came from plus one report per run (cmd/loadgen -mode both writes a
// closed- and an open-loop run).
type Document struct {
	Corpus *CorpusInfo `json:"corpus,omitempty"`
	Runs   []*Report   `json:"runs"`
}

// WriteFile writes the document as indented JSON.
func (d *Document) WriteFile(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadDocument loads a BENCH_LOAD.json.
func ReadDocument(path string) (*Document, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
