package loadgen

import (
	"math/rand"
	"sort"

	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/querylog"
)

// Op is one unit of traffic: a search, or — in mixed workloads — a
// relevance-feedback mutation (feedback reweights a qunit type's utility
// and purges the server's result cache, so it exercises the write path
// without growing the index unboundedly during a run).
type Op struct {
	Kind       string // "search" or "feedback"
	Query      string
	InstanceID string
	Positive   bool
}

// Workload is a replayable query mix: the aggregated query log flattened
// into a cumulative-frequency table for O(log n) weighted sampling, so
// replay reproduces the log's zipfian skew — head queries hit the
// server's cache exactly as often as they appear in the log.
type Workload struct {
	queries   []string
	cum       []int64
	total     int64
	feedbacks []string
}

// FromLog builds a workload from an aggregated query log.
func FromLog(l *querylog.Log) *Workload {
	w := &Workload{
		queries: make([]string, 0, len(l.Entries)),
		cum:     make([]int64, 0, len(l.Entries)),
	}
	for _, e := range l.Entries {
		w.total += int64(e.Freq)
		w.queries = append(w.queries, e.Query)
		w.cum = append(w.cum, w.total)
	}
	return w
}

// ForUniverse generates the default query log over a universe and builds
// the replay workload from it, with feedback targets drawn from the
// universe's movie summaries. seed and volume parameterize the log;
// volume <= 0 keeps the default log size.
func ForUniverse(u *imdb.Universe, seed int64, volume int) *Workload {
	cfg := querylog.DefaultGenConfig()
	cfg.Seed = seed
	if volume > 0 {
		cfg.Volume = volume
	}
	w := FromLog(querylog.Generate(u, cfg))
	// Feedback targets: the popularity head, where mutations collide
	// with cached reads the hardest. movie-summary instances exist for
	// every movie under the expert catalog.
	n := len(u.Movies)
	if n > 256 {
		n = 256
	}
	ids := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for _, m := range u.Movies[:n] {
		id := "movie-summary:" + ir.Normalize(m.Name)
		if seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	w.feedbacks = ids
	return w
}

// Queries returns the number of distinct queries in the workload.
func (w *Workload) Queries() int { return len(w.queries) }

// Next draws the next operation: a frequency-weighted query, or with
// probability mutateRate a feedback mutation against a popular instance.
func (w *Workload) Next(r *rand.Rand, mutateRate float64) Op {
	if mutateRate > 0 && len(w.feedbacks) > 0 && r.Float64() < mutateRate {
		return Op{
			Kind:       "feedback",
			InstanceID: w.feedbacks[r.Intn(len(w.feedbacks))],
			Positive:   r.Intn(2) == 0,
		}
	}
	x := r.Int63n(w.total) + 1
	i := sort.Search(len(w.cum), func(i int) bool { return w.cum[i] >= x })
	return Op{Kind: "search", Query: w.queries[i]}
}
