// Package objectrank reimplements the ObjectRank baseline (Balmin,
// Hristidis & Papakonstantinou, VLDB 2004), the fourth keyword-search
// system the paper's introduction names: "ObjectRank … combines
// tuple-level PageRank from a pre-computed data graph with keyword
// matching."
//
// Authority flows across the tuple graph's foreign-key edges by power
// iteration; a keyword query then ranks matching tuples by the product of
// textual match strength and precomputed authority. Like the other
// baselines it returns *tuples*, not demarcated results — the limitation
// the qunits paradigm addresses.
package objectrank

import (
	"math"
	"sort"

	"qunits/internal/graph"
	"qunits/internal/ir"
	"qunits/internal/relational"
)

// Options configures the authority computation.
type Options struct {
	// Damping is the random-surfer damping factor; 0 means 0.85.
	Damping float64
	// Iterations caps power iteration; 0 means 30.
	Iterations int
	// Epsilon stops iteration early when the L1 delta falls below it;
	// 0 means 1e-8.
	Epsilon float64
}

// Engine holds the graph and its precomputed authority.
type Engine struct {
	g         *graph.Graph
	authority []float64
}

// New precomputes tuple-level authority over the data graph.
func New(g *graph.Graph, opts Options) *Engine {
	damping := opts.Damping
	if damping == 0 {
		damping = 0.85
	}
	iterations := opts.Iterations
	if iterations == 0 {
		iterations = 30
	}
	epsilon := opts.Epsilon
	if epsilon == 0 {
		epsilon = 1e-8
	}

	n := g.Len()
	rank := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return &Engine{g: g, authority: rank}
	}
	init := 1 / float64(n)
	for i := range rank {
		rank[i] = init
	}
	for iter := 0; iter < iterations; iter++ {
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			neighbors := g.Neighbors(v)
			if len(neighbors) == 0 {
				// Dangling mass redistributes uniformly.
				share := damping * rank[v] / float64(n)
				for i := range next {
					next[i] += share
				}
				continue
			}
			share := damping * rank[v] / float64(len(neighbors))
			for _, nb := range neighbors {
				next[nb] += share
			}
		}
		delta := 0.0
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < epsilon {
			break
		}
	}
	return &Engine{g: g, authority: rank}
}

// Authority returns a node's precomputed authority mass.
func (e *Engine) Authority(n graph.NodeID) float64 { return e.authority[n] }

// Result is one ranked tuple.
type Result struct {
	Ref   relational.TupleRef
	Score float64
	// Authority and Match are the two combined components.
	Authority float64
	Match     float64
}

// Search ranks the tuples matching any query keyword by match × authority.
// Unmatched tokens are dropped; a query matching nothing returns nil.
func (e *Engine) Search(query string, k int) []Result {
	tokens := ir.ContentTokens(query)
	match := map[graph.NodeID]float64{}
	total := 0
	for _, tok := range tokens {
		nodes := e.g.MatchKeyword(tok)
		if len(nodes) == 0 {
			continue
		}
		total++
		// Rarer tokens are worth more, as in ObjectRank's IR component.
		idf := math.Log(1 + float64(e.g.Len())/float64(len(nodes)))
		for _, n := range nodes {
			match[n] += idf
		}
	}
	if total == 0 {
		return nil
	}
	results := make([]Result, 0, len(match))
	for n, m := range match {
		results = append(results, Result{
			Ref:       e.g.Ref(n),
			Score:     m * e.authority[n],
			Authority: e.authority[n],
			Match:     m,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Ref.String() < results[j].Ref.String()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}
