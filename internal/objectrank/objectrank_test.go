package objectrank

import (
	"math"
	"testing"

	"qunits/internal/graph"
	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func engine(t *testing.T) (*imdb.Universe, *Engine) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 120, Movies: 80, CastPerMovie: 4})
	return u, New(graph.Build(u.DB), Options{})
}

func TestAuthoritySumsToOne(t *testing.T) {
	_, e := engine(t)
	total := 0.0
	for i := 0; i < e.g.Len(); i++ {
		total += e.authority[i]
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("authority mass = %v, want 1", total)
	}
	for i := 0; i < e.g.Len(); i++ {
		if e.authority[i] <= 0 {
			t.Fatalf("node %d has non-positive authority", i)
		}
	}
}

func TestPopularEntitiesHaveHigherAuthority(t *testing.T) {
	u, e := engine(t)
	top, _ := e.g.Node(relational.TupleRef{Table: imdb.TablePerson, Row: u.Persons[0].Row})
	bottom, _ := e.g.Node(relational.TupleRef{Table: imdb.TablePerson, Row: u.Persons[len(u.Persons)-1].Row})
	if e.Authority(top) <= e.Authority(bottom) {
		t.Errorf("authority(top)=%v <= authority(bottom)=%v", e.Authority(top), e.Authority(bottom))
	}
}

func TestSearchRanksMatchingTuples(t *testing.T) {
	_, e := engine(t)
	res := e.Search("george clooney", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Ref.Table != imdb.TablePerson {
		t.Errorf("top result table = %s", res[0].Ref.Table)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatal("results not sorted")
		}
	}
	if res[0].Match == 0 || res[0].Authority == 0 {
		t.Error("score components not populated")
	}
}

func TestSearchAuthorityBreaksTies(t *testing.T) {
	u, e := engine(t)
	// Query a token matching many tuples with equal match strength: the
	// winner must be the one with the most authority.
	res := e.Search("actor", 10) // cast.role value
	if len(res) < 2 {
		t.Skip("not enough matches")
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Match == res[i].Match && res[i-1].Authority < res[i].Authority {
			t.Fatal("equal-match results not ordered by authority")
		}
	}
	_ = u
}

func TestSearchNoMatch(t *testing.T) {
	_, e := engine(t)
	if res := e.Search("zzzz qqqq", 5); res != nil {
		t.Errorf("results for nonsense: %v", res)
	}
	if res := e.Search("", 5); res != nil {
		t.Error("results for empty query")
	}
}

func TestSearchDeterministic(t *testing.T) {
	_, e := engine(t)
	a := e.Search("star wars", 10)
	b := e.Search("star wars", 10)
	if len(a) != len(b) {
		t.Fatal("count differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranking differs")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	db := relational.NewDatabase("empty")
	e := New(graph.Build(db), Options{})
	if res := e.Search("anything", 3); res != nil {
		t.Error("results from empty graph")
	}
}

func TestDampingExtremes(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 40, Movies: 30})
	g := graph.Build(u.DB)
	// Damping near 0: authority ≈ uniform.
	low := New(g, Options{Damping: 1e-9})
	n := g.Len()
	for i := 0; i < n; i += 37 {
		if math.Abs(low.Authority(i)-1/float64(n)) > 1e-3 {
			t.Fatalf("near-zero damping not uniform: %v", low.Authority(i))
		}
	}
	// Higher damping concentrates more mass on hubs.
	high := New(g, Options{Damping: 0.95, Iterations: 60})
	topHub, _ := g.Node(relational.TupleRef{Table: imdb.TablePerson, Row: u.Persons[0].Row})
	if high.Authority(topHub) <= low.Authority(topHub) {
		t.Error("hub authority did not grow with damping")
	}
}
