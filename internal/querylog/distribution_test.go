package querylog

import (
	"sort"
	"testing"

	"qunits/internal/imdb"
)

// Distribution properties the loadgen replay path depends on: the log's
// frequency shape must be zipfian-skewed, deterministic per seed, and
// stable as volume grows. A drift here silently changes every committed
// BENCH_LOAD.json comparison, so these pin the contract.

func distUniverse(t *testing.T) *imdb.Universe {
	t.Helper()
	return imdb.MustGenerate(imdb.Config{Seed: 11, Persons: 400, Movies: 250})
}

func TestLogDeterministicPerSeed(t *testing.T) {
	u := distUniverse(t)
	cfg := DefaultGenConfig()
	cfg.Seed = 21
	a, b := Generate(u, cfg), Generate(u, cfg)
	if a.Total != b.Total || len(a.Entries) != len(b.Entries) {
		t.Fatalf("same seed diverged: %d/%d entries, %d/%d total",
			len(a.Entries), len(b.Entries), a.Total, b.Total)
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, a.Entries[i], b.Entries[i])
		}
	}
	cfg.Seed = 22
	c := Generate(u, cfg)
	same := len(c.Entries) == len(a.Entries)
	if same {
		for i := range a.Entries {
			if a.Entries[i] != c.Entries[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical log")
	}
}

func TestLogFrequenciesAreZipfSkewed(t *testing.T) {
	u := distUniverse(t)
	cfg := DefaultGenConfig()
	cfg.Seed = 5
	l := Generate(u, cfg)
	if len(l.Entries) < 100 {
		t.Fatalf("log too small to measure skew: %d entries", len(l.Entries))
	}
	freqs := make([]int, len(l.Entries))
	total := 0
	for i, e := range l.Entries {
		freqs[i] = e.Freq
		total += e.Freq
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipfian head-heaviness: the top 10% of distinct queries must carry
	// well more than their uniform share of the volume.
	headN := len(freqs) / 10
	head := 0
	for _, f := range freqs[:headN] {
		head += f
	}
	if share := float64(head) / float64(total); share < 0.2 {
		t.Errorf("top 10%% of queries carry only %.0f%% of volume; not zipfian", share*100)
	}
	// And the single heaviest query must dominate the median one.
	if freqs[0] < 5*freqs[len(freqs)/2] {
		t.Errorf("head freq %d not >> median freq %d", freqs[0], freqs[len(freqs)/2])
	}
}

func TestLogShapeStableAtLargeVolume(t *testing.T) {
	u := distUniverse(t)
	headShare := func(volume int) float64 {
		cfg := DefaultGenConfig()
		cfg.Seed = 7
		cfg.Volume = volume
		l := Generate(u, cfg)
		freqs := make([]int, len(l.Entries))
		total := 0
		for i, e := range l.Entries {
			freqs[i] = e.Freq
			total += e.Freq
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		head := 0
		for _, f := range freqs[:len(freqs)/10] {
			head += f
		}
		return float64(head) / float64(total)
	}
	small, large := headShare(3000), headShare(60000)
	// Scaling volume 20x must not flatten the skew. (It legitimately
	// sharpens: head queries accumulate repeats linearly while the
	// distinct tail grows sublinearly, so the head's share rises with
	// volume — what would indicate a generator bug is the head share
	// *dropping* at scale.)
	if large < small-0.05 {
		t.Errorf("head share flattened with volume: %.2f at 3k vs %.2f at 60k", small, large)
	}
	if large < 0.2 || large > 0.99 {
		t.Errorf("large-volume head share %.2f outside sane zipfian range", large)
	}
}
