package querylog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text file form of an aggregated log: one entry per line as
//
//	<freq>\t<query>
//
// A line without a tab is a bare query with frequency 1, so a plain
// newline-separated list of raw queries (the natural dump of an access
// log) reads back directly. Blank lines and lines starting with '#' are
// skipped. Duplicate queries aggregate on read, and entries come back
// in the Log's canonical order (frequency descending, then query text),
// so Read(Write(l)) reproduces l exactly.

// Write serializes the log in the text file form.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", e.Freq, e.Query); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile serializes the log to path in the text file form.
func WriteFile(path string, l *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, l); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses the text file form into an aggregated log.
func Read(r io.Reader) (*Log, error) {
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		// The tab is looked for on the raw line: trimming first would
		// turn "5\t" (a frequency with a missing query — an error) into
		// the bare query "5".
		query := trimmed
		freq := 1
		if i := strings.IndexByte(raw, '\t'); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(raw[:i]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("querylog: line %d: bad frequency %q", line, raw[:i])
			}
			freq = n
			query = strings.TrimSpace(raw[i+1:])
		}
		if query == "" {
			return nil, fmt.Errorf("querylog: line %d: empty query", line)
		}
		counts[query] += freq
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("querylog: %w", err)
	}
	return fromCounts(counts), nil
}

// ReadFile parses the text file at path into an aggregated log.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
