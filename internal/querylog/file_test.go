package querylog

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	l := fromCounts(map[string]int{
		"star wars":       7,
		"casablanca cast": 3,
		"george clooney":  3,
		"x":               1,
	})
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, l)
	}
}

func TestReadBareLinesCommentsAndAggregation(t *testing.T) {
	in := "star wars\n" + // bare line = freq 1
		"3\tcasablanca\n" +
		"# a comment\n" +
		"\n" +
		"star wars\n" +
		" 2\t star wars \n" // whitespace trimmed, aggregates
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := fromCounts(map[string]int{"star wars": 4, "casablanca": 3})
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %+v want %+v", l, want)
	}
	if l.Total != 7 || l.Unique() != 2 {
		t.Fatalf("total=%d unique=%d", l.Total, l.Unique())
	}
}

func TestReadRejectsBadLines(t *testing.T) {
	for _, in := range []string{"0\tfoo", "-2\tfoo", "x\tfoo", "5\t", "5\t   "} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted a bad line", in)
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.log")
	l := fromCounts(map[string]int{"terminator cast": 5, "tomb raider": 2})
	if err := WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("file round trip diverged:\n got %+v\nwant %+v", got, l)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Fatal("ReadFile on a missing path should fail")
	}
}
