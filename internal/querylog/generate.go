package querylog

import (
	"math/rand"
	"strconv"
	"strings"

	"qunits/internal/imdb"
)

// GenConfig controls synthetic log generation. The default mix matches
// the fractions the paper reports for its AOL/IMDb base log.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Volume is the total number of (non-unique) queries to generate. The
	// paper's base log had 98,549; the default experiment scale is a
	// tenth of that.
	Volume int
	// Mix fractions by query class; whatever is left over becomes free
	// text / junk. Zero values take the paper's defaults.
	SingleEntity    float64
	EntityAttribute float64
	MultiEntity     float64
	Complex         float64
	// MisspellRate is the chance a generated query gets a typo, which
	// usually demotes it to free text at classification time (the paper's
	// ~7% of unidentifiable queries).
	MisspellRate float64
}

// DefaultGenConfig returns the paper-calibrated configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:            1,
		Volume:          9855, // 98,549 / 10
		SingleEntity:    0.36,
		EntityAttribute: 0.20,
		MultiEntity:     0.02,
		Complex:         0.015,
		MisspellRate:    0.03,
	}
}

// weightedWord is query vocabulary with a popularity weight; attribute
// words are far from uniform in real logs (cast queries dwarf award
// queries).
type weightedWord struct {
	word   string
	weight int
}

// movieAttributes is the query vocabulary users attach to movie entities;
// mirrors Table 1's columns ([title] cast, [title] box office, [title]
// ost, [title] year, [title] posters, [title] plot …), weighted by how
// often users actually ask for each aspect.
var movieAttributes = []weightedWord{
	{"cast", 10}, {"plot", 4}, {"soundtrack", 3}, {"ost", 2},
	{"box office", 3}, {"year", 3}, {"trivia", 2}, {"quotes", 2},
	{"posters", 2}, {"review", 2}, {"director", 2}, {"genre", 1},
	{"awards", 1}, {"locations", 1},
}

// personAttributes is the vocabulary attached to person entities.
var personAttributes = []weightedWord{
	{"movies", 10}, {"filmography", 3}, {"films", 3}, {"biography", 2},
	{"age", 2}, {"photos", 1}, {"awards", 1},
}

func pickWeighted(r *rand.Rand, words []weightedWord) string {
	total := 0
	for _, w := range words {
		total += w.weight
	}
	x := r.Intn(total)
	for _, w := range words {
		x -= w.weight
		if x < 0 {
			return w.word
		}
	}
	return words[len(words)-1].word
}

// complexTemplates are aggregate-structured queries (<2% of the log).
// Genre placeholders type-recognize ("comedy" is a genre.type entity), so
// each shape collapses into a single typed template heavy enough to
// appear in the benchmark — as the paper's complex examples did.
var complexTemplates = []string{
	"highest box office revenue",
	"best %genre movies",
}

// freeTemplates are navigational or free-text queries that carry no
// recognizable entity.
var freeTemplates = []string{
	"movie trailers",
	"new movies",
	"movie showtimes",
	"celebrity gossip",
	"upcoming releases",
	"film reviews online",
	"imdb",
	"movie database",
	"oscar nominations list",
	"cinema near me",
}

// Generate builds a synthetic aggregated log over the universe's
// entities.
func Generate(u *imdb.Universe, cfg GenConfig) *Log {
	if cfg.Volume <= 0 {
		cfg.Volume = DefaultGenConfig().Volume
	}
	if cfg.SingleEntity == 0 && cfg.EntityAttribute == 0 && cfg.MultiEntity == 0 && cfg.Complex == 0 {
		def := DefaultGenConfig()
		cfg.SingleEntity = def.SingleEntity
		cfg.EntityAttribute = def.EntityAttribute
		cfg.MultiEntity = def.MultiEntity
		cfg.Complex = def.Complex
		if cfg.MisspellRate == 0 {
			cfg.MisspellRate = def.MisspellRate
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	counts := make(map[string]int)
	for i := 0; i < cfg.Volume; i++ {
		q := generateOne(u, cfg, r)
		if cfg.MisspellRate > 0 && r.Float64() < cfg.MisspellRate {
			q = misspell(r, q)
		}
		counts[q]++
	}
	return fromCounts(counts)
}

func generateOne(u *imdb.Universe, cfg GenConfig, r *rand.Rand) string {
	x := r.Float64()
	switch {
	case x < cfg.SingleEntity:
		return sampleEntityName(u, r)
	case x < cfg.SingleEntity+cfg.EntityAttribute:
		if r.Float64() < 0.55 {
			m := u.SampleMovie(r)
			return m.Name + " " + pickWeighted(r, movieAttributes)
		}
		p := u.SamplePerson(r)
		return p.Name + " " + pickWeighted(r, personAttributes)
	case x < cfg.SingleEntity+cfg.EntityAttribute+cfg.MultiEntity:
		// Usually person+movie ("angelina jolie tomb raider"), sometimes
		// person+person (coactorship).
		if r.Float64() < 0.85 {
			return u.SamplePerson(r).Name + " " + u.SampleMovie(r).Name
		}
		return u.SamplePerson(r).Name + " " + u.SamplePerson(r).Name
	case x < cfg.SingleEntity+cfg.EntityAttribute+cfg.MultiEntity+cfg.Complex:
		t := complexTemplates[r.Intn(len(complexTemplates))]
		t = strings.ReplaceAll(t, "%year", yearString(r))
		t = strings.ReplaceAll(t, "%genre", sampleGenre(r))
		return t
	default:
		// Free text. Real logs' unidentifiable remainder is diverse:
		// entity names with extra prose ("[title] [freetext]"), mangled
		// entity names (typos bad enough to defeat recognition), and a
		// thin stream of navigational queries.
		switch x := r.Float64(); {
		case x < 0.4:
			return u.SampleMovie(r).Name + " " + freeExtra(r)
		case x < 0.55:
			// Aggressively mangle an entity name: two edits usually push
			// it out of the dictionary (the paper's ~7% unidentifiable
			// remainder).
			q := sampleEntityName(u, r)
			return misspell(r, misspell(r, q))
		default:
			// Navigational queries repeat massively, exactly like the
			// real log's "imdb"; the benchmark builder excludes their
			// templates, as the paper's imdb.com click filter did.
			return freeTemplates[r.Intn(len(freeTemplates))]
		}
	}
}

func sampleEntityName(u *imdb.Universe, r *rand.Rand) string {
	if r.Float64() < 0.5 {
		return u.SamplePerson(r).Name
	}
	return u.SampleMovie(r).Name
}

func yearString(r *rand.Rand) string {
	return strconv.Itoa(1950 + r.Intn(50))
}

var genreSamples = []string{"comedy", "drama", "action", "horror", "thriller"}

func sampleGenre(r *rand.Rand) string {
	return genreSamples[r.Intn(len(genreSamples))]
}

var freeExtraWords = []string{
	"ending explained", "watch online", "full movie", "streaming",
	"behind the scenes", "fan theories", "parents guide", "runtime",
	"age rating", "similar titles", "deleted scenes", "easter eggs",
	"filming schedule", "sequel rumors", "alternate ending", "blooper reel",
	"costume design", "opening scene", "final battle", "fan art",
}

func freeExtra(r *rand.Rand) string {
	return freeExtraWords[r.Intn(len(freeExtraWords))]
}

// misspell perturbs one interior character: drop it, double it, or swap
// with its neighbor.
func misspell(r *rand.Rand, q string) string {
	if len(q) < 4 {
		return q
	}
	i := 1 + r.Intn(len(q)-2)
	switch r.Intn(3) {
	case 0: // drop
		return q[:i] + q[i+1:]
	case 1: // double
		return q[:i] + string(q[i]) + q[i:]
	default: // swap
		b := []byte(q)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	}
}
