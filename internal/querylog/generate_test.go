package querylog

import (
	"math/rand"
	"strings"
	"testing"

	"qunits/internal/imdb"
)

func TestPickWeightedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	words := []weightedWord{{"heavy", 9}, {"light", 1}}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[pickWeighted(r, words)]++
	}
	if counts["heavy"] < 4*counts["light"] {
		t.Errorf("weights not respected: %v", counts)
	}
	if counts["light"] == 0 {
		t.Error("light option never chosen")
	}
}

func TestBenchmarkTemplateFilter(t *testing.T) {
	cases := map[string]bool{
		"[movie.title] cast":         true,
		"[person.name]":              true,
		"highest box office revenue": true,
		"best [genre.type] movies":   true,
		"imdb":                       false,
		"movie trailers":             false,
		"celebrity gossip":           false,
	}
	for tpl, want := range cases {
		if got := benchmarkTemplate(tpl); got != want {
			t.Errorf("benchmarkTemplate(%q) = %v, want %v", tpl, got, want)
		}
	}
}

func TestGeneratedClassesMatchGenerator(t *testing.T) {
	// Each class branch of the generator must produce queries the
	// classifier maps back to the intended class (modulo misspelling,
	// disabled here).
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 200, Movies: 150})
	_, _, seg := logFixture(t)
	_ = u

	cases := []struct {
		cfg  GenConfig
		want Class
	}{
		{GenConfig{Seed: 1, Volume: 200, SingleEntity: 1}, ClassSingleEntity},
		{GenConfig{Seed: 2, Volume: 200, SingleEntity: 0.001, EntityAttribute: 0.999}, ClassEntityAttribute},
		{GenConfig{Seed: 3, Volume: 200, SingleEntity: 0.001, EntityAttribute: 0.001, MultiEntity: 0.998}, ClassMultiEntity},
		{GenConfig{Seed: 4, Volume: 200, SingleEntity: 0.001, EntityAttribute: 0.001, MultiEntity: 0.001, Complex: 0.997}, ClassComplex},
	}
	u2 := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 300, Movies: 200, CastPerMovie: 4})
	for _, c := range cases {
		log := Generate(u2, c.cfg)
		st := Analyze(log, seg)
		if f := st.ClassFraction(c.want); f < 0.80 {
			t.Errorf("generator class %s: classified fraction %.2f (byClass %v)", c.want, f, st.ByClassVolume)
		}
	}
}

func TestFreeBranchDiversity(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 300, Movies: 200, CastPerMovie: 4})
	// All free text: verify the three sub-branches all appear.
	log := Generate(u, GenConfig{
		Seed: 9, Volume: 3000,
		SingleEntity: 0.001, EntityAttribute: 0.001, MultiEntity: 0.001, Complex: 0.001,
	})
	var navigational, entityExtra int
	for _, e := range log.Entries {
		if containsAny(e.Query, freeTemplates) {
			navigational += e.Freq
		}
		for _, w := range freeExtraWords {
			if strings.HasSuffix(e.Query, w) {
				entityExtra += e.Freq
				break
			}
		}
	}
	if navigational == 0 {
		t.Error("no navigational queries generated")
	}
	if entityExtra == 0 {
		t.Error("no entity+freetext queries generated")
	}
	// Mangles: a large share of unique queries should be unrecognizable
	// variants (not equal to any canned string and not suffix-matched).
	if log.Unique() < 500 {
		t.Errorf("free branch insufficiently diverse: %d unique", log.Unique())
	}
}

func containsAny(q string, set []string) bool {
	for _, s := range set {
		if q == s {
			return true
		}
	}
	return false
}
