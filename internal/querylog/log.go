// Package querylog models keyword-query logs: generation of a synthetic
// log with the distributional properties the paper reports for its
// real-world dataset (§5.2), classification of queries into the paper's
// categories, typed-template extraction, and construction of the movie
// querylog benchmark workload.
//
// The paper used the 2006 AOL web query log (650K users, 20M queries),
// filtered to queries that navigated to imdb.com: 98,549 queries, 46,901
// unique, ~93% movie-related, with a mix of 36% single-entity queries,
// 20% entity-attribute queries, ~2% multi-entity queries and <2% complex
// queries. That log is not redistributable, so Generate produces a
// synthetic log matching those marginals against the synthetic IMDb.
package querylog

import (
	"sort"
	"strings"

	"qunits/internal/ir"
	"qunits/internal/segment"
)

// Entry is one unique query with its aggregated frequency.
type Entry struct {
	Query string
	Freq  int
}

// Log is an aggregated query log: unique queries with frequencies.
type Log struct {
	// Entries sorted by descending frequency, then query text.
	Entries []Entry
	// Total is the total query volume (sum of frequencies).
	Total int
}

// Unique returns the number of distinct queries.
func (l *Log) Unique() int { return len(l.Entries) }

// Containing returns the entries whose queries contain the normalized
// phrase as a token subsequence. Used by the query-rollup derivation
// strategy, which looks sampled entities up in the log.
func (l *Log) Containing(phrase string) []Entry {
	want := ir.Tokenize(phrase)
	if len(want) == 0 {
		return nil
	}
	var out []Entry
	for _, e := range l.Entries {
		if containsSubsequence(ir.Tokenize(e.Query), want) {
			out = append(out, e)
		}
	}
	return out
}

func containsSubsequence(haystack, needle []string) bool {
	if len(needle) > len(haystack) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		ok := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// fromCounts builds a Log from a frequency map with deterministic
// ordering.
func fromCounts(counts map[string]int) *Log {
	l := &Log{}
	for q, f := range counts {
		l.Entries = append(l.Entries, Entry{Query: q, Freq: f})
		l.Total += f
	}
	sort.Slice(l.Entries, func(i, j int) bool {
		if l.Entries[i].Freq != l.Entries[j].Freq {
			return l.Entries[i].Freq > l.Entries[j].Freq
		}
		return l.Entries[i].Query < l.Entries[j].Query
	})
	return l
}

// Class is the paper's query taxonomy from §5.2.
type Class uint8

// The query classes.
const (
	// ClassSingleEntity: just an entity name ("star wars").
	ClassSingleEntity Class = iota
	// ClassEntityAttribute: entity plus schema vocabulary ("terminator cast").
	ClassEntityAttribute
	// ClassMultiEntity: more than one entity ("angelina jolie tomb raider").
	ClassMultiEntity
	// ClassComplex: aggregate structure ("highest box office revenue").
	ClassComplex
	// ClassEntityFreeText: one entity plus unrecognized prose ("star wars
	// ending explained") — Table 1's "[title] [freetext]" template.
	ClassEntityFreeText
	// ClassFreeText: everything else, including junk and misspellings.
	ClassFreeText
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassSingleEntity:
		return "single-entity"
	case ClassEntityAttribute:
		return "entity-attribute"
	case ClassMultiEntity:
		return "multi-entity"
	case ClassComplex:
		return "complex"
	case ClassEntityFreeText:
		return "entity-freetext"
	default:
		return "free-text"
	}
}

// aggregateTerms signal query structure beyond selection — the paper's
// example is "highest box office revenue".
var aggregateTerms = map[string]bool{
	"highest": true, "best": true, "top": true, "most": true,
	"worst": true, "lowest": true, "greatest": true, "biggest": true,
}

// Classify types a query using its segmentation.
func Classify(sg segment.Segmentation) Class {
	entities := 0
	attrs := 0
	aggregate := false
	free := 0
	for _, s := range sg.Segments {
		switch s.Kind {
		case segment.KindEntity:
			entities++
		case segment.KindAttribute:
			attrs++
		default:
			for _, tok := range strings.Fields(s.Text) {
				if aggregateTerms[tok] {
					aggregate = true
				} else if !ir.Stopwords[tok] {
					free++
				}
			}
		}
	}
	switch {
	case aggregate:
		return ClassComplex
	case entities >= 2:
		return ClassMultiEntity
	case entities == 1 && attrs == 0 && free == 0:
		return ClassSingleEntity
	case entities == 1 && attrs >= 1:
		return ClassEntityAttribute
	case entities == 1:
		return ClassEntityFreeText
	default:
		return ClassFreeText
	}
}

// Stats summarizes a log against a segmenter.
//
// Fractions are reported both over unique queries and over query volume.
// At the paper's scale (98,549 queries against IMDb's millions of
// entities) queries rarely repeat, so the two coincide and the paper can
// quote "36% of the distinct queries" directly. At reproduction scale the
// synthetic entity space is small relative to volume, so aggregation
// concentrates the repetitive classes; the volume-weighted fraction is
// the scale-invariant quantity and is what the experiment driver
// compares against the paper's numbers.
type Stats struct {
	Total         int
	Unique        int
	ByClass       map[Class]int // unique-query counts
	ByClassVolume map[Class]int // frequency-weighted counts
	MovieRelated  float64       // fraction of unique queries with ≥1 recognized segment
}

// ClassFraction returns the volume-weighted fraction of the given class.
func (st Stats) ClassFraction(c Class) float64 {
	if st.Total == 0 {
		return 0
	}
	return float64(st.ByClassVolume[c]) / float64(st.Total)
}

// Analyze classifies every unique query in the log.
func Analyze(l *Log, seg *segment.Segmenter) Stats {
	st := Stats{
		Total: l.Total, Unique: l.Unique(),
		ByClass:       make(map[Class]int),
		ByClassVolume: make(map[Class]int),
	}
	related := 0
	for _, e := range l.Entries {
		sg := seg.Segment(e.Query)
		c := Classify(sg)
		st.ByClass[c]++
		st.ByClassVolume[c] += e.Freq
		if len(sg.Entities()) > 0 || len(sg.Attributes()) > 0 {
			related++
		}
	}
	if st.Unique > 0 {
		st.MovieRelated = float64(related) / float64(st.Unique)
	}
	return st
}
