package querylog

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/segment"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func logFixture(t *testing.T) (*imdb.Universe, *Log, *segment.Segmenter) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 300, Movies: 200, CastPerMovie: 4})
	l := Generate(u, GenConfig{
		Seed: 11, Volume: 8000,
		SingleEntity: 0.36, EntityAttribute: 0.20, MultiEntity: 0.02,
		Complex: 0.015, MisspellRate: 0.03,
	})
	d := segment.BuildDictionary(u.DB, segment.Options{AttributeSynonyms: imdb.AttributeSynonyms()})
	return u, l, segment.NewSegmenter(d)
}

func TestGenerateVolumeAndAggregation(t *testing.T) {
	_, l, _ := logFixture(t)
	if l.Total != 8000 {
		t.Fatalf("Total = %d", l.Total)
	}
	if l.Unique() == 0 || l.Unique() >= l.Total {
		t.Fatalf("Unique = %d of %d; expected aggregation", l.Unique(), l.Total)
	}
	// Sorted by descending frequency.
	for i := 1; i < len(l.Entries); i++ {
		if l.Entries[i-1].Freq < l.Entries[i].Freq {
			t.Fatal("entries not sorted by frequency")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 100, Movies: 80})
	cfg := GenConfig{Seed: 5, Volume: 2000, SingleEntity: 0.4, EntityAttribute: 0.2, MultiEntity: 0.02, Complex: 0.02}
	a := Generate(u, cfg)
	b := Generate(u, cfg)
	if a.Total != b.Total || a.Unique() != b.Unique() {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestClassifyExamples(t *testing.T) {
	_, _, seg := logFixture(t)
	cases := []struct {
		query string
		want  Class
	}{
		{"george clooney", ClassSingleEntity},
		{"star wars", ClassSingleEntity},
		{"terminator cast", ClassEntityAttribute},
		{"george clooney movies", ClassEntityAttribute},
		{"angelina jolie tomb raider", ClassMultiEntity},
		{"highest box office revenue", ClassComplex},
		{"best comedy movies", ClassComplex},
		{"movie trailers online", ClassFreeText},
		{"star wars ending explained", ClassEntityFreeText},
	}
	for _, c := range cases {
		got := Classify(seg.Segment(c.query))
		if got != c.want {
			t.Errorf("Classify(%q) = %s, want %s", c.query, got, c.want)
		}
	}
}

func TestClassNames(t *testing.T) {
	names := map[Class]string{
		ClassSingleEntity:    "single-entity",
		ClassEntityAttribute: "entity-attribute",
		ClassMultiEntity:     "multi-entity",
		ClassComplex:         "complex",
		ClassEntityFreeText:  "entity-freetext",
		ClassFreeText:        "free-text",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

// The headline reproduction check for §5.2: the synthetic log's class mix
// must match the paper's published fractions within tolerance.
func TestAnalyzeMatchesPaperMix(t *testing.T) {
	_, l, seg := logFixture(t)
	st := Analyze(l, seg)
	if st.Unique != l.Unique() || st.Total != l.Total {
		t.Fatal("stats totals wrong")
	}
	// The paper reports ≥36% single entity, ~20% entity-attribute, ~2%
	// multi-entity, <2% complex. At full scale distinct fractions equal
	// volume fractions; at reproduction scale the volume-weighted
	// fraction is the scale-invariant quantity (see Stats doc).
	if f := st.ClassFraction(ClassSingleEntity); math.Abs(f-0.36) > 0.06 {
		t.Errorf("single-entity fraction = %.3f, want ≈0.36", f)
	}
	if f := st.ClassFraction(ClassEntityAttribute); math.Abs(f-0.20) > 0.08 {
		t.Errorf("entity-attribute fraction = %.3f, want ≈0.20", f)
	}
	if f := st.ClassFraction(ClassMultiEntity); f > 0.06 || f == 0 {
		t.Errorf("multi-entity fraction = %.3f, want ≈0.02", f)
	}
	if f := st.ClassFraction(ClassComplex); f > 0.05 {
		t.Errorf("complex fraction = %.3f, want <0.05", f)
	}
	if st.MovieRelated < 0.75 {
		t.Errorf("movie-related fraction = %.3f, want high (paper: ~93%%)", st.MovieRelated)
	}
	// Unique-query counts must be populated too.
	if st.ByClass[ClassSingleEntity] == 0 || st.ByClass[ClassEntityAttribute] == 0 {
		t.Error("unique-count classification empty")
	}
}

func TestContaining(t *testing.T) {
	_, l, _ := logFixture(t)
	hits := l.Containing("george clooney")
	if len(hits) == 0 {
		t.Fatal("no log entries contain george clooney")
	}
	for _, e := range hits {
		if !strings.Contains(e.Query, "george clooney") && !strings.Contains(e.Query, "clooney") {
			// The match is on token subsequence; a misspelled variant can
			// differ, but the base form should appear.
			t.Errorf("entry %q does not contain the phrase", e.Query)
		}
	}
	if got := l.Containing(""); got != nil {
		t.Error("empty phrase matched")
	}
	if got := l.Containing("zzz qqq xxx"); len(got) != 0 {
		t.Errorf("nonsense phrase matched %d entries", len(got))
	}
}

func TestContainsSubsequence(t *testing.T) {
	cases := []struct {
		hay, needle string
		want        bool
	}{
		{"a b c d", "b c", true},
		{"a b c d", "a", true},
		{"a b c d", "d", true},
		{"a b c d", "c b", false},
		{"a b", "a b c", false},
		{"a b c", "a c", false},
	}
	for _, c := range cases {
		got := containsSubsequence(strings.Fields(c.hay), strings.Fields(c.needle))
		if got != c.want {
			t.Errorf("containsSubsequence(%q, %q) = %v", c.hay, c.needle, got)
		}
	}
}

func TestTopTemplates(t *testing.T) {
	_, l, seg := logFixture(t)
	stats := TopTemplates(l, seg, 14)
	if len(stats) != 14 {
		t.Fatalf("TopTemplates returned %d", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Freq < stats[i].Freq {
			t.Fatal("templates not sorted by frequency")
		}
	}
	// Single-entity templates must dominate the head.
	head := stats[0].Template
	if head != "[person.name]" && head != "[movie.title]" {
		t.Errorf("top template = %q, expected a single-entity template", head)
	}
	// Every template's queries must be non-empty and resegment to it.
	for _, st := range stats[:5] {
		if len(st.Queries) == 0 {
			t.Fatalf("template %q has no queries", st.Template)
		}
		got := seg.Segment(st.Queries[0]).Template()
		if got != st.Template {
			t.Errorf("query %q resegments to %q, not %q", st.Queries[0], got, st.Template)
		}
	}
}

func TestBenchmarkWorkload28(t *testing.T) {
	_, l, seg := logFixture(t)
	w := BenchmarkWorkload(l, seg, 14, 2)
	if len(w) != 28 {
		t.Fatalf("workload size = %d, want 28 (the paper's 14×2)", len(w))
	}
	seen := map[string]bool{}
	for _, q := range w {
		if q == "" {
			t.Error("empty query in workload")
		}
		seen[q] = true
	}
	if len(seen) != 28 {
		t.Errorf("workload has duplicates: %d unique", len(seen))
	}
}

func TestGenerateDefaultsApplied(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 60, Movies: 50})
	l := Generate(u, GenConfig{Seed: 2})
	if l.Total != DefaultGenConfig().Volume {
		t.Errorf("default volume = %d", l.Total)
	}
}

func TestMisspell(t *testing.T) {
	// Misspelling must never panic and must change or preserve length by 1.
	r := newRand()
	for i := 0; i < 200; i++ {
		q := "george clooney"
		m := misspell(r, q)
		if d := len(m) - len(q); d < -1 || d > 1 {
			t.Fatalf("misspell length delta %d", d)
		}
	}
	if misspell(r, "ab") != "ab" {
		t.Error("short strings should pass through")
	}
}
