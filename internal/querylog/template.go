package querylog

import (
	"sort"
	"strings"

	"qunits/internal/segment"
)

// TemplateStat aggregates a typed template over the log: its total
// frequency and the unique queries instantiating it, ordered by
// frequency.
type TemplateStat struct {
	// Template is the typed form, e.g. "[person.name] movies".
	Template string
	// Freq is the total query volume matching the template.
	Freq int
	// Queries are the unique query strings, most frequent first.
	Queries []string
}

// TopTemplates extracts typed templates from the log (§5.2: tokens are
// replaced by schema types via largest-overlap segmentation) and returns
// the k most frequent, with their instantiating queries. k <= 0 returns
// all.
func TopTemplates(l *Log, seg *segment.Segmenter, k int) []TemplateStat {
	type agg struct {
		freq    int
		queries []Entry
	}
	byTemplate := make(map[string]*agg)
	for _, e := range l.Entries {
		sg := seg.Segment(e.Query)
		tpl := sg.Template()
		if tpl == "" {
			continue
		}
		a := byTemplate[tpl]
		if a == nil {
			a = &agg{}
			byTemplate[tpl] = a
		}
		a.freq += e.Freq
		a.queries = append(a.queries, e)
	}
	out := make([]TemplateStat, 0, len(byTemplate))
	for tpl, a := range byTemplate {
		sort.Slice(a.queries, func(i, j int) bool {
			if a.queries[i].Freq != a.queries[j].Freq {
				return a.queries[i].Freq > a.queries[j].Freq
			}
			return a.queries[i].Query < a.queries[j].Query
		})
		qs := make([]string, len(a.queries))
		for i, q := range a.queries {
			qs[i] = q.Query
		}
		out = append(out, TemplateStat{Template: tpl, Freq: a.freq, Queries: qs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Template < out[j].Template
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// BenchmarkWorkload builds the paper's movie querylog benchmark (§5.2):
// take the top `templates` typed templates by frequency and draw
// `perTemplate` queries from each (the paper used 14 × 2 = 28).
// Templates with fewer than perTemplate distinct instantiations (e.g.
// canned navigational queries like "imdb" that form singleton templates)
// are skipped and the next template down takes their place, so the
// workload reaches its full size whenever the log is rich enough. The
// paper picked instantiations randomly; we take the most frequent ones
// for reproducibility — the random choice only guarded against
// hand-picking bias, which a deterministic rule avoids equally well.
func BenchmarkWorkload(l *Log, seg *segment.Segmenter, templates, perTemplate int) []string {
	stats := TopTemplates(l, seg, 0)
	var out []string
	used := 0
	for _, st := range stats {
		if used == templates {
			break
		}
		if len(st.Queries) < perTemplate {
			continue
		}
		if !benchmarkTemplate(st.Template) {
			continue
		}
		out = append(out, st.Queries[:perTemplate]...)
		used++
	}
	return out
}

// benchmarkTemplate decides whether a typed template belongs in the
// benchmark: it must reference the database — either through a recognized
// entity type ("[movie.title] cast") or through aggregate structure
// ("highest box office revenue"). Pure navigational templates ("movie
// trailers") have no database answer and were implicitly absent from the
// paper's 14 (its log was filtered to queries that clicked through to
// imdb.com result pages).
func benchmarkTemplate(tpl string) bool {
	if strings.Contains(tpl, "[") {
		return true
	}
	for _, tok := range strings.Fields(tpl) {
		if aggregateTerms[tok] {
			return true
		}
	}
	return false
}
