package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchDB(persons, movies, facts int) *Database {
	r := rand.New(rand.NewSource(1))
	db := NewDatabase("bench")
	db.MustCreateTable(MustTableSchema("person", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("movie", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "title", Kind: KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("cast", []Column{
		{Name: "person_id", Kind: KindInt},
		{Name: "movie_id", Kind: KindInt},
	}, "", []ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))
	p, m, c := db.Table("person"), db.Table("movie"), db.Table("cast")
	for i := 0; i < persons; i++ {
		p.MustInsert(Row{Int(int64(i)), String(fmt.Sprintf("person %d", i))})
	}
	for i := 0; i < movies; i++ {
		m.MustInsert(Row{Int(int64(i)), String(fmt.Sprintf("movie %d", i))})
	}
	for i := 0; i < facts; i++ {
		c.MustInsert(Row{Int(int64(r.Intn(persons))), Int(int64(r.Intn(movies)))})
	}
	_ = c.CreateIndex("person_id")
	_ = c.CreateIndex("movie_id")
	return db
}

func BenchmarkInsert(b *testing.B) {
	schema := MustTableSchema("t", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "v", Kind: KindString},
	}, "id", nil)
	b.ResetTimer()
	tbl := NewTable(schema)
	for i := 0; i < b.N; i++ {
		tbl.MustInsert(Row{Int(int64(i)), String("value")})
	}
}

func BenchmarkIndexedSelect(b *testing.B) {
	db := benchDB(1000, 500, 5000)
	c := db.Table("cast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Select(Equals("person_id", Int(int64(i%1000))))
	}
}

func BenchmarkThreeWayJoin(b *testing.B) {
	db := benchDB(1000, 500, 5000)
	conds := []EquiJoinSpec{
		{Left: QualifiedColumn{"cast", "person_id"}, Right: QualifiedColumn{"person", "id"}},
		{Left: QualifiedColumn{"cast", "movie_id"}, Right: QualifiedColumn{"movie", "id"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Join([]string{"person", "cast", "movie"}, conds, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinWithPushdown(b *testing.B) {
	db := benchDB(1000, 500, 5000)
	conds := []EquiJoinSpec{
		{Left: QualifiedColumn{"cast", "person_id"}, Right: QualifiedColumn{"person", "id"}},
		{Left: QualifiedColumn{"cast", "movie_id"}, Right: QualifiedColumn{"movie", "id"}},
	}
	pre := map[string]Predicate{"movie": Equals("title", String("movie 7"))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.JoinPre([]string{"movie", "cast", "person"}, conds, pre, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFKPath(b *testing.B) {
	db := benchDB(100, 100, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if db.FKPath("person", "movie") == nil {
			b.Fatal("no path")
		}
	}
}

func BenchmarkReferencingRows(b *testing.B) {
	db := benchDB(1000, 500, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ReferencingRows("person", i%1000)
	}
}
