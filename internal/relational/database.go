package relational

import (
	"fmt"
	"sort"
)

// Database is a named collection of tables with foreign keys between
// them.
type Database struct {
	name   string
	tables map[string]*Table
	order  []string // table names in creation order, for deterministic iteration
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateTable adds a table with the given schema. Foreign keys may
// reference tables created later; they are validated by ValidateForeignKeys.
func (db *Database) CreateTable(schema *TableSchema) (*Table, error) {
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relational: database %q: table %q already exists", db.name, schema.Name)
	}
	t := NewTable(schema)
	db.tables[schema.Name] = t
	db.order = append(db.order, schema.Name)
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (db *Database) MustCreateTable(schema *TableSchema) *Table {
	t, err := db.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil when it does not exist.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// TableNames returns all table names in creation order.
func (db *Database) TableNames() []string {
	return append([]string(nil), db.order...)
}

// Tables calls fn for every table in creation order.
func (db *Database) Tables(fn func(*Table)) {
	for _, n := range db.order {
		fn(db.tables[n])
	}
}

// TotalRows returns the number of tuples across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, name := range db.order {
		n += db.tables[name].Len()
	}
	return n
}

// ValidateForeignKeys checks that every declared foreign key references an
// existing table with a primary key, and that every non-NULL foreign-key
// value resolves. It returns the first violation found, or nil.
func (db *Database) ValidateForeignKeys() error {
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.Schema().ForeignKeys {
			ref := db.tables[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("relational: %s.%s references missing table %q", name, fk.Column, fk.RefTable)
			}
			if ref.Schema().PrimaryKey == "" {
				return fmt.Errorf("relational: %s.%s references table %q which has no primary key", name, fk.Column, fk.RefTable)
			}
			ci, _ := t.Schema().ColumnIndex(fk.Column)
			var bad error
			t.Scan(func(id int, row Row) bool {
				v := row[ci]
				if v.IsNull() {
					return true
				}
				if _, ok := ref.LookupPK(v); !ok {
					bad = fmt.Errorf("relational: %s row %d: %s=%s has no match in %s",
						name, id, fk.Column, v, fk.RefTable)
					return false
				}
				return true
			})
			if bad != nil {
				return bad
			}
		}
	}
	return nil
}

// Resolve follows the foreign key on (table, column) for the given row and
// returns the referenced table name and RowID. ok is false when there is
// no such foreign key or the value is NULL/dangling.
func (db *Database) Resolve(table string, rowID int, column string) (refTable string, refRow int, ok bool) {
	t := db.tables[table]
	if t == nil {
		return "", 0, false
	}
	fk, has := t.Schema().ForeignKeyOn(column)
	if !has {
		return "", 0, false
	}
	v, vok := t.Get(rowID, column)
	if !vok || v.IsNull() {
		return "", 0, false
	}
	ref := db.tables[fk.RefTable]
	if ref == nil {
		return "", 0, false
	}
	id, found := ref.LookupPK(v)
	if !found {
		return "", 0, false
	}
	return fk.RefTable, id, true
}

// ReferencingRows returns, for the tuple (table, rowID), every tuple in
// other tables whose foreign key points at it: the inverse of Resolve.
// Results are sorted by (table, row) for determinism.
func (db *Database) ReferencingRows(table string, rowID int) []TupleRef {
	target := db.tables[table]
	if target == nil || target.Schema().PrimaryKey == "" {
		return nil
	}
	pkIdx, _ := target.Schema().ColumnIndex(target.Schema().PrimaryKey)
	pkVal := target.Row(rowID)[pkIdx]
	var out []TupleRef
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.Schema().ForeignKeys {
			if fk.RefTable != table {
				continue
			}
			ci, _ := t.Schema().ColumnIndex(fk.Column)
			if t.HasIndex(fk.Column) {
				for _, id := range t.Select(Equals(fk.Column, pkVal)) {
					out = append(out, TupleRef{Table: name, Row: id})
				}
				continue
			}
			t.Scan(func(id int, row Row) bool {
				if row[ci].Equal(pkVal) {
					out = append(out, TupleRef{Table: name, Row: id})
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Row < out[j].Row
	})
	return out
}

// TupleRef identifies a tuple anywhere in the database.
type TupleRef struct {
	Table string
	Row   int
}

// String renders table#row.
func (tr TupleRef) String() string { return fmt.Sprintf("%s#%d", tr.Table, tr.Row) }

// Label returns the human-readable label of the referenced tuple (the
// value of its schema's label column).
func (db *Database) Label(ref TupleRef) string {
	t := db.tables[ref.Table]
	if t == nil {
		return ref.String()
	}
	v, ok := t.Get(ref.Row, t.Schema().LabelColumn())
	if !ok {
		return ref.String()
	}
	return v.Render()
}

// Stats summarizes the database for display and for the queriability
// model.
type Stats struct {
	Tables     int
	Rows       int
	PerTable   map[string]int
	ForeignKys int
}

// Stats computes summary statistics.
func (db *Database) Stats() Stats {
	s := Stats{PerTable: make(map[string]int)}
	for _, name := range db.order {
		t := db.tables[name]
		s.Tables++
		s.Rows += t.Len()
		s.PerTable[name] = t.Len()
		s.ForeignKys += len(t.Schema().ForeignKeys)
	}
	return s
}
