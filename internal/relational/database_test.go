package relational

import (
	"testing"
)

// miniIMDb builds a tiny two-entity database shaped like the paper's
// Fig. 2 example for use across tests.
func miniIMDb(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("mini")
	db.MustCreateTable(MustTableSchema("person", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("movie", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "title", Kind: KindString, Searchable: true, Label: true},
		{Name: "genre_id", Kind: KindInt},
	}, "id", []ForeignKey{{Column: "genre_id", RefTable: "genre"}}))
	db.MustCreateTable(MustTableSchema("genre", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "type", Kind: KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("cast", []Column{
		{Name: "person_id", Kind: KindInt},
		{Name: "movie_id", Kind: KindInt},
		{Name: "role", Kind: KindString, Searchable: true},
	}, "", []ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))

	p := db.Table("person")
	p.MustInsert(Row{Int(1), String("george clooney")})
	p.MustInsert(Row{Int(2), String("brad pitt")})
	g := db.Table("genre")
	g.MustInsert(Row{Int(1), String("comedy")})
	g.MustInsert(Row{Int(2), String("thriller")})
	m := db.Table("movie")
	m.MustInsert(Row{Int(10), String("ocean's eleven"), Int(2)})
	m.MustInsert(Row{Int(11), String("up in the air"), Int(1)})
	c := db.Table("cast")
	c.MustInsert(Row{Int(1), Int(10), String("danny ocean")})
	c.MustInsert(Row{Int(2), Int(10), String("rusty ryan")})
	c.MustInsert(Row{Int(1), Int(11), String("ryan bingham")})
	return db
}

func TestDatabaseCreateTable(t *testing.T) {
	db := NewDatabase("d")
	if db.Name() != "d" {
		t.Errorf("Name = %q", db.Name())
	}
	s := MustTableSchema("t", []Column{{Name: "a", Kind: KindInt}}, "a", nil)
	if _, err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(s); err == nil {
		t.Error("duplicate table accepted")
	}
	if db.Table("t") == nil {
		t.Error("Table(t) nil")
	}
	if db.Table("zz") != nil {
		t.Error("Table(zz) not nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCreateTable did not panic on duplicate")
		}
	}()
	db.MustCreateTable(s)
}

func TestDatabaseIterationOrderDeterministic(t *testing.T) {
	db := miniIMDb(t)
	want := []string{"person", "movie", "genre", "cast"}
	got := db.TableNames()
	if len(got) != len(want) {
		t.Fatalf("TableNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TableNames = %v, want %v", got, want)
		}
	}
	var visited []string
	db.Tables(func(tb *Table) { visited = append(visited, tb.Schema().Name) })
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("Tables order = %v", visited)
		}
	}
}

func TestValidateForeignKeys(t *testing.T) {
	db := miniIMDb(t)
	if err := db.ValidateForeignKeys(); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}
	// Dangling reference.
	db.Table("cast").MustInsert(Row{Int(99), Int(10), String("ghost")})
	if err := db.ValidateForeignKeys(); err == nil {
		t.Error("dangling FK accepted")
	}
}

func TestValidateForeignKeysMissingTable(t *testing.T) {
	db := NewDatabase("d")
	db.MustCreateTable(MustTableSchema("a", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "b_id", Kind: KindInt},
	}, "id", []ForeignKey{{Column: "b_id", RefTable: "b"}}))
	if err := db.ValidateForeignKeys(); err == nil {
		t.Error("FK to missing table accepted")
	}
}

func TestResolve(t *testing.T) {
	db := miniIMDb(t)
	refTable, refRow, ok := db.Resolve("movie", 0, "genre_id")
	if !ok || refTable != "genre" {
		t.Fatalf("Resolve = %q, %d, %v", refTable, refRow, ok)
	}
	v, _ := db.Table("genre").Get(refRow, "type")
	if v.AsString() != "thriller" {
		t.Fatalf("resolved genre = %q", v.AsString())
	}
	if _, _, ok := db.Resolve("movie", 0, "title"); ok {
		t.Error("Resolve on non-FK column should fail")
	}
	if _, _, ok := db.Resolve("nope", 0, "x"); ok {
		t.Error("Resolve on missing table should fail")
	}
}

func TestReferencingRows(t *testing.T) {
	db := miniIMDb(t)
	refs := db.ReferencingRows("person", 0) // george clooney
	if len(refs) != 2 {
		t.Fatalf("ReferencingRows = %v, want 2 cast rows", refs)
	}
	for _, r := range refs {
		if r.Table != "cast" {
			t.Fatalf("unexpected referencing table %q", r.Table)
		}
	}
	// With an index on the FK column the result must be identical.
	if err := db.Table("cast").CreateIndex("person_id"); err != nil {
		t.Fatal(err)
	}
	refs2 := db.ReferencingRows("person", 0)
	if len(refs2) != len(refs) {
		t.Fatalf("indexed ReferencingRows = %v", refs2)
	}
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("indexed path disagrees: %v vs %v", refs, refs2)
		}
	}
}

func TestLabelAndTupleRef(t *testing.T) {
	db := miniIMDb(t)
	if got := db.Label(TupleRef{Table: "person", Row: 0}); got != "george clooney" {
		t.Errorf("Label = %q", got)
	}
	if got := db.Label(TupleRef{Table: "nope", Row: 0}); got != "nope#0" {
		t.Errorf("Label of missing table = %q", got)
	}
	if (TupleRef{Table: "a", Row: 3}).String() != "a#3" {
		t.Error("TupleRef.String format")
	}
}

func TestStats(t *testing.T) {
	db := miniIMDb(t)
	s := db.Stats()
	if s.Tables != 4 {
		t.Errorf("Tables = %d", s.Tables)
	}
	if s.Rows != db.TotalRows() {
		t.Errorf("Rows = %d, TotalRows = %d", s.Rows, db.TotalRows())
	}
	if s.PerTable["cast"] != 3 {
		t.Errorf("PerTable[cast] = %d", s.PerTable["cast"])
	}
	if s.ForeignKys != 3 {
		t.Errorf("ForeignKys = %d", s.ForeignKys)
	}
}

func TestQualifiedColumnParse(t *testing.T) {
	q, ok := ParseQualifiedColumn("person.name")
	if !ok || q.Table != "person" || q.Column != "name" {
		t.Fatalf("ParseQualifiedColumn = %v, %v", q, ok)
	}
	if q.String() != "person.name" {
		t.Errorf("String = %q", q.String())
	}
	for _, bad := range []string{"", "x", ".x", "x.", "a.b.c"} {
		if _, ok := ParseQualifiedColumn(bad); ok {
			t.Errorf("ParseQualifiedColumn(%q) accepted", bad)
		}
	}
}
