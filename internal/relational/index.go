package relational

// Index is a hash index mapping a column value to the RowIDs holding it.
// Indexes are maintained incrementally on insert.
type Index struct {
	m map[Value][]int
}

func newIndex() *Index {
	return &Index{m: make(map[Value][]int)}
}

func (ix *Index) add(v Value, id int) {
	if v.IsNull() {
		return // NULLs are never equal to anything; don't index them
	}
	ix.m[v] = append(ix.m[v], id)
}

// lookup returns the RowIDs with the given value. The returned slice is
// shared; callers must not mutate it.
func (ix *Index) lookup(v Value) []int {
	if v.IsNull() {
		return nil
	}
	return ix.m[v]
}

// Cardinality returns the number of distinct indexed values.
func (ix *Index) Cardinality() int { return len(ix.m) }
