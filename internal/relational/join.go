package relational

import (
	"fmt"
	"sort"
)

// JoinedSchema describes the output of a join: a flat list of qualified
// columns drawn from the participating tables.
type JoinedSchema struct {
	// Columns are qualified (table.column) in output order.
	Columns []QualifiedColumn

	index map[QualifiedColumn]int
}

func newJoinedSchema(cols []QualifiedColumn) *JoinedSchema {
	js := &JoinedSchema{Columns: cols, index: make(map[QualifiedColumn]int, len(cols))}
	for i, c := range cols {
		js.index[c] = i
	}
	return js
}

// ColumnIndex returns the output position of a qualified column.
func (js *JoinedSchema) ColumnIndex(q QualifiedColumn) (int, bool) {
	i, ok := js.index[q]
	return i, ok
}

// JoinedRow is one tuple of a join result, positionally matching a
// JoinedSchema. Provenance records which base tuples produced it.
type JoinedRow struct {
	Values     Row
	Provenance []TupleRef
}

// Get returns the value of the qualified column.
func (jr JoinedRow) Get(js *JoinedSchema, q QualifiedColumn) (Value, bool) {
	i, ok := js.ColumnIndex(q)
	if !ok {
		return Null(), false
	}
	return jr.Values[i], true
}

// EquiJoinSpec names one equality join condition between two tables
// already present in the join.
type EquiJoinSpec struct {
	Left  QualifiedColumn
	Right QualifiedColumn
}

// JoinResult is a materialized join output.
type JoinResult struct {
	Schema *JoinedSchema
	Rows   []JoinedRow
}

// Join computes the equi-join of the named tables under the given join
// conditions and an optional residual filter applied to joined rows. The
// join order follows the order of the tables argument: table[0] is scanned
// and each subsequent table is hash-joined in, using any condition that
// links it to the tables joined so far. Tables with no linking condition
// produce an error (no cartesian products — qunit base expressions always
// join along declared links).
func (db *Database) Join(tables []string, conds []EquiJoinSpec, filter func(*JoinedSchema, JoinedRow) bool) (*JoinResult, error) {
	return db.JoinPre(tables, conds, nil, filter)
}

// JoinPre is Join with per-table pre-filters: rows of a table failing its
// predicate never enter the join. Selection pushdown through pre-filters
// is what makes instantiating one qunit (anchor bound to a single entity)
// cheap instead of a full N-way join followed by a filter.
func (db *Database) JoinPre(tables []string, conds []EquiJoinSpec, pre map[string]Predicate, filter func(*JoinedSchema, JoinedRow) bool) (*JoinResult, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("relational: join of zero tables")
	}
	seen := make(map[string]bool, len(tables))
	for _, tn := range tables {
		if db.tables[tn] == nil {
			return nil, fmt.Errorf("relational: join references missing table %q", tn)
		}
		if seen[tn] {
			return nil, fmt.Errorf("relational: table %q appears twice in join (self-joins need aliases, which qunit base expressions do not use)", tn)
		}
		seen[tn] = true
	}

	// Build the output schema: all columns of all tables, qualified.
	var cols []QualifiedColumn
	offsets := make(map[string]int, len(tables))
	for _, tn := range tables {
		offsets[tn] = len(cols)
		for _, c := range db.tables[tn].Schema().Columns {
			cols = append(cols, QualifiedColumn{Table: tn, Column: c.Name})
		}
	}
	js := newJoinedSchema(cols)

	// Start from table[0], applying its pre-filter during the scan.
	first := db.tables[tables[0]]
	current := make([]JoinedRow, 0, first.Len())
	firstWidth := len(first.Schema().Columns)
	firstPre := pre[tables[0]]
	first.Scan(func(id int, row Row) bool {
		if firstPre != nil && !firstPre.Eval(first.Schema(), row) {
			return true
		}
		vals := make(Row, len(cols))
		copy(vals[:firstWidth], row)
		current = append(current, JoinedRow{
			Values:     vals,
			Provenance: []TupleRef{{Table: tables[0], Row: id}},
		})
		return true
	})
	joined := map[string]bool{tables[0]: true}

	for _, tn := range tables[1:] {
		// Find a condition linking tn to an already-joined table.
		var link *EquiJoinSpec
		var probeSide, buildCol QualifiedColumn
		for i := range conds {
			c := conds[i]
			switch {
			case c.Left.Table == tn && joined[c.Right.Table]:
				link, buildCol, probeSide = &conds[i], c.Left, c.Right
			case c.Right.Table == tn && joined[c.Left.Table]:
				link, buildCol, probeSide = &conds[i], c.Right, c.Left
			}
			if link != nil {
				break
			}
		}
		if link == nil {
			return nil, fmt.Errorf("relational: no join condition links table %q to the tables joined before it", tn)
		}

		t := db.tables[tn]
		bi, ok := t.Schema().ColumnIndex(buildCol.Column)
		if !ok {
			return nil, fmt.Errorf("relational: join condition references missing column %s", buildCol)
		}
		// Build hash table on the new table's join column, applying its
		// pre-filter during the scan.
		tPre := pre[tn]
		build := make(map[Value][]int)
		t.Scan(func(id int, row Row) bool {
			if tPre != nil && !tPre.Eval(t.Schema(), row) {
				return true
			}
			v := row[bi]
			if !v.IsNull() {
				build[v] = append(build[v], id)
			}
			return true
		})

		pi, ok := js.ColumnIndex(probeSide)
		if !ok {
			return nil, fmt.Errorf("relational: join condition references missing column %s", probeSide)
		}
		off := offsets[tn]
		width := len(t.Schema().Columns)
		next := make([]JoinedRow, 0, len(current))
		for _, jr := range current {
			probe := jr.Values[pi]
			if probe.IsNull() {
				continue
			}
			matches := build[probe]
			// Numeric cross-kind equality: probe again with converted kind
			// when the direct lookup misses.
			if len(matches) == 0 {
				if cv, okc := probe.ConvertTo(t.Schema().Columns[bi].Kind); okc && cv != probe {
					matches = build[cv]
				}
			}
			for _, id := range matches {
				vals := jr.Values.Clone()
				copy(vals[off:off+width], t.Row(id))
				prov := append(append([]TupleRef(nil), jr.Provenance...), TupleRef{Table: tn, Row: id})
				next = append(next, JoinedRow{Values: vals, Provenance: prov})
			}
		}
		current = next
		joined[tn] = true
	}

	// Apply remaining conditions that were not used as link conditions
	// (e.g. cycles) as residual filters.
	for _, c := range conds {
		li, lok := js.ColumnIndex(c.Left)
		ri, rok := js.ColumnIndex(c.Right)
		if !lok || !rok {
			return nil, fmt.Errorf("relational: join condition %v=%v references missing column", c.Left, c.Right)
		}
		filtered := current[:0]
		for _, jr := range current {
			if jr.Values[li].Equal(jr.Values[ri]) {
				filtered = append(filtered, jr)
			}
		}
		current = filtered
	}

	if filter != nil {
		filtered := current[:0]
		for _, jr := range current {
			if filter(js, jr) {
				filtered = append(filtered, jr)
			}
		}
		current = filtered
	}

	return &JoinResult{Schema: js, Rows: current}, nil
}

// FKPath returns a chain of foreign-key hops connecting two tables, found
// by breadth-first search over the schema graph (both FK directions). It
// returns nil when the tables are not connected. Used by derivation to
// build join plans from recognized entities.
func (db *Database) FKPath(from, to string) []EquiJoinSpec {
	if from == to {
		return []EquiJoinSpec{}
	}
	type edge struct {
		next string
		spec EquiJoinSpec
	}
	adj := make(map[string][]edge)
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.Schema().ForeignKeys {
			ref := db.tables[fk.RefTable]
			if ref == nil || ref.Schema().PrimaryKey == "" {
				continue
			}
			spec := EquiJoinSpec{
				Left:  QualifiedColumn{Table: name, Column: fk.Column},
				Right: QualifiedColumn{Table: fk.RefTable, Column: ref.Schema().PrimaryKey},
			}
			adj[name] = append(adj[name], edge{next: fk.RefTable, spec: spec})
			adj[fk.RefTable] = append(adj[fk.RefTable], edge{next: name, spec: spec})
		}
	}
	// Deterministic neighbor order.
	for k := range adj {
		es := adj[k]
		sort.Slice(es, func(i, j int) bool { return es[i].next < es[j].next })
	}
	type state struct {
		table string
		path  []EquiJoinSpec
	}
	visited := map[string]bool{from: true}
	queue := []state{{table: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.table] {
			if visited[e.next] {
				continue
			}
			path := append(append([]EquiJoinSpec(nil), cur.path...), e.spec)
			if e.next == to {
				return path
			}
			visited[e.next] = true
			queue = append(queue, state{table: e.next, path: path})
		}
	}
	return nil
}

// TablesOnPath lists the distinct tables touched by a join path, in first-
// appearance order starting from the given root.
func TablesOnPath(root string, path []EquiJoinSpec) []string {
	out := []string{root}
	seen := map[string]bool{root: true}
	for _, s := range path {
		for _, tn := range []string{s.Left.Table, s.Right.Table} {
			if !seen[tn] {
				seen[tn] = true
				out = append(out, tn)
			}
		}
	}
	return out
}
