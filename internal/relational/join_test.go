package relational

import (
	"math/rand"
	"testing"
)

func TestJoinTwoTables(t *testing.T) {
	db := miniIMDb(t)
	res, err := db.Join(
		[]string{"person", "cast"},
		[]EquiJoinSpec{{
			Left:  QualifiedColumn{"cast", "person_id"},
			Right: QualifiedColumn{"person", "id"},
		}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d, want 3", len(res.Rows))
	}
	nameCol := QualifiedColumn{"person", "name"}
	count := map[string]int{}
	for _, r := range res.Rows {
		v, ok := r.Get(res.Schema, nameCol)
		if !ok {
			t.Fatal("missing person.name in join schema")
		}
		count[v.AsString()]++
	}
	if count["george clooney"] != 2 || count["brad pitt"] != 1 {
		t.Fatalf("join distribution = %v", count)
	}
}

func TestJoinThreeTablesCastChain(t *testing.T) {
	db := miniIMDb(t)
	// The paper's running example: person ⋈ cast ⋈ movie.
	res, err := db.Join(
		[]string{"person", "cast", "movie"},
		[]EquiJoinSpec{
			{Left: QualifiedColumn{"cast", "person_id"}, Right: QualifiedColumn{"person", "id"}},
			{Left: QualifiedColumn{"cast", "movie_id"}, Right: QualifiedColumn{"movie", "id"}},
		},
		func(js *JoinedSchema, jr JoinedRow) bool {
			v, _ := jr.Get(js, QualifiedColumn{"person", "name"})
			return v.AsString() == "george clooney"
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("george clooney movies = %d, want 2", len(res.Rows))
	}
	titles := map[string]bool{}
	for _, r := range res.Rows {
		v, _ := r.Get(res.Schema, QualifiedColumn{"movie", "title"})
		titles[v.AsString()] = true
		if len(r.Provenance) != 3 {
			t.Fatalf("provenance = %v, want 3 tuples", r.Provenance)
		}
	}
	if !titles["ocean's eleven"] || !titles["up in the air"] {
		t.Fatalf("titles = %v", titles)
	}
}

func TestJoinErrors(t *testing.T) {
	db := miniIMDb(t)
	if _, err := db.Join(nil, nil, nil); err == nil {
		t.Error("empty join accepted")
	}
	if _, err := db.Join([]string{"nope"}, nil, nil); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.Join([]string{"person", "person"}, nil, nil); err == nil {
		t.Error("self join accepted")
	}
	// No linking condition → no cartesian product.
	if _, err := db.Join([]string{"person", "movie"}, nil, nil); err == nil {
		t.Error("cartesian product accepted")
	}
	// Condition referencing a bogus column.
	_, err := db.Join([]string{"person", "cast"}, []EquiJoinSpec{{
		Left:  QualifiedColumn{"cast", "bogus"},
		Right: QualifiedColumn{"person", "id"},
	}}, nil)
	if err == nil {
		t.Error("bogus join column accepted")
	}
}

func TestJoinSingleTable(t *testing.T) {
	db := miniIMDb(t)
	res, err := db.Join([]string{"movie"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Schema.Columns) != 3 {
		t.Fatalf("columns = %v", res.Schema.Columns)
	}
}

func TestFKPath(t *testing.T) {
	db := miniIMDb(t)
	path := db.FKPath("person", "movie")
	if path == nil {
		t.Fatal("no path person→movie")
	}
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2 hops via cast: %v", len(path), path)
	}
	tables := TablesOnPath("person", path)
	if len(tables) != 3 {
		t.Fatalf("tables on path = %v", tables)
	}
	// The path must be executable.
	res, err := db.Join(tables, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("join along FKPath rows = %d", len(res.Rows))
	}
	if got := db.FKPath("person", "person"); got == nil || len(got) != 0 {
		t.Errorf("self path = %v", got)
	}
	// genre is reachable from person via movie.
	if p := db.FKPath("person", "genre"); p == nil || len(p) != 3 {
		t.Errorf("person→genre path = %v", p)
	}
}

func TestFKPathDisconnected(t *testing.T) {
	db := NewDatabase("d")
	db.MustCreateTable(MustTableSchema("a", []Column{{Name: "id", Kind: KindInt}}, "id", nil))
	db.MustCreateTable(MustTableSchema("b", []Column{{Name: "id", Kind: KindInt}}, "id", nil))
	if db.FKPath("a", "b") != nil {
		t.Error("disconnected tables should have no path")
	}
}

// Property: hash join output equals nested-loop join output on random
// data.
func TestJoinMatchesNestedLoopProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	db := NewDatabase("p")
	db.MustCreateTable(MustTableSchema("l", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "k", Kind: KindInt},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("r", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "k", Kind: KindInt},
	}, "id", nil))
	lt, rt := db.Table("l"), db.Table("r")
	for i := 0; i < 80; i++ {
		lt.MustInsert(Row{Int(int64(i)), Int(int64(r.Intn(10)))})
	}
	for i := 0; i < 60; i++ {
		rt.MustInsert(Row{Int(int64(i)), Int(int64(r.Intn(10)))})
	}
	res, err := db.Join([]string{"l", "r"}, []EquiJoinSpec{{
		Left:  QualifiedColumn{"l", "k"},
		Right: QualifiedColumn{"r", "k"},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nested loop reference.
	want := 0
	lt.Scan(func(_ int, lr Row) bool {
		rt.Scan(func(_ int, rr Row) bool {
			if lr[1].Equal(rr[1]) {
				want++
			}
			return true
		})
		return true
	})
	if len(res.Rows) != want {
		t.Fatalf("hash join %d rows, nested loop %d", len(res.Rows), want)
	}
	// Every output row must actually satisfy the condition.
	ki, _ := res.Schema.ColumnIndex(QualifiedColumn{"l", "k"})
	kj, _ := res.Schema.ColumnIndex(QualifiedColumn{"r", "k"})
	for _, jr := range res.Rows {
		if !jr.Values[ki].Equal(jr.Values[kj]) {
			t.Fatal("join emitted non-matching row")
		}
	}
}
