package relational

import (
	"math/rand"
	"testing"
)

// Property: JoinPre with pre-filters produces exactly the rows Join
// produces with the same predicates applied afterwards — selection
// pushdown must be semantically invisible.
func TestJoinPreEquivalentToPostFilter(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	db := NewDatabase("p")
	db.MustCreateTable(MustTableSchema("l", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "k", Kind: KindInt},
		{Name: "tag", Kind: KindInt},
	}, "id", nil))
	db.MustCreateTable(MustTableSchema("r", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "k", Kind: KindInt},
		{Name: "tag", Kind: KindInt},
	}, "id", nil))
	lt, rt := db.Table("l"), db.Table("r")
	for i := 0; i < 120; i++ {
		lt.MustInsert(Row{Int(int64(i)), Int(int64(r.Intn(8))), Int(int64(r.Intn(4)))})
	}
	for i := 0; i < 90; i++ {
		rt.MustInsert(Row{Int(int64(i)), Int(int64(r.Intn(8))), Int(int64(r.Intn(4)))})
	}
	conds := []EquiJoinSpec{{
		Left:  QualifiedColumn{"l", "k"},
		Right: QualifiedColumn{"r", "k"},
	}}

	for tag := int64(0); tag < 4; tag++ {
		pre := map[string]Predicate{
			"l": Equals("tag", Int(tag)),
			"r": Equals("tag", Int(tag)),
		}
		pushed, err := db.JoinPre([]string{"l", "r"}, conds, pre, nil)
		if err != nil {
			t.Fatal(err)
		}
		lTag, _ := pushed.Schema.ColumnIndex(QualifiedColumn{"l", "tag"})
		rTag, _ := pushed.Schema.ColumnIndex(QualifiedColumn{"r", "tag"})

		post, err := db.Join([]string{"l", "r"}, conds, func(js *JoinedSchema, jr JoinedRow) bool {
			li, _ := js.ColumnIndex(QualifiedColumn{"l", "tag"})
			ri, _ := js.ColumnIndex(QualifiedColumn{"r", "tag"})
			return jr.Values[li].Equal(Int(tag)) && jr.Values[ri].Equal(Int(tag))
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pushed.Rows) != len(post.Rows) {
			t.Fatalf("tag %d: pushed %d rows, post-filtered %d", tag, len(pushed.Rows), len(post.Rows))
		}
		for _, row := range pushed.Rows {
			if !row.Values[lTag].Equal(Int(tag)) || !row.Values[rTag].Equal(Int(tag)) {
				t.Fatal("pushed row violates predicate")
			}
		}
	}
}

func TestJoinPreOnFirstTableOnly(t *testing.T) {
	db := NewDatabase("p")
	db.MustCreateTable(MustTableSchema("a", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "v", Kind: KindString},
	}, "id", nil))
	a := db.Table("a")
	a.MustInsert(Row{Int(1), String("keep")})
	a.MustInsert(Row{Int(2), String("drop")})
	res, err := db.JoinPre([]string{"a"}, nil, map[string]Predicate{"a": Equals("v", String("keep"))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestPredicateFunc(t *testing.T) {
	s := MustTableSchema("t", []Column{{Name: "n", Kind: KindInt}}, "", nil)
	p := Func(func(ts *TableSchema, r Row) bool { return r[0].AsInt() > 5 })
	if !p.Eval(s, Row{Int(7)}) || p.Eval(s, Row{Int(3)}) {
		t.Error("Func predicate broken")
	}
}
