package relational

import "strings"

// Predicate is a boolean condition over a single row of a known schema.
type Predicate interface {
	// Eval reports whether the row satisfies the predicate.
	Eval(schema *TableSchema, row Row) bool
}

type equalsPred struct {
	col string
	val Value
}

func (p equalsPred) Eval(s *TableSchema, r Row) bool {
	i, ok := s.ColumnIndex(p.col)
	if !ok {
		return false
	}
	return r[i].Equal(p.val)
}

// Equals matches rows where the named column equals the value.
func Equals(col string, val Value) Predicate { return equalsPred{col: col, val: val} }

type comparePred struct {
	col  string
	val  Value
	want func(int) bool
}

func (p comparePred) Eval(s *TableSchema, r Row) bool {
	i, ok := s.ColumnIndex(p.col)
	if !ok || r[i].IsNull() || p.val.IsNull() {
		return false
	}
	return p.want(r[i].Compare(p.val))
}

// LessThan matches rows where the column is strictly less than the value.
func LessThan(col string, val Value) Predicate {
	return comparePred{col, val, func(c int) bool { return c < 0 }}
}

// GreaterThan matches rows where the column is strictly greater than the
// value.
func GreaterThan(col string, val Value) Predicate {
	return comparePred{col, val, func(c int) bool { return c > 0 }}
}

// AtLeast matches rows where the column is greater than or equal to the
// value.
func AtLeast(col string, val Value) Predicate {
	return comparePred{col, val, func(c int) bool { return c >= 0 }}
}

// AtMost matches rows where the column is less than or equal to the value.
func AtMost(col string, val Value) Predicate {
	return comparePred{col, val, func(c int) bool { return c <= 0 }}
}

type containsPred struct {
	col    string
	needle string
}

func (p containsPred) Eval(s *TableSchema, r Row) bool {
	i, ok := s.ColumnIndex(p.col)
	if !ok || r[i].Kind() != KindString {
		return false
	}
	return strings.Contains(strings.ToLower(r[i].AsString()), p.needle)
}

// Contains matches rows whose TEXT column contains the substring,
// case-insensitively.
func Contains(col, needle string) Predicate {
	return containsPred{col: col, needle: strings.ToLower(needle)}
}

type andPred []Predicate

func (ps andPred) Eval(s *TableSchema, r Row) bool {
	for _, p := range ps {
		if !p.Eval(s, r) {
			return false
		}
	}
	return true
}

// And matches rows satisfying every sub-predicate. And() with no arguments
// matches everything.
func And(ps ...Predicate) Predicate { return andPred(ps) }

type orPred []Predicate

func (ps orPred) Eval(s *TableSchema, r Row) bool {
	for _, p := range ps {
		if p.Eval(s, r) {
			return true
		}
	}
	return false
}

// Or matches rows satisfying at least one sub-predicate. Or() with no
// arguments matches nothing.
func Or(ps ...Predicate) Predicate { return orPred(ps) }

type notPred struct{ p Predicate }

func (n notPred) Eval(s *TableSchema, r Row) bool { return !n.p.Eval(s, r) }

// Not inverts a predicate.
func Not(p Predicate) Predicate { return notPred{p} }

type truePred struct{}

func (truePred) Eval(*TableSchema, Row) bool { return true }

// All matches every row.
func All() Predicate { return truePred{} }

// Func adapts a plain function to the Predicate interface.
type Func func(*TableSchema, Row) bool

// Eval implements Predicate.
func (f Func) Eval(s *TableSchema, r Row) bool { return f(s, r) }
