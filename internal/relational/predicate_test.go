package relational

import "testing"

func predSchema() *TableSchema {
	return MustTableSchema("t", []Column{
		{Name: "n", Kind: KindInt},
		{Name: "s", Kind: KindString},
	}, "", nil)
}

func TestPredicates(t *testing.T) {
	s := predSchema()
	row := Row{Int(5), String("Hello World")}

	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"equals hit", Equals("n", Int(5)), true},
		{"equals miss", Equals("n", Int(6)), false},
		{"equals missing col", Equals("zz", Int(5)), false},
		{"less than", LessThan("n", Int(6)), true},
		{"less than equal", LessThan("n", Int(5)), false},
		{"greater than", GreaterThan("n", Int(4)), true},
		{"at least", AtLeast("n", Int(5)), true},
		{"at most", AtMost("n", Int(5)), true},
		{"at most miss", AtMost("n", Int(4)), false},
		{"contains", Contains("s", "world"), true},
		{"contains case", Contains("s", "WORLD"), true},
		{"contains miss", Contains("s", "mars"), false},
		{"contains non-string", Contains("n", "5"), false},
		{"and", And(Equals("n", Int(5)), Contains("s", "hello")), true},
		{"and short", And(Equals("n", Int(9)), Contains("s", "hello")), false},
		{"and empty", And(), true},
		{"or", Or(Equals("n", Int(9)), Contains("s", "hello")), true},
		{"or empty", Or(), false},
		{"not", Not(Equals("n", Int(9))), true},
		{"all", All(), true},
		{"compare null", LessThan("n", Null()), false},
	}
	for _, c := range cases {
		if got := c.p.Eval(s, row); got != c.want {
			t.Errorf("%s: Eval = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPredicateNullRow(t *testing.T) {
	s := predSchema()
	row := Row{Null(), Null()}
	if Equals("n", Int(0)).Eval(s, row) {
		t.Error("NULL should not equal 0")
	}
	if LessThan("n", Int(10)).Eval(s, row) {
		t.Error("NULL comparison should be false")
	}
}
