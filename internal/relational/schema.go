package relational

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the attribute name, unique within the table.
	Name string
	// Kind is the declared type; inserts are checked against it.
	Kind Kind
	// Searchable marks text columns whose content should participate in
	// keyword matching (entity dictionaries, inverted indexes). Internal
	// surrogate keys are not searchable — the paper's point that "internal
	// id fields are never really meant for search".
	Searchable bool
	// Label marks the column that best names a tuple of this table for
	// human display (e.g. person.name, movie.title).
	Label bool
}

// ForeignKey declares that Column in this table references the primary key
// of RefTable.
type ForeignKey struct {
	// Column is the referencing column in the declaring table.
	Column string
	// RefTable is the referenced table name.
	RefTable string
}

// TableSchema describes the shape of one table.
type TableSchema struct {
	// Name is the table name, unique within the database.
	Name string
	// Columns in declaration order.
	Columns []Column
	// PrimaryKey is the name of the single-column primary key, or empty
	// for tables without one (pure fact tables).
	PrimaryKey string
	// ForeignKeys declared on this table.
	ForeignKeys []ForeignKey
	// Entity marks tables the designer considers conceptual entities
	// (person, movie) as opposed to relationship/fact tables (cast) or
	// normalization tables (genre strings). Derivation strategies may use
	// this as a hint but do not require it.
	Entity bool

	colIndex map[string]int
}

// NewTableSchema builds a schema and validates it: non-empty name, unique
// column names, and a primary key (if declared) that names a real column.
func NewTableSchema(name string, cols []Column, primaryKey string, fks []ForeignKey) (*TableSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("relational: table schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relational: table %q needs at least one column", name)
	}
	ts := &TableSchema{
		Name:        name,
		Columns:     append([]Column(nil), cols...),
		PrimaryKey:  primaryKey,
		ForeignKeys: append([]ForeignKey(nil), fks...),
		colIndex:    make(map[string]int, len(cols)),
	}
	for i, c := range ts.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: table %q: column %d has no name", name, i)
		}
		if _, dup := ts.colIndex[c.Name]; dup {
			return nil, fmt.Errorf("relational: table %q: duplicate column %q", name, c.Name)
		}
		ts.colIndex[c.Name] = i
	}
	if primaryKey != "" {
		if _, ok := ts.colIndex[primaryKey]; !ok {
			return nil, fmt.Errorf("relational: table %q: primary key %q is not a column", name, primaryKey)
		}
	}
	for _, fk := range ts.ForeignKeys {
		if _, ok := ts.colIndex[fk.Column]; !ok {
			return nil, fmt.Errorf("relational: table %q: foreign key column %q is not a column", name, fk.Column)
		}
	}
	return ts, nil
}

// MustTableSchema is NewTableSchema that panics on error; for statically
// known schemas (package-level fixtures, generators).
func MustTableSchema(name string, cols []Column, primaryKey string, fks []ForeignKey) *TableSchema {
	ts, err := NewTableSchema(name, cols, primaryKey, fks)
	if err != nil {
		panic(err)
	}
	return ts
}

// ColumnIndex returns the position of the named column and whether it
// exists.
func (ts *TableSchema) ColumnIndex(name string) (int, bool) {
	i, ok := ts.colIndex[name]
	return i, ok
}

// Column returns the column descriptor by name.
func (ts *TableSchema) Column(name string) (Column, bool) {
	i, ok := ts.colIndex[name]
	if !ok {
		return Column{}, false
	}
	return ts.Columns[i], true
}

// ColumnNames returns the column names in declaration order.
func (ts *TableSchema) ColumnNames() []string {
	out := make([]string, len(ts.Columns))
	for i, c := range ts.Columns {
		out[i] = c.Name
	}
	return out
}

// LabelColumn returns the name of the column marked Label, or the primary
// key if none is marked, or the first column as a last resort.
func (ts *TableSchema) LabelColumn() string {
	for _, c := range ts.Columns {
		if c.Label {
			return c.Name
		}
	}
	if ts.PrimaryKey != "" {
		return ts.PrimaryKey
	}
	return ts.Columns[0].Name
}

// ForeignKeyOn returns the foreign key declared on the given column, if
// any.
func (ts *TableSchema) ForeignKeyOn(col string) (ForeignKey, bool) {
	for _, fk := range ts.ForeignKeys {
		if fk.Column == col {
			return fk, true
		}
	}
	return ForeignKey{}, false
}

// String renders the schema in a compact CREATE TABLE-like form.
func (ts *TableSchema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE %s (", ts.Name)
	for i, c := range ts.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
		if c.Name == ts.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if fk, ok := ts.ForeignKeyOn(c.Name); ok {
			fmt.Fprintf(&b, " REFERENCES %s", fk.RefTable)
		}
	}
	b.WriteString(")")
	return b.String()
}

// QualifiedColumn names a column within a table, e.g. person.name.
type QualifiedColumn struct {
	Table  string
	Column string
}

// String renders table.column.
func (q QualifiedColumn) String() string { return q.Table + "." + q.Column }

// ParseQualifiedColumn splits "table.column"; it returns ok=false when the
// input does not have exactly one dot.
func ParseQualifiedColumn(s string) (QualifiedColumn, bool) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i >= len(s)-1 || strings.IndexByte(s[i+1:], '.') >= 0 {
		return QualifiedColumn{}, false
	}
	return QualifiedColumn{Table: s[:i], Column: s[i+1:]}, true
}
