package relational

import (
	"fmt"
	"sort"
)

// Table is an in-memory relation: a schema plus a slice of rows. Rows are
// identified by their stable integer position (RowID); deletion is not
// supported, which keeps RowIDs stable for the lifetime of the database —
// the higher layers (data graph, XML tree, qunit instances) rely on that.
type Table struct {
	schema  *TableSchema
	rows    []Row
	pk      map[Value]int     // primary-key value -> row index
	indexes map[string]*Index // secondary hash indexes by column name
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *TableSchema) *Table {
	t := &Table{
		schema:  schema,
		indexes: make(map[string]*Index),
	}
	if schema.PrimaryKey != "" {
		t.pk = make(map[Value]int)
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *TableSchema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row after checking arity, declared column kinds
// (coercing when a lossless conversion exists), and primary-key
// uniqueness. It returns the new row's RowID.
func (t *Table) Insert(row Row) (int, error) {
	if len(row) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relational: table %q: insert arity %d, want %d",
			t.schema.Name, len(row), len(t.schema.Columns))
	}
	stored := make(Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			stored[i] = v
			continue
		}
		if v.Kind() == t.schema.Columns[i].Kind {
			stored[i] = v
			continue
		}
		cv, ok := v.ConvertTo(t.schema.Columns[i].Kind)
		if !ok {
			return 0, fmt.Errorf("relational: table %q: column %q: cannot store %s as %s",
				t.schema.Name, t.schema.Columns[i].Name, v.Kind(), t.schema.Columns[i].Kind)
		}
		stored[i] = cv
	}
	if t.pk != nil {
		pkIdx, _ := t.schema.ColumnIndex(t.schema.PrimaryKey)
		key := stored[pkIdx]
		if key.IsNull() {
			return 0, fmt.Errorf("relational: table %q: NULL primary key", t.schema.Name)
		}
		if _, dup := t.pk[key]; dup {
			return 0, fmt.Errorf("relational: table %q: duplicate primary key %s", t.schema.Name, key)
		}
		t.pk[key] = len(t.rows)
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	for col, idx := range t.indexes {
		ci, _ := t.schema.ColumnIndex(col)
		idx.add(stored[ci], id)
	}
	return id, nil
}

// MustInsert is Insert that panics on error; for generators and tests.
func (t *Table) MustInsert(row Row) int {
	id, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the row at the given RowID. It returns nil when the id is
// out of range.
func (t *Table) Row(id int) Row {
	if id < 0 || id >= len(t.rows) {
		return nil
	}
	return t.rows[id]
}

// Get returns the value of the named column in the given row.
func (t *Table) Get(id int, col string) (Value, bool) {
	r := t.Row(id)
	if r == nil {
		return Null(), false
	}
	ci, ok := t.schema.ColumnIndex(col)
	if !ok {
		return Null(), false
	}
	return r[ci], true
}

// LookupPK returns the RowID holding the given primary-key value.
func (t *Table) LookupPK(key Value) (int, bool) {
	if t.pk == nil {
		return 0, false
	}
	// Primary keys are stored post-coercion; coerce the probe the same way.
	pkIdx, _ := t.schema.ColumnIndex(t.schema.PrimaryKey)
	if cv, ok := key.ConvertTo(t.schema.Columns[pkIdx].Kind); ok {
		key = cv
	}
	id, ok := t.pk[key]
	return id, ok
}

// Scan calls fn for every row, in RowID order, until fn returns false.
func (t *Table) Scan(fn func(id int, row Row) bool) {
	for i, r := range t.rows {
		if !fn(i, r) {
			return
		}
	}
}

// Select returns the RowIDs of all rows satisfying the predicate, in RowID
// order. When an equality predicate on an indexed column is detected the
// index is used instead of a scan.
func (t *Table) Select(p Predicate) []int {
	if eq, ok := p.(equalsPred); ok {
		if idx, has := t.indexes[eq.col]; has {
			ids := append([]int(nil), idx.lookup(eq.val)...)
			sort.Ints(ids)
			return ids
		}
		if t.schema.PrimaryKey == eq.col && t.pk != nil {
			if id, ok := t.LookupPK(eq.val); ok {
				return []int{id}
			}
			return nil
		}
	}
	var out []int
	for i, r := range t.rows {
		if p.Eval(t.schema, r) {
			out = append(out, i)
		}
	}
	return out
}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(col string) error {
	ci, ok := t.schema.ColumnIndex(col)
	if !ok {
		return fmt.Errorf("relational: table %q: no column %q to index", t.schema.Name, col)
	}
	if _, exists := t.indexes[col]; exists {
		return nil
	}
	idx := newIndex()
	for id, r := range t.rows {
		idx.add(r[ci], id)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether the named column has a secondary index.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.indexes[col]
	return ok
}

// DistinctCount returns the number of distinct non-NULL values in the
// named column. Used by the queriability model in derivation.
func (t *Table) DistinctCount(col string) int {
	ci, ok := t.schema.ColumnIndex(col)
	if !ok {
		return 0
	}
	seen := make(map[Value]struct{})
	for _, r := range t.rows {
		if !r[ci].IsNull() {
			seen[r[ci]] = struct{}{}
		}
	}
	return len(seen)
}
