package relational

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func personSchema(t *testing.T) *TableSchema {
	t.Helper()
	ts, err := NewTableSchema("person",
		[]Column{
			{Name: "id", Kind: KindInt},
			{Name: "name", Kind: KindString, Searchable: true, Label: true},
			{Name: "birthdate", Kind: KindString},
			{Name: "gender", Kind: KindString},
		}, "id", nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestNewTableSchemaValidation(t *testing.T) {
	if _, err := NewTableSchema("", []Column{{Name: "a", Kind: KindInt}}, "", nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTableSchema("t", nil, "", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}, "", nil); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Kind: KindInt}}, "zzz", nil); err == nil {
		t.Error("bogus primary key accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "a", Kind: KindInt}}, "", []ForeignKey{{Column: "nope", RefTable: "x"}}); err == nil {
		t.Error("bogus foreign key column accepted")
	}
	if _, err := NewTableSchema("t", []Column{{Name: "", Kind: KindInt}}, "", nil); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestMustTableSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTableSchema did not panic on invalid schema")
		}
	}()
	MustTableSchema("", nil, "", nil)
}

func TestTableInsertAndGet(t *testing.T) {
	tbl := NewTable(personSchema(t))
	id, err := tbl.Insert(Row{Int(1), String("george clooney"), String("1961-05-06"), String("m")})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first RowID = %d", id)
	}
	v, ok := tbl.Get(id, "name")
	if !ok || v.AsString() != "george clooney" {
		t.Fatalf("Get(name) = %v, %v", v, ok)
	}
	if _, ok := tbl.Get(id, "missing"); ok {
		t.Error("Get on missing column should fail")
	}
	if _, ok := tbl.Get(99, "name"); ok {
		t.Error("Get on missing row should fail")
	}
	if tbl.Row(-1) != nil {
		t.Error("negative RowID should return nil")
	}
}

func TestTableInsertChecksArity(t *testing.T) {
	tbl := NewTable(personSchema(t))
	if _, err := tbl.Insert(Row{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestTableInsertCoercesKinds(t *testing.T) {
	tbl := NewTable(personSchema(t))
	// id arrives as string; should be coerced to INTEGER.
	id, err := tbl.Insert(Row{String("7"), String("x"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tbl.Get(id, "id")
	if v.Kind() != KindInt || v.AsInt() != 7 {
		t.Fatalf("coerced id = %v", v)
	}
	if _, err := tbl.Insert(Row{String("not a number"), String("x"), Null(), Null()}); err == nil {
		t.Error("uncoercible value accepted")
	}
}

func TestTablePrimaryKeyEnforcement(t *testing.T) {
	tbl := NewTable(personSchema(t))
	tbl.MustInsert(Row{Int(1), String("a"), Null(), Null()})
	if _, err := tbl.Insert(Row{Int(1), String("b"), Null(), Null()}); err == nil {
		t.Error("duplicate PK accepted")
	}
	if _, err := tbl.Insert(Row{Null(), String("c"), Null(), Null()}); err == nil {
		t.Error("NULL PK accepted")
	}
	id, ok := tbl.LookupPK(Int(1))
	if !ok || id != 0 {
		t.Fatalf("LookupPK = %d, %v", id, ok)
	}
	// Cross-kind PK probe: string "1" should find int 1 after coercion.
	if _, ok := tbl.LookupPK(String("1")); !ok {
		t.Error("LookupPK should coerce probe kind")
	}
	if _, ok := tbl.LookupPK(Int(2)); ok {
		t.Error("LookupPK found missing key")
	}
}

func TestMustInsertPanics(t *testing.T) {
	tbl := NewTable(personSchema(t))
	defer func() {
		if recover() == nil {
			t.Error("MustInsert did not panic")
		}
	}()
	tbl.MustInsert(Row{Int(1)})
}

func TestTableSelectWithAndWithoutIndex(t *testing.T) {
	tbl := NewTable(personSchema(t))
	for i := 0; i < 100; i++ {
		g := "m"
		if i%3 == 0 {
			g = "f"
		}
		tbl.MustInsert(Row{Int(int64(i)), String(fmt.Sprintf("p%d", i)), Null(), String(g)})
	}
	scan := tbl.Select(Equals("gender", String("f")))
	if err := tbl.CreateIndex("gender"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex("gender") {
		t.Error("HasIndex false after CreateIndex")
	}
	indexed := tbl.Select(Equals("gender", String("f")))
	if !equalInts(scan, indexed) {
		t.Fatalf("index path disagrees with scan: %v vs %v", scan, indexed)
	}
	if len(scan) != 34 {
		t.Fatalf("expected 34 f rows, got %d", len(scan))
	}
	// PK fast path.
	got := tbl.Select(Equals("id", Int(42)))
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("PK select = %v", got)
	}
	if got := tbl.Select(Equals("id", Int(1000))); len(got) != 0 {
		t.Fatalf("PK select of missing key = %v", got)
	}
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := tbl.CreateIndex("gender"); err != nil {
		t.Errorf("re-creating index should be a no-op, got %v", err)
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tbl := NewTable(personSchema(t))
	for i := 0; i < 10; i++ {
		tbl.MustInsert(Row{Int(int64(i)), String("x"), Null(), Null()})
	}
	n := 0
	tbl.Scan(func(id int, row Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scan visited %d rows, want 3", n)
	}
}

func TestTableDistinctCount(t *testing.T) {
	tbl := NewTable(personSchema(t))
	tbl.MustInsert(Row{Int(1), String("a"), Null(), String("m")})
	tbl.MustInsert(Row{Int(2), String("b"), Null(), String("m")})
	tbl.MustInsert(Row{Int(3), String("c"), Null(), String("f")})
	tbl.MustInsert(Row{Int(4), String("d"), Null(), Null()})
	if got := tbl.DistinctCount("gender"); got != 2 {
		t.Fatalf("DistinctCount(gender) = %d, want 2 (NULL excluded)", got)
	}
	if got := tbl.DistinctCount("missing"); got != 0 {
		t.Fatalf("DistinctCount(missing) = %d", got)
	}
}

// Property: after inserting random rows, Select on an indexed column
// returns exactly the rows a full scan returns, for every probe value.
func TestIndexMatchesScanProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	schema := MustTableSchema("t", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "v", Kind: KindInt},
	}, "id", nil)
	tbl := NewTable(schema)
	if err := tbl.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tbl.MustInsert(Row{Int(int64(i)), Int(int64(r.Intn(20)))})
	}
	for probe := int64(-1); probe <= 20; probe++ {
		viaIndex := tbl.Select(Equals("v", Int(probe)))
		var viaScan []int
		tbl.Scan(func(id int, row Row) bool {
			if row[1].Equal(Int(probe)) {
				viaScan = append(viaScan, id)
			}
			return true
		})
		if !equalInts(viaIndex, viaScan) {
			t.Fatalf("probe %d: index %v scan %v", probe, viaIndex, viaScan)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]int(nil), a...)
	bc := append([]int(nil), b...)
	sort.Ints(ac)
	sort.Ints(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}
