// Package relational implements a small in-memory relational database
// engine: typed values, schemas with primary and foreign keys, tables with
// hash indexes, predicate evaluation, and equi-joins.
//
// It is the storage substrate for the qunits reproduction. Base data (the
// synthetic IMDb, the university example, test fixtures) lives in
// relational tables; every higher layer — the qunit definition language,
// the data graph used by BANKS, the XML tree used by the LCA/MLCA
// baselines, and the derivation strategies — is built on top of this
// package.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that a zero
// Value is a well-formed NULL.
const (
	KindNull Kind = iota
	KindInt
	KindString
	KindFloat
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindString:
		return "TEXT"
	case KindFloat:
		return "REAL"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed database value. The zero Value is NULL.
// Value is a comparable struct, so it can be used directly as a map key
// (for hash indexes and join tables).
type Value struct {
	kind Kind
	i    int64
	s    string
	f    float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a TEXT value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Float returns a REAL value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool, i: 0}
}

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only for KindInt and
// KindBool values; other kinds return 0.
func (v Value) AsInt() int64 {
	if v.kind == KindInt || v.kind == KindBool {
		return v.i
	}
	return 0
}

// AsString returns the string payload for KindString, or a rendered form
// for every other kind (so it is always safe to call for display).
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.Render()
}

// AsFloat returns the numeric payload widened to float64. Valid for
// KindFloat and KindInt; other kinds return 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	return 0
}

// AsBool returns the boolean payload. Valid only for KindBool.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// Render formats the value for human display. NULL renders as the empty
// string, which is what the conversion-expression templates want.
func (v Value) Render() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// String implements fmt.Stringer; quoted form for TEXT so that values are
// unambiguous in debug output.
func (v Value) String() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	if v.kind == KindNull {
		return "NULL"
	}
	return v.Render()
}

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL, matching SQL three-valued-logic's practical effect on
// equality predicates. Numeric kinds compare across Int/Float.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind == o.kind {
		return v == o
	}
	if isNumeric(v.kind) && isNumeric(o.kind) {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two non-NULL values of comparable kinds. It returns a
// negative number if v < o, zero if equal, positive if v > o. NULL sorts
// before everything; mixed non-numeric kinds order by kind tag so that
// Compare is still a total order usable for sorting heterogeneous columns.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		return int(v.kind) - int(o.kind)
	}
	if isNumeric(v.kind) && isNumeric(o.kind) {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return int(v.i - o.i)
	default:
		return 0
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// ConvertTo coerces the value to the target kind when a lossless or
// conventional conversion exists (string↔int, int↔float, etc.). It returns
// the converted value and whether the conversion succeeded. NULL converts
// to NULL of any kind.
func (v Value) ConvertTo(k Kind) (Value, bool) {
	if v.kind == k {
		return v, true
	}
	if v.kind == KindNull {
		return Null(), true
	}
	switch k {
	case KindInt:
		switch v.kind {
		case KindFloat:
			return Int(int64(v.f)), true
		case KindString:
			n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null(), false
			}
			return Int(n), true
		case KindBool:
			return Int(v.i), true
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return Float(float64(v.i)), true
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null(), false
			}
			return Float(f), true
		}
	case KindString:
		return String(v.Render()), true
	case KindBool:
		switch v.kind {
		case KindInt:
			return Bool(v.i != 0), true
		case KindString:
			b, err := strconv.ParseBool(v.s)
			if err != nil {
				return Null(), false
			}
			return Bool(b), true
		}
	}
	return Null(), false
}

// Row is a tuple: one Value per column, positionally matching the table
// schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
