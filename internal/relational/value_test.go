package relational

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Fatalf("Int(42).AsInt() = %d", got)
	}
	if got := String("abc").AsString(); got != "abc" {
		t.Fatalf("String(abc).AsString() = %q", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Fatalf("Float(2.5).AsFloat() = %v", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("Bool roundtrip broken")
	}
	if Int(7).AsFloat() != 7 {
		t.Fatal("Int widening to float broken")
	}
}

func TestValueKindNames(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindString: "TEXT",
		KindFloat:  "REAL",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind renders %q", Kind(99).String())
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL should be false")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL = 0 should be false")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("3 should equal 3.0")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 should not equal 3.5")
	}
	if Int(3).Equal(String("3")) {
		t.Error("int should not implicitly equal string")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign only
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
	if Null().Compare(Int(1)) >= 0 {
		t.Error("NULL should sort before non-NULL")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueRender(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Int(-5), "-5"},
		{String("hi"), "hi"},
		{Float(0.5), "0.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.Render(); got != c.want {
			t.Errorf("Render(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueConvertTo(t *testing.T) {
	cases := []struct {
		in   Value
		to   Kind
		want Value
		ok   bool
	}{
		{String("42"), KindInt, Int(42), true},
		{String(" 42 "), KindInt, Int(42), true},
		{String("x"), KindInt, Null(), false},
		{Int(42), KindString, String("42"), true},
		{Int(1), KindBool, Bool(true), true},
		{Float(2.9), KindInt, Int(2), true},
		{Int(2), KindFloat, Float(2), true},
		{String("2.5"), KindFloat, Float(2.5), true},
		{String("true"), KindBool, Bool(true), true},
		{Null(), KindInt, Null(), true},
		{Int(5), KindInt, Int(5), true},
		{Bool(true), KindFloat, Null(), false},
	}
	for _, c := range cases {
		got, ok := c.in.ConvertTo(c.to)
		if ok != c.ok || got != c.want {
			t.Errorf("ConvertTo(%v, %v) = (%v, %v), want (%v, %v)", c.in, c.to, got, ok, c.want, c.ok)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].AsInt() != 1 {
		t.Error("Clone did not copy")
	}
}

// Property: Compare is antisymmetric and Equal implies Compare == 0 for
// same-kind non-null values.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return sign(va.Compare(vb)) == -sign(vb.Compare(va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := String(a), String(b)
		if va.Equal(vb) != (a == b) {
			return false
		}
		return sign(va.Compare(vb)) == -sign(vb.Compare(va))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: int -> string -> int round-trips.
func TestValueConvertRoundTrip(t *testing.T) {
	f := func(a int64) bool {
		s, ok := Int(a).ConvertTo(KindString)
		if !ok {
			return false
		}
		back, ok := s.ConvertTo(KindInt)
		return ok && back.AsInt() == a
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over random int/float mixes.
func TestValueCompareTransitive(t *testing.T) {
	mk := func(r *rand.Rand) Value {
		if r.Intn(2) == 0 {
			return Int(int64(r.Intn(100) - 50))
		}
		return Float(float64(r.Intn(1000))/10 - 50)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := mk(r), mk(r), mk(r)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

var _ = reflect.TypeOf // keep reflect import if quick stops needing it
