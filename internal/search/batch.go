package search

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/segment"
)

// Amortized batch execution: the whole batch is answered by ONE pass
// over the shared posting lists (ir.MultiSearchSet) instead of N
// independent searchLocked calls. The per-item preamble — filter
// resolution, segmentation, type affinity, anchor identification — is
// the same code searchLocked runs, and every final score goes through
// resultFor, so per-item responses are bitwise identical to serial
// execution (the one-pass driver's own parity argument is in
// internal/ir/multi.go). Items the driver cannot take — exhaustive
// oracle engines, non-prunable scorers, plan failures — run through
// searchLocked on a GOMAXPROCS-bounded worker pool instead.

// batchSearchSet is the body of BatchSearch, parameterized by the shard
// subset each item scores (see PartitionBatchSearch).
func (e *Engine) batchSearchSet(ctx context.Context, reqs []Request, set ir.ShardSet) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	first := make(map[string]int, len(reqs))
	share := make([]int, len(reqs)) // share[i] = index whose result item i reuses
	var distinct []int
	for i, req := range reqs {
		key := req.CacheKey()
		if j, ok := first[key]; ok {
			share[i] = j
			continue
		}
		first[key] = i
		share[i] = i
		distinct = append(distinct, i)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	valid := make([]int, 0, len(distinct))
	for _, i := range distinct {
		if err := reqs[i].Validate(); err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		valid = append(valid, i)
	}

	// One distinct item gains nothing from amortization and would trade
	// the pruned serial path for an exhaustive pass; keep it serial.
	fallback := valid
	if len(valid) >= 2 && e.onePassBatch(ctx, reqs, valid, set, out) {
		fallback = nil
	}
	if len(fallback) > 0 {
		e.serialBatch(ctx, reqs, fallback, set, out)
	}

	// Positionally distinct duplicate items get defensive copies: the
	// response a caller can mutate must never be shared with another
	// item's.
	for i := range out {
		if share[i] != i {
			out[i] = copyBatchResult(out[share[i]])
		}
	}
	return out
}

// serialBatch runs the given items through searchLocked on a bounded
// worker pool — the fallback when the one-pass driver cannot take the
// batch. The pool is GOMAXPROCS-sized: a max-size batch must not spawn
// one goroutine per item while holding the engine read lock.
func (e *Engine) serialBatch(ctx context.Context, reqs []Request, items []int, set ir.ShardSet, out []BatchResult) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, i := range items {
			resp, err := e.searchLocked(ctx, reqs[i], set)
			out[i] = BatchResult{Response: resp, Err: err}
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				resp, err := e.searchLocked(ctx, reqs[i], set)
				out[i] = BatchResult{Response: resp, Err: err}
			}
		}()
	}
	for _, i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
}

// batchQueryCtx is one item's resolved preamble: exactly the state
// searchLocked computes before retrieval, plus the anchor-labeled
// instances resolved to sorted global doc ids — the booster's boost
// decision per (query, doc) is then an integer probe of a tiny slice
// instead of Label() plus a map lookup per scored candidate.
type batchQueryCtx struct {
	allowed    map[string]bool
	affinity   map[string]float64
	anchors    map[string]bool
	anchorDocs []int
	sg         segment.Segmentation
}

// onePassBatch answers the given (validated, distinct) items through
// the multi-query driver. It reports whether the items were fully
// handled — false means the driver could not run and the caller must
// fall back to serial execution for all of them. Per-item failures
// (bad filters) are handled here either way.
func (e *Engine) onePassBatch(ctx context.Context, reqs []Request, items []int, set ir.ShardSet, out []BatchResult) bool {
	if err := ctx.Err(); err != nil {
		for _, i := range items {
			out[i] = BatchResult{Err: err}
		}
		return true
	}
	// Resolve each item's preamble; filter errors resolve that item
	// immediately (searchLocked would fail the same way before ever
	// touching the index).
	live := make([]int, 0, len(items))
	qctx := make([]batchQueryCtx, 0, len(items))
	queries := make([]ir.BatchQuery, 0, len(items))
	for _, i := range items {
		req := reqs[i]
		allowed, err := e.filterSet(req.Filter)
		if err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		sg := e.seg.Segment(req.Query)
		anchors := map[string]bool{}
		for _, ent := range sg.Entities() {
			anchors[ent.Text] = true
		}
		// Anchor-labeled instances as global doc ids: an indexed
		// instance satisfies anchors[inst.Label()] exactly when its doc
		// id is in this set (byLabel and the index are maintained
		// together under the write lock).
		var anchorDocs []int
		for label := range anchors {
			for _, inst := range e.byLabel[label] {
				if g, ok := e.index.ID(inst.ID()); ok {
					anchorDocs = append(anchorDocs, g)
				}
			}
		}
		sort.Ints(anchorDocs)
		qc := batchQueryCtx{
			allowed:    allowed,
			affinity:   e.typeAffinity(sg),
			anchors:    anchors,
			anchorDocs: anchorDocs,
			sg:         sg,
		}
		// Retain the top offset+k by final score — enough to slice the
		// requested page bit-identically; k == 0 means the whole ranking.
		retain := 0
		if req.K > 0 {
			retain = req.Offset + req.K
		}
		// Score-multiplier ceiling for MaxScore skipping inside the pass,
		// the same bound prunedPage hands SearchBoostedSet: valid only
		// when every multiplier is monotone non-decreasing and ≥ 0
		// (canPrune's conditions). Anchor-labeled instances can exceed it
		// by the anchor boost, so they ride along as ceiling-exempt; 0
		// leaves the driver exhaustive for this item.
		ceil := 0.0
		if e.opts.TypeBoost >= 0 &&
			e.opts.UtilityInfluence >= 0 && e.opts.UtilityInfluence <= 1 &&
			e.opts.AnchorBoost >= 0 {
			maxAff := 0.0
			for _, a := range qc.affinity {
				if a > maxAff {
					maxAff = a
				}
			}
			typeHi := 1 + e.opts.TypeBoost*maxAff
			blendHi := 1 - e.opts.UtilityInfluence + e.opts.UtilityInfluence*e.maxUtility
			ceil = typeHi * blendHi
		}
		live = append(live, i)
		qctx = append(qctx, qc)
		queries = append(queries, ir.BatchQuery{Terms: ir.Tokenize(req.Query), K: retain, Ceil: ceil, Exempt: anchorDocs})
	}
	if len(live) == 0 {
		return true
	}
	booster := newBatchBooster(e, qctx)
	hits, ok := e.index.MultiSearchSet(e.retrievalScorer(), queries, booster, set)
	if !ok {
		// Roll the filter-failed items back too? No: their errors are
		// final and identical to serial; only the live items return to
		// the caller's fallback list, which re-runs everything in
		// items — re-resolving a failed filter yields the same error.
		return false
	}
	for n, i := range live {
		req, qc, bh := reqs[i], qctx[n], hits[n]
		results := make([]Result, 0, len(bh.Hits))
		for _, h := range bh.Hits {
			results = append(results, e.resultFor(e.instances[h.Name], h.IRScore, qc.affinity, qc.anchors))
		}
		resp := &Response{Total: bh.Total}
		if req.Offset < len(results) {
			results = results[req.Offset:]
		} else {
			results = nil
		}
		if req.K > 0 && len(results) > req.K {
			results = results[:req.K]
		}
		resp.Results = results
		if req.Explain {
			resp.Explain = explainPayload(qc.sg, qc.affinity)
		}
		out[i] = BatchResult{Response: resp}
	}
	return true
}

// batchBooster adapts the engine's per-item score context to
// ir.MultiBooster. Final computes the score by the identical float
// expression resultFor uses — same sub-expressions, same multiplication
// order — with the anchor decision probed by doc id (see batchQueryCtx)
// instead of by label, so the hot path never hashes a string beyond the
// type-affinity lookup. The per-query filter decisions are precomputed
// per catalog definition as bitmask words, so Prepare settles counting
// for the whole batch with one pointer-map probe. Called concurrently
// from shard goroutines; it only reads state the engine's read lock
// protects (plus its own immutable tables).
type batchBooster struct {
	e     *Engine
	byDoc []*core.Instance
	ctxs  []batchQueryCtx
	// maskByDef[def][w] bit j: query w*64+j counts documents of def.
	maskByDef map[*core.Definition][]uint64
	// tfByDef[def][q] is query q's precomputed type factor for
	// documents of def: 1 + TypeBoost*affinity[def.Name] — the same
	// expression resultFor evaluates, hoisted out of the per-candidate
	// path.
	tfByDef map[*core.Definition][]float64
}

func newBatchBooster(e *Engine, ctxs []batchQueryCtx) *batchBooster {
	words := (len(ctxs) + 63) / 64
	maskByDef := make(map[*core.Definition][]uint64, e.cat.Len())
	tfByDef := make(map[*core.Definition][]float64, e.cat.Len())
	for _, def := range e.cat.Definitions() {
		m := make([]uint64, words)
		tf := make([]float64, len(ctxs))
		for q := range ctxs {
			if ctxs[q].allowed == nil || ctxs[q].allowed[def.Name] {
				m[q/64] |= 1 << uint(q%64)
			}
			tf[q] = 1 + e.opts.TypeBoost*ctxs[q].affinity[def.Name]
		}
		maskByDef[def] = m
		tfByDef[def] = tf
	}
	return &batchBooster{e: e, byDoc: e.docInstances(), ctxs: ctxs, maskByDef: maskByDef, tfByDef: tfByDef}
}

// Prepare implements ir.MultiBooster.
func (b *batchBooster) Prepare(doc int, name string, base int) (any, uint64, bool) {
	if doc < 0 || doc >= len(b.byDoc) {
		return nil, 0, false
	}
	inst := b.byDoc[doc]
	if inst == nil {
		return nil, 0, false
	}
	if m, ok := b.maskByDef[inst.Def]; ok {
		return inst, m[base/64], true
	}
	// Definition not in the catalog table (cannot normally happen):
	// answer the filters directly.
	var counts uint64
	for j := 0; j < 64 && base+j < len(b.ctxs); j++ {
		qc := &b.ctxs[base+j]
		if qc.allowed == nil || qc.allowed[inst.Def.Name] {
			counts |= 1 << uint(j)
		}
	}
	return inst, counts, true
}

// Final implements ir.MultiBooster.
func (b *batchBooster) Final(handle any, q, doc int, irScore float64) float64 {
	inst := handle.(*core.Instance)
	qc := &b.ctxs[q]
	var typeFactor float64
	if tf, ok := b.tfByDef[inst.Def]; ok {
		typeFactor = tf[q]
	} else {
		typeFactor = 1 + b.e.opts.TypeBoost*qc.affinity[inst.Def.Name]
	}
	blend := 1 - b.e.opts.UtilityInfluence + b.e.opts.UtilityInfluence*inst.Utility
	boost := 1.0
	if len(qc.anchorDocs) > 0 && containsDoc(qc.anchorDocs, doc) {
		boost = 1 + b.e.opts.AnchorBoost
	}
	return irScore * typeFactor * blend * boost
}

// containsDoc reports whether a sorted doc-id slice contains d; anchor
// sets are tiny, so a linear scan wins.
func containsDoc(a []int, d int) bool {
	for _, x := range a {
		if x == d {
			return true
		}
		if x > d {
			return false
		}
	}
	return false
}

// copyBatchResult returns a defensively-copied batch result: the
// Response struct, its Results slice, and the Explain payload are all
// fresh, so a caller mutating one batch item can never corrupt a
// positionally distinct duplicate. Result entries still share the
// engine's *core.Instance pointers — exactly what two independent
// serial Search calls return.
func copyBatchResult(br BatchResult) BatchResult {
	if br.Response == nil {
		return br
	}
	resp := *br.Response
	if resp.Results != nil {
		resp.Results = append([]Result(nil), resp.Results...)
	}
	if resp.Explain != nil {
		ex := *resp.Explain
		if ex.Segments != nil {
			ex.Segments = append([]ExplainSegment(nil), ex.Segments...)
		}
		if ex.Affinities != nil {
			ex.Affinities = append([]DefinitionAffinity(nil), ex.Affinities...)
		}
		resp.Explain = &ex
	}
	return BatchResult{Response: &resp, Err: br.Err}
}
