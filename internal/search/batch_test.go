package search

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/ir"
)

// batchEngine builds an engine over the parity universe with the given
// shard count and scorer configuration.
func batchEngine(t *testing.T, shards int, scorer ir.Scorer, exhaustive bool) *Engine {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{
		Synonyms:         imdb.AttributeSynonyms(),
		Shards:           shards,
		Scorer:           scorer,
		ExhaustiveScorer: exhaustive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestBatchSerialParityFuzz is the amortized-batch parity property: a
// BatchSearch answer must be bitwise identical — result identity, every
// score component, totals, explain payloads — to running each item
// through Search serially on the same engine. The matrix covers shard
// counts, both prunable scorers at two parameterizations (the one-pass
// posting walk with its per-query MaxScore ceiling), and the exhaustive
// oracle (which forces the serial fallback inside BatchSearch), with
// randomized batches mixing k=0 (retain-all), duplicate items, and
// invalid items, interleaved with feedback so the utility blend — and
// with it the skip ceiling — keeps moving. Anchored entity queries
// ("star wars" …) keep the anchor-exempt path under the ceiling hot.
func TestBatchSerialParityFuzz(t *testing.T) {
	ctx := context.Background()
	configs := []struct {
		name       string
		scorer     ir.Scorer
		exhaustive bool
		shards     []int
	}{
		{"bm25-default", nil, false, []int{1, 2, 4}},
		{"bm25-pure", ir.BM25{}, false, []int{2}},
		{"tfidf", ir.TFIDF{}, false, []int{3}},
		{"exhaustive-fallback", nil, true, []int{2}},
	}
	for _, cfg := range configs {
		for _, shards := range cfg.shards {
			t.Run(fmt.Sprintf("%s/shards=%d", cfg.name, shards), func(t *testing.T) {
				e := batchEngine(t, shards, cfg.scorer, cfg.exhaustive)
				r := rand.New(rand.NewSource(int64(900 + shards)))
				for round := 0; round < 25; round++ {
					if round%5 == 4 {
						// Shift a utility so the blend bound (and the skip
						// ceiling derived from it) changes between rounds.
						if res := searchTopK(e, "star wars cast", 3); len(res) > 0 {
							id := res[r.Intn(len(res))].Instance.ID()
							if _, err := e.ApplyFeedback(id, r.Intn(2) == 0, Feedback{}); err != nil {
								t.Fatal(err)
							}
						}
					}
					n := 1 + r.Intn(10)
					reqs := make([]Request, 0, n+3)
					for i := 0; i < n; i++ {
						req := randomRequest(r)
						if r.Intn(4) == 0 {
							req.K = 0 // keep every hit
						}
						reqs = append(reqs, req)
					}
					if len(reqs) > 1 && r.Intn(2) == 0 {
						reqs = append(reqs, reqs[r.Intn(len(reqs))]) // duplicate item
					}
					if r.Intn(3) == 0 {
						reqs = append(reqs, Request{Query: "   "}) // invalid: blank
					}
					if r.Intn(4) == 0 {
						reqs = append(reqs, Request{Query: "star wars", K: -1}) // invalid: negative k
					}

					batch := e.BatchSearch(ctx, reqs)
					if len(batch) != len(reqs) {
						t.Fatalf("round %d: %d outcomes for %d items", round, len(batch), len(reqs))
					}
					for i, req := range reqs {
						want, wantErr := e.Search(ctx, req)
						got := batch[i]
						if (wantErr == nil) != (got.Err == nil) {
							t.Fatalf("round %d item %d %+v: batch err %v, serial err %v", round, i, req, got.Err, wantErr)
						}
						if wantErr != nil {
							if got.Err.Error() != wantErr.Error() {
								t.Fatalf("round %d item %d: batch err %q, serial err %q", round, i, got.Err, wantErr)
							}
							continue
						}
						assertResponsesIdentical(t,
							fmt.Sprintf("round=%d item=%d req=%+v", round, i, req),
							want, got.Response)
					}
				}
			})
		}
	}
}

// TestBatchDuplicateResponsesNotAliased is the regression test for the
// duplicate-item aliasing bug: duplicate batch items used to share one
// *Response, so a caller mutating its copy silently corrupted the
// other's. Mutating one twin — deeply, through every reachable slice —
// must leave the other bitwise identical to a fresh serial answer.
func TestBatchDuplicateResponsesNotAliased(t *testing.T) {
	ctx := context.Background()
	e := batchEngine(t, 2, nil, false)
	req := Request{Query: "star wars cast", K: 5, Explain: true}
	batch := e.BatchSearch(ctx, []Request{req, {Query: "george clooney", K: 5}, req})
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
	}
	a, b := batch[0].Response, batch[2].Response
	if a == b {
		t.Fatal("duplicate items returned one shared *Response")
	}
	want, err := e.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) == 0 || a.Explain == nil {
		t.Fatalf("degenerate response, can't exercise aliasing: %+v", a)
	}
	// Vandalize the first twin.
	a.Total = -1
	for i := range a.Results {
		a.Results[i].Score = -1
		a.Results[i].IRScore = -1
		a.Results[i].Instance = nil
	}
	a.Explain.Template = "mutated"
	for i := range a.Explain.Segments {
		a.Explain.Segments[i].Text = "mutated"
	}
	for i := range a.Explain.Affinities {
		a.Explain.Affinities[i].Affinity = -1
	}
	// The second twin is untouched.
	assertResponsesIdentical(t, "duplicate twin", want, b)
}
