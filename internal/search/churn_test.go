package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
)

// compactEngineWith builds a small engine for compaction tests; the
// exhaustive flag selects the oracle scoring path.
func compactEngineWith(t *testing.T, exhaustive bool) *Engine {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 90, Movies: 70, CastPerMovie: 4})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms(), Shards: 3, ExhaustiveScorer: exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var compactParityQueries = []string{
	"star wars cast",
	"george clooney",
	"soundtrack",
	"movies",
	"churn qunit",
	"nonsense zz yy",
}

// TestEngineCompactParity is the engine-level compaction contract:
// after a mutation history (adds, removes, feedback), Compact() must
// leave every search response — pruned path and exhaustive oracle,
// across k values and offsets — bitwise identical, while reclaiming
// every tombstoned slot.
func TestEngineCompactParity(t *testing.T) {
	ctx := context.Background()
	pruned := compactEngineWith(t, false)
	oracle := compactEngineWith(t, true)
	mutate := func(e *Engine) {
		for i := 0; i < 8; i++ {
			if _, err := e.AddAnchorInstance("movie-cast", fmt.Sprintf("churn qunit %d", i)); err != nil {
				t.Fatal(err)
			}
		}
		ids := e.InstanceIDs()
		for i := 0; i < len(ids); i += 3 {
			if err := e.RemoveInstance(ids[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.ApplyFeedback(e.InstanceIDs()[0], true, Feedback{}); err != nil {
			t.Fatal(err)
		}
	}
	mutate(pruned)
	mutate(oracle)

	type page struct {
		q      string
		k, off int
	}
	var pages []page
	for _, q := range compactParityQueries {
		for _, k := range []int{1, 5, 40} {
			for _, off := range []int{0, 3} {
				pages = append(pages, page{q, k, off})
			}
		}
	}
	before := make([]*Response, len(pages))
	for i, p := range pages {
		resp, err := pruned.Search(ctx, Request{Query: p.q, K: p.k, Offset: p.off})
		if err != nil {
			t.Fatal(err)
		}
		before[i] = resp
	}

	if st := pruned.IndexStats(); st.Tombstones == 0 {
		t.Fatal("test needs tombstones before compaction")
	}
	res, err := pruned.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedSlots == 0 || res.SlotsAfter != res.Live || res.Compactions != 1 {
		t.Fatalf("unexpected compaction result: %+v", res)
	}
	if st := pruned.IndexStats(); st.Tombstones != 0 || st.Slots != st.Live {
		t.Fatalf("index not dense after compaction: %+v", st)
	}
	if pruned.Compactions() != 1 || pruned.SlotsReclaimed() != int64(res.ReclaimedSlots) {
		t.Fatalf("counters: %d passes, %d reclaimed", pruned.Compactions(), pruned.SlotsReclaimed())
	}

	for i, p := range pages {
		label := fmt.Sprintf("q=%q k=%d off=%d", p.q, p.k, p.off)
		after, err := pruned.Search(ctx, Request{Query: p.q, K: p.k, Offset: p.off})
		if err != nil {
			t.Fatal(err)
		}
		assertResponsesIdentical(t, label+" (pre vs post compaction)", before[i], after)
		want, err := oracle.Search(ctx, Request{Query: p.q, K: p.k, Offset: p.off})
		if err != nil {
			t.Fatal(err)
		}
		assertResponsesIdentical(t, label+" (compacted pruned vs exhaustive oracle)", want, after)
	}
}

// churnOp is one recorded mutation of the churn soak, replayed in
// commit order onto the mirror engine.
type churnOp struct {
	kind     int // 0 add, 1 remove, 2 feedback
	anchor   string
	id       string
	positive bool
	failed   bool
}

// churnScale returns the per-mutator operation count: the default keeps
// `go test -race ./internal/search` quick; QUNITS_SOAK=1 (make soak)
// runs the long churn.
func churnScale() int {
	if os.Getenv("QUNITS_SOAK") != "" {
		return 250
	}
	return 40
}

// TestChurnSoakCompaction is the availability-and-parity soak: N
// goroutines mutate (add/remove/feedback), M goroutines search, and a
// compactor loops Compact() while removals also auto-trigger passes —
// all under the race detector. Mutations are serialized through the op
// log's mutex (the engine serializes them anyway; the log must record
// the true commit order), searches and compactions run fully
// concurrently. Afterwards the whole history is replayed sequentially
// into a mirror engine that never compacts, and the two engines must
// answer every probe query bitwise identically — proving no mutation
// was lost or torn across any epoch swap.
func TestChurnSoakCompaction(t *testing.T) {
	const mutators, searchers = 3, 3
	ops := churnScale()
	ctx := context.Background()

	live := compactEngineWith(t, false)
	live.SetAutoCompact(0.15)
	originals := live.InstanceIDs()

	var logMu sync.Mutex
	var log []churnOp
	apply := func(e *Engine, op churnOp) bool {
		var err error
		switch op.kind {
		case 0:
			_, err = e.AddAnchorInstance("movie-cast", op.anchor)
		case 1:
			err = e.RemoveInstance(op.id)
		case 2:
			_, err = e.ApplyFeedback(op.id, op.positive, Feedback{})
		}
		return err != nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Searchers: hammer the read path for the whole storm and assert
	// every response is well-formed — available, ordered, finite.
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := compactParityQueries[r.Intn(len(compactParityQueries))]
				resp, err := live.Search(ctx, Request{Query: q, K: 1 + r.Intn(10), Offset: r.Intn(3)})
				if err != nil {
					t.Errorf("searcher %d: %v", g, err)
					return
				}
				prev := math.Inf(1)
				for _, res := range resp.Results {
					if math.IsNaN(res.Score) || res.Score > prev {
						t.Errorf("searcher %d: torn ranking for %q: %v after %v", g, q, res.Score, prev)
						return
					}
					prev = res.Score
				}
				if st := live.IndexStats(); st.Tombstones < 0 || st.Live > st.Slots {
					t.Errorf("searcher %d: impossible index stats %+v", g, st)
					return
				}
			}
		}(g)
	}
	// Compactor: explicit passes racing the mutators' auto-triggered
	// ones; the pass counter must be strictly monotone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := live.Compact()
			if err != nil {
				t.Errorf("compactor: %v", err)
				return
			}
			if res.Compactions <= last {
				t.Errorf("compactor: pass counter went %d -> %d", last, res.Compactions)
				return
			}
			last = res.Compactions
		}
	}()
	// Mutators: each owns a disjoint anchor namespace and a disjoint
	// partition of the original instances, so op outcomes are
	// deterministic given the log order.
	var mwg sync.WaitGroup
	for g := 0; g < mutators; g++ {
		mwg.Add(1)
		go func(g int) {
			defer mwg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			var mine []string // ids this goroutine added or owns and believes live
			for i := range originals {
				if i%mutators == g {
					mine = append(mine, originals[i])
				}
			}
			for i := 0; i < ops; i++ {
				var op churnOp
				switch r.Intn(4) {
				case 0, 1:
					op = churnOp{kind: 0, anchor: fmt.Sprintf("churn qunit g%d n%d", g, i)}
				case 2:
					if len(mine) == 0 {
						continue
					}
					op = churnOp{kind: 1, id: mine[r.Intn(len(mine))]}
				default:
					if len(mine) == 0 {
						continue
					}
					op = churnOp{kind: 2, id: mine[r.Intn(len(mine))], positive: r.Intn(2) == 0}
				}
				logMu.Lock()
				op.failed = apply(live, op)
				log = append(log, op)
				logMu.Unlock()
				switch {
				case op.kind == 0 && !op.failed:
					mine = append(mine, "movie-cast:"+op.anchor)
				case op.kind == 1 && !op.failed:
					for j, id := range mine {
						if id == op.id {
							mine = append(mine[:j], mine[j+1:]...)
							break
						}
					}
				}
			}
		}(g)
	}
	mwg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// One final pass so the compacted state itself is what parity is
	// proven on.
	if _, err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := live.IndexStats(); st.Tombstones != 0 {
		t.Fatalf("tombstones survived the final pass: %+v", st)
	}

	// Sequential mirror: same construction, same ops in commit order,
	// no compaction — the reference the paper's "instances evolve with
	// the database" state must equal.
	mirror := compactEngineWith(t, false)
	for i, op := range log {
		if failed := apply(mirror, op); failed != op.failed {
			t.Fatalf("replay op %d (%+v): failed=%v on mirror, %v live", i, op, failed, op.failed)
		}
	}
	if live.InstanceCount() != mirror.InstanceCount() {
		t.Fatalf("instance counts diverged: live %d, mirror %d", live.InstanceCount(), mirror.InstanceCount())
	}
	probes := append([]string{}, compactParityQueries...)
	for g := 0; g < mutators; g++ {
		probes = append(probes, fmt.Sprintf("churn qunit g%d", g))
	}
	for _, q := range probes {
		for _, k := range []int{1, 5, 25} {
			got, err := live.Search(ctx, Request{Query: q, K: k})
			if err != nil {
				t.Fatal(err)
			}
			want, err := mirror.Search(ctx, Request{Query: q, K: k})
			if err != nil {
				t.Fatal(err)
			}
			assertResponsesIdentical(t, fmt.Sprintf("q=%q k=%d (churned+compacted vs sequential mirror)", q, k), want, got)
		}
	}
}
