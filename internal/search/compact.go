package search

import (
	"fmt"
	"math"
)

// Online compaction at the engine level: the copy-on-write epoch swap
// over ir.ShardedIndex.Compacted.
//
// Lock protocol. Three locks are in play, always acquired in this
// order:
//
//	indexMu  serializes the index-STRUCTURE writers against each other:
//	         AddInstance, RemoveInstance, and Compact. Held across the
//	         whole compaction build, so no instance mutation can land on
//	         the old index after the rebuild read it (which would be
//	         silently lost in the swap).
//	mu       the engine RWMutex searches already take. Compact holds it
//	         only twice, briefly: a read-lock to capture the current
//	         index pointer, and a write-lock for the single pointer
//	         swap. The build itself runs with NO engine lock held —
//	         searches keep draining on the old shards the entire time,
//	         which is the "no full-duration write lock" guarantee the
//	         churn-soak test enforces.
//
// ApplyFeedback deliberately does not take indexMu: it mutates
// utilities, which live on the shared instances, not in the index —
// a compaction pass neither reads nor copies them.
//
// Because compaction preserves bitwise score parity (see
// ir.ShardedIndex.Compacted), a swap is invisible to results: searches
// that raced the swap on the old index and searches that follow it on
// the new one return identical bytes. Derived caches (the HTTP result
// cache) therefore stay valid across a compaction.

// CompactionResult describes one Engine.Compact pass.
type CompactionResult struct {
	// SlotsBefore and SlotsAfter are the index's global slot counts
	// around the pass.
	SlotsBefore, SlotsAfter int
	// Live is the number of live instances carried over.
	Live int
	// ReclaimedSlots is the number of tombstoned slots eliminated.
	ReclaimedSlots int
	// Compactions is the engine's total completed passes, this one
	// included.
	Compactions int64
}

// IndexStats is a point-in-time view of the index's physical occupancy.
type IndexStats struct {
	// Slots is the global id-space size, tombstones included.
	Slots int
	// Live is the number of live (searchable) instances.
	Live int
	// Tombstones is Slots - Live: dead slots awaiting compaction.
	Tombstones int
}

// Compact rebuilds the index without tombstones and swaps it in.
// Searches are never blocked for the duration of the rebuild: they keep
// scoring the old shards until the swap, and the swap is one pointer
// write under the write lock (which waits only for in-flight readers to
// drain). Concurrent AddInstance/RemoveInstance calls block until the
// pass finishes; concurrent ApplyFeedback does not. Results before,
// during, and after a pass are bitwise identical — compaction changes
// the cost of a search, never its outcome.
func (e *Engine) Compact() (CompactionResult, error) {
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.mu.RLock()
	old := e.index
	e.mu.RUnlock()
	compacted, st, err := old.Compacted()
	if err != nil {
		return CompactionResult{}, err
	}
	// Compaction is a logged mutation: it re-assigns documents to shards
	// (live docs are re-added onto dense ids), which shard-subset scoring
	// observes even though full-index searches cannot. Replicas must
	// therefore compact at the same log position; appending under
	// indexMu serializes the record against add/remove records exactly
	// as the passes themselves are serialized. (Utilities are untouched,
	// so ordering against feedback records is immaterial.)
	if e.mlog != nil {
		if err := e.mlog.AppendCompact(); err != nil {
			return CompactionResult{}, fmt.Errorf("search: logging compaction: %w", err)
		}
	}
	e.mu.Lock()
	e.index = compacted
	e.docsVersion++
	e.mu.Unlock()
	e.slotsReclaimed.Add(int64(st.ReclaimedSlots))
	return CompactionResult{
		SlotsBefore:    st.SlotsBefore,
		SlotsAfter:     st.SlotsAfter,
		Live:           st.Live,
		ReclaimedSlots: st.ReclaimedSlots,
		Compactions:    e.compactions.Add(1),
	}, nil
}

// IndexStats returns the index's current slot occupancy.
func (e *Engine) IndexStats() IndexStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	slots := e.index.Slots()
	live := e.index.Len()
	return IndexStats{Slots: slots, Live: live, Tombstones: slots - live}
}

// Compactions returns the number of completed compaction passes
// (explicit and auto-triggered). Monotone.
func (e *Engine) Compactions() int64 { return e.compactions.Load() }

// SlotsReclaimed returns the total tombstoned slots eliminated across
// all compaction passes. Monotone.
func (e *Engine) SlotsReclaimed() int64 { return e.slotsReclaimed.Load() }

// SetAutoCompact installs the auto-compaction policy: after a removal
// leaves the tombstone ratio (dead slots / total slots) at or above
// ratio, the engine compacts itself before the removal call returns.
// ratio <= 0 disables auto-compaction; ratio is not persisted by
// snapshots (it is serving policy, not engine state), so operators
// re-apply it at boot — qunitsd's -compact-ratio flag does.
func (e *Engine) SetAutoCompact(ratio float64) {
	e.compactRatio.Store(math.Float64bits(ratio))
}

// maybeAutoCompact runs a compaction pass when the configured tombstone
// ratio is met. Called by mutators AFTER they release every lock, so the
// pass itself re-enters the normal Compact protocol.
func (e *Engine) maybeAutoCompact() {
	ratio := math.Float64frombits(e.compactRatio.Load())
	if ratio <= 0 {
		return
	}
	st := e.IndexStats()
	if st.Tombstones == 0 || float64(st.Tombstones) < ratio*float64(st.Slots) {
		return
	}
	// A racing explicit Compact may already have reclaimed the slots;
	// the extra pass is then a cheap no-op rebuild, not a correctness
	// problem.
	_, _ = e.Compact()
}
