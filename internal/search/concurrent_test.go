package search

import (
	"sync"
	"testing"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
)

// concurrencyQueries mixes the workload shapes the engine sees: entity,
// entity+attribute, attribute-only, and junk.
var concurrencyQueries = []string{
	"star wars cast",
	"george clooney",
	"soundtrack",
	"movies",
	"box office galaxy",
	"nonsense zz yy",
}

func engineWith(t *testing.T, shards, workers int) *Engine {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 150, Movies: 100, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms(), Shards: shards, BuildWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestParallelBuildShardedSearchParity is the acceptance gate for the
// concurrent subsystem: an engine built with many workers over many
// shards must answer every query byte-identically (ids, scores, order)
// to the sequential single-shard build — the seed's original path.
func TestParallelBuildShardedSearchParity(t *testing.T) {
	sequential := engineWith(t, 1, 1)
	parallel := engineWith(t, 5, 8)
	if sequential.InstanceCount() != parallel.InstanceCount() {
		t.Fatalf("instance counts differ: %d vs %d", sequential.InstanceCount(), parallel.InstanceCount())
	}
	for _, q := range concurrencyQueries {
		for _, k := range []int{1, 5, 50, 0} {
			want := searchTopK(sequential, q, k)
			got := searchTopK(parallel, q, k)
			if len(got) != len(want) {
				t.Fatalf("q=%q k=%d: %d results, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Instance.ID() != want[i].Instance.ID() {
					t.Fatalf("q=%q k=%d result %d: id %q, want %q", q, k, i, got[i].Instance.ID(), want[i].Instance.ID())
				}
				if got[i].Score != want[i].Score || got[i].IRScore != want[i].IRScore || got[i].TypeAffinity != want[i].TypeAffinity {
					t.Fatalf("q=%q k=%d result %d (%s): scores (%v,%v,%v), want (%v,%v,%v)",
						q, k, i, got[i].Instance.ID(),
						got[i].Score, got[i].IRScore, got[i].TypeAffinity,
						want[i].Score, want[i].IRScore, want[i].TypeAffinity)
				}
			}
		}
	}
}

// TestConcurrentSearchAndFeedback hammers one engine from many
// goroutines — searches interleaved with feedback writes — and relies on
// -race to flag unsynchronized access.
func TestConcurrentSearchAndFeedback(t *testing.T) {
	e := engineWith(t, 4, 4)
	seed := searchTopK(e, "star wars cast", 1)
	if len(seed) == 0 {
		t.Fatal("no seed result")
	}
	clicked := seed[0].Instance.ID()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := concurrencyQueries[(g+i)%len(concurrencyQueries)]
				if res := searchTopK(e, q, 5); len(res) > 0 && res[0].Score < 0 {
					t.Error("negative score")
				}
				if i%5 == 0 {
					if _, err := e.ApplyFeedback(clicked, g%2 == 0, Feedback{}); err != nil {
						t.Error(err)
					}
				}
				e.UtilityEntropy()
			}
		}(g)
	}
	wg.Wait()
}

// TestSortResultsTieBreak pins the merged-path ordering contract: score
// desc, then instance ID asc.
func TestSortResultsTieBreak(t *testing.T) {
	mk := func(name string, score float64) Result {
		return Result{Instance: &core.Instance{Def: &core.Definition{Name: name}}, Score: score}
	}
	results := []Result{mk("delta", 1), mk("bravo", 2), mk("charlie", 1), mk("alpha", 1), mk("echo", 0.5)}
	sortResults(results)
	want := []string{"bravo", "alpha", "charlie", "delta", "echo"}
	for i, w := range want {
		if results[i].Instance.ID() != w {
			t.Fatalf("position %d = %q, want %q", i, results[i].Instance.ID(), w)
		}
	}
}

// TestBuildWorkerCountsAgree checks a range of worker counts all produce
// the same engine-visible state (instances indexed, vocabulary).
func TestBuildWorkerCountsAgree(t *testing.T) {
	base := engineWith(t, 1, 1)
	for _, workers := range []int{2, 3, 8} {
		e := engineWith(t, 1, workers)
		if e.InstanceCount() != base.InstanceCount() {
			t.Fatalf("workers=%d: %d instances, want %d", workers, e.InstanceCount(), base.InstanceCount())
		}
		res := searchTopK(e, "star wars cast", 3)
		baseRes := searchTopK(base, "star wars cast", 3)
		for i := range baseRes {
			if res[i].Instance.ID() != baseRes[i].Instance.ID() || res[i].Score != baseRes[i].Score {
				t.Fatalf("workers=%d result %d: (%s, %v), want (%s, %v)",
					workers, i, res[i].Instance.ID(), res[i].Score, baseRes[i].Instance.ID(), baseRes[i].Score)
			}
		}
	}
}
