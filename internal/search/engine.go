// Package search implements the qunit-based search engine of §3. The
// pipeline is exactly the paper's: the database has been translated into
// a collection of independent qunit instances; an incoming keyword query
// is segmented and typed ("[movie.title] [cast]"); the segmentation is
// matched against qunit definitions to identify the most appropriate
// qunit type; and standard IR ranking over the instances — each treated
// as an independent document — picks the instances to return.
package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/segment"
)

// Options configures an engine.
type Options struct {
	// Scorer is the IR ranking function; nil means BM25 with defaults.
	Scorer ir.Scorer
	// Synonyms extends the segmentation dictionary's attribute
	// vocabulary (e.g. imdb.AttributeSynonyms()).
	Synonyms map[string]string
	// LabelWeight is the index weight of an instance's anchor label;
	// 0 means 3.
	LabelWeight float64
	// KeywordWeight is the index weight of a definition's keywords;
	// 0 means 2.
	KeywordWeight float64
	// TypeBoost scales how strongly qunit-type identification dominates
	// plain IR score; 0 means 1.
	TypeBoost float64
	// UtilityInfluence in [0,1] blends definition utility into the final
	// score; 0 means 0.35.
	UtilityInfluence float64
	// AnchorBoost multiplies the score of instances whose anchor label is
	// exactly an entity the query names — the instance-selection half of
	// §3's "qunit instances of the identified type". 0 means 2.
	AnchorBoost float64
	// Shards is the number of index shards scored in parallel per query;
	// 0 means runtime.GOMAXPROCS(0), 1 disables sharding. Results are
	// identical for every shard count.
	Shards int
	// BuildWorkers is the number of workers that materialize and analyze
	// qunit instances during engine construction; 0 means
	// runtime.GOMAXPROCS(0), 1 builds sequentially. The built engine is
	// identical for every worker count.
	BuildWorkers int
	// ExhaustiveScorer disables top-k pruned retrieval: every search
	// scores every candidate through the map-based exhaustive scorer,
	// exactly as the pre-pruning engine did. It is a debugging/oracle
	// flag: results are guaranteed (and parity-tested) to be identical
	// with it on or off, so flipping it isolates whether a suspected
	// ranking bug lives in the pruned scorer or elsewhere.
	ExhaustiveScorer bool
	// CompactRatio enables auto-compaction: after a removal leaves the
	// index's tombstone ratio (dead slots / total slots) at or above
	// this value, the engine compacts itself (see Engine.Compact).
	// 0 disables auto-compaction. This is serving policy, not engine
	// state: snapshots do not persist it, and operators re-apply it at
	// boot (qunitsd -compact-ratio) or at runtime via SetAutoCompact.
	CompactRatio float64
}

// Result is one ranked qunit instance. Score is exactly
// IRScore * TypeFactor * UtilityBlend * AnchorBoost — the component
// fields expose every factor so clients can explain (or re-derive) any
// ranking decision without knowing the engine's option values.
type Result struct {
	// Instance is the returned qunit instance.
	Instance *core.Instance
	// Score is the final combined score.
	Score float64
	// IRScore is the raw IR relevance component.
	IRScore float64
	// TypeAffinity is the qunit-type identification component.
	TypeAffinity float64
	// TypeFactor is the multiplier the type identification contributed
	// to the score: 1 + Options.TypeBoost*TypeAffinity.
	TypeFactor float64
	// Utility is the instance's utility at scoring time.
	Utility float64
	// UtilityBlend is the utility multiplier applied to the score:
	// 1 - UtilityInfluence + UtilityInfluence*Utility.
	UtilityBlend float64
	// AnchorBoost is the anchor-selection multiplier: 1 when the query
	// names no entity anchoring this instance, 1+Options.AnchorBoost
	// when it does.
	AnchorBoost float64
}

// Engine answers keyword queries over a qunit catalog.
//
// After construction the engine is safe for concurrent use: any number
// of goroutines may call Search; the mutating calls — ApplyFeedback
// (utilities), AddInstance and RemoveInstance (the instance set and
// index) — are serialized against searches by an internal lock.
type Engine struct {
	// mu guards the mutable state: instance/definition utilities
	// (ApplyFeedback writes, Search reads) and the instance map and
	// index (AddInstance/RemoveInstance write, Search reads). The
	// dictionary and segmenter are immutable after construction.
	mu        sync.RWMutex
	cat       *core.Catalog
	dict      *segment.Dictionary
	seg       *segment.Segmenter
	index     *ir.ShardedIndex
	instances map[string]*core.Instance            // by instance ID
	byLabel   map[string]map[string]*core.Instance // label -> id -> instance
	opts      Options
	defTables map[string]map[string]bool // definition -> tables it covers
	// mlog, when installed, receives one record per mutation, appended
	// under the lock serializing that mutation (see partition.go).
	mlog MutationLog

	// indexMu serializes the index-structure writers (AddInstance,
	// RemoveInstance, Compact) against each other; see compact.go for
	// the full lock protocol. Always acquired before mu.
	indexMu sync.Mutex
	// compactions and slotsReclaimed are the monotone compaction
	// counters /stats reports.
	compactions    atomic.Int64
	slotsReclaimed atomic.Int64
	// compactRatio holds the auto-compaction tombstone-ratio threshold
	// as float bits (0 = disabled); see SetAutoCompact.
	compactRatio atomic.Uint64

	// maxUtility is a monotone upper bound on every indexed instance's
	// utility, maintained on construction, AddInstance, and
	// ApplyFeedback. It only ever grows (removals never shrink it), so
	// it is always a valid — if occasionally loose — bound for the
	// pruned search path's score-multiplier ceiling.
	maxUtility float64

	// docsVersion counts the mutations that change the global-doc-id ↔
	// instance mapping (AddInstance, RemoveInstance, Compact; feedback
	// only touches utilities, which byDoc reads through the instance
	// pointer). Written under the write lock, read under either.
	docsVersion uint64
	// docCache lazily materializes the mapping as a dense slice for the
	// batch path, which resolves instances per candidate document and
	// would otherwise pay a string-map lookup each time. Rebuilt on
	// version mismatch under its own lock (readers hold only e.mu.RLock).
	docCache struct {
		mu      sync.Mutex
		version uint64
		byDoc   []*core.Instance
	}
	// affCache holds the per-definition state typeAffinity consults for
	// every query — normalized keyword vocabulary, covered tables,
	// rollup flag — which is derived entirely from the (effectively
	// immutable) definitions. Invalidated by catalog growth.
	affCache struct {
		mu   sync.Mutex
		n    int
		defs []defAffinity
	}
}

// defAffinity is one definition's precomputed type-affinity state.
type defAffinity struct {
	d      *core.Definition
	kw     map[string]bool // normalized keyword vocabulary
	tables map[string]bool // covered tables (== defTables entry)
	rollup bool            // has sections: prefers underspecified queries
}

// NewEngine materializes every instance of the catalog and indexes it.
// (The paper notes qunits need not be materialized; this engine trades
// that freedom for a standard inverted index, which is itself a
// legitimate realization — §3 only requires that ranking treat instances
// as independent documents.)
func NewEngine(cat *core.Catalog, opts Options) (*Engine, error) {
	opts = withDefaults(opts)
	workers := opts.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	dict := segment.BuildDictionary(cat.DB(), segment.Options{AttributeSynonyms: opts.Synonyms})
	e := &Engine{
		cat:       cat,
		dict:      dict,
		seg:       segment.NewSegmenter(dict),
		index:     ir.NewShardedIndex(opts.Shards),
		instances: make(map[string]*core.Instance),
		opts:      opts,
		defTables: make(map[string]map[string]bool),
	}
	insts, err := materializeParallel(cat, workers)
	if err != nil {
		return nil, err
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("search: catalog produced no instances")
	}
	// Deduplicate in catalog order (identical anchors across remakes
	// collapse to one document), fan analysis out across the workers,
	// then merge into the index sequentially in that same order — the
	// posting lists come out identical to a sequential build.
	unique := make([]*core.Instance, 0, len(insts))
	for _, inst := range insts {
		id := inst.ID()
		if _, dup := e.instances[id]; dup {
			continue
		}
		e.instances[id] = inst
		unique = append(unique, inst)
	}
	analyzed := analyzeParallel(unique, opts, workers)
	for i, inst := range unique {
		if _, err := e.index.AddAnalyzed(inst.ID(), analyzed[i]); err != nil {
			return nil, err
		}
		e.noteUtility(inst.Utility)
		e.indexLabel(inst)
	}
	for _, d := range cat.Definitions() {
		e.defTables[d.Name] = definitionTables(d)
	}
	e.SetAutoCompact(opts.CompactRatio)
	return e, nil
}

// definitionTables collects the tables a definition's base and section
// expressions touch — the vocabulary typeAffinity credits attribute
// segments against.
func definitionTables(d *core.Definition) map[string]bool {
	tables := map[string]bool{}
	for _, tn := range d.Base.From {
		tables[tn] = true
	}
	for _, s := range d.Sections {
		for _, tn := range s.Base.From {
			tables[tn] = true
		}
	}
	return tables
}

// withDefaults fills the zero-valued options with the engine defaults —
// the single defaulting point NewEngine and RestoreEngine share, so a
// restored engine scores exactly like the one that was saved.
func withDefaults(opts Options) Options {
	if opts.Scorer == nil {
		// Gentle length normalization: qunit instances differ in length
		// by design (a profile is long because it covers more, not
		// because it is verbose), so the standard b=0.75 would
		// systematically favour thin aspect instances over rich ones.
		opts.Scorer = ir.BM25{B: 0.3}
	}
	if opts.LabelWeight == 0 {
		opts.LabelWeight = 3
	}
	if opts.KeywordWeight == 0 {
		opts.KeywordWeight = 2
	}
	if opts.TypeBoost == 0 {
		opts.TypeBoost = 1
	}
	if opts.UtilityInfluence == 0 {
		opts.UtilityInfluence = 0.35
	}
	if opts.AnchorBoost == 0 {
		opts.AnchorBoost = 2
	}
	return opts
}

// materializeParallel is cat.MaterializeCatalog with the per-definition
// evaluation fanned out across workers. The flattened result preserves
// catalog (utility) order exactly, so downstream document ids match the
// sequential build. Materialization only reads the database, which is
// immutable here, so concurrent evaluation is safe.
func materializeParallel(cat *core.Catalog, workers int) ([]*core.Instance, error) {
	defs := cat.Definitions()
	if workers > len(defs) {
		workers = len(defs)
	}
	if workers <= 1 {
		return cat.MaterializeCatalog()
	}
	perDef := make([][]*core.Instance, len(defs))
	errs := make([]error, len(defs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perDef[i], errs[i] = cat.MaterializeAll(defs[i])
			}
		}()
	}
	for i := range defs {
		next <- i
	}
	close(next)
	wg.Wait()
	var out []*core.Instance
	for i := range defs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, perDef[i]...)
	}
	return out, nil
}

// indexFields returns the IR fields one instance is indexed under.
//
// Definition keywords deliberately stay out of the instance index: they
// are type vocabulary, handled by type affinity. Indexing them would let
// every instance of a definition match its vocabulary, drowning the
// instances that actually contain the query's content. Context text
// (§2: ranking-only content) is indexed at half weight — findable, never
// presented.
func indexFields(inst *core.Instance, opts Options) []ir.Field {
	fields := []ir.Field{
		{Text: inst.Label(), Weight: opts.LabelWeight},
		{Text: inst.Rendered.Text, Weight: 1},
	}
	if inst.ContextText != "" {
		fields = append(fields, ir.Field{Text: inst.ContextText, Weight: 0.5})
	}
	return fields
}

// analyzeParallel tokenizes every instance's fields across workers,
// returning the analyses positionally aligned with insts.
func analyzeParallel(insts []*core.Instance, opts Options, workers int) []ir.DocTerms {
	out := make([]ir.DocTerms, len(insts))
	if workers <= 1 || len(insts) < 2 {
		for i, inst := range insts {
			out[i] = ir.AnalyzeFields(indexFields(inst, opts)...)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = ir.AnalyzeFields(indexFields(insts[i], opts)...)
			}
		}()
	}
	for i := range insts {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *core.Catalog { return e.cat }

// InstanceCount returns the number of indexed qunit instances.
func (e *Engine) InstanceCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.instances)
}

// Segmenter exposes the engine's query segmenter (shared with callers
// that need gold segmentations, e.g. the evaluation oracle).
func (e *Engine) Segmenter() *segment.Segmenter { return e.seg }

// Search answers a structured request: the query is segmented and
// typed, the segmentation identifies qunit types, IR ranking over the
// (optionally filtered) instances picks the page [Offset, Offset+K),
// and — when asked — the response explains every step. It is safe to
// call from any number of goroutines concurrently; index shards are
// scored in parallel. The context is honored between pipeline stages.
func (e *Engine) Search(ctx context.Context, req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.searchLocked(ctx, req, ir.ShardSet{})
}

// searchLocked is the body of Search; callers hold the read lock and
// have validated the request. BatchSearch reuses it so a whole batch
// runs under one lock acquisition; PartitionSearch passes a non-zero
// shard set to score only its subset of the index (the zero set scores
// everything).
func (e *Engine) searchLocked(ctx context.Context, req Request, set ir.ShardSet) (*Response, error) {
	allowed, err := e.filterSet(req.Filter)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sg := e.seg.Segment(req.Query)
	affinity := e.typeAffinity(sg)
	// Anchor identification: the entities the query names select the
	// instances bound to them.
	anchors := map[string]bool{}
	for _, ent := range sg.Entities() {
		anchors[ent.Text] = true
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var results []Result
	var total int
	pruned := false
	if e.canPrune(req) {
		results, total, pruned = e.prunedPage(req, set, allowed, affinity, anchors)
	}
	if !pruned {
		hits := e.index.SearchSet(e.retrievalScorer(), req.Query, 0, set)
		results = e.collectResults(hits, nil, allowed, affinity, anchors)
		sortResults(results)
		total = len(results)
	}
	resp := &Response{Total: total}
	if req.Offset < len(results) {
		results = results[req.Offset:]
	} else {
		results = nil
	}
	if req.K > 0 && len(results) > req.K {
		results = results[:req.K]
	}
	resp.Results = results
	if req.Explain {
		resp.Explain = explainPayload(sg, affinity)
	}
	return resp, nil
}

// retrievalScorer returns the engine's scorer, wrapped in the
// exhaustive-oracle shim when the debugging flag asks for it.
func (e *Engine) retrievalScorer() ir.Scorer {
	if e.opts.ExhaustiveScorer {
		return ir.Exhaustive{S: e.opts.Scorer}
	}
	return e.opts.Scorer
}

// canPrune reports whether the request can take the pruned top-k path.
// Besides needing a bounded page and a prunable scorer, every score
// multiplier must be monotone in the quantity it scales (non-negative
// boosts, utility influence within [0,1]) — otherwise the multiplier
// ceiling the early-termination bound relies on would not be a ceiling.
func (e *Engine) canPrune(req Request) bool {
	return req.K > 0 &&
		!e.opts.ExhaustiveScorer &&
		ir.Prunable(e.opts.Scorer) &&
		e.opts.TypeBoost >= 0 &&
		e.opts.UtilityInfluence >= 0 && e.opts.UtilityInfluence <= 1 &&
		e.opts.AnchorBoost >= 0
}

// resultFor applies the per-instance score multipliers to one IR score.
// The multiplication order (ir · type · utility · anchor) is fixed:
// float multiplication is not associative, and the pruned path's bound
// must be computed by the same expression shape.
func (e *Engine) resultFor(inst *core.Instance, irScore float64, affinity map[string]float64, anchors map[string]bool) Result {
	aff := affinity[inst.Def.Name]
	util := inst.Utility
	typeFactor := 1 + e.opts.TypeBoost*aff
	blend := 1 - e.opts.UtilityInfluence + e.opts.UtilityInfluence*util
	boost := 1.0
	if anchors[inst.Label()] {
		boost = 1 + e.opts.AnchorBoost
	}
	return Result{
		Instance:     inst,
		Score:        irScore * typeFactor * blend * boost,
		IRScore:      irScore,
		TypeAffinity: aff,
		TypeFactor:   typeFactor,
		Utility:      util,
		UtilityBlend: blend,
		AnchorBoost:  boost,
	}
}

// collectResults converts IR hits to scored results, applying the
// definition/anchor-type filter and the per-instance score multipliers;
// instances in exclude are skipped (the pruned path scores the
// anchor-labeled ones separately and exactly).
func (e *Engine) collectResults(hits []ir.Hit, exclude map[string]bool, allowed map[string]bool, affinity map[string]float64, anchors map[string]bool) []Result {
	results := make([]Result, 0, len(hits))
	for _, h := range hits {
		if exclude != nil && exclude[h.Name] {
			continue
		}
		inst := e.instances[h.Name]
		if inst == nil {
			continue
		}
		if allowed != nil && !allowed[inst.Def.Name] {
			continue
		}
		results = append(results, e.resultFor(inst, h.Score, affinity, anchors))
	}
	return results
}

// prunedPage retrieves the request's result page through the pruned
// top-k scorer instead of scoring every candidate. ok=false means the
// scorer could not build a pruning plan and the caller must fall back
// to the exhaustive path.
//
// The exact Total a paginating client needs is counted by walking
// candidate doc ids only — no score math. The anchor-boosted instances
// (those whose label is an entity the query names — a small set the
// label index resolves directly) are scored exactly via cursor seeks,
// so the anchor boost never inflates the unseen-document bound. The
// page itself then comes from iteratively-deepened pruned retrieval:
// ask the index for its IR top kq, convert and filter, merge in the
// anchor results, and stop once the page is provably complete — any
// unseen document is non-anchored, so its final score is at most the
// kq-th IR score times the remaining multiplier ceiling (max type
// affinity is known per query; utilities are bounded by the engine's
// monotone maxUtility). Every multiplier is monotone and non-negative,
// and the ceiling is computed by the same float expression shape as the
// per-result multipliers, so the float comparison is exact — strictly
// beating the ceiling guarantees the page matches the exhaustive path
// bit for bit, tie-breaks included; a tie deepens instead of stopping.
func (e *Engine) prunedPage(req Request, set ir.ShardSet, allowed map[string]bool, affinity map[string]float64, anchors map[string]bool) ([]Result, int, bool) {
	scorer := e.opts.Scorer
	terms := ir.Tokenize(req.Query)
	// With no filter every candidate counts: every index document has an
	// instance (the two are only ever updated together under the write
	// lock), so the per-candidate instance lookup is skipped entirely.
	var allow func(name string) bool
	if allowed != nil {
		allow = func(name string) bool {
			inst := e.instances[name]
			return inst != nil && allowed[inst.Def.Name]
		}
	}
	total := e.index.CountCandidatesSet(terms, allow, set)

	// Exact scoring of the anchor-labeled instances.
	var exclude map[string]bool
	var anchorResults []Result
	if len(anchors) > 0 {
		var anchorInsts []*core.Instance
		for label := range anchors {
			for _, inst := range e.byLabel[label] {
				anchorInsts = append(anchorInsts, inst)
			}
		}
		if len(anchorInsts) > 0 {
			names := make([]string, len(anchorInsts))
			exclude = make(map[string]bool, len(anchorInsts))
			for i, inst := range anchorInsts {
				names[i] = inst.ID()
				exclude[names[i]] = true
			}
			// With a shard subset, anchor instances living on excluded
			// shards are absent from the score map and drop out below —
			// their exclude entries are harmless (those names never
			// surface from subset retrieval anyway).
			scores, ok := e.index.ScoreNamedSet(scorer, terms, names, set)
			if !ok {
				return nil, 0, false
			}
			for _, inst := range anchorInsts {
				irScore, contained := scores[inst.ID()]
				if !contained {
					continue // no query term: the exhaustive scorer omits it too
				}
				if allowed != nil && !allowed[inst.Def.Name] {
					continue
				}
				anchorResults = append(anchorResults, e.resultFor(inst, irScore, affinity, anchors))
			}
		}
	}

	// Boosted retrieval: the index ranks by final score directly, with
	// the type/utility multipliers folded in per document and the
	// remaining multiplier ceiling (anchor-boosted documents are all in
	// anchorResults, so their ×1 boost drops out) driving the pruning
	// bounds. The top `target` non-anchor results plus the exact anchor
	// results are a superset of the true page.
	target := req.Offset + req.K
	maxAff := 0.0
	for _, a := range affinity {
		if a > maxAff {
			maxAff = a
		}
	}
	typeHi := 1 + e.opts.TypeBoost*maxAff
	blendHi := 1 - e.opts.UtilityInfluence + e.opts.UtilityInfluence*e.maxUtility
	booster := &pageBooster{e: e, allowed: allowed, exclude: exclude, affinity: affinity}
	hits, ok := e.index.SearchBoostedSet(scorer, req.Query, target, booster, typeHi*blendHi, set)
	if !ok {
		return nil, 0, false
	}
	results := make([]Result, 0, len(hits)+len(anchorResults))
	for _, h := range hits {
		results = append(results, e.resultFor(e.instances[h.Name], h.IRScore, affinity, anchors))
	}
	results = append(results, anchorResults...)
	sortResults(results)
	return results, total, true
}

// pageBooster adapts the engine's score multipliers to ir.Booster. Its
// Final must reproduce the exhaustive path's multiplier chain bit for
// bit for non-anchored documents: ir·type·utility (the trailing ×1
// anchor factor of resultFor is exact in floats and drops away). It is
// called concurrently from shard goroutines; it only reads state the
// engine's read lock protects.
type pageBooster struct {
	e        *Engine
	allowed  map[string]bool
	exclude  map[string]bool
	affinity map[string]float64
}

// Include implements ir.Booster.
func (b *pageBooster) Include(name string) bool {
	if b.exclude != nil && b.exclude[name] {
		return false
	}
	inst := b.e.instances[name]
	if inst == nil {
		return false
	}
	return b.allowed == nil || b.allowed[inst.Def.Name]
}

// Final implements ir.Booster.
func (b *pageBooster) Final(name string, irScore float64) float64 {
	inst := b.e.instances[name]
	typeFactor := 1 + b.e.opts.TypeBoost*b.affinity[inst.Def.Name]
	blend := 1 - b.e.opts.UtilityInfluence + b.e.opts.UtilityInfluence*inst.Utility
	return irScore * typeFactor * blend
}

// docInstances returns the dense global-doc-id → instance view of the
// engine, rebuilding the cached slice when a mutation has invalidated
// it. Callers hold the engine read lock; the cache's own lock
// serializes concurrent rebuilds. Tombstoned slots hold nil.
func (e *Engine) docInstances() []*core.Instance {
	v := e.docsVersion
	c := &e.docCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byDoc != nil && c.version == v {
		return c.byDoc
	}
	byDoc := make([]*core.Instance, e.index.Slots())
	for g := range byDoc {
		if name := e.index.Name(g); name != "" {
			byDoc[g] = e.instances[name]
		}
	}
	c.version = v
	c.byDoc = byDoc
	return byDoc
}

// noteUtility folds one observed instance utility into the monotone
// maxUtility bound. Callers hold the write lock (or are inside
// single-threaded construction).
func (e *Engine) noteUtility(u float64) {
	if u > e.maxUtility {
		e.maxUtility = u
	}
}

// indexLabel registers an instance under its anchor label; the pruned
// search path uses the label index to resolve the (small) set of
// anchor-boosted instances a query names, so the anchor boost never has
// to inflate the unseen-document bound.
func (e *Engine) indexLabel(inst *core.Instance) {
	if e.byLabel == nil {
		e.byLabel = make(map[string]map[string]*core.Instance)
	}
	label := inst.Label()
	m := e.byLabel[label]
	if m == nil {
		m = make(map[string]*core.Instance)
		e.byLabel[label] = m
	}
	m[inst.ID()] = inst
}

// dropLabel removes an instance id from the label index.
func (e *Engine) dropLabel(inst *core.Instance) {
	label := inst.Label()
	if m := e.byLabel[label]; m != nil {
		delete(m, inst.ID())
		if len(m) == 0 {
			delete(e.byLabel, label)
		}
	}
}

// BatchResult pairs one batched request's response with its error;
// exactly one of the two is set.
type BatchResult struct {
	Response *Response
	Err      error
}

// BatchSearch answers several requests against one consistent view of
// the engine: the read lock is taken once for the whole batch, so no
// feedback or instance mutation can interleave between items — every
// item scores the same index state and utilities. Distinct items are
// answered by ONE amortized pass over the shared posting lists (see
// batch.go); duplicate items (same canonical CacheKey) are evaluated
// once and returned as independent copies. Results are positionally
// aligned with reqs, bitwise identical to calling Search per item.
func (e *Engine) BatchSearch(ctx context.Context, reqs []Request) []BatchResult {
	return e.batchSearchSet(ctx, reqs, ir.ShardSet{})
}

// filterSet resolves a Filter to the set of definition names it allows;
// a nil map means "no filtering". Must be called with e.mu held.
func (e *Engine) filterSet(f Filter) (map[string]bool, error) {
	if f.IsZero() {
		return nil, nil
	}
	var byName map[string]bool
	if len(f.Definitions) > 0 {
		byName = make(map[string]bool, len(f.Definitions))
		for _, name := range f.Definitions {
			if e.cat.Definition(name) == nil {
				return nil, &UnknownDefinitionError{Name: name}
			}
			byName[name] = true
		}
	}
	if len(f.AnchorTypes) == 0 {
		return byName, nil
	}
	anchorTypes := make(map[string]bool, len(f.AnchorTypes))
	for _, at := range f.AnchorTypes {
		anchorTypes[at] = true
	}
	allowed := make(map[string]bool)
	for _, d := range e.cat.Definitions() {
		if byName != nil && !byName[d.Name] {
			continue
		}
		if _, col, ok := d.AnchorParam(); ok && anchorTypes[col.String()] {
			allowed[d.Name] = true
		}
	}
	return allowed, nil
}

// sortResults orders results by score desc, ties broken by instance ID
// asc — the deterministic order every search path (sharded or not) must
// present. IDs are materialized once up front: Instance.ID() builds a
// string, far too expensive to recompute inside the comparator.
func sortResults(results []Result) {
	ids := make([]string, len(results))
	for i := range results {
		ids[i] = results[i].Instance.ID()
	}
	sort.Sort(&resultSorter{results: results, ids: ids})
}

type resultSorter struct {
	results []Result
	ids     []string
}

func (s *resultSorter) Len() int { return len(s.results) }
func (s *resultSorter) Less(i, j int) bool {
	if s.results[i].Score != s.results[j].Score {
		return s.results[i].Score > s.results[j].Score
	}
	return s.ids[i] < s.ids[j]
}
func (s *resultSorter) Swap(i, j int) {
	s.results[i], s.results[j] = s.results[j], s.results[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// typeAffinity scores each definition against the query's segmentation —
// the paper's "high overlap with the qunit definition" step. An entity
// segment matching the definition's anchor type is the strongest signal;
// attribute vocabulary matching the definition's keywords or covered
// tables adds more.
func (e *Engine) typeAffinity(sg segment.Segmentation) map[string]float64 {
	aff := make(map[string]float64, e.cat.Len())
	entities := sg.Entities()
	attrs := sg.Attributes()
	for _, da := range e.affinityDefs() {
		d := da.d
		score := 0.0
		_, anchorCol, hasAnchor := d.AnchorParam()
		for _, ent := range entities {
			if !hasAnchor {
				continue
			}
			if ent.Type == anchorCol {
				score += 2
			} else if ent.Type.Table == anchorCol.Table {
				score += 1
			}
		}
		for _, a := range attrs {
			if da.kw[a.Text] {
				score += 2
			} else if da.tables[a.Table] {
				score += 1
			}
		}
		// A bare single-entity query prefers profile qunits: rollup
		// definitions (those with sections) answer underspecified
		// queries.
		if len(entities) == 1 && len(attrs) == 0 && da.rollup {
			score += 1
		}
		if score > 0 {
			aff[d.Name] = score
		}
	}
	return aff
}

// affinityDefs returns the cached per-definition type-affinity state,
// rebuilding it when the catalog has grown. Rebuilding normalizes every
// definition's keyword vocabulary once instead of once per query.
func (e *Engine) affinityDefs() []defAffinity {
	c := &e.affCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.defs != nil && c.n == e.cat.Len() {
		return c.defs
	}
	ds := e.cat.Definitions()
	defs := make([]defAffinity, 0, len(ds))
	for _, d := range ds {
		kw := make(map[string]bool, len(d.Keywords))
		for _, w := range d.Keywords {
			kw[ir.Normalize(w)] = true
		}
		defs = append(defs, defAffinity{d: d, kw: kw, tables: definitionTables(d), rollup: len(d.Sections) > 0})
	}
	c.n, c.defs = e.cat.Len(), defs
	return defs
}

// InstanceIDs returns every indexed instance ID in sorted order — a
// stable enumeration for tools (and tests/benchmarks) that need to
// address the live instance set.
func (e *Engine) InstanceIDs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := make([]string, 0, len(e.instances))
	for id := range e.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Instance returns the indexed instance with the given ID, if any. Used
// by tools that inspect engine state.
func (e *Engine) Instance(id string) (*core.Instance, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	inst, ok := e.instances[id]
	return inst, ok
}

// InstanceDetail returns the instance with the given ID together with a
// consistent snapshot of its utility. Unlike reading Instance().Utility
// directly, the snapshot is taken under the engine lock, so it never
// races with concurrent ApplyFeedback updates.
func (e *Engine) InstanceDetail(id string) (inst *core.Instance, utility float64, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	inst, ok = e.instances[id]
	if !ok {
		return nil, 0, false
	}
	return inst, inst.Utility, true
}
