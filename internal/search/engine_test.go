package search

import (
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/ir"
)

func expertEngine(t *testing.T) (*imdb.Universe, *Engine) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 200, Movies: 120, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	return u, e
}

func TestEngineBuild(t *testing.T) {
	_, e := expertEngine(t)
	if e.InstanceCount() == 0 {
		t.Fatal("no instances")
	}
	if e.Catalog() == nil || e.Segmenter() == nil {
		t.Fatal("accessors broken")
	}
}

func TestSearchPaperRunningExample(t *testing.T) {
	_, e := expertEngine(t)
	// Fig. 1: "star wars cast" must pick the cast qunit instance of the
	// movie Star Wars.
	res := searchTopK(e, "star wars cast", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0]
	if top.Instance.Def.Name != "movie-cast" {
		t.Errorf("top def = %s, want movie-cast (results: %s)", top.Instance.Def.Name, resultIDs(res))
	}
	if top.Instance.Label() != "star wars" {
		t.Errorf("top anchor = %q", top.Instance.Label())
	}
	if top.TypeAffinity == 0 {
		t.Error("type identification contributed nothing")
	}
}

func TestSearchSingleEntityGetsProfile(t *testing.T) {
	_, e := expertEngine(t)
	res := searchTopK(e, "george clooney", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Instance.Def.Name != "person-profile" {
		t.Errorf("top def = %s, want person-profile (results: %s)", res[0].Instance.Def.Name, resultIDs(res))
	}
	if res[0].Instance.Label() != "george clooney" {
		t.Errorf("top anchor = %q", res[0].Instance.Label())
	}
}

func TestSearchEntityAttributeVariants(t *testing.T) {
	u, e := expertEngine(t)
	// Fact-dependent aspects (soundtrack, trivia) only exist for movies
	// that have such rows; pick anchors that do.
	withSoundtrack := movieWithFact(u, imdb.TableSoundtrack)
	withTrivia := movieWithFact(u, imdb.TableTrivia)
	withBoxOffice := movieWithFact(u, imdb.TableBoxOffice)
	cases := []struct {
		query   string
		wantDef string
	}{
		{withSoundtrack + " soundtrack", "movie-soundtrack"},
		{withBoxOffice + " box office", "movie-boxoffice"},
		{"george clooney movies", "person-profile"},
		{withTrivia + " trivia", "movie-trivia"},
	}
	for _, c := range cases {
		res := searchTopK(e, c.query, 3)
		if len(res) == 0 {
			t.Errorf("%q: no results", c.query)
			continue
		}
		if res[0].Instance.Def.Name != c.wantDef {
			t.Errorf("%q: top def = %s, want %s", c.query, res[0].Instance.Def.Name, c.wantDef)
		}
	}
}

// movieWithFact returns the most popular movie that has at least one row
// in the given fact table.
func movieWithFact(u *imdb.Universe, fact string) string {
	for _, m := range u.Movies {
		for _, ref := range u.DB.ReferencingRows(imdb.TableMovie, m.Row) {
			if ref.Table == fact {
				return m.Name
			}
		}
	}
	return ""
}

func TestSearchAnchorsCorrectEntity(t *testing.T) {
	u, e := expertEngine(t)
	// Every famous movie must surface its own cast instance for
	// "<title> cast".
	for _, title := range []string{"star wars", "batman", "terminator"} {
		if _, ok := u.FindMovie(title); !ok {
			continue
		}
		res := searchTopK(e, title+" cast", 1)
		if len(res) == 0 {
			t.Errorf("%q cast: no results", title)
			continue
		}
		if res[0].Instance.Label() != title {
			t.Errorf("%q cast: anchored on %q", title, res[0].Instance.Label())
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	_, e := expertEngine(t)
	a := searchTopK(e, "tom hanks", 10)
	b := searchTopK(e, "tom hanks", 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Instance.ID() != b[i].Instance.ID() || a[i].Score != b[i].Score {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	_, e := expertEngine(t)
	if res := searchTopK(e, "zzzz qqqq wwww", 5); len(res) != 0 {
		t.Errorf("nonsense query returned %d results", len(res))
	}
	if res := searchTopK(e, "", 5); len(res) != 0 {
		t.Errorf("empty query returned %d results", len(res))
	}
}

func TestSearchKRespected(t *testing.T) {
	_, e := expertEngine(t)
	if res := searchTopK(e, "the", 3); len(res) > 3 {
		t.Errorf("k=3 returned %d", len(res))
	}
}

func TestSearchResultHasRenderedContent(t *testing.T) {
	_, e := expertEngine(t)
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	inst := res[0].Instance
	if inst.Rendered.Text == "" || inst.Rendered.XML == "" {
		t.Error("instance has no rendered content")
	}
	if len(inst.Tuples) == 0 {
		t.Error("instance has no provenance")
	}
	if !strings.Contains(inst.Rendered.XML, "<cast") {
		t.Errorf("XML = %q", inst.Rendered.XML[:min(80, len(inst.Rendered.XML))])
	}
}

func TestSearchWithTFIDF(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 80, Movies: 60})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Scorer: ir.TFIDF{}, Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 || res[0].Instance.Def.Name != "movie-cast" {
		t.Errorf("TFIDF engine top = %v", resultIDs(res))
	}
}

func TestInstanceLookup(t *testing.T) {
	_, e := expertEngine(t)
	if _, ok := e.Instance("movie-cast:star wars"); !ok {
		t.Error("known instance not found")
	}
	if _, ok := e.Instance("nope:nothing"); ok {
		t.Error("found nonexistent instance")
	}
}

func resultIDs(res []Result) string {
	ids := make([]string, len(res))
	for i, r := range res {
		ids[i] = r.Instance.ID()
	}
	return strings.Join(ids, ", ")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
