package search

import (
	"context"
	"fmt"
	"math"
)

// Feedback is the relevance-feedback extension the paper's §3 motivates:
// "The benefit of maintaining a clear separation between ranking and
// database content is that … our system [is] easier to extend and enhance
// with additional IR methods for ranking, such as relevance feedback."
//
// A positive signal on a result raises its definition's utility; a
// negative signal lowers it. Because utility multiplies into every later
// score, feedback shifts the whole qunit *type* — a user telling us the
// cast qunit was the right answer for "[title] cast" improves every
// future cast query, which is exactly the granularity the qunit paradigm
// buys.
//
// The update is a bounded exponential step: utilities stay in (0, 1].
type Feedback struct {
	// Rate is the learning rate; 0 means 0.2.
	Rate float64
}

// Apply records one feedback signal for the instance with the given ID.
// positive=true reinforces the instance's definition; positive=false
// penalizes it. It returns the definition's new utility. Safe to call
// concurrently with Search: the utility update is serialized behind the
// engine's lock.
func (e *Engine) ApplyFeedback(instanceID string, positive bool, f Feedback) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inst, ok := e.instances[instanceID]
	if !ok {
		return 0, &InstanceNotFoundError{ID: instanceID}
	}
	rate := f.Rate
	if rate == 0 {
		rate = 0.2
	}
	if e.mlog != nil {
		if err := e.mlog.AppendFeedback(instanceID, positive, rate); err != nil {
			return 0, fmt.Errorf("search: logging feedback: %w", err)
		}
	}
	def := inst.Def
	if positive {
		def.Utility = def.Utility + rate*(1-def.Utility)
	} else {
		def.Utility = def.Utility * (1 - rate)
	}
	if def.Utility < 1e-6 {
		def.Utility = 1e-6
	}
	if def.Utility > 1 {
		def.Utility = 1
	}
	// Instance utilities mirror their definition's.
	for _, other := range e.instances {
		if other.Def == def {
			other.Utility = def.Utility
		}
	}
	e.noteUtility(def.Utility)
	return def.Utility, nil
}

// FeedbackSession replays a sequence of (query, clicked instance) pairs —
// a miniature click log — applying positive feedback to clicked results
// and negative feedback to results that ranked above the click but were
// skipped (the classic "skip-above" interpretation).
func (e *Engine) FeedbackSession(clicks map[string]string, f Feedback) error {
	ctx := context.Background()
	for query, clicked := range clicks {
		resp, err := e.Search(ctx, Request{Query: query, K: 10})
		if err != nil {
			return err
		}
		for _, r := range resp.Results {
			id := r.Instance.ID()
			if id == clicked {
				if _, err := e.ApplyFeedback(id, true, f); err != nil {
					return err
				}
				break
			}
			if _, err := e.ApplyFeedback(id, false, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// UtilityEntropy summarizes how concentrated the catalog's utilities are;
// monitoring it across feedback epochs shows the catalog adapting.
// Maximal when all definitions are equally useful.
func (e *Engine) UtilityEntropy() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	defs := e.cat.Definitions()
	total := 0.0
	for _, d := range defs {
		total += d.Utility
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, d := range defs {
		p := d.Utility / total
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
