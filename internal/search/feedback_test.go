package search

import (
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
)

func TestApplyFeedbackMovesUtility(t *testing.T) {
	_, e := expertEngine(t)
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	id := res[0].Instance.ID()
	before := res[0].Instance.Def.Utility

	after, err := e.ApplyFeedback(id, true, Feedback{})
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("positive feedback: %v -> %v", before, after)
	}
	if after > 1 {
		t.Errorf("utility above 1: %v", after)
	}

	down, err := e.ApplyFeedback(id, false, Feedback{})
	if err != nil {
		t.Fatal(err)
	}
	if down >= after {
		t.Errorf("negative feedback: %v -> %v", after, down)
	}
}

func TestApplyFeedbackUnknownInstance(t *testing.T) {
	_, e := expertEngine(t)
	if _, err := e.ApplyFeedback("nope:nothing", true, Feedback{}); err == nil {
		t.Error("unknown instance accepted")
	}
}

func TestFeedbackBounded(t *testing.T) {
	_, e := expertEngine(t)
	res := searchTopK(e, "star wars cast", 1)
	id := res[0].Instance.ID()
	for i := 0; i < 100; i++ {
		u, err := e.ApplyFeedback(id, true, Feedback{Rate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if u > 1 {
			t.Fatalf("utility escaped above 1: %v", u)
		}
	}
	for i := 0; i < 200; i++ {
		u, err := e.ApplyFeedback(id, false, Feedback{Rate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if u <= 0 {
			t.Fatalf("utility collapsed to %v", u)
		}
	}
}

func TestFeedbackChangesRanking(t *testing.T) {
	// Build a fresh engine (feedback mutates definitions, so no sharing).
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	// An ambiguous query where summary and cast both plausibly answer.
	query := "star wars"
	before := searchTopK(e, query, 5)
	if len(before) < 2 {
		t.Skip("not enough results to reorder")
	}
	// Hammer the second result with positive feedback and the first with
	// negative; their order must eventually flip.
	first, second := before[0].Instance.ID(), before[1].Instance.ID()
	for i := 0; i < 12; i++ {
		if _, err := e.ApplyFeedback(second, true, Feedback{Rate: 0.4}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ApplyFeedback(first, false, Feedback{Rate: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	after := searchTopK(e, query, 5)
	if after[0].Instance.ID() == first {
		t.Errorf("ranking did not adapt: %s still first", first)
	}
}

func TestFeedbackSession(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	res := searchTopK(e, "star wars cast", 2)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	clicked := res[0].Instance.ID()
	prior := res[0].Instance.Def.Utility
	if err := e.FeedbackSession(map[string]string{"star wars cast": clicked}, Feedback{}); err != nil {
		t.Fatal(err)
	}
	if res[0].Instance.Def.Utility <= prior {
		t.Error("clicked definition did not gain utility")
	}
}

func TestUtilityEntropy(t *testing.T) {
	_, e := expertEngine(t)
	h := e.UtilityEntropy()
	if h <= 0 {
		t.Fatalf("entropy = %v", h)
	}
	// Concentrating utility on one definition lowers entropy.
	res := searchTopK(e, "star wars cast", 1)
	winner := res[0].Instance.Def.Name
	for i := 0; i < 30; i++ {
		if _, err := e.ApplyFeedback(res[0].Instance.ID(), true, Feedback{Rate: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for _, other := range e.Catalog().Definitions() {
		if other.Name != winner {
			other.Utility *= 0.05
		}
	}
	if got := e.UtilityEntropy(); got >= h {
		t.Errorf("entropy did not drop: %v -> %v", h, got)
	}
}
