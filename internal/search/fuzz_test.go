package search

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
)

// Robustness: the engine never panics and stays deterministic under
// arbitrary query strings — entity fragments, punctuation, empty tokens,
// unicode, very long inputs.
func TestSearchNeverPanics(t *testing.T) {
	_, e := expertEngine(t)
	r := rand.New(rand.NewSource(77))
	fragments := []string{
		"star", "wars", "cast", "george", "clooney", "'", "\"", "$x",
		"<tag>", "movie.title", "…", "日本語", "", "   ", "-", "the",
		strings.Repeat("long", 50),
	}
	for i := 0; i < 500; i++ {
		n := r.Intn(6)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[r.Intn(len(fragments))]
		}
		q := strings.Join(parts, " ")
		a := searchTopK(e, q, 5)
		b := searchTopK(e, q, 5)
		if len(a) != len(b) {
			t.Fatalf("nondeterministic for %q", q)
		}
		for k := range a {
			if a[k].Instance.ID() != b[k].Instance.ID() {
				t.Fatalf("nondeterministic ranking for %q", q)
			}
		}
	}
}

// parityEngines builds two engines over independently-derived (but
// deterministic, hence identical) catalogs: one on the pruned top-k
// path, one forced through the exhaustive oracle. Catalogs must not be
// shared — feedback mutates definition utilities in place, and the
// mirrored feedback calls below must not compound through a shared
// definition object.
func parityEngines(t *testing.T, shards int) (pruned, oracle *Engine) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	build := func(exhaustive bool) *Engine {
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(cat, Options{
			Synonyms:         imdb.AttributeSynonyms(),
			Shards:           shards,
			ExhaustiveScorer: exhaustive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return build(false), build(true)
}

// randomRequest builds a randomized structured request over the movie
// catalog's vocabulary: mixed k, offsets past the end, definition and
// anchor-type filters, explain mode.
func randomRequest(r *rand.Rand) Request {
	entities := []string{"star wars", "george clooney", "ocean", "the matrix", "tom hanks", "wars"}
	attrs := []string{"cast", "movies", "plot", "soundtrack", "year", "filmography"}
	q := entities[r.Intn(len(entities))]
	if r.Intn(2) == 0 {
		q += " " + attrs[r.Intn(len(attrs))]
	}
	req := Request{
		Query:   q,
		K:       1 + r.Intn(12),
		Offset:  []int{0, 0, 0, 1, 3, 50}[r.Intn(6)],
		Explain: r.Intn(2) == 0,
	}
	switch r.Intn(4) {
	case 0:
		req.Filter.Definitions = []string{"movie-cast"}
	case 1:
		req.Filter.Definitions = []string{"movie-cast", "person-profile", "movie-profile"}
	case 2:
		req.Filter.AnchorTypes = []string{"movie.title"}
	}
	return req
}

// TestPrunedEngineParityFuzz is the engine-level half of the parity
// harness: randomized structured requests, interleaved with mirrored
// mutations (feedback, live instance add/remove), must produce bitwise
// identical responses from the pruned path and the exhaustive oracle.
func TestPrunedEngineParityFuzz(t *testing.T) {
	for _, shards := range []int{1, 3} {
		pruned, oracle := parityEngines(t, shards)
		r := rand.New(rand.NewSource(int64(400 + shards)))
		added := []string{}
		ctx := context.Background()
		for step := 0; step < 120; step++ {
			// Mirror a mutation on both engines every few steps.
			switch r.Intn(6) {
			case 0: // identical feedback signal on both engines
				if res := searchTopK(pruned, "star wars cast", 3); len(res) > 0 {
					id := res[r.Intn(len(res))].Instance.ID()
					positive := r.Intn(2) == 0
					if _, err := pruned.ApplyFeedback(id, positive, Feedback{}); err != nil {
						t.Fatal(err)
					}
					if _, err := oracle.ApplyFeedback(id, positive, Feedback{}); err != nil {
						t.Fatal(err)
					}
				}
			case 1: // add a fresh anchored instance to both
				anchor := fmt.Sprintf("zz fuzz movie %d", step)
				if _, err := pruned.AddAnchorInstance("movie-cast", anchor); err != nil {
					t.Fatal(err)
				}
				inst, err := oracle.AddAnchorInstance("movie-cast", anchor)
				if err != nil {
					t.Fatal(err)
				}
				added = append(added, inst.ID())
			case 2: // remove one previously added instance from both
				if len(added) > 0 {
					id := added[len(added)-1]
					added = added[:len(added)-1]
					if err := pruned.RemoveInstance(id); err != nil {
						t.Fatal(err)
					}
					if err := oracle.RemoveInstance(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			req := randomRequest(r)
			want, errO := oracle.Search(ctx, req)
			got, errP := pruned.Search(ctx, req)
			if (errO == nil) != (errP == nil) {
				t.Fatalf("step %d %+v: pruned err %v, oracle err %v", step, req, errP, errO)
			}
			if errO != nil {
				continue
			}
			assertResponsesIdentical(t, fmt.Sprintf("shards=%d step=%d req=%+v", shards, step, req), want, got)
		}
	}
}

// Regression: a huge offset must page past the end gracefully on the
// pruned path (it once sized an allocation by offset+k and panicked),
// and stay bitwise-consistent with the oracle.
func TestPrunedHugeOffset(t *testing.T) {
	pruned, oracle := parityEngines(t, 2)
	ctx := context.Background()
	for _, offset := range []int{1 << 20, 1 << 40, 1 << 50} {
		req := Request{Query: "star wars cast", K: 10, Offset: offset}
		got, err := pruned.Search(ctx, req)
		if err != nil {
			t.Fatalf("offset %d: %v", offset, err)
		}
		want, err := oracle.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != 0 || got.Total != want.Total {
			t.Fatalf("offset %d: %d results, total %d (oracle %d)", offset, len(got.Results), got.Total, want.Total)
		}
	}
}

// Robustness: the resolver never panics either, and errors only surface
// as errors.
func TestResolverNeverPanics(t *testing.T) {
	_, r, _ := resolverFixture(t)
	rng := rand.New(rand.NewSource(78))
	fragments := []string{"star", "wars", "cast", "tom", "hanks", "$", "<", "", "zz"}
	for i := 0; i < 300; i++ {
		n := rng.Intn(5)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[rng.Intn(len(fragments))]
		}
		if _, err := r.Search(strings.Join(parts, " "), 3); err != nil {
			t.Fatalf("resolver error on fuzz input: %v", err)
		}
	}
}
