package search

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the engine never panics and stays deterministic under
// arbitrary query strings — entity fragments, punctuation, empty tokens,
// unicode, very long inputs.
func TestSearchNeverPanics(t *testing.T) {
	_, e := expertEngine(t)
	r := rand.New(rand.NewSource(77))
	fragments := []string{
		"star", "wars", "cast", "george", "clooney", "'", "\"", "$x",
		"<tag>", "movie.title", "…", "日本語", "", "   ", "-", "the",
		strings.Repeat("long", 50),
	}
	for i := 0; i < 500; i++ {
		n := r.Intn(6)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[r.Intn(len(fragments))]
		}
		q := strings.Join(parts, " ")
		a := e.SearchTopK(q, 5)
		b := e.SearchTopK(q, 5)
		if len(a) != len(b) {
			t.Fatalf("nondeterministic for %q", q)
		}
		for k := range a {
			if a[k].Instance.ID() != b[k].Instance.ID() {
				t.Fatalf("nondeterministic ranking for %q", q)
			}
		}
	}
}

// Robustness: the resolver never panics either, and errors only surface
// as errors.
func TestResolverNeverPanics(t *testing.T) {
	_, r, _ := resolverFixture(t)
	rng := rand.New(rand.NewSource(78))
	fragments := []string{"star", "wars", "cast", "tom", "hanks", "$", "<", "", "zz"}
	for i := 0; i < 300; i++ {
		n := rng.Intn(5)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[rng.Intn(len(fragments))]
		}
		if _, err := r.Search(strings.Join(parts, " "), 3); err != nil {
			t.Fatalf("resolver error on fuzz input: %v", err)
		}
	}
}
