package search

import "context"

// searchTopK is the test-local replacement for the deleted SearchTopK
// shim: a plain positional top-k call that, like the shim, flattens
// errors (empty query, etc.) to an empty result.
func searchTopK(e *Engine, query string, k int) []Result {
	resp, err := e.Search(context.Background(), Request{Query: query, K: k})
	if err != nil {
		return nil
	}
	return resp.Results
}
