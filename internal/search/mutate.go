package search

import (
	"fmt"

	"qunits/internal/core"
	"qunits/internal/ir"
)

// InstanceExistsError reports an AddInstance whose instance ID is
// already indexed.
type InstanceExistsError struct {
	// ID is the conflicting instance ID.
	ID string
}

// Error implements error.
func (e *InstanceExistsError) Error() string {
	return fmt.Sprintf("search: instance %q already indexed", e.ID)
}

// InstanceNotFoundError reports an operation addressing an instance ID
// the engine does not hold.
type InstanceNotFoundError struct {
	// ID is the missing instance ID.
	ID string
}

// Error implements error.
func (e *InstanceNotFoundError) Error() string {
	return fmt.Sprintf("search: no instance %q", e.ID)
}

// InvalidAnchorError reports an AddAnchorInstance whose anchor value
// does not fit the definition's arity: a parameterized definition given
// no anchor, or a parameterless one given one. It is a caller mistake
// (a 4xx on the HTTP surface), unlike instantiation failures, which are
// engine-side faults.
type InvalidAnchorError struct {
	// Definition is the definition the call addressed.
	Definition string
	// Reason says which way the arity was violated.
	Reason string
}

// Error implements error.
func (e *InvalidAnchorError) Error() string {
	return fmt.Sprintf("search: definition %q %s", e.Definition, e.Reason)
}

// AddInstance indexes one qunit instance into the live engine: the
// instance is analyzed with the engine's field weights and merged into
// the sharded index, and is retrievable by the next Search — no rebuild,
// no restart. The update is serialized against concurrent searches by
// the engine lock; collection statistics (document count, frequencies,
// total length) shift for every document, which is why callers holding
// derived state (e.g. a result cache) must invalidate it.
//
// The instance's ID must be new; adding an already-indexed ID returns
// *InstanceExistsError.
func (e *Engine) AddInstance(inst *core.Instance) error {
	if inst == nil || inst.Def == nil {
		return fmt.Errorf("search: AddInstance of nil instance or instance without definition")
	}
	// Analysis is pure and CPU-bound; do it before taking the lock so
	// concurrent searches stall only for the index merge itself.
	doc := ir.AnalyzeFields(indexFields(inst, e.opts)...)
	id := inst.ID()
	// indexMu first (the index-structure writers' lock — see
	// compact.go), then the engine lock: a compaction pass in flight
	// must finish and swap before this document lands, or the add would
	// be lost with the old index.
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.instances[id]; dup {
		return &InstanceExistsError{ID: id}
	}
	// Re-sync the utility under the lock: the instance was instantiated
	// outside it, and a feedback update that landed in between mirrored
	// the definition's new utility onto every *indexed* instance — this
	// one was not indexed yet and would stay stale forever otherwise
	// (instance utilities always mirror their definition's).
	inst.Utility = inst.Def.Utility
	// Log before applying: validation is done and the apply below cannot
	// fail, so an appended record always corresponds to a state change —
	// and an append failure aborts with the engine untouched.
	if e.mlog != nil {
		if err := e.mlog.AppendAdd(inst.Def.Name, inst.Params); err != nil {
			return fmt.Errorf("search: logging add: %w", err)
		}
	}
	if _, err := e.index.AddAnalyzed(id, doc); err != nil {
		return err
	}
	e.instances[id] = inst
	e.docsVersion++
	e.noteUtility(inst.Utility)
	e.indexLabel(inst)
	if _, known := e.defTables[inst.Def.Name]; !known {
		e.defTables[inst.Def.Name] = definitionTables(inst.Def)
	}
	return nil
}

// RemoveInstance deletes an indexed instance by ID: its postings are
// unwound from the index and the collection statistics adjusted, so the
// next Search neither returns it nor counts it. Removing an unknown ID
// returns *InstanceNotFoundError. Serialized against concurrent searches
// by the engine lock.
//
// The removed document's index slot is tombstoned, not reclaimed; when
// an auto-compaction policy is installed (Options.CompactRatio /
// SetAutoCompact) and the removal pushes the tombstone ratio over the
// threshold, the engine compacts before returning — searches stay
// available throughout (see Compact).
func (e *Engine) RemoveInstance(id string) error {
	if err := e.removeInstance(id); err != nil {
		return err
	}
	e.maybeAutoCompact()
	return nil
}

// removeInstance is RemoveInstance's locked body; the auto-compaction
// check runs after every lock is released.
func (e *Engine) removeInstance(id string) error {
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.instances[id]; !ok {
		return &InstanceNotFoundError{ID: id}
	}
	if e.mlog != nil {
		if err := e.mlog.AppendRemove(id); err != nil {
			return fmt.Errorf("search: logging remove: %w", err)
		}
	}
	if err := e.index.Remove(id); err != nil {
		return err
	}
	e.dropLabel(e.instances[id])
	delete(e.instances, id)
	e.docsVersion++
	return nil
}

// AddAnchorInstance instantiates the named catalog definition for one
// anchor value and indexes the result — the one-call form of "a new
// entity appeared; derive and serve its qunit". For a parameterless
// definition anchor must be empty. The anchor need not exist in the
// database: the derived qunit is then empty-bodied but still findable
// by its label, which is the paper's "empty qunit" case ("the caller
// decides whether an empty qunit is meaningful").
//
// It returns the indexed instance, *UnknownDefinitionError for an
// unknown definition name, or *InstanceExistsError when the anchor's
// instance is already indexed.
func (e *Engine) AddAnchorInstance(defName, anchor string) (*core.Instance, error) {
	d := e.cat.Definition(defName)
	if d == nil {
		return nil, &UnknownDefinitionError{Name: defName}
	}
	params := map[string]string{}
	if param, _, ok := d.AnchorParam(); ok {
		if anchor == "" {
			return nil, &InvalidAnchorError{Definition: defName, Reason: "needs an anchor value"}
		}
		params[param] = anchor
	} else if anchor != "" {
		return nil, &InvalidAnchorError{Definition: defName, Reason: "takes no anchor"}
	}
	// Instantiate reads the immutable database plus the definition's
	// utility; hold the read lock so the utility read cannot race a
	// concurrent ApplyFeedback.
	e.mu.RLock()
	inst, err := e.cat.Instantiate(d, params)
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if err := e.AddInstance(inst); err != nil {
		return nil, err
	}
	return inst, nil
}
