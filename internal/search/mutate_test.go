package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAddAnchorInstanceMakesSearchable(t *testing.T) {
	_, e := expertEngine(t)
	before := e.InstanceCount()
	inst, err := e.AddAnchorInstance("movie-cast", "zz totally new release")
	if err != nil {
		t.Fatalf("AddAnchorInstance: %v", err)
	}
	if got := e.InstanceCount(); got != before+1 {
		t.Fatalf("InstanceCount = %d, want %d", got, before+1)
	}
	res := searchTopK(e, "zz totally new release", 3)
	if len(res) == 0 || res[0].Instance.ID() != inst.ID() {
		t.Fatalf("added instance not top result for its label: %v", resultIDs(res))
	}
	if _, util, ok := e.InstanceDetail(inst.ID()); !ok || util <= 0 {
		t.Fatalf("InstanceDetail after add: ok=%v util=%v", ok, util)
	}
}

func TestAddAnchorInstanceErrors(t *testing.T) {
	_, e := expertEngine(t)
	if _, err := e.AddAnchorInstance("no-such-def", "x"); err == nil {
		t.Fatal("unknown definition did not error")
	} else {
		var ud *UnknownDefinitionError
		if !errors.As(err, &ud) {
			t.Fatalf("unknown definition error type: %T", err)
		}
	}
	if _, err := e.AddAnchorInstance("movie-cast", ""); err == nil {
		t.Fatal("missing anchor did not error")
	}
	// An anchor that already has an instance collides on the instance ID.
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 {
		t.Fatal("fixture query found nothing")
	}
	anchor := res[0].Instance.Label()
	if _, err := e.AddAnchorInstance("movie-cast", anchor); err == nil {
		t.Fatalf("duplicate anchor %q did not error", anchor)
	} else {
		var dup *InstanceExistsError
		if !errors.As(err, &dup) {
			t.Fatalf("duplicate error type: %T (%v)", err, err)
		}
	}
}

func TestRemoveInstance(t *testing.T) {
	_, e := expertEngine(t)
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 {
		t.Fatal("fixture query found nothing")
	}
	id := res[0].Instance.ID()
	before := e.InstanceCount()
	if err := e.RemoveInstance(id); err != nil {
		t.Fatalf("RemoveInstance: %v", err)
	}
	if got := e.InstanceCount(); got != before-1 {
		t.Fatalf("InstanceCount = %d, want %d", got, before-1)
	}
	for _, r := range searchTopK(e, "star wars cast", 20) {
		if r.Instance.ID() == id {
			t.Fatalf("removed instance %q still in results", id)
		}
	}
	if _, _, ok := e.InstanceDetail(id); ok {
		t.Fatal("InstanceDetail still resolves removed instance")
	}
	// Removing again is a typed not-found error.
	var nf *InstanceNotFoundError
	if err := e.RemoveInstance(id); !errors.As(err, &nf) {
		t.Fatalf("second remove: %T (%v)", err, err)
	}
	// The ID is free for re-adding.
	if _, err := e.AddAnchorInstance("movie-cast", res[0].Instance.Label()); err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
	again := searchTopK(e, "star wars cast", 3)
	if len(again) == 0 || again[0].Instance.ID() != id {
		t.Fatalf("re-added instance not retrievable: %v", resultIDs(again))
	}
}

// TestConcurrentSearchAndMutation races searches against instance
// add/remove cycles and feedback — the live-update contract: every call
// is serialized by the engine lock, and the race detector must stay
// quiet (`make race` runs this package with -race).
func TestConcurrentSearchAndMutation(t *testing.T) {
	_, e := expertEngine(t)
	const (
		searchers = 4
		rounds    = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := []string{"star wars cast", "george clooney", "zz live update", "movie"}
			for i := 0; i < rounds; i++ {
				q := queries[(i+w)%len(queries)]
				if _, err := e.Search(context.Background(), Request{Query: q, K: 5, Explain: i%2 == 0}); err != nil {
					t.Errorf("search %q: %v", q, err)
					return
				}
				e.InstanceCount()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			anchor := fmt.Sprintf("zz live update %d", i)
			inst, err := e.AddAnchorInstance("movie-cast", anchor)
			if err != nil {
				t.Errorf("add %q: %v", anchor, err)
				return
			}
			if i%2 == 0 {
				if err := e.RemoveInstance(inst.ID()); err != nil {
					t.Errorf("remove %q: %v", inst.ID(), err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		res := searchTopK(e, "star wars cast", 1)
		if len(res) == 0 {
			return
		}
		id := res[0].Instance.ID()
		for i := 0; i < rounds; i++ {
			if _, err := e.ApplyFeedback(id, i%2 == 0, Feedback{}); err != nil {
				t.Errorf("feedback: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestDumpRestoreRoundTrip checks the state bridge directly: a restored
// engine returns responses identical to the original, including after
// feedback and live mutation shifted the original's state.
func TestDumpRestoreRoundTrip(t *testing.T) {
	u, e := expertEngine(t)
	// Shift learned state and the instance set so the dump carries more
	// than a fresh build would.
	res := searchTopK(e, "star wars cast", 1)
	if len(res) == 0 {
		t.Fatal("fixture query found nothing")
	}
	if _, err := e.ApplyFeedback(res[0].Instance.ID(), true, Feedback{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddAnchorInstance("movie-cast", "zz dumped addition"); err != nil {
		t.Fatal(err)
	}
	st, err := e.DumpState()
	if err != nil {
		t.Fatalf("DumpState: %v", err)
	}
	restored, err := RestoreEngine(u.DB, st)
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	if restored.InstanceCount() != e.InstanceCount() {
		t.Fatalf("restored InstanceCount %d, want %d", restored.InstanceCount(), e.InstanceCount())
	}
	for _, q := range []string{"star wars cast", "george clooney", "zz dumped addition"} {
		req := Request{Query: q, K: 10, Explain: true}
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertResponsesIdentical(t, q, want, got)
	}
}

// assertResponsesIdentical requires two responses to agree exactly —
// result identity, every score component bit-for-bit, totals, and the
// explain payload.
func assertResponsesIdentical(t *testing.T, q string, want, got *Response) {
	t.Helper()
	if got.Total != want.Total {
		t.Fatalf("query %q: Total %d, want %d", q, got.Total, want.Total)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("query %q: %d results, want %d", q, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.Instance.ID() != w.Instance.ID() {
			t.Fatalf("query %q result %d: %q, want %q", q, i, g.Instance.ID(), w.Instance.ID())
		}
		pairs := [][2]float64{
			{g.Score, w.Score}, {g.IRScore, w.IRScore},
			{g.TypeAffinity, w.TypeAffinity}, {g.TypeFactor, w.TypeFactor},
			{g.Utility, w.Utility}, {g.UtilityBlend, w.UtilityBlend},
			{g.AnchorBoost, w.AnchorBoost},
		}
		for j, p := range pairs {
			if p[0] != p[1] {
				t.Fatalf("query %q result %d component %d: %v, want %v (not bitwise identical)", q, i, j, p[0], p[1])
			}
		}
	}
	if (want.Explain == nil) != (got.Explain == nil) {
		t.Fatalf("query %q: explain presence differs", q)
	}
	if want.Explain != nil {
		if got.Explain.Template != want.Explain.Template {
			t.Fatalf("query %q: template %q, want %q", q, got.Explain.Template, want.Explain.Template)
		}
		if len(got.Explain.Segments) != len(want.Explain.Segments) {
			t.Fatalf("query %q: segment counts differ", q)
		}
		for i := range want.Explain.Segments {
			if got.Explain.Segments[i] != want.Explain.Segments[i] {
				t.Fatalf("query %q segment %d: %+v, want %+v", q, i, got.Explain.Segments[i], want.Explain.Segments[i])
			}
		}
		if len(got.Explain.Affinities) != len(want.Explain.Affinities) {
			t.Fatalf("query %q: affinity counts differ", q)
		}
		for i := range want.Explain.Affinities {
			if got.Explain.Affinities[i] != want.Explain.Affinities[i] {
				t.Fatalf("query %q affinity %d: %+v, want %+v", q, i, got.Explain.Affinities[i], want.Explain.Affinities[i])
			}
		}
	}
}
