package search

import (
	"testing"

	"qunits/internal/core"
	"qunits/internal/derive"
	"qunits/internal/imdb"
)

// The engine's scoring knobs must each do what they claim.

func buildWith(t *testing.T, opts Options) *Engine {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 150, Movies: 100, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	opts.Synonyms = imdb.AttributeSynonyms()
	e, err := NewEngine(cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAnchorBoostSelectsNamedEntity(t *testing.T) {
	// With a strong anchor boost, the instance bound to the queried
	// entity wins; with the boost neutralized (tiny value), IR length
	// effects can promote other instances. Either way, the boosted
	// engine must rank the named entity first.
	boosted := buildWith(t, Options{AnchorBoost: 5})
	res := searchTopK(boosted, "george clooney", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Instance.Label() != "george clooney" {
		t.Errorf("boosted engine top anchor = %q", res[0].Instance.Label())
	}
}

func TestUtilityInfluenceReordersEqualContent(t *testing.T) {
	// With utility influence near 1, definition utility dominates: for a
	// bare movie query the movie-summary def (utility 1.0) must beat
	// lower-utility aspect defs anchored on the same movie.
	heavy := buildWith(t, Options{UtilityInfluence: 0.9})
	res := searchTopK(heavy, "star wars", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Instance.Def.Name != "movie-summary" {
		t.Errorf("utility-heavy engine top def = %s", res[0].Instance.Def.Name)
	}
}

func TestTypeBoostPrefersTypedDefinition(t *testing.T) {
	// With the type boost large, attribute vocabulary decides: "star wars
	// soundtrack" must pick the soundtrack def over the summary even
	// though the summary instance is content-richer. Pick a movie that
	// has soundtrack rows.
	e := buildWith(t, Options{TypeBoost: 5})
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 150, Movies: 100, CastPerMovie: 5})
	title := movieWithFact(u, imdb.TableSoundtrack)
	if title == "" {
		t.Skip("no movie with soundtrack at this seed")
	}
	res := searchTopK(e, title+" soundtrack", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Instance.Def.Name != "movie-soundtrack" {
		t.Errorf("type-boosted engine top def = %s for %q", res[0].Instance.Def.Name, title+" soundtrack")
	}
}

func TestEngineRejectsEmptyCatalog(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 30, Movies: 20})
	empty := core.NewCatalog(u.DB)
	if _, err := NewEngine(empty, Options{}); err == nil {
		t.Error("engine accepted an empty catalog")
	}
}
