package search

import (
	"context"

	"qunits/internal/ir"
)

// Partitioned scoring and the mutation log: the two engine-level hooks
// the cluster layer (internal/cluster) is built on.
//
// A partition node holds the FULL engine — same catalog, same index,
// same shared collection statistics — but scores only a subset of the
// index shards (ir.ShardSet). Because BM25-family scores depend on
// collection-wide statistics, splitting the corpus itself across nodes
// would change every score; splitting only the scoring work keeps every
// per-document score bitwise identical to a single node's, so a
// coordinator can k-way-merge per-partition pages under the engine's
// (score desc, ID asc) order and reproduce single-node responses
// byte for byte. Disjoint subsets also make per-partition candidate
// counts sum to the exact global Total.
//
// Keeping N full replicas identical is the mutation log's job: every
// state change flows through exactly four engine methods (AddInstance,
// RemoveInstance, ApplyFeedback, Compact), and each appends one record
// to the installed MutationLog before applying, while holding the lock
// that serializes it — so log order IS apply order, and a follower
// replaying the log through the same four methods converges to the
// primary's exact state. Compaction is logged too: it reassigns
// documents to shards (ir.ShardedIndex.Compacted re-adds live docs onto
// dense ids), which full-index searches never notice but shard-subset
// scoring does, so all replicas must compact at the same log position.

// MutationLog receives one record per engine mutation, invoked while
// the engine holds the lock serializing that mutation (mu for
// add/remove/feedback, indexMu for compact). An append error aborts the
// mutation before any state changes, keeping log and engine consistent.
// Implementations must be safe for concurrent use: feedback and compact
// are serialized by different locks and can append concurrently.
type MutationLog interface {
	// AppendAdd records an AddInstance as (definition, params) — enough
	// for a replica to re-instantiate the identical instance against the
	// same database.
	AppendAdd(defName string, params map[string]string) error
	// AppendRemove records a RemoveInstance by instance ID.
	AppendRemove(id string) error
	// AppendFeedback records an ApplyFeedback with its resolved (post
	// defaulting) learning rate.
	AppendFeedback(instanceID string, positive bool, rate float64) error
	// AppendCompact records a Compact pass.
	AppendCompact() error
}

// SetMutationLog installs the engine's mutation log (nil uninstalls).
// Install it before the engine serves mutations: records are appended
// only from that point on, so the log pairs with a snapshot of the
// engine taken at installation time (see DumpStateWith).
func (e *Engine) SetMutationLog(log MutationLog) {
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mlog = log
}

// PartitionSearch is Search restricted to the index shards the set
// selects: the full pipeline runs — segmentation, type affinity, anchor
// identification, filtering, pruned or exhaustive retrieval — but only
// subset documents are scored, counted, and returned. Scores are
// bitwise identical to the full search's for every returned document.
// The zero set is exactly Search.
func (e *Engine) PartitionSearch(ctx context.Context, req Request, set ir.ShardSet) (*Response, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.searchLocked(ctx, req, set)
}

// PartitionBatchSearch is BatchSearch restricted to the shards the set
// selects, with the same one-lock, deduplicated, concurrent semantics.
func (e *Engine) PartitionBatchSearch(ctx context.Context, reqs []Request, set ir.ShardSet) ([]BatchResult, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return e.batchSearchSet(ctx, reqs, set), nil
}
