package search

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qunits/internal/segment"
)

// Request is a structured search request — the canonical way to query an
// engine. The zero value of every field except Query is valid: K<=0
// means "all results", Offset 0 starts at the top, an empty Filter
// matches everything, and Explain false skips the diagnostic payload.
type Request struct {
	// Query is the keyword query. It must contain at least one
	// non-space character.
	Query string
	// K caps the number of results returned after Offset is applied;
	// K <= 0 returns all remaining results.
	K int
	// Offset skips that many ranked results before collecting K — offset
	// pagination. An offset past the end yields an empty result page;
	// Response.Total still reports the full match count.
	Offset int
	// Filter restricts results by qunit definition and/or anchor type.
	Filter Filter
	// Explain asks for the diagnostic payload: the query segmentation,
	// the identified-type affinities, and per-result score components.
	Explain bool
}

// Filter restricts a search to a subset of the catalog. Both lists are
// OR within themselves and AND across: an instance survives when its
// definition is in Definitions (or the list is empty) and its
// definition's anchor type is in AnchorTypes (or that list is empty).
type Filter struct {
	// Definitions lists qunit definition names. Naming a definition the
	// catalog does not contain is an error (UnknownDefinitionError).
	Definitions []string
	// AnchorTypes lists anchor schema types as "table.column" strings
	// (e.g. "movie.title"). Types that no definition anchors on simply
	// match nothing.
	AnchorTypes []string
}

// IsZero reports whether the filter matches everything.
func (f Filter) IsZero() bool {
	return len(f.Definitions) == 0 && len(f.AnchorTypes) == 0
}

// Response is a structured search response.
type Response struct {
	// Results is the requested page of ranked qunit instances.
	Results []Result
	// Total is the number of instances matching the query and filter
	// before Offset/K paging — the denominator a paginating client needs.
	Total int
	// Explain is the diagnostic payload; nil unless Request.Explain.
	Explain *Explain
}

// Explain is the query-level diagnostic payload: how the query was
// segmented and which qunit types the segmentation identified. Combined
// with the per-component fields on each Result it reconstructs every
// score exactly.
type Explain struct {
	// Template is the typed query template in the paper's §5.2 notation,
	// e.g. "[movie.title] cast".
	Template string
	// Segments is the query segmentation in order.
	Segments []ExplainSegment
	// Affinities lists the identified-type affinities, strongest first.
	Affinities []DefinitionAffinity
}

// ExplainSegment is one typed query segment on the explain payload.
type ExplainSegment struct {
	// Text is the normalized surface text.
	Text string
	// Kind is "entity", "attribute", or "free".
	Kind string
	// Type is the schema type for entity segments ("person.name").
	Type string
	// Table is the referenced table for attribute segments.
	Table string
}

// DefinitionAffinity is one definition's type-identification score.
type DefinitionAffinity struct {
	// Definition is the qunit definition name.
	Definition string
	// Affinity is the segmentation-overlap score (higher = better match).
	Affinity float64
}

// ErrEmptyQuery is returned by Search for a query with no content.
var ErrEmptyQuery = errors.New("search: empty query")

// UnknownDefinitionError reports a Filter.Definitions entry that names
// no definition in the engine's catalog.
type UnknownDefinitionError struct {
	// Name is the unknown definition name.
	Name string
}

// Error implements error.
func (e *UnknownDefinitionError) Error() string {
	return fmt.Sprintf("search: unknown definition %q in filter", e.Name)
}

// Validate checks the request's static shape (query present, K and
// Offset non-negative). Filter definition names are validated against
// the catalog by Search itself.
func (r Request) Validate() error {
	if strings.TrimSpace(r.Query) == "" {
		return ErrEmptyQuery
	}
	if r.K < 0 {
		return fmt.Errorf("search: negative k %d", r.K)
	}
	if r.Offset < 0 {
		return fmt.Errorf("search: negative offset %d", r.Offset)
	}
	return nil
}

// CacheKey returns a canonical string identifying the request for
// caching and request-coalescing: two requests that must produce the
// same response map to the same key, and requests differing in any
// result-affecting dimension (query, k, offset, filters, explain) map
// to different keys. Filter lists are sorted and deduplicated so list
// order never splits the cache.
func (r Request) CacheKey() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(r.K))
	b.WriteByte('\x00')
	b.WriteString(strconv.Itoa(r.Offset))
	b.WriteByte('\x00')
	writeCanonicalList(&b, r.Filter.Definitions)
	b.WriteByte('\x00')
	writeCanonicalList(&b, r.Filter.AnchorTypes)
	b.WriteByte('\x00')
	if r.Explain {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	b.WriteByte('\x00')
	b.WriteString(r.Query)
	return b.String()
}

// writeCanonicalList writes a sorted, deduplicated copy of list,
// separated by \x1f (never part of a definition name or schema type).
func writeCanonicalList(b *strings.Builder, list []string) {
	if len(list) == 0 {
		return
	}
	sorted := append([]string(nil), list...)
	sort.Strings(sorted)
	for i, s := range sorted {
		if i > 0 && s == sorted[i-1] {
			continue
		}
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(s)
	}
}

// explainPayload builds the Explain for a segmentation and its
// affinities.
func explainPayload(sg segment.Segmentation, affinity map[string]float64) *Explain {
	ex := &Explain{Template: sg.Template()}
	for _, s := range sg.Segments {
		es := ExplainSegment{Text: s.Text, Kind: s.Kind.String()}
		switch s.Kind {
		case segment.KindEntity:
			es.Type = s.Type.String()
		case segment.KindAttribute:
			es.Table = s.Table
		}
		ex.Segments = append(ex.Segments, es)
	}
	for name, aff := range affinity {
		ex.Affinities = append(ex.Affinities, DefinitionAffinity{Definition: name, Affinity: aff})
	}
	sort.Slice(ex.Affinities, func(i, j int) bool {
		if ex.Affinities[i].Affinity != ex.Affinities[j].Affinity {
			return ex.Affinities[i].Affinity > ex.Affinities[j].Affinity
		}
		return ex.Affinities[i].Definition < ex.Affinities[j].Definition
	})
	return ex
}
