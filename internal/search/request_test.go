package search

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestSearchShimEquivalence: the deprecated positional shim must be a
// pure veneer over the structured call.
func TestSearchShimEquivalence(t *testing.T) {
	_, e := expertEngine(t)
	resp, err := e.Search(context.Background(), Request{Query: "star wars cast", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	shim := searchTopK(e, "star wars cast", 5)
	if !reflect.DeepEqual(resp.Results, shim) {
		t.Fatalf("shim diverges from structured call:\n%v\nvs\n%v", resp.Results, shim)
	}
}

func TestSearchValidation(t *testing.T) {
	_, e := expertEngine(t)
	ctx := context.Background()
	for _, req := range []Request{
		{Query: ""},
		{Query: "   \t "},
	} {
		if _, err := e.Search(ctx, req); !errors.Is(err, ErrEmptyQuery) {
			t.Errorf("Search(%+v) err = %v, want ErrEmptyQuery", req, err)
		}
	}
	if _, err := e.Search(ctx, Request{Query: "x", K: -1}); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := e.Search(ctx, Request{Query: "x", Offset: -2}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestSearchContextCanceled(t *testing.T) {
	_, e := expertEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, Request{Query: "star wars cast", K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSearchOffsetPagination: pages tile the full ranking exactly, the
// total is page-invariant, and an offset past the end is an empty page,
// not an error.
func TestSearchOffsetPagination(t *testing.T) {
	_, e := expertEngine(t)
	ctx := context.Background()
	full, err := e.Search(ctx, Request{Query: "star wars cast"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != len(full.Results) {
		t.Fatalf("unpaged total %d != %d results", full.Total, len(full.Results))
	}
	if full.Total < 4 {
		t.Fatalf("workload too thin for pagination test: %d results", full.Total)
	}
	pageSize := 3
	var paged []Result
	for off := 0; off < full.Total; off += pageSize {
		page, err := e.Search(ctx, Request{Query: "star wars cast", K: pageSize, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != full.Total {
			t.Fatalf("page at offset %d reports total %d, want %d", off, page.Total, full.Total)
		}
		paged = append(paged, page.Results...)
	}
	if !reflect.DeepEqual(paged, full.Results) {
		t.Fatal("concatenated pages differ from the unpaged ranking")
	}
	// Offset past the end: empty page, intact total, no error.
	past, err := e.Search(ctx, Request{Query: "star wars cast", K: pageSize, Offset: full.Total + 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Results) != 0 || past.Total != full.Total {
		t.Fatalf("past-the-end page: %d results, total %d", len(past.Results), past.Total)
	}
}

func TestSearchDefinitionFilter(t *testing.T) {
	_, e := expertEngine(t)
	ctx := context.Background()
	resp, err := e.Search(ctx, Request{
		Query:  "star wars cast",
		K:      10,
		Filter: Filter{Definitions: []string{"movie-summary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("filter produced nothing")
	}
	for _, r := range resp.Results {
		if r.Instance.Def.Name != "movie-summary" {
			t.Fatalf("filtered result from definition %q", r.Instance.Def.Name)
		}
	}
	// The filtered total must not exceed the unfiltered one.
	unfiltered, err := e.Search(ctx, Request{Query: "star wars cast"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total > unfiltered.Total {
		t.Fatalf("filtered total %d > unfiltered %d", resp.Total, unfiltered.Total)
	}
}

func TestSearchUnknownDefinitionFilter(t *testing.T) {
	_, e := expertEngine(t)
	_, err := e.Search(context.Background(), Request{
		Query:  "star wars cast",
		Filter: Filter{Definitions: []string{"no-such-definition"}},
	})
	var unknown *UnknownDefinitionError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want UnknownDefinitionError", err)
	}
	if unknown.Name != "no-such-definition" {
		t.Fatalf("error names %q", unknown.Name)
	}
}

func TestSearchAnchorTypeFilter(t *testing.T) {
	_, e := expertEngine(t)
	ctx := context.Background()
	resp, err := e.Search(ctx, Request{
		Query:  "star wars cast",
		K:      10,
		Filter: Filter{AnchorTypes: []string{"person.name"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("anchor filter produced nothing")
	}
	for _, r := range resp.Results {
		_, col, ok := r.Instance.Def.AnchorParam()
		if !ok || col.String() != "person.name" {
			t.Fatalf("result %s anchors on %v, want person.name", r.Instance.ID(), col)
		}
	}
	// An anchor type no definition uses matches nothing (and is not an
	// error — anchor types are leniently validated).
	none, err := e.Search(ctx, Request{
		Query:  "star wars cast",
		Filter: Filter{AnchorTypes: []string{"movie.year"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if none.Total != 0 {
		t.Fatalf("bogus anchor type matched %d results", none.Total)
	}
}

// TestSearchExplain: the explain payload plus the per-result components
// must reconstruct every score exactly.
func TestSearchExplain(t *testing.T) {
	_, e := expertEngine(t)
	resp, err := e.Search(context.Background(), Request{Query: "star wars cast", K: 5, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("no explain payload")
	}
	if ex.Template != "[movie.title] cast" {
		t.Errorf("template = %q, want [movie.title] cast", ex.Template)
	}
	if len(ex.Segments) != 2 || ex.Segments[0].Kind != "entity" || ex.Segments[1].Kind != "attribute" {
		t.Errorf("segments = %+v", ex.Segments)
	}
	if ex.Segments[0].Type != "movie.title" {
		t.Errorf("entity segment type = %q", ex.Segments[0].Type)
	}
	if len(ex.Affinities) == 0 {
		t.Fatal("no affinities identified")
	}
	for i := 1; i < len(ex.Affinities); i++ {
		if ex.Affinities[i].Affinity > ex.Affinities[i-1].Affinity {
			t.Fatal("affinities not sorted strongest-first")
		}
	}
	aff := map[string]float64{}
	for _, a := range ex.Affinities {
		aff[a.Definition] = a.Affinity
	}
	opts := e.opts
	for _, r := range resp.Results {
		if r.TypeAffinity != aff[r.Instance.Def.Name] {
			t.Errorf("result %s affinity %v != payload %v", r.Instance.ID(), r.TypeAffinity, aff[r.Instance.Def.Name])
		}
		if r.TypeFactor != 1+opts.TypeBoost*r.TypeAffinity {
			t.Errorf("result %s type factor %v, want %v", r.Instance.ID(), r.TypeFactor, 1+opts.TypeBoost*r.TypeAffinity)
		}
		wantBlend := 1 - opts.UtilityInfluence + opts.UtilityInfluence*r.Utility
		if math.Abs(r.UtilityBlend-wantBlend) > 1e-12 {
			t.Errorf("result %s blend %v != %v", r.Instance.ID(), r.UtilityBlend, wantBlend)
		}
		if r.AnchorBoost != 1 && r.AnchorBoost != 1+opts.AnchorBoost {
			t.Errorf("result %s anchor boost %v", r.Instance.ID(), r.AnchorBoost)
		}
		// The components alone — no engine options — rebuild the score.
		want := r.IRScore * r.TypeFactor * r.UtilityBlend * r.AnchorBoost
		if math.Abs(r.Score-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("result %s score %v not reconstructed from components (%v)", r.Instance.ID(), r.Score, want)
		}
	}
	// The top hit must anchor-boost: the query literally names star wars.
	if resp.Results[0].AnchorBoost == 1 {
		t.Error("top result not anchor-boosted")
	}
	// Explain off → no payload.
	plain, err := e.Search(context.Background(), Request{Query: "star wars cast", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil {
		t.Error("explain payload without Explain:true")
	}
}

// TestCacheKeyCanonicalization: keys must separate every
// result-affecting dimension and nothing else.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := Request{Query: "star wars cast", K: 5}
	distinct := []Request{
		base,
		{Query: "star wars cast", K: 6},
		{Query: "star wars cast", K: 5, Offset: 10},
		{Query: "star wars cast", K: 5, Explain: true},
		{Query: "star wars cast", K: 5, Filter: Filter{Definitions: []string{"movie-cast"}}},
		{Query: "star wars cast", K: 5, Filter: Filter{AnchorTypes: []string{"movie.title"}}},
		{Query: "star wars cast", K: 5, Filter: Filter{Definitions: []string{"movie-cast"}, AnchorTypes: []string{"movie.title"}}},
		{Query: "star wars castx", K: 5},
	}
	seen := map[string]int{}
	for i, r := range distinct {
		key := r.CacheKey()
		if j, dup := seen[key]; dup {
			t.Errorf("requests %d and %d share key %q", i, j, key)
		}
		seen[key] = i
	}
	// Filter list order and duplicates must NOT split the cache.
	a := Request{Query: "q", Filter: Filter{Definitions: []string{"b", "a"}, AnchorTypes: []string{"y", "x"}}}
	b := Request{Query: "q", Filter: Filter{Definitions: []string{"a", "b", "a"}, AnchorTypes: []string{"x", "y", "y"}}}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("canonicalization order-sensitive: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	// A query containing the separator must not collide with the
	// k-digit boundary.
	c := Request{Query: "5\x00q", K: 1}
	d := Request{Query: "q", K: 15}
	if c.CacheKey() == d.CacheKey() {
		t.Error("separator injection collides")
	}
}
