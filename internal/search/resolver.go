package search

import (
	"sort"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/segment"
)

// Resolver answers keyword queries WITHOUT materializing the catalog —
// the paper's preferred implementation (§3): "there is no requirement
// that qunits be materialized, and we expect that most qunits will not be
// materialized in most implementations. … each qunit is nothing more than
// a view definition, with specific instance tuples in the view being
// computed on demand."
//
// The resolver runs the same segmentation and type-identification as
// Engine, then instantiates only the (definition, anchor) pairs the query
// names — a handful of view evaluations instead of an index over every
// instance. The trade-off is reach: a query naming no recognizable entity
// has nothing to bind the views with, so the resolver returns nothing
// where the indexed engine could still fall back to full-text matching.
type Resolver struct {
	cat  *core.Catalog
	dict *segment.Dictionary
	seg  *segment.Segmenter
	opts Options
}

// NewResolver builds a resolver. Unlike NewEngine this touches no data:
// construction cost is the segmentation dictionary only.
func NewResolver(cat *core.Catalog, opts Options) *Resolver {
	if opts.TypeBoost == 0 {
		opts.TypeBoost = 1
	}
	if opts.UtilityInfluence == 0 {
		opts.UtilityInfluence = 0.35
	}
	dict := segment.BuildDictionary(cat.DB(), segment.Options{AttributeSynonyms: opts.Synonyms})
	return &Resolver{
		cat:  cat,
		dict: dict,
		seg:  segment.NewSegmenter(dict),
		opts: opts,
	}
}

// Search instantiates qunits on demand for the entities the query names
// and returns the top k, ranked by type affinity and utility.
func (r *Resolver) Search(query string, k int) ([]Result, error) {
	sg := r.seg.Segment(query)
	entities := sg.Entities()
	if len(entities) == 0 {
		return nil, nil
	}
	affinity := r.typeAffinity(sg)

	var results []Result
	seen := map[string]bool{}
	for _, d := range r.cat.Definitions() {
		aff := affinity[d.Name]
		if aff == 0 {
			continue
		}
		param, col, ok := d.AnchorParam()
		if !ok {
			continue
		}
		for _, ent := range entities {
			if ent.Type.Table != col.Table {
				continue
			}
			inst, err := r.cat.Instantiate(d, map[string]string{param: ent.Text})
			if err != nil {
				return nil, err
			}
			if len(inst.Tuples) == 0 {
				continue
			}
			id := inst.ID()
			if seen[id] {
				continue
			}
			seen[id] = true
			score := (1 + r.opts.TypeBoost*aff) * (1 - r.opts.UtilityInfluence + r.opts.UtilityInfluence*inst.Utility)
			results = append(results, Result{
				Instance:     inst,
				Score:        score,
				TypeAffinity: aff,
			})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Instance.ID() < results[j].Instance.ID()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// typeAffinity mirrors Engine.typeAffinity; the resolver shares the
// scoring model so the two paths agree on qunit-type identification.
func (r *Resolver) typeAffinity(sg segment.Segmentation) map[string]float64 {
	aff := make(map[string]float64, r.cat.Len())
	entities := sg.Entities()
	attrs := sg.Attributes()
	for _, d := range r.cat.Definitions() {
		score := 0.0
		_, anchorCol, hasAnchor := d.AnchorParam()
		for _, ent := range entities {
			if !hasAnchor {
				continue
			}
			if ent.Type == anchorCol {
				score += 2
			} else if ent.Type.Table == anchorCol.Table {
				score += 1
			}
		}
		kw := map[string]bool{}
		for _, w := range d.Keywords {
			kw[ir.Normalize(w)] = true
		}
		tables := map[string]bool{}
		for _, tn := range d.Base.From {
			tables[tn] = true
		}
		for _, s := range d.Sections {
			for _, tn := range s.Base.From {
				tables[tn] = true
			}
		}
		for _, a := range attrs {
			if kw[a.Text] {
				score += 2
			} else if tables[a.Table] {
				score += 1
			}
		}
		if len(entities) == 1 && len(attrs) == 0 && len(d.Sections) > 0 {
			score += 1
		}
		if score > 0 {
			aff[d.Name] = score
		}
	}
	return aff
}
