package search

import (
	"testing"
	"time"

	"qunits/internal/derive"
	"qunits/internal/imdb"
)

func resolverFixture(t *testing.T) (*imdb.Universe, *Resolver, *Engine) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 200, Movies: 120, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResolver(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	eng, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	return u, res, eng
}

func TestResolverAgreesWithEngineOnTypedQueries(t *testing.T) {
	_, r, e := resolverFixture(t)
	queries := []string{
		"star wars cast",
		"george clooney",
		"george clooney movies",
		"batman",
	}
	for _, q := range queries {
		lazy, err := r.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		indexed := searchTopK(e, q, 1)
		if len(lazy) == 0 || len(indexed) == 0 {
			t.Errorf("%q: lazy=%d indexed=%d results", q, len(lazy), len(indexed))
			continue
		}
		if lazy[0].Instance.ID() != indexed[0].Instance.ID() {
			t.Errorf("%q: lazy top %s, indexed top %s", q, lazy[0].Instance.ID(), indexed[0].Instance.ID())
		}
	}
}

func TestResolverComputesOnDemand(t *testing.T) {
	_, r, _ := resolverFixture(t)
	res, err := r.Search("star wars cast", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0].Instance
	if top.Def.Name != "movie-cast" || top.Label() != "star wars" {
		t.Errorf("top = %s", top.ID())
	}
	if len(top.Tuples) == 0 || top.Rendered.Text == "" {
		t.Error("on-demand instance not fully evaluated")
	}
}

func TestResolverNoEntityNoAnswer(t *testing.T) {
	_, r, _ := resolverFixture(t)
	res, err := r.Search("completely unrecognizable words", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("resolver answered an entity-free query: %v", res)
	}
}

// The §3 trade-off, measured: resolver construction must be much cheaper
// than engine construction (no materialization), per-query more
// expensive (on-demand view evaluation).
func TestResolverConstructionCheaperThanEngine(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 400, Movies: 250, CastPerMovie: 6})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	NewResolver(cat, Options{Synonyms: imdb.AttributeSynonyms()})
	lazyBuild := time.Since(start)

	start = time.Now()
	if _, err := NewEngine(cat, Options{Synonyms: imdb.AttributeSynonyms()}); err != nil {
		t.Fatal(err)
	}
	engineBuild := time.Since(start)

	if lazyBuild > engineBuild {
		t.Errorf("resolver build (%v) slower than engine build (%v)", lazyBuild, engineBuild)
	}
}

func TestResolverDeterministic(t *testing.T) {
	_, r, _ := resolverFixture(t)
	a, err := r.Search("tom hanks", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Search("tom hanks", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Instance.ID() != b[i].Instance.ID() {
			t.Fatal("nondeterministic ranking")
		}
	}
}
