package search

import (
	"bytes"
	"fmt"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/relational"
	"qunits/internal/segment"
	"qunits/internal/sqlview"
)

// EngineState is the serializable state of an engine — everything a
// fresh process needs to answer searches bit-for-bit like the engine it
// was dumped from, given the same database. internal/snapshot encodes
// it to the on-disk format; DumpState and RestoreEngine convert between
// it and a live Engine.
//
// The database itself is NOT part of the state: the segmentation
// dictionary is rebuilt from it on restore, and catalog definitions are
// revalidated against its schema. Restoring against a different
// database is an error the snapshot layer detects via its fingerprint.
type EngineState struct {
	// Options are the engine options with defaults applied. The Scorer
	// field is an interface; the snapshot layer serializes the stock
	// scorers (BM25, TF-IDF) by their parameters.
	Options Options
	// Shards is the actual shard count of the index (Options.Shards may
	// be 0 = GOMAXPROCS, which would differ across machines).
	Shards int
	// CatalogJSON is the catalog in the core codec's JSON wire format,
	// carrying every definition with its learned utility.
	CatalogJSON []byte
	// Docs are the indexed instances in global index-insertion order —
	// the order that makes the rebuilt posting lists and collection
	// statistics identical to the dumped engine's.
	Docs []DocState
	// IndexTotalLen is the index's running total weighted document
	// length. After removals it is an incremental float sum that a
	// re-add sequence would not reproduce exactly, so it is restored
	// verbatim.
	IndexTotalLen float64

	// Slots is the dumped index's global slot count, tombstones of
	// removed documents included. Zero (with Postings nil) marks a state
	// from before slots were recorded — snapshot format v1 — which is
	// restored by compacting live documents into fresh dense slots.
	Slots int
	// Postings holds, per shard, the compressed posting lists exactly as
	// the dumped index stored them (tombstoned entries and stale
	// block-max metadata included). When present, restore reproduces the
	// dumped index slot-for-slot and installs these lists instead of
	// re-deriving postings from Docs.
	Postings [][]ir.TermPostings

	// TrustedPostings marks Postings as already integrity-checked by the
	// producer (the snapshot layer's checksums) and possibly aliasing a
	// memory-mapped file: restore installs them with shape-only
	// validation instead of the O(corpus) per-posting decode, which is
	// what makes a mapped load O(metadata).
	TrustedPostings bool
	// PostingsOwner, when non-nil, owns the bytes Postings alias (a
	// snapshot mapping). Restore anchors it to the index so the mapping
	// stays mapped while any search can reach it; it is released by GC
	// once every index epoch referencing it is gone.
	PostingsOwner any
}

// DocState is one indexed qunit instance in dump form: the materialized
// presentation, its provenance, its utility at dump time, and the
// analyzed terms it was indexed under.
type DocState struct {
	// DefName names the producing definition in the catalog.
	DefName string
	// Params are the parameter bindings that derived the instance.
	Params map[string]string
	// XML and Text are the rendered presentation.
	XML, Text string
	// ContextText is the ranking-only context text.
	ContextText string
	// Tuples is the provenance (base tuples that contributed).
	Tuples []relational.TupleRef
	// Utility is the instance utility at dump time.
	Utility float64
	// Terms is the analyzed (tokenized, weighted) form the instance was
	// indexed under.
	Terms ir.DocTerms
	// Slot is the document's global slot id in the dumped index; slots
	// missing from the Docs sequence are tombstones of removed
	// documents. Unused (zero) in states without slot information.
	Slot int
}

// DumpState captures the engine's full state under the read lock: the
// catalog (with learned utilities) as codec JSON, every live instance
// in index order, and the exact collection statistics. The returned
// state shares no mutable data with the engine and can be serialized
// while the engine keeps serving.
func (e *Engine) DumpState() (*EngineState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.dumpStateLocked()
}

// DumpStateWith dumps the state with every mutation path quiesced —
// indexMu AND the read lock held, so adds, removals, feedback, and
// compaction are all excluded — and runs capture inside that critical
// section. The cluster layer uses it to record the mutation-log
// position atomically with the state: a concurrent Compact appends its
// log record under indexMu without touching mu, so a read lock alone
// could capture a sequence number from mid-compaction.
func (e *Engine) DumpStateWith(capture func()) (*EngineState, error) {
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	capture()
	return e.dumpStateLocked()
}

// dumpStateLocked is the body of DumpState; callers hold e.mu (read or
// write).
func (e *Engine) dumpStateLocked() (*EngineState, error) {
	var cat bytes.Buffer
	if err := e.cat.Encode(&cat); err != nil {
		return nil, fmt.Errorf("search: dumping catalog: %w", err)
	}
	st := &EngineState{
		Options:       e.opts,
		Shards:        e.index.NumShards(),
		CatalogJSON:   cat.Bytes(),
		Docs:          make([]DocState, 0, len(e.instances)),
		IndexTotalLen: e.index.TotalLen(),
	}
	for id := 0; id < e.index.Slots(); id++ {
		name := e.index.Name(id)
		if name == "" {
			continue // tombstone of a removed instance
		}
		inst := e.instances[name]
		if inst == nil {
			return nil, fmt.Errorf("search: index document %q has no instance", name)
		}
		st.Docs = append(st.Docs, DocState{
			DefName:     inst.Def.Name,
			Params:      inst.Params,
			XML:         inst.Rendered.XML,
			Text:        inst.Rendered.Text,
			ContextText: inst.ContextText,
			Tuples:      inst.Tuples,
			Utility:     inst.Utility,
			Terms:       e.index.Terms(id),
			Slot:        id,
		})
	}
	st.Slots = e.index.Slots()
	st.Postings = make([][]ir.TermPostings, e.index.NumShards())
	for i := range st.Postings {
		st.Postings[i] = e.index.ExportPostings(i)
	}
	return st, nil
}

// RestoreEngine rebuilds a serving-ready engine from a dumped state and
// the database it was dumped over: the catalog is decoded and
// revalidated against the schema, the segmentation dictionary is
// rebuilt, and the index is reconstructed by replaying the documents in
// their original insertion order — which reproduces posting lists,
// shard layout, and collection statistics exactly, so the restored
// engine's Search results (scores included) are bitwise identical to
// the dumped engine's.
func RestoreEngine(db *relational.Database, st *EngineState) (*Engine, error) {
	cat, err := core.DecodeCatalog(db, bytes.NewReader(st.CatalogJSON))
	if err != nil {
		return nil, fmt.Errorf("search: restoring catalog: %w", err)
	}
	opts := withDefaults(st.Options)
	if st.Shards < 1 {
		return nil, fmt.Errorf("search: restoring engine: invalid shard count %d", st.Shards)
	}
	opts.Shards = st.Shards
	dict := segment.BuildDictionary(db, segment.Options{AttributeSynonyms: opts.Synonyms})
	e := &Engine{
		cat:       cat,
		dict:      dict,
		seg:       segment.NewSegmenter(dict),
		index:     ir.NewShardedIndex(st.Shards),
		instances: make(map[string]*core.Instance, len(st.Docs)),
		opts:      opts,
		defTables: make(map[string]map[string]bool, cat.Len()),
	}
	// States carrying slot and postings information (format v2) are
	// restored slot-exactly: tombstones of removed documents are
	// re-created so shard assignment, local ids, and the persisted
	// compressed posting lists all line up with the dumped index.
	// Older states (v1) compact live documents into fresh dense slots
	// and re-derive postings by replay — a layout that can differ from
	// the dumped one, but scores identically (collection statistics are
	// shared across shards and ranking is layout-independent).
	slotExact := st.Postings != nil
	if slotExact {
		if len(st.Postings) != st.Shards {
			return nil, fmt.Errorf("search: restoring engine: %d postings shards for %d index shards", len(st.Postings), st.Shards)
		}
		if len(st.Docs) > 0 && st.Slots <= st.Docs[len(st.Docs)-1].Slot {
			return nil, fmt.Errorf("search: restoring engine: slot count %d does not cover doc slots", st.Slots)
		}
	}
	nextSlot := 0
	for i, d := range st.Docs {
		def := cat.Definition(d.DefName)
		if def == nil {
			return nil, fmt.Errorf("search: restoring doc %d: catalog has no definition %q", i, d.DefName)
		}
		inst := &core.Instance{
			Def:         def,
			Params:      d.Params,
			Rendered:    sqlview.Rendered{XML: d.XML, Text: d.Text},
			Tuples:      d.Tuples,
			Utility:     d.Utility,
			ContextText: d.ContextText,
		}
		id := inst.ID()
		if slotExact {
			if d.Slot < nextSlot {
				return nil, fmt.Errorf("search: restoring doc %d: slot %d out of order", i, d.Slot)
			}
			for ; nextSlot < d.Slot; nextSlot++ {
				e.index.AddTombstone()
			}
			nextSlot++
			if _, err := e.index.AddAnalyzedDocOnly(id, d.Terms); err != nil {
				return nil, fmt.Errorf("search: restoring doc %d: %w", i, err)
			}
		} else if _, err := e.index.AddAnalyzed(id, d.Terms); err != nil {
			return nil, fmt.Errorf("search: restoring doc %d: %w", i, err)
		}
		e.instances[id] = inst
		e.noteUtility(inst.Utility)
		e.indexLabel(inst)
	}
	if slotExact {
		for ; nextSlot < st.Slots; nextSlot++ {
			e.index.AddTombstone()
		}
		for i, lists := range st.Postings {
			var err error
			if st.TrustedPostings {
				err = e.index.ImportPostingsTrusted(i, lists)
			} else {
				err = e.index.ImportPostings(i, lists)
			}
			if err != nil {
				return nil, fmt.Errorf("search: restoring shard %d postings: %w", i, err)
			}
		}
		if st.PostingsOwner != nil {
			e.index.Retain(st.PostingsOwner)
		}
	}
	// A zero-instance state is valid: RemoveInstance can empty a live
	// engine, and its snapshot must round-trip (searches simply return
	// nothing). Only NewEngine insists on a non-empty catalog yield.
	e.index.ForceTotalLen(st.IndexTotalLen)
	for _, d := range cat.Definitions() {
		e.defTables[d.Name] = definitionTables(d)
	}
	e.SetAutoCompact(opts.CompactRatio)
	return e, nil
}
